package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Built-in signal names the Tracker evaluates every period. Callers add
// domain signals (rack_stale_periods, cap_violation_streak) as extra
// samples to EvalPeriod.
const (
	// SignalTripRisk is the per-feed breaker trip risk in [0, 1]; the
	// sample label is the feed name.
	SignalTripRisk = "trip_risk"
	// SignalExposureOverload is 1 while an exposure window with an
	// observed breaker overload is open, 0 otherwise.
	SignalExposureOverload = "exposure_overload"
	// SignalTimeToSafeMargin is the worst measured time-to-safe margin
	// (1/ratio, capped at MarginCap while no overloaded window has
	// closed).
	SignalTimeToSafeMargin = "time_to_safe_margin"
	// SignalRackStalePeriods counts consecutive periods a rack's budget
	// has been held on stale state; the label is the rack ID. Supplied by
	// the room worker.
	SignalRackStalePeriods = "rack_stale_periods"
	// SignalCapViolationStreak counts consecutive capping iterations a
	// server spent above its budget (plus tolerance); the label is the
	// server ID. Supplied by the simulator.
	SignalCapViolationStreak = "cap_violation_streak"
)

// Alert severities.
const (
	SeverityWarn     = "warn"
	SeverityCritical = "critical"
)

// Alert states carried by Transition.
const (
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Rule is one alert rule: fire when Signal Op Threshold holds for
// ForPeriods consecutive evaluations, resolve once the value crosses
// back past the threshold by more than Deadband. The semantics mirror a
// Prometheus alerting rule's expr + for, with an explicit deadband so a
// value oscillating around the threshold cannot flap the alert.
type Rule struct {
	Name   string `json:"name"`
	Signal string `json:"signal"`
	// Op is one of ">", ">=", "<", "<=".
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
	// ForPeriods is how many consecutive evaluations the predicate must
	// hold before the rule fires (0 and 1 both mean "immediately").
	ForPeriods int `json:"for_periods,omitempty"`
	// Deadband widens the resolve condition: a firing rule resolves only
	// when the value is past the threshold by more than this much on the
	// safe side.
	Deadband float64 `json:"deadband,omitempty"`
	// Severity is "warn" or "critical" (empty defaults to "warn").
	Severity string `json:"severity,omitempty"`
}

// Validate reports whether the rule is well-formed, normalizing the
// defaulted fields in place.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("slo: rule with empty name")
	}
	if r.Signal == "" {
		return fmt.Errorf("slo: rule %q has no signal", r.Name)
	}
	switch r.Op {
	case ">", ">=", "<", "<=":
	default:
		return fmt.Errorf("slo: rule %q has invalid op %q (want >, >=, <, <=)", r.Name, r.Op)
	}
	if r.ForPeriods < 0 {
		return fmt.Errorf("slo: rule %q has negative for_periods", r.Name)
	}
	if r.ForPeriods == 0 {
		r.ForPeriods = 1
	}
	if r.Deadband < 0 {
		return fmt.Errorf("slo: rule %q has negative deadband", r.Name)
	}
	switch r.Severity {
	case "":
		r.Severity = SeverityWarn
	case SeverityWarn, SeverityCritical:
	default:
		return fmt.Errorf("slo: rule %q has invalid severity %q (want warn or critical)", r.Name, r.Severity)
	}
	return nil
}

// breached reports whether the value is on the alerting side of the
// threshold.
func (r *Rule) breached(v float64) bool {
	switch r.Op {
	case ">":
		return v > r.Threshold
	case ">=":
		return v >= r.Threshold
	case "<":
		return v < r.Threshold
	default: // "<="
		return v <= r.Threshold
	}
}

// cleared reports whether the value is past the threshold by more than
// the deadband on the safe side, allowing a firing alert to resolve.
func (r *Rule) cleared(v float64) bool {
	switch r.Op {
	case ">":
		return v <= r.Threshold-r.Deadband
	case ">=":
		return v < r.Threshold-r.Deadband
	case "<":
		return v >= r.Threshold+r.Deadband
	default: // "<="
		return v > r.Threshold+r.Deadband
	}
}

// DefaultRules returns the built-in rule set — the paper's safety
// invariants phrased as alerts, plus control-plane hygiene:
//
//   - trip-risk: a breaker has consumed half its thermal trip budget
//     and is still accumulating (critical);
//   - time-to-safe-margin: capping closed an exposure window with less
//     than 5× margin against the breaker trip curve — the 10× design
//     claim has eroded (critical);
//   - feed-exposure: an overloaded exposure window is open (warn —
//     capping is expected to close it within a couple of periods);
//   - rack-stale: a rack has run on held budgets for 3+ consecutive
//     periods (warn);
//   - cap-violation-streak: a server has sat above budget for 3+
//     consecutive capping iterations (warn).
func DefaultRules() []Rule {
	return []Rule{
		{Name: "trip-risk", Signal: SignalTripRisk, Op: ">", Threshold: 0.5,
			ForPeriods: 2, Deadband: 0.1, Severity: SeverityCritical},
		{Name: "time-to-safe-margin", Signal: SignalTimeToSafeMargin, Op: "<", Threshold: 5,
			ForPeriods: 1, Severity: SeverityCritical},
		{Name: "feed-exposure", Signal: SignalExposureOverload, Op: ">", Threshold: 0.5,
			ForPeriods: 1, Severity: SeverityWarn},
		{Name: "rack-stale", Signal: SignalRackStalePeriods, Op: ">=", Threshold: 3,
			ForPeriods: 1, Severity: SeverityWarn},
		{Name: "cap-violation-streak", Signal: SignalCapViolationStreak, Op: ">=", Threshold: 3,
			ForPeriods: 1, Severity: SeverityWarn},
	}
}

// LoadRules decodes a JSON array of rules, rejecting unknown fields and
// validating each rule.
func LoadRules(r io.Reader) ([]Rule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rules []Rule
	if err := dec.Decode(&rules); err != nil {
		return nil, fmt.Errorf("slo: decode rules: %w", err)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("slo: rules file is empty")
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// LoadRulesFile is LoadRules over a file path.
func LoadRulesFile(path string) ([]Rule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("slo: open rules: %w", err)
	}
	defer f.Close()
	return LoadRules(f)
}

// Sample is one (signal, label, value) observation handed to the
// engine. Label distinguishes instances of a signal (feed, rack,
// server); unlabeled signals leave it empty.
type Sample struct {
	Signal string
	Label  string
	Value  float64
}

// Transition is one alert state change produced by an evaluation.
type Transition struct {
	Rule  Rule    `json:"rule"`
	Label string  `json:"label,omitempty"`
	State string  `json:"state"` // StateFiring or StateResolved
	Value float64 `json:"value"`
	AtSec float64 `json:"at_sec"`
}

// String renders the transition for logs and flight-recorder
// annotations.
func (tr Transition) String() string {
	name := tr.Rule.Name
	if tr.Label != "" {
		name += "{" + tr.Label + "}"
	}
	return fmt.Sprintf("%s %s: %s %s %g (value %.4g)",
		name, tr.State, tr.Rule.Signal, tr.Rule.Op, tr.Rule.Threshold, tr.Value)
}

// RuleState is the engine's per-(rule, label) bookkeeping, exposed for
// /debug/slo.
type RuleState struct {
	Rule     Rule    `json:"rule"`
	Label    string  `json:"label,omitempty"`
	Firing   bool    `json:"firing"`
	Streak   int     `json:"streak"`
	Value    float64 `json:"value"`
	SinceSec float64 `json:"since_sec,omitempty"`
	Fired    uint64  `json:"fired"`
	Resolved uint64  `json:"resolved"`
}

type ruleState struct {
	rule     *Rule
	label    string
	firing   bool
	streak   int
	value    float64
	sinceSec float64
	fired    uint64
	resolved uint64
}

// engine evaluates rules against per-period samples. Not itself
// concurrency-safe; the Tracker serializes access under its mutex.
type engine struct {
	rules  []Rule
	states map[string]*ruleState
	order  []string // state keys in creation order, for stable output
}

func newEngine(rules []Rule) (*engine, error) {
	e := &engine{states: make(map[string]*ruleState)}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		e.rules = append(e.rules, r)
	}
	return e, nil
}

func stateKey(rule, label string) string { return rule + "\xff" + label }

// eval advances every rule against the samples and returns the state
// transitions. A signal absent from this evaluation leaves its states
// untouched: firing alerts stay firing (the condition cannot be shown
// clear) and pending streaks freeze rather than reset on a gap.
func (e *engine) eval(nowSec float64, samples []Sample) []Transition {
	var trans []Transition
	for i := range e.rules {
		rule := &e.rules[i]
		for _, s := range samples {
			if s.Signal != rule.Signal {
				continue
			}
			key := stateKey(rule.Name, s.Label)
			st, ok := e.states[key]
			if !ok {
				st = &ruleState{rule: rule, label: s.Label}
				e.states[key] = st
				e.order = append(e.order, key)
			}
			st.value = s.Value
			switch {
			case rule.breached(s.Value):
				if st.firing {
					break
				}
				st.streak++
				if st.streak >= rule.ForPeriods {
					st.firing = true
					st.sinceSec = nowSec
					trans = append(trans, Transition{
						Rule: *rule, Label: s.Label, State: StateFiring,
						Value: s.Value, AtSec: nowSec,
					})
					st.fired++
				}
			case st.firing:
				// Firing and no longer breached: resolve only once the
				// value clears the deadband; inside the band the alert
				// holds (anti-flap).
				if rule.cleared(s.Value) {
					st.firing = false
					st.streak = 0
					st.sinceSec = 0
					trans = append(trans, Transition{
						Rule: *rule, Label: s.Label, State: StateResolved,
						Value: s.Value, AtSec: nowSec,
					})
					st.resolved++
				}
			default:
				st.streak = 0
			}
		}
	}
	return trans
}

// active returns the firing states as ActiveAlerts, sorted by rule then
// label.
func (e *engine) active() []ActiveAlert {
	var out []ActiveAlert
	for _, key := range e.order {
		st := e.states[key]
		if !st.firing {
			continue
		}
		out = append(out, ActiveAlert{
			Rule:     st.rule.Name,
			Label:    st.label,
			Severity: st.rule.Severity,
			Value:    st.value,
			SinceSec: st.sinceSec,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Label < out[j].Label
	})
	return out
}

func (e *engine) activeCount() int {
	n := 0
	for _, st := range e.states {
		if st.firing {
			n++
		}
	}
	return n
}

// stateList snapshots every per-(rule, label) state, sorted.
func (e *engine) stateList() []RuleState {
	out := make([]RuleState, 0, len(e.order))
	for _, key := range e.order {
		st := e.states[key]
		out = append(out, RuleState{
			Rule:     *st.rule,
			Label:    st.label,
			Firing:   st.firing,
			Streak:   st.streak,
			Value:    st.value,
			SinceSec: st.sinceSec,
			Fired:    st.fired,
			Resolved: st.resolved,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule.Name != out[j].Rule.Name {
			return out[i].Rule.Name < out[j].Rule.Name
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// transitionCounts sums fired/resolved across every label of the rule.
func (e *engine) transitionCounts(rule string) (fired, resolved uint64) {
	for _, st := range e.states {
		if st.rule.Name == rule {
			fired += st.fired
			resolved += st.resolved
		}
	}
	return fired, resolved
}
