// Package slo turns the paper's safety argument into continuously
// measured numbers. CapMaestro is safe because server power capping acts
// an order of magnitude faster than breaker trip times (Section 2.1): a
// feed failure overloads the surviving feed, capping sheds the excess,
// and the breakers never accumulate enough heat to open. This package
// measures exactly that margin at runtime:
//
//   - Time-to-safe tracking. Every supply fault or budget cut opens an
//     exposure window; the window closes when every affected node's
//     measured power is back under budget and no breaker is overloaded.
//     The window duration, normalized against the breaker's timeToTrip at
//     the worst observed overload, is the paper's "10×" claim as a live
//     distribution (histogram + worst-ratio gauge).
//
//   - Trip-risk scoring. Each supply feed carries a gauge in [0, 1]
//     derived from the breaker thermal model's accumulated heat
//     (breaker.RiskSnapshot): 0 is cold, 1 is tripped.
//
//   - An alert-rule engine with threshold + for-duration + deadband
//     semantics (see engine.go), stdlib-only like the telemetry registry.
//     Firing/resolved transitions are annotated onto the flight
//     recorder's current period and counted in /metrics.
//
// The package follows the repo-wide nil-safety contract: a nil *Tracker
// no-ops on every method, so the simulator, room worker, and capping
// controller instrument themselves unconditionally.
//
// Time is supplied by the caller as a time.Duration since an arbitrary
// epoch (simulated seconds in internal/sim, wall-clock uptime in the
// control plane), which keeps the tracker deterministic under test.
package slo

import (
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"time"

	"capmaestro/internal/flightrec"
	"capmaestro/internal/telemetry"
)

// MarginCap bounds the time-to-safe margin reported when a window never
// saw an overload (time-to-trip is effectively infinite) or closed
// instantaneously. Keeping the value finite keeps JSON encodable and
// threshold rules well-behaved.
const MarginCap = 1e9

// DefaultMaxClosedWindows is the ring capacity for retained closed
// exposure windows when Config.MaxClosedWindows is zero.
const DefaultMaxClosedWindows = 128

// Window is one exposure window: the span between a fault (or budget
// cut) and the fleet being measurably safe again.
type Window struct {
	// Causes lists the distinct fault causes folded into the window
	// (e.g. "feed-fail:B", "budget-cut:A"), in arrival order.
	Causes []string `json:"causes"`
	// OpenedSec / ClosedSec are seconds since the tracker's epoch.
	OpenedSec float64 `json:"opened_sec"`
	ClosedSec float64 `json:"closed_sec,omitempty"`
	Open      bool    `json:"open"`
	// DurationSec is the exposure time (closed − opened).
	DurationSec float64 `json:"duration_sec"`
	// MinTimeToTripSec is the smallest cold-start timeToTrip observed on
	// any overloaded breaker while the window was open; 0 means no
	// breaker was ever overloaded during the window.
	MinTimeToTripSec float64 `json:"min_time_to_trip_sec,omitempty"`
	// PeakRisk is the highest trip-risk score seen during the window.
	PeakRisk float64 `json:"peak_risk"`
	// Ratio is DurationSec / MinTimeToTripSec — the fraction of the
	// breaker's thermal budget the exposure consumed. 0 when no overload
	// was observed; values approaching 1 mean a breaker nearly tripped.
	Ratio float64 `json:"ratio"`
}

// Margin is the safety margin of the window: how many times over the
// exposure could have lasted before the breaker tripped. Capped at
// MarginCap when no overload was observed or the window closed
// instantly.
func (w Window) Margin() float64 {
	if w.Ratio <= 0 {
		return MarginCap
	}
	return math.Min(1/w.Ratio, MarginCap)
}

// Config assembles a Tracker. Every field is optional: a zero Config
// yields a tracker with the default rules and no telemetry.
type Config struct {
	// Rules for the alert engine; nil selects DefaultRules.
	Rules []Rule
	// Registry receives the slo_* metric families (nil disables).
	Registry *telemetry.Registry
	// Recorder receives firing/resolved alert annotations on the current
	// period record (nil disables).
	Recorder *flightrec.Recorder
	// Logger for alert transitions (nil disables).
	Logger *slog.Logger
	// MaxClosedWindows bounds the retained closed-window ring
	// (DefaultMaxClosedWindows when zero).
	MaxClosedWindows int
}

// Tracker is the safety-SLO bookkeeper. Construct with New; a nil
// *Tracker no-ops on every method.
type Tracker struct {
	eng        *engine
	rec        *flightrec.Recorder
	log        *slog.Logger
	maxClosed  int
	wallStart  time.Time
	mu         sync.Mutex
	open       *Window
	closed     []Window
	closedTot  uint64
	faults     uint64
	worstRatio float64
	peakRisk   float64
	risk       map[string]float64 // per feed, latest score
	tripped    map[string]bool    // feeds whose risk hit 1

	metTTS        *telemetry.Histogram
	metWorstRatio *telemetry.Gauge
	metOpen       *telemetry.Gauge
	metRisk       *telemetry.GaugeVec
	metFaults     *telemetry.Counter
	metClosed     *telemetry.Counter
	metActive     *telemetry.Gauge
	metTrans      *telemetry.CounterVec
}

// TimeToSafeBuckets are the histogram bounds (seconds) for exposure
// durations: capping should close windows within one or two control
// periods, so the resolution is concentrated under a minute.
var TimeToSafeBuckets = []float64{1, 2, 4, 8, 16, 30, 60, 120, 300}

// New builds a Tracker. The only error source is an invalid rule.
func New(cfg Config) (*Tracker, error) {
	rules := cfg.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	eng, err := newEngine(rules)
	if err != nil {
		return nil, err
	}
	t := &Tracker{
		eng:       eng,
		rec:       cfg.Recorder,
		log:       cfg.Logger,
		maxClosed: cfg.MaxClosedWindows,
		wallStart: time.Now(),
		risk:      make(map[string]float64),
		tripped:   make(map[string]bool),
	}
	if t.maxClosed <= 0 {
		t.maxClosed = DefaultMaxClosedWindows
	}
	reg := cfg.Registry
	if reg == nil {
		// A private registry keeps the histogram (and so the quantile
		// estimator on /debug/slo) working when the caller exports no
		// metrics.
		reg = telemetry.NewRegistry()
	}
	t.metTTS = reg.Histogram("capmaestro_slo_time_to_safe_seconds",
		"Exposure window durations: seconds from a supply fault or budget cut until measured power is back under budget.",
		TimeToSafeBuckets)
	t.metWorstRatio = reg.Gauge("capmaestro_slo_time_to_safe_worst_ratio",
		"Worst observed exposure duration divided by the breaker's timeToTrip at the observed overload (1 = a breaker would have tripped).")
	t.metOpen = reg.Gauge("capmaestro_slo_exposure_open",
		"1 while an exposure window is open, 0 otherwise.")
	t.metRisk = reg.GaugeVec("capmaestro_slo_trip_risk",
		"Per-feed breaker trip risk: accumulated heat over the trip threshold, in [0, 1].", "feed")
	t.metFaults = reg.Counter("capmaestro_slo_faults_total",
		"Supply faults and budget cuts that opened or extended an exposure window.")
	t.metClosed = reg.Counter("capmaestro_slo_windows_closed_total",
		"Exposure windows closed (time-to-safe samples recorded).")
	t.metActive = reg.Gauge("capmaestro_slo_alerts_active",
		"Alert rules currently firing.")
	t.metTrans = reg.CounterVec("capmaestro_slo_alert_transitions_total",
		"Alert state transitions by rule and new state (firing or resolved).", "rule", "state")
	return t, nil
}

// Uptime returns elapsed wall time since New, for callers that track SLO
// time against the wall clock rather than a simulation. 0 on nil.
func (t *Tracker) Uptime() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.wallStart)
}

// RecordFault opens an exposure window at now, or folds cause into the
// already-open window. Cause strings are deduplicated per window.
func (t *Tracker) RecordFault(now time.Duration, cause string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults++
	t.metFaults.Inc()
	if t.open == nil {
		t.open = &Window{Causes: []string{cause}, OpenedSec: now.Seconds(), Open: true}
		t.metOpen.Set(1)
		if t.log != nil {
			t.log.Info("slo: exposure window opened", "cause", cause, "at_sec", now.Seconds())
		}
		return
	}
	for _, c := range t.open.Causes {
		if c == cause {
			return
		}
	}
	t.open.Causes = append(t.open.Causes, cause)
}

// ObserveExposure advances the open window (if any) with this instant's
// safety verdict. safe reports whether every node's measured power is
// back under budget and no breaker is overloaded; timeToTrip is the
// smallest cold-start trip time across currently overloaded breakers
// (0 when none are overloaded). Call once per evaluation tick.
func (t *Tracker) ObserveExposure(now time.Duration, safe bool, timeToTrip time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.open
	if w == nil {
		return
	}
	if !safe {
		if ttt := timeToTrip.Seconds(); ttt > 0 && (w.MinTimeToTripSec == 0 || ttt < w.MinTimeToTripSec) {
			w.MinTimeToTripSec = ttt
		}
		return
	}
	w.Open = false
	w.ClosedSec = now.Seconds()
	w.DurationSec = w.ClosedSec - w.OpenedSec
	if w.DurationSec < 0 {
		w.DurationSec = 0
	}
	if w.MinTimeToTripSec > 0 {
		w.Ratio = w.DurationSec / w.MinTimeToTripSec
	}
	t.open = nil
	t.closed = append(t.closed, *w)
	if len(t.closed) > t.maxClosed {
		t.closed = t.closed[len(t.closed)-t.maxClosed:]
	}
	t.closedTot++
	if w.Ratio > t.worstRatio {
		t.worstRatio = w.Ratio
	}
	t.metTTS.Observe(w.DurationSec)
	t.metWorstRatio.Set(t.worstRatio)
	t.metOpen.Set(0)
	t.metClosed.Inc()
	if t.log != nil {
		t.log.Info("slo: exposure window closed",
			"causes", w.Causes, "duration_sec", w.DurationSec,
			"min_time_to_trip_sec", w.MinTimeToTripSec, "ratio", w.Ratio)
	}
}

// SetTripRisk records the trip-risk score for a feed (clamped to [0, 1])
// and folds it into the open window's peak. A score of 1 marks the feed
// as having tripped a breaker.
func (t *Tracker) SetTripRisk(feed string, risk float64) {
	if t == nil {
		return
	}
	risk = math.Max(0, math.Min(1, risk))
	t.mu.Lock()
	defer t.mu.Unlock()
	t.risk[feed] = risk
	if risk >= 1 {
		t.tripped[feed] = true
	}
	if risk > t.peakRisk {
		t.peakRisk = risk
	}
	if t.open != nil && risk > t.open.PeakRisk {
		t.open.PeakRisk = risk
	}
	t.metRisk.With(feed).Set(risk)
}

// builtinSamples renders the tracker's own state as engine samples.
// Callers append domain samples (rack staleness, cap-violation streaks)
// on top. Caller must hold t.mu.
func (t *Tracker) builtinSamples() []Sample {
	samples := make([]Sample, 0, len(t.risk)+2)
	feeds := make([]string, 0, len(t.risk))
	for feed := range t.risk {
		feeds = append(feeds, feed)
	}
	sort.Strings(feeds)
	for _, feed := range feeds {
		samples = append(samples, Sample{Signal: SignalTripRisk, Label: feed, Value: t.risk[feed]})
	}
	exposure := 0.0
	if t.open != nil && t.open.MinTimeToTripSec > 0 {
		exposure = 1
	}
	samples = append(samples, Sample{Signal: SignalExposureOverload, Value: exposure})
	margin := MarginCap
	if t.worstRatio > 0 {
		margin = math.Min(1/t.worstRatio, MarginCap)
	}
	samples = append(samples, Sample{Signal: SignalTimeToSafeMargin, Value: margin})
	return samples
}

// EvalPeriod runs one alert-engine evaluation at now: the tracker's
// built-in signals (trip_risk, exposure_overload, time_to_safe_margin)
// plus any extra domain samples supplied by the caller. Transitions are
// logged, annotated onto the flight recorder's current period, and
// counted; the returned slice is nil when nothing changed state.
func (t *Tracker) EvalPeriod(now time.Duration, extra ...Sample) []Transition {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	samples := append(t.builtinSamples(), extra...)
	trans := t.eng.eval(now.Seconds(), samples)
	active := t.eng.activeCount()
	t.mu.Unlock()

	t.metActive.Set(float64(active))
	for _, tr := range trans {
		t.metTrans.With(tr.Rule.Name, tr.State).Inc()
		t.rec.Annotate(flightrec.Annotation{
			Time: time.Now(),
			Kind: "alert-" + tr.State,
			Text: tr.String(),
		})
		if t.log != nil {
			level := slog.LevelInfo
			if tr.State == StateFiring {
				level = slog.LevelWarn
				if tr.Rule.Severity == SeverityCritical {
					level = slog.LevelError
				}
			}
			t.log.Log(nil, level, "slo: alert "+tr.State,
				"rule", tr.Rule.Name, "label", tr.Label,
				"signal", tr.Rule.Signal, "value", tr.Value, "at_sec", tr.AtSec)
		}
	}
	return trans
}

// ActiveAlert is one currently-firing rule instance.
type ActiveAlert struct {
	Rule     string  `json:"rule"`
	Label    string  `json:"label,omitempty"`
	Severity string  `json:"severity"`
	Value    float64 `json:"value"`
	SinceSec float64 `json:"since_sec"`
}

// ActiveAlerts returns the currently firing alerts, sorted by rule then
// label.
func (t *Tracker) ActiveAlerts() []ActiveAlert {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eng.active()
}

// Status rolls the active alerts up into a health level: Critical if any
// critical rule is firing, Warn if any rule at all is firing, OK
// otherwise.
func (t *Tracker) Status() telemetry.HealthLevel {
	if t == nil {
		return telemetry.HealthOK
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	level := telemetry.HealthOK
	for _, a := range t.eng.active() {
		if a.Severity == SeverityCritical {
			return telemetry.HealthCritical
		}
		level = telemetry.HealthWarn
	}
	return level
}

// HealthCheck adapts the tracker to telemetry.Server.AddLeveledCheck:
// the level is Status() and the message names the firing rules.
func (t *Tracker) HealthCheck() (telemetry.HealthLevel, string) {
	if t == nil {
		return telemetry.HealthOK, "ok"
	}
	t.mu.Lock()
	actives := t.eng.active()
	t.mu.Unlock()
	level := telemetry.HealthOK
	names := make([]string, 0, len(actives))
	for _, a := range actives {
		if a.Severity == SeverityCritical {
			level = telemetry.HealthCritical
		} else if level == telemetry.HealthOK {
			level = telemetry.HealthWarn
		}
		name := a.Rule
		if a.Label != "" {
			name += "{" + a.Label + "}"
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return telemetry.HealthOK, "no alerts firing"
	}
	return level, fmt.Sprintf("%d alert(s) firing: %v", len(names), names)
}

// OpenWindow returns a copy of the open exposure window, or nil.
func (t *Tracker) OpenWindow() *Window {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.open == nil {
		return nil
	}
	w := *t.open
	w.Causes = append([]string(nil), t.open.Causes...)
	return &w
}

// ClosedWindows returns the retained closed windows, oldest first.
func (t *Tracker) ClosedWindows() []Window {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Window(nil), t.closed...)
}

// WorstRatio returns the largest duration/timeToTrip ratio across closed
// windows (0 = no overloaded exposure recorded yet).
func (t *Tracker) WorstRatio() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.worstRatio
}

// WorstMargin is 1/WorstRatio capped at MarginCap: the measured
// counterpart of the paper's "order of magnitude faster" claim.
func (t *Tracker) WorstMargin() float64 {
	if t == nil {
		return MarginCap
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.worstRatio <= 0 {
		return MarginCap
	}
	return math.Min(1/t.worstRatio, MarginCap)
}

// PeakRisk returns the highest trip-risk score ever recorded.
func (t *Tracker) PeakRisk() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peakRisk
}

// TrippedFeeds returns the feeds whose trip risk reached 1, sorted.
func (t *Tracker) TrippedFeeds() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	feeds := make([]string, 0, len(t.tripped))
	for f := range t.tripped {
		feeds = append(feeds, f)
	}
	sort.Strings(feeds)
	return feeds
}

// FaultCount returns the number of RecordFault calls.
func (t *Tracker) FaultCount() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.faults
}

// WindowsClosed returns the total number of windows closed (including
// any that have fallen out of the retention ring).
func (t *Tracker) WindowsClosed() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closedTot
}

// TransitionCounts returns how often the named rule fired and resolved.
func (t *Tracker) TransitionCounts(rule string) (fired, resolved uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eng.transitionCounts(rule)
}

// TimeToSafeQuantile estimates the q-quantile of closed exposure-window
// durations in seconds from the backing histogram. NaN when the tracker
// has no registry or no closed windows.
func (t *Tracker) TimeToSafeQuantile(q float64) float64 {
	if t == nil {
		return math.NaN()
	}
	return t.metTTS.Quantile(q)
}
