package slo

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"capmaestro/internal/flightrec"
	"capmaestro/internal/telemetry"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestRuleValidate(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		ok   bool
	}{
		{"valid", Rule{Name: "r", Signal: "s", Op: ">", Threshold: 1}, true},
		{"empty name", Rule{Signal: "s", Op: ">"}, false},
		{"empty signal", Rule{Name: "r", Op: ">"}, false},
		{"bad op", Rule{Name: "r", Signal: "s", Op: "=="}, false},
		{"bad severity", Rule{Name: "r", Signal: "s", Op: "<", Severity: "page"}, false},
		{"negative for", Rule{Name: "r", Signal: "s", Op: "<", ForPeriods: -1}, false},
		{"negative deadband", Rule{Name: "r", Signal: "s", Op: "<", Deadband: -0.1}, false},
	}
	for _, tc := range cases {
		err := tc.rule.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	r := Rule{Name: "r", Signal: "s", Op: ">"}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.ForPeriods != 1 || r.Severity != SeverityWarn {
		t.Errorf("defaults not applied: %+v", r)
	}
}

func TestDefaultRulesValid(t *testing.T) {
	rules := DefaultRules()
	if len(rules) == 0 {
		t.Fatal("no default rules")
	}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			t.Errorf("default rule %s: %v", r.Name, err)
		}
	}
}

func TestLoadRules(t *testing.T) {
	good := `[{"name":"hot","signal":"trip_risk","op":">","threshold":0.8,"severity":"critical"}]`
	rules, err := LoadRules(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Name != "hot" || rules[0].ForPeriods != 1 {
		t.Errorf("loaded rules = %+v", rules)
	}
	for _, bad := range []string{
		`[]`,
		`[{"name":"x","signal":"s","op":"!="}]`,
		`[{"name":"x","signal":"s","op":">","bogus":1}]`,
		`{"name":"x"}`,
	} {
		if _, err := LoadRules(strings.NewReader(bad)); err == nil {
			t.Errorf("LoadRules(%s) should fail", bad)
		}
	}
}

// TestEngineForPeriods checks a rule with for_periods only fires after
// the breach persists, and that an interrupted streak resets.
func TestEngineForPeriods(t *testing.T) {
	eng, err := newEngine([]Rule{{
		Name: "risk", Signal: "s", Op: ">", Threshold: 0.5, ForPeriods: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	fire := func(now, v float64) []Transition {
		return eng.eval(now, []Sample{{Signal: "s", Value: v}})
	}
	if tr := fire(1, 0.9); len(tr) != 0 {
		t.Fatalf("fired after 1 breach: %v", tr)
	}
	if tr := fire(2, 0.9); len(tr) != 0 {
		t.Fatalf("fired after 2 breaches: %v", tr)
	}
	if tr := fire(3, 0.2); len(tr) != 0 {
		t.Fatalf("non-breach produced transition: %v", tr)
	}
	// Streak was reset; two more breaches must not fire.
	fire(4, 0.9)
	if tr := fire(5, 0.9); len(tr) != 0 {
		t.Fatal("fired before streak rebuilt")
	}
	tr := fire(6, 0.9)
	if len(tr) != 1 || tr[0].State != StateFiring || tr[0].AtSec != 6 {
		t.Fatalf("expected firing at t=6, got %v", tr)
	}
	// Already firing: further breaches are silent.
	if tr := fire(7, 0.95); len(tr) != 0 {
		t.Fatalf("re-fired while firing: %v", tr)
	}
}

// TestEngineDeadband checks the anti-flap behaviour: inside the deadband
// a firing alert holds; it resolves only past threshold−deadband.
func TestEngineDeadband(t *testing.T) {
	eng, err := newEngine([]Rule{{
		Name: "risk", Signal: "s", Op: ">", Threshold: 0.5, Deadband: 0.1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	fire := func(now, v float64) []Transition {
		return eng.eval(now, []Sample{{Signal: "s", Value: v}})
	}
	if tr := fire(1, 0.6); len(tr) != 1 || tr[0].State != StateFiring {
		t.Fatalf("expected immediate fire, got %v", tr)
	}
	// 0.45 is below threshold but inside the deadband (> 0.4): holds.
	if tr := fire(2, 0.45); len(tr) != 0 {
		t.Fatalf("resolved inside deadband: %v", tr)
	}
	if got := eng.activeCount(); got != 1 {
		t.Fatalf("active = %d during deadband hold", got)
	}
	tr := fire(3, 0.39)
	if len(tr) != 1 || tr[0].State != StateResolved {
		t.Fatalf("expected resolve below deadband, got %v", tr)
	}
	// And it can fire again.
	if tr := fire(4, 0.7); len(tr) != 1 || tr[0].State != StateFiring {
		t.Fatalf("expected re-fire, got %v", tr)
	}
	fired, resolved := eng.transitionCounts("risk")
	if fired != 2 || resolved != 1 {
		t.Errorf("counts = %d fired %d resolved, want 2/1", fired, resolved)
	}
}

// TestEngineLabels checks per-label state isolation and that a label
// absent from an evaluation keeps its firing state.
func TestEngineLabels(t *testing.T) {
	eng, err := newEngine([]Rule{{
		Name: "stale", Signal: "s", Op: ">=", Threshold: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	tr := eng.eval(1, []Sample{
		{Signal: "s", Label: "rack0", Value: 4},
		{Signal: "s", Label: "rack1", Value: 0},
	})
	if len(tr) != 1 || tr[0].Label != "rack0" {
		t.Fatalf("expected rack0 to fire alone, got %v", tr)
	}
	// rack0 missing from this eval: stays firing.
	eng.eval(2, []Sample{{Signal: "s", Label: "rack1", Value: 0}})
	active := eng.active()
	if len(active) != 1 || active[0].Label != "rack0" {
		t.Fatalf("active after gap = %v", active)
	}
	tr = eng.eval(3, []Sample{{Signal: "s", Label: "rack0", Value: 0}})
	if len(tr) != 1 || tr[0].State != StateResolved {
		t.Fatalf("expected rack0 resolve, got %v", tr)
	}
}

// TestTrackerWindowLifecycle drives a fault through open → unsafe ticks
// → close and checks the duration/timeToTrip bookkeeping.
func TestTrackerWindowLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if tr.OpenWindow() != nil || tr.WindowsClosed() != 0 {
		t.Fatal("tracker not empty at start")
	}
	// Safety verdicts with no open window are ignored.
	tr.ObserveExposure(sec(5), false, sec(100))
	if tr.OpenWindow() != nil {
		t.Fatal("window opened without a fault")
	}

	tr.RecordFault(sec(10), "feed-fail:B")
	tr.RecordFault(sec(11), "feed-fail:B") // dedup
	tr.RecordFault(sec(12), "budget-cut:A")
	w := tr.OpenWindow()
	if w == nil || len(w.Causes) != 2 || !w.Open {
		t.Fatalf("open window = %+v", w)
	}
	tr.SetTripRisk("A", 0.2)
	tr.ObserveExposure(sec(11), false, sec(100))
	tr.ObserveExposure(sec(12), false, sec(80)) // worst overload
	tr.ObserveExposure(sec(13), false, 0)       // unsafe without overload
	tr.ObserveExposure(sec(30), true, 0)

	if tr.OpenWindow() != nil {
		t.Fatal("window still open after safe tick")
	}
	closed := tr.ClosedWindows()
	if len(closed) != 1 {
		t.Fatalf("closed = %d windows", len(closed))
	}
	got := closed[0]
	if got.DurationSec != 20 || got.MinTimeToTripSec != 80 {
		t.Errorf("duration/minTTT = %v/%v, want 20/80", got.DurationSec, got.MinTimeToTripSec)
	}
	if got.Ratio != 0.25 || got.Margin() != 4 {
		t.Errorf("ratio %v margin %v, want 0.25/4", got.Ratio, got.Margin())
	}
	if got.PeakRisk != 0.2 {
		t.Errorf("peak risk = %v", got.PeakRisk)
	}
	if tr.WorstRatio() != 0.25 || tr.WorstMargin() != 4 {
		t.Errorf("worst ratio/margin = %v/%v", tr.WorstRatio(), tr.WorstMargin())
	}
	if q := tr.TimeToSafeQuantile(1); q <= 0 {
		t.Errorf("time-to-safe quantile = %v", q)
	}
	// The 4× margin is under the default 5× rule: the engine should fire
	// the critical margin alert on the next evaluation.
	trans := tr.EvalPeriod(sec(32))
	var fired bool
	for _, x := range trans {
		if x.Rule.Name == "time-to-safe-margin" && x.State == StateFiring {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("margin alert did not fire: %v", trans)
	}
	if tr.Status() != telemetry.HealthCritical {
		t.Errorf("status = %v, want critical", tr.Status())
	}
	level, msg := tr.HealthCheck()
	if level != telemetry.HealthCritical || !strings.Contains(msg, "time-to-safe-margin") {
		t.Errorf("health check = %v %q", level, msg)
	}
}

// TestTrackerNoOverloadWindow: a budget cut that never overloads a
// breaker closes with ratio 0 and a capped margin.
func TestTrackerNoOverloadWindow(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr.RecordFault(sec(0), "budget-cut:A")
	tr.ObserveExposure(sec(1), false, 0)
	tr.ObserveExposure(sec(9), true, 0)
	closed := tr.ClosedWindows()
	if len(closed) != 1 || closed[0].Ratio != 0 || closed[0].Margin() != MarginCap {
		t.Fatalf("closed = %+v", closed)
	}
	if tr.WorstMargin() != MarginCap {
		t.Errorf("worst margin = %v", tr.WorstMargin())
	}
	// Margin rule must not fire from a no-overload window.
	for _, x := range tr.EvalPeriod(sec(10)) {
		if x.Rule.Name == "time-to-safe-margin" {
			t.Errorf("margin alert fired without overload: %v", x)
		}
	}
}

// TestTrackerAnnotations checks alert transitions land on the flight
// recorder's newest period record.
func TestTrackerAnnotations(t *testing.T) {
	rec := flightrec.NewRecorder(4)
	rec.Add(flightrec.PeriodRecord{Label: "p0"})
	tr, err := New(Config{
		Rules:    []Rule{{Name: "hot", Signal: SignalTripRisk, Op: ">", Threshold: 0.5}},
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetTripRisk("A", 0.9)
	tr.EvalPeriod(sec(8))
	recs := rec.Records()
	if len(recs) != 1 || len(recs[0].Annotations) != 1 {
		t.Fatalf("annotations = %+v", recs)
	}
	a := recs[0].Annotations[0]
	if a.Kind != "alert-firing" || !strings.Contains(a.Text, "hot") {
		t.Errorf("annotation = %+v", a)
	}
	if rec.Summaries()[0].Annotations != 1 {
		t.Error("summary annotation count missing")
	}
}

// TestNilTracker exercises the nil-safety contract.
func TestNilTracker(t *testing.T) {
	var tr *Tracker
	tr.RecordFault(0, "x")
	tr.ObserveExposure(0, true, 0)
	tr.SetTripRisk("A", 1)
	if got := tr.EvalPeriod(0); got != nil {
		t.Errorf("nil EvalPeriod = %v", got)
	}
	if tr.Status() != telemetry.HealthOK {
		t.Error("nil tracker not OK")
	}
	if tr.OpenWindow() != nil || tr.ClosedWindows() != nil || tr.ActiveAlerts() != nil {
		t.Error("nil tracker returned state")
	}
	rep := tr.debugReport()
	if rep.Status != "ok" {
		t.Errorf("nil debug report = %+v", rep)
	}
}

// TestDebugHandler round-trips /debug/slo through JSON.
func TestDebugHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	tr.RecordFault(sec(1), "feed-fail:B")
	tr.SetTripRisk("A", 0.3)
	tr.ObserveExposure(sec(2), false, sec(50))
	tr.ObserveExposure(sec(6), true, 0)
	tr.EvalPeriod(sec(8))

	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	var rep struct {
		Status   string             `json:"status"`
		TripRisk map[string]float64 `json:"trip_risk"`
		Exposure struct {
			Closed      []Window `json:"closed"`
			ClosedTotal uint64   `json:"closed_total"`
			WorstMargin float64  `json:"worst_margin"`
			P99         float64  `json:"p99_duration_sec"`
		} `json:"exposure"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if rep.TripRisk["A"] != 0.3 {
		t.Errorf("trip risk = %v", rep.TripRisk)
	}
	if rep.Exposure.ClosedTotal != 1 || len(rep.Exposure.Closed) != 1 {
		t.Errorf("exposure = %+v", rep.Exposure)
	}
	// Duration 5 s (opened t=1, closed t=6) against a 50 s timeToTrip:
	// margin exactly 10.
	if rep.Exposure.WorstMargin < 9 || rep.Exposure.WorstMargin > 11 {
		t.Errorf("worst margin = %v, want 10", rep.Exposure.WorstMargin)
	}
	if rep.Exposure.P99 <= 0 {
		t.Errorf("p99 = %v", rep.Exposure.P99)
	}
	// Margin 10 clears the default 5× rule, so nothing fires.
	if rep.Status != "ok" {
		t.Errorf("status = %q", rep.Status)
	}
}
