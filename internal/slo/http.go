package slo

import (
	"encoding/json"
	"math"
	"net/http"
)

// debugReport is the /debug/slo response body: the full safety-SLO
// state in one JSON document.
type debugReport struct {
	// Status is "ok", "warn", or "critical" — the same rollup /healthz
	// folds into its verdict.
	Status string        `json:"status"`
	Active []ActiveAlert `json:"active_alerts"`
	Rules  []RuleState   `json:"rules"`
	// TripRisk is the latest per-feed trip-risk score.
	TripRisk map[string]float64 `json:"trip_risk,omitempty"`
	PeakRisk float64            `json:"peak_risk"`
	Exposure exposureReport     `json:"exposure"`
	Faults   uint64             `json:"faults_total"`
}

type exposureReport struct {
	Open         *Window  `json:"open,omitempty"`
	Closed       []Window `json:"closed,omitempty"`
	ClosedTotal  uint64   `json:"closed_total"`
	WorstRatio   float64  `json:"worst_ratio"`
	WorstMargin  float64  `json:"worst_margin"`
	P50DurationS float64  `json:"p50_duration_sec,omitempty"`
	P99DurationS float64  `json:"p99_duration_sec,omitempty"`
}

// Handler serves the tracker's state as JSON on /debug/slo. Mount it on
// a telemetry server with Handle("/debug/slo", t.Handler()).
func (t *Tracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		rep := t.debugReport()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}

func (t *Tracker) debugReport() debugReport {
	rep := debugReport{Status: "ok", Active: []ActiveAlert{}, Rules: []RuleState{}}
	if t == nil {
		return rep
	}
	rep.Status = t.Status().String()

	t.mu.Lock()
	rep.Active = t.eng.active()
	if rep.Active == nil {
		rep.Active = []ActiveAlert{}
	}
	rep.Rules = t.eng.stateList()
	if len(t.risk) > 0 {
		rep.TripRisk = make(map[string]float64, len(t.risk))
		for feed, r := range t.risk {
			rep.TripRisk[feed] = r
		}
	}
	rep.PeakRisk = t.peakRisk
	rep.Faults = t.faults
	if t.open != nil {
		w := *t.open
		w.Causes = append([]string(nil), t.open.Causes...)
		rep.Exposure.Open = &w
	}
	// Newest first, matching /debug/periods.
	for i := len(t.closed) - 1; i >= 0; i-- {
		rep.Exposure.Closed = append(rep.Exposure.Closed, t.closed[i])
	}
	rep.Exposure.ClosedTotal = t.closedTot
	rep.Exposure.WorstRatio = t.worstRatio
	rep.Exposure.WorstMargin = MarginCap
	if t.worstRatio > 0 {
		rep.Exposure.WorstMargin = math.Min(1/t.worstRatio, MarginCap)
	}
	t.mu.Unlock()

	// Quantiles come from the histogram's linear-interpolation estimator,
	// present only once a window has closed.
	if p50 := t.metTTS.Quantile(0.5); !math.IsNaN(p50) {
		rep.Exposure.P50DurationS = p50
	}
	if p99 := t.metTTS.Quantile(0.99); !math.IsNaN(p99) {
		rep.Exposure.P99DurationS = p99
	}
	return rep
}
