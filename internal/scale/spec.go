// Package scale is the control-plane scale harness: it stands up
// thousands of simulated rack workers over real TCP on localhost, drives
// a sharded hierarchy over them for a configured number of control
// periods, and reports latency percentiles, goroutine counts, and wire
// bytes per period. cmd/scalesim is the CLI; sweep files declare lists of
// Specs and results land in BENCH_controlplane.json.
package scale

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Spec declares one scale-harness run.
type Spec struct {
	Name           string `json:"name"`
	Racks          int    `json:"racks"`
	ServersPerRack int    `json:"servers_per_rack"`
	// Levels counts every worker tier, racks and room included (2 = flat
	// room over racks; 3 adds one aggregator tier).
	Levels int `json:"levels"`
	// FanOut is the hierarchy fan-out and the rack-endpoint group size:
	// each multi-rack TCP server hosts FanOut rack workers, aligned with
	// the level-1 aggregator chunking so one batch frame serves one
	// aggregator's children.
	FanOut int `json:"fan_out"`
	// Codec is "json", "binary", or "binary-delta" (binary with a 1 W
	// delta deadband, so unchanged summaries squash to marker frames).
	Codec string `json:"codec"`
	// Batch multiplexes each endpoint's racks into single gather/push
	// frames over one shared connection; false dials one connection per
	// rack and issues per-rack RPCs (the pre-batching design).
	Batch bool `json:"batch"`
	// Pipeline overlaps period k's push with period k+1's gather
	// (RoomWorker.RunPipelined); false runs the strict
	// gather→allocate→push barrier.
	Pipeline bool `json:"pipeline"`
	// Periods is how many measured control periods to run (default 20)
	// after Warmup unmeasured ones (default 3).
	Periods int `json:"periods,omitempty"`
	Warmup  int `json:"warmup,omitempty"`
	// RPCConcurrency bounds in-flight rack RPCs per worker (0 = default).
	RPCConcurrency int `json:"rpc_concurrency,omitempty"`
	// RPCLatencyMs injects one-way per-frame latency through a local TCP
	// proxy, emulating the ms-scale in-room RTT the paper's deployment
	// sees. 0 connects directly (pure loopback).
	RPCLatencyMs float64 `json:"rpc_latency_ms,omitempty"`
	// Digests turns on the fleet observability plane: clients request
	// per-rack stat digests in-band on gather frames and every tier merges
	// them, so the run also measures the digest wire overhead.
	Digests bool `json:"digests,omitempty"`
	// Seed drives the deterministic per-server demand mix.
	Seed uint64 `json:"seed,omitempty"`
}

func (s *Spec) defaults() {
	if s.Periods <= 0 {
		s.Periods = 20
	}
	if s.Warmup < 0 {
		s.Warmup = 0
	} else if s.Warmup == 0 {
		s.Warmup = 3
	}
	if s.FanOut <= 0 {
		s.FanOut = 50
	}
	if s.Codec == "" {
		s.Codec = "binary"
	}
	if s.Seed == 0 {
		s.Seed = 0x5ca1ab1e
	}
}

// Validate rejects specs the harness cannot run.
func (s *Spec) Validate() error {
	if s.Racks <= 0 || s.ServersPerRack <= 0 {
		return fmt.Errorf("scale: spec %q: racks and servers_per_rack must be positive", s.Name)
	}
	if s.Levels < 2 {
		return fmt.Errorf("scale: spec %q: levels must be >= 2", s.Name)
	}
	switch s.Codec {
	case "json", "binary", "binary-delta":
	default:
		return fmt.Errorf("scale: spec %q: unknown codec %q", s.Name, s.Codec)
	}
	return nil
}

// Result is one completed run's measurements.
type Result struct {
	Spec
	Servers   int `json:"servers"`
	Endpoints int `json:"endpoints"`
	// Control-period latency over the measured periods, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// EffectivePeriodMs is measured wall clock divided by measured
	// periods: the sustainable control-period cadence. For pipelined runs
	// this is lower than the per-period latency because consecutive
	// periods overlap.
	EffectivePeriodMs float64 `json:"effective_period_ms"`
	// MeanOverlapMs is the mean push/gather overlap per period
	// (pipelined runs only).
	MeanOverlapMs float64 `json:"mean_overlap_ms,omitempty"`
	// PeakGoroutines is the maximum goroutine count sampled during the
	// measured span — clients, room, aggregators, AND the in-process rack
	// servers' per-connection handlers.
	PeakGoroutines int `json:"peak_goroutines"`
	// Wire traffic per period as seen by the client role (room tier and
	// aggregator tiers combined), bytes.
	BytesOutPerPeriod float64 `json:"bytes_out_per_period"`
	BytesInPerPeriod  float64 `json:"bytes_in_per_period"`
	// DeltaHitsPerPeriod counts gather responses squashed to
	// unchanged-summary frames (binary-delta runs).
	DeltaHitsPerPeriod float64 `json:"delta_hits_per_period,omitempty"`
	// Digest-plane wire cost (digest runs over the binary codec): bytes of
	// digest payload inside gather frames per period, and that as a share
	// of total inbound client bytes — the observability plane's overhead.
	// Deliberately not omitempty: 0 on a binary-delta digest run records
	// that every steady-state digest squashed to a cached-copy marker.
	DigestBytesPerPeriod float64 `json:"digest_bytes_per_period"`
	DigestShareOfBytesIn float64 `json:"digest_share_of_bytes_in"`
	// Fleet rollup from the final measured period (digest runs): rack
	// count and summed power must match the fleet exactly — Run fails the
	// spec otherwise — and outliers count low-headroom/violating racks.
	FleetRacks        int     `json:"fleet_racks,omitempty"`
	FleetPowerWatts   float64 `json:"fleet_power_watts,omitempty"`
	FleetOutlierRacks int     `json:"fleet_outlier_racks,omitempty"`
	// Sanity from the final measured period: all should be zero.
	GatherErrors int `json:"gather_errors"`
	ApplyErrors  int `json:"apply_errors"`
	BudgetsHeld  int `json:"budgets_held"`
}

// Sweep is the on-disk sweep-file format: a named list of runs.
type Sweep struct {
	Name string `json:"name"`
	Runs []Spec `json:"runs"`
}

// LoadSweep reads and validates a sweep file.
func LoadSweep(path string) (*Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sw Sweep
	if err := json.Unmarshal(data, &sw); err != nil {
		return nil, fmt.Errorf("scale: sweep %s: %w", path, err)
	}
	for i := range sw.Runs {
		sw.Runs[i].defaults()
		if err := sw.Runs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &sw, nil
}

// percentile returns the p-th percentile (0..1, nearest-rank) of the
// sorted durations in ms.
func percentile(sortedMs []float64, p float64) float64 {
	if len(sortedMs) == 0 {
		return 0
	}
	i := int(p*float64(len(sortedMs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sortedMs) {
		i = len(sortedMs) - 1
	}
	return sortedMs[i]
}

func summarizeLatencies(elapsed []time.Duration) (p50, p95, p99, max float64) {
	ms := make([]float64, len(elapsed))
	for i, d := range elapsed {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	sort.Float64s(ms)
	if len(ms) == 0 {
		return 0, 0, 0, 0
	}
	return percentile(ms, 0.50), percentile(ms, 0.95), percentile(ms, 0.99), ms[len(ms)-1]
}
