package scale

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// BenchFile is the BENCH_controlplane.json shape, matching the repo's
// other committed benchmark records.
type BenchFile struct {
	Benchmark string   `json:"benchmark"`
	Machine   string   `json:"machine"`
	Runs      []Result `json:"runs"`
	Summary   string   `json:"summary"`
}

// MachineString describes the host the sweep ran on.
func MachineString() string {
	return fmt.Sprintf("%s/%s, %s, GOMAXPROCS=%d", runtime.GOOS, runtime.GOARCH,
		runtime.Version(), runtime.GOMAXPROCS(0))
}

// Summarize builds the bench-file summary line from the sweep's results:
// the largest run's headline numbers plus pipelined-vs-barrier margins
// for any run pairs differing only in the Pipeline flag.
func Summarize(runs []Result) string {
	if len(runs) == 0 {
		return "no runs"
	}
	largest := &runs[0]
	for i := range runs {
		if runs[i].Servers > largest.Servers {
			largest = &runs[i]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Largest run: %d servers (%d racks, %d levels, %s codec) full gather→allocate→push cycle p50 %.1f ms / p99 %.1f ms — %.0fx inside the 8 s control period.",
		largest.Servers, largest.Racks, largest.Levels, largest.Codec,
		largest.P50Ms, largest.P99Ms, 8000/largest.P99Ms)
	for i := range runs {
		if !runs[i].Pipeline {
			continue
		}
		p := &runs[i]
		for j := range runs {
			q := &runs[j]
			if q.Pipeline || q.Servers != p.Servers || q.Levels != p.Levels ||
				q.Codec != p.Codec || q.Batch != p.Batch || q.RPCLatencyMs != p.RPCLatencyMs {
				continue
			}
			if p.EffectivePeriodMs > 0 && q.EffectivePeriodMs > p.EffectivePeriodMs {
				fmt.Fprintf(&b, " Pipelining at %d servers: effective period %.1f ms vs %.1f ms barrier (%.1f%% faster, mean overlap %.1f ms).",
					p.Servers, p.EffectivePeriodMs, q.EffectivePeriodMs,
					100*(q.EffectivePeriodMs-p.EffectivePeriodMs)/q.EffectivePeriodMs,
					p.MeanOverlapMs)
			}
			break
		}
	}
	for i := range runs {
		r := &runs[i]
		if !r.Digests {
			continue
		}
		fmt.Fprintf(&b, " Fleet digests on %s (%s codec): %.0f digest B/period, %.1f%% of inbound gather bytes; rollup %d racks / %.0f W watt-exact, %d outlier racks.",
			r.Name, r.Codec, r.DigestBytesPerPeriod, 100*r.DigestShareOfBytesIn,
			r.FleetRacks, r.FleetPowerWatts, r.FleetOutlierRacks)
	}
	return b.String()
}

// WriteBench writes the results as BENCH_controlplane.json-style output.
func WriteBench(path string, runs []Result) error {
	f := BenchFile{
		Benchmark: "scalesim (simulated rack workers over real localhost TCP; one run = a sharded hierarchy driven for `periods` control periods; latency percentiles are full gather→allocate→push cycles; rpc_latency_ms runs add an emulated one-way per-frame network delay through a local proxy)",
		Machine:   MachineString(),
		Runs:      runs,
		Summary:   Summarize(runs),
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
