package scale

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"capmaestro/internal/controlplane"
	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/telemetry"
)

// Server fleet geometry: every simulated server idles at 270 W, caps at
// 490 W, and demands a deterministic value in [300, 480) derived from the
// spec seed — the envelope the repo's allocation benchmarks use. Every
// third server is priority 1 (latency-critical), the rest priority 3.
const (
	capMin = power.Watts(270)
	capMax = power.Watts(490)
)

// mix is a splitmix64-style hash combining the spec seed with rack and
// server indices, so demand mixes are deterministic per spec and
// independent of build order.
func mix(seed uint64, rack, srv int) uint64 {
	z := seed + (uint64(rack)*1_000_003+uint64(srv)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func rackID(r int) string { return fmt.Sprintf("rack%05d", r) }

// buildRack constructs one rack worker's subtree: ServersPerRack supply
// leaves under an unconstrained shifting node.
func buildRack(spec *Spec, r int) *core.Node {
	leaves := make([]*core.Node, spec.ServersPerRack)
	id := rackID(r)
	for i := range leaves {
		prio := core.Priority(3)
		if i%3 == 0 {
			prio = 1
		}
		demand := power.Watts(300 + mix(spec.Seed, r, i)%180)
		leaves[i] = core.NewLeaf(fmt.Sprintf("%s/srv%03d", id, i), core.SupplyLeaf{
			SupplyID: fmt.Sprintf("%s/srv%03d", id, i),
			ServerID: fmt.Sprintf("%s/srv%03d", id, i),
			Priority: prio, Share: 1,
			CapMin: capMin, CapMax: capMax, Demand: demand,
		})
	}
	return core.NewShifting(id, 0, leaves...)
}

// totalDemand sums the deterministic demand of every server in the spec,
// so the room budget can be set to a fraction that forces real capping.
func totalDemand(spec *Spec) power.Watts {
	var sum power.Watts
	for r := 0; r < spec.Racks; r++ {
		for i := 0; i < spec.ServersPerRack; i++ {
			sum += power.Watts(300 + mix(spec.Seed, r, i)%180)
		}
	}
	return sum
}

// latencyProxy forwards TCP connections to a backend, delaying each
// inbound chunk (≈ one request frame — requests on a connection are
// serialized by the client) by a fixed duration. It emulates per-frame
// network latency on loopback: batch frames pay it once per frame, not
// once per rack, exactly like a real network round trip.
type latencyProxy struct {
	ln      net.Listener
	backend string
	delay   time.Duration
	mu      sync.Mutex
	conns   []net.Conn
	closed  bool
}

func newLatencyProxy(backend string, delay time.Duration) (*latencyProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &latencyProxy{ln: ln, backend: backend, delay: delay}
	go p.accept()
	return p, nil
}

func (p *latencyProxy) Addr() string { return p.ln.Addr().String() }

func (p *latencyProxy) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.backend)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			return
		}
		p.conns = append(p.conns, conn, up)
		p.mu.Unlock()
		go p.pipe(conn, up, p.delay) // requests: delayed
		go p.pipe(up, conn, 0)       // responses: free (delay is one-way)
	}
}

func (p *latencyProxy) pipe(from, to net.Conn, delay time.Duration) {
	buf := make([]byte, 64<<10)
	for {
		n, err := from.Read(buf)
		if n > 0 {
			if delay > 0 {
				time.Sleep(delay)
			}
			if _, werr := to.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	from.Close()
	to.Close()
}

func (p *latencyProxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// singleOp hides the batch capability of a rack handle, forcing the
// fan-out engine to issue one RPC per rack: the pre-batching baseline.
type singleOp struct{ h *controlplane.RackHandle }

func (s singleOp) Gather(ctx context.Context) (core.Summary, error) { return s.h.Gather(ctx) }
func (s singleOp) ApplyBudget(ctx context.Context, b power.Watts) error {
	return s.h.ApplyBudget(ctx, b)
}

// fleet is the harness's standing infrastructure for one run: rack
// servers, optional latency proxies, and the TCP clients the hierarchy
// steers.
type fleet struct {
	servers []*controlplane.RackServer
	proxies []*latencyProxy
	tcp     []*controlplane.TCPClient
	clients map[string]controlplane.RackClient
}

func (f *fleet) Close() {
	for _, c := range f.tcp {
		c.Close()
	}
	for _, p := range f.proxies {
		p.Close()
	}
	for _, s := range f.servers {
		s.Close()
	}
}

// buildFleet stands up the rack workers grouped FanOut-per-endpoint on
// real TCP listeners and dials them according to the spec's codec and
// batch settings.
func buildFleet(spec *Spec, reg *telemetry.Registry) (*fleet, error) {
	serverOpts := []controlplane.Option{}
	clientOpts := []controlplane.Option{controlplane.WithTelemetry(reg)}
	switch spec.Codec {
	case "json":
		clientOpts = append(clientOpts, controlplane.WithWireCodec(controlplane.CodecJSON))
		serverOpts = append(serverOpts, controlplane.WithDeltaDeadband(-1))
	case "binary":
		clientOpts = append(clientOpts, controlplane.WithWireCodec(controlplane.CodecBinary))
		serverOpts = append(serverOpts, controlplane.WithDeltaDeadband(-1))
	case "binary-delta":
		clientOpts = append(clientOpts, controlplane.WithWireCodec(controlplane.CodecBinary))
		serverOpts = append(serverOpts, controlplane.WithDeltaDeadband(1))
	}
	if spec.Digests {
		clientOpts = append(clientOpts, controlplane.WithDigests(true))
	}

	f := &fleet{clients: make(map[string]controlplane.RackClient, spec.Racks)}
	delay := time.Duration(spec.RPCLatencyMs * float64(time.Millisecond))
	for base := 0; base < spec.Racks; base += spec.FanOut {
		end := min(base+spec.FanOut, spec.Racks)
		workers := make(map[string]controlplane.RackClient, end-base)
		for r := base; r < end; r++ {
			w, err := controlplane.NewRackWorker(rackID(r), buildRack(spec, r), core.GlobalPriority, nil)
			if err != nil {
				f.Close()
				return nil, err
			}
			workers[w.ID()] = w
		}
		srv, err := controlplane.ServeRacks(workers, "127.0.0.1:0", serverOpts...)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.servers = append(f.servers, srv)
		addr := srv.Addr()
		if delay > 0 {
			p, err := newLatencyProxy(addr, delay)
			if err != nil {
				f.Close()
				return nil, err
			}
			f.proxies = append(f.proxies, p)
			addr = p.Addr()
		}
		if spec.Batch {
			// One shared connection per endpoint; racks ride batch frames.
			c := controlplane.DialRack(addr, 2*time.Second, clientOpts...)
			f.tcp = append(f.tcp, c)
			for r := base; r < end; r++ {
				f.clients[rackID(r)] = c.Rack(rackID(r))
			}
		} else {
			// One connection per rack, one RPC per rack: the baseline.
			for r := base; r < end; r++ {
				c := controlplane.DialRack(addr, 2*time.Second, clientOpts...)
				f.tcp = append(f.tcp, c)
				f.clients[rackID(r)] = singleOp{c.Rack(rackID(r))}
			}
		}
	}
	return f, nil
}

// goroutineSampler tracks the peak goroutine count while running.
type goroutineSampler struct {
	stop chan struct{}
	done chan struct{}
	peak int
}

func startSampler() *goroutineSampler {
	s := &goroutineSampler{stop: make(chan struct{}), done: make(chan struct{})}
	s.peak = runtime.NumGoroutine()
	go func() {
		defer close(s.done)
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				if n := runtime.NumGoroutine(); n > s.peak {
					s.peak = n
				}
			}
		}
	}()
	return s
}

func (s *goroutineSampler) Stop() int {
	close(s.stop)
	<-s.done
	if n := runtime.NumGoroutine(); n > s.peak {
		s.peak = n
	}
	return s.peak
}

// counterValue reads a labeled counter from the shared registry; the
// families were registered by the transport clients.
func counterValue(reg *telemetry.Registry, name string, labels ...string) float64 {
	switch name {
	case "capmaestro_rpc_bytes_total":
		return reg.CounterVec(name, "Bytes moved over rack transport connections.",
			"role", "direction").With(labels...).Value()
	case "capmaestro_rpc_delta_hits_total":
		return reg.CounterVec(name, "Gather responses squashed to (server) or resolved from (client) an unchanged-summary delta frame.",
			"role").With(labels...).Value()
	case "capmaestro_fleet_digest_wire_bytes_total":
		return reg.CounterVec(name, "Bytes of fleet digest payload carried inside binary gather frames; digest_wire_bytes/rpc_bytes is the observability plane's wire overhead.",
			"role").With(labels...).Value()
	}
	return 0
}

// Run executes one spec: build the fleet and hierarchy, run warmup +
// measured control periods, and report latency, goroutine, and wire
// measurements.
func Run(ctx context.Context, spec Spec, logf func(format string, args ...any)) (*Result, error) {
	spec.defaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	reg := telemetry.NewRegistry()

	logf("building %d racks × %d servers (%d total) ...", spec.Racks, spec.ServersPerRack, spec.Racks*spec.ServersPerRack)
	f, err := buildFleet(&spec, reg)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// Budget at 85% of aggregate demand: every period does real capping
	// work instead of rubber-stamping demand.
	budget := totalDemand(&spec) * 85 / 100
	hopts := []controlplane.Option{
		controlplane.WithTelemetry(reg),
		controlplane.WithDigests(spec.Digests),
	}
	if spec.RPCConcurrency > 0 {
		hopts = append(hopts, controlplane.WithRPCConcurrency(spec.RPCConcurrency))
	}
	h, err := controlplane.BuildHierarchy(f.clients, controlplane.HierarchyConfig{
		Levels: spec.Levels,
		FanOut: spec.FanOut,
		Policy: core.GlobalPriority,
		Budget: budget,
		Opts:   hopts,
	})
	if err != nil {
		return nil, err
	}
	aggs := 0
	for _, tier := range h.Tiers {
		aggs += len(tier)
	}
	logf("hierarchy up: %d levels, %d aggregators, %d endpoints, budget %.0f W", spec.Levels, aggs, len(f.servers), float64(budget))

	// Warmup periods: connection establishment, codec negotiation, buffer
	// growth, first-period map fills.
	for i := 0; i < spec.Warmup; i++ {
		if _, _, err := h.Room.RunPeriod(ctx); err != nil {
			return nil, fmt.Errorf("scale: warmup period %d: %w", i, err)
		}
	}

	bytesOut0 := counterValue(reg, "capmaestro_rpc_bytes_total", "client", "out")
	bytesIn0 := counterValue(reg, "capmaestro_rpc_bytes_total", "client", "in")
	delta0 := counterValue(reg, "capmaestro_rpc_delta_hits_total", "client")
	dig0 := counterValue(reg, "capmaestro_fleet_digest_wire_bytes_total", "client")

	var elapsed []time.Duration
	var overlapSum time.Duration
	var last controlplane.PeriodStats
	sampler := startSampler()
	wallStart := time.Now()
	if spec.Pipeline {
		err = h.Room.RunPipelined(ctx, spec.Periods, func(_ *core.Allocation, stats controlplane.PeriodStats, perr error) {
			if perr == nil {
				elapsed = append(elapsed, stats.Elapsed)
				overlapSum += stats.Overlap
				last = stats
			}
		})
	} else {
		for i := 0; i < spec.Periods && err == nil; i++ {
			var stats controlplane.PeriodStats
			_, stats, err = h.Room.RunPeriod(ctx)
			if err == nil {
				elapsed = append(elapsed, stats.Elapsed)
				last = stats
			}
		}
	}
	wall := time.Since(wallStart)
	peak := sampler.Stop()
	if err != nil {
		return nil, fmt.Errorf("scale: measured periods: %w", err)
	}
	if len(elapsed) != spec.Periods {
		return nil, fmt.Errorf("scale: expected %d measured periods, got %d", spec.Periods, len(elapsed))
	}
	if last.GatherErrors > 0 || last.ApplyErrors > 0 || last.BudgetsHeld > 0 {
		return nil, fmt.Errorf("scale: final period degraded: %d gather errors, %d apply errors, %d held",
			last.GatherErrors, last.ApplyErrors, last.BudgetsHeld)
	}

	res := &Result{
		Spec:      spec,
		Servers:   spec.Racks * spec.ServersPerRack,
		Endpoints: len(f.servers),
	}
	res.P50Ms, res.P95Ms, res.P99Ms, res.MaxMs = summarizeLatencies(elapsed)
	res.EffectivePeriodMs = float64(wall) / float64(time.Millisecond) / float64(spec.Periods)
	if spec.Pipeline {
		res.MeanOverlapMs = float64(overlapSum) / float64(time.Millisecond) / float64(spec.Periods)
	}
	res.PeakGoroutines = peak
	periods := float64(spec.Periods)
	res.BytesOutPerPeriod = (counterValue(reg, "capmaestro_rpc_bytes_total", "client", "out") - bytesOut0) / periods
	res.BytesInPerPeriod = (counterValue(reg, "capmaestro_rpc_bytes_total", "client", "in") - bytesIn0) / periods
	res.DeltaHitsPerPeriod = (counterValue(reg, "capmaestro_rpc_delta_hits_total", "client") - delta0) / periods
	res.GatherErrors = last.GatherErrors
	res.ApplyErrors = last.ApplyErrors
	res.BudgetsHeld = last.BudgetsHeld
	if spec.Digests {
		res.DigestBytesPerPeriod = (counterValue(reg, "capmaestro_fleet_digest_wire_bytes_total", "client") - dig0) / periods
		if res.BytesInPerPeriod > 0 {
			res.DigestShareOfBytesIn = res.DigestBytesPerPeriod / res.BytesInPerPeriod
		}
		// The rollup is only worth shipping if it is exact: the merged
		// fleet digest must cover every rack and sum power watt-for-watt
		// against the deterministic demand the harness planted.
		rep, ok := h.Room.FleetReport()
		if !ok {
			return nil, fmt.Errorf("scale: digests on but no fleet report after %d periods", spec.Periods)
		}
		if rep.Summary.Racks != spec.Racks {
			return nil, fmt.Errorf("scale: fleet digest covers %d racks, want %d", rep.Summary.Racks, spec.Racks)
		}
		if want := float64(totalDemand(&spec)); rep.Summary.PowerWatts != want {
			return nil, fmt.Errorf("scale: fleet digest power %.3f W, want exactly %.3f W", rep.Summary.PowerWatts, want)
		}
		res.FleetRacks = rep.Summary.Racks
		res.FleetPowerWatts = rep.Summary.PowerWatts
		res.FleetOutlierRacks = rep.Summary.OutlierRacks
	}
	logf("%s: p50 %.1f ms, p99 %.1f ms, effective period %.1f ms, peak goroutines %d",
		spec.Name, res.P50Ms, res.P99Ms, res.EffectivePeriodMs, res.PeakGoroutines)
	return res, nil
}
