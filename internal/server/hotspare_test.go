package server

import (
	"testing"
	"time"

	"capmaestro/internal/power"
)

func hotSpareServer(t *testing.T) *Server {
	t.Helper()
	s := MustNew(Config{
		ID:    "s1",
		Model: power.DefaultServerModel(),
		Supplies: []Supply{
			{ID: "primary", Split: 0.5},
			{ID: "spare", Split: 0.5},
		},
	})
	if err := s.ConfigureHotSpare("spare", 250, 300); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHotSpareValidation(t *testing.T) {
	s := hotSpareServer(t)
	if err := s.ConfigureHotSpare("nope", 100, 200); err == nil {
		t.Error("unknown supply should fail")
	}
	if err := s.ConfigureHotSpare("spare", 300, 300); err == nil {
		t.Error("non-positive hysteresis should fail")
	}
	// Reconfiguring an existing policy replaces it.
	if err := s.ConfigureHotSpare("spare", 200, 260); err != nil {
		t.Fatal(err)
	}
}

func TestHotSpareEntersStandbyAtLightLoad(t *testing.T) {
	s := hotSpareServer(t)
	s.SetUtilization(0.1) // ~193 W < 250
	s.Step(time.Second)
	sp, _ := s.SupplyACPower("spare")
	if sp != 0 {
		t.Errorf("spare carries %v at light load, want 0 (standby)", sp)
	}
	pr, _ := s.SupplyACPower("primary")
	if !power.ApproxEqual(pr, s.ACPower(), 1e-6) {
		t.Errorf("primary carries %v, want full load %v", pr, s.ACPower())
	}
	if s.WorkingSupplies() != 1 {
		t.Errorf("working supplies = %d, want 1", s.WorkingSupplies())
	}
}

func TestHotSpareReactivatesAtHighLoad(t *testing.T) {
	s := hotSpareServer(t)
	s.SetUtilization(0.1)
	s.Step(time.Second)
	if s.WorkingSupplies() != 1 {
		t.Fatal("setup: spare should be in standby")
	}
	s.SetUtilization(0.9) // ~457 W > 300
	s.Step(time.Second)
	if s.WorkingSupplies() != 2 {
		t.Errorf("spare should reactivate at high load")
	}
	sp, _ := s.SupplyACPower("spare")
	if sp <= 0 {
		t.Errorf("reactivated spare carries %v", sp)
	}
}

func TestHotSpareHysteresis(t *testing.T) {
	s := hotSpareServer(t)
	// In the hysteresis band (250-300 W), state is sticky.
	s.SetUtilization(s.Model().UtilizationFor(280))
	s.Step(time.Second)
	if s.WorkingSupplies() != 2 {
		t.Error("inside band from above: spare should stay active")
	}
	s.SetUtilization(0.1)
	s.Step(time.Second)
	s.SetUtilization(s.Model().UtilizationFor(280))
	s.Step(time.Second)
	if s.WorkingSupplies() != 1 {
		t.Error("inside band from below: spare should stay in standby")
	}
}

func TestHotSpareNeverStandsDownLastSupply(t *testing.T) {
	s := hotSpareServer(t)
	if err := s.SetSupplyState("primary", SupplyFailed); err != nil {
		t.Fatal(err)
	}
	s.SetUtilization(0.05)
	s.Step(time.Second)
	if s.WorkingSupplies() != 1 {
		t.Error("the sole working supply must not enter standby")
	}
	sp, _ := s.SupplyACPower("spare")
	if sp <= 0 {
		t.Error("surviving spare must carry the load")
	}
}

func TestHotSpareIgnoresFailedSupply(t *testing.T) {
	s := hotSpareServer(t)
	if err := s.SetSupplyState("spare", SupplyFailed); err != nil {
		t.Fatal(err)
	}
	s.SetUtilization(0.9)
	s.Step(time.Second)
	for _, sup := range s.Supplies() {
		if sup.ID == "spare" && sup.State != SupplyFailed {
			t.Error("hot-spare policy must not resurrect a failed supply")
		}
	}
}
