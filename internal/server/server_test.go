package server

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"capmaestro/internal/power"
)

func dualCorded(id string) Config {
	return Config{
		ID:    id,
		Model: power.DefaultServerModel(),
		Supplies: []Supply{
			{ID: id + "-psA", Split: 0.5},
			{ID: id + "-psB", Split: 0.5},
		},
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty id", Config{Model: power.DefaultServerModel(), Supplies: []Supply{{ID: "a", Split: 1}}}},
		{"bad model", Config{ID: "s", Model: power.ServerModel{Idle: 500, CapMin: 270, CapMax: 490},
			Supplies: []Supply{{ID: "a", Split: 1}}}},
		{"no supplies", Config{ID: "s", Model: power.DefaultServerModel()}},
		{"empty supply id", Config{ID: "s", Model: power.DefaultServerModel(),
			Supplies: []Supply{{ID: "", Split: 1}}}},
		{"duplicate supply", Config{ID: "s", Model: power.DefaultServerModel(),
			Supplies: []Supply{{ID: "a", Split: 0.5}, {ID: "a", Split: 0.5}}}},
		{"bad split", Config{ID: "s", Model: power.DefaultServerModel(),
			Supplies: []Supply{{ID: "a", Split: 1.5}}}},
		{"splits not one", Config{ID: "s", Model: power.DefaultServerModel(),
			Supplies: []Supply{{ID: "a", Split: 0.4}, {ID: "b", Split: 0.4}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestUncappedPowerTracksUtilization(t *testing.T) {
	s := MustNew(dualCorded("s1"))
	s.SetUtilization(1)
	if got := s.ACPower(); !power.ApproxEqual(got, 490, 0.5) {
		t.Errorf("uncapped full-load AC power = %v, want ~490", got)
	}
	if s.ThrottleLevel() != 0 {
		t.Errorf("uncapped throttle = %v, want 0", s.ThrottleLevel())
	}
	s.SetUtilization(0)
	if got := s.ACPower(); !power.ApproxEqual(got, 160, 0.5) {
		t.Errorf("idle AC power = %v, want ~160", got)
	}
	s.SetUtilization(-3) // clamps
	if s.Utilization() != 0 {
		t.Error("utilization should clamp to 0")
	}
	s.SetUtilization(9)
	if s.Utilization() != 1 {
		t.Error("utilization should clamp to 1")
	}
}

func TestDCCapReducesPower(t *testing.T) {
	s := MustNew(dualCorded("s1"))
	s.SetUtilization(1)
	lo, hi := s.DCCapRange()
	if lo >= hi {
		t.Fatalf("cap range [%v, %v] inverted", lo, hi)
	}
	mid := (lo + hi) / 2
	s.SetDCCap(mid)
	// Let actuation settle.
	for i := 0; i < 30; i++ {
		s.Step(time.Second)
	}
	if got := s.DCPower(); !power.ApproxEqual(got, mid, 0.5) {
		t.Errorf("DC power = %v, want cap %v", got, mid)
	}
	if th := s.ThrottleLevel(); th <= 0 || th >= 1 {
		t.Errorf("throttle = %v, want in (0,1)", th)
	}
	if pl := s.PerfLevel(); math.Abs(pl+s.ThrottleLevel()-1) > 1e-12 {
		t.Errorf("perf level %v inconsistent with throttle", pl)
	}
}

func TestCapClipsToControllableRange(t *testing.T) {
	s := MustNew(dualCorded("s1"))
	lo, hi := s.DCCapRange()
	s.SetDCCap(0)
	if s.TargetDCCap() != lo {
		t.Errorf("cap below range: target %v, want clip to %v", s.TargetDCCap(), lo)
	}
	s.SetDCCap(99999)
	if s.TargetDCCap() != hi {
		t.Errorf("cap above range: target %v, want clip to %v", s.TargetDCCap(), hi)
	}
}

func TestCapCannotPushBelowFloor(t *testing.T) {
	s := MustNew(dualCorded("s1"))
	s.SetUtilization(1)
	lo, _ := s.DCCapRange()
	s.SetDCCap(lo)
	for i := 0; i < 30; i++ {
		s.Step(time.Second)
	}
	if got := s.ACPower(); !power.ApproxEqual(got, 270, 1) {
		t.Errorf("fully throttled AC power = %v, want ~CapMin 270", got)
	}
	if th := s.ThrottleLevel(); math.Abs(th-1) > 1e-6 {
		t.Errorf("throttle at floor = %v, want 1", th)
	}
}

func TestLightLoadBelowCapMinNotThrottled(t *testing.T) {
	// A server idling below CapMin cannot be throttled further; throttle
	// level must read 0 so the demand estimator sees true demand.
	s := MustNew(dualCorded("s1"))
	s.SetUtilization(0.1)
	lo, _ := s.DCCapRange()
	s.SetDCCap(lo)
	for i := 0; i < 30; i++ {
		s.Step(time.Second)
	}
	demand := s.ACDemand() // 160 + 0.1*330 = 193 < 270
	if demand >= 270 {
		t.Fatalf("test setup: demand %v should be below CapMin", demand)
	}
	if got := s.ACPower(); !power.ApproxEqual(got, demand, 2) {
		t.Errorf("light-load power = %v, want demand %v", got, demand)
	}
}

func TestActuationSettlesWithinSixSeconds(t *testing.T) {
	s := MustNew(dualCorded("s1"))
	s.SetUtilization(1)
	lo, hi := s.DCCapRange()
	target := lo + (hi-lo)/4
	s.SetDCCap(target)
	for i := 0; i < 6; i++ {
		s.Step(time.Second)
	}
	gap := math.Abs(float64(s.EffectiveDCCap() - target))
	full := math.Abs(float64(hi - target))
	if gap > 0.05*full {
		t.Errorf("after 6s, cap gap %.1fW is more than 5%% of step %.1fW", gap, full)
	}
}

func TestStepNonPositiveDurationNoOp(t *testing.T) {
	s := MustNew(dualCorded("s1"))
	s.SetDCCap(300)
	before := s.EffectiveDCCap()
	s.Step(0)
	s.Step(-time.Second)
	if s.EffectiveDCCap() != before {
		t.Error("non-positive step should not advance actuation")
	}
}

func TestSupplySplitMismatch(t *testing.T) {
	s := MustNew(Config{
		ID:    "s1",
		Model: power.DefaultServerModel(),
		Supplies: []Supply{
			{ID: "psA", Split: 0.35},
			{ID: "psB", Split: 0.65}, // the paper's worst observed mismatch
		},
	})
	s.SetUtilization(1)
	a, _ := s.SupplyACPower("psA")
	b, _ := s.SupplyACPower("psB")
	total := s.ACPower()
	if !power.ApproxEqual(a+b, total, 1e-6) {
		t.Errorf("supply powers %v+%v should sum to %v", a, b, total)
	}
	if !power.ApproxEqual(b, total*0.65, 1e-6) {
		t.Errorf("psB share = %v, want 65%% of %v", b, total)
	}
}

func TestSupplyFailureShiftsLoad(t *testing.T) {
	s := MustNew(dualCorded("s1"))
	s.SetUtilization(1)
	if err := s.SetSupplyState("s1-psA", SupplyFailed); err != nil {
		t.Fatal(err)
	}
	if s.WorkingSupplies() != 1 {
		t.Errorf("working supplies = %d, want 1", s.WorkingSupplies())
	}
	a, _ := s.SupplyACPower("s1-psA")
	b, _ := s.SupplyACPower("s1-psB")
	if a != 0 {
		t.Errorf("failed supply carries %v, want 0", a)
	}
	if !power.ApproxEqual(b, s.ACPower(), 1e-6) {
		t.Errorf("surviving supply carries %v, want full %v", b, s.ACPower())
	}
	r, ok := s.SupplyShare("s1-psB")
	if !ok || r != 1 {
		t.Errorf("surviving share = %v, want 1", r)
	}
}

func TestStandbySupplyCarriesNothing(t *testing.T) {
	s := MustNew(dualCorded("s1"))
	s.SetUtilization(0.2)
	if err := s.SetSupplyState("s1-psB", SupplyStandby); err != nil {
		t.Fatal(err)
	}
	b, _ := s.SupplyACPower("s1-psB")
	if b != 0 {
		t.Errorf("standby supply carries %v, want 0", b)
	}
}

func TestAllSuppliesFailed(t *testing.T) {
	s := MustNew(dualCorded("s1"))
	s.SetSupplyState("s1-psA", SupplyFailed)
	s.SetSupplyState("s1-psB", SupplyFailed)
	a, _ := s.SupplyACPower("s1-psA")
	b, _ := s.SupplyACPower("s1-psB")
	if a != 0 || b != 0 {
		t.Error("failed supplies must carry no load")
	}
}

func TestUnknownSupply(t *testing.T) {
	s := MustNew(dualCorded("s1"))
	if err := s.SetSupplyState("nope", SupplyFailed); err == nil {
		t.Error("expected error for unknown supply")
	}
	if _, ok := s.SupplyACPower("nope"); ok {
		t.Error("expected !ok for unknown supply")
	}
	if _, ok := s.SupplyShare("nope"); ok {
		t.Error("expected !ok for unknown supply share")
	}
}

func TestReadSensorsConsistent(t *testing.T) {
	s := MustNew(dualCorded("s1"))
	s.SetUtilization(0.8)
	r := s.ReadSensors()
	if len(r.SupplyAC) != 2 {
		t.Fatalf("sensor supplies = %d, want 2", len(r.SupplyAC))
	}
	var sum power.Watts
	for _, v := range r.SupplyAC {
		sum += v
	}
	if !power.ApproxEqual(sum, r.TotalAC, 1e-9) {
		t.Error("TotalAC should equal sum of supply readings")
	}
	if !power.ApproxEqual(r.TotalAC, s.ACPower(), 1e-6) {
		t.Errorf("noise-free sensors should match true power: %v vs %v", r.TotalAC, s.ACPower())
	}
	if r.Throttle != s.ThrottleLevel() {
		t.Error("throttle reading mismatch")
	}
}

func TestSensorNoiseIsBoundedAndReproducible(t *testing.T) {
	mk := func() *Server {
		cfg := dualCorded("s1")
		cfg.NoiseSigma = 2
		cfg.NoiseSeed = 42
		return MustNew(cfg)
	}
	s1, s2 := mk(), mk()
	s1.SetUtilization(1)
	s2.SetUtilization(1)
	r1 := s1.ReadSensors()
	r2 := s2.ReadSensors()
	for id, v := range r1.SupplyAC {
		if r2.SupplyAC[id] != v {
			t.Error("same seed should reproduce identical noise")
		}
		truth, _ := s1.SupplyACPower(id)
		if math.Abs(float64(v-truth)) > 12 { // 6 sigma
			t.Errorf("noise on %s implausibly large: %v vs %v", id, v, truth)
		}
	}
}

func TestSupplyIDsAndAccessors(t *testing.T) {
	s := MustNew(dualCorded("sX"))
	ids := s.SupplyIDs()
	if len(ids) != 2 || ids[0] != "sX-psA" || ids[1] != "sX-psB" {
		t.Errorf("supply IDs = %v", ids)
	}
	if s.ID() != "sX" || s.Priority() != PriorityLow {
		t.Error("accessors wrong")
	}
	if s.Model() != power.DefaultServerModel() {
		t.Error("model accessor wrong")
	}
	if s.Efficiency() == nil || s.RatedDC() <= 0 {
		t.Error("efficiency accessors wrong")
	}
	if got := s.Supplies(); len(got) != 2 {
		t.Error("Supplies() wrong")
	}
	if SupplyActive.String() != "active" || SupplyFailed.String() != "failed" ||
		SupplyStandby.String() != "standby" || SupplyState(9).String() != "state(9)" {
		t.Error("state strings wrong")
	}
}

func TestThrottleMonotoneInCap(t *testing.T) {
	// Lower caps never decrease the throttle level.
	s := MustNew(dualCorded("s1"))
	s.SetUtilization(1)
	lo, hi := s.DCCapRange()
	f := func(a, b float64) bool {
		ca := lo + power.Watts(math.Abs(math.Mod(a, 1)))*(hi-lo)
		cb := lo + power.Watts(math.Abs(math.Mod(b, 1)))*(hi-lo)
		if ca > cb {
			ca, cb = cb, ca
		}
		s.SetDCCap(ca)
		for i := 0; i < 40; i++ {
			s.Step(time.Second)
		}
		ta := s.ThrottleLevel()
		s.SetDCCap(cb)
		for i := 0; i < 40; i++ {
			s.Step(time.Second)
		}
		tb := s.ThrottleLevel()
		return ta >= tb-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDemandEstimatorIntegration(t *testing.T) {
	// Drive the simulated server through throttled operation and confirm
	// the Section 5 regression recovers the true demand from its sensors.
	s := MustNew(dualCorded("s1"))
	s.SetUtilization(1) // true AC demand ~490
	est := power.NewDemandEstimator(power.DefaultDemandWindow)
	lo, hi := s.DCCapRange()
	caps := []power.Watts{hi, lo + (hi-lo)/2, lo + (hi-lo)/4, lo + (hi-lo)/3}
	for _, c := range caps {
		s.SetDCCap(c)
		for i := 0; i < 8; i++ {
			s.Step(time.Second)
			r := s.ReadSensors()
			est.Observe(r.TotalAC, r.Throttle)
		}
	}
	d, ok := est.Demand()
	if !ok {
		t.Fatal("no demand estimate")
	}
	if math.Abs(float64(d)-490) > 15 {
		t.Errorf("estimated demand %v, want within 15 W of 490", d)
	}
}
