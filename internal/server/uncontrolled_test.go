package server

import (
	"testing"
	"time"

	"capmaestro/internal/power"
)

// gpuServer has 200 W of GPU power the node manager cannot throttle.
func gpuServer(t *testing.T) *Server {
	t.Helper()
	return MustNew(Config{
		ID:    "gpu1",
		Model: power.DefaultServerModel(),
		Supplies: []Supply{
			{ID: "psA", Split: 0.5},
			{ID: "psB", Split: 0.5},
		},
		UncontrolledPower: 200,
	})
}

func TestUncontrolledValidation(t *testing.T) {
	cfg := Config{
		ID: "s", Model: power.DefaultServerModel(),
		Supplies:          []Supply{{ID: "a", Split: 1}},
		UncontrolledPower: -5,
	}
	if _, err := New(cfg); err == nil {
		t.Error("negative uncontrolled power should fail")
	}
}

func TestUncontrolledShiftsEnvelope(t *testing.T) {
	s := gpuServer(t)
	lo, hi := s.Envelope()
	if lo != 470 || hi != 690 {
		t.Errorf("envelope = [%v, %v], want [470, 690]", lo, hi)
	}
	if s.UncontrolledPower() != 200 {
		t.Error("accessor wrong")
	}
	s.SetUtilization(1)
	if got := s.ACDemand(); got != 690 {
		t.Errorf("full demand = %v, want 490 + 200", got)
	}
}

func TestUncontrolledFloorUnbreakable(t *testing.T) {
	s := gpuServer(t)
	s.SetUtilization(1)
	s.SetDCCap(0) // clip to the (shifted) floor
	for i := 0; i < 40; i++ {
		s.Step(time.Second)
	}
	// Fully throttled: CPU at CapMin (270) but the GPU's 200 W remains.
	if got := s.ACPower(); !power.ApproxEqual(got, 470, 2) {
		t.Errorf("fully throttled power = %v, want 470", got)
	}
	if th := s.ThrottleLevel(); th < 0.99 {
		t.Errorf("throttle = %v, want ~1", th)
	}
}

func TestUncontrolledIdleDraw(t *testing.T) {
	s := gpuServer(t)
	s.SetUtilization(0)
	if got := s.ACPower(); !power.ApproxEqual(got, 360, 1) {
		t.Errorf("idle power = %v, want 160 + 200", got)
	}
}
