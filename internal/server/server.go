// Package server simulates the IT equipment CapMaestro manages: a server
// with one or more power supplies, a firmware node manager that enforces DC
// power caps by scaling processor voltage/frequency (the role Intel Node
// Manager plays in the paper), and the IPMI-style sensors the capping
// controller reads every second — per-supply AC power and the power-cap
// throttling level.
//
// The simulation reproduces the behaviours the paper's design depends on:
//
//   - The node manager caps only the *total DC* power of the server; it has
//     no notion of per-supply budgets (Section 3.1). Enforcing individual AC
//     budgets per supply is the job of the capping controller built on top.
//   - A new DC cap takes effect with realistic actuation dynamics: the
//     paper's node manager brings power under a new cap within 6 seconds.
//   - Servers do not split load evenly across their supplies; each supply
//     carries an intrinsic fraction r of the server's load that cannot be
//     adjusted at runtime (up to a 65/35 split in the paper's fleet).
package server

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"capmaestro/internal/power"
	"capmaestro/internal/telemetry"
)

// Priority is a workload priority level; larger values are more important.
// The paper expects on the order of 10 levels in practice.
type Priority int

// Common priorities used by the paper's experiments.
const (
	PriorityLow  Priority = 0
	PriorityHigh Priority = 1
)

// SupplyState describes a power supply's operating condition.
type SupplyState int

// Supply states.
const (
	SupplyActive  SupplyState = iota
	SupplyStandby             // hot-spare mode: drawing no load by policy
	SupplyFailed              // faulted or disconnected from its feed
)

// String returns a short label for the state.
func (s SupplyState) String() string {
	switch s {
	case SupplyActive:
		return "active"
	case SupplyStandby:
		return "standby"
	case SupplyFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Supply is one power supply of a server, connected to one feed.
type Supply struct {
	ID string
	// Split is the intrinsic fraction of the server's load this supply
	// carries while all supplies are active. Splits across a server's
	// supplies sum to 1.
	Split float64
	State SupplyState
}

// Config describes a server to simulate.
type Config struct {
	ID       string
	Model    power.ServerModel // controllable AC envelope (idle/capmin/capmax)
	Priority Priority
	Supplies []Supply

	// Efficiency converts between the DC domain the node manager caps and
	// the AC domain the feeds see. Nil selects the default platinum curve.
	Efficiency *power.EfficiencyCurve
	// RatedDC is the per-server DC capacity used to locate the efficiency
	// operating point; zero derives it from the model's CapMax.
	RatedDC power.Watts

	// ActuationTau is the first-order time constant of the node manager's
	// response to a new DC cap. The default settles within the 6-second
	// bound the paper reports.
	ActuationTau time.Duration

	// NoiseSigma adds zero-mean Gaussian noise (in watts) to sensor
	// readings, to exercise controller robustness. Zero disables noise.
	NoiseSigma float64
	// NoiseSeed seeds the sensor-noise generator for reproducibility.
	NoiseSeed int64

	// UncontrolledPower models components the node manager cannot
	// throttle — GPUs, storage, NICs — which the paper's Section 7 calls
	// out as a gap in today's capping controllers. It adds a constant AC
	// draw that shifts the whole controllable envelope upward: the
	// effective floor becomes CapMin + UncontrolledPower, and budgets
	// below it are unenforceable.
	UncontrolledPower power.Watts

	// Telemetry registers node-manager metrics (the actuation-clamp
	// counter) on the given registry; nil disables instrumentation.
	Telemetry *telemetry.Registry
}

// DefaultActuationTau makes a step to a new cap settle (>95%) within the
// 6-second enforcement window the paper's node manager guarantees.
const DefaultActuationTau = 2 * time.Second

// hotSpare is a per-supply energy-saving policy: the supply drops to
// standby (carrying no load) when the server draws little power and
// resumes above a higher threshold. Some servers ship this behaviour in
// firmware; it is one of the paper's three causes of feed imbalance
// (Section 3.1).
type hotSpare struct {
	supplyID   string
	enterBelow power.Watts
	exitAbove  power.Watts
}

// Server is a simulated dual-corded (or single-corded) server.
type Server struct {
	id       string
	model    power.ServerModel
	priority Priority
	supplies []Supply
	eff      *power.EfficiencyCurve
	ratedDC  power.Watts
	tau      time.Duration

	util        float64     // workload CPU utilization in [0,1]
	targetDCCap power.Watts // cap last requested via SetDCCap
	effDCCap    power.Watts // cap currently actuated by the node manager

	uncontrolled power.Watts
	spares       []hotSpare

	noise *rand.Rand
	sigma float64

	// clamps counts SetDCCap requests outside the controllable range; a
	// climbing rate means upstream budgets are unenforceable as issued.
	clamps *telemetry.Counter
}

// New validates the configuration and constructs a server. The initial DC
// cap is the maximum (uncapped); initial utilization is zero.
func New(cfg Config) (*Server, error) {
	if cfg.ID == "" {
		return nil, errors.New("server: empty ID")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, fmt.Errorf("server %s: %w", cfg.ID, err)
	}
	if len(cfg.Supplies) == 0 {
		return nil, fmt.Errorf("server %s: needs at least one supply", cfg.ID)
	}
	var splitSum float64
	seen := make(map[string]bool)
	for _, s := range cfg.Supplies {
		if s.ID == "" {
			return nil, fmt.Errorf("server %s: supply with empty ID", cfg.ID)
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("server %s: duplicate supply %q", cfg.ID, s.ID)
		}
		seen[s.ID] = true
		if s.Split <= 0 || s.Split > 1 {
			return nil, fmt.Errorf("server %s: supply %q split %v out of (0,1]", cfg.ID, s.ID, s.Split)
		}
		splitSum += s.Split
	}
	if math.Abs(splitSum-1) > 1e-6 {
		return nil, fmt.Errorf("server %s: supply splits sum to %v, want 1", cfg.ID, splitSum)
	}
	eff := cfg.Efficiency
	if eff == nil {
		eff = power.DefaultEfficiencyCurve()
	}
	ratedDC := cfg.RatedDC
	if ratedDC == 0 {
		// Approximate: rated DC output near the DC draw at CapMax.
		ratedDC = eff.ACToDC(cfg.Model.CapMax, cfg.Model.CapMax)
	}
	tau := cfg.ActuationTau
	if tau == 0 {
		tau = DefaultActuationTau
	}
	if cfg.UncontrolledPower < 0 {
		return nil, fmt.Errorf("server %s: negative uncontrolled power", cfg.ID)
	}
	srv := &Server{
		id:           cfg.ID,
		model:        cfg.Model,
		priority:     cfg.Priority,
		supplies:     append([]Supply(nil), cfg.Supplies...),
		eff:          eff,
		ratedDC:      ratedDC,
		tau:          tau,
		sigma:        cfg.NoiseSigma,
		uncontrolled: cfg.UncontrolledPower,
	}
	srv.clamps = cfg.Telemetry.CounterVec("capmaestro_server_actuation_clamps_total",
		"DC cap requests clipped to the node manager's controllable range.",
		"server").With(cfg.ID)
	if cfg.NoiseSigma > 0 {
		srv.noise = rand.New(rand.NewSource(cfg.NoiseSeed))
	}
	_, hi := srv.Envelope()
	srv.targetDCCap = srv.dcAt(hi)
	srv.effDCCap = srv.targetDCCap
	return srv, nil
}

// MustNew is New but panics on error; for static fixtures.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// ID returns the server's identifier.
func (s *Server) ID() string { return s.id }

// Model returns the server's controllable AC power envelope.
func (s *Server) Model() power.ServerModel { return s.model }

// Priority returns the server's priority level.
func (s *Server) Priority() Priority { return s.priority }

// SetPriority changes the server's priority level. In a deployment this
// happens when the job scheduler places or removes workloads (Section 7
// calls for exactly this coordination); the next control period budgets
// proactively with the new priority.
func (s *Server) SetPriority(p Priority) { s.priority = p }

// Supplies returns a copy of the supply descriptors.
func (s *Server) Supplies() []Supply { return append([]Supply(nil), s.supplies...) }

// SupplyIDs lists supply IDs in configuration order.
func (s *Server) SupplyIDs() []string {
	ids := make([]string, len(s.supplies))
	for i, sup := range s.supplies {
		ids[i] = sup.ID
	}
	return ids
}

// dcAt converts an AC power to DC using the server's efficiency curve.
func (s *Server) dcAt(ac power.Watts) power.Watts { return s.eff.ACToDC(ac, s.ratedDC) }

// acAt converts a DC power to AC using the server's efficiency curve.
func (s *Server) acAt(dc power.Watts) power.Watts { return s.eff.DCToAC(dc, s.ratedDC) }

// Envelope returns the server's effective controllable AC range: the
// model's [CapMin, CapMax] shifted up by any uncontrolled component power.
// Budget allocation must use this floor — a budget below it cannot be
// enforced no matter how hard the node manager throttles.
func (s *Server) Envelope() (capMin, capMax power.Watts) {
	return s.model.CapMin + s.uncontrolled, s.model.CapMax + s.uncontrolled
}

// UncontrolledPower reports the constant draw of unthrottleable
// components.
func (s *Server) UncontrolledPower() power.Watts { return s.uncontrolled }

// DCCapRange returns the node manager's controllable DC cap range,
// corresponding to the effective AC envelope.
func (s *Server) DCCapRange() (lo, hi power.Watts) {
	capMin, capMax := s.Envelope()
	return s.dcAt(capMin), s.dcAt(capMax)
}

// SetUtilization sets the workload's CPU utilization in [0,1].
func (s *Server) SetUtilization(u float64) {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	s.util = u
}

// Utilization returns the current workload CPU utilization.
func (s *Server) Utilization() float64 { return s.util }

// SetDCCap requests a new DC power cap from the node manager. The cap is
// clipped to the controllable range and takes effect over the following
// seconds according to the actuation dynamics.
func (s *Server) SetDCCap(cap power.Watts) {
	lo, hi := s.DCCapRange()
	s.targetDCCap = cap.Clamp(lo, hi)
	if s.targetDCCap != cap {
		s.clamps.Inc()
	}
}

// TargetDCCap returns the most recently requested (clipped) DC cap.
func (s *Server) TargetDCCap() power.Watts { return s.targetDCCap }

// EffectiveDCCap returns the cap the node manager is currently enforcing.
func (s *Server) EffectiveDCCap() power.Watts { return s.effDCCap }

// ConfigureHotSpare enables the standby policy on one supply: it enters
// standby when total server AC power falls below enterBelow and reactivates
// above exitAbove (the gap provides hysteresis). It returns an error for
// unknown supplies or a non-positive hysteresis band.
func (s *Server) ConfigureHotSpare(supplyID string, enterBelow, exitAbove power.Watts) error {
	if exitAbove <= enterBelow {
		return fmt.Errorf("server %s: hot-spare exit %v must exceed enter %v", s.id, exitAbove, enterBelow)
	}
	found := false
	for _, sup := range s.supplies {
		if sup.ID == supplyID {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("server %s: unknown supply %q", s.id, supplyID)
	}
	for i := range s.spares {
		if s.spares[i].supplyID == supplyID {
			s.spares[i] = hotSpare{supplyID: supplyID, enterBelow: enterBelow, exitAbove: exitAbove}
			return nil
		}
	}
	s.spares = append(s.spares, hotSpare{supplyID: supplyID, enterBelow: enterBelow, exitAbove: exitAbove})
	return nil
}

// Step advances the node manager's actuation by dt: the effective cap moves
// toward the target with first-order dynamics. Hot-spare policies are
// evaluated after actuation.
func (s *Server) Step(dt time.Duration) {
	if dt <= 0 {
		return
	}
	alpha := 1 - math.Exp(-dt.Seconds()/s.tau.Seconds())
	s.effDCCap += power.Watts(alpha) * (s.targetDCCap - s.effDCCap)
	if power.ApproxEqual(s.effDCCap, s.targetDCCap, 0.01) {
		s.effDCCap = s.targetDCCap
	}
	s.applyHotSpares()
}

// applyHotSpares toggles spare supplies between active and standby based
// on the server's current draw. Failed supplies are never touched, and a
// spare stays active when it is the only working supply.
func (s *Server) applyHotSpares() {
	for _, hs := range s.spares {
		total := s.ACPower()
		for i := range s.supplies {
			sup := &s.supplies[i]
			if sup.ID != hs.supplyID || sup.State == SupplyFailed {
				continue
			}
			switch {
			case sup.State == SupplyActive && total < hs.enterBelow && s.WorkingSupplies() > 1:
				sup.State = SupplyStandby
			case sup.State == SupplyStandby && total > hs.exitAbove:
				sup.State = SupplyActive
			}
		}
	}
}

// ACDemand is the AC power the workload would consume at full performance
// (0% throttling) at the current utilization, including uncontrolled
// components.
func (s *Server) ACDemand() power.Watts { return s.model.PowerAt(s.util) + s.uncontrolled }

// acFloor is the AC power at the lowest performance state for the current
// utilization: the throttleable dynamic portion scales with utilization, so
// a lightly loaded server cannot be pushed all the way down to CapMin's
// full-load floor. Uncontrolled components never throttle.
func (s *Server) acFloor() power.Watts {
	return s.model.Idle + power.Watts(s.util)*(s.model.CapMin-s.model.Idle) + s.uncontrolled
}

// DCPower returns the DC power the server is drawing now, after the node
// manager applies the effective cap.
func (s *Server) DCPower() power.Watts {
	demand := s.dcAt(s.ACDemand())
	floor := s.dcAt(s.acFloor())
	p := power.Min(demand, s.effDCCap)
	return power.Max(p, floor)
}

// ACPower returns the total AC power drawn from the feeds now.
func (s *Server) ACPower() power.Watts { return s.acAt(s.DCPower()) }

// ThrottleLevel returns the node manager's power-cap throttling metric in
// [0,1]: 0 means full performance, 1 means the lowest performance state for
// the current workload.
func (s *Server) ThrottleLevel() float64 {
	demand := s.dcAt(s.ACDemand())
	floor := s.dcAt(s.acFloor())
	actual := s.DCPower()
	if actual >= demand || demand <= floor {
		return 0
	}
	t := float64((demand - actual) / (demand - floor))
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// PerfLevel returns 1 − ThrottleLevel: the fraction of full performance the
// workload currently achieves.
func (s *Server) PerfLevel() float64 { return 1 - s.ThrottleLevel() }

// workingSplits returns each supply's renormalized share of the server
// load, accounting for failed and standby supplies. A failed or standby
// supply carries zero.
func (s *Server) workingSplits() []float64 {
	shares := make([]float64, len(s.supplies))
	var sum float64
	for i, sup := range s.supplies {
		if sup.State == SupplyActive {
			shares[i] = sup.Split
			sum += sup.Split
		}
	}
	if sum == 0 {
		return shares // total power-loss condition; all zero
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares
}

// ActiveSupplyIDs lists the IDs of supplies currently carrying load, in
// configuration order.
func (s *Server) ActiveSupplyIDs() []string {
	var ids []string
	for _, sup := range s.supplies {
		if sup.State == SupplyActive {
			ids = append(ids, sup.ID)
		}
	}
	return ids
}

// WorkingSupplies reports the number of active supplies (the paper's M).
func (s *Server) WorkingSupplies() int {
	n := 0
	for _, sup := range s.supplies {
		if sup.State == SupplyActive {
			n++
		}
	}
	return n
}

// SupplyShare returns the renormalized split fraction r for the named
// supply under the current supply states, and whether the supply exists.
func (s *Server) SupplyShare(supplyID string) (float64, bool) {
	shares := s.workingSplits()
	for i, sup := range s.supplies {
		if sup.ID == supplyID {
			return shares[i], true
		}
	}
	return 0, false
}

// SupplyACPower returns the AC power drawn through the named supply.
func (s *Server) SupplyACPower(supplyID string) (power.Watts, bool) {
	share, ok := s.SupplyShare(supplyID)
	if !ok {
		return 0, false
	}
	return power.Watts(share) * s.ACPower(), true
}

// SetSupplyState changes a supply's operating condition (fail a cord,
// enter/leave standby). It returns an error for unknown supplies.
func (s *Server) SetSupplyState(supplyID string, state SupplyState) error {
	for i := range s.supplies {
		if s.supplies[i].ID == supplyID {
			s.supplies[i].State = state
			return nil
		}
	}
	return fmt.Errorf("server %s: unknown supply %q", s.id, supplyID)
}

// Reading is one IPMI-style sensor sample.
type Reading struct {
	// SupplyAC maps supply ID to its measured AC input power.
	SupplyAC map[string]power.Watts
	// TotalAC is the summed AC input power.
	TotalAC power.Watts
	// DCPower is the measured total DC power.
	DCPower power.Watts
	// Throttle is the node manager's power-cap throttling level in [0,1].
	Throttle float64
}

// ReadSensors samples the server's sensors, applying measurement noise when
// configured.
func (s *Server) ReadSensors() Reading {
	r := Reading{
		SupplyAC: make(map[string]power.Watts, len(s.supplies)),
		DCPower:  s.DCPower(),
		Throttle: s.ThrottleLevel(),
	}
	shares := s.workingSplits()
	ac := s.ACPower()
	for i, sup := range s.supplies {
		v := power.Watts(shares[i]) * ac
		if s.noise != nil && v > 0 {
			v += power.Watts(s.noise.NormFloat64() * s.sigma)
			if v < 0 {
				v = 0
			}
		}
		r.SupplyAC[sup.ID] = v
		r.TotalAC += v
	}
	return r
}

// Efficiency exposes the server's AC/DC efficiency curve.
func (s *Server) Efficiency() *power.EfficiencyCurve { return s.eff }

// RatedDC exposes the rated DC capacity used for efficiency lookups.
func (s *Server) RatedDC() power.Watts { return s.ratedDC }
