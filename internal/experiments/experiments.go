// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment returns a Result holding the
// measured rows/series formatted like the paper reports them, alongside
// the paper's published values for comparison, and (for figures) the raw
// time series for CSV export. The cmd/experiments binary and the
// repository's benchmark suite both drive this package.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"capmaestro/internal/trace"
)

// Result is the output of one experiment.
type Result struct {
	// ID is the experiment's registry key ("table1", "fig5", ...).
	ID string
	// Title describes the experiment as in the paper.
	Title string
	// Text is the formatted paper-style output.
	Text string
	// Recorder carries time series for figure experiments (nil for
	// tables).
	Recorder *trace.Recorder
}

// Options tunes experiment fidelity.
type Options struct {
	// Fast reduces Monte Carlo run counts for quick regeneration; the
	// defaults match the fidelity used to validate against the paper.
	Fast bool
	// TypicalRuns and WorstCaseRuns override the capacity-study run
	// counts; zero selects per-mode defaults.
	TypicalRuns   int
	WorstCaseRuns int
	// Workers bounds the concurrency of the Monte Carlo capacity studies;
	// zero uses one worker per CPU. Results are identical for any value.
	Workers int
	// Seed makes every experiment reproducible.
	Seed int64
}

func (o Options) typicalRuns() int {
	if o.TypicalRuns > 0 {
		return o.TypicalRuns
	}
	if o.Fast {
		return 60
	}
	return 400
}

func (o Options) worstRuns() int {
	if o.WorstCaseRuns > 0 {
		return o.WorstCaseRuns
	}
	if o.Fast {
		return 10
	}
	return 60
}

// Experiment is a registered regenerator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table 1: local vs. global priority budgets (conceptual)", func(o Options) (*Result, error) { return Table1(o) }},
		{"fig5", "Figure 5: power capping for redundant power supplies", func(o Options) (*Result, error) { return Figure5(o) }},
		{"table2", "Table 2 + Figure 6a: power capping policies on the test bed", func(o Options) (*Result, error) { return Table2(o) }},
		{"fig6b", "Figure 6b: circuit-breaker power under Global Priority", func(o Options) (*Result, error) { return Figure6b(o) }},
		{"table3", "Table 3 + Figure 7b: stranded power optimization", func(o Options) (*Result, error) { return Table3(o) }},
		{"fig7c", "Figure 7c: Y-side feed power with and without SPO", func(o Options) (*Result, error) { return Figure7c(o) }},
		{"fig8", "Figure 8: distribution of average CPU utilization", func(o Options) (*Result, error) { return Figure8(o) }},
		{"fig9", "Figure 9: total servers deployable", func(o Options) (*Result, error) { return Figure9(o) }},
		{"fig10", "Figure 10: average cap ratios during a worst-case emergency", func(o Options) (*Result, error) { return Figure10(o) }},
		{"sens-priority", "Sensitivity: fraction of high-priority servers", func(o Options) (*Result, error) { return SensitivityHighPriorityFraction(o) }},
		{"sens-capmin", "Sensitivity: server Pcap_min", func(o Options) (*Result, error) { return SensitivityCapMin(o) }},
		{"sens-budget", "Sensitivity: contractual budget", func(o Options) (*Result, error) { return SensitivityContractualBudget(o) }},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists registered experiment IDs in paper order.
func IDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// table renders rows as a fixed-width text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
