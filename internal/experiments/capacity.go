package experiments

import (
	"fmt"
	"strings"

	"capmaestro/internal/core"
	"capmaestro/internal/dc"
	"capmaestro/internal/power"
	"capmaestro/internal/trace"
	"capmaestro/internal/workload"
)

func studyOptions(o Options) dc.StudyOptions {
	return dc.StudyOptions{
		TypicalRuns:   o.typicalRuns(),
		WorstCaseRuns: o.worstRuns(),
		Workers:       o.Workers,
		Seed:          o.Seed + 42,
	}
}

// Figure8 prints the synthetic stand-in for the paper's Figure 8 workload
// distribution.
func Figure8(Options) (*Result, error) {
	d := workload.Figure8Distribution()
	rec := trace.NewRecorder()
	var rows [][]string
	for _, b := range d.Buckets() {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", b[0]*100),
			fmt.Sprintf("%.1f%%", b[1]*100),
			strings.Repeat("█", int(b[1]*200+0.5)),
		})
	}
	var b strings.Builder
	b.WriteString(table([]string{"Avg CPU util", "Probability", ""}, rows))
	fmt.Fprintf(&b, "\nMean: %.1f%% (shared-cluster profile after Barroso et al.; tail calibrated\n", d.Mean()*100)
	b.WriteString("so the Table 4 data center supports 39 servers/rack in the typical case)\n")
	return &Result{ID: "fig8", Title: "Figure 8", Text: b.String(), Recorder: rec}, nil
}

var policies = []core.Policy{core.NoPriority, core.LocalPriority, core.GlobalPriority}

// Figure9 reproduces the deployable-server bars: typical-case and
// worst-case capacity per policy against the paper's 6318 / 3888 / 4860 /
// 5832.
func Figure9(o Options) (*Result, error) {
	opts := studyOptions(o)
	paperWorst := map[core.Policy]int{
		core.NoPriority: 3888, core.LocalPriority: 4860, core.GlobalPriority: 5832,
	}
	var rows [][]string
	for _, policy := range policies {
		typical, err := dc.FindCapacity(dc.DefaultConfig(), dc.Typical, policy, opts)
		if err != nil {
			return nil, err
		}
		worst, err := dc.FindCapacity(dc.DefaultConfig(), dc.WorstCase, policy, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			policy.String(),
			fmt.Sprintf("%d", typical.TotalServers),
			"6318",
			fmt.Sprintf("%d", worst.TotalServers),
			fmt.Sprintf("%d", paperWorst[policy]),
		})
	}
	var b strings.Builder
	b.WriteString(table([]string{"Policy", "Typical", "paper", "Worst case", "paper"}, rows))
	b.WriteString("\n(criterion: <1% average cap ratio — all servers in the typical case,\n")
	b.WriteString(" high-priority servers in the worst case; 30% of servers are high priority)\n")
	return &Result{ID: "fig9", Title: "Figure 9", Text: b.String()}, nil
}

// Figure10 reproduces the cap-ratio-vs-server-count curves during a
// worst-case emergency: Figure 10a (all servers) and 10b (high-priority
// servers) for the three policies.
func Figure10(o Options) (*Result, error) {
	opts := studyOptions(o)
	opts.MinPerRack = 12
	opts.MaxPerRack = 45
	opts.StepPerRack = 3

	curves := make(map[core.Policy][]dc.CurvePoint)
	for _, policy := range policies {
		c, err := dc.CapRatioCurve(dc.DefaultConfig(), dc.WorstCase, policy, opts)
		if err != nil {
			return nil, err
		}
		curves[policy] = c
	}
	var b strings.Builder
	header := []string{"Servers"}
	for _, p := range policies {
		header = append(header, p.String())
	}
	for _, fig := range []struct {
		name string
		pick func(dc.CurvePoint) float64
	}{
		{"Figure 10a: average cap ratio, all servers", func(p dc.CurvePoint) float64 { return p.CapRatioAll }},
		{"Figure 10b: average cap ratio, high-priority servers", func(p dc.CurvePoint) float64 { return p.CapRatioHigh }},
	} {
		b.WriteString(fig.name + "\n")
		var rows [][]string
		for i := range curves[core.NoPriority] {
			row := []string{fmt.Sprintf("%d", curves[core.NoPriority][i].TotalServers)}
			for _, p := range policies {
				row = append(row, fmt.Sprintf("%.3f", fig.pick(curves[p][i])))
			}
			rows = append(rows, row)
		}
		b.WriteString(table(header, rows))
		b.WriteByte('\n')
	}
	b.WriteString("(paper shape: ratios grow with server count; priority-aware policies hold\n")
	b.WriteString(" high-priority ratios near zero until much higher counts, global longest)\n")
	return &Result{ID: "fig10", Title: "Figure 10", Text: b.String()}, nil
}

// SensitivityHighPriorityFraction sweeps the fraction of high-priority
// servers (the paper's technical-report sensitivity study): more
// high-priority work shrinks Global Priority's worst-case advantage.
func SensitivityHighPriorityFraction(o Options) (*Result, error) {
	opts := studyOptions(o)
	var rows [][]string
	for _, frac := range []float64{0.10, 0.30, 0.50, 0.70} {
		cfg := dc.DefaultConfig()
		cfg.HighPriorityFraction = frac
		row := []string{fmt.Sprintf("%.0f%%", frac*100)}
		for _, policy := range []core.Policy{core.LocalPriority, core.GlobalPriority} {
			res, err := dc.FindCapacity(cfg, dc.WorstCase, policy, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", res.TotalServers))
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString(table([]string{"High-priority fraction", "Local Priority", "Global Priority"}, rows))
	b.WriteString("\n(worst-case capacity; Global ≥ Local everywhere, advantage shrinking as the\n")
	b.WriteString(" high-priority fraction grows — matching the technical report)\n")
	return &Result{ID: "sens-priority", Title: "Sensitivity: high-priority fraction", Text: b.String()}, nil
}

// SensitivityCapMin sweeps the server throttling floor Pcap_min: a deeper
// floor (lower Pcap_min) lets every policy pack more servers.
func SensitivityCapMin(o Options) (*Result, error) {
	opts := studyOptions(o)
	var rows [][]string
	for _, capMin := range []power.Watts{230, 270, 310, 350} {
		cfg := dc.DefaultConfig()
		cfg.Model.CapMin = capMin
		row := []string{fmt.Sprintf("%.0f W", float64(capMin))}
		for _, policy := range policies {
			res, err := dc.FindCapacity(cfg, dc.WorstCase, policy, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", res.TotalServers))
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString(table([]string{"Pcap_min", "No Priority", "Local Priority", "Global Priority"}, rows))
	b.WriteString("\n(worst-case capacity; a lower throttling floor frees more power for\n")
	b.WriteString(" high-priority servers, so priority-aware capacities rise)\n")
	return &Result{ID: "sens-capmin", Title: "Sensitivity: Pcap_min", Text: b.String()}, nil
}

// SensitivityContractualBudget sweeps the per-phase contractual budget.
func SensitivityContractualBudget(o Options) (*Result, error) {
	opts := studyOptions(o)
	var rows [][]string
	for _, kw := range []float64{560, 630, 700, 770} {
		cfg := dc.DefaultConfig()
		cfg.ContractualPerPhase = power.Kilowatts(kw)
		row := []string{fmt.Sprintf("%.0f kW", kw)}
		for _, policy := range policies {
			res, err := dc.FindCapacity(cfg, dc.WorstCase, policy, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", res.TotalServers))
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString(table([]string{"Contractual/phase", "No Priority", "Local Priority", "Global Priority"}, rows))
	b.WriteString("\n(worst-case capacity scales with the contractual budget for every policy;\n")
	b.WriteString(" the policy ordering is preserved at every budget)\n")
	return &Result{ID: "sens-budget", Title: "Sensitivity: contractual budget", Text: b.String()}, nil
}
