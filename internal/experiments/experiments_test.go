package experiments

import (
	"strings"
	"testing"
)

var fast = Options{Fast: true, TypicalRuns: 30, WorstCaseRuns: 4}

func TestRegistryAndFind(t *testing.T) {
	reg := Registry()
	if len(reg) != 12 {
		t.Fatalf("registry size = %d, want 12", len(reg))
	}
	ids := IDs()
	if len(ids) != len(reg) {
		t.Fatal("IDs length mismatch")
	}
	if _, ok := Find("table1"); !ok {
		t.Error("table1 missing")
	}
	if _, ok := Find("nope"); ok {
		t.Error("unknown ID should not resolve")
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestTable1MatchesPaperExactly(t *testing.T) {
	r, err := Table1(fast)
	if err != nil {
		t.Fatal(err)
	}
	// Local priority column: 350/270/310/310; global: 430/270/270/270.
	for _, want := range []string{"350", "310", "430"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, r.Text)
		}
	}
}

func TestFigure5SettlesOnBudgets(t *testing.T) {
	r, err := Figure5(fast)
	if err != nil {
		t.Fatal(err)
	}
	rec := r.Recorder
	// At t=50 (two+ control periods after the 200 W PS2 budget), PS2 power
	// is within 5% of 200; at t=130, PS1 is within 5% of 150.
	ps2 := rec.Series("PS2: Power").Points[50].V
	if ps2 > 210 || ps2 < 185 {
		t.Errorf("PS2 power at t=50 = %v, want ~200", ps2)
	}
	ps1 := rec.Series("PS1: Power").Points[130].V
	if ps1 > 157.5 || ps1 < 140 {
		t.Errorf("PS1 power at t=130 = %v, want ~150", ps1)
	}
	// Before any tightening, no throttling.
	if th := rec.Series("Throttling (%)").Points[25].V; th != 0 {
		t.Errorf("throttle at t=25 = %v, want 0", th)
	}
	// After both budget cuts, substantial throttling.
	if th := rec.Series("Throttling (%)").Points[200].V; th < 20 {
		t.Errorf("throttle at t=200 = %v, want substantial", th)
	}
}

func TestTable2PolicyShape(t *testing.T) {
	r, err := Table2(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "No Priority") ||
		!strings.Contains(r.Text, "Local Priority") ||
		!strings.Contains(r.Text, "Global Priority") {
		t.Fatalf("missing policy sections:\n%s", r.Text)
	}
	// Global priority section gives SA ~420 W (the row, not the header).
	global := r.Text[strings.Index(r.Text, "Global Priority ("):]
	saLine := global[strings.Index(global, "\nSA")+1:]
	saLine = saLine[:strings.Index(saLine, "\n")]
	if !strings.Contains(saLine, "42") && !strings.Contains(saLine, "41") {
		t.Errorf("global SA row suspicious: %q", saLine)
	}
}

func TestFigure6bNoViolations(t *testing.T) {
	r, err := Figure6b(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "top>1240W: 0 samples") ||
		!strings.Contains(r.Text, "left>750W: 0") ||
		!strings.Contains(r.Text, "right>750W: 0") {
		t.Errorf("expected zero top-CB violations:\n%s", r.Text)
	}
}

func TestTable3SPOBoostsSB(t *testing.T) {
	r, err := Table3(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "Stranded power reclaimed") {
		t.Errorf("missing stranded summary:\n%s", r.Text)
	}
	// Fig. 7b rows present.
	if !strings.Contains(r.Text, "w/o SPO") {
		t.Error("missing throughput table")
	}
}

func TestFigure7cFeedPowerRises(t *testing.T) {
	r, err := Figure7c(fast)
	if err != nil {
		t.Fatal(err)
	}
	without := r.Recorder.Series("without SPO").Last()
	with := r.Recorder.Series("with SPO").Last()
	if with < without+30 {
		t.Errorf("SPO should raise Y-feed power: %v -> %v", without, with)
	}
	if with > 702 {
		t.Errorf("Y-feed power %v exceeds its 700 W budget", with)
	}
}

func TestFigure8Output(t *testing.T) {
	r, err := Figure8(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "30%") || !strings.Contains(r.Text, "Mean") {
		t.Errorf("distribution output malformed:\n%s", r.Text)
	}
}

func TestFigure9HeadlineNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity sweep is expensive")
	}
	r, err := Figure9(fast)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"3888", "4860", "5832", "6318"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("Figure 9 output missing %s:\n%s", want, r.Text)
		}
	}
}

func TestFigure10Curves(t *testing.T) {
	if testing.Short() {
		t.Skip("curve sweep is expensive")
	}
	o := fast
	r, err := Figure10(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "Figure 10a") || !strings.Contains(r.Text, "Figure 10b") {
		t.Errorf("missing curve sections:\n%s", r.Text)
	}
}

func TestSensitivities(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweeps are expensive")
	}
	for _, fn := range []func(Options) (*Result, error){
		SensitivityHighPriorityFraction, SensitivityCapMin, SensitivityContractualBudget,
	} {
		r, err := fn(fast)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Text) < 100 {
			t.Errorf("sensitivity output too short:\n%s", r.Text)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.typicalRuns() != 400 || o.worstRuns() != 60 {
		t.Error("full-fidelity defaults wrong")
	}
	o.Fast = true
	if o.typicalRuns() != 60 || o.worstRuns() != 10 {
		t.Error("fast defaults wrong")
	}
	o.TypicalRuns, o.WorstCaseRuns = 5, 7
	if o.typicalRuns() != 5 || o.worstRuns() != 7 {
		t.Error("overrides ignored")
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]string{"A", "LongHeader"}, [][]string{{"xxxxxx", "1"}, {"y", "2"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "------") {
		t.Errorf("missing separator: %q", lines[1])
	}
}
