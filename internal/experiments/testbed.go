package experiments

import (
	"fmt"
	"strings"
	"time"

	"capmaestro/internal/capping"
	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/server"
	"capmaestro/internal/sim"
	"capmaestro/internal/topology"
	"capmaestro/internal/trace"
	"capmaestro/internal/workload"
)

// Table1 reproduces the conceptual example of Section 3.2: four 430 W
// servers under the Figure 2 hierarchy with a 1240 W budget, comparing
// local and global priority budgets against the paper's Table 1.
func Table1(Options) (*Result, error) {
	tree := func() *core.Node {
		mk := func(id, srv string, prio core.Priority) *core.Node {
			return core.NewLeaf(id, core.SupplyLeaf{
				SupplyID: id, ServerID: srv, Priority: prio, Share: 1,
				CapMin: 270, CapMax: 490, Demand: 430,
			})
		}
		return core.NewShifting("top", 1400,
			core.NewShifting("left", 750, mk("SA-ps", "SA", 1), mk("SB-ps", "SB", 0)),
			core.NewShifting("right", 750, mk("SC-ps", "SC", 0), mk("SD-ps", "SD", 0)),
		)
	}
	local, err := core.Allocate(tree(), 1240, core.LocalPriority)
	if err != nil {
		return nil, err
	}
	global, err := core.Allocate(tree(), 1240, core.GlobalPriority)
	if err != nil {
		return nil, err
	}

	paperLocal := map[string]float64{"SA": 350, "SB": 270, "SC": 310, "SD": 310}
	paperGlobal := map[string]float64{"SA": 430, "SB": 270, "SC": 270, "SD": 270}
	var rows [][]string
	for _, srv := range []string{"SA", "SB", "SC", "SD"} {
		rows = append(rows, []string{
			srv,
			map[string]string{"SA": "H"}[srv] + strings.Repeat("L", b2i(srv != "SA")),
			"430",
			fmt.Sprintf("%.0f", float64(local.Budget(srv+"-ps"))),
			fmt.Sprintf("%.0f", paperLocal[srv]),
			fmt.Sprintf("%.0f", float64(global.Budget(srv+"-ps"))),
			fmt.Sprintf("%.0f", paperGlobal[srv]),
		})
	}
	text := table(
		[]string{"Server", "Prio", "Demand(W)", "Local(W)", "paper", "Global(W)", "paper"},
		rows,
	)
	return &Result{ID: "table1", Title: "Table 1", Text: text}, nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Figure5 reproduces the per-supply cap enforcement experiment of
// Section 6.1: a dual-supply server is given a 200 W budget on PS2 at
// t=30 s and a tighter 150 W budget on PS1 at t=110 s. The capping
// controller must satisfy whichever supply is more constrained, settling
// within two control periods.
func Figure5(Options) (*Result, error) {
	srv, err := server.New(server.Config{
		ID:    "server",
		Model: power.DefaultServerModel(),
		Supplies: []server.Supply{
			{ID: "PS1", Split: 0.5},
			{ID: "PS2", Split: 0.5},
		},
	})
	if err != nil {
		return nil, err
	}
	srv.SetUtilization(srv.Model().UtilizationFor(430))
	ctl, err := capping.New(srv, capping.Config{})
	if err != nil {
		return nil, err
	}
	ctl.SetBudget("PS1", 300)
	ctl.SetBudget("PS2", 300)

	rec := trace.NewRecorder()
	for t := 0; t <= 200; t++ {
		now := time.Duration(t) * time.Second
		switch t {
		case 30:
			ctl.SetBudget("PS2", 200)
		case 110:
			ctl.SetBudget("PS1", 150)
		}
		srv.Step(time.Second)
		r := ctl.Sense()
		if t%8 == 0 {
			ctl.Iterate()
		}
		rec.Record("PS1: Budget", now, float64(ctl.Budget("PS1")))
		rec.Record("PS1: Power", now, float64(r.SupplyAC["PS1"]))
		rec.Record("PS2: Budget", now, float64(ctl.Budget("PS2")))
		rec.Record("PS2: Power", now, float64(r.SupplyAC["PS2"]))
		rec.Record("DC Cap", now, float64(srv.EffectiveDCCap()))
		rec.Record("Throttling (%)", now, r.Throttle*100)
	}

	at := func(name string, sec int) float64 {
		s := rec.Series(name)
		return s.Points[sec].V
	}
	var b strings.Builder
	b.WriteString(rec.ASCIIChart([]string{"PS1: Power", "PS2: Power", "PS1: Budget", "PS2: Budget"}, 72, 12))
	b.WriteString("\nCheckpoints (paper: power settles within 5% of budgets in ≤16 s):\n")
	b.WriteString(table(
		[]string{"t(s)", "PS1 power(W)", "PS1 budget", "PS2 power(W)", "PS2 budget", "throttle(%)"},
		[][]string{
			{"25", f1(at("PS1: Power", 25)), f1(at("PS1: Budget", 25)), f1(at("PS2: Power", 25)), f1(at("PS2: Budget", 25)), f1(at("Throttling (%)", 25))},
			{"50", f1(at("PS1: Power", 50)), f1(at("PS1: Budget", 50)), f1(at("PS2: Power", 50)), f1(at("PS2: Budget", 50)), f1(at("Throttling (%)", 50))},
			{"130", f1(at("PS1: Power", 130)), f1(at("PS1: Budget", 130)), f1(at("PS2: Power", 130)), f1(at("PS2: Budget", 130)), f1(at("Throttling (%)", 130))},
			{"200", f1(at("PS1: Power", 200)), f1(at("PS1: Budget", 200)), f1(at("PS2: Power", 200)), f1(at("PS2: Budget", 200)), f1(at("Throttling (%)", 200))},
		},
	))
	return &Result{ID: "fig5", Title: "Figure 5", Text: b.String(), Recorder: rec}, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// fig2Topology builds the single-feed test bed of Figure 2.
func fig2Topology() (*topology.Topology, error) {
	root := topology.NewNode("X", topology.KindUtility, 0)
	root.Feed = "X"
	top := root.AddChild(topology.NewNode("top-cb", topology.KindRPP, 1400))
	left := top.AddChild(topology.NewNode("left-cb", topology.KindCDU, 750))
	right := top.AddChild(topology.NewNode("right-cb", topology.KindCDU, 750))
	left.AddChild(topology.NewSupply("SA-ps", "SA", 1))
	left.AddChild(topology.NewSupply("SB-ps", "SB", 1))
	right.AddChild(topology.NewSupply("SC-ps", "SC", 1))
	right.AddChild(topology.NewSupply("SD-ps", "SD", 1))
	return topology.New(root)
}

var table2Demands = map[string]power.Watts{"SA": 420, "SB": 413, "SC": 417, "SD": 423}

func runTable2Sim(policy core.Policy, traceNodes []string) (*sim.Simulator, error) {
	topo, err := fig2Topology()
	if err != nil {
		return nil, err
	}
	model := power.DefaultServerModel()
	servers := make(map[string]sim.ServerSpec)
	for id, demand := range table2Demands {
		prio := core.Priority(0)
		if id == "SA" {
			prio = 1
		}
		servers[id] = sim.ServerSpec{Priority: prio, Utilization: model.UtilizationFor(demand)}
	}
	derating := topology.FullRating()
	s, err := sim.New(sim.Config{
		Topology:    topo,
		Servers:     servers,
		Policy:      policy,
		RootBudgets: map[topology.FeedID]power.Watts{"X": 1240},
		Derating:    &derating,
		TraceNodes:  traceNodes,
	})
	if err != nil {
		return nil, err
	}
	s.Run(2 * time.Minute)
	return s, nil
}

// Table2 reproduces the policy comparison of Section 6.2 (Table 2 and
// Figure 6a): steady-state budgets and normalized throughput for the four
// test-bed servers under No/Local/Global Priority.
func Table2(Options) (*Result, error) {
	paperBudget := map[core.Policy]map[string]float64{
		core.NoPriority:     {"SA": 314, "SB": 306, "SC": 311, "SD": 316},
		core.LocalPriority:  {"SA": 344, "SB": 274, "SC": 314, "SD": 317},
		core.GlobalPriority: {"SA": 419, "SB": 276, "SC": 275, "SD": 275},
	}
	paperThroughputSA := map[core.Policy]float64{
		core.NoPriority: 0.82, core.LocalPriority: 0.87, core.GlobalPriority: 1.00,
	}

	var b strings.Builder
	for _, policy := range []core.Policy{core.NoPriority, core.LocalPriority, core.GlobalPriority} {
		s, err := runTable2Sim(policy, nil)
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for _, id := range []string{"SA", "SB", "SC", "SD"} {
			alloc := s.LastAllocation("X")
			budget := alloc.Budget(id + "-ps")
			consumed := s.Server(id).ACPower()
			tput := workload.NormalizedThroughput(consumed, table2Demands[id])
			rows = append(rows, []string{
				id,
				fmt.Sprintf("%.0f", float64(table2Demands[id])),
				fmt.Sprintf("%.0f", float64(budget)),
				fmt.Sprintf("%.0f", paperBudget[policy][id]),
				fmt.Sprintf("%.0f", float64(consumed)),
				fmt.Sprintf("%.2f", tput),
			})
		}
		fmt.Fprintf(&b, "%s (paper Fig. 6a: SA throughput %.2f)\n", policy, paperThroughputSA[policy])
		b.WriteString(table([]string{"Server", "Demand(W)", "Budget(W)", "paper", "Power(W)", "Throughput"}, rows))
		b.WriteByte('\n')
	}
	return &Result{ID: "table2", Title: "Table 2 + Figure 6a", Text: b.String()}, nil
}

// Figure6b reproduces the circuit-breaker power traces under the Global
// Priority policy: the top CB stays under the 1240 W budget and the left
// and right CBs under their 750 W limits.
func Figure6b(Options) (*Result, error) {
	s, err := runTable2Sim(core.GlobalPriority, []string{"top-cb", "left-cb", "right-cb"})
	if err != nil {
		return nil, err
	}
	rec := s.Recorder()
	// The first control periods carry the uncapped boot transient (the
	// paper's test bed starts from an already-budgeted steady state);
	// breaker thermal tolerance covers it. Steady state is what Figure 6b
	// asserts, so violations are counted once capping has settled.
	const settle = 30 * time.Second
	countAfter := func(name string, threshold float64) int {
		n := 0
		for _, p := range rec.Series(name).Points {
			if p.T >= settle && p.V > threshold {
				n++
			}
		}
		return n
	}
	var b strings.Builder
	b.WriteString(rec.ASCIIChart([]string{"node:top-cb", "node:left-cb", "node:right-cb"}, 72, 12))
	b.WriteString(fmt.Sprintf("\nSteady-state violations (t≥30s): top>1240W: %d samples, left>750W: %d, right>750W: %d (paper: none)\n",
		countAfter("node:top-cb", 1240+1),
		countAfter("node:left-cb", 750),
		countAfter("node:right-cb", 750)))
	return &Result{ID: "fig6b", Title: "Figure 6b", Text: b.String(), Recorder: rec}, nil
}

// spoTopology builds the Figure 7a dual-feed scenario.
func spoTopology() (*topology.Topology, error) {
	mkFeed := func(feed topology.FeedID) (*topology.Node, *topology.Node, *topology.Node) {
		root := topology.NewNode(string(feed), topology.KindUtility, 0)
		root.Feed = feed
		top := root.AddChild(topology.NewNode(string(feed)+"-top", topology.KindRPP, 1400))
		left := top.AddChild(topology.NewNode(string(feed)+"-left", topology.KindCDU, 750))
		right := top.AddChild(topology.NewNode(string(feed)+"-right", topology.KindCDU, 750))
		return root, left, right
	}
	xRoot, xLeft, xRight := mkFeed("X")
	yRoot, yLeft, yRight := mkFeed("Y")
	xLeft.AddChild(topology.NewSupply("SA-x", "SA", 1))
	yLeft.AddChild(topology.NewSupply("SB-y", "SB", 1))
	xRight.AddChild(topology.NewSupply("SC-x", "SC", 0.533))
	yRight.AddChild(topology.NewSupply("SC-y", "SC", 0.467))
	xRight.AddChild(topology.NewSupply("SD-x", "SD", 0.461))
	yRight.AddChild(topology.NewSupply("SD-y", "SD", 0.539))
	return topology.New(xRoot, yRoot)
}

var spoDemands = map[string]power.Watts{"SA": 414, "SB": 415, "SC": 433, "SD": 439}

func runSPOSim(spo bool, traceNodes []string) (*sim.Simulator, error) {
	topo, err := spoTopology()
	if err != nil {
		return nil, err
	}
	model := power.DefaultServerModel()
	servers := make(map[string]sim.ServerSpec)
	for id, demand := range spoDemands {
		prio := core.Priority(0)
		if id == "SA" {
			prio = 1
		}
		servers[id] = sim.ServerSpec{Priority: prio, Utilization: model.UtilizationFor(demand)}
	}
	derating := topology.FullRating()
	s, err := sim.New(sim.Config{
		Topology:    topo,
		Servers:     servers,
		Policy:      core.GlobalPriority,
		SPO:         spo,
		RootBudgets: map[topology.FeedID]power.Watts{"X": 700, "Y": 700},
		Derating:    &derating,
		TraceNodes:  traceNodes,
	})
	if err != nil {
		return nil, err
	}
	s.Run(3 * time.Minute)
	return s, nil
}

// Table3 reproduces the stranded power study of Section 6.3: per-supply
// budgets and consumption with and without SPO, plus the Figure 7b
// normalized throughputs.
func Table3(Options) (*Result, error) {
	without, err := runSPOSim(false, nil)
	if err != nil {
		return nil, err
	}
	with, err := runSPOSim(true, nil)
	if err != nil {
		return nil, err
	}

	supplyOf := map[string][2]string{
		"SA": {"SA-x", ""}, "SB": {"", "SB-y"},
		"SC": {"SC-x", "SC-y"}, "SD": {"SD-x", "SD-y"},
	}
	paperBudgets := map[string][2]string{ // X/Y budgets, w/o SPO → w/ SPO
		"SA": {"415/0 → 416/0", ""}, "SB": {"0/346 → 0/413", ""},
		"SC": {"152/164 → 152/132", ""}, "SD": {"132/187 → 132/155", ""},
	}
	row := func(s *sim.Simulator, id string) (bx, by, px, py power.Watts) {
		sup := supplyOf[id]
		if sup[0] != "" {
			if a := s.LastAllocation("X"); a != nil {
				bx = a.Budget(sup[0])
			}
			px, _ = s.Server(id).SupplyACPower(sup[0])
		}
		if sup[1] != "" {
			if a := s.LastAllocation("Y"); a != nil {
				by = a.Budget(sup[1])
			}
			py, _ = s.Server(id).SupplyACPower(sup[1])
		}
		return
	}

	var rows [][]string
	for _, id := range []string{"SA", "SB", "SC", "SD"} {
		bx0, by0, px0, py0 := row(without, id)
		bx1, by1, px1, py1 := row(with, id)
		rows = append(rows, []string{
			id,
			fmt.Sprintf("%.0f", float64(spoDemands[id])),
			fmt.Sprintf("%.0f/%.0f", float64(bx0), float64(by0)),
			fmt.Sprintf("%.0f/%.0f", float64(px0), float64(py0)),
			fmt.Sprintf("%.0f/%.0f", float64(bx1), float64(by1)),
			fmt.Sprintf("%.0f/%.0f", float64(px1), float64(py1)),
			paperBudgets[id][0],
		})
	}
	var b strings.Builder
	b.WriteString(table(
		[]string{"Server", "Demand", "Budget w/o SPO (X/Y)", "Power w/o", "Budget w/ SPO", "Power w/", "paper budgets"},
		rows,
	))
	if rep := with.LastSPOReport(); rep != nil {
		fmt.Fprintf(&b, "\nStranded power reclaimed: %.0f W (paper: ~56 W on SC/SD Y-side)\n",
			float64(rep.TotalStranded))
	}
	b.WriteString("\nFigure 7b normalized throughput:\n")
	var trows [][]string
	for _, id := range []string{"SA", "SB", "SC", "SD"} {
		t0 := workload.NormalizedThroughput(without.Server(id).ACPower(), spoDemands[id])
		t1 := workload.NormalizedThroughput(with.Server(id).ACPower(), spoDemands[id])
		trows = append(trows, []string{id, fmt.Sprintf("%.2f", t0), fmt.Sprintf("%.2f", t1)})
	}
	b.WriteString(table([]string{"Server", "w/o SPO", "w/ SPO"}, trows))
	b.WriteString("(paper: SB 0.88 without SPO, >0.99 with SPO; SC/SD unchanged)\n")
	return &Result{ID: "table3", Title: "Table 3 + Figure 7b", Text: b.String()}, nil
}

// Figure7c reproduces the Y-side feed power trace: with SPO the feed
// consistently uses its full 700 W budget; without SPO, power is stranded.
func Figure7c(Options) (*Result, error) {
	without, err := runSPOSim(false, []string{"Y"})
	if err != nil {
		return nil, err
	}
	with, err := runSPOSim(true, []string{"Y"})
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	for _, p := range without.Recorder().Series("node:Y").Points {
		rec.Record("without SPO", p.T, p.V)
	}
	for _, p := range with.Recorder().Series("node:Y").Points {
		rec.Record("with SPO", p.T, p.V)
	}
	var b strings.Builder
	b.WriteString(rec.ASCIIChart([]string{"without SPO", "with SPO"}, 72, 10))
	fmt.Fprintf(&b, "\nSteady-state Y-feed power: without SPO %.0f W, with SPO %.0f W (paper: ~645 W vs ~700 W)\n",
		rec.Series("without SPO").Last(), rec.Series("with SPO").Last())
	return &Result{ID: "fig7c", Title: "Figure 7c", Text: b.String(), Recorder: rec}, nil
}
