package controlplane

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/telemetry"
)

// Wire codec names accepted by WithWireCodec and the -wire-codec flags.
// Servers default to auto-detection and speak whatever each connection
// opens with; clients default to JSON unless CAPMAESTRO_WIRE_CODEC says
// otherwise.
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
	CodecAuto   = "auto"
)

// WireCodecEnv is the environment variable consulted for the default
// client codec when no WithWireCodec option (or an "auto" value) is given.
// It lets whole test suites and deployments flip codecs without touching
// call sites.
const WireCodecEnv = "CAPMAESTRO_WIRE_CODEC"

// ParseWireCodec validates a codec name from a flag or config file.
func ParseWireCodec(name string) (string, error) {
	switch name {
	case CodecJSON, CodecBinary, CodecAuto, "":
		if name == "" {
			return CodecAuto, nil
		}
		return name, nil
	default:
		return "", fmt.Errorf("controlplane: unknown wire codec %q (want %s, %s, or %s)",
			name, CodecJSON, CodecBinary, CodecAuto)
	}
}

// resolveClientCodec maps an option value to the concrete codec a client
// dials with: an explicit choice wins, then the environment, then JSON.
func resolveClientCodec(name string) string {
	if name == CodecJSON || name == CodecBinary {
		return name
	}
	if env := os.Getenv(WireCodecEnv); env == CodecJSON || env == CodecBinary {
		return env
	}
	return CodecJSON
}

// codec encodes and decodes one side of a rack transport connection. A
// codec instance owns reusable buffers and is bound to a single
// connection; it is not safe for concurrent use (the transport serializes
// requests per connection).
type codec interface {
	Name() string
	WriteRequest(req *wireRequest) error
	ReadRequest(req *wireRequest) error
	WriteResponse(resp *wireResponse) error
	ReadResponse(resp *wireResponse) error
}

// jsonCodec is the historical newline-delimited JSON protocol: one request
// object per line, one response object per line. It remains the
// compatibility default; its byte stream is pinned by the wire-shape
// tests.
type jsonCodec struct {
	dec *json.Decoder
	enc *json.Encoder
}

func newJSONCodec(r *bufio.Reader, w io.Writer) *jsonCodec {
	return &jsonCodec{dec: json.NewDecoder(r), enc: json.NewEncoder(w)}
}

func (c *jsonCodec) Name() string { return CodecJSON }

func (c *jsonCodec) WriteRequest(req *wireRequest) error { return c.enc.Encode(req) }

func (c *jsonCodec) ReadRequest(req *wireRequest) error {
	*req = wireRequest{}
	return c.dec.Decode(req)
}

func (c *jsonCodec) WriteResponse(resp *wireResponse) error { return c.enc.Encode(resp) }

func (c *jsonCodec) ReadResponse(resp *wireResponse) error {
	*resp = wireResponse{}
	return c.dec.Decode(resp)
}

// The binary protocol: a connection opens with a two-byte preamble
// [binMagic, binVersion] (which the server uses to tell binary apart from
// JSON, whose first byte is '{'), then carries length-prefixed frames:
//
//	[u32 LE payload length][payload]
//
// Every payload starts with a version byte, so frame layout can evolve
// per-message without renegotiating the connection. All integers are
// little-endian; floats are IEEE-754 bits; strings are u16-length-prefixed
// UTF-8. Decoders enforce maxFrameLen before allocating and reject frames
// with trailing bytes, so malformed or adversarial input fails with an
// error and bounded memory, never a panic.
const (
	binMagic   = 0xC5 // first preamble byte; never valid leading JSON
	binVersion = 1

	// maxFrameLen bounds a single frame's payload. A 1024-rack summary
	// with traces is a few KiB; 1 MiB leaves three orders of magnitude of
	// headroom while keeping a forged length header harmless.
	maxFrameLen = 1 << 20
)

// request op bytes (binary encoding of the op strings).
const (
	opByteGather      = 1
	opByteBudget      = 2
	opBytePing        = 3
	opByteBatchGather = 4
	opByteBatchBudget = 5
)

// request flag bits.
const (
	reqFlagTrace      = 1 << 0 // trace context follows
	reqFlagHaveCached = 1 << 1 // gather: client holds the last full summaries
	reqFlagRack       = 1 << 2 // single op routed to a named rack
	reqFlagWantDigest = 1 << 3 // gather: attach a fleet observability digest
)

// response flag bits.
const (
	respFlagOK        = 1 << 0
	respFlagUnchanged = 1 << 1 // gather: summary unchanged, none attached
	respFlagSummary   = 1 << 2
	respFlagError     = 1 << 3
	respFlagSpans     = 1 << 4
	respFlagExplains  = 1 << 5
	respFlagBatch     = 1 << 6 // per-rack batch entries follow
	respFlagDigest    = 1 << 7 // fleet observability digest follows
)

// batch entry flag bits (one flags byte per entry).
const (
	entFlagOK        = 1 << 0
	entFlagUnchanged = 1 << 1
	entFlagSummary   = 1 << 2
	entFlagError     = 1 << 3
	entFlagDigest    = 1 << 4
)

func opToByte(op string) (byte, error) {
	switch op {
	case opGather:
		return opByteGather, nil
	case opBudget:
		return opByteBudget, nil
	case opPing:
		return opBytePing, nil
	case opBatchGather:
		return opByteBatchGather, nil
	case opBatchBudget:
		return opByteBatchBudget, nil
	default:
		return 0, fmt.Errorf("controlplane: binary codec cannot encode op %q", op)
	}
}

func opFromByte(b byte) (string, error) {
	switch b {
	case opByteGather:
		return opGather, nil
	case opByteBudget:
		return opBudget, nil
	case opBytePing:
		return opPing, nil
	case opByteBatchGather:
		return opBatchGather, nil
	case opByteBatchBudget:
		return opBatchBudget, nil
	default:
		return "", fmt.Errorf("controlplane: binary frame has unknown op byte %d", b)
	}
}

// binaryCodec implements the length-prefixed binary protocol. Encode
// assembles each frame in a reusable buffer and issues one Write; decode
// reads each frame into a reusable buffer and parses in place. Steady
// state (buffers grown, no trace attached) allocates nothing on either
// path except fresh Summary levels on full-summary frames, which must
// outlive the codec (the room worker retains them in rack proxies).
type binaryCodec struct {
	r *bufio.Reader
	w io.Writer

	wbuf []byte // frame assembly for writes
	rbuf []byte // frame storage for reads

	// batch is the reusable decode buffer for batched response entries;
	// callers consume resp.Batch before the next read on this connection.
	batch []wireBatchEntry

	// sendPreamble marks a client codec that still owes the connection
	// preamble; it is prepended to the first frame's Write.
	sendPreamble bool

	// digBytes, when set, accumulates the encoded size of every fleet
	// digest written or read on this connection — the observability
	// plane's wire overhead, reported separately from total RPC bytes.
	digBytes *telemetry.Counter
}

func newBinaryCodec(r *bufio.Reader, w io.Writer) *binaryCodec {
	return &binaryCodec{r: r, w: w}
}

func (c *binaryCodec) Name() string { return CodecBinary }

// binWriter appends primitive fields to a frame under construction,
// latching the first error.
type binWriter struct {
	b   []byte
	err error
}

func (w *binWriter) u8(v byte)     { w.b = append(w.b, v) }
func (w *binWriter) u16(v uint16)  { w.b = append(w.b, byte(v), byte(v>>8)) }
func (w *binWriter) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *binWriter) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *binWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *binWriter) i64(v int64)   { w.u64(uint64(v)) }

func (w *binWriter) str(s string) {
	if len(s) > math.MaxUint16 {
		if w.err == nil {
			w.err = fmt.Errorf("controlplane: string field of %d bytes exceeds binary codec limit", len(s))
		}
		return
	}
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

// count writes a u16 element count, erroring when n does not fit.
func (w *binWriter) count(n int) {
	if n > math.MaxUint16 {
		if w.err == nil {
			w.err = fmt.Errorf("controlplane: %d elements exceed binary codec count limit", n)
		}
		n = 0
	}
	w.u16(uint16(n))
}

// binReader consumes primitive fields from a decoded frame with bounds
// checking, latching the first error; getters return zero values after an
// error so decode loops stay simple.
type binReader struct {
	b   []byte
	off int
	err error
}

var errFrameTruncated = errors.New("controlplane: binary frame truncated")

func (r *binReader) fail() {
	if r.err == nil {
		r.err = errFrameTruncated
	}
}

func (r *binReader) remaining() int { return len(r.b) - r.off }

func (r *binReader) take(n int) []byte {
	if r.err != nil || r.remaining() < n {
		r.fail()
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u8() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *binReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *binReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *binReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *binReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *binReader) i64() int64   { return int64(r.u64()) }

func (r *binReader) str() string {
	n := int(r.u16())
	if b := r.take(n); len(b) > 0 {
		return string(b)
	}
	return ""
}

// finish verifies the frame was consumed exactly: trailing bytes mean a
// framing desync or a forged message and are treated as protocol errors.
func (r *binReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("controlplane: binary frame has %d trailing bytes", r.remaining())
	}
	return nil
}

// beginFrame starts a new outgoing frame in the reusable buffer,
// reserving the length header (and the preamble when still owed).
func (c *binaryCodec) beginFrame() binWriter {
	b := c.wbuf[:0]
	if c.sendPreamble {
		b = append(b, binMagic, binVersion)
	}
	b = append(b, 0, 0, 0, 0) // length header, patched by endFrame
	return binWriter{b: b}
}

// endFrame patches the length header and writes the frame in one call.
func (c *binaryCodec) endFrame(w binWriter) error {
	if w.err != nil {
		return w.err
	}
	hdr := 0
	if c.sendPreamble {
		hdr = 2
	}
	payload := len(w.b) - hdr - 4
	if payload > maxFrameLen {
		return fmt.Errorf("controlplane: frame payload %d exceeds limit %d", payload, maxFrameLen)
	}
	binary.LittleEndian.PutUint32(w.b[hdr:], uint32(payload))
	c.wbuf = w.b
	if _, err := c.w.Write(w.b); err != nil {
		return err
	}
	c.sendPreamble = false
	return nil
}

// readFrame reads one length-prefixed frame into the reusable buffer.
func (c *binaryCodec) readFrame() (binReader, error) {
	hdr, err := c.r.Peek(4)
	if err != nil {
		return binReader{}, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n < 2 || n > maxFrameLen {
		return binReader{}, fmt.Errorf("controlplane: binary frame length %d outside [2, %d]", n, maxFrameLen)
	}
	if _, err := c.r.Discard(4); err != nil {
		return binReader{}, err
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	buf := c.rbuf[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return binReader{}, err
	}
	return binReader{b: buf}, nil
}

func (c *binaryCodec) WriteRequest(req *wireRequest) error {
	op, err := opToByte(req.Op)
	if err != nil {
		return err
	}
	w := c.beginFrame()
	w.u8(binVersion)
	w.u8(op)
	var flags byte
	if req.Trace != nil {
		flags |= reqFlagTrace
	}
	if req.HaveCached {
		flags |= reqFlagHaveCached
	}
	if req.Rack != "" {
		flags |= reqFlagRack
	}
	if req.WantDigest {
		flags |= reqFlagWantDigest
	}
	w.u8(flags)
	if req.Rack != "" {
		w.str(req.Rack)
	}
	switch req.Op {
	case opBudget:
		w.f64(float64(req.Budget))
	case opBatchGather:
		w.count(len(req.BatchRacks))
		for _, rack := range req.BatchRacks {
			w.str(rack)
		}
	case opBatchBudget:
		w.count(len(req.BatchBudgets))
		for i := range req.BatchBudgets {
			w.str(req.BatchBudgets[i].Rack)
			w.f64(float64(req.BatchBudgets[i].Budget))
		}
	}
	if req.Trace != nil {
		w.str(req.Trace.TraceID)
		w.str(req.Trace.ParentID)
	}
	return c.endFrame(w)
}

func (c *binaryCodec) ReadRequest(req *wireRequest) error {
	*req = wireRequest{}
	r, err := c.readFrame()
	if err != nil {
		return err
	}
	if v := r.u8(); r.err == nil && v != binVersion {
		return fmt.Errorf("controlplane: binary frame version %d, want %d", v, binVersion)
	}
	op, opErr := opFromByte(r.u8())
	if r.err == nil && opErr != nil {
		return opErr
	}
	req.Op = op
	flags := r.u8()
	req.HaveCached = flags&reqFlagHaveCached != 0
	req.WantDigest = flags&reqFlagWantDigest != 0
	if flags&reqFlagRack != 0 {
		req.Rack = r.str()
	}
	switch op {
	case opBudget:
		req.Budget = power.Watts(r.f64())
	case opBatchGather:
		n := r.checkCount(int(r.u16()), 2)
		if n > 0 && r.err == nil {
			req.BatchRacks = make([]string, 0, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			rack := r.str()
			if r.err == nil {
				req.BatchRacks = append(req.BatchRacks, rack)
			}
		}
	case opBatchBudget:
		n := r.checkCount(int(r.u16()), 2+8)
		if n > 0 && r.err == nil {
			req.BatchBudgets = make([]BatchBudget, 0, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			bb := BatchBudget{Rack: r.str(), Budget: power.Watts(r.f64())}
			if r.err == nil {
				req.BatchBudgets = append(req.BatchBudgets, bb)
			}
		}
	}
	if flags&reqFlagTrace != 0 {
		tc := &flightrec.TraceContext{TraceID: r.str(), ParentID: r.str()}
		if r.err == nil {
			req.Trace = tc
		}
	}
	return r.finish()
}

func (c *binaryCodec) WriteResponse(resp *wireResponse) error {
	w := c.beginFrame()
	w.u8(binVersion)
	var flags byte
	if resp.OK {
		flags |= respFlagOK
	}
	if resp.Unchanged {
		flags |= respFlagUnchanged
	}
	if resp.Summary != nil {
		flags |= respFlagSummary
	}
	if resp.Error != "" {
		flags |= respFlagError
	}
	if len(resp.Spans) > 0 {
		flags |= respFlagSpans
	}
	if len(resp.Explains) > 0 {
		flags |= respFlagExplains
	}
	if len(resp.Batch) > 0 {
		flags |= respFlagBatch
	}
	if resp.Digest != nil {
		flags |= respFlagDigest
	}
	w.u8(flags)
	if resp.Error != "" {
		w.str(resp.Error)
	}
	if resp.Summary != nil {
		writeSummary(&w, resp.Summary)
	}
	if resp.Digest != nil {
		before := len(w.b)
		writeDigest(&w, resp.Digest)
		c.digBytes.Add(float64(len(w.b) - before))
	}
	if len(resp.Batch) > 0 {
		w.count(len(resp.Batch))
		for i := range resp.Batch {
			e := &resp.Batch[i]
			w.str(e.Rack)
			var ef byte
			if e.OK {
				ef |= entFlagOK
			}
			if e.Unchanged {
				ef |= entFlagUnchanged
			}
			if e.Summary != nil {
				ef |= entFlagSummary
			}
			if e.Error != "" {
				ef |= entFlagError
			}
			if e.Digest != nil {
				ef |= entFlagDigest
			}
			w.u8(ef)
			if e.Error != "" {
				w.str(e.Error)
			}
			if e.Summary != nil {
				writeSummary(&w, e.Summary)
			}
			if e.Digest != nil {
				before := len(w.b)
				writeDigest(&w, e.Digest)
				c.digBytes.Add(float64(len(w.b) - before))
			}
		}
	}
	if len(resp.Spans) > 0 {
		w.count(len(resp.Spans))
		for i := range resp.Spans {
			s := &resp.Spans[i]
			w.str(s.TraceID)
			w.str(s.SpanID)
			w.str(s.ParentID)
			w.str(s.Name)
			w.str(s.Node)
			w.i64(s.Start.UnixNano())
			w.i64(int64(s.Duration))
			w.u32(uint32(s.Retries))
			w.str(s.Error)
		}
	}
	if len(resp.Explains) > 0 {
		w.count(len(resp.Explains))
		for i := range resp.Explains {
			e := &resp.Explains[i]
			w.str(e.NodeID)
			w.str(e.SupplyID)
			w.str(e.ServerID)
			leaf := byte(0)
			if e.Leaf {
				leaf = 1
			}
			w.u8(leaf)
			w.u32(uint32(int32(e.Priority)))
			w.f64(float64(e.Demand))
			w.f64(float64(e.CapMin))
			w.f64(float64(e.Request))
			w.f64(float64(e.Constraint))
			w.f64(float64(e.Granted))
			w.str(string(e.Clamp))
			w.str(string(e.Phase))
		}
	}
	return c.endFrame(w)
}

// minimum encoded sizes, used to bound count fields against the bytes
// actually present before allocating element storage.
const (
	binLevelSize   = 4 + 3*8           // priority + three watt fields
	binSpanSize    = 6*2 + 2*8 + 4     // six empty strings, start, duration, retries
	binExplainSize = 5*2 + 1 + 4 + 5*8 // five empty strings, leaf, priority, five watt fields
	binEntrySize   = 2 + 1             // empty rack string + entry flags
)

// writeSummary appends a summary's binary form: constraint, then the
// priority-level metrics.
func writeSummary(w *binWriter, s *core.Summary) {
	w.f64(float64(s.Constraint))
	levels := s.LevelMetrics()
	w.count(len(levels))
	for i := range levels {
		w.u32(uint32(int32(levels[i].Priority)))
		w.f64(float64(levels[i].CapMin))
		w.f64(float64(levels[i].Demand))
		w.f64(float64(levels[i].Request))
	}
}

// readSummary decodes a summary written by writeSummary into a fresh
// Summary (callers retain decoded summaries beyond the codec's buffers).
func readSummary(r *binReader) *core.Summary {
	var s core.Summary
	s.Constraint = power.Watts(r.f64())
	n := r.checkCount(int(r.u16()), binLevelSize)
	for i := 0; i < n && r.err == nil; i++ {
		p := core.Priority(int32(r.u32()))
		capMin := power.Watts(r.f64())
		demand := power.Watts(r.f64())
		request := power.Watts(r.f64())
		s.SetLevel(p, capMin, demand, request)
	}
	if r.err != nil {
		return nil
	}
	return &s
}

// checkCount rejects element counts that could not possibly fit in the
// remaining frame bytes, so a forged count cannot force a large
// allocation.
func (r *binReader) checkCount(n, minSize int) int {
	if r.err != nil {
		return 0
	}
	if n*minSize > r.remaining() {
		r.fail()
		return 0
	}
	return n
}

// The fleet digest's binary form carries its own version byte (it evolves
// independently of the frame layout) followed by a content-flags byte, so
// empty sections cost nothing on the wire:
//
//	[u8 digVersion][u8 content flags][u32 racks][f64 ×7 watt fields]
//	[u32 violating racks][worst-rack string?][headroom hist?]
//	[outliers?][levels?]
//
// Histograms encode sparsely (u8 nonzero-bucket count, then ascending
// u8 index + u64 count pairs, then the f64 sum) — a single rack's digest
// populates one bucket, so the common case is a handful of bytes.
const (
	digVersion      = 1
	digFlagHist     = 1 << 0
	digFlagOutliers = 1 << 1
	digFlagLevels   = 1 << 2
	digFlagWorst    = 1 << 3

	digFlagsKnown = digFlagHist | digFlagOutliers | digFlagLevels | digFlagWorst
)

// minimum encoded digest element sizes for checkCount.
const (
	binOutlierSize  = 2 + 2 + 3*8 + 4 // two empty strings, score + two watt fields, stale periods
	binDigLevelSize = 5*4 + 1         // five u32 counters + hist-present byte
)

// u32n writes a non-negative int as a u32, erroring when out of range.
func (w *binWriter) u32n(n int) {
	if n < 0 || int64(n) > math.MaxUint32 {
		if w.err == nil {
			w.err = fmt.Errorf("controlplane: integer field %d outside binary codec u32 range", n)
		}
		n = 0
	}
	w.u32(uint32(n))
}

// u8count writes a u8 element count, erroring when n does not fit.
func (w *binWriter) u8count(n int) {
	if n > math.MaxUint8 {
		if w.err == nil {
			w.err = fmt.Errorf("controlplane: %d elements exceed binary digest count limit", n)
		}
		n = 0
	}
	w.u8(byte(n))
}

func writeMergeHist(w *binWriter, h *telemetry.MergeHist) {
	nnz := 0
	for _, c := range h.Counts {
		if c != 0 {
			nnz++
		}
	}
	w.u8(byte(nnz))
	for i, c := range h.Counts {
		if c != 0 {
			w.u8(byte(i))
			w.u64(c)
		}
	}
	w.f64(h.Sum)
}

func readMergeHist(r *binReader, h *telemetry.MergeHist) {
	nnz := int(r.u8())
	if r.err == nil && nnz > telemetry.MergeHistBuckets {
		r.err = fmt.Errorf("controlplane: digest histogram has %d buckets, max %d", nnz, telemetry.MergeHistBuckets)
		return
	}
	for i := 0; i < nnz && r.err == nil; i++ {
		idx := int(r.u8())
		c := r.u64()
		if r.err != nil {
			return
		}
		if idx >= telemetry.MergeHistBuckets {
			r.err = fmt.Errorf("controlplane: digest histogram bucket index %d out of range", idx)
			return
		}
		h.Counts[idx] = c
	}
	h.Sum = r.f64()
}

// writeDigest appends a fleet digest's binary form. Content flags are
// derived from the digest itself, so a decode → re-encode round trip is
// canonical regardless of how the encoder's digest was built.
func writeDigest(w *binWriter, d *fleetobs.StatDigest) {
	w.u8(digVersion)
	var flags byte
	if d.Headroom.Count() > 0 {
		flags |= digFlagHist
	}
	if len(d.Outliers) > 0 {
		flags |= digFlagOutliers
	}
	if len(d.Levels) > 0 {
		flags |= digFlagLevels
	}
	if d.WorstHeadroomRack != "" {
		flags |= digFlagWorst
	}
	w.u8(flags)
	w.u32n(d.Racks)
	w.f64(d.PowerW)
	w.f64(d.RequestW)
	w.f64(d.CapMinW)
	w.f64(d.BudgetW)
	w.f64(d.HeadroomW)
	w.f64(d.WorstHeadroomW)
	w.f64(d.ViolationW)
	w.u32n(d.ViolatingRacks)
	if flags&digFlagWorst != 0 {
		w.str(d.WorstHeadroomRack)
	}
	if flags&digFlagHist != 0 {
		writeMergeHist(w, &d.Headroom)
	}
	if flags&digFlagOutliers != 0 {
		w.u8count(len(d.Outliers))
		for i := range d.Outliers {
			o := &d.Outliers[i]
			w.str(o.Rack)
			w.str(o.Reason)
			w.f64(o.Score)
			w.f64(o.PowerW)
			w.f64(o.HeadroomW)
			w.u32n(o.StalePeriods)
		}
	}
	if flags&digFlagLevels != 0 {
		w.u8count(len(d.Levels))
		for i := range d.Levels {
			l := &d.Levels[i]
			w.u32n(l.Level)
			w.u32n(l.Workers)
			w.u32n(l.GatherErrors)
			w.u32n(l.Stale)
			w.u32n(l.Held)
			if l.GatherLatency.Count() > 0 {
				w.u8(1)
				writeMergeHist(w, &l.GatherLatency)
			} else {
				w.u8(0)
			}
		}
	}
}

// readDigest decodes a digest written by writeDigest into a fresh
// StatDigest (callers retain decoded digests beyond the codec's buffers).
// Returns nil after latching a reader error.
func readDigest(r *binReader) *fleetobs.StatDigest {
	if v := r.u8(); r.err == nil && v != digVersion {
		r.err = fmt.Errorf("controlplane: digest version %d, want %d", v, digVersion)
	}
	flags := r.u8()
	if r.err == nil && flags&^byte(digFlagsKnown) != 0 {
		r.err = fmt.Errorf("controlplane: digest has unknown content flags 0x%02x", flags)
	}
	if r.err != nil {
		return nil
	}
	d := &fleetobs.StatDigest{}
	d.Racks = int(r.u32())
	d.PowerW = r.f64()
	d.RequestW = r.f64()
	d.CapMinW = r.f64()
	d.BudgetW = r.f64()
	d.HeadroomW = r.f64()
	d.WorstHeadroomW = r.f64()
	d.ViolationW = r.f64()
	d.ViolatingRacks = int(r.u32())
	if flags&digFlagWorst != 0 {
		d.WorstHeadroomRack = r.str()
		if r.err == nil && d.WorstHeadroomRack == "" {
			r.err = errors.New("controlplane: digest worst-rack flag set with empty rack ID")
		}
	}
	if flags&digFlagHist != 0 {
		readMergeHist(r, &d.Headroom)
	}
	if flags&digFlagOutliers != 0 {
		n := r.checkCount(int(r.u8()), binOutlierSize)
		if n > 0 && r.err == nil {
			d.Outliers = make([]fleetobs.Outlier, 0, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			var o fleetobs.Outlier
			o.Rack = r.str()
			o.Reason = r.str()
			o.Score = r.f64()
			o.PowerW = r.f64()
			o.HeadroomW = r.f64()
			o.StalePeriods = int(r.u32())
			if r.err == nil {
				d.Outliers = append(d.Outliers, o)
			}
		}
	}
	if flags&digFlagLevels != 0 {
		n := r.checkCount(int(r.u8()), binDigLevelSize)
		if n > 0 && r.err == nil {
			d.Levels = make([]fleetobs.LevelStats, 0, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			var l fleetobs.LevelStats
			l.Level = int(r.u32())
			l.Workers = int(r.u32())
			l.GatherErrors = int(r.u32())
			l.Stale = int(r.u32())
			l.Held = int(r.u32())
			switch present := r.u8(); {
			case r.err != nil:
			case present == 1:
				readMergeHist(r, &l.GatherLatency)
			case present != 0:
				r.err = fmt.Errorf("controlplane: digest level hist-present byte %d, want 0 or 1", present)
			}
			if r.err == nil {
				d.Levels = append(d.Levels, l)
			}
		}
	}
	if r.err != nil {
		return nil
	}
	return d
}

func (c *binaryCodec) ReadResponse(resp *wireResponse) error {
	*resp = wireResponse{}
	r, err := c.readFrame()
	if err != nil {
		return err
	}
	if v := r.u8(); r.err == nil && v != binVersion {
		return fmt.Errorf("controlplane: binary frame version %d, want %d", v, binVersion)
	}
	flags := r.u8()
	resp.OK = flags&respFlagOK != 0
	resp.Unchanged = flags&respFlagUnchanged != 0
	if flags&respFlagError != 0 {
		resp.Error = r.str()
	}
	if flags&respFlagSummary != 0 {
		resp.Summary = readSummary(&r)
	}
	if flags&respFlagDigest != 0 {
		before := r.off
		resp.Digest = readDigest(&r)
		c.digBytes.Add(float64(r.off - before))
	}
	if flags&respFlagSpans != 0 {
		n := r.checkCount(int(r.u16()), binSpanSize)
		if n > 0 && r.err == nil {
			resp.Spans = make([]flightrec.Span, 0, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			var s flightrec.Span
			s.TraceID = r.str()
			s.SpanID = r.str()
			s.ParentID = r.str()
			s.Name = r.str()
			s.Node = r.str()
			s.Start = time.Unix(0, r.i64())
			s.Duration = time.Duration(r.i64())
			s.Retries = int(r.u32())
			s.Error = r.str()
			if r.err == nil {
				resp.Spans = append(resp.Spans, s)
			}
		}
	}
	if flags&respFlagExplains != 0 {
		n := r.checkCount(int(r.u16()), binExplainSize)
		if n > 0 && r.err == nil {
			resp.Explains = make([]core.NodeExplain, 0, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			var e core.NodeExplain
			e.NodeID = r.str()
			e.SupplyID = r.str()
			e.ServerID = r.str()
			e.Leaf = r.u8() != 0
			e.Priority = core.Priority(int32(r.u32()))
			e.Demand = power.Watts(r.f64())
			e.CapMin = power.Watts(r.f64())
			e.Request = power.Watts(r.f64())
			e.Constraint = power.Watts(r.f64())
			e.Granted = power.Watts(r.f64())
			e.Clamp = core.Clamp(r.str())
			e.Phase = core.ExplainPhase(r.str())
			if r.err == nil {
				resp.Explains = append(resp.Explains, e)
			}
		}
	}
	if flags&respFlagBatch != 0 {
		n := r.checkCount(int(r.u16()), binEntrySize)
		entries := c.batch[:0]
		for i := 0; i < n && r.err == nil; i++ {
			var e wireBatchEntry
			e.Rack = r.str()
			ef := r.u8()
			e.OK = ef&entFlagOK != 0
			e.Unchanged = ef&entFlagUnchanged != 0
			if ef&entFlagError != 0 {
				e.Error = r.str()
			}
			if ef&entFlagSummary != 0 {
				e.Summary = readSummary(&r)
			}
			if ef&entFlagDigest != 0 {
				before := r.off
				e.Digest = readDigest(&r)
				c.digBytes.Add(float64(r.off - before))
			}
			if r.err == nil {
				entries = append(entries, e)
			}
		}
		if r.err == nil {
			resp.Batch = entries
			c.batch = entries
		}
	}
	if err := r.finish(); err != nil {
		*resp = wireResponse{}
		return err
	}
	return nil
}

// newClientCodec builds the codec a freshly dialed client connection
// speaks. Binary clients owe the connection preamble before their first
// frame.
func newClientCodec(name string, rw io.ReadWriter) codec {
	br := bufio.NewReader(rw)
	if name == CodecBinary {
		c := newBinaryCodec(br, rw)
		c.sendPreamble = true
		return c
	}
	return newJSONCodec(br, rw)
}

// detectServerCodec inspects the first byte of a new server-side
// connection and returns the codec it speaks: '{' opens a JSON request,
// binMagic opens the binary preamble. accept restricts which codecs the
// server admits (CodecAuto admits both).
func detectServerCodec(br *bufio.Reader, w io.Writer, accept string) (codec, error) {
	first, err := br.Peek(1)
	if err != nil {
		return nil, err
	}
	switch first[0] {
	case binMagic:
		if accept == CodecJSON {
			return nil, &protocolError{msg: "binary preamble on a JSON-only server"}
		}
		pre, err := br.Peek(2)
		if err != nil {
			return nil, err
		}
		if pre[1] != binVersion {
			return nil, &protocolError{msg: fmt.Sprintf("binary preamble version %d, want %d", pre[1], binVersion)}
		}
		if _, err := br.Discard(2); err != nil {
			return nil, err
		}
		return newBinaryCodec(br, w), nil
	case '{':
		if accept == CodecBinary {
			return nil, &protocolError{msg: "JSON request on a binary-only server"}
		}
		return newJSONCodec(br, w), nil
	default:
		return nil, &protocolError{msg: fmt.Sprintf("unrecognized protocol byte 0x%02x", first[0])}
	}
}

// deltaTracker is the server side of delta-encoded gathers: it remembers
// the last full summary sent on this connection — per rack, since a
// multi-rack connection interleaves racks — and squashes a gather
// response (or batch entry) to a few-byte "unchanged" marker while the
// fresh summary stays within the deadband of it. Trackers are
// per-connection, so every reconnect (including each retry, which always
// re-dials) starts from a forced full-summary resync.
type deltaTracker struct {
	deadband power.Watts
	last     map[string]core.Summary // by rack; "" for un-routed gathers
	// lastDig mirrors last for fleet digests on digest-bearing gathers:
	// a response only squashes when the summary AND its digest both sit
	// within the deadband, so the client's cached digest stays a faithful
	// substitute.
	lastDig map[string]*fleetobs.StatDigest
}

// squashable reports whether the rack's fresh summary (and digest, when
// one rides along) may be squashed, updating the tracker's last-sent
// records when not.
func (d *deltaTracker) squashable(haveCached bool, rack string, s *core.Summary, dig *fleetobs.StatDigest) bool {
	if last, ok := d.last[rack]; ok && haveCached && summariesWithin(&last, s, d.deadband) &&
		digestsWithin(d.lastDig[rack], dig, d.deadband) {
		return true
	}
	if d.last == nil {
		d.last = make(map[string]core.Summary)
	}
	d.last[rack] = s.Clone()
	if dig != nil {
		if d.lastDig == nil {
			d.lastDig = make(map[string]*fleetobs.StatDigest)
		}
		d.lastDig[rack] = dig.Clone()
	} else {
		delete(d.lastDig, rack)
	}
	return false
}

// squash rewrites resp in place to an "unchanged" frame when permitted,
// reporting whether it did. The client must have advertised a cached
// summary (drift protection: a client that lost its cache always gets a
// full frame).
func (d *deltaTracker) squash(req *wireRequest, resp *wireResponse) bool {
	if d == nil || req.Op != opGather || !resp.OK || resp.Summary == nil {
		return false
	}
	if d.squashable(req.HaveCached, req.Rack, resp.Summary, resp.Digest) {
		resp.Summary = nil
		resp.Digest = nil
		resp.Unchanged = true
		return true
	}
	return false
}

// squashBatch squashes eligible entries of a batched gather response,
// returning how many it rewrote.
func (d *deltaTracker) squashBatch(req *wireRequest, resp *wireResponse) int {
	if d == nil || req.Op != opBatchGather || !resp.OK {
		return 0
	}
	n := 0
	for i := range resp.Batch {
		e := &resp.Batch[i]
		if !e.OK || e.Summary == nil {
			continue
		}
		if d.squashable(req.HaveCached, e.Rack, e.Summary, e.Digest) {
			e.Summary = nil
			e.Digest = nil
			e.Unchanged = true
			n++
		}
	}
	return n
}

// digestsWithin reports whether a fresh digest b may be represented by the
// last-sent digest a without misleading the fleet rollup: counters and
// identities must match exactly, watt fields within the deadband. Both
// nil (a digest-less gather) is trivially within; a digest appearing or
// disappearing never squashes.
func digestsWithin(a, b *fleetobs.StatDigest, deadband power.Watts) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if deadband < 0 {
		deadband = 0
	}
	db := float64(deadband)
	if a.Racks != b.Racks || a.ViolatingRacks != b.ViolatingRacks ||
		a.WorstHeadroomRack != b.WorstHeadroomRack {
		return false
	}
	if absF(a.PowerW-b.PowerW) > db || absF(a.RequestW-b.RequestW) > db ||
		absF(a.CapMinW-b.CapMinW) > db || absF(a.BudgetW-b.BudgetW) > db ||
		absF(a.HeadroomW-b.HeadroomW) > db || absF(a.WorstHeadroomW-b.WorstHeadroomW) > db ||
		absF(a.ViolationW-b.ViolationW) > db {
		return false
	}
	if a.Headroom != b.Headroom {
		return false
	}
	if len(a.Outliers) != len(b.Outliers) || len(a.Levels) != len(b.Levels) {
		return false
	}
	for i := range a.Outliers {
		oa, ob := &a.Outliers[i], &b.Outliers[i]
		if oa.Rack != ob.Rack || oa.Reason != ob.Reason || oa.StalePeriods != ob.StalePeriods ||
			absF(oa.Score-ob.Score) > db || absF(oa.PowerW-ob.PowerW) > db ||
			absF(oa.HeadroomW-ob.HeadroomW) > db {
			return false
		}
	}
	for i := range a.Levels {
		if a.Levels[i] != b.Levels[i] {
			return false
		}
	}
	return true
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// summariesWithin reports whether every metric of b sits within deadband
// of a's. The comparison is against the last summary actually sent (not
// the last observed), so total drift while squashing is bounded by the
// deadband.
func summariesWithin(a, b *core.Summary, deadband power.Watts) bool {
	if deadband < 0 {
		deadband = 0
	}
	if absWatts(a.Constraint-b.Constraint) > deadband {
		return false
	}
	al, bl := a.LevelMetrics(), b.LevelMetrics()
	if len(al) != len(bl) {
		return false
	}
	for i := range al {
		if al[i].Priority != bl[i].Priority ||
			absWatts(al[i].CapMin-bl[i].CapMin) > deadband ||
			absWatts(al[i].Demand-bl[i].Demand) > deadband ||
			absWatts(al[i].Request-bl[i].Request) > deadband {
			return false
		}
	}
	return true
}

func absWatts(w power.Watts) power.Watts {
	if w < 0 {
		return -w
	}
	return w
}
