package controlplane

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
)

func leaf(id, serverID string, prio core.Priority, demand power.Watts) *core.Node {
	return core.NewLeaf(id, core.SupplyLeaf{
		SupplyID: id, ServerID: serverID, Priority: prio, Share: 1,
		CapMin: 270, CapMax: 490, Demand: demand,
	})
}

// distributedFig2 splits the Figure 2 hierarchy across workers: rack
// workers own the left and right CBs, the room worker owns the top CB with
// two proxies.
func distributedFig2(t *testing.T, policy core.Policy) (*RoomWorker, map[string]power.Watts, []*RackWorker) {
	t.Helper()
	budgets := make(map[string]power.Watts)
	var mu sync.Mutex
	sink := func(supplyID string, b power.Watts) {
		mu.Lock()
		budgets[supplyID] = b
		mu.Unlock()
	}
	leftTree := core.NewShifting("left", 750,
		leaf("SA-ps", "SA", 1, 430),
		leaf("SB-ps", "SB", 0, 430),
	)
	rightTree := core.NewShifting("right", 750,
		leaf("SC-ps", "SC", 0, 430),
		leaf("SD-ps", "SD", 0, 430),
	)
	leftWorker, err := NewRackWorker("left", leftTree, policy, sink)
	if err != nil {
		t.Fatal(err)
	}
	rightWorker, err := NewRackWorker("right", rightTree, policy, sink)
	if err != nil {
		t.Fatal(err)
	}
	roomTree := core.NewShifting("top", 1400,
		core.NewProxy("left", core.NewSummary()),
		core.NewProxy("right", core.NewSummary()),
	)
	room, err := NewRoomWorker(roomTree, 1240, policy, map[string]RackClient{
		"left":  LocalClient{Worker: leftWorker},
		"right": LocalClient{Worker: rightWorker},
	})
	if err != nil {
		t.Fatal(err)
	}
	return room, budgets, []*RackWorker{leftWorker, rightWorker}
}

// monolithicFig2 computes the same allocation in a single tree.
func monolithicFig2(policy core.Policy) map[string]power.Watts {
	tree := core.NewShifting("top", 1400,
		core.NewShifting("left", 750,
			leaf("SA-ps", "SA", 1, 430),
			leaf("SB-ps", "SB", 0, 430),
		),
		core.NewShifting("right", 750,
			leaf("SC-ps", "SC", 0, 430),
			leaf("SD-ps", "SD", 0, 430),
		),
	)
	return core.MustAllocate(tree, 1240, policy).SupplyBudgets
}

// TestDistributedMatchesMonolithic is the central control-plane property:
// splitting the hierarchy across workers changes nothing about the
// budgets, for every policy.
func TestDistributedMatchesMonolithic(t *testing.T) {
	for _, policy := range []core.Policy{core.NoPriority, core.LocalPriority, core.GlobalPriority} {
		t.Run(policy.String(), func(t *testing.T) {
			room, budgets, _ := distributedFig2(t, policy)
			if _, _, err := room.RunPeriod(context.Background()); err != nil {
				t.Fatal(err)
			}
			want := monolithicFig2(policy)
			for supply, wb := range want {
				if got := budgets[supply]; math.Abs(float64(got-wb)) > 0.001 {
					t.Errorf("%v: budget[%s] = %v, want %v (monolithic)", policy, supply, got, wb)
				}
			}
		})
	}
}

func TestRackWorkerValidation(t *testing.T) {
	tree := core.NewShifting("r", 0, leaf("a", "A", 0, 400))
	if _, err := NewRackWorker("", tree, core.GlobalPriority, nil); err == nil {
		t.Error("empty ID should fail")
	}
	if _, err := NewRackWorker("r", nil, core.GlobalPriority, nil); err == nil {
		t.Error("nil tree should fail")
	}
	bad := core.NewShifting("r", 0)
	if _, err := NewRackWorker("r", bad, core.GlobalPriority, nil); err == nil {
		t.Error("invalid tree should fail")
	}
	w, err := NewRackWorker("r", tree, core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.ID() != "r" {
		t.Error("ID accessor wrong")
	}
	if err := w.SetTree(nil); err == nil {
		t.Error("SetTree(nil) should fail")
	}
	if err := w.SetTree(core.NewShifting("r2", 0, leaf("b", "B", 0, 300))); err != nil {
		t.Errorf("SetTree valid: %v", err)
	}
	// Cancelled contexts are honored.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Gather(ctx); err == nil {
		t.Error("Gather with cancelled context should fail")
	}
	if err := w.ApplyBudget(ctx, 100); err == nil {
		t.Error("ApplyBudget with cancelled context should fail")
	}
}

func TestRackWorkerApplyBudgetUpdatesState(t *testing.T) {
	var got []power.Watts
	sink := func(_ string, b power.Watts) { got = append(got, b) }
	w, err := NewRackWorker("r", core.NewShifting("r", 0, leaf("a", "A", 0, 400)), core.GlobalPriority, sink)
	if err != nil {
		t.Fatal(err)
	}
	if w.LastAllocation() != nil {
		t.Error("no allocation expected before first budget")
	}
	if err := w.ApplyBudget(context.Background(), 350); err != nil {
		t.Fatal(err)
	}
	if w.LastBudget() != 350 {
		t.Errorf("last budget = %v", w.LastBudget())
	}
	if w.LastAllocation() == nil || len(got) != 1 {
		t.Error("allocation/sink not updated")
	}
	if got[0] != 350 {
		t.Errorf("sink budget = %v, want 350", got[0])
	}
}

func TestRoomWorkerValidation(t *testing.T) {
	if _, err := NewRoomWorker(nil, 0, core.GlobalPriority, nil); err == nil {
		t.Error("nil tree should fail")
	}
	noProxies := core.NewShifting("top", 0, leaf("a", "A", 0, 400))
	if _, err := NewRoomWorker(noProxies, 0, core.GlobalPriority, nil); err == nil {
		t.Error("tree without proxies should fail")
	}
	tree := core.NewShifting("top", 0, core.NewProxy("p1", core.NewSummary()))
	if _, err := NewRoomWorker(tree, 0, core.GlobalPriority, map[string]RackClient{}); err == nil {
		t.Error("proxy without client should fail")
	}
	tree2 := core.NewShifting("top2", 0, core.NewProxy("p2", core.NewSummary()))
	if _, err := NewRoomWorker(tree2, 0, core.GlobalPriority, map[string]RackClient{
		"p2": LocalClient{}, "ghost": LocalClient{},
	}); err == nil {
		t.Error("client without proxy should fail")
	}
}

// failingClient always errors, standing in for a crashed rack worker.
type failingClient struct{}

func (failingClient) Gather(context.Context) (core.Summary, error) {
	return core.Summary{}, context.DeadlineExceeded
}
func (failingClient) ApplyBudget(context.Context, power.Watts) error {
	return context.DeadlineExceeded
}

func TestRoomWorkerToleratesRackFailure(t *testing.T) {
	budgets := make(map[string]power.Watts)
	var mu sync.Mutex
	sink := func(id string, b power.Watts) { mu.Lock(); budgets[id] = b; mu.Unlock() }
	okWorker, err := NewRackWorker("ok", core.NewShifting("ok", 0, leaf("a", "A", 0, 400)),
		core.GlobalPriority, sink)
	if err != nil {
		t.Fatal(err)
	}
	tree := core.NewShifting("top", 0,
		core.NewProxy("ok", core.NewSummary()),
		core.NewProxy("dead", core.NewSummary()),
	)
	room, err := NewRoomWorker(tree, 1000, core.GlobalPriority, map[string]RackClient{
		"ok":   LocalClient{Worker: okWorker},
		"dead": failingClient{},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := room.RunPeriod(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The dead rack has never been gathered, so its budget push is held
	// rather than attempted (and certainly not pushed a zero budget).
	if stats.GatherErrors != 1 || stats.ApplyErrors != 0 || stats.BudgetsHeld != 1 {
		t.Errorf("stats = %+v, want one gather error and one held budget", stats)
	}
	// The healthy rack still got its budget.
	if budgets["a"] < 270 {
		t.Errorf("healthy rack budget = %v", budgets["a"])
	}
	if room.LastAllocation() == nil {
		t.Error("allocation missing")
	}
}

func TestRoomWorkerRunLoop(t *testing.T) {
	room, budgets, _ := distributedFig2(t, core.GlobalPriority)
	ctx, cancel := context.WithCancel(context.Background())
	var periods int
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		room.Run(ctx, 10*time.Millisecond, func(s PeriodStats, err error) {
			if err != nil {
				t.Error(err)
			}
			mu.Lock()
			periods++
			if periods >= 3 {
				cancel()
			}
			mu.Unlock()
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run loop did not exit")
	}
	mu.Lock()
	defer mu.Unlock()
	if periods < 3 {
		t.Errorf("periods = %d", periods)
	}
	if budgets["SA-ps"] < 400 {
		t.Errorf("SA budget = %v after loop", budgets["SA-ps"])
	}
}

// TestTCPTransportEndToEnd runs the distributed Figure 2 over real TCP
// sockets and verifies the budgets match the monolithic allocation.
func TestTCPTransportEndToEnd(t *testing.T) {
	budgets := make(map[string]power.Watts)
	var mu sync.Mutex
	sink := func(id string, b power.Watts) { mu.Lock(); budgets[id] = b; mu.Unlock() }
	mkWorker := func(id string, leaves ...*core.Node) *RackWorker {
		w, err := NewRackWorker(id, core.NewShifting(id, 750, leaves...), core.GlobalPriority, sink)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	left := mkWorker("left", leaf("SA-ps", "SA", 1, 430), leaf("SB-ps", "SB", 0, 430))
	right := mkWorker("right", leaf("SC-ps", "SC", 0, 430), leaf("SD-ps", "SD", 0, 430))

	leftSrv, err := ServeRack(left, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer leftSrv.Close()
	rightSrv, err := ServeRack(right, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rightSrv.Close()

	leftClient := DialRack(leftSrv.Addr(), time.Second)
	defer leftClient.Close()
	rightClient := DialRack(rightSrv.Addr(), time.Second)
	defer rightClient.Close()

	if err := leftClient.Ping(context.Background()); err != nil {
		t.Fatalf("ping: %v", err)
	}

	roomTree := core.NewShifting("top", 1400,
		core.NewProxy("left", core.NewSummary()),
		core.NewProxy("right", core.NewSummary()),
	)
	room, err := NewRoomWorker(roomTree, 1240, core.GlobalPriority, map[string]RackClient{
		"left": leftClient, "right": rightClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := room.RunPeriod(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.GatherErrors != 0 || stats.ApplyErrors != 0 {
		t.Fatalf("transport errors: %+v", stats)
	}
	want := monolithicFig2(core.GlobalPriority)
	mu.Lock()
	defer mu.Unlock()
	for supply, wb := range want {
		if got := budgets[supply]; math.Abs(float64(got-wb)) > 0.001 {
			t.Errorf("budget[%s] = %v, want %v", supply, got, wb)
		}
	}
}

func TestTCPClientFailuresAndReconnect(t *testing.T) {
	w, err := NewRackWorker("r", core.NewShifting("r", 0, leaf("a", "A", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeRack(w, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := DialRack(srv.Addr(), 500*time.Millisecond)
	defer client.Close()
	if _, err := client.Gather(context.Background()); err != nil {
		t.Fatalf("first gather: %v", err)
	}
	// Server restart: the client reconnects on the next call.
	addr := srv.Addr()
	srv.Close()
	if _, err := client.Gather(context.Background()); err == nil {
		t.Error("gather against closed server should fail")
	}
	srv2, err := ServeRack(w, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := client.Gather(context.Background()); err != nil {
		t.Errorf("gather after reconnect: %v", err)
	}
	// Cancelled context short-circuits.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Gather(ctx); err == nil {
		t.Error("cancelled context should fail")
	}
}

func TestWireProtocolErrors(t *testing.T) {
	w, err := NewRackWorker("r", core.NewShifting("r", 0, leaf("a", "A", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeRack(w, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if resp := srv.handle(wireRequest{Op: "bogus"}, nil); resp.OK {
		t.Error("unknown op should fail")
	}
	if resp := srv.handle(wireRequest{Op: opPing}, nil); !resp.OK {
		t.Error("ping should succeed")
	}
	if err := ServeRackNilCheck(); err == nil {
		t.Error("nil worker should fail")
	}
}

// ServeRackNilCheck exists to exercise the nil-worker guard without
// binding a socket.
func ServeRackNilCheck() error {
	_, err := ServeRack(nil, "127.0.0.1:0")
	return err
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	s := core.NewSummary()
	s.SetCapMin(0, 270)
	s.SetLevel(3, 540, 900, 880)
	s.Constraint = 1200
	w, err := NewRackWorker("r", core.NewShifting("r", 0, leaf("a", "A", 3, 450)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeRack(w, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := DialRack(srv.Addr(), time.Second)
	defer client.Close()
	got, err := client.Gather(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Priority 3 metrics survive the integer-keyed map JSON round trip.
	if got.CapMin(3) != 270 || got.Request(3) != 450 || got.Constraint != 490 {
		t.Errorf("round-tripped summary = %+v", got)
	}
}
