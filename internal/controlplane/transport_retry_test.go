package controlplane

import (
	"context"
	"errors"
	"testing"
	"time"

	"capmaestro/internal/core"
)

func newTCPFixture(t *testing.T) (*RackWorker, *RackServer) {
	t.Helper()
	w, err := NewRackWorker("r", core.NewShifting("r", 0, leaf("a", "A", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeRack(w, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return w, srv
}

// TestTCPClientCloseTerminal: Close is terminal — no request after Close
// may re-dial, and every one fails with ErrClientClosed. Closing twice is
// a no-op.
func TestTCPClientCloseTerminal(t *testing.T) {
	_, srv := newTCPFixture(t)
	defer srv.Close()
	client := DialRack(srv.Addr(), time.Second)
	if _, err := client.Gather(context.Background()); err != nil {
		t.Fatalf("gather before close: %v", err)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := client.Gather(context.Background()); !errors.Is(err, ErrClientClosed) {
		t.Errorf("gather after close = %v, want ErrClientClosed", err)
	}
	if err := client.ApplyBudget(context.Background(), 400); !errors.Is(err, ErrClientClosed) {
		t.Errorf("apply after close = %v, want ErrClientClosed", err)
	}
	if err := client.Ping(context.Background()); !errors.Is(err, ErrClientClosed) {
		t.Errorf("ping after close = %v, want ErrClientClosed", err)
	}
	if err := client.Close(); err != nil {
		t.Errorf("second close = %v, want nil", err)
	}
}

// TestTCPClientRetryRecovers: a server restart between requests is healed
// by a single Gather call — the first attempt fails on the stale
// connection and the retry re-dials the new server.
func TestTCPClientRetryRecovers(t *testing.T) {
	w, srv := newTCPFixture(t)
	client := DialRack(srv.Addr(), 500*time.Millisecond, WithRPCRetry(4, 5*time.Millisecond))
	defer client.Close()
	if _, err := client.Gather(context.Background()); err != nil {
		t.Fatalf("first gather: %v", err)
	}
	addr := srv.Addr()
	srv.Close()
	srv2, err := ServeRack(w, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := client.Gather(context.Background()); err != nil {
		t.Errorf("gather across server restart should recover via retry: %v", err)
	}
}

// TestRetryHelpers pins the retry policy's edges: application-level
// rejections and dead contexts are not retried, and the backoff doubles
// but never exceeds a second.
func TestRetryHelpers(t *testing.T) {
	if retryable(&serverError{msg: "no"}) {
		t.Error("server rejections must not be retried")
	}
	if retryable(context.Canceled) || retryable(context.DeadlineExceeded) {
		t.Error("dead contexts must not be retried")
	}
	if retryable(ErrClientClosed) {
		t.Error("closed clients must not be retried")
	}
	if !retryable(errors.New("connection reset by peer")) {
		t.Error("transport failures must be retried")
	}
	if d := backoffDelay(25*time.Millisecond, 0); d != 25*time.Millisecond {
		t.Errorf("backoff(0) = %v", d)
	}
	if d := backoffDelay(25*time.Millisecond, 2); d != 100*time.Millisecond {
		t.Errorf("backoff(2) = %v", d)
	}
	if d := backoffDelay(25*time.Millisecond, 40); d != time.Second {
		t.Errorf("backoff cap = %v, want 1s", d)
	}
}
