package controlplane

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/power"
)

// ErrInjected is the error a FaultyClient returns for a fault it injected;
// tests can errors.Is against it to separate injected from real failures.
var ErrInjected = errors.New("controlplane: injected rack fault")

// FaultyClient wraps a RackClient with deterministic fault injection so
// degraded-mode control-plane behavior — flaky racks, slow racks,
// partitioned racks — is testable without real networks. All knobs can be
// flipped while a control loop is running.
//
// Faults are drawn from a seeded source, and each client consumes its
// stream in call order, so a single-threaded caller (the room worker
// issues one gather and one push per rack per period) sees a reproducible
// fault schedule for a given seed.
type FaultyClient struct {
	inner RackClient

	mu               sync.Mutex
	rng              *rand.Rand
	errRate          float64
	latency          time.Duration
	partitioned      bool
	partitionTimeout time.Duration

	injected atomic.Uint64
	gathers  atomic.Uint64
	applies  atomic.Uint64
}

// NewFaultyClient wraps inner with a fault injector seeded by seed. The
// zero configuration injects nothing.
func NewFaultyClient(inner RackClient, seed int64) *FaultyClient {
	return &FaultyClient{
		inner:            inner,
		rng:              rand.New(rand.NewSource(seed)),
		partitionTimeout: time.Second,
	}
}

// SetErrorRate makes each call fail with probability p in [0,1].
func (f *FaultyClient) SetErrorRate(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errRate = p
}

// SetLatency adds d of delay to every call before it reaches the inner
// client.
func (f *FaultyClient) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// SetPartitioned blackholes the client: calls hang — as a partitioned TCP
// peer's would — until the caller's context ends or the partition timeout
// (SetPartitionTimeout, default 1 s, standing in for the transport's
// request timeout) fires, then fail. No call reaches the inner client.
func (f *FaultyClient) SetPartitioned(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned = on
}

// SetPartitionTimeout bounds how long a partitioned call hangs before
// failing, emulating the transport's per-request timeout.
func (f *FaultyClient) SetPartitionTimeout(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitionTimeout = d
}

// InjectedFaults returns how many calls failed by injection.
func (f *FaultyClient) InjectedFaults() uint64 { return f.injected.Load() }

// InnerGathers returns how many Gather calls reached the inner client.
func (f *FaultyClient) InnerGathers() uint64 { return f.gathers.Load() }

// InnerApplies returns how many ApplyBudget calls reached the inner client.
func (f *FaultyClient) InnerApplies() uint64 { return f.applies.Load() }

// before applies the configured faults to one call; a non-nil return means
// the call fails without reaching the inner client.
func (f *FaultyClient) before(ctx context.Context, op string) error {
	f.mu.Lock()
	partitioned, latency, timeout := f.partitioned, f.latency, f.partitionTimeout
	drop := f.errRate > 0 && f.rng.Float64() < f.errRate
	f.mu.Unlock()

	if partitioned {
		f.injected.Add(1)
		sleepCtx(ctx, timeout)
		if err := ctx.Err(); err != nil {
			return err
		}
		return fmt.Errorf("%w: %s blackholed by partition", ErrInjected, op)
	}
	if latency > 0 && !sleepCtx(ctx, latency) {
		return ctx.Err()
	}
	if drop {
		f.injected.Add(1)
		return fmt.Errorf("%w: %s dropped", ErrInjected, op)
	}
	return ctx.Err()
}

// Gather implements RackClient.
func (f *FaultyClient) Gather(ctx context.Context) (core.Summary, error) {
	if err := f.before(ctx, opGather); err != nil {
		return core.Summary{}, err
	}
	f.gathers.Add(1)
	return f.inner.Gather(ctx)
}

// GatherDigest implements DigestGatherer, injecting the same fault
// schedule as Gather. When the inner client cannot produce a digest the
// call degrades to a plain gather so wrapped digest-less clients keep
// working.
func (f *FaultyClient) GatherDigest(ctx context.Context) (core.Summary, *fleetobs.StatDigest, error) {
	if err := f.before(ctx, opGather); err != nil {
		return core.Summary{}, nil, err
	}
	f.gathers.Add(1)
	if dg, ok := f.inner.(DigestGatherer); ok {
		return dg.GatherDigest(ctx)
	}
	s, err := f.inner.Gather(ctx)
	return s, nil, err
}

// ApplyBudget implements RackClient.
func (f *FaultyClient) ApplyBudget(ctx context.Context, b power.Watts) error {
	if err := f.before(ctx, opBudget); err != nil {
		return err
	}
	f.applies.Add(1)
	return f.inner.ApplyBudget(ctx, b)
}
