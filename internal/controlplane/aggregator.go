package controlplane

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"capmaestro/internal/core"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
)

// Aggregator is a mid-level worker, enabling the "arbitrary arrangement of
// a multi-level worker hierarchy" the paper's implementation supports
// (Section 5): toward its parent it behaves like a rack worker (gather a
// summary, accept a budget); toward its children it behaves like a room
// worker (collect summaries, distribute budgets). A large data center can
// stack aggregators — e.g. room → row → rack — without any level seeing
// more than its direct children's summaries.
type Aggregator struct {
	mu      sync.Mutex
	tree    *core.Node
	policy  core.Policy
	clients map[string]RackClient
	proxies map[string]*core.Node
	seen    map[string]bool // children with at least one good gather

	lastBudget power.Watts
	lastAlloc  *core.Allocation
}

// NewAggregator creates a mid-level worker over the given subtree, whose
// proxy nodes stand for the downstream workers in clients.
func NewAggregator(tree *core.Node, policy core.Policy, clients map[string]RackClient) (*Aggregator, error) {
	if tree == nil {
		return nil, errors.New("controlplane: nil aggregator tree")
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("controlplane: aggregator tree: %w", err)
	}
	proxies := make(map[string]*core.Node)
	tree.Walk(func(n *core.Node) {
		if n.Proxy != nil {
			proxies[n.ID] = n
		}
	})
	if len(proxies) == 0 {
		return nil, errors.New("controlplane: aggregator tree has no proxies")
	}
	for id := range clients {
		if _, ok := proxies[id]; !ok {
			return nil, fmt.Errorf("controlplane: client %q has no proxy node", id)
		}
	}
	for id := range proxies {
		if _, ok := clients[id]; !ok {
			return nil, fmt.Errorf("controlplane: proxy node %q has no client", id)
		}
	}
	return &Aggregator{
		tree:    tree,
		policy:  policy,
		clients: clients,
		proxies: proxies,
		seen:    make(map[string]bool, len(clients)),
	}, nil
}

// Gather implements RackClient: it collects fresh summaries from the
// downstream workers in parallel, installs them into the proxies, and
// reports the combined subtree summary upstream. Downstream workers that
// fail keep their previous summaries.
func (a *Aggregator) Gather(ctx context.Context) (core.Summary, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	pt := flightrec.TraceFrom(ctx)
	span := pt.StartSpan("agg.gather", a.tree.ID, flightrec.ParentIDFrom(ctx))
	type result struct {
		id      string
		summary core.Summary
		err     error
	}
	results := make(chan result, len(a.clients))
	for id, c := range a.clients {
		go func(id string, c RackClient) {
			cs := pt.StartSpan("rpc.gather", id, span.ID())
			s, err := c.Gather(flightrec.ContextWithSpan(ctx, pt, cs))
			cs.End(err)
			results <- result{id: id, summary: s, err: err}
		}(id, c)
	}
	for range a.clients {
		r := <-results
		if r.err != nil || r.summary.Validate() != nil {
			continue
		}
		a.seen[r.id] = true
		*a.proxies[r.id].Proxy = r.summary
	}
	s, err := core.Summarize(a.tree, a.policy)
	span.End(err)
	return s, err
}

// ApplyBudget implements RackClient: it allocates the received budget over
// its subtree and pushes each downstream worker its share in parallel.
// Children whose gather has never succeeded are held — their proxies carry
// no real summary, so pushing them the resulting (typically zero) budget
// would infeasibly throttle live load; they keep whatever budget they
// already enforce.
func (a *Aggregator) ApplyBudget(ctx context.Context, b power.Watts) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	pt := flightrec.TraceFrom(ctx)
	span := pt.StartSpan("agg.apply", a.tree.ID, flightrec.ParentIDFrom(ctx))
	alloc, err := core.AllocateExplained(a.tree, b, a.policy, pt.ExplainSink())
	if err != nil {
		err = fmt.Errorf("controlplane: aggregator: %w", err)
		span.End(err)
		return err
	}
	a.lastBudget = b
	a.lastAlloc = alloc
	errs := make(chan error, len(a.clients))
	pushed := 0
	for id, c := range a.clients {
		if !a.seen[id] {
			continue
		}
		pushed++
		go func(id string, c RackClient) {
			cs := pt.StartSpan("rpc.apply", id, span.ID())
			e := c.ApplyBudget(flightrec.ContextWithSpan(ctx, pt, cs), alloc.NodeBudgets[id])
			cs.End(e)
			errs <- e
		}(id, c)
	}
	var firstErr error
	for i := 0; i < pushed; i++ {
		if e := <-errs; e != nil && firstErr == nil {
			firstErr = e
		}
	}
	span.End(firstErr)
	return firstErr
}

// LastBudget returns the budget most recently received from upstream.
func (a *Aggregator) LastBudget() power.Watts {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastBudget
}

// LastAllocation returns the most recent subtree allocation.
func (a *Aggregator) LastAllocation() *core.Allocation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastAlloc
}
