package controlplane

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
)

// Aggregator is a mid-level worker, enabling the "arbitrary arrangement of
// a multi-level worker hierarchy" the paper's implementation supports
// (Section 5): toward its parent it behaves like a rack worker (gather a
// summary, accept a budget); toward its children it behaves like a room
// worker (collect summaries, distribute budgets). A large data center can
// stack aggregators — e.g. room → row → rack — without any level seeing
// more than its direct children's summaries. BuildHierarchy stacks them
// automatically from a flat rack set.
//
// Failure semantics mirror the room worker's: a child whose gather has
// never succeeded is never pushed a budget (optionally reserving a
// failsafe budget instead), a child whose gather fails keeps its previous
// summary, and a child stale beyond the staleness bound has its pushes
// held. Per-child gather and push error counts surface through LastStats
// and the per-level telemetry families, not just logs.
type Aggregator struct {
	policy  core.Policy
	clients map[string]RackClient

	log            *slog.Logger
	met            aggMetrics
	stalenessBound int
	failsafe       power.Watts
	level          int

	// digests enables the fleet observability rollup: each gather folds
	// the children's digests (or synthesized equivalents) into one subtree
	// digest handed upstream. dm is gatherMu-scoped scratch, reused every
	// pass; the digest GatherDigest returns points into it and stays valid
	// until the next gather, which the control plane's phase ordering
	// guarantees is after the parent has folded it.
	digests bool
	dm      digestMerger

	// runMu guards the tree, engine, and hold map — the shared state both
	// passes touch. Neither pass holds it during network I/O: Gather runs
	// its wave under gatherMu alone and takes runMu only to install
	// summaries and summarize; ApplyBudget takes runMu only to run the
	// engine and configure its wave. A pipelined parent's push(k) and
	// gather(k+1) therefore overlap their I/O at every tier. runMu is
	// never held while accessors run: LastBudget, LastAllocation, and
	// LastStats only take mu.
	runMu   sync.Mutex
	tree    *core.Node
	proxies map[string]*core.Node
	engine  *core.Allocator
	hold    map[string]holdReason

	lim       limiter
	childList []string // sorted child IDs: deterministic wave order

	// gatherMu serializes Gather passes and owns fan; pushMu serializes
	// ApplyBudget passes and owns pushF. Each is acquired before runMu,
	// never the other way around.
	gatherMu sync.Mutex
	fan      *fanEngine
	pushMu   sync.Mutex
	pushF    *fanEngine

	mu         sync.Mutex
	seen       map[string]bool // children with at least one good gather
	down       map[string]bool // children whose last gather failed
	stale      map[string]int  // consecutive failed gathers per child
	lastBudget power.Watts
	lastAlloc  *core.Allocation
	lastStats  PeriodStats
	lastUnseen int // gauge deltas: same-level aggregators share instruments
	lastStale  int
}

// NewAggregator creates a mid-level worker over the given subtree, whose
// proxy nodes stand for the downstream workers in clients. Options
// configure telemetry (labeled by WithHierarchyLevel), logging, staleness
// bound, failsafe budget, and RPC concurrency, exactly as on a room
// worker.
func NewAggregator(tree *core.Node, policy core.Policy, clients map[string]RackClient, opts ...Option) (*Aggregator, error) {
	if tree == nil {
		return nil, errors.New("controlplane: nil aggregator tree")
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("controlplane: aggregator tree: %w", err)
	}
	proxies := make(map[string]*core.Node)
	tree.Walk(func(n *core.Node) {
		if n.Proxy != nil {
			proxies[n.ID] = n
		}
	})
	if len(proxies) == 0 {
		return nil, errors.New("controlplane: aggregator tree has no proxies")
	}
	for id := range clients {
		if _, ok := proxies[id]; !ok {
			return nil, fmt.Errorf("controlplane: client %q has no proxy node", id)
		}
	}
	for id := range proxies {
		if _, ok := clients[id]; !ok {
			return nil, fmt.Errorf("controlplane: proxy node %q has no client", id)
		}
	}
	engine, err := core.NewAllocator(tree)
	if err != nil {
		return nil, fmt.Errorf("controlplane: aggregator tree: %w", err)
	}
	o := buildOptions(opts)
	level := o.level
	if level <= 0 {
		level = 1
	}
	childList := make([]string, 0, len(clients))
	for id := range clients {
		childList = append(childList, id)
	}
	sort.Strings(childList)
	lim := newLimiter(o.rpcConcurrency)
	a := &Aggregator{
		policy:         policy,
		clients:        clients,
		log:            o.log,
		met:            newAggMetrics(o.reg, level),
		stalenessBound: o.stalenessBound,
		failsafe:       o.failsafeBudget,
		level:          level,
		digests:        o.digests == nil || *o.digests,
		tree:           tree,
		proxies:        proxies,
		engine:         engine,
		lim:            lim,
		fan:            newFanEngine(lim, len(clients)),
		pushF:          newFanEngine(lim, len(clients)),
		childList:      childList,
		hold:           make(map[string]holdReason, len(clients)),
		seen:           make(map[string]bool, len(clients)),
		down:           make(map[string]bool, len(clients)),
		stale:          make(map[string]int, len(clients)),
	}
	a.fan.digests = a.digests
	// Until the first gather every child is unseen: an ApplyBudget that
	// arrives before any gather must hold all pushes.
	for _, id := range childList {
		a.hold[id] = holdNeverSeen
	}
	a.lastUnseen = len(childList)
	a.met.unseenChildren.Add(float64(len(childList)))
	return a, nil
}

// ID returns the aggregator's identifier (its subtree root's node ID).
func (a *Aggregator) ID() string { return a.tree.ID }

// Gather implements RackClient: it collects fresh summaries from the
// downstream workers — bounded concurrency, batched where the transport
// allows — installs them into the proxies, and reports the combined
// subtree summary upstream. Downstream workers that fail keep their
// previous summaries; the failure count lands in LastStats.GatherErrors
// and the per-level error counter.
func (a *Aggregator) Gather(ctx context.Context) (core.Summary, error) {
	s, _, err := a.GatherDigest(ctx)
	return s, err
}

// GatherDigest implements DigestGatherer: one gather pass that also folds
// the children's fleet digests into a single subtree digest. Children that
// sent no digest (digest-less transports) are synthesized from their
// summaries and last allocated budgets, so the rollup covers every child
// that gathered successfully either way. The returned digest points into
// per-aggregator scratch and is valid until the next gather pass.
func (a *Aggregator) GatherDigest(ctx context.Context) (core.Summary, *fleetobs.StatDigest, error) {
	a.gatherMu.Lock()
	defer a.gatherMu.Unlock()
	if err := ctx.Err(); err != nil {
		return core.Summary{}, nil, err
	}
	start := time.Now()
	pt := flightrec.TraceFrom(ctx)
	span := pt.StartSpan("agg.gather", a.tree.ID, flightrec.ParentIDFrom(ctx))
	e := a.fan
	e.reset()
	for _, id := range a.childList {
		e.add(id, a.clients[id])
	}
	// The wave is pure I/O into e's call slots; runMu is taken only below,
	// so an in-flight budget push never delays this gather.
	e.gatherWave(ctx, pt, span.ID())

	a.runMu.Lock()
	gatherErrors := 0
	for i := range e.calls {
		c := &e.calls[i]
		if c.err != nil {
			gatherErrors++
			continue
		}
		*a.proxies[c.id].Proxy = c.summary
	}
	a.commitGather(e, gatherErrors, start)
	if a.failsafe > 0 {
		for id, reason := range a.hold {
			if reason == holdNeverSeen {
				*a.proxies[id].Proxy = failsafeSummary(a.failsafe)
			}
		}
	}
	s := a.engine.Summarize(a.policy)
	var dig *fleetobs.StatDigest
	if a.digests {
		dig = a.foldDigest(e, gatherErrors)
	}
	a.runMu.Unlock()
	span.End(nil)
	a.met.gatherSeconds.ObserveSince(start)
	a.met.gatherErrors.Add(float64(gatherErrors))
	return s, dig, nil
}

// foldDigest merges this pass's child digests and stamps the aggregator's
// own level row. Called under runMu (for the hold map) right after
// commitGather; takes mu for the staleness bookkeeping and last budgets.
func (a *Aggregator) foldDigest(e *fanEngine, gatherErrors int) *fleetobs.StatDigest {
	a.dm.reset()
	own := fleetobs.LevelStats{
		Level:        a.level,
		Workers:      len(a.childList),
		GatherErrors: gatherErrors,
		Held:         len(a.hold),
	}
	a.mu.Lock()
	var budgets map[string]power.Watts
	if a.lastAlloc != nil {
		budgets = a.lastAlloc.NodeBudgets
	}
	for i := range e.calls {
		c := &e.calls[i]
		if c.err != nil {
			continue
		}
		b, haveB := budgets[c.id]
		a.dm.note(c.id, c.digest, &c.summary, b, haveB)
		own.GatherLatency.Observe(fleetobs.LatencyBounds, c.elapsed.Seconds())
	}
	var staleOut []fleetobs.Outlier
	for id, n := range a.stale {
		if n > 0 && a.seen[id] {
			own.Stale++
			staleOut = append(staleOut, fleetobs.Outlier{
				Rack:         id,
				Reason:       fleetobs.ReasonStale,
				Score:        2 + float64(n),
				StalePeriods: n,
			})
		}
	}
	a.mu.Unlock()
	dig := a.dm.fold(own)
	// Staleness is the observer's judgment, not the child's, so stale
	// children become outlier entries after the fold.
	for i := range staleOut {
		dig.AddOutlier(staleOut[i])
	}
	return dig
}

// commitGather records the pass's outcomes under mu — per-child staleness
// counters, down/recovered transitions — and refills the reused hold map.
func (a *Aggregator) commitGather(e *fanEngine, gatherErrors int, start time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range e.calls {
		c := &e.calls[i]
		if c.err != nil {
			a.stale[c.id]++
			if !a.down[c.id] {
				a.down[c.id] = true
				if a.log != nil {
					a.log.Warn("aggregator child gather failed",
						"aggregator", a.tree.ID, "child", c.id, "err", c.err)
				}
			}
			continue
		}
		a.seen[c.id] = true
		if a.down[c.id] {
			a.down[c.id] = false
			if a.log != nil {
				a.log.Info("aggregator child recovered",
					"aggregator", a.tree.ID, "child", c.id, "stale_periods", a.stale[c.id])
			}
		}
		a.stale[c.id] = 0
	}
	clear(a.hold)
	unseen, staleHeld := 0, 0
	for _, id := range a.childList {
		switch {
		case !a.seen[id]:
			a.hold[id] = holdNeverSeen
			unseen++
		case a.stalenessBound > 0 && a.stale[id] > a.stalenessBound:
			a.hold[id] = holdStale
			staleHeld++
		}
	}
	a.met.unseenChildren.Add(float64(unseen - a.lastUnseen))
	a.met.staleChildren.Add(float64(staleHeld - a.lastStale))
	a.lastUnseen, a.lastStale = unseen, staleHeld
	a.lastStats = PeriodStats{
		RacksServed:  len(a.clients),
		GatherErrors: gatherErrors,
		Elapsed:      time.Since(start),
	}
}

// ApplyBudget implements RackClient: it allocates the received budget over
// its subtree on the persistent engine and pushes each downstream worker
// its share — bounded, batched, skipping held children. Held children
// (never gathered, or stale beyond the bound) keep whatever budget they
// already enforce; their count lands in LastStats.BudgetsHeld. The first
// push error is returned so the parent's apply accounting sees the
// failure; the full count lands in LastStats.ApplyErrors.
func (a *Aggregator) ApplyBudget(ctx context.Context, b power.Watts) error {
	a.pushMu.Lock()
	defer a.pushMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	start := time.Now()
	pt := flightrec.TraceFrom(ctx)
	span := pt.StartSpan("agg.apply", a.tree.ID, flightrec.ParentIDFrom(ctx))

	// Engine run and wave configuration need the tree and hold map; the
	// push I/O below does not, so runMu is released before the wave and a
	// concurrent Gather can proceed while budgets are still in flight.
	a.runMu.Lock()
	a.engine.SetExplainSink(pt.ExplainSink())
	a.engine.Run(b, a.policy)
	a.engine.SetExplainSink(nil)
	alloc := a.engine.Snapshot()

	e := a.pushF
	e.reset()
	held := 0
	for _, id := range a.childList {
		c := e.add(id, a.clients[id])
		if _, h := a.hold[id]; h {
			c.skip = true
			held++
			a.met.heldPushes.Inc()
			continue
		}
		c.budget = alloc.NodeBudgets[id]
	}
	a.runMu.Unlock()

	e.pushWave(ctx, pt, span.ID())
	applyErrors := 0
	var firstErr error
	for i := range e.calls {
		c := &e.calls[i]
		if !c.skip && c.err != nil {
			applyErrors++
			if firstErr == nil {
				firstErr = c.err
			}
		}
	}
	span.End(firstErr)
	a.met.pushSeconds.ObserveSince(start)
	a.met.applyErrors.Add(float64(applyErrors))

	a.mu.Lock()
	a.lastBudget = b
	a.lastAlloc = alloc
	a.lastStats.ApplyErrors = applyErrors
	a.lastStats.BudgetsHeld = held
	a.lastStats.Elapsed += time.Since(start)
	a.mu.Unlock()
	if a.log != nil && (applyErrors > 0 || held > 0) {
		a.log.Warn("aggregator apply degraded", "aggregator", a.tree.ID,
			"apply_errors", applyErrors, "budgets_held", held)
	}
	return firstErr
}

// LastBudget returns the budget most recently received from upstream.
func (a *Aggregator) LastBudget() power.Watts {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastBudget
}

// LastAllocation returns the most recent subtree allocation.
func (a *Aggregator) LastAllocation() *core.Allocation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastAlloc
}

// LastStats returns the combined statistics of the aggregator's most
// recent gather and apply passes: GatherErrors and RacksServed from the
// last Gather, ApplyErrors and BudgetsHeld from the last ApplyBudget, and
// Elapsed summing both passes. The zero value before the first gather.
func (a *Aggregator) LastStats() PeriodStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastStats
}
