package controlplane

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/flightrec"
)

// droppingProxy sits between a TCPClient and a RackServer and drops every
// Nth request on each connection: it reads one whole request, discards it,
// and closes the connection. The client sees a transport failure mid-RPC
// and must retry over a fresh connection — exactly the reconnect path
// WithRPCRetry exists for. The proxy is codec-aware: it frames JSON
// requests by newline and binary requests by their length prefix (after
// forwarding the connection preamble), so it can chaos both protocols.
type droppingProxy struct {
	ln      net.Listener
	backend string
	every   int

	mu    sync.Mutex
	drops int
}

func newDroppingProxy(t *testing.T, backend string, every int) *droppingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &droppingProxy{ln: ln, backend: backend, every: every}
	go p.acceptLoop()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *droppingProxy) addr() string { return p.ln.Addr().String() }

func (p *droppingProxy) dropCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops
}

func (p *droppingProxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.serve(conn)
	}
}

func (p *droppingProxy) serve(client net.Conn) {
	defer client.Close()
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer server.Close()
	go io.Copy(client, server) // responses flow back untouched
	br := bufio.NewReader(client)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	isBinary := first[0] == binMagic
	if isBinary {
		// Forward the two-byte preamble so the backend can detect the
		// codec itself.
		pre := make([]byte, 2)
		if _, err := io.ReadFull(br, pre); err != nil {
			return
		}
		if _, err := server.Write(pre); err != nil {
			return
		}
	}
	for n := 1; ; n++ {
		frame, err := readRequestFrame(br, isBinary)
		if err != nil {
			return
		}
		if p.every > 0 && n%p.every == 0 {
			// Swallow this request and sever the connection: the rack
			// never sees it, the client's pending decode fails.
			p.mu.Lock()
			p.drops++
			p.mu.Unlock()
			return
		}
		if _, err := server.Write(frame); err != nil {
			return
		}
	}
}

// readRequestFrame reads exactly one request off the client connection:
// one newline-terminated JSON line, or one length-prefixed binary frame
// (header included).
func readRequestFrame(br *bufio.Reader, isBinary bool) ([]byte, error) {
	if !isBinary {
		return br.ReadBytes('\n')
	}
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxFrameLen {
		return nil, fmt.Errorf("proxy: frame length %d exceeds limit", n)
	}
	frame := make([]byte, 4+int(n))
	copy(frame, hdr)
	if _, err := io.ReadFull(br, frame[4:]); err != nil {
		return nil, err
	}
	return frame, nil
}

// TestTraceChaosPropagation drives a room worker — with the flight
// recorder on — over one rack reached through a real TCP transport whose
// connections are severed every few requests, and one flaky in-process
// rack, asserting the trace invariants the tentpole promises:
//
//   - every completed period yields exactly one root span, and every other
//     span's parent chain terminates at that root;
//   - rack-side spans produced across the TCP transport (including after
//     mid-RPC connection kills and reconnects) carry the period's trace ID
//     and nest under the room's rpc spans;
//   - transport retries are counted on the rpc span that absorbed them.
func TestTraceChaosPropagation(t *testing.T) {
	seed := chaosSeed(t)
	const periods = 12

	tcpWorker, err := NewRackWorker("tcprack",
		core.NewShifting("tcprack", 0, leaf("t0", "T0", 1, 400), leaf("t1", "T1", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeRack(tcpWorker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Drop every 3rd request per connection: with two RPCs per period
	// (gather + apply) every other period retries mid-period.
	proxy := newDroppingProxy(t, srv.Addr(), 3)
	tcpClient := DialRack(proxy.addr(), time.Second, WithRPCRetry(3, 2*time.Millisecond))
	defer tcpClient.Close()

	localWorker, err := NewRackWorker("flaky",
		core.NewShifting("flaky", 0, leaf("f0", "F0", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	flaky := NewFaultyClient(LocalClient{Worker: localWorker}, seed)
	flaky.SetErrorRate(0.3)

	rec := flightrec.NewRecorder(periods)
	dumpTraceOnFailure(t, rec)
	room, err := NewRoomWorker(
		core.NewShifting("room", 0,
			core.NewProxy("tcprack", core.NewSummary()),
			core.NewProxy("flaky", core.NewSummary())),
		2000, core.GlobalPriority,
		map[string]RackClient{"tcprack": tcpClient, "flaky": flaky},
		WithFlightRecorder(rec), WithStalenessBound(3))
	if err != nil {
		t.Fatal(err)
	}

	for period := 0; period < periods; period++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, _, err := room.RunPeriod(ctx)
		cancel()
		if err != nil {
			t.Fatalf("period %d: %v", period, err)
		}
	}

	records := rec.Records()
	if len(records) != periods {
		t.Fatalf("recorded %d periods, want %d", len(records), periods)
	}
	if proxy.dropCount() == 0 {
		t.Fatal("proxy never dropped a request; chaos did not engage")
	}

	seenTraces := make(map[string]bool)
	totalRetries, tcpRackSpans := 0, 0
	for _, pr := range records {
		if pr.TraceID == "" || seenTraces[pr.TraceID] {
			t.Fatalf("record %d: trace ID %q empty or reused", pr.ID, pr.TraceID)
		}
		seenTraces[pr.TraceID] = true

		byID := make(map[string]flightrec.Span, len(pr.Spans))
		var root flightrec.Span
		roots := 0
		for _, s := range pr.Spans {
			if s.TraceID != pr.TraceID {
				t.Fatalf("record %d: span %s/%s carries trace %q, want %q",
					pr.ID, s.Name, s.Node, s.TraceID, pr.TraceID)
			}
			if _, dup := byID[s.SpanID]; dup {
				t.Fatalf("record %d: duplicate span ID %s", pr.ID, s.SpanID)
			}
			byID[s.SpanID] = s
			if s.ParentID == "" {
				roots++
				root = s
			}
		}
		if roots != 1 {
			t.Fatalf("record %d: %d root spans, want exactly 1", pr.ID, roots)
		}
		if root.Name != "period" || root.Node != "room" {
			t.Fatalf("record %d: root span is %s/%s, want period/room", pr.ID, root.Name, root.Node)
		}

		// Every span's parent chain must resolve within the record and
		// terminate at the root — no orphans, no cycles.
		for _, s := range pr.Spans {
			cur, hops := s, 0
			for cur.ParentID != "" {
				parent, ok := byID[cur.ParentID]
				if !ok {
					t.Fatalf("record %d: span %s/%s has unresolved parent %s",
						pr.ID, s.Name, s.Node, cur.ParentID)
				}
				cur = parent
				if hops++; hops > len(pr.Spans) {
					t.Fatalf("record %d: parent cycle at span %s/%s", pr.ID, s.Name, s.Node)
				}
			}
			if cur.SpanID != root.SpanID {
				t.Fatalf("record %d: span %s/%s chains to %s, not the root",
					pr.ID, s.Name, s.Node, cur.SpanID)
			}
			totalRetries += s.Retries
		}

		// The rack's own spans crossed the TCP transport: each one must
		// nest under the corresponding room-side rpc span.
		for _, s := range pr.Spans {
			if s.Node != "tcprack" || (s.Name != "rack.gather" && s.Name != "rack.apply") {
				continue
			}
			tcpRackSpans++
			parent := byID[s.ParentID]
			want := "rpc.gather"
			if s.Name == "rack.apply" {
				want = "rpc.apply"
			}
			if parent.Name != want || parent.Node != "tcprack" {
				t.Fatalf("record %d: %s parented under %s/%s, want %s/tcprack",
					pr.ID, s.Name, parent.Name, parent.Node, want)
			}
		}
		// Explain records from both the room allocation and the racks'
		// local distributions ride along with the spans.
		if pr.Err == "" && len(pr.Explains) == 0 {
			t.Fatalf("record %d: completed period has no explain records", pr.ID)
		}
	}
	if tcpRackSpans == 0 {
		t.Fatal("no rack-side spans survived the TCP transport")
	}
	if totalRetries == 0 {
		t.Fatal("no span recorded a transport retry despite dropped requests")
	}
	// The flaky rack's failures are visible in the trace, tagged on the
	// room-side rpc span.
	if flaky.InjectedFaults() > 0 {
		foundErr := false
		for _, pr := range records {
			for _, s := range pr.Spans {
				if s.Node == "flaky" && s.Name == "rpc.gather" && s.Error != "" {
					foundErr = true
				}
			}
		}
		if !foundErr {
			t.Error("injected gather faults left no error-tagged rpc span")
		}
	}
}
