package controlplane

import (
	"context"

	"sync"
	"testing"
	"time"

	"capmaestro/internal/capping"
	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/server"
)

// TestFullStackDistributedCapping wires the complete production shape
// together: simulated servers with node managers, per-server capping
// controllers, rack workers serving summaries over real TCP sockets, and a
// room worker budgeting the hierarchy every control period. Demand
// estimates come from the controllers' sensor regressions, budgets flow
// back through the sink into the PI loops, and the physical powers settle
// onto the paper's Table 1 pattern.
func TestFullStackDistributedCapping(t *testing.T) {
	// Four servers, SA high priority, all demanding ~430 W.
	demands := map[string]power.Watts{"SA": 430, "SB": 430, "SC": 430, "SD": 430}
	servers := make(map[string]*server.Server)
	controllers := make(map[string]*capping.Controller)
	var mu sync.Mutex
	for id, demand := range demands {
		srv := server.MustNew(server.Config{
			ID:    id,
			Model: power.DefaultServerModel(),
			Supplies: []server.Supply{
				{ID: id + "-ps", Split: 1},
			},
		})
		srv.SetUtilization(srv.Model().UtilizationFor(demand))
		servers[id] = srv
		controllers[id] = capping.MustNew(srv, capping.Config{})
	}
	sink := func(supplyID string, b power.Watts) {
		mu.Lock()
		defer mu.Unlock()
		serverID := supplyID[:2]
		controllers[serverID].SetBudget(supplyID, b)
	}

	// rackTree builds a rack worker subtree with live demand estimates.
	rackTree := func(cb string, members []string) *core.Node {
		var leaves []*core.Node
		mu.Lock()
		defer mu.Unlock()
		for _, id := range members {
			prio := core.Priority(0)
			if id == "SA" {
				prio = 1
			}
			demand, ok := controllers[id].Demand()
			if !ok {
				demand = servers[id].ACPower()
			}
			leaves = append(leaves, core.NewLeaf(id+"-ps", core.SupplyLeaf{
				SupplyID: id + "-ps", ServerID: id, Priority: prio, Share: 1,
				CapMin: 270, CapMax: 490, Demand: demand,
			}))
		}
		return core.NewShifting(cb, 750, leaves...)
	}

	rackMembers := map[string][]string{
		"rack-left":  {"SA", "SB"},
		"rack-right": {"SC", "SD"},
	}
	workers := make(map[string]*RackWorker)
	clients := make(map[string]RackClient)
	var srvs []*RackServer
	for rack, members := range rackMembers {
		w, err := NewRackWorker(rack, rackTree(rack, members), core.GlobalPriority, sink)
		if err != nil {
			t.Fatal(err)
		}
		workers[rack] = w
		rs, err := ServeRack(w, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srvs = append(srvs, rs)
		c := DialRack(rs.Addr(), time.Second)
		defer c.Close()
		clients[rack] = c
	}
	defer func() {
		for _, rs := range srvs {
			rs.Close()
		}
	}()

	roomTree := core.NewShifting("top-cb", 1400,
		core.NewProxy("rack-left", core.NewSummary()),
		core.NewProxy("rack-right", core.NewSummary()),
	)
	room, err := NewRoomWorker(roomTree, 1240, core.GlobalPriority, clients)
	if err != nil {
		t.Fatal(err)
	}

	// 15 control periods of 8 s: sense every second, refresh rack trees,
	// run the distributed period, iterate the PI loops, actuate.
	for period := 0; period < 15; period++ {
		for sec := 0; sec < 8; sec++ {
			for _, id := range []string{"SA", "SB", "SC", "SD"} {
				servers[id].Step(time.Second)
				mu.Lock()
				controllers[id].Sense()
				mu.Unlock()
			}
		}
		for rack, members := range rackMembers {
			if err := workers[rack].SetTree(rackTree(rack, members)); err != nil {
				t.Fatal(err)
			}
		}
		if _, stats, err := room.RunPeriod(context.Background()); err != nil {
			t.Fatal(err)
		} else if stats.GatherErrors+stats.ApplyErrors > 0 {
			t.Fatalf("period %d transport errors: %+v", period, stats)
		}
		mu.Lock()
		for _, ctl := range controllers {
			ctl.Iterate()
		}
		mu.Unlock()
	}

	// Steady state: Table 1 pattern within controller tolerance.
	want := map[string]power.Watts{"SA": 430, "SB": 270, "SC": 270, "SD": 270}
	var total power.Watts
	for id, w := range want {
		got := servers[id].ACPower()
		total += got
		if diff := float64(got - w); diff > 12 || diff < -12 {
			t.Errorf("%s power = %v, want ~%v", id, got, w)
		}
	}
	if total > 1240+5 {
		t.Errorf("total power %v exceeds the 1240 W contractual budget", total)
	}
}
