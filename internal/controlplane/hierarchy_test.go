package controlplane

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
)

// hierRack builds one varied rack worker subtree for hierarchy tests:
// rack r has three servers with demands and priorities derived from r, so
// no two racks are interchangeable.
func hierRackTree(r int) *core.Node {
	id := fmt.Sprintf("hr%02d", r)
	leaves := make([]*core.Node, 3)
	for s := range leaves {
		prio := core.Priority(0)
		if (r+s)%3 == 0 {
			prio = 1
		}
		demand := power.Watts(350 + (r*37+s*113)%130)
		supply := fmt.Sprintf("%s-s%d", id, s)
		leaves[s] = core.NewLeaf(supply, core.SupplyLeaf{
			SupplyID: supply, ServerID: supply, Priority: prio, Share: 1,
			CapMin: 270, CapMax: 490, Demand: demand,
		})
	}
	return core.NewShifting(id, 1300, leaves...)
}

// monoHierarchy nests the same rack trees with the same sorted-ID
// chunking BuildHierarchy uses, so a monolithic allocation over it is the
// watt-for-watt reference for the sharded hierarchy.
func monoHierarchy(rackTrees []*core.Node, fanOut, levels int) *core.Node {
	nodes := rackTrees
	for level := 1; level <= levels-2; level++ {
		var next []*core.Node
		for gi := 0; gi*fanOut < len(nodes); gi++ {
			chunk := nodes[gi*fanOut:min((gi+1)*fanOut, len(nodes))]
			next = append(next, core.NewShifting(fmt.Sprintf("l%d-%d", level, gi), 0, chunk...))
		}
		nodes = next
	}
	return core.NewShifting("room", 0, nodes...)
}

func TestBuildHierarchyShape(t *testing.T) {
	mkClients := func(n int) map[string]RackClient {
		clients := make(map[string]RackClient, n)
		for r := 0; r < n; r++ {
			w, err := NewRackWorker(fmt.Sprintf("hr%02d", r), hierRackTree(r), core.GlobalPriority, nil)
			if err != nil {
				t.Fatal(err)
			}
			clients[w.ID()] = LocalClient{Worker: w}
		}
		return clients
	}
	cases := []struct {
		levels, fanOut int
		wantTiers      []int // aggregators per tier, bottom-up
	}{
		{levels: 2, fanOut: 3, wantTiers: nil},
		{levels: 3, fanOut: 3, wantTiers: []int{4}},      // 10 racks / 3
		{levels: 4, fanOut: 3, wantTiers: []int{4, 2}},   // 4 aggs / 3
		{levels: 5, fanOut: 3, wantTiers: []int{4, 2, 1}},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("levels=%d", tc.levels), func(t *testing.T) {
			h, err := BuildHierarchy(mkClients(10), HierarchyConfig{
				Levels: tc.levels, FanOut: tc.fanOut, Policy: core.GlobalPriority,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(h.Tiers) != len(tc.wantTiers) {
				t.Fatalf("tiers = %d, want %d", len(h.Tiers), len(tc.wantTiers))
			}
			for i, want := range tc.wantTiers {
				if len(h.Tiers[i]) != want {
					t.Errorf("tier %d has %d aggregators, want %d", i, len(h.Tiers[i]), want)
				}
			}
			if _, stats, err := h.Room.RunPeriod(context.Background()); err != nil {
				t.Fatal(err)
			} else if stats.GatherErrors+stats.ApplyErrors+stats.BudgetsHeld != 0 {
				t.Fatalf("first period degraded: %+v", stats)
			}
		})
	}
}

func TestBuildHierarchyValidation(t *testing.T) {
	w, err := NewRackWorker("hr00", hierRackTree(0), core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	one := map[string]RackClient{"hr00": LocalClient{Worker: w}}
	if _, err := BuildHierarchy(nil, HierarchyConfig{Levels: 2}); err == nil {
		t.Error("empty rack set should fail")
	}
	if _, err := BuildHierarchy(one, HierarchyConfig{Levels: 1}); err == nil {
		t.Error("levels < 2 should fail")
	}
	if _, err := BuildHierarchy(one, HierarchyConfig{Levels: 3, FanOut: 1}); err == nil {
		t.Error("fan-out 1 should fail")
	}
}

// TestHierarchyMatchesMonolithic: for every policy and every depth, the
// sharded hierarchy's per-supply budgets equal a monolithic allocation
// over the identically nested tree, watt for watt — sharding changes who
// talks to whom, never what anyone gets.
func TestHierarchyMatchesMonolithic(t *testing.T) {
	const racks, fanOut = 10, 3
	for _, policy := range []core.Policy{core.NoPriority, core.LocalPriority, core.GlobalPriority} {
		for _, levels := range []int{2, 3, 4} {
			t.Run(fmt.Sprintf("%s/levels=%d", policy, levels), func(t *testing.T) {
				budgets := make(map[string]power.Watts)
				var mu sync.Mutex
				sink := func(supplyID string, b power.Watts) {
					mu.Lock()
					budgets[supplyID] = b
					mu.Unlock()
				}
				clients := make(map[string]RackClient, racks)
				var rackTrees []*core.Node
				for r := 0; r < racks; r++ {
					w, err := NewRackWorker(fmt.Sprintf("hr%02d", r), hierRackTree(r), policy, sink)
					if err != nil {
						t.Fatal(err)
					}
					clients[w.ID()] = LocalClient{Worker: w}
					rackTrees = append(rackTrees, hierRackTree(r))
				}
				sort.Slice(rackTrees, func(i, j int) bool { return rackTrees[i].ID < rackTrees[j].ID })

				const budget = 9000 // < total demand (~12.4 kW): capping active
				h, err := BuildHierarchy(clients, HierarchyConfig{
					Levels: levels, FanOut: fanOut, Policy: policy, Budget: budget,
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, stats, err := h.Room.RunPeriod(context.Background()); err != nil {
					t.Fatal(err)
				} else if stats.GatherErrors+stats.ApplyErrors+stats.BudgetsHeld != 0 {
					t.Fatalf("period degraded: %+v", stats)
				}

				want := core.MustAllocate(monoHierarchy(rackTrees, fanOut, levels), budget, policy).SupplyBudgets
				if len(want) != racks*3 {
					t.Fatalf("monolithic budget count = %d", len(want))
				}
				for supply, wb := range want {
					if got := budgets[supply]; math.Abs(float64(got-wb)) > 0.001 {
						t.Errorf("budget[%s] = %v, want %v", supply, got, wb)
					}
				}
			})
		}
	}
}

// TestThreeLevelHierarchyChaos drives a room → aggregators → TCP racks
// hierarchy through fault injection at both weak points — a dropping
// proxy in front of each rack endpoint and FaultyClients between room and
// aggregators — then clears the faults and asserts the hierarchy settles
// to exactly the monolithic allocation, with the fleet observability
// digest rollup watt-for-watt equal to the racks' total demand. Runs once
// per wire codec, digests enabled end to end. Raced in CI.
func TestThreeLevelHierarchyChaos(t *testing.T) {
	for _, codecName := range []string{CodecJSON, CodecBinary} {
		t.Run(codecName, func(t *testing.T) {
			testThreeLevelHierarchyChaos(t, codecName)
		})
	}
}

func testThreeLevelHierarchyChaos(t *testing.T, codecName string) {
	seed := chaosSeed(t)
	const (
		racks      = 4
		fanOut     = 2
		roomBudget = 2900 // < total demand 3480: capping active
	)

	budgets := make(map[string]power.Watts)
	var mu sync.Mutex
	sink := func(supplyID string, b power.Watts) {
		mu.Lock()
		budgets[supplyID] = b
		mu.Unlock()
	}

	mkTree := func(r int) *core.Node {
		id := fmt.Sprintf("cr%d", r)
		var leaves []*core.Node
		for s := 0; s < 2; s++ {
			supply := fmt.Sprintf("%s-s%d", id, s)
			prio := core.Priority(0)
			if r == racks-1 && s == 1 {
				prio = 1
			}
			leaves = append(leaves, core.NewLeaf(supply, core.SupplyLeaf{
				SupplyID: supply, ServerID: supply, Priority: prio, Share: 1,
				CapMin: 270, CapMax: 490, Demand: power.Watts(420 + 10*r),
			}))
		}
		return core.NewShifting(id, 950, leaves...)
	}

	// Rack tier: two TCP endpoints of two racks each, a dropping proxy in
	// front of each, batch handles with retries behind them.
	var proxies []*droppingProxy
	clients := make(map[string]RackClient, racks)
	for base := 0; base < racks; base += fanOut {
		workers := make(map[string]RackClient, fanOut)
		for r := base; r < base+fanOut; r++ {
			w, err := NewRackWorker(fmt.Sprintf("cr%d", r), mkTree(r), core.GlobalPriority, sink)
			if err != nil {
				t.Fatal(err)
			}
			workers[w.ID()] = w
		}
		srv, err := ServeRacks(workers, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		proxy := newDroppingProxy(t, srv.Addr(), 5)
		proxies = append(proxies, proxy)
		tc := DialRack(proxy.addr(), 2*time.Second, WithWireCodec(codecName),
			WithDigests(true), WithRPCRetry(3, 2*time.Millisecond))
		t.Cleanup(func() { tc.Close() })
		for r := base; r < base+fanOut; r++ {
			clients[fmt.Sprintf("cr%d", r)] = tc.Rack(fmt.Sprintf("cr%d", r))
		}
	}

	// Middle tier: one aggregator per endpoint group, wrapped in a
	// FaultyClient toward the room.
	var faulties []*FaultyClient
	roomClients := make(map[string]RackClient, 2)
	var roomProxies []*core.Node
	for gi := 0; gi*fanOut < racks; gi++ {
		var aggProxies []*core.Node
		childMap := make(map[string]RackClient, fanOut)
		for r := gi * fanOut; r < (gi+1)*fanOut; r++ {
			id := fmt.Sprintf("cr%d", r)
			aggProxies = append(aggProxies, core.NewProxy(id, core.NewSummary()))
			childMap[id] = clients[id]
		}
		aggID := fmt.Sprintf("agg%d", gi)
		agg, err := NewAggregator(core.NewShifting(aggID, 0, aggProxies...), core.GlobalPriority, childMap,
			WithHierarchyLevel(1))
		if err != nil {
			t.Fatal(err)
		}
		fc := NewFaultyClient(agg, seed+int64(gi))
		faulties = append(faulties, fc)
		roomClients[aggID] = fc
		roomProxies = append(roomProxies, core.NewProxy(aggID, core.NewSummary()))
	}
	room, err := NewRoomWorker(core.NewShifting("room", 0, roomProxies...), roomBudget,
		core.GlobalPriority, roomClients)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos phase: middle-tier faults on top of the dropping proxies.
	for _, fc := range faulties {
		fc.SetErrorRate(0.3)
	}
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if _, _, err := room.RunPeriod(ctx); err != nil {
			t.Fatalf("chaos period %d: %v", i, err)
		}
	}
	var injected uint64
	for _, fc := range faulties {
		injected += fc.InjectedFaults()
	}
	if injected == 0 {
		t.Fatal("chaos phase injected no middle-tier faults")
	}

	// Clear faults and let the hierarchy settle: one period to re-gather
	// everything, one to push budgets computed from all-fresh summaries.
	for _, fc := range faulties {
		fc.SetErrorRate(0)
	}
	for i := 0; i < 3; i++ {
		if _, stats, err := room.RunPeriod(ctx); err != nil {
			t.Fatalf("settle period %d: %v", i, err)
		} else if i > 0 && stats.GatherErrors+stats.ApplyErrors+stats.BudgetsHeld != 0 {
			t.Fatalf("settle period %d still degraded: %+v", i, stats)
		}
	}

	var rackTrees []*core.Node
	for r := 0; r < racks; r++ {
		rackTrees = append(rackTrees, mkTree(r))
	}
	want := core.MustAllocate(monoHierarchy(rackTrees, fanOut, 3), roomBudget, core.GlobalPriority).SupplyBudgets
	mu.Lock()
	for supply, wb := range want {
		if got := budgets[supply]; math.Abs(float64(got-wb)) > 0.001 {
			t.Errorf("budget[%s] = %v, want %v", supply, got, wb)
		}
	}
	mu.Unlock()

	// Fleet observability rollup after settling: the digest that rode the
	// gather path must cover every rack and sum their demand exactly —
	// racks report 840+20r watts of demand each, 3480 W total.
	rep, ok := room.FleetReport()
	if !ok {
		t.Fatal("no fleet digest after settled periods")
	}
	if rep.Summary.Racks != racks {
		t.Fatalf("fleet digest covers %d racks, want %d", rep.Summary.Racks, racks)
	}
	if rep.Summary.PowerWatts != 3480 {
		t.Fatalf("fleet digest power = %v W, want exactly 3480", rep.Summary.PowerWatts)
	}
	// Demand exceeds the room budget, so somebody must be flagged: the
	// digest's top-K outliers carry the capped racks with reasons.
	if len(rep.Fleet.Outliers) == 0 {
		t.Fatal("capped fleet produced no outlier racks")
	}
	for _, o := range rep.Fleet.Outliers {
		if o.Reason == "" || o.Rack == "" {
			t.Fatalf("outlier missing rack or reason: %+v", o)
		}
	}
	// Level rows: the aggregator tier (level 1, 4 racks across 2 workers
	// merged) and the room's own row stacked above it.
	if len(rep.Fleet.Levels) != 2 {
		t.Fatalf("fleet digest has %d level rows, want 2: %+v", len(rep.Fleet.Levels), rep.Fleet.Levels)
	}

	drops := 0
	for _, p := range proxies {
		drops += p.dropCount()
	}
	t.Logf("chaos: %d injected faults, %d dropped frames", injected, drops)
}
