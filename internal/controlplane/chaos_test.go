package controlplane

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/telemetry"
)

// dumpTraceOnFailure registers a cleanup that, when the test failed and
// CAPMAESTRO_ARTIFACT_DIR is set, writes the recorder's Chrome trace there
// so CI uploads it for offline inspection in Perfetto / chrome://tracing.
// A no-op for local runs without the variable.
func dumpTraceOnFailure(t *testing.T, rec *flightrec.Recorder) {
	t.Helper()
	t.Cleanup(func() {
		dir := os.Getenv("CAPMAESTRO_ARTIFACT_DIR")
		if !t.Failed() || dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		path := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+"-trace.json")
		f, err := os.Create(path)
		if err != nil {
			t.Logf("artifact create: %v", err)
			return
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			t.Logf("trace write: %v", err)
			return
		}
		t.Logf("chrome trace written to %s", path)
	})
}

// switchableClient wraps a RackClient with a togglable gather failure and
// records every budget push that reaches it.
type switchableClient struct {
	inner RackClient

	mu          sync.Mutex
	gatherFails bool
	pushes      []power.Watts
}

func (c *switchableClient) setGatherFails(v bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gatherFails = v
}

func (c *switchableClient) pushCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pushes)
}

func (c *switchableClient) recordedPushes() []power.Watts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]power.Watts(nil), c.pushes...)
}

func (c *switchableClient) Gather(ctx context.Context) (core.Summary, error) {
	c.mu.Lock()
	fails := c.gatherFails
	c.mu.Unlock()
	if fails {
		return core.Summary{}, fmt.Errorf("injected gather failure")
	}
	return c.inner.Gather(ctx)
}

func (c *switchableClient) ApplyBudget(ctx context.Context, b power.Watts) error {
	c.mu.Lock()
	c.pushes = append(c.pushes, b)
	c.mu.Unlock()
	return c.inner.ApplyBudget(ctx, b)
}

// twoRackRoom builds a room over one healthy rack ("ok") and one
// switchable rack ("dark"), both with a single 270–490 W server.
func twoRackRoom(t *testing.T, budget power.Watts, darkFails bool, opts ...Option) (*RoomWorker, *switchableClient, *RackWorker) {
	t.Helper()
	okWorker, err := NewRackWorker("ok", core.NewShifting("ok", 0, leaf("a", "A", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	darkWorker, err := NewRackWorker("dark", core.NewShifting("dark", 0, leaf("b", "B", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	dark := &switchableClient{inner: LocalClient{Worker: darkWorker}, gatherFails: darkFails}
	tree := core.NewShifting("top", 0,
		core.NewProxy("ok", core.NewSummary()),
		core.NewProxy("dark", core.NewSummary()),
	)
	room, err := NewRoomWorker(tree, budget, core.GlobalPriority, map[string]RackClient{
		"ok":   LocalClient{Worker: okWorker},
		"dark": dark,
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return room, dark, darkWorker
}

// TestNeverGatheredRackNeverPushed is the regression test for the
// control-plane robustness bug: a rack whose gather has never succeeded
// used to hold the zero-value proxy summary, be allocated 0 W, and then be
// pushed ApplyBudget(0) while potentially serving live load. It must never
// receive any ApplyBudget call until it has reported at least once.
func TestNeverGatheredRackNeverPushed(t *testing.T) {
	room, dark, darkWorker := twoRackRoom(t, 900, true)
	for period := 0; period < 4; period++ {
		_, stats, err := room.RunPeriod(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if stats.GatherErrors != 1 || stats.BudgetsHeld != 1 {
			t.Fatalf("period %d stats = %+v, want 1 gather error and 1 held budget", period, stats)
		}
		if n := dark.pushCount(); n != 0 {
			t.Fatalf("period %d: never-gathered rack received %d pushes", period, n)
		}
	}
	// The rack recovers: its first successful gather resumes budget pushes
	// with a real, feasible budget.
	dark.setGatherFails(false)
	_, stats, err := room.RunPeriod(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.GatherErrors != 0 || stats.BudgetsHeld != 0 {
		t.Errorf("post-recovery stats = %+v", stats)
	}
	if n := dark.pushCount(); n != 1 {
		t.Fatalf("recovered rack pushes = %d, want 1", n)
	}
	if b := dark.recordedPushes()[0]; b < 270 {
		t.Errorf("recovered rack budget = %v, want at least its Pcap_min", b)
	}
	if b := darkWorker.LastBudget(); b < 270 {
		t.Errorf("recovered rack applied budget = %v", b)
	}
}

// TestFailsafeBudgetReservation: with WithFailsafeBudget, the room reserves
// exactly the failsafe for a never-gathered rack — shrinking what the live
// racks may draw — while still never pushing the dark rack a budget.
func TestFailsafeBudgetReservation(t *testing.T) {
	room, dark, _ := twoRackRoom(t, 700, true, WithFailsafeBudget(300))
	alloc, stats, err := room.RunPeriod(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.BudgetsHeld != 1 || dark.pushCount() != 0 {
		t.Fatalf("dark rack not held: stats=%+v pushes=%d", stats, dark.pushCount())
	}
	if got := alloc.NodeBudgets["dark"]; !power.ApproxEqual(got, 300, 0.001) {
		t.Errorf("failsafe reservation = %v, want 300", got)
	}
	// 700 W total − 300 W failsafe leaves 400 W for the live rack.
	if got := alloc.NodeBudgets["ok"]; !power.ApproxEqual(got, 400, 0.001) {
		t.Errorf("live rack budget = %v, want 400", got)
	}
}

// TestStaleRackHeldAfterBound: a rack that has reported before keeps
// receiving budgets (computed from its last summary) while within the
// staleness bound, and is held once the bound is exceeded.
func TestStaleRackHeldAfterBound(t *testing.T) {
	room, flaky, _ := twoRackRoom(t, 900, false, WithStalenessBound(2))
	run := func() PeriodStats {
		t.Helper()
		_, stats, err := room.RunPeriod(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	run() // period 1: both fresh
	if n := flaky.pushCount(); n != 1 {
		t.Fatalf("healthy rack pushes = %d, want 1", n)
	}
	flaky.setGatherFails(true)
	for i := 0; i < 2; i++ { // periods 2-3: stale but within bound
		if stats := run(); stats.BudgetsHeld != 0 {
			t.Fatalf("within-bound period held %d budgets", stats.BudgetsHeld)
		}
	}
	if n := flaky.pushCount(); n != 3 {
		t.Fatalf("within-bound pushes = %d, want 3", n)
	}
	if stats := run(); stats.BudgetsHeld != 1 { // period 4: bound exceeded
		t.Fatalf("beyond-bound stats = %+v, want 1 held budget", stats)
	}
	if n := flaky.pushCount(); n != 3 {
		t.Fatalf("beyond-bound pushes = %d, want pushes frozen at 3", n)
	}
	flaky.setGatherFails(false)
	if stats := run(); stats.BudgetsHeld != 0 {
		t.Fatalf("post-recovery stats = %+v", stats)
	}
	if n := flaky.pushCount(); n != 4 {
		t.Errorf("post-recovery pushes = %d, want 4", n)
	}
}

// blockingClient hangs every call until the context ends, standing in for
// a rack that never answers during shutdown.
type blockingClient struct{ started chan struct{} }

func (c *blockingClient) Gather(ctx context.Context) (core.Summary, error) {
	select {
	case c.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return core.Summary{}, ctx.Err()
}

func (c *blockingClient) ApplyBudget(ctx context.Context, b power.Watts) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestRunCleanShutdown: cancelling the run context must not execute
// another period, and a cancellation mid-gather must not be recorded as
// rack failures (no spurious staleness, no committed period).
func TestRunCleanShutdown(t *testing.T) {
	reg := telemetry.NewRegistry()
	block := &blockingClient{started: make(chan struct{}, 1)}
	tree := core.NewShifting("top", 0, core.NewProxy("b", core.NewSummary()))
	room, err := NewRoomWorker(tree, 500, core.GlobalPriority,
		map[string]RackClient{"b": block}, WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}

	// A context cancelled before Run starts executes zero periods.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	room.Run(pre, time.Millisecond, func(PeriodStats, error) {
		t.Error("onPeriod called for a pre-cancelled run")
	})

	// Cancelling mid-gather aborts the period without reporting it.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		room.Run(ctx, time.Millisecond, func(PeriodStats, error) {
			t.Error("onPeriod called for a cancelled period")
		})
		close(done)
	}()
	<-block.started
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not exit after cancellation")
	}
	if stats := room.LastStats(); stats != (PeriodStats{}) {
		t.Errorf("aborted period committed stats: %+v", stats)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`capmaestro_controlplane_periods_total 0`,
		`capmaestro_controlplane_rack_stale_periods{rack="b"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("shutdown left spurious telemetry; missing %q in\n%s", want, out)
		}
	}
}

// chaosSeed returns the deterministic seed for the chaos test, overridable
// via CAPMAESTRO_CHAOS_SEED so CI failures reproduce exactly.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("CAPMAESTRO_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CAPMAESTRO_CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return 42
}

// TestRoomWorkerChaos drives the room worker through many control periods
// against a healthy rack, a flaky rack, a slow rack, and a rack partitioned
// from startup (healed mid-test), asserting the degraded-mode invariants:
//
//   - no rack is ever pushed a budget before its first successful gather;
//   - every pushed budget covers the rack's minimums and respects its limit,
//     and the per-period total never exceeds the room budget;
//   - Healthy() and LastStats() answer quickly while a period's RPCs are in
//     flight.
func TestRoomWorkerChaos(t *testing.T) {
	seed := chaosSeed(t)
	const (
		racks      = 4
		periods    = 40
		healAfter  = 15
		rackLimit  = 750
		rackCapMin = 2 * 270
		roomBudget = 2400
	)

	reg := telemetry.NewRegistry()
	rec := flightrec.NewRecorder(periods)
	dumpTraceOnFailure(t, rec)
	workers := make([]*RackWorker, racks)
	recorders := make([]*switchableClient, racks)
	faulty := make([]*FaultyClient, racks)
	clients := make(map[string]RackClient, racks)
	proxies := make([]*core.Node, racks)
	for i := 0; i < racks; i++ {
		id := fmt.Sprintf("rack%d", i)
		w, err := NewRackWorker(id, core.NewShifting(id, rackLimit,
			leaf(id+"-s0", id+"-S0", 0, 430),
			leaf(id+"-s1", id+"-S1", core.Priority(i%2), 430)),
			core.GlobalPriority, nil)
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		recorders[i] = &switchableClient{inner: LocalClient{Worker: w}}
		faulty[i] = NewFaultyClient(recorders[i], seed+int64(i))
		clients[id] = faulty[i]
		proxies[i] = core.NewProxy(id, core.NewSummary())
	}
	faulty[1].SetErrorRate(0.3)
	faulty[2].SetLatency(5 * time.Millisecond)
	faulty[3].SetPartitioned(true)
	faulty[3].SetPartitionTimeout(50 * time.Millisecond)

	room, err := NewRoomWorker(core.NewShifting("room", 2600, proxies...),
		roomBudget, core.GlobalPriority, clients,
		WithTelemetry(reg), WithFlightRecorder(rec),
		WithStalenessBound(2), WithFailsafeBudget(rackCapMin))
	if err != nil {
		t.Fatal(err)
	}

	// Probe the observable surface concurrently: it must never block on the
	// in-flight RPCs (the partitioned rack hangs for 50 ms every period).
	probeDone := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		probes := 0
		for {
			select {
			case <-probeDone:
				if probes == 0 {
					t.Error("prober never ran")
				}
				return
			default:
			}
			start := time.Now()
			room.Healthy()
			room.LastStats()
			room.LastAllocation()
			if d := time.Since(start); d > time.Second {
				t.Errorf("observable state blocked for %v during a control period", d)
			}
			probes++
			time.Sleep(time.Millisecond)
		}
	}()

	for period := 0; period < periods; period++ {
		if period == healAfter {
			faulty[3].SetPartitioned(false)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		alloc, stats, err := room.RunPeriod(ctx)
		cancel()
		if err != nil {
			t.Fatalf("period %d: %v", period, err)
		}
		if stats.RacksServed != racks {
			t.Fatalf("period %d stats = %+v", period, stats)
		}
		var total power.Watts
		for i := 0; i < racks; i++ {
			id := fmt.Sprintf("rack%d", i)
			b := alloc.NodeBudgets[id]
			total += b
			if b > rackLimit+0.001 {
				t.Fatalf("period %d: %s budget %v exceeds rack limit", period, id, b)
			}
			// Zero successful gathers → zero pushes, ever.
			if faulty[i].InnerGathers() == 0 && recorders[i].pushCount() > 0 {
				t.Fatalf("period %d: %s pushed before any successful gather", period, id)
			}
		}
		if total > roomBudget+0.001 {
			t.Fatalf("period %d: rack budgets sum to %v > room budget", period, total)
		}
	}
	close(probeDone)
	probeWG.Wait()

	// Every budget that reached a rack was feasible: at least the rack's
	// aggregate Pcap_min, at most its breaker limit.
	for i := 0; i < racks; i++ {
		pushes := recorders[i].recordedPushes()
		if i != 3 && len(pushes) == 0 {
			t.Errorf("rack%d never received a budget", i)
		}
		for _, b := range pushes {
			if b < rackCapMin-0.001 || b > rackLimit+0.001 {
				t.Errorf("rack%d received infeasible budget %v", i, b)
			}
		}
	}
	// The healed rack came back: gathered, budgeted, applied.
	if faulty[3].InnerGathers() == 0 || recorders[3].pushCount() == 0 {
		t.Errorf("healed rack never resumed: gathers=%d pushes=%d",
			faulty[3].InnerGathers(), recorders[3].pushCount())
	}
	if b := workers[3].LastBudget(); b < rackCapMin-0.001 {
		t.Errorf("healed rack applied budget = %v", b)
	}
	if err := room.Healthy(); err != nil {
		t.Errorf("room unhealthy at end of chaos run: %v", err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "capmaestro_controlplane_held_pushes_total") ||
		strings.Contains(out, "capmaestro_controlplane_held_pushes_total 0\n") {
		t.Error("held-pushes counter did not advance under chaos")
	}
	if !strings.Contains(out, "capmaestro_controlplane_unseen_racks 0") {
		t.Error("unseen-racks gauge not zero after all racks reported")
	}
}
