package controlplane

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedFrames returns valid binary encodings of representative
// requests and responses — the corpus seeds the fuzzer mutates from. The
// same bytes are committed under testdata/fuzz/FuzzBinaryCodecDecode (the
// fuzzer also picks those up when run with -fuzz).
func fuzzSeedFrames(t interface{ Fatal(...any) }) [][]byte {
	var seeds [][]byte
	for _, req := range codecRequestFixtures() {
		c, buf := codecPair(CodecBinary)
		if err := c.WriteRequest(&req); err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, append([]byte(nil), buf.Bytes()...))
	}
	for _, resp := range codecResponseFixtures() {
		c, buf := codecPair(CodecBinary)
		if err := c.WriteResponse(&resp); err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, append([]byte(nil), buf.Bytes()...))
	}
	return seeds
}

// TestWriteFuzzSeedCorpus regenerates the committed corpus under
// testdata/fuzz/FuzzBinaryCodecDecode from the codec fixtures. Run with
// CAPMAESTRO_WRITE_FUZZ_SEEDS=1 after changing the wire layout so the
// seeds keep exercising every branch of the decoder.
func TestWriteFuzzSeedCorpus(t *testing.T) {
	if os.Getenv("CAPMAESTRO_WRITE_FUZZ_SEEDS") == "" {
		t.Skip("set CAPMAESTRO_WRITE_FUZZ_SEEDS=1 to regenerate the committed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzBinaryCodecDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedFrames(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzBinaryCodecDecode throws arbitrary bytes at both binary decoders.
// The contract under fuzzing: never panic, never allocate beyond the
// frame limit (enforced structurally by maxFrameLen and the count bounds),
// and — when a frame does decode — re-encoding and re-decoding it must be
// a fixed point, so no decodable input desyncs a stream.
func FuzzBinaryCodecDecode(f *testing.F) {
	for _, seed := range fuzzSeedFrames(f) {
		f.Add(seed)
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Byte-level stability is the fixed-point property: it also holds
		// for NaN watt fields, where struct equality would not.
		var req wireRequest
		reqCodec := newBinaryCodec(bufio.NewReader(bytes.NewReader(data)), &bytes.Buffer{})
		if err := reqCodec.ReadRequest(&req); err == nil {
			rt, buf := codecPair(CodecBinary)
			if err := rt.WriteRequest(&req); err != nil {
				t.Fatalf("decoded request failed to re-encode: %+v: %v", req, err)
			}
			reencoded := append([]byte(nil), buf.Bytes()...)
			var again wireRequest
			if err := rt.ReadRequest(&again); err != nil {
				t.Fatalf("re-encoded request failed to decode: %v", err)
			}
			rt2, buf2 := codecPair(CodecBinary)
			if err := rt2.WriteRequest(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reencoded, buf2.Bytes()) {
				t.Fatalf("request re-encoding unstable:\n% x\n% x", reencoded, buf2.Bytes())
			}
		}

		var resp wireResponse
		respCodec := newBinaryCodec(bufio.NewReader(bytes.NewReader(data)), &bytes.Buffer{})
		if err := respCodec.ReadResponse(&resp); err == nil {
			rt, buf := codecPair(CodecBinary)
			if err := rt.WriteResponse(&resp); err != nil {
				t.Fatalf("decoded response failed to re-encode: %+v: %v", resp, err)
			}
			reencoded := append([]byte(nil), buf.Bytes()...)
			var again wireResponse
			if err := rt.ReadResponse(&again); err != nil {
				t.Fatalf("re-encoded response failed to decode: %v", err)
			}
			rt2, buf2 := codecPair(CodecBinary)
			if err := rt2.WriteResponse(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reencoded, buf2.Bytes()) {
				t.Fatalf("response re-encoding unstable:\n% x\n% x", reencoded, buf2.Bytes())
			}
		} else if resp.OK || resp.Summary != nil || resp.Spans != nil || resp.Explains != nil {
			t.Fatalf("failed response decode left state: %+v", resp)
		}
	})
}
