package controlplane

import (
	"log/slog"
	"strconv"
	"time"

	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
)

// Option configures telemetry and logging on workers and transports. All
// instrumentation is optional: without options (or with a nil registry /
// logger) the instrumented paths cost nothing.
type Option func(*options)

type options struct {
	reg             *telemetry.Registry
	log             *slog.Logger
	budgetLogDelta  power.Watts
	stalenessBound  int
	failsafeBudget  power.Watts
	rpcRetries      int
	rpcRetryBackoff time.Duration
	recorder        *flightrec.Recorder
	slo             *slo.Tracker
	wireCodec       string
	deltaDeadband   power.Watts
	rpcConcurrency  int
	level           int
	// digests is tri-state: nil means default (workers roll up digests;
	// TCP clients do not request them over the wire), so existing
	// deployments' byte streams are untouched until a client opts in.
	digests      *bool
	fleetHistory int
}

func buildOptions(opts []Option) options {
	o := options{
		budgetLogDelta:  DefaultBudgetLogDelta,
		stalenessBound:  DefaultStalenessBound,
		rpcRetries:      DefaultRPCRetries,
		rpcRetryBackoff: DefaultRPCRetryBackoff,
	}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithTelemetry registers the worker's or transport's metrics on reg. A
// nil registry disables metrics (the default).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// WithLogger emits structured control-loop events (period start/end, rack
// failure and recovery transitions, budget changes) to log. A nil logger
// disables event logging (the default).
func WithLogger(log *slog.Logger) Option {
	return func(o *options) { o.log = log }
}

// DefaultBudgetLogDelta is the minimum budget change, in watts, that
// triggers a "budget changed" log event.
const DefaultBudgetLogDelta = power.Watts(1)

// WithBudgetLogDelta overrides the budget-change logging threshold.
func WithBudgetLogDelta(d power.Watts) Option {
	return func(o *options) { o.budgetLogDelta = d }
}

// DefaultStalenessBound is the number of consecutive failed gathers the
// room worker tolerates before holding a rack's budget pushes: the rack
// then keeps its last applied budget instead of being steered from
// unboundedly stale state.
const DefaultStalenessBound = 3

// WithStalenessBound overrides the staleness bound, in control periods. A
// bound n holds budget pushes to a rack once its summary is more than n
// periods old; n <= 0 disables staleness holds (pushes continue from the
// last summary indefinitely). Racks that have never reported are always
// held, regardless of the bound.
func WithStalenessBound(periods int) Option {
	return func(o *options) { o.stalenessBound = periods }
}

// WithFailsafeBudget reserves b watts of the room budget for each rack
// whose gather has never succeeded, so a rack joining mid-flight (or dark
// since startup) keeps conservative headroom instead of being allocated
// zero. The default (0) excludes never-seen racks from allocation
// entirely; either way they are never pushed a budget.
func WithFailsafeBudget(b power.Watts) Option {
	return func(o *options) { o.failsafeBudget = b }
}

// WithFlightRecorder attaches a flight recorder to the room worker: every
// control period is traced (one root span, per-phase and per-rack child
// spans, rack-side spans merged across the transport) and recorded into
// rec's ring buffer together with the allocator's per-node explain
// records. A nil recorder disables tracing (the default) — the period
// then runs without a trace context and no spans are created anywhere.
func WithFlightRecorder(rec *flightrec.Recorder) Option {
	return func(o *options) { o.recorder = rec }
}

// WithSLO attaches a safety-SLO tracker to the room worker: after every
// completed control period the worker feeds the tracker one alert-engine
// evaluation with per-rack staleness samples (rack_stale_periods), so
// rules like "rack held stale ≥ N periods" fire from live control-plane
// state. A nil tracker disables SLO evaluation (the default).
func WithSLO(t *slo.Tracker) Option {
	return func(o *options) { o.slo = t }
}

// Default transport retry policy: a failed rack RPC is retried a bounded
// number of times with doubling backoff, reconnecting on each attempt.
const (
	DefaultRPCRetries      = 2
	DefaultRPCRetryBackoff = 25 * time.Millisecond
)

// WithRPCRetry overrides the TCP client's retry policy: up to retries
// additional attempts per RPC after a transport failure, starting at
// backoff and doubling per attempt. retries <= 0 disables retrying.
func WithRPCRetry(retries int, backoff time.Duration) Option {
	return func(o *options) {
		o.rpcRetries = retries
		o.rpcRetryBackoff = backoff
	}
}

// WithWireCodec selects the rack transport's wire codec. On DialRack it
// picks what the client speaks: CodecJSON (the default), CodecBinary, or
// CodecAuto to defer to the CAPMAESTRO_WIRE_CODEC environment variable
// (falling back to JSON). On ServeRack it restricts which codecs the
// server admits; the default (CodecAuto) detects each connection's codec
// from its first byte and accepts both.
func WithWireCodec(name string) Option {
	return func(o *options) { o.wireCodec = name }
}

// WithDeltaDeadband configures delta-encoded gather responses on a rack
// server using the binary codec: while every metric of a fresh summary
// stays within d watts of the last full summary sent on the connection,
// the response is squashed to a few-byte "unchanged" frame. The default
// (0) squashes only exact matches; a negative d disables delta responses
// entirely. Full-summary resync is forced on every reconnect (retries
// re-dial) and on any deadband breach, so the room's view drifts at most
// d watts per metric. The JSON codec never squashes.
func WithDeltaDeadband(d power.Watts) Option {
	return func(o *options) { o.deltaDeadband = d }
}

// WithRPCConcurrency bounds how many rack RPCs a room worker or
// aggregator keeps in flight at once during its gather and push waves.
// The default (0) scales with GOMAXPROCS but stays well above it — rack
// RPCs are I/O-bound, so even a single-core controller wants dozens in
// flight to hide network latency. Each worker gets its own bound.
func WithRPCConcurrency(n int) Option {
	return func(o *options) { o.rpcConcurrency = n }
}

// WithDigests turns the fleet observability plane on or off. On workers
// (room workers and aggregators) it controls whether gathers roll child
// digests into a fleet StatDigest each period — on by default. On
// DialRack it controls whether the client asks servers to piggyback
// digests on gather responses — off by default, so the wire byte stream
// only changes for clients that explicitly opt in; a room over a
// digest-less transport still rolls up, synthesizing per-rack digests
// from the gathered summaries.
func WithDigests(on bool) Option {
	return func(o *options) { o.digests = &on }
}

// WithFleetHistory sizes the room worker's fleet history ring: the last n
// periods' fleet samples back /debug/fleet/history. n <= 0 keeps the
// default (fleetobs.DefaultHistorySize).
func WithFleetHistory(n int) Option {
	return func(o *options) { o.fleetHistory = n }
}

// WithHierarchyLevel labels an aggregator's per-level telemetry
// (capmaestro_controlplane_level_* families) with its tier in the
// hierarchy: level 1 is the tier directly above the racks. BuildHierarchy
// sets this automatically; a standalone aggregator defaults to level 1.
func WithHierarchyLevel(level int) Option {
	return func(o *options) { o.level = level }
}

// phaseBuckets sizes the control-period phase histograms: gather and push
// round-trip rack RPCs (ms scale), allocation is in-memory (µs scale),
// and everything must sit far inside the 8 s control period.
var phaseBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2, 4, 8}

// roomMetrics is the room worker's instrument bundle. With a nil registry
// every handle is nil and each recording call is a zero-cost no-op.
type roomMetrics struct {
	gatherSeconds   *telemetry.Histogram
	allocateSeconds *telemetry.Histogram
	pushSeconds     *telemetry.Histogram
	pipelineOverlap *telemetry.Histogram
	periods         *telemetry.Counter
	gatherErrors    *telemetry.Counter
	applyErrors     *telemetry.Counter
	heldPushes      *telemetry.Counter
	racks           *telemetry.Gauge
	budget          *telemetry.Gauge
	unseenRacks     *telemetry.Gauge
	staleByRack     map[string]*telemetry.Gauge
	budgetByRack    map[string]*telemetry.Gauge

	// Fleet digest rollup gauges, refreshed once per period from the
	// merged fleet digest.
	fleetRacks         *telemetry.Gauge
	fleetPower         *telemetry.Gauge
	fleetHeadroom      *telemetry.Gauge
	fleetWorstHeadroom *telemetry.Gauge
	fleetViolating     *telemetry.Gauge
	fleetOutliers      *telemetry.Gauge
}

func newRoomMetrics(reg *telemetry.Registry, rackIDs []string) roomMetrics {
	phases := reg.HistogramVec("capmaestro_controlplane_phase_seconds",
		"Latency of each room-worker control-period phase.", phaseBuckets, "phase")
	stale := reg.GaugeVec("capmaestro_controlplane_rack_stale_periods",
		"Consecutive periods a rack proxy has served a stale summary (0 = fresh).", "rack")
	rackBudget := reg.GaugeVec("capmaestro_controlplane_rack_budget_watts",
		"Budget most recently assigned to each rack by the room worker.", "rack")
	m := roomMetrics{
		gatherSeconds:   phases.With("gather"),
		allocateSeconds: phases.With("allocate"),
		pushSeconds:     phases.With("push"),
		pipelineOverlap: reg.Histogram("capmaestro_period_pipeline_overlap_seconds",
			"Time period k's push phase ran concurrently with period k+1's gather in the pipelined room worker.",
			phaseBuckets),
		periods: reg.Counter("capmaestro_controlplane_periods_total",
			"Control periods executed by the room worker."),
		gatherErrors: reg.Counter("capmaestro_controlplane_gather_errors_total",
			"Rack summary gathers that failed or returned invalid summaries."),
		applyErrors: reg.Counter("capmaestro_controlplane_apply_errors_total",
			"Rack budget pushes that failed."),
		heldPushes: reg.Counter("capmaestro_controlplane_held_pushes_total",
			"Rack budget pushes withheld because the rack was never gathered or its summary exceeded the staleness bound."),
		racks: reg.Gauge("capmaestro_controlplane_racks",
			"Racks served by the room worker."),
		budget: reg.Gauge("capmaestro_controlplane_budget_watts",
			"Contractual budget the room worker allocates (0 = tree constraint)."),
		unseenRacks: reg.Gauge("capmaestro_controlplane_unseen_racks",
			"Racks from which no summary has ever been gathered successfully."),
		staleByRack:  make(map[string]*telemetry.Gauge, len(rackIDs)),
		budgetByRack: make(map[string]*telemetry.Gauge, len(rackIDs)),
		fleetRacks: reg.Gauge("capmaestro_fleet_racks",
			"Racks covered by the room worker's last merged fleet digest."),
		fleetPower: reg.Gauge("capmaestro_fleet_power_watts",
			"Fleet-wide power demand from the last merged fleet digest."),
		fleetHeadroom: reg.Gauge("capmaestro_fleet_headroom_watts",
			"Fleet-wide headroom (budget minus demand) from the last merged fleet digest."),
		fleetWorstHeadroom: reg.Gauge("capmaestro_fleet_worst_rack_headroom_watts",
			"Worst single-rack headroom in the last merged fleet digest (negative = cap violation)."),
		fleetViolating: reg.Gauge("capmaestro_fleet_violating_racks",
			"Racks whose demand exceeded their budget in the last merged fleet digest."),
		fleetOutliers: reg.Gauge("capmaestro_fleet_outlier_racks",
			"Racks flagged as outliers (cap-exceeded, low-headroom, stale) in the last merged fleet digest."),
	}
	for _, id := range rackIDs {
		m.staleByRack[id] = stale.With(id)
		m.budgetByRack[id] = rackBudget.With(id)
	}
	return m
}

// rackMetrics instruments a rack worker.
type rackMetrics struct {
	budget      *telemetry.Gauge
	applies     *telemetry.Counter
	applyErrors *telemetry.Counter
}

func newRackMetrics(reg *telemetry.Registry, rackID string) rackMetrics {
	return rackMetrics{
		budget: reg.GaugeVec("capmaestro_rack_budget_watts",
			"Budget most recently received from the room worker.", "rack").With(rackID),
		applies: reg.CounterVec("capmaestro_rack_applies_total",
			"Budget applications distributed down the rack subtree.", "rack").With(rackID),
		applyErrors: reg.CounterVec("capmaestro_rack_apply_errors_total",
			"Budget applications that failed to allocate.", "rack").With(rackID),
	}
}

// rpcBuckets size the transport latency histogram: loopback RPCs land in
// the sub-millisecond buckets, cross-machine ones in the millisecond
// range, and anything past 2 s indicates a timeout in a default client.
var rpcBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2}

// codecBuckets size the per-codec encode/decode histograms: binary
// frames land in the sub-microsecond buckets, JSON marshaling in the
// microsecond range; anything near a millisecond means the codec has
// become the hot path again.
var codecBuckets = []float64{5e-8, 1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 2.5e-4, 1e-3}

// rpcMetrics instruments one side (server or client) of the rack
// transport. enabled short-circuits timing work when telemetry is off.
type rpcMetrics struct {
	enabled        bool
	seconds        map[string]*telemetry.Histogram
	errors         map[string]*telemetry.Counter
	codecEnc       map[string]*telemetry.Histogram // by codec name
	codecDec       map[string]*telemetry.Histogram
	retries        *telemetry.Counter
	bytesIn        *telemetry.Counter
	bytesOut       *telemetry.Counter
	deltaHits      *telemetry.Counter
	protocolErrors *telemetry.Counter
	openConns      *telemetry.Gauge
	batchFrames    *telemetry.Counter
	batchRacks     *telemetry.Counter
	digestBytes    *telemetry.Counter
}

func newRPCMetrics(reg *telemetry.Registry, role string) rpcMetrics {
	seconds := reg.HistogramVec("capmaestro_rpc_seconds",
		"Rack RPC round-trip (client) or handling (server) latency.", rpcBuckets, "role", "op")
	errs := reg.CounterVec("capmaestro_rpc_errors_total",
		"Rack RPCs that returned an error.", "role", "op")
	bytes := reg.CounterVec("capmaestro_rpc_bytes_total",
		"Bytes moved over rack transport connections.", "role", "direction")
	codecSeconds := reg.HistogramVec("capmaestro_rpc_codec_seconds",
		"Time spent encoding or decoding one rack transport message, per codec.",
		codecBuckets, "role", "codec", "op")
	m := rpcMetrics{
		enabled:  reg != nil,
		seconds:  make(map[string]*telemetry.Histogram, 3),
		errors:   make(map[string]*telemetry.Counter, 3),
		codecEnc: make(map[string]*telemetry.Histogram, 2),
		codecDec: make(map[string]*telemetry.Histogram, 2),
		retries: reg.CounterVec("capmaestro_rpc_retries_total",
			"Rack RPC attempts retried after a transport failure.", "role").With(role),
		bytesIn:  bytes.With(role, "in"),
		bytesOut: bytes.With(role, "out"),
		deltaHits: reg.CounterVec("capmaestro_rpc_delta_hits_total",
			"Gather responses squashed to (server) or resolved from (client) an unchanged-summary delta frame.",
			"role").With(role),
		protocolErrors: reg.CounterVec("capmaestro_rpc_protocol_errors_total",
			"Malformed-but-delivered transport messages (bad framing, contradictory gather responses); each one resets its connection.",
			"role").With(role),
		openConns: reg.GaugeVec("capmaestro_rpc_open_connections",
			"Open rack transport connections.", "role").With(role),
		batchFrames: reg.CounterVec("capmaestro_rpc_batch_frames_total",
			"Multi-rack batch frames sent (client) or handled (server).", "role").With(role),
		batchRacks: reg.CounterVec("capmaestro_rpc_batch_racks_total",
			"Racks multiplexed into batch frames; batch_racks/batch_frames is the realized batching factor.",
			"role").With(role),
		digestBytes: reg.CounterVec("capmaestro_fleet_digest_wire_bytes_total",
			"Bytes of fleet digest payload carried inside binary gather frames; digest_wire_bytes/rpc_bytes is the observability plane's wire overhead.",
			"role").With(role),
	}
	for _, op := range []string{opGather, opBudget, opPing, opBatchGather, opBatchBudget} {
		m.seconds[op] = seconds.With(role, op)
		m.errors[op] = errs.With(role, op)
	}
	for _, c := range []string{CodecJSON, CodecBinary} {
		m.codecEnc[c] = codecSeconds.With(role, c, "encode")
		m.codecDec[c] = codecSeconds.With(role, c, "decode")
	}
	return m
}

// codecHists returns the encode/decode histograms for a codec, resolved
// once per connection so the hot path avoids map lookups.
func (m *rpcMetrics) codecHists(codecName string) (enc, dec *telemetry.Histogram) {
	return m.codecEnc[codecName], m.codecDec[codecName]
}

// noteBatch records one batch frame multiplexing racks rack slots.
func (m *rpcMetrics) noteBatch(racks int) {
	if !m.enabled {
		return
	}
	m.batchFrames.Inc()
	m.batchRacks.Add(float64(racks))
}

// observe records one RPC of the given op; nil-safe for unknown ops.
func (m *rpcMetrics) observe(op string, start time.Time, failed bool) {
	if !m.enabled {
		return
	}
	m.seconds[op].ObserveSince(start)
	if failed {
		m.errors[op].Inc()
	}
}

// aggMetrics instruments an aggregator tier. Families are labeled by
// hierarchy level (1 = directly above the racks), so same-level
// aggregators share instruments: counters accumulate naturally and the
// child-state gauges are maintained by per-aggregator deltas.
type aggMetrics struct {
	gatherSeconds  *telemetry.Histogram
	pushSeconds    *telemetry.Histogram
	gatherErrors   *telemetry.Counter
	applyErrors    *telemetry.Counter
	heldPushes     *telemetry.Counter
	unseenChildren *telemetry.Gauge
	staleChildren  *telemetry.Gauge
}

func newAggMetrics(reg *telemetry.Registry, level int) aggMetrics {
	lvl := strconv.Itoa(level)
	return aggMetrics{
		gatherSeconds: reg.HistogramVec("capmaestro_controlplane_level_gather_seconds",
			"Latency of one aggregator gather wave, per hierarchy level (1 = above the racks).",
			phaseBuckets, "level").With(lvl),
		pushSeconds: reg.HistogramVec("capmaestro_controlplane_level_push_seconds",
			"Latency of one aggregator budget-push wave, per hierarchy level.",
			phaseBuckets, "level").With(lvl),
		gatherErrors: reg.CounterVec("capmaestro_controlplane_level_gather_errors_total",
			"Child gathers that failed or returned invalid summaries, per hierarchy level.",
			"level").With(lvl),
		applyErrors: reg.CounterVec("capmaestro_controlplane_level_apply_errors_total",
			"Child budget pushes that failed, per hierarchy level.", "level").With(lvl),
		heldPushes: reg.CounterVec("capmaestro_controlplane_level_held_pushes_total",
			"Child budget pushes withheld at an aggregator tier (never-gathered or stale children).",
			"level").With(lvl),
		unseenChildren: reg.GaugeVec("capmaestro_controlplane_level_unseen_children",
			"Children at this hierarchy level from which no summary has ever been gathered.",
			"level").With(lvl),
		staleChildren: reg.GaugeVec("capmaestro_controlplane_level_stale_children",
			"Children at this hierarchy level currently beyond the staleness bound.",
			"level").With(lvl),
	}
}
