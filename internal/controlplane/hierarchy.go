package controlplane

import (
	"errors"
	"fmt"
	"sort"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
)

// DefaultFanOut is the hierarchy fan-out used when HierarchyConfig leaves
// it zero: each aggregator serves at most this many children.
const DefaultFanOut = 32

// HierarchyConfig declares the shape of a sharded control-plane
// hierarchy built by BuildHierarchy.
type HierarchyConfig struct {
	// Levels counts every worker tier, racks and room included: 2 is the
	// flat room-over-racks layout, 3 inserts one aggregator tier, 4 two.
	Levels int
	// FanOut caps how many children each aggregator serves; the room
	// serves whatever the top aggregator tier leaves (at most FanOut^k
	// racks collapse into ceil(racks/FanOut^k) top-tier children). Zero
	// uses DefaultFanOut.
	FanOut int
	Policy core.Policy
	// Budget is the room's contractual budget; zero uses the (here
	// unconstrained) tree limit, i.e. no cap.
	Budget power.Watts
	// RoomID names the room's root node; empty uses "room".
	RoomID string
	// Opts apply to the room worker and to every aggregator; each
	// aggregator additionally gets WithHierarchyLevel for its tier.
	Opts []Option
}

// Hierarchy is a sharded control plane: a room worker at the top,
// aggregator tiers below it, rack clients at the bottom. The room drives
// the whole structure — one RunPeriod (or RunPipelined) recursively
// gathers and budgets every tier.
type Hierarchy struct {
	Room *RoomWorker
	// Tiers holds the aggregator tiers bottom-up: Tiers[0] is level 1,
	// directly above the racks. Empty for Levels == 2.
	Tiers [][]*Aggregator
}

// BuildHierarchy shards a flat rack set into a Levels-deep hierarchy:
// racks are sorted by ID and chunked into groups of FanOut under level-1
// aggregators, those aggregators into level-2 groups, and so on, until
// the room worker sits on the top tier. Intermediate trees are
// unconstrained shifting nodes — the hierarchy changes who talks to whom,
// not the power topology — so the resulting budgets match a monolithic
// allocator over the same nested tree watt-for-watt.
//
// The aggregators are in-process RackClients wired directly into their
// parents. To distribute tiers across machines, serve any tier's
// aggregators with ServeRacks and dial them from a parent built
// separately.
func BuildHierarchy(racks map[string]RackClient, cfg HierarchyConfig) (*Hierarchy, error) {
	if len(racks) == 0 {
		return nil, errors.New("controlplane: hierarchy needs at least one rack")
	}
	if cfg.Levels < 2 {
		return nil, fmt.Errorf("controlplane: hierarchy needs >= 2 levels, got %d", cfg.Levels)
	}
	fanOut := cfg.FanOut
	if fanOut == 0 {
		fanOut = DefaultFanOut
	}
	if fanOut < 2 {
		return nil, fmt.Errorf("controlplane: hierarchy fan-out must be >= 2, got %d", cfg.FanOut)
	}
	roomID := cfg.RoomID
	if roomID == "" {
		roomID = "room"
	}

	ids := make([]string, 0, len(racks))
	for id := range racks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	clients := racks

	h := &Hierarchy{}
	for level := 1; level <= cfg.Levels-2; level++ {
		var tier []*Aggregator
		next := make(map[string]RackClient)
		var nextIDs []string
		for gi := 0; gi*fanOut < len(ids); gi++ {
			chunk := ids[gi*fanOut : min((gi+1)*fanOut, len(ids))]
			proxies := make([]*core.Node, len(chunk))
			childMap := make(map[string]RackClient, len(chunk))
			for i, id := range chunk {
				proxies[i] = core.NewProxy(id, core.NewSummary())
				childMap[id] = clients[id]
			}
			aggID := fmt.Sprintf("%s/l%d/agg%03d", roomID, level, gi)
			opts := make([]Option, 0, len(cfg.Opts)+1)
			opts = append(opts, cfg.Opts...)
			opts = append(opts, WithHierarchyLevel(level))
			agg, err := NewAggregator(core.NewShifting(aggID, 0, proxies...), cfg.Policy, childMap, opts...)
			if err != nil {
				return nil, fmt.Errorf("controlplane: hierarchy level %d: %w", level, err)
			}
			tier = append(tier, agg)
			next[aggID] = agg
			nextIDs = append(nextIDs, aggID)
		}
		h.Tiers = append(h.Tiers, tier)
		clients = next
		ids = nextIDs
	}

	proxies := make([]*core.Node, len(ids))
	for i, id := range ids {
		proxies[i] = core.NewProxy(id, core.NewSummary())
	}
	room, err := NewRoomWorker(core.NewShifting(roomID, 0, proxies...), cfg.Budget, cfg.Policy, clients, cfg.Opts...)
	if err != nil {
		return nil, fmt.Errorf("controlplane: hierarchy room: %w", err)
	}
	h.Room = room
	return h, nil
}
