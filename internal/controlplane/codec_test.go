package controlplane

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
)

// codecFixtures returns one of every request and response shape the wire
// protocol carries, so cross-tests cover the full surface.
func codecRequestFixtures() map[string]wireRequest {
	return map[string]wireRequest{
		"ping":           {Op: opPing},
		"gather":         {Op: opGather},
		"gather-cached":  {Op: opGather, HaveCached: true},
		"budget":         {Op: opBudget, Budget: 1234.5},
		"budget-zero":    {Op: opBudget, Budget: 0},
		"gather-traced":  {Op: opGather, Trace: &flightrec.TraceContext{TraceID: "trace-1", ParentID: "span-7"}},
		"budget-traced":  {Op: opBudget, Budget: 987.25, Trace: &flightrec.TraceContext{TraceID: "t", ParentID: ""}},
		"traced-cached":  {Op: opGather, HaveCached: true, Trace: &flightrec.TraceContext{TraceID: "abc123", ParentID: "def456"}},
		"budget-decimal": {Op: opBudget, Budget: 0.0625},
		"gather-digest":  {Op: opGather, WantDigest: true},
		"digest-cached":  {Op: opGather, WantDigest: true, HaveCached: true},
	}
}

// codecDigestFixture builds a fleet digest exercising every optional
// section of the digest wire format: histogram, outliers, level rows
// (with and without latency histograms), and the worst-rack ID.
func codecDigestFixture() *fleetobs.StatDigest {
	d := &fleetobs.StatDigest{
		Racks:             3,
		PowerW:            2900,
		RequestW:          3100,
		CapMinW:           1740,
		BudgetW:           3480,
		HeadroomW:         580,
		WorstHeadroomW:    -60,
		WorstHeadroomRack: "rack-2",
		ViolationW:        60,
		ViolatingRacks:    1,
	}
	d.Headroom.Observe(fleetobs.HeadroomBounds, -0.0625)
	d.Headroom.Observe(fleetobs.HeadroomBounds, 0.25)
	d.Headroom.Observe(fleetobs.HeadroomBounds, 0.5)
	d.AddOutlier(fleetobs.Outlier{Rack: "rack-2", Reason: fleetobs.ReasonCapExceeded,
		Score: 1.0625, PowerW: 1020, HeadroomW: -60})
	d.AddOutlier(fleetobs.Outlier{Rack: "rack-9", Reason: fleetobs.ReasonStale,
		Score: 4, StalePeriods: 2})
	lvl1 := fleetobs.LevelStats{Level: 1, Workers: 3, GatherErrors: 1, Stale: 1, Held: 1}
	lvl1.GatherLatency.Observe(fleetobs.LatencyBounds, 0.001953125)
	d.AddLevel(&lvl1)
	d.AddLevel(&fleetobs.LevelStats{Level: 2, Workers: 1})
	return d
}

func codecResponseFixtures() map[string]wireResponse {
	multi := core.NewSummary()
	multi.Constraint = 1600
	multi.SetLevel(2, 100, 250, 250)
	multi.SetLevel(0, 540, 900, 860)
	multi.SetLevel(-1, 10, 20, 15)
	empty := core.NewSummary()
	empty.Constraint = 42.5
	start := time.Unix(0, 1722000000123456789)
	bareDig := &fleetobs.StatDigest{Racks: 1, PowerW: 950, RequestW: 1000,
		CapMinW: 570, HeadroomW: 210, WorstHeadroomW: 210}
	return map[string]wireResponse{
		"ok":            {OK: true},
		"error":         {Error: "rack on fire"},
		"summary":       {OK: true, Summary: &multi},
		"summary-empty": {OK: true, Summary: &empty},
		"unchanged":     {OK: true, Unchanged: true},
		"digest":        {OK: true, Summary: &multi, Digest: codecDigestFixture()},
		"digest-bare":   {OK: true, Summary: &empty, Digest: bareDig},
		"traced": {
			OK:      true,
			Summary: &multi,
			Spans: []flightrec.Span{
				{TraceID: "t1", SpanID: "s1", Name: "rack.gather", Node: "rack0",
					Start: start, Duration: 1500 * time.Microsecond},
				{TraceID: "t1", SpanID: "s2", ParentID: "s1", Name: "rack.apply", Node: "rack0",
					Start: start.Add(time.Millisecond), Duration: 42, Retries: 3, Error: "late"},
			},
			Explains: []core.NodeExplain{
				{NodeID: "rack0", Priority: 1, Demand: 900, CapMin: 540, Request: 860,
					Constraint: 1600, Granted: 860, Phase: "fulfill"},
				{NodeID: "s0-ps", SupplyID: "s0-ps", ServerID: "s0", Leaf: true, Priority: 0,
					Demand: 450, CapMin: 270, Request: 430, Constraint: 490, Granted: 430,
					Clamp: "cap_max", Phase: "assign"},
			},
		},
	}
}

// codecPair builds a connected codec of the given name over an in-memory
// buffer: what one side writes, the same side reads back (both directions
// share the frame layout, so a single buffer suffices for round-trips).
func codecPair(name string) (codec, *bytes.Buffer) {
	buf := &bytes.Buffer{}
	if name == CodecBinary {
		return newBinaryCodec(bufio.NewReader(buf), buf), buf
	}
	return newJSONCodec(bufio.NewReader(buf), buf), buf
}

func requestsEquivalent(a, b wireRequest) bool {
	if a.Op != b.Op || a.Budget != b.Budget || a.HaveCached != b.HaveCached ||
		a.WantDigest != b.WantDigest {
		return false
	}
	switch {
	case a.Trace == nil && b.Trace == nil:
		return true
	case a.Trace == nil || b.Trace == nil:
		return false
	default:
		return *a.Trace == *b.Trace
	}
}

func summariesEquivalent(a, b *core.Summary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Constraint != b.Constraint {
		return false
	}
	al, bl := a.LevelMetrics(), b.LevelMetrics()
	if len(al) != len(bl) {
		return false
	}
	for i := range al {
		if al[i] != bl[i] {
			return false
		}
	}
	return true
}

func responsesEquivalent(a, b wireResponse) bool {
	if a.OK != b.OK || a.Error != b.Error || a.Unchanged != b.Unchanged {
		return false
	}
	if !summariesEquivalent(a.Summary, b.Summary) {
		return false
	}
	if !reflect.DeepEqual(a.Digest, b.Digest) {
		return false
	}
	if len(a.Spans) != len(b.Spans) {
		return false
	}
	for i := range a.Spans {
		sa, sb := a.Spans[i], b.Spans[i]
		// Compare instants, not time.Time internals: codecs may decode
		// into different (equal) wall-clock representations.
		if !sa.Start.Equal(sb.Start) {
			return false
		}
		sa.Start, sb.Start = time.Time{}, time.Time{}
		if sa != sb {
			return false
		}
	}
	return reflect.DeepEqual(a.Explains, b.Explains)
}

// TestCodecCrossRoundTrip round-trips every fixture through both codecs
// and cross-checks them: the structs the binary bytes decode to must be
// exactly the structs the JSON bytes decode to.
func TestCodecCrossRoundTrip(t *testing.T) {
	for name, req := range codecRequestFixtures() {
		t.Run("request/"+name, func(t *testing.T) {
			decoded := make(map[string]wireRequest, 2)
			for _, cn := range []string{CodecJSON, CodecBinary} {
				c, _ := codecPair(cn)
				if err := c.WriteRequest(&req); err != nil {
					t.Fatalf("%s encode: %v", cn, err)
				}
				var got wireRequest
				if err := c.ReadRequest(&got); err != nil {
					t.Fatalf("%s decode: %v", cn, err)
				}
				if !requestsEquivalent(req, got) {
					t.Fatalf("%s round trip drifted:\n in %+v\nout %+v", cn, req, got)
				}
				decoded[cn] = got
			}
			if !requestsEquivalent(decoded[CodecJSON], decoded[CodecBinary]) {
				t.Fatalf("codecs disagree:\njson   %+v\nbinary %+v", decoded[CodecJSON], decoded[CodecBinary])
			}
		})
	}
	for name, resp := range codecResponseFixtures() {
		t.Run("response/"+name, func(t *testing.T) {
			decoded := make(map[string]wireResponse, 2)
			for _, cn := range []string{CodecJSON, CodecBinary} {
				c, _ := codecPair(cn)
				if err := c.WriteResponse(&resp); err != nil {
					t.Fatalf("%s encode: %v", cn, err)
				}
				var got wireResponse
				if err := c.ReadResponse(&got); err != nil {
					t.Fatalf("%s decode: %v", cn, err)
				}
				if !responsesEquivalent(resp, got) {
					t.Fatalf("%s round trip drifted:\n in %+v\nout %+v", cn, resp, got)
				}
				decoded[cn] = got
			}
			if !responsesEquivalent(decoded[CodecJSON], decoded[CodecBinary]) {
				t.Fatalf("codecs disagree:\njson   %+v\nbinary %+v", decoded[CodecJSON], decoded[CodecBinary])
			}
		})
	}
}

// TestCodecSequencedFrames pins stream behavior: multiple frames written
// back-to-back decode in order, and the binary client preamble is emitted
// exactly once.
func TestCodecSequencedFrames(t *testing.T) {
	buf := &bytes.Buffer{}
	cli := newClientCodec(CodecBinary, buf)
	reqs := []wireRequest{{Op: opPing}, {Op: opGather, HaveCached: true}, {Op: opBudget, Budget: 7}}
	for i := range reqs {
		if err := cli.WriteRequest(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()
	if raw[0] != binMagic || raw[1] != binVersion {
		t.Fatalf("stream does not open with preamble: % x", raw[:2])
	}
	if n := bytes.Count(raw, []byte{binMagic, binVersion}); n > 1 {
		// The preamble bytes could legitimately recur inside payloads;
		// this fixture has none, so any recurrence is a duplicate preamble.
		t.Fatalf("preamble appears %d times", n)
	}
	br := bufio.NewReader(bytes.NewReader(raw[2:]))
	srv := newBinaryCodec(br, &bytes.Buffer{})
	for i := range reqs {
		var got wireRequest
		if err := srv.ReadRequest(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !requestsEquivalent(reqs[i], got) {
			t.Fatalf("frame %d drifted: in %+v out %+v", i, reqs[i], got)
		}
	}
}

// TestBinaryDecodeRejectsMalformed feeds the binary decoder truncated,
// oversized, and corrupted frames: every one must return an error (never
// panic) and leave nothing decoded.
func TestBinaryDecodeRejectsMalformed(t *testing.T) {
	// A valid response frame to mutate.
	c, buf := codecPair(CodecBinary)
	resp := codecResponseFixtures()["traced"]
	if err := c.WriteResponse(&resp); err != nil {
		t.Fatal(err)
	}
	valid := append([]byte(nil), buf.Bytes()...)

	cases := map[string][]byte{
		"empty-frame":      {0, 0, 0, 0},
		"short-header":     {5, 0},
		"oversized-length": {0xff, 0xff, 0xff, 0xff, 1, 1},
		"truncated-body":   valid[:len(valid)-3],
		"bad-version":      append([]byte{2, 0, 0, 0}, 99, 0),
		"trailing-bytes":   append([]byte{10, 0, 0, 0, binVersion, respFlagOK}, make([]byte, 8)...),
		"forged-count": append([]byte{12, 0, 0, 0, binVersion, respFlagSummary},
			0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff), // claims 65535 levels in 0 bytes
		"digest-bad-version": digestFrame(func(w *binWriter) {
			w.u8(9)
			w.u8(0)
			digestScalars(w)
		}),
		"digest-unknown-flags": digestFrame(func(w *binWriter) {
			w.u8(digVersion)
			w.u8(0x80)
		}),
		"digest-empty-worst-rack": digestFrame(func(w *binWriter) {
			w.u8(digVersion)
			w.u8(digFlagWorst)
			digestScalars(w)
			w.str("")
		}),
		"digest-hist-overflow": digestFrame(func(w *binWriter) {
			w.u8(digVersion)
			w.u8(digFlagHist)
			digestScalars(w)
			w.u8(200) // claims 200 nonzero buckets, max is MergeHistBuckets
		}),
		"digest-hist-bad-index": digestFrame(func(w *binWriter) {
			w.u8(digVersion)
			w.u8(digFlagHist)
			digestScalars(w)
			w.u8(1)
			w.u8(50) // bucket index out of range
			w.u64(1)
			w.f64(0)
		}),
		"digest-forged-outliers": digestFrame(func(w *binWriter) {
			w.u8(digVersion)
			w.u8(digFlagOutliers)
			digestScalars(w)
			w.u8(255) // claims 255 outliers in 0 bytes
		}),
		"digest-level-bad-hist-byte": digestFrame(func(w *binWriter) {
			w.u8(digVersion)
			w.u8(digFlagLevels)
			digestScalars(w)
			w.u8(1) // one level row
			for i := 0; i < 5; i++ {
				w.u32(0)
			}
			w.u8(7) // hist-present byte must be 0 or 1
		}),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			bc := newBinaryCodec(bufio.NewReader(bytes.NewReader(data)), &bytes.Buffer{})
			var got wireResponse
			if err := bc.ReadResponse(&got); err == nil {
				t.Fatalf("malformed frame decoded: %+v", got)
			}
			if got.Summary != nil || got.Spans != nil || got.Digest != nil || got.OK {
				t.Fatalf("failed decode left state: %+v", got)
			}
		})
	}
}

// digestFrame wraps hand-built digest payload bytes in a well-formed
// response frame carrying only the digest flag, so decode failures are
// attributable to the digest section alone.
func digestFrame(payload func(w *binWriter)) []byte {
	var w binWriter
	w.u8(binVersion)
	w.u8(respFlagDigest)
	payload(&w)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(w.b)))
	return append(frame, w.b...)
}

// digestScalars writes the fixed digest header that precedes every
// optional section: rack count, seven watt fields, violating-rack count.
func digestScalars(w *binWriter) {
	w.u32(1)
	for i := 0; i < 7; i++ {
		w.f64(100)
	}
	w.u32(0)
}

// TestBinaryEncodeRejectsOversizedFields pins the encoder-side limits:
// strings beyond u16 length fail loudly instead of corrupting the frame.
func TestBinaryEncodeRejectsOversizedFields(t *testing.T) {
	c, _ := codecPair(CodecBinary)
	req := wireRequest{Op: opGather, Trace: &flightrec.TraceContext{TraceID: strings.Repeat("x", 1<<17)}}
	if err := c.WriteRequest(&req); err == nil {
		t.Fatal("oversized trace ID encoded without error")
	}
	resp := wireResponse{Error: strings.Repeat("e", 1<<17)}
	if err := c.WriteResponse(&resp); err == nil {
		t.Fatal("oversized error string encoded without error")
	}
}

// TestJSONWireBytesUnchanged pins the JSON codec's byte stream against the
// historical newline-delimited encoding: new protocol fields must stay
// invisible when unset so pre-codec peers interoperate.
func TestJSONWireBytesUnchanged(t *testing.T) {
	c, buf := codecPair(CodecJSON)
	if err := c.WriteRequest(&wireRequest{Op: opGather}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"op\":\"gather\"}\n" {
		t.Fatalf("gather request bytes drifted: %q", got)
	}
	buf.Reset()
	if err := c.WriteRequest(&wireRequest{Op: opBudget, Budget: 850}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"op\":\"budget\",\"budget\":850}\n" {
		t.Fatalf("budget request bytes drifted: %q", got)
	}
	buf.Reset()
	if err := c.WriteResponse(&wireResponse{OK: true}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"ok\":true}\n" {
		t.Fatalf("ok response bytes drifted: %q", got)
	}
}

// TestDeltaTracker pins the server-side squash rules: exact-match and
// in-deadband summaries squash only when the client advertises a cache,
// breaches and level-set changes force a full frame and rearm the
// tracker.
func TestDeltaTracker(t *testing.T) {
	mk := func(request power.Watts) *core.Summary {
		s := core.NewSummary()
		s.Constraint = 1000
		s.SetLevel(0, 200, 400, request)
		return &s
	}
	d := &deltaTracker{deadband: 5}

	// First gather: nothing sent yet, must be full even with a cache.
	resp := wireResponse{OK: true, Summary: mk(300)}
	if d.squash(&wireRequest{Op: opGather, HaveCached: true}, &resp) {
		t.Fatal("squashed before any full summary was sent")
	}
	// Within deadband + cache: squash.
	resp = wireResponse{OK: true, Summary: mk(304)}
	if !d.squash(&wireRequest{Op: opGather, HaveCached: true}, &resp) {
		t.Fatal("in-deadband gather not squashed")
	}
	if !resp.Unchanged || resp.Summary != nil {
		t.Fatalf("squash left %+v", resp)
	}
	// Within deadband but no client cache: full frame.
	resp = wireResponse{OK: true, Summary: mk(301)}
	if d.squash(&wireRequest{Op: opGather}, &resp) {
		t.Fatal("squashed for a client without a cache")
	}
	// Deadband breach (relative to last FULL summary, 301): full frame.
	resp = wireResponse{OK: true, Summary: mk(307)}
	if d.squash(&wireRequest{Op: opGather, HaveCached: true}, &resp) {
		t.Fatal("deadband breach squashed")
	}
	// The breach rearmed the tracker at 307.
	resp = wireResponse{OK: true, Summary: mk(309)}
	if !d.squash(&wireRequest{Op: opGather, HaveCached: true}, &resp) {
		t.Fatal("tracker did not rearm on the full frame")
	}
	// Level-set change: never squashed.
	changed := mk(309)
	changed.SetLevel(1, 1, 2, 3)
	resp = wireResponse{OK: true, Summary: changed}
	if d.squash(&wireRequest{Op: opGather, HaveCached: true}, &resp) {
		t.Fatal("level-set change squashed")
	}
	// Non-gather ops and failed responses pass through untouched.
	resp = wireResponse{OK: true}
	if d.squash(&wireRequest{Op: opPing}, &resp) {
		t.Fatal("ping squashed")
	}
	if (*deltaTracker)(nil).squash(&wireRequest{Op: opGather, HaveCached: true}, &wireResponse{OK: true, Summary: mk(309)}) {
		t.Fatal("nil tracker squashed")
	}
}
