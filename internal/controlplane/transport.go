package controlplane

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/telemetry"
)

// The wire protocol carries only metric summaries and budgets — a few
// hundred bytes per rack per control period — matching the paper's
// observation that worker communication is "on the order of milliseconds".
// Two codecs speak it (see codec.go): the historical newline-delimited
// JSON protocol, and a length-prefixed binary protocol that is
// allocation-free steady-state and supports delta-encoded gather
// responses. Servers detect the codec per connection from its first byte.

// request ops.
const (
	opGather = "gather"
	opBudget = "budget"
	opPing   = "ping"
)

type wireRequest struct {
	Op     string      `json:"op"`
	Budget power.Watts `json:"budget,omitempty"`
	// Trace carries the caller's per-period trace context so the rack's
	// spans nest under the room's period root. Absent when tracing is off.
	Trace *flightrec.TraceContext `json:"trace,omitempty"`
	// HaveCached marks a gather from a client that still holds the last
	// full summary this connection delivered, making it eligible for an
	// Unchanged response. Only the binary codec sets it, so the JSON byte
	// stream is unchanged.
	HaveCached bool `json:"have_cached,omitempty"`
}

type wireResponse struct {
	OK      bool          `json:"ok"`
	Error   string        `json:"error,omitempty"`
	Summary *core.Summary `json:"summary,omitempty"`
	// Unchanged marks a gather response whose summary stayed within the
	// server's deadband of the last full summary sent on this connection;
	// the client substitutes its cached copy. Binary codec only.
	Unchanged bool `json:"unchanged,omitempty"`
	// Spans and Explains ship the rack-side trace back to the caller;
	// populated only when the request carried a trace context.
	Spans    []flightrec.Span   `json:"spans,omitempty"`
	Explains []core.NodeExplain `json:"explains,omitempty"`
}

// RackServer exposes a RackWorker over TCP.
type RackServer struct {
	worker   *RackWorker
	listener net.Listener
	met      rpcMetrics
	accept   string      // codec restriction: CodecAuto admits both
	deadband power.Watts // delta deadband; < 0 disables delta responses

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeRack starts serving the worker on the given address (e.g.
// "127.0.0.1:0"). It returns once the listener is bound; connections are
// handled on background goroutines until Close.
func ServeRack(worker *RackWorker, addr string, opts ...Option) (*RackServer, error) {
	if worker == nil {
		return nil, errors.New("controlplane: nil worker")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("controlplane: listen: %w", err)
	}
	o := buildOptions(opts)
	accept := o.wireCodec
	if accept != CodecJSON && accept != CodecBinary {
		accept = CodecAuto
	}
	s := &RackServer{
		worker:   worker,
		listener: ln,
		met:      newRPCMetrics(o.reg, "server"),
		accept:   accept,
		deadband: o.deltaDeadband,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *RackServer) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and all connections.
func (s *RackServer) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *RackServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *RackServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.met.openConns.Inc()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.met.openConns.Dec()
	}()
	counted := countConn(conn, s.met.bytesIn, s.met.bytesOut)
	br := bufio.NewReader(counted)
	cdc, err := detectServerCodec(br, counted, s.accept)
	if err != nil {
		var pe *protocolError
		if errors.As(err, &pe) {
			s.met.protocolErrors.Inc()
		}
		return
	}
	encHist, decHist := s.met.codecHists(cdc.Name())
	// Delta squashing rides on the binary codec only: the JSON stream
	// stays byte-compatible with pre-codec servers.
	var delta *deltaTracker
	if cdc.Name() == CodecBinary && s.deadband >= 0 {
		delta = &deltaTracker{deadband: s.deadband}
	}
	var req wireRequest
	for {
		var t0 time.Time
		if s.met.enabled {
			t0 = time.Now()
		}
		if err := cdc.ReadRequest(&req); err != nil {
			return // connection closed or garbage
		}
		if s.met.enabled {
			decHist.ObserveSince(t0)
		}
		start := time.Now()
		resp := s.handle(req)
		if delta.squash(&req, &resp) {
			s.met.deltaHits.Inc()
		}
		s.met.observe(req.Op, start, !resp.OK)
		if s.met.enabled {
			t0 = time.Now()
		}
		if err := cdc.WriteResponse(&resp); err != nil {
			return
		}
		if s.met.enabled {
			encHist.ObserveSince(t0)
		}
	}
}

// countingConn feeds transport byte counters; a nil counter (telemetry
// off) makes Add a no-op, so the wrapper is always safe to install.
type countingConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func countConn(c net.Conn, in, out *telemetry.Counter) net.Conn {
	if in == nil && out == nil {
		return c
	}
	return &countingConn{Conn: c, in: in, out: out}
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(float64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(float64(n))
	return n, err
}

func (s *RackServer) handle(req wireRequest) wireResponse {
	ctx := context.Background()
	// Continue the caller's trace: the worker's spans adopt the remote
	// trace ID and parent, and travel back in the response.
	var pt *flightrec.PeriodTrace
	if req.Trace != nil {
		pt = flightrec.NewRemoteTrace(req.Trace)
		ctx = flightrec.ContextWithRemote(ctx, pt, req.Trace.ParentID)
	}
	resp := s.dispatch(ctx, req)
	if pt != nil {
		resp.Spans = pt.Spans()
		resp.Explains = pt.Explains()
	}
	return resp
}

func (s *RackServer) dispatch(ctx context.Context, req wireRequest) wireResponse {
	switch req.Op {
	case opPing:
		return wireResponse{OK: true}
	case opGather:
		summary, err := s.worker.Gather(ctx)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, Summary: &summary}
	case opBudget:
		if err := s.worker.ApplyBudget(ctx, req.Budget); err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true}
	default:
		return wireResponse{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// ErrClientClosed is returned by every TCPClient method after Close: a
// closed client never re-dials, so shutting one down is terminal.
var ErrClientClosed = errors.New("controlplane: rack client closed")

// serverError is an application-level failure reported by the rack server
// (as opposed to a transport failure). It is never retried: the server
// handled the request and said no.
type serverError struct{ msg string }

func (e *serverError) Error() string { return e.msg }

// protocolError is a malformed-but-delivered response: the bytes arrived
// but violate the protocol (for example OK with neither a summary nor a
// valid Unchanged marker). The stream can no longer be trusted, so the
// connection is reset and the attempt retried over a fresh one.
type protocolError struct{ msg string }

func (e *protocolError) Error() string { return "controlplane: protocol error: " + e.msg }

// TCPClient is a RackClient that talks to a RackServer. It maintains one
// connection, re-dialing on failure, retries transport failures a bounded
// number of times with doubling backoff, and serializes requests (the room
// worker issues one request at a time per rack).
//
// Two locks split request serialization from connection state: reqMu is
// held for the whole round trip (including dial, I/O, and retry backoff),
// while mu guards only the closed flag, the live connection, and the delta
// cache. Close takes just mu, so it closes the live connection immediately
// — the in-flight decode then fails fast with ErrClientClosed instead of
// waiting out the attempt timeout.
type TCPClient struct {
	addr      string
	timeout   time.Duration
	retries   int
	backoff   time.Duration
	codecName string
	met       rpcMetrics

	reqMu sync.Mutex // serializes round trips; never taken by Close

	mu         sync.Mutex // guards everything below
	closed     bool
	conn       net.Conn
	cdc        codec
	encHist    *telemetry.Histogram
	decHist    *telemetry.Histogram
	cached     core.Summary // last full summary decoded on the live conn
	haveCached bool
}

// DialRack creates a client for the rack server at addr. timeout bounds
// each request attempt; zero selects 2 s (comfortably inside the paper's
// 8 s control period). Retry behavior follows WithRPCRetry (default: 2
// retries starting at 25 ms backoff); the wire codec follows WithWireCodec
// (default: the CAPMAESTRO_WIRE_CODEC environment variable, then JSON).
func DialRack(addr string, timeout time.Duration, opts ...Option) *TCPClient {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	o := buildOptions(opts)
	return &TCPClient{
		addr:      addr,
		timeout:   timeout,
		retries:   o.rpcRetries,
		backoff:   o.rpcRetryBackoff,
		codecName: resolveClientCodec(o.wireCodec),
		met:       newRPCMetrics(o.reg, "client"),
	}
}

// Codec returns the wire codec this client dials with.
func (c *TCPClient) Codec() string { return c.codecName }

// Close tears down the connection and marks the client terminally closed:
// subsequent requests fail with ErrClientClosed instead of re-dialing, and
// an in-flight request fails fast as its read is unblocked. Closing an
// already-closed client is a no-op.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.dropConnLocked()
		return err
	}
	return nil
}

// dropConnLocked forgets the live connection (already closed or being
// closed) and invalidates the per-connection delta cache.
func (c *TCPClient) dropConnLocked() {
	if c.conn == nil {
		return
	}
	c.conn = nil
	c.cdc = nil
	c.haveCached = false
	c.met.openConns.Dec()
}

// connFor returns the live connection and codec, dialing outside the lock
// so Close never waits on a slow dial.
func (c *TCPClient) connFor() (net.Conn, codec, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, ErrClientClosed
	}
	if c.conn != nil {
		conn, cdc := c.conn, c.cdc
		c.mu.Unlock()
		return conn, cdc, nil
	}
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, nil, err
	}
	counted := countConn(conn, c.met.bytesIn, c.met.bytesOut)
	cdc := newClientCodec(c.codecName, counted)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return nil, nil, ErrClientClosed
	}
	// reqMu serializes dialers, so no connection can have appeared.
	c.conn, c.cdc = conn, cdc
	c.haveCached = false
	c.encHist, c.decHist = c.met.codecHists(cdc.Name())
	c.met.openConns.Inc()
	return conn, cdc, nil
}

// fault maps an I/O failure on conn to its terminal form: if the client
// was closed meanwhile the failure is reported as ErrClientClosed, else
// the connection is reset so the next attempt re-dials.
func (c *TCPClient) fault(conn net.Conn, err error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	if c.conn == conn {
		conn.Close()
		c.dropConnLocked()
	}
	return err
}

// protocolFault records a malformed-but-delivered response and resets the
// connection: a desynced stream must not poison subsequent requests.
func (c *TCPClient) protocolFault(conn net.Conn, msg string) error {
	c.met.protocolErrors.Inc()
	return c.fault(conn, error(&protocolError{msg: msg}))
}

func (c *TCPClient) roundTrip(ctx context.Context, req wireRequest) (wireResponse, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	start := time.Now()
	var resp wireResponse
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = c.attempt(ctx, req)
		if err == nil || attempt >= c.retries || !retryable(err) {
			break
		}
		if !sleepCtx(ctx, backoffDelay(c.backoff, attempt)) {
			break
		}
		c.met.retries.Inc()
		flightrec.SpanFrom(ctx).AddRetry()
	}
	c.met.observe(req.Op, start, err != nil)
	// A response that made it back carries the rack's side of the trace —
	// merge it even when the server reported an application-level error.
	if pt := flightrec.TraceFrom(ctx); pt != nil {
		pt.Import(resp.Spans)
		pt.ImportExplains(resp.Explains)
	}
	return resp, err
}

// attempt performs one round trip. All I/O happens outside mu, so Close
// can always reach the live connection and unblock it.
func (c *TCPClient) attempt(ctx context.Context, req wireRequest) (wireResponse, error) {
	if err := ctx.Err(); err != nil {
		return wireResponse{}, err
	}
	conn, cdc, err := c.connFor()
	if err != nil {
		return wireResponse{}, err
	}
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	if req.Op == opGather && cdc.Name() == CodecBinary {
		c.mu.Lock()
		req.HaveCached = c.haveCached && c.conn == conn
		c.mu.Unlock()
	}
	var t0 time.Time
	if c.met.enabled {
		t0 = time.Now()
	}
	if err := cdc.WriteRequest(&req); err != nil {
		return wireResponse{}, c.fault(conn, err)
	}
	if c.met.enabled {
		c.encHist.ObserveSince(t0)
		t0 = time.Now()
	}
	var resp wireResponse
	if err := cdc.ReadResponse(&resp); err != nil {
		return wireResponse{}, c.fault(conn, err)
	}
	if c.met.enabled {
		c.decHist.ObserveSince(t0)
	}
	if resp.OK && req.Op == opGather {
		if err := c.finishGather(conn, &resp); err != nil {
			return wireResponse{}, err
		}
	}
	if !resp.OK {
		return resp, &serverError{msg: resp.Error}
	}
	return resp, nil
}

// finishGather validates a successful gather response and maintains the
// delta cache: full summaries are cached for later Unchanged
// substitution, Unchanged responses are resolved from the cache, and
// malformed combinations (OK with neither, or both) are protocol faults
// that reset the connection.
func (c *TCPClient) finishGather(conn net.Conn, resp *wireResponse) error {
	c.mu.Lock()
	switch {
	case resp.Unchanged && resp.Summary == nil:
		if c.haveCached && c.conn == conn {
			resp.Summary = &c.cached
			c.met.deltaHits.Inc()
			c.mu.Unlock()
			return nil
		}
		c.mu.Unlock()
		return c.protocolFault(conn, "unchanged gather but no cached summary")
	case !resp.Unchanged && resp.Summary != nil:
		// Cache the full summary for this connection. The cached value is
		// replaced wholesale (never mutated in place), so earlier copies
		// handed to the room worker's proxies stay valid.
		if c.conn == conn {
			c.cached = *resp.Summary
			c.haveCached = true
		}
		c.mu.Unlock()
		return nil
	default:
		c.mu.Unlock()
		return c.protocolFault(conn, "gather response with OK but no usable summary")
	}
}

// retryable reports whether a failed attempt is worth repeating: transport
// failures are (the next attempt re-dials, and protocol faults resync the
// delta stream on the way), closed clients, dead contexts, and
// application-level rejections are not.
func retryable(err error) bool {
	if errors.Is(err, ErrClientClosed) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *serverError
	return !errors.As(err, &se)
}

// backoffDelay is the pause before retry attempt+1: base doubling per
// attempt, capped at one second.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	d := base << attempt
	if d > time.Second || d <= 0 {
		d = time.Second
	}
	return d
}

// sleepCtx sleeps for d unless the context ends first; it reports whether
// the full duration elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Gather implements RackClient.
func (c *TCPClient) Gather(ctx context.Context) (core.Summary, error) {
	resp, err := c.roundTrip(ctx, wireRequest{Op: opGather, Trace: flightrec.WireContext(ctx)})
	if err != nil {
		return core.Summary{}, err
	}
	if resp.Summary == nil {
		// finishGather guarantees a summary on success; this guards the
		// invariant if it is ever violated.
		return core.Summary{}, &protocolError{msg: "gather response missing summary"}
	}
	return *resp.Summary, nil
}

// ApplyBudget implements RackClient.
func (c *TCPClient) ApplyBudget(ctx context.Context, b power.Watts) error {
	_, err := c.roundTrip(ctx, wireRequest{Op: opBudget, Budget: b, Trace: flightrec.WireContext(ctx)})
	return err
}

// Ping checks liveness of the rack server.
func (c *TCPClient) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, wireRequest{Op: opPing, Trace: flightrec.WireContext(ctx)})
	return err
}
