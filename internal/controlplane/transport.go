package controlplane

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/telemetry"
)

// The wire protocol carries only metric summaries and budgets — a few
// hundred bytes per rack per control period — matching the paper's
// observation that worker communication is "on the order of milliseconds".
// Two codecs speak it (see codec.go): the historical newline-delimited
// JSON protocol, and a length-prefixed binary protocol that is
// allocation-free steady-state and supports delta-encoded gather
// responses. Servers detect the codec per connection from its first byte.

// request ops.
const (
	opGather      = "gather"
	opBudget      = "budget"
	opPing        = "ping"
	opBatchGather = "batch-gather"
	opBatchBudget = "batch-budget"
)

// BatchBudget names one rack's budget inside a batched budget push.
type BatchBudget struct {
	Rack   string      `json:"rack"`
	Budget power.Watts `json:"budget"`
}

// GatherResult is one rack's outcome inside a batched gather.
type GatherResult struct {
	Summary core.Summary
	// Digest is the rack's fleet observability digest, present when the
	// client requested digests and the server's worker produces them.
	Digest *fleetobs.StatDigest
	Err    error
}

type wireRequest struct {
	Op     string      `json:"op"`
	Budget power.Watts `json:"budget,omitempty"`
	// Rack routes a single op to one rack on a multi-rack server (see
	// ServeRacks). Empty selects the server's default worker, which keeps
	// the single-worker byte stream identical to the historical protocol.
	Rack string `json:"rack,omitempty"`
	// BatchRacks (op batch-gather) and BatchBudgets (op batch-budget)
	// multiplex one round trip over many racks of a multi-rack server.
	// Response entries come back in request order.
	BatchRacks   []string      `json:"batch_racks,omitempty"`
	BatchBudgets []BatchBudget `json:"batch_budgets,omitempty"`
	// Trace carries the caller's per-period trace context so the rack's
	// spans nest under the room's period root. Absent when tracing is off.
	Trace *flightrec.TraceContext `json:"trace,omitempty"`
	// HaveCached marks a gather from a client that still holds the full
	// summaries this connection delivered, making racks eligible for an
	// Unchanged response. Only the binary codec sets it, so the JSON byte
	// stream is unchanged.
	HaveCached bool `json:"have_cached,omitempty"`
	// WantDigest asks gathers to piggyback a fleet observability digest
	// on the response. Only digest-enabled clients set it, so both codecs'
	// byte streams are unchanged for everyone else.
	WantDigest bool `json:"want_digest,omitempty"`
}

// wireBatchEntry is one rack's slot in a batched response, in request
// order.
type wireBatchEntry struct {
	Rack    string        `json:"rack"`
	OK      bool          `json:"ok"`
	Error   string        `json:"error,omitempty"`
	Summary *core.Summary `json:"summary,omitempty"`
	// Digest piggybacks the rack's fleet digest on a want-digest gather.
	Digest *fleetobs.StatDigest `json:"digest,omitempty"`
	// Unchanged marks a batched gather entry squashed by the server's
	// delta tracker; the client substitutes its cached copy for the rack.
	Unchanged bool `json:"unchanged,omitempty"`
}

type wireResponse struct {
	OK      bool          `json:"ok"`
	Error   string        `json:"error,omitempty"`
	Summary *core.Summary `json:"summary,omitempty"`
	// Digest piggybacks the responding worker's fleet digest on a
	// want-digest gather, adding zero extra RPCs to the period.
	Digest *fleetobs.StatDigest `json:"digest,omitempty"`
	// Unchanged marks a gather response whose summary stayed within the
	// server's deadband of the last full summary sent on this connection;
	// the client substitutes its cached copy. Binary codec only.
	Unchanged bool `json:"unchanged,omitempty"`
	// Batch carries per-rack outcomes of a batch op, in request order.
	Batch []wireBatchEntry `json:"batch,omitempty"`
	// Spans and Explains ship the rack-side trace back to the caller;
	// populated only when the request carried a trace context.
	Spans    []flightrec.Span   `json:"spans,omitempty"`
	Explains []core.NodeExplain `json:"explains,omitempty"`
}

// RackServer exposes one or more rack-facing workers over TCP. A server
// built with ServeRack hosts a single RackWorker and speaks the
// historical single-rack protocol; ServeRacks hosts many workers behind
// one listener, routed by the request's rack field and reachable in bulk
// through the batch ops.
type RackServer struct {
	workers  map[string]RackClient
	def      RackClient // target of un-routed single ops; nil if ambiguous
	listener net.Listener
	met      rpcMetrics
	accept   string      // codec restriction: CodecAuto admits both
	deadband power.Watts // delta deadband; < 0 disables delta responses

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeRack starts serving the worker on the given address (e.g.
// "127.0.0.1:0"). It returns once the listener is bound; connections are
// handled on background goroutines until Close.
func ServeRack(worker *RackWorker, addr string, opts ...Option) (*RackServer, error) {
	if worker == nil {
		return nil, errors.New("controlplane: nil worker")
	}
	return serveWorkers(map[string]RackClient{worker.ID(): worker}, worker, addr, opts)
}

// ServeRacks starts one TCP server hosting every worker in the map, keyed
// by rack ID. Anything satisfying RackClient can be hosted — RackWorkers
// and Aggregators alike — which is how a hierarchy tier shards many
// workers behind few listeners. Single ops route via the request's rack
// field (an empty rack targets the sole worker, or fails when several are
// hosted); the batch ops serve many racks in one round trip.
func ServeRacks(workers map[string]RackClient, addr string, opts ...Option) (*RackServer, error) {
	if len(workers) == 0 {
		return nil, errors.New("controlplane: no workers to serve")
	}
	var def RackClient
	if len(workers) == 1 {
		for _, w := range workers {
			def = w
		}
	}
	owned := make(map[string]RackClient, len(workers))
	for id, w := range workers {
		if w == nil {
			return nil, fmt.Errorf("controlplane: nil worker for rack %q", id)
		}
		owned[id] = w
	}
	return serveWorkers(owned, def, addr, opts)
}

func serveWorkers(workers map[string]RackClient, def RackClient, addr string, opts []Option) (*RackServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("controlplane: listen: %w", err)
	}
	o := buildOptions(opts)
	accept := o.wireCodec
	if accept != CodecJSON && accept != CodecBinary {
		accept = CodecAuto
	}
	s := &RackServer{
		workers:  workers,
		def:      def,
		listener: ln,
		met:      newRPCMetrics(o.reg, "server"),
		accept:   accept,
		deadband: o.deltaDeadband,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *RackServer) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and all connections.
func (s *RackServer) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *RackServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *RackServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.met.openConns.Inc()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.met.openConns.Dec()
	}()
	counted := countConn(conn, s.met.bytesIn, s.met.bytesOut)
	br := bufio.NewReader(counted)
	cdc, err := detectServerCodec(br, counted, s.accept)
	if err != nil {
		var pe *protocolError
		if errors.As(err, &pe) {
			s.met.protocolErrors.Inc()
		}
		return
	}
	encHist, decHist := s.met.codecHists(cdc.Name())
	if bc, ok := cdc.(*binaryCodec); ok {
		bc.digBytes = s.met.digestBytes
	}
	// Delta squashing rides on the binary codec only: the JSON stream
	// stays byte-compatible with pre-codec servers.
	var delta *deltaTracker
	if cdc.Name() == CodecBinary && s.deadband >= 0 {
		delta = &deltaTracker{deadband: s.deadband}
	}
	var req wireRequest
	var batchScratch []wireBatchEntry
	for {
		var t0 time.Time
		if s.met.enabled {
			t0 = time.Now()
		}
		if err := cdc.ReadRequest(&req); err != nil {
			return // connection closed or garbage
		}
		if s.met.enabled {
			decHist.ObserveSince(t0)
		}
		start := time.Now()
		resp := s.handle(req, batchScratch[:0])
		if cap(resp.Batch) > cap(batchScratch) {
			batchScratch = resp.Batch[:0]
		}
		if delta.squash(&req, &resp) {
			s.met.deltaHits.Inc()
		}
		if n := delta.squashBatch(&req, &resp); n > 0 {
			s.met.deltaHits.Add(float64(n))
		}
		s.met.observe(req.Op, start, !resp.OK)
		if s.met.enabled {
			t0 = time.Now()
		}
		if err := cdc.WriteResponse(&resp); err != nil {
			return
		}
		if s.met.enabled {
			encHist.ObserveSince(t0)
		}
	}
}

// countingConn feeds transport byte counters; a nil counter (telemetry
// off) makes Add a no-op, so the wrapper is always safe to install.
type countingConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func countConn(c net.Conn, in, out *telemetry.Counter) net.Conn {
	if in == nil && out == nil {
		return c
	}
	return &countingConn{Conn: c, in: in, out: out}
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(float64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(float64(n))
	return n, err
}

func (s *RackServer) handle(req wireRequest, batchScratch []wireBatchEntry) wireResponse {
	ctx := context.Background()
	// Continue the caller's trace: the worker's spans adopt the remote
	// trace ID and parent, and travel back in the response.
	var pt *flightrec.PeriodTrace
	if req.Trace != nil {
		pt = flightrec.NewRemoteTrace(req.Trace)
		ctx = flightrec.ContextWithRemote(ctx, pt, req.Trace.ParentID)
	}
	resp := s.dispatch(ctx, req, batchScratch)
	if pt != nil {
		resp.Spans = pt.Spans()
		resp.Explains = pt.Explains()
	}
	return resp
}

// route resolves the worker a single op targets. An empty rack selects
// the default worker — only defined on single-worker servers, preserving
// the historical protocol.
func (s *RackServer) route(rack string) (RackClient, error) {
	if rack == "" {
		if s.def == nil {
			return nil, fmt.Errorf("server hosts %d racks; request names none", len(s.workers))
		}
		return s.def, nil
	}
	w, ok := s.workers[rack]
	if !ok {
		return nil, fmt.Errorf("unknown rack %q", rack)
	}
	return w, nil
}

func (s *RackServer) dispatch(ctx context.Context, req wireRequest, batchScratch []wireBatchEntry) wireResponse {
	switch req.Op {
	case opPing:
		return wireResponse{OK: true}
	case opGather:
		w, err := s.route(req.Rack)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		summary, dig, err := gatherMaybeDigest(ctx, w, req.WantDigest)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, Summary: &summary, Digest: dig}
	case opBudget:
		w, err := s.route(req.Rack)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		if err := w.ApplyBudget(ctx, req.Budget); err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true}
	case opBatchGather:
		if len(req.BatchRacks) == 0 {
			return wireResponse{Error: "batch-gather with no racks"}
		}
		s.met.noteBatch(len(req.BatchRacks))
		entries := batchScratch
		for _, rack := range req.BatchRacks {
			e := wireBatchEntry{Rack: rack}
			w, ok := s.workers[rack]
			if !ok {
				e.Error = fmt.Sprintf("unknown rack %q", rack)
			} else if summary, dig, err := gatherMaybeDigest(ctx, w, req.WantDigest); err != nil {
				e.Error = err.Error()
			} else {
				e.OK = true
				s := summary
				e.Summary = &s
				e.Digest = dig
			}
			entries = append(entries, e)
		}
		return wireResponse{OK: true, Batch: entries}
	case opBatchBudget:
		if len(req.BatchBudgets) == 0 {
			return wireResponse{Error: "batch-budget with no racks"}
		}
		s.met.noteBatch(len(req.BatchBudgets))
		entries := batchScratch
		for _, bb := range req.BatchBudgets {
			e := wireBatchEntry{Rack: bb.Rack}
			w, ok := s.workers[bb.Rack]
			if !ok {
				e.Error = fmt.Sprintf("unknown rack %q", bb.Rack)
			} else if err := w.ApplyBudget(ctx, bb.Budget); err != nil {
				e.Error = err.Error()
			} else {
				e.OK = true
			}
			entries = append(entries, e)
		}
		return wireResponse{OK: true, Batch: entries}
	default:
		return wireResponse{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// ErrClientClosed is returned by every TCPClient method after Close: a
// closed client never re-dials, so shutting one down is terminal.
var ErrClientClosed = errors.New("controlplane: rack client closed")

// serverError is an application-level failure reported by the rack server
// (as opposed to a transport failure). It is never retried: the server
// handled the request and said no.
type serverError struct{ msg string }

func (e *serverError) Error() string { return e.msg }

// protocolError is a malformed-but-delivered response: the bytes arrived
// but violate the protocol (for example OK with neither a summary nor a
// valid Unchanged marker). The stream can no longer be trusted, so the
// connection is reset and the attempt retried over a fresh one.
type protocolError struct{ msg string }

func (e *protocolError) Error() string { return "controlplane: protocol error: " + e.msg }

// TCPClient is a RackClient that talks to a RackServer. It maintains one
// connection, re-dialing on failure, retries transport failures a bounded
// number of times with doubling backoff, and serializes requests (the room
// worker issues one request at a time per rack).
//
// Two locks split request serialization from connection state: reqMu is
// held for the whole round trip (including dial, I/O, and retry backoff),
// while mu guards only the closed flag, the live connection, and the delta
// cache. Close takes just mu, so it closes the live connection immediately
// — the in-flight decode then fails fast with ErrClientClosed instead of
// waiting out the attempt timeout.
type TCPClient struct {
	addr      string
	timeout   time.Duration
	retries   int
	backoff   time.Duration
	codecName string
	// wantDigest asks every gather on this client to piggyback a fleet
	// digest. Off by default so existing deployments' byte streams (and
	// pinned wire-shape tests) are untouched; WithDigests(true) enables it.
	wantDigest bool
	met        rpcMetrics

	reqMu sync.Mutex // serializes round trips; never taken by Close

	// pushMu guards pushC, a lazily created client whose connection
	// carries only budget pushes. Keeping pushes off the gather stream
	// means a pipelined period's push wave never head-of-line-blocks the
	// next gather wave on this strict request-response protocol.
	pushMu sync.Mutex
	pushC  *TCPClient

	mu      sync.Mutex // guards everything below
	closed  bool
	conn    net.Conn
	cdc     codec
	encHist *telemetry.Histogram
	decHist *telemetry.Histogram
	// cached holds the last full summary decoded on the live connection
	// per rack ("" for un-routed gathers). Entries are replaced wholesale
	// (never mutated), so summaries handed out stay valid after eviction.
	cached map[string]*core.Summary
	// cachedDig mirrors cached for fleet digests: the server only
	// squashes a digest-bearing gather when the digest also sat within
	// the deadband, so the cached copy is a faithful substitute.
	cachedDig map[string]*fleetobs.StatDigest
}

// DialRack creates a client for the rack server at addr. timeout bounds
// each request attempt; zero selects 2 s (comfortably inside the paper's
// 8 s control period). Retry behavior follows WithRPCRetry (default: 2
// retries starting at 25 ms backoff); the wire codec follows WithWireCodec
// (default: the CAPMAESTRO_WIRE_CODEC environment variable, then JSON).
func DialRack(addr string, timeout time.Duration, opts ...Option) *TCPClient {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	o := buildOptions(opts)
	return &TCPClient{
		addr:       addr,
		timeout:    timeout,
		retries:    o.rpcRetries,
		backoff:    o.rpcRetryBackoff,
		codecName:  resolveClientCodec(o.wireCodec),
		wantDigest: o.digests != nil && *o.digests,
		met:        newRPCMetrics(o.reg, "client"),
	}
}

// Codec returns the wire codec this client dials with.
func (c *TCPClient) Codec() string { return c.codecName }

// Close tears down the connection and marks the client terminally closed:
// subsequent requests fail with ErrClientClosed instead of re-dialing, and
// an in-flight request fails fast as its read is unblocked. Closing an
// already-closed client is a no-op.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	var err error
	if !c.closed {
		c.closed = true
		if c.conn != nil {
			err = c.conn.Close()
			c.dropConnLocked()
		}
	}
	c.mu.Unlock()

	c.pushMu.Lock()
	defer c.pushMu.Unlock()
	if c.pushC != nil {
		c.pushC.Close()
	}
	return err
}

// pushChannel returns the dedicated budget-push client, creating it on
// first use. It shares this client's address, options, and metrics but
// dials its own connection; the server is stateless per connection for
// budget ops, so pushes and gathers interleave freely across the pair.
func (c *TCPClient) pushChannel() (*TCPClient, error) {
	c.pushMu.Lock()
	defer c.pushMu.Unlock()
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClientClosed
	}
	if c.pushC == nil {
		c.pushC = &TCPClient{
			addr: c.addr, timeout: c.timeout, retries: c.retries,
			backoff: c.backoff, codecName: c.codecName,
			wantDigest: c.wantDigest, met: c.met,
		}
	}
	return c.pushC, nil
}

// dropConnLocked forgets the live connection (already closed or being
// closed) and invalidates the per-connection delta cache.
func (c *TCPClient) dropConnLocked() {
	if c.conn == nil {
		return
	}
	c.conn = nil
	c.cdc = nil
	c.cached = nil
	c.cachedDig = nil
	c.met.openConns.Dec()
}

// connFor returns the live connection and codec, dialing outside the lock
// so Close never waits on a slow dial.
func (c *TCPClient) connFor() (net.Conn, codec, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, ErrClientClosed
	}
	if c.conn != nil {
		conn, cdc := c.conn, c.cdc
		c.mu.Unlock()
		return conn, cdc, nil
	}
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, nil, err
	}
	counted := countConn(conn, c.met.bytesIn, c.met.bytesOut)
	cdc := newClientCodec(c.codecName, counted)
	if bc, ok := cdc.(*binaryCodec); ok {
		bc.digBytes = c.met.digestBytes
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return nil, nil, ErrClientClosed
	}
	// reqMu serializes dialers, so no connection can have appeared.
	c.conn, c.cdc = conn, cdc
	c.cached = nil
	c.cachedDig = nil
	c.encHist, c.decHist = c.met.codecHists(cdc.Name())
	c.met.openConns.Inc()
	return conn, cdc, nil
}

// fault maps an I/O failure on conn to its terminal form: if the client
// was closed meanwhile the failure is reported as ErrClientClosed, else
// the connection is reset so the next attempt re-dials.
func (c *TCPClient) fault(conn net.Conn, err error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	if c.conn == conn {
		conn.Close()
		c.dropConnLocked()
	}
	return err
}

// protocolFault records a malformed-but-delivered response and resets the
// connection: a desynced stream must not poison subsequent requests.
func (c *TCPClient) protocolFault(conn net.Conn, msg string) error {
	c.met.protocolErrors.Inc()
	return c.fault(conn, error(&protocolError{msg: msg}))
}

func (c *TCPClient) roundTrip(ctx context.Context, req wireRequest) (wireResponse, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	start := time.Now()
	var resp wireResponse
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = c.attempt(ctx, req)
		if err == nil || attempt >= c.retries || !retryable(err) {
			break
		}
		if !sleepCtx(ctx, backoffDelay(c.backoff, attempt)) {
			break
		}
		c.met.retries.Inc()
		flightrec.SpanFrom(ctx).AddRetry()
	}
	c.met.observe(req.Op, start, err != nil)
	// A response that made it back carries the rack's side of the trace —
	// merge it even when the server reported an application-level error.
	if pt := flightrec.TraceFrom(ctx); pt != nil {
		pt.Import(resp.Spans)
		pt.ImportExplains(resp.Explains)
	}
	return resp, err
}

// attempt performs one round trip. All I/O happens outside mu, so Close
// can always reach the live connection and unblock it.
func (c *TCPClient) attempt(ctx context.Context, req wireRequest) (wireResponse, error) {
	if err := ctx.Err(); err != nil {
		return wireResponse{}, err
	}
	conn, cdc, err := c.connFor()
	if err != nil {
		return wireResponse{}, err
	}
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	if (req.Op == opGather || req.Op == opBatchGather) && cdc.Name() == CodecBinary {
		c.mu.Lock()
		req.HaveCached = len(c.cached) > 0 && c.conn == conn
		c.mu.Unlock()
	}
	var t0 time.Time
	if c.met.enabled {
		t0 = time.Now()
	}
	if err := cdc.WriteRequest(&req); err != nil {
		return wireResponse{}, c.fault(conn, err)
	}
	if c.met.enabled {
		c.encHist.ObserveSince(t0)
		t0 = time.Now()
	}
	var resp wireResponse
	if err := cdc.ReadResponse(&resp); err != nil {
		return wireResponse{}, c.fault(conn, err)
	}
	if c.met.enabled {
		c.decHist.ObserveSince(t0)
	}
	if resp.OK {
		switch req.Op {
		case opGather:
			if err := c.finishGather(conn, req.Rack, &resp); err != nil {
				return wireResponse{}, err
			}
		case opBatchGather:
			if err := c.finishBatchGather(conn, req.BatchRacks, &resp); err != nil {
				return wireResponse{}, err
			}
		case opBatchBudget:
			if err := c.checkBatchShape(conn, len(req.BatchBudgets), &resp); err != nil {
				return wireResponse{}, err
			}
			for i := range resp.Batch {
				if resp.Batch[i].Rack != req.BatchBudgets[i].Rack {
					return wireResponse{}, c.protocolFault(conn, "batch response entry out of order")
				}
			}
		}
	}
	if !resp.OK {
		return resp, &serverError{msg: resp.Error}
	}
	return resp, nil
}

// finishGather validates a successful gather response and maintains the
// delta cache: full summaries are cached for later Unchanged
// substitution, Unchanged responses are resolved from the cache, and
// malformed combinations (OK with neither, or both) are protocol faults
// that reset the connection.
func (c *TCPClient) finishGather(conn net.Conn, rack string, resp *wireResponse) error {
	c.mu.Lock()
	switch {
	case resp.Unchanged && resp.Summary == nil:
		if s := c.cached[rack]; s != nil && c.conn == conn {
			resp.Summary = s
			resp.Digest = c.cachedDig[rack]
			c.met.deltaHits.Inc()
			c.mu.Unlock()
			return nil
		}
		c.mu.Unlock()
		return c.protocolFault(conn, "unchanged gather but no cached summary")
	case !resp.Unchanged && resp.Summary != nil:
		// Cache the full summary for this connection. Cache entries are
		// replaced wholesale (never mutated in place), so earlier copies
		// handed to the room worker's proxies stay valid.
		c.cacheLocked(conn, rack, resp.Summary, resp.Digest)
		c.mu.Unlock()
		return nil
	default:
		c.mu.Unlock()
		return c.protocolFault(conn, "gather response with OK but no usable summary")
	}
}

// cacheLocked stores a freshly decoded full summary (and its digest, when
// one rode along) in the live connection's delta cache.
func (c *TCPClient) cacheLocked(conn net.Conn, rack string, s *core.Summary, dig *fleetobs.StatDigest) {
	if c.conn != conn {
		return
	}
	if c.cached == nil {
		c.cached = make(map[string]*core.Summary)
	}
	c.cached[rack] = s
	if dig != nil {
		if c.cachedDig == nil {
			c.cachedDig = make(map[string]*fleetobs.StatDigest)
		}
		c.cachedDig[rack] = dig
	} else {
		delete(c.cachedDig, rack)
	}
}

// checkBatchShape validates that a batch response covers exactly the
// requested racks; anything else is a framing-level lie and resets the
// connection.
func (c *TCPClient) checkBatchShape(conn net.Conn, want int, resp *wireResponse) error {
	if len(resp.Batch) != want {
		return c.protocolFault(conn, fmt.Sprintf("batch response has %d entries, want %d", len(resp.Batch), want))
	}
	return nil
}

// finishBatchGather validates a batched gather response entry-by-entry
// and maintains the per-rack delta cache, mirroring finishGather.
func (c *TCPClient) finishBatchGather(conn net.Conn, racks []string, resp *wireResponse) error {
	if err := c.checkBatchShape(conn, len(racks), resp); err != nil {
		return err
	}
	c.mu.Lock()
	for i := range resp.Batch {
		e := &resp.Batch[i]
		if e.Rack != racks[i] {
			c.mu.Unlock()
			return c.protocolFault(conn, "batch response entry out of order")
		}
		if !e.OK {
			continue
		}
		switch {
		case e.Unchanged && e.Summary == nil:
			if s := c.cached[e.Rack]; s != nil && c.conn == conn {
				e.Summary = s
				e.Digest = c.cachedDig[e.Rack]
				c.met.deltaHits.Inc()
				continue
			}
			c.mu.Unlock()
			return c.protocolFault(conn, "unchanged batch gather but no cached summary")
		case !e.Unchanged && e.Summary != nil:
			c.cacheLocked(conn, e.Rack, e.Summary, e.Digest)
		default:
			c.mu.Unlock()
			return c.protocolFault(conn, "batch gather entry with OK but no usable summary")
		}
	}
	c.mu.Unlock()
	return nil
}

// retryable reports whether a failed attempt is worth repeating: transport
// failures are (the next attempt re-dials, and protocol faults resync the
// delta stream on the way), closed clients, dead contexts, and
// application-level rejections are not.
func retryable(err error) bool {
	if errors.Is(err, ErrClientClosed) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *serverError
	return !errors.As(err, &se)
}

// backoffDelay is the pause before retry attempt+1: base doubling per
// attempt, capped at one second.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	d := base << attempt
	if d > time.Second || d <= 0 {
		d = time.Second
	}
	return d
}

// sleepCtx sleeps for d unless the context ends first; it reports whether
// the full duration elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Gather implements RackClient.
func (c *TCPClient) Gather(ctx context.Context) (core.Summary, error) {
	s, _, err := c.GatherDigest(ctx)
	return s, err
}

// GatherDigest gathers the rack's summary plus, when this client was
// dialed with WithDigests(true) and the remote worker produces them, its
// fleet observability digest — piggybacked on the same round trip, never
// an extra RPC. The digest is nil when digests are off or unsupported
// remotely.
func (c *TCPClient) GatherDigest(ctx context.Context) (core.Summary, *fleetobs.StatDigest, error) {
	resp, err := c.roundTrip(ctx, wireRequest{Op: opGather, WantDigest: c.wantDigest, Trace: flightrec.WireContext(ctx)})
	if err != nil {
		return core.Summary{}, nil, err
	}
	if resp.Summary == nil {
		// finishGather guarantees a summary on success; this guards the
		// invariant if it is ever violated.
		return core.Summary{}, nil, &protocolError{msg: "gather response missing summary"}
	}
	return *resp.Summary, resp.Digest, nil
}

// ApplyBudget implements RackClient. Budget pushes ride the dedicated
// push channel (see pushChannel).
func (c *TCPClient) ApplyBudget(ctx context.Context, b power.Watts) error {
	pc, err := c.pushChannel()
	if err != nil {
		return err
	}
	_, err = pc.roundTrip(ctx, wireRequest{Op: opBudget, Budget: b, Trace: flightrec.WireContext(ctx)})
	return err
}

// Ping checks liveness of the rack server.
func (c *TCPClient) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, wireRequest{Op: opPing, Trace: flightrec.WireContext(ctx)})
	return err
}

// GatherBatch collects summaries for many racks of a multi-rack server in
// one round trip, writing per-rack outcomes into out (len(out) must equal
// len(racks)). The returned error covers transport-level failure of the
// whole batch; per-rack application errors land in out[i].Err.
func (c *TCPClient) GatherBatch(ctx context.Context, racks []string, out []GatherResult) error {
	if len(out) != len(racks) {
		return fmt.Errorf("controlplane: batch gather wants %d result slots, got %d", len(racks), len(out))
	}
	if len(racks) == 0 {
		return nil
	}
	c.met.noteBatch(len(racks))
	resp, err := c.roundTrip(ctx, wireRequest{Op: opBatchGather, BatchRacks: racks, WantDigest: c.wantDigest, Trace: flightrec.WireContext(ctx)})
	if err != nil {
		return err
	}
	// finishBatchGather validated shape, order, and per-entry summaries.
	for i := range resp.Batch {
		e := &resp.Batch[i]
		if !e.OK {
			out[i] = GatherResult{Err: &serverError{msg: e.Error}}
			continue
		}
		out[i] = GatherResult{Summary: *e.Summary, Digest: e.Digest}
	}
	return nil
}

// ApplyBudgetBatch pushes many racks' budgets to a multi-rack server in
// one round trip, writing per-rack outcomes into out (len(out) must equal
// len(budgets)). The returned error covers transport-level failure of the
// whole batch.
func (c *TCPClient) ApplyBudgetBatch(ctx context.Context, budgets []BatchBudget, out []error) error {
	if len(out) != len(budgets) {
		return fmt.Errorf("controlplane: batch budget wants %d result slots, got %d", len(budgets), len(out))
	}
	if len(budgets) == 0 {
		return nil
	}
	c.met.noteBatch(len(budgets))
	pc, err := c.pushChannel()
	if err != nil {
		return err
	}
	resp, err := pc.roundTrip(ctx, wireRequest{Op: opBatchBudget, BatchBudgets: budgets, Trace: flightrec.WireContext(ctx)})
	if err != nil {
		return err
	}
	for i := range resp.Batch {
		e := &resp.Batch[i]
		if !e.OK {
			out[i] = &serverError{msg: e.Error}
		} else {
			out[i] = nil
		}
	}
	return nil
}

// RackHandle is a RackClient view of one rack hosted on a multi-rack
// server, sharing its TCPClient's connection. Handles from the same
// client advertise themselves to the fan-out engine, which coalesces
// their gathers and pushes into batch frames — one RPC per server instead
// of one per rack.
type RackHandle struct {
	c    *TCPClient
	rack string
}

// Rack returns a RackClient view of one rack hosted on the multi-rack
// server this client is connected to.
func (c *TCPClient) Rack(id string) *RackHandle { return &RackHandle{c: c, rack: id} }

// Gather implements RackClient with a routed single-rack gather.
func (h *RackHandle) Gather(ctx context.Context) (core.Summary, error) {
	s, _, err := h.GatherDigest(ctx)
	return s, err
}

// GatherDigest mirrors TCPClient.GatherDigest for one rack of a
// multi-rack server.
func (h *RackHandle) GatherDigest(ctx context.Context) (core.Summary, *fleetobs.StatDigest, error) {
	resp, err := h.c.roundTrip(ctx, wireRequest{Op: opGather, Rack: h.rack, WantDigest: h.c.wantDigest, Trace: flightrec.WireContext(ctx)})
	if err != nil {
		return core.Summary{}, nil, err
	}
	if resp.Summary == nil {
		return core.Summary{}, nil, &protocolError{msg: "gather response missing summary"}
	}
	return *resp.Summary, resp.Digest, nil
}

// ApplyBudget implements RackClient with a routed single-rack push on the
// dedicated push channel.
func (h *RackHandle) ApplyBudget(ctx context.Context, b power.Watts) error {
	pc, err := h.c.pushChannel()
	if err != nil {
		return err
	}
	_, err = pc.roundTrip(ctx, wireRequest{Op: opBudget, Budget: b, Rack: h.rack, Trace: flightrec.WireContext(ctx)})
	return err
}

// batchTarget implements batchEndpoint.
func (h *RackHandle) batchTarget() (batcher, string, string) { return h.c, h.rack, h.c.addr }
