package controlplane

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/telemetry"
)

// The wire protocol is newline-delimited JSON over TCP: one request line,
// one response line. It carries only metric summaries and budgets — a few
// hundred bytes per rack per control period — matching the paper's
// observation that worker communication is "on the order of milliseconds".

// request ops.
const (
	opGather = "gather"
	opBudget = "budget"
	opPing   = "ping"
)

type wireRequest struct {
	Op     string      `json:"op"`
	Budget power.Watts `json:"budget,omitempty"`
	// Trace carries the caller's per-period trace context so the rack's
	// spans nest under the room's period root. Absent when tracing is off.
	Trace *flightrec.TraceContext `json:"trace,omitempty"`
}

type wireResponse struct {
	OK      bool          `json:"ok"`
	Error   string        `json:"error,omitempty"`
	Summary *core.Summary `json:"summary,omitempty"`
	// Spans and Explains ship the rack-side trace back to the caller;
	// populated only when the request carried a trace context.
	Spans    []flightrec.Span   `json:"spans,omitempty"`
	Explains []core.NodeExplain `json:"explains,omitempty"`
}

// RackServer exposes a RackWorker over TCP.
type RackServer struct {
	worker   *RackWorker
	listener net.Listener
	met      rpcMetrics

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeRack starts serving the worker on the given address (e.g.
// "127.0.0.1:0"). It returns once the listener is bound; connections are
// handled on background goroutines until Close.
func ServeRack(worker *RackWorker, addr string, opts ...Option) (*RackServer, error) {
	if worker == nil {
		return nil, errors.New("controlplane: nil worker")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("controlplane: listen: %w", err)
	}
	o := buildOptions(opts)
	s := &RackServer{
		worker:   worker,
		listener: ln,
		met:      newRPCMetrics(o.reg, "server"),
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *RackServer) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and all connections.
func (s *RackServer) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *RackServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *RackServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.met.openConns.Inc()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.met.openConns.Dec()
	}()
	counted := countConn(conn, s.met.bytesIn, s.met.bytesOut)
	dec := json.NewDecoder(bufio.NewReader(counted))
	enc := json.NewEncoder(counted)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // connection closed or garbage
		}
		start := time.Now()
		resp := s.handle(req)
		s.met.observe(req.Op, start, !resp.OK)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// countingConn feeds transport byte counters; a nil counter (telemetry
// off) makes Add a no-op, so the wrapper is always safe to install.
type countingConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func countConn(c net.Conn, in, out *telemetry.Counter) net.Conn {
	if in == nil && out == nil {
		return c
	}
	return &countingConn{Conn: c, in: in, out: out}
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(float64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(float64(n))
	return n, err
}

func (s *RackServer) handle(req wireRequest) wireResponse {
	ctx := context.Background()
	// Continue the caller's trace: the worker's spans adopt the remote
	// trace ID and parent, and travel back in the response.
	var pt *flightrec.PeriodTrace
	if req.Trace != nil {
		pt = flightrec.NewRemoteTrace(req.Trace)
		ctx = flightrec.ContextWithRemote(ctx, pt, req.Trace.ParentID)
	}
	resp := s.dispatch(ctx, req)
	if pt != nil {
		resp.Spans = pt.Spans()
		resp.Explains = pt.Explains()
	}
	return resp
}

func (s *RackServer) dispatch(ctx context.Context, req wireRequest) wireResponse {
	switch req.Op {
	case opPing:
		return wireResponse{OK: true}
	case opGather:
		summary, err := s.worker.Gather(ctx)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, Summary: &summary}
	case opBudget:
		if err := s.worker.ApplyBudget(ctx, req.Budget); err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true}
	default:
		return wireResponse{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// ErrClientClosed is returned by every TCPClient method after Close: a
// closed client never re-dials, so shutting one down is terminal.
var ErrClientClosed = errors.New("controlplane: rack client closed")

// serverError is an application-level failure reported by the rack server
// (as opposed to a transport failure). It is never retried: the server
// handled the request and said no.
type serverError struct{ msg string }

func (e *serverError) Error() string { return e.msg }

// TCPClient is a RackClient that talks to a RackServer. It maintains one
// connection, re-dialing on failure, retries transport failures a bounded
// number of times with doubling backoff, and serializes requests (the room
// worker issues one request at a time per rack).
type TCPClient struct {
	addr    string
	timeout time.Duration
	retries int
	backoff time.Duration
	met     rpcMetrics

	mu     sync.Mutex
	closed bool
	conn   net.Conn
	dec    *json.Decoder
	enc    *json.Encoder
}

// DialRack creates a client for the rack server at addr. timeout bounds
// each request attempt; zero selects 2 s (comfortably inside the paper's
// 8 s control period). Retry behavior follows WithRPCRetry (default: 2
// retries starting at 25 ms backoff).
func DialRack(addr string, timeout time.Duration, opts ...Option) *TCPClient {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	o := buildOptions(opts)
	return &TCPClient{
		addr:    addr,
		timeout: timeout,
		retries: o.rpcRetries,
		backoff: o.rpcRetryBackoff,
		met:     newRPCMetrics(o.reg, "client"),
	}
}

// Close tears down the connection and marks the client terminally closed:
// subsequent requests fail with ErrClientClosed instead of re-dialing.
// Closing an already-closed client is a no-op.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		c.met.openConns.Dec()
		return err
	}
	return nil
}

func (c *TCPClient) ensureConn() error {
	if c.closed {
		return ErrClientClosed
	}
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.met.openConns.Inc()
	counted := countConn(conn, c.met.bytesIn, c.met.bytesOut)
	c.dec = json.NewDecoder(bufio.NewReader(counted))
	c.enc = json.NewEncoder(counted)
	return nil
}

func (c *TCPClient) roundTrip(ctx context.Context, req wireRequest) (wireResponse, error) {
	start := time.Now()
	var resp wireResponse
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = c.attempt(ctx, req)
		if err == nil || attempt >= c.retries || !retryable(err) {
			break
		}
		if !sleepCtx(ctx, backoffDelay(c.backoff, attempt)) {
			break
		}
		c.met.retries.Inc()
		flightrec.SpanFrom(ctx).AddRetry()
	}
	c.met.observe(req.Op, start, err != nil)
	// A response that made it back carries the rack's side of the trace —
	// merge it even when the server reported an application-level error.
	if pt := flightrec.TraceFrom(ctx); pt != nil {
		pt.Import(resp.Spans)
		pt.ImportExplains(resp.Explains)
	}
	return resp, err
}

// attempt performs one round trip under the lock. The lock is released
// between attempts so Close (and the backoff sleep) never deadlock.
func (c *TCPClient) attempt(ctx context.Context, req wireRequest) (wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return wireResponse{}, err
	}
	if err := c.ensureConn(); err != nil {
		return wireResponse{}, err
	}
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	c.conn.SetDeadline(deadline)
	if err := c.enc.Encode(req); err != nil {
		c.resetLocked()
		return wireResponse{}, err
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		c.resetLocked()
		return wireResponse{}, err
	}
	if !resp.OK {
		return resp, &serverError{msg: resp.Error}
	}
	return resp, nil
}

// retryable reports whether a failed attempt is worth repeating: transport
// failures are (the next attempt re-dials), closed clients, dead contexts,
// and application-level rejections are not.
func retryable(err error) bool {
	if errors.Is(err, ErrClientClosed) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *serverError
	return !errors.As(err, &se)
}

// backoffDelay is the pause before retry attempt+1: base doubling per
// attempt, capped at one second.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	d := base << attempt
	if d > time.Second || d <= 0 {
		d = time.Second
	}
	return d
}

// sleepCtx sleeps for d unless the context ends first; it reports whether
// the full duration elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (c *TCPClient) resetLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.met.openConns.Dec()
	}
}

// Gather implements RackClient.
func (c *TCPClient) Gather(ctx context.Context) (core.Summary, error) {
	resp, err := c.roundTrip(ctx, wireRequest{Op: opGather, Trace: flightrec.WireContext(ctx)})
	if err != nil {
		return core.Summary{}, err
	}
	if resp.Summary == nil {
		return core.Summary{}, errors.New("controlplane: gather response missing summary")
	}
	return *resp.Summary, nil
}

// ApplyBudget implements RackClient.
func (c *TCPClient) ApplyBudget(ctx context.Context, b power.Watts) error {
	_, err := c.roundTrip(ctx, wireRequest{Op: opBudget, Budget: b, Trace: flightrec.WireContext(ctx)})
	return err
}

// Ping checks liveness of the rack server.
func (c *TCPClient) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, wireRequest{Op: opPing, Trace: flightrec.WireContext(ctx)})
	return err
}
