package controlplane

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/telemetry"
)

// TestTCPClientCloseUnblocksStalledRequest is the regression test for the
// Close-blocking bug: a server that accepts and reads but never responds
// used to pin the client mutex for the whole attempt timeout, so Close
// blocked behind it. With connection state split from request
// serialization, Close must return immediately and the in-flight request
// must fail fast with ErrClientClosed.
func TestTCPClientCloseUnblocksStalledRequest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	requestSeen := make(chan struct{}, 4)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				// Read the request so the client's write completes, then
				// stall forever: the client blocks in decode.
				buf := make([]byte, 1)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
					select {
					case requestSeen <- struct{}{}:
					default:
					}
				}
			}()
		}
	}()

	// A long attempt timeout: if Close waits out the attempt, the test
	// time limit catches it.
	client := DialRack(ln.Addr().String(), 30*time.Second, WithRPCRetry(0, time.Millisecond))
	gatherErr := make(chan error, 1)
	go func() {
		_, err := client.Gather(context.Background())
		gatherErr <- err
	}()
	select {
	case <-requestSeen:
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the request")
	}

	closeStart := time.Now()
	if err := client.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(closeStart); elapsed > 2*time.Second {
		t.Fatalf("Close blocked %v behind the stalled request", elapsed)
	}
	select {
	case err := <-gatherErr:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("stalled gather returned %v, want ErrClientClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight gather did not fail fast after Close")
	}
}

// jsonScriptServer answers every request on every connection with the
// same scripted JSON response line, counting connections — a minimal
// stand-in for a buggy or malicious rack server.
func jsonScriptServer(t *testing.T, response string) (addr string, conns *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	conns = &atomic.Int32{}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conns.Add(1)
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					if _, err := br.ReadBytes('\n'); err != nil {
						return
					}
					if _, err := io.WriteString(conn, response+"\n"); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), conns
}

// TestGatherOKWithoutSummaryIsTransportFault is the regression test for
// the malformed-response bug: a gather response claiming OK with no
// summary must be treated as a transport fault — counted in
// protocol_errors, connection reset (each retry arrives on a fresh
// connection), and surfaced as an error instead of a healthy stream.
func TestGatherOKWithoutSummaryIsTransportFault(t *testing.T) {
	addr, conns := jsonScriptServer(t, `{"ok":true}`)
	reg := telemetry.NewRegistry()
	client := DialRack(addr, time.Second, WithWireCodec(CodecJSON), WithRPCRetry(2, time.Millisecond), WithTelemetry(reg))
	defer client.Close()

	_, err := client.Gather(context.Background())
	if err == nil {
		t.Fatal("malformed gather response reported success")
	}
	var pe *protocolError
	if !errors.As(err, &pe) {
		t.Fatalf("gather returned %v, want a protocol error", err)
	}
	// 1 attempt + 2 retries, each over a fresh connection because every
	// protocol fault resets the stream.
	if got := conns.Load(); got != 3 {
		t.Fatalf("server saw %d connections, want 3 (reset per protocol fault)", got)
	}
	errsVec := reg.CounterVec("capmaestro_rpc_protocol_errors_total", "", "role")
	if got := errsVec.With("client").Value(); got != 3 {
		t.Fatalf("protocol_errors = %v, want 3", got)
	}
	// The client is still usable: a later budget push round-trips fine on
	// a server that answers OK.
	if pingErr := client.Ping(context.Background()); pingErr != nil {
		t.Fatalf("client unusable after protocol faults: %v", pingErr)
	}
}

// TestUnchangedWithoutCacheIsTransportFault covers the other malformed
// combination: an Unchanged gather on a connection that never received a
// full summary has nothing to resolve against and must fault rather than
// fabricate a summary.
func TestUnchangedWithoutCacheIsTransportFault(t *testing.T) {
	addr, _ := jsonScriptServer(t, `{"ok":true,"unchanged":true}`)
	client := DialRack(addr, time.Second, WithWireCodec(CodecJSON), WithRPCRetry(1, time.Millisecond))
	defer client.Close()
	_, err := client.Gather(context.Background())
	var pe *protocolError
	if !errors.As(err, &pe) {
		t.Fatalf("gather returned %v, want a protocol error", err)
	}
	if !strings.Contains(err.Error(), "cached") {
		t.Fatalf("unexpected protocol error text: %v", err)
	}
}

// TestBinaryDeltaGatherEndToEnd drives a real server/client pair on the
// binary codec: the first gather ships a full summary, repeat gathers of
// an unchanged rack squash to delta frames on both counters, and a severed
// connection forces a full-summary resync before delta resumes.
func TestBinaryDeltaGatherEndToEnd(t *testing.T) {
	worker, err := NewRackWorker("rack0",
		core.NewShifting("rack0", 0, leaf("s0", "S0", 1, 400), leaf("s1", "S1", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	srv, err := ServeRack(worker, "127.0.0.1:0", WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := DialRack(srv.Addr(), time.Second,
		WithWireCodec(CodecBinary), WithTelemetry(reg), WithRPCRetry(2, time.Millisecond))
	defer client.Close()

	deltaVec := reg.CounterVec("capmaestro_rpc_delta_hits_total", "", "role")
	clientHits := func() float64 { return deltaVec.With("client").Value() }
	serverHits := func() float64 { return deltaVec.With("server").Value() }

	first, err := client.Gather(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if clientHits() != 0 || serverHits() != 0 {
		t.Fatalf("first gather used the delta path (client %v, server %v)", clientHits(), serverHits())
	}

	// The rack is static, so repeat gathers squash to unchanged frames
	// that resolve to the identical summary.
	for i := 0; i < 3; i++ {
		got, err := client.Gather(context.Background())
		if err != nil {
			t.Fatalf("gather %d: %v", i, err)
		}
		if !summariesEquivalent(&first, &got) {
			t.Fatalf("delta gather %d drifted:\nfirst %+v\n got  %+v", i, first, got)
		}
	}
	if clientHits() != 3 || serverHits() != 3 {
		t.Fatalf("delta hits client %v server %v, want 3/3", clientHits(), serverHits())
	}

	// Sever the live connection: the next gather reconnects, and the
	// fresh connection must resync with a full frame (no new delta hit).
	client.mu.Lock()
	conn := client.conn
	client.mu.Unlock()
	conn.Close()
	got, err := client.Gather(context.Background())
	if err != nil {
		t.Fatalf("gather after severed conn: %v", err)
	}
	if !summariesEquivalent(&first, &got) {
		t.Fatal("post-reconnect gather drifted")
	}
	if clientHits() != 3 {
		t.Fatalf("reconnect did not force a full-summary resync (client hits %v)", clientHits())
	}
	// Delta resumes on the new connection.
	if _, err := client.Gather(context.Background()); err != nil {
		t.Fatal(err)
	}
	if clientHits() != 4 {
		t.Fatalf("delta did not resume after resync (client hits %v)", clientHits())
	}
}

// TestJSONCodecNeverSquashes pins JSON compatibility: a JSON client
// against a delta-capable server always receives full summaries.
func TestJSONCodecNeverSquashes(t *testing.T) {
	worker, err := NewRackWorker("rack0",
		core.NewShifting("rack0", 0, leaf("s0", "S0", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	srv, err := ServeRack(worker, "127.0.0.1:0", WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := DialRack(srv.Addr(), time.Second, WithWireCodec(CodecJSON), WithTelemetry(reg))
	defer client.Close()
	for i := 0; i < 3; i++ {
		if _, err := client.Gather(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	deltaVec := reg.CounterVec("capmaestro_rpc_delta_hits_total", "", "role")
	if got := deltaVec.With("server").Value(); got != 0 {
		t.Fatalf("JSON connection produced %v delta hits", got)
	}
}

// TestServerCodecRestriction pins WithWireCodec on the server side: a
// JSON-only server rejects binary preambles (counting a protocol error)
// and vice versa, while the default accepts both.
func TestServerCodecRestriction(t *testing.T) {
	newWorker := func() *RackWorker {
		w, err := NewRackWorker("rack0",
			core.NewShifting("rack0", 0, leaf("s0", "S0", 0, 400)),
			core.GlobalPriority, nil)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	cases := []struct {
		name        string
		server      string
		client      string
		wantSuccess bool
	}{
		{"auto-json", CodecAuto, CodecJSON, true},
		{"auto-binary", CodecAuto, CodecBinary, true},
		{"json-json", CodecJSON, CodecJSON, true},
		{"json-binary", CodecJSON, CodecBinary, false},
		{"binary-binary", CodecBinary, CodecBinary, true},
		{"binary-json", CodecBinary, CodecJSON, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			srv, err := ServeRack(newWorker(), "127.0.0.1:0",
				WithWireCodec(tc.server), WithTelemetry(reg))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			client := DialRack(srv.Addr(), time.Second,
				WithWireCodec(tc.client), WithRPCRetry(0, time.Millisecond))
			defer client.Close()
			_, err = client.Gather(context.Background())
			if tc.wantSuccess && err != nil {
				t.Fatalf("gather failed: %v", err)
			}
			if !tc.wantSuccess {
				if err == nil {
					t.Fatal("restricted server accepted the wrong codec")
				}
				errsVec := reg.CounterVec("capmaestro_rpc_protocol_errors_total", "", "role")
				if got := errsVec.With("server").Value(); got == 0 {
					t.Fatal("codec rejection did not count a server protocol error")
				}
			}
		})
	}
}

// TestTransportChaosBothCodecs runs a room worker over a real TCP
// transport through the dropping proxy with fault injection layered on
// top, once per codec: the codec must survive FaultyClient faults and
// WithRPCRetry reconnects with trace spans intact, and the binary codec
// must still land delta hits between the failures.
func TestTransportChaosBothCodecs(t *testing.T) {
	for _, codecName := range []string{CodecJSON, CodecBinary} {
		t.Run(codecName, func(t *testing.T) {
			seed := chaosSeed(t)
			const periods = 10
			worker, err := NewRackWorker("tcprack",
				core.NewShifting("tcprack", 0, leaf("t0", "T0", 1, 400), leaf("t1", "T1", 0, 400)),
				core.GlobalPriority, nil)
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			srv, err := ServeRack(worker, "127.0.0.1:0", WithTelemetry(reg))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			proxy := newDroppingProxy(t, srv.Addr(), 4)
			tcpClient := DialRack(proxy.addr(), time.Second,
				WithWireCodec(codecName), WithTelemetry(reg), WithRPCRetry(3, 2*time.Millisecond))
			defer tcpClient.Close()
			flaky := NewFaultyClient(tcpClient, seed)
			flaky.SetErrorRate(0.2)

			rec := flightrec.NewRecorder(periods)
			dumpTraceOnFailure(t, rec)
			room, err := NewRoomWorker(
				core.NewShifting("room", 0, core.NewProxy("tcprack", core.NewSummary())),
				2000, core.GlobalPriority,
				map[string]RackClient{"tcprack": flaky},
				WithFlightRecorder(rec), WithStalenessBound(3))
			if err != nil {
				t.Fatal(err)
			}
			for period := 0; period < periods; period++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, _, err := room.RunPeriod(ctx)
				cancel()
				if err != nil {
					t.Fatalf("period %d: %v", period, err)
				}
			}
			if proxy.dropCount() == 0 {
				t.Fatal("proxy never dropped a request; chaos did not engage")
			}
			// Trace invariants: every period has a root span carrying its
			// trace ID, and rack-side spans crossed the transport.
			rackSpans := 0
			for _, pr := range rec.Records() {
				roots := 0
				for _, s := range pr.Spans {
					if s.TraceID != pr.TraceID {
						t.Fatalf("record %d: span %s has trace %q, want %q", pr.ID, s.Name, s.TraceID, pr.TraceID)
					}
					if s.ParentID == "" {
						roots++
					}
					if s.Node == "tcprack" && (s.Name == "rack.gather" || s.Name == "rack.apply") {
						rackSpans++
					}
				}
				if roots != 1 {
					t.Fatalf("record %d: %d roots, want 1", pr.ID, roots)
				}
			}
			if rackSpans == 0 {
				t.Fatal("no rack-side spans survived the transport")
			}
			if codecName == CodecBinary {
				deltaVec := reg.CounterVec("capmaestro_rpc_delta_hits_total", "", "role")
				if got := deltaVec.With("client").Value(); got == 0 {
					t.Fatal("binary chaos run landed no delta hits")
				}
			}
		})
	}
}
