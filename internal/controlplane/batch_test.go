package controlplane

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/telemetry"
)

// batchFixture serves three distinguishable rack workers from one
// multi-rack server and returns a connected client.
func batchFixture(t *testing.T, clientOpts, serverOpts []Option) (*TCPClient, map[string]*RackWorker) {
	t.Helper()
	workers := make(map[string]*RackWorker)
	serve := make(map[string]RackClient)
	for i, id := range []string{"ra", "rb", "rc"} {
		tree := core.NewShifting(id, 950,
			leaf(id+"-s0", id+"-s0", 0, power.Watts(380+20*i)),
			leaf(id+"-s1", id+"-s1", 0, power.Watts(380+20*i)),
		)
		w, err := NewRackWorker(id, tree, core.GlobalPriority, nil)
		if err != nil {
			t.Fatal(err)
		}
		workers[id] = w
		serve[id] = w
	}
	srv, err := ServeRacks(serve, "127.0.0.1:0", serverOpts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := DialRack(srv.Addr(), 2*time.Second, clientOpts...)
	t.Cleanup(func() { c.Close() })
	return c, workers
}

func TestServeRacksRouting(t *testing.T) {
	for _, codec := range []string{CodecJSON, CodecBinary} {
		t.Run(codec, func(t *testing.T) {
			c, _ := batchFixture(t, []Option{WithWireCodec(codec)}, nil)
			ctx := context.Background()

			// Routed singles hit the named rack: demands differ per rack.
			sa, err := c.Rack("ra").Gather(ctx)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := c.Rack("rc").Gather(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if sa.TotalDemand() >= sc.TotalDemand() {
				t.Errorf("routing mixed racks up: ra demand %v, rc demand %v", sa.TotalDemand(), sc.TotalDemand())
			}
			if err := c.Rack("ra").ApplyBudget(ctx, 800); err != nil {
				t.Fatal(err)
			}

			// Unknown rack is a clean per-call error, and the connection
			// survives it.
			if _, err := c.Rack("ghost").Gather(ctx); err == nil || !strings.Contains(err.Error(), "ghost") {
				t.Errorf("unknown rack gather error = %v", err)
			}
			if _, err := c.Rack("ra").Gather(ctx); err != nil {
				t.Errorf("gather after unknown-rack error: %v", err)
			}

			// An un-routed single on a multi-rack server has no default
			// worker to land on.
			if _, err := c.Gather(ctx); err == nil {
				t.Error("un-routed gather against multi-rack server should fail")
			}
		})
	}
}

func TestBatchOpsBothCodecs(t *testing.T) {
	for _, codec := range []string{CodecJSON, CodecBinary} {
		t.Run(codec, func(t *testing.T) {
			c, workers := batchFixture(t, []Option{WithWireCodec(codec)}, nil)
			ctx := context.Background()

			racks := []string{"ra", "rb", "rc", "ghost"}
			out := make([]GatherResult, len(racks))
			if err := c.GatherBatch(ctx, racks, out); err != nil {
				t.Fatal(err)
			}
			for i, id := range racks[:3] {
				if out[i].Err != nil {
					t.Fatalf("batch gather %s: %v", id, out[i].Err)
				}
				want := power.Watts(2 * (380 + 20*i))
				if got := out[i].Summary.TotalDemand(); math.Abs(float64(got-want)) > 0.001 {
					t.Errorf("batch gather %s demand = %v, want %v", id, got, want)
				}
			}
			if out[3].Err == nil || !strings.Contains(out[3].Err.Error(), "ghost") {
				t.Errorf("batch gather unknown rack err = %v", out[3].Err)
			}

			budgets := []BatchBudget{{Rack: "ra", Budget: 700}, {Rack: "ghost", Budget: 1}, {Rack: "rc", Budget: 900}}
			errs := make([]error, len(budgets))
			if err := c.ApplyBudgetBatch(ctx, budgets, errs); err != nil {
				t.Fatal(err)
			}
			if errs[0] != nil || errs[2] != nil {
				t.Fatalf("batch budget errs = %v", errs)
			}
			if errs[1] == nil {
				t.Error("batch budget to unknown rack should error")
			}
			if got := workers["ra"].LastBudget(); math.Abs(float64(got-700)) > 0.001 {
				t.Errorf("ra budget = %v, want 700", got)
			}
			if got := workers["rc"].LastBudget(); math.Abs(float64(got-900)) > 0.001 {
				t.Errorf("rc budget = %v, want 900", got)
			}

			// Shape errors are caller bugs, reported before any I/O.
			if err := c.GatherBatch(ctx, racks, make([]GatherResult, 1)); err == nil {
				t.Error("mismatched out length should fail")
			}
			if err := c.GatherBatch(ctx, nil, nil); err != nil {
				t.Errorf("empty batch gather: %v", err)
			}
		})
	}
}

// TestBatchDeltaUnchanged: with a server-side delta deadband, a repeated
// batch gather squashes every unchanged summary to a marker entry and the
// client resolves them from its per-rack cache.
func TestBatchDeltaUnchanged(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, _ := batchFixture(t,
		[]Option{WithWireCodec(CodecBinary), WithTelemetry(reg)},
		[]Option{WithDeltaDeadband(1)})
	ctx := context.Background()

	racks := []string{"ra", "rb", "rc"}
	first := make([]GatherResult, len(racks))
	if err := c.GatherBatch(ctx, racks, first); err != nil {
		t.Fatal(err)
	}
	second := make([]GatherResult, len(racks))
	if err := c.GatherBatch(ctx, racks, second); err != nil {
		t.Fatal(err)
	}
	for i, id := range racks {
		if second[i].Err != nil {
			t.Fatalf("second gather %s: %v", id, second[i].Err)
		}
		if got, want := second[i].Summary.TotalDemand(), first[i].Summary.TotalDemand(); math.Abs(float64(got-want)) > 0.001 {
			t.Errorf("%s: delta-resolved demand %v, want %v", id, got, want)
		}
	}
	hits := reg.CounterVec("capmaestro_rpc_delta_hits_total",
		"Gather responses squashed to (server) or resolved from (client) an unchanged-summary delta frame.",
		"role").With("client").Value()
	if hits < float64(len(racks)) {
		t.Errorf("client delta hits = %v, want >= %d", hits, len(racks))
	}
}

// TestRoomBatchFramesPerPeriod: a room whose racks are handles on one
// shared TCPClient must issue exactly one gather frame and one push frame
// per period to that endpoint, regardless of rack count.
func TestRoomBatchFramesPerPeriod(t *testing.T) {
	reg := telemetry.NewRegistry()
	serve := make(map[string]RackClient)
	var proxies []*core.Node
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("fr%d", i)
		tree := core.NewShifting(id, 950,
			leaf(id+"-s0", id+"-s0", 0, 430),
			leaf(id+"-s1", id+"-s1", 0, 430),
		)
		w, err := NewRackWorker(id, tree, core.GlobalPriority, nil)
		if err != nil {
			t.Fatal(err)
		}
		serve[id] = w
		proxies = append(proxies, core.NewProxy(id, core.NewSummary()))
	}
	srv, err := ServeRacks(serve, "127.0.0.1:0", WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := DialRack(srv.Addr(), 2*time.Second, WithWireCodec(CodecBinary))
	t.Cleanup(func() { c.Close() })

	clients := make(map[string]RackClient, len(serve))
	for id := range serve {
		clients[id] = c.Rack(id)
	}
	room, err := NewRoomWorker(core.NewShifting("room", 3000, proxies...), 2900,
		core.GlobalPriority, clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, stats, err := room.RunPeriod(context.Background()); err != nil {
		t.Fatal(err)
	} else if stats.GatherErrors+stats.ApplyErrors+stats.BudgetsHeld != 0 {
		t.Fatalf("period degraded: %+v", stats)
	}

	frames := reg.CounterVec("capmaestro_rpc_batch_frames_total",
		"Multi-rack batch frames sent (client) or handled (server).", "role").With("server").Value()
	racks := reg.CounterVec("capmaestro_rpc_batch_racks_total",
		"Racks multiplexed into batch frames; batch_racks/batch_frames is the realized batching factor.",
		"role").With("server").Value()
	if frames != 2 {
		t.Errorf("server batch frames = %v, want 2 (one gather + one push)", frames)
	}
	if racks != 8 {
		t.Errorf("server batch racks = %v, want 8 (4 racks × 2 frames)", racks)
	}
}
