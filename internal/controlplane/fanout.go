package controlplane

import (
	"context"
	"runtime"
	"sync"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
)

// limiter bounds the number of rack RPCs a worker keeps in flight at once.
// Goroutines are spawned only after a slot is acquired, so a wave over N
// children never holds more than cap(limiter) goroutines alive — the
// unbounded goroutine-per-rack fan-out this replaces peaked at N.
//
// Each worker owns its own limiter. Sharing one limiter across nested
// in-process tiers (a room whose children are in-process aggregators)
// would deadlock once every slot is held by a parent RPC that is itself
// waiting for a child slot.
type limiter chan struct{}

func newLimiter(n int) limiter {
	if n <= 0 {
		n = defaultRPCConcurrency()
	}
	return make(limiter, n)
}

func (l limiter) acquire() { l <- struct{}{} }
func (l limiter) release() { <-l }

// defaultRPCConcurrency scales with GOMAXPROCS but stays well above it:
// rack RPCs are I/O-bound, so even a single-core controller wants dozens
// in flight to hide network latency.
func defaultRPCConcurrency() int {
	n := 16 * runtime.GOMAXPROCS(0)
	if n < 32 {
		n = 32
	}
	return n
}

// batcher is a transport that can multiplex gathers and budget pushes for
// many racks over one connection in single batch frames. *TCPClient
// implements it.
type batcher interface {
	GatherBatch(ctx context.Context, racks []string, out []GatherResult) error
	ApplyBudgetBatch(ctx context.Context, budgets []BatchBudget, out []error) error
}

// batchEndpoint is implemented by RackClients that are views of one rack
// on a shared multi-rack transport (see TCPClient.Rack). The fan-out
// engine groups such clients by transport and issues one batch RPC per
// transport instead of one RPC per rack.
type batchEndpoint interface {
	batchTarget() (tr batcher, rack string, label string)
}

// fanCall is one child's slot in a gather or push wave. The engine reuses
// the backing slice across periods, so steady state allocates no per-rack
// bookkeeping.
type fanCall struct {
	id      string
	client  RackClient
	skip    bool // held: excluded from this wave
	batched bool // claimed by a batchTask this wave
	budget  power.Watts
	summary core.Summary
	// digest is the child's fleet digest when the engine gathers digests
	// and the child produced one (nil otherwise; the worker synthesizes).
	digest *fleetobs.StatDigest
	// elapsed is the gather RPC's round-trip time (the whole batch
	// frame's, for batched calls), observed into the fleet digest's
	// per-level gather-latency histogram.
	elapsed time.Duration
	err     error
}

// batchTask is one transport's share of a wave: the calls it serves and
// the request/result scratch for its batch RPC. Reused across periods.
type batchTask struct {
	e       *fanEngine
	tr      batcher
	label   string
	idx     []int // indices into e.calls
	ids     []string
	budgets []BatchBudget
	gout    []GatherResult
	aout    []error
}

// fanEngine runs bounded-concurrency gather and push waves over a fixed
// set of children. A worker owns one engine per overlappable phase (the
// pipelined room worker runs a push wave and the next gather wave
// concurrently, each on its own engine) and reuses it every period.
type fanEngine struct {
	lim   limiter
	calls []fanCall
	wg    sync.WaitGroup

	// digests asks gather waves to collect fleet digests from children
	// that implement DigestGatherer.
	digests bool

	// wave-scoped; set before spawning, read by wave goroutines.
	ctx    context.Context
	pt     *flightrec.PeriodTrace
	parent string

	tasks   []batchTask
	taskIdx map[batcher]int
}

func newFanEngine(lim limiter, capacity int) *fanEngine {
	return &fanEngine{
		lim:     lim,
		calls:   make([]fanCall, 0, capacity),
		taskIdx: make(map[batcher]int),
	}
}

// reset clears the call list for a new wave, keeping backing storage.
func (e *fanEngine) reset() { e.calls = e.calls[:0] }

// add appends one child to the wave.
func (e *fanEngine) add(id string, client RackClient) *fanCall {
	e.calls = append(e.calls, fanCall{id: id, client: client})
	return &e.calls[len(e.calls)-1]
}

// groupBatches partitions the wave's live calls into per-transport batch
// tasks, marking claimed calls. Calls whose client is not a batch
// endpoint (in-process clients, plain TCP clients, fault-injection
// wrappers) run as single RPCs.
func (e *fanEngine) groupBatches(push bool) {
	e.tasks = e.tasks[:0]
	clear(e.taskIdx)
	for i := range e.calls {
		c := &e.calls[i]
		c.batched = false
		if c.skip {
			continue
		}
		be, ok := c.client.(batchEndpoint)
		if !ok {
			continue
		}
		tr, rack, label := be.batchTarget()
		if tr == nil {
			continue
		}
		ti, ok := e.taskIdx[tr]
		if !ok {
			ti = len(e.tasks)
			if ti < cap(e.tasks) {
				e.tasks = e.tasks[:ti+1]
			} else {
				e.tasks = append(e.tasks, batchTask{})
			}
			t := &e.tasks[ti]
			t.e, t.tr, t.label = e, tr, label
			t.idx = t.idx[:0]
			t.ids = t.ids[:0]
			t.budgets = t.budgets[:0]
			e.taskIdx[tr] = ti
		}
		t := &e.tasks[ti]
		t.idx = append(t.idx, i)
		t.ids = append(t.ids, rack)
		if push {
			t.budgets = append(t.budgets, BatchBudget{Rack: rack, Budget: c.budget})
		}
		c.batched = true
	}
	for ti := range e.tasks {
		t := &e.tasks[ti]
		if cap(t.gout) < len(t.idx) {
			t.gout = make([]GatherResult, len(t.idx))
			t.aout = make([]error, len(t.idx))
		}
	}
}

// gatherWave collects summaries from every live call, bounded by the
// limiter, batching where the transport allows. Results land in the calls'
// summary/err fields.
func (e *fanEngine) gatherWave(ctx context.Context, pt *flightrec.PeriodTrace, parentID string) {
	e.runWave(ctx, pt, parentID, false)
}

// pushWave distributes each live call's budget, bounded by the limiter,
// batching where the transport allows. Push outcomes land in the calls'
// err fields.
func (e *fanEngine) pushWave(ctx context.Context, pt *flightrec.PeriodTrace, parentID string) {
	e.runWave(ctx, pt, parentID, true)
}

func (e *fanEngine) runWave(ctx context.Context, pt *flightrec.PeriodTrace, parentID string, push bool) {
	e.ctx, e.pt, e.parent = ctx, pt, parentID
	e.groupBatches(push)
	for ti := range e.tasks {
		e.lim.acquire()
		e.wg.Add(1)
		if push {
			go e.tasks[ti].push()
		} else {
			go e.tasks[ti].gather()
		}
	}
	for i := range e.calls {
		c := &e.calls[i]
		if c.skip || c.batched {
			continue
		}
		e.lim.acquire()
		e.wg.Add(1)
		if push {
			go e.pushOne(i)
		} else {
			go e.gatherOne(i)
		}
	}
	e.wg.Wait()
	e.ctx, e.pt = nil, nil
}

func (e *fanEngine) gatherOne(i int) {
	c := &e.calls[i]
	span := e.pt.StartSpan("rpc.gather", c.id, e.parent)
	ctx := flightrec.ContextWithSpan(e.ctx, e.pt, span)
	start := time.Now()
	var s core.Summary
	var dig *fleetobs.StatDigest
	var err error
	if dg, ok := c.client.(DigestGatherer); ok && e.digests {
		s, dig, err = dg.GatherDigest(ctx)
	} else {
		s, err = c.client.Gather(ctx)
	}
	c.elapsed = time.Since(start)
	if err == nil {
		err = s.Validate()
	}
	span.End(err)
	c.summary, c.digest, c.err = s, dig, err
	e.lim.release()
	e.wg.Done()
}

func (e *fanEngine) pushOne(i int) {
	c := &e.calls[i]
	span := e.pt.StartSpan("rpc.apply", c.id, e.parent)
	err := c.client.ApplyBudget(flightrec.ContextWithSpan(e.ctx, e.pt, span), c.budget)
	span.End(err)
	c.err = err
	e.lim.release()
	e.wg.Done()
}

func (t *batchTask) gather() {
	e := t.e
	span := e.pt.StartSpan("rpc.gather", t.label, e.parent)
	start := time.Now()
	err := t.tr.GatherBatch(flightrec.ContextWithSpan(e.ctx, e.pt, span), t.ids, t.gout[:len(t.idx)])
	elapsed := time.Since(start)
	span.End(err)
	for j, i := range t.idx {
		c := &e.calls[i]
		c.elapsed = elapsed
		if err != nil {
			c.err = err
			continue
		}
		r := t.gout[j]
		if r.Err == nil {
			r.Err = r.Summary.Validate()
		}
		c.summary, c.digest, c.err = r.Summary, r.Digest, r.Err
	}
	e.lim.release()
	e.wg.Done()
}

func (t *batchTask) push() {
	e := t.e
	span := e.pt.StartSpan("rpc.apply", t.label, e.parent)
	err := t.tr.ApplyBudgetBatch(flightrec.ContextWithSpan(e.ctx, e.pt, span), t.budgets, t.aout[:len(t.idx)])
	span.End(err)
	for j, i := range t.idx {
		c := &e.calls[i]
		if err != nil {
			c.err = err
			continue
		}
		c.err = t.aout[j]
	}
	e.lim.release()
	e.wg.Done()
}
