package controlplane

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/telemetry"
)

// TestRackSelfDigest pins the single-rack digest contribution: watt
// fields mirror the summary, headroom measures against the last pushed
// budget once one exists, and the outlier entry appears exactly when the
// rack violates its cap or runs low on headroom.
func TestRackSelfDigest(t *testing.T) {
	mk := func(demand, constraint power.Watts) core.Summary {
		s := core.NewSummary()
		s.Constraint = constraint
		s.SetLevel(0, demand/2, demand, demand)
		return s
	}
	var d fleetobs.StatDigest

	// No budget yet: headroom measures against the rack constraint.
	s := mk(800, 1000)
	rackSelfDigest(&d, "r0", &s, 0, false)
	if d.Racks != 1 || d.PowerW != 800 || d.BudgetW != 0 {
		t.Fatalf("pre-budget digest: %+v", d)
	}
	if d.HeadroomW != 200 || d.WorstHeadroomW != 200 || d.WorstHeadroomRack != "r0" {
		t.Fatalf("pre-budget headroom: %+v", d)
	}
	if len(d.Outliers) != 0 {
		t.Fatalf("comfortable rack flagged as outlier: %+v", d.Outliers)
	}

	// Budgeted below demand: cap violation, flagged with the violation
	// watts and reason.
	s = mk(800, 1000)
	rackSelfDigest(&d, "r0", &s, 700, true)
	if d.BudgetW != 700 || d.HeadroomW != -100 || d.ViolatingRacks != 1 || d.ViolationW != 100 {
		t.Fatalf("violating digest: %+v", d)
	}
	if len(d.Outliers) != 1 || d.Outliers[0].Reason != fleetobs.ReasonCapExceeded {
		t.Fatalf("violation outlier: %+v", d.Outliers)
	}

	// Headroom under 5% of demand: low-headroom outlier, no violation.
	s = mk(1000, 1200)
	rackSelfDigest(&d, "r0", &s, 1030, true)
	if d.ViolatingRacks != 0 {
		t.Fatalf("low-headroom rack counted as violating: %+v", d)
	}
	if len(d.Outliers) != 1 || d.Outliers[0].Reason != fleetobs.ReasonLowHeadroom {
		t.Fatalf("low-headroom outlier: %+v", d.Outliers)
	}
}

// TestFleetDigestThreeLevelWattExact builds a 3-level in-process
// hierarchy and checks the acceptance invariant: the room's fleet digest
// is watt-for-watt the sum of the per-rack summaries, covers every rack,
// carries level rows for each tier, feeds LastStats and the flight
// recorder, and lands one history sample per period.
func TestFleetDigestThreeLevelWattExact(t *testing.T) {
	const racks = 10
	clients := make(map[string]RackClient, racks)
	var wantPower float64
	for r := 0; r < racks; r++ {
		w, err := NewRackWorker(fmt.Sprintf("hr%02d", r), hierRackTree(r), core.GlobalPriority, nil)
		if err != nil {
			t.Fatal(err)
		}
		clients[w.ID()] = LocalClient{Worker: w}
		for s := 0; s < 3; s++ {
			wantPower += float64(350 + (r*37+s*113)%130)
		}
	}
	rec := flightrec.NewRecorder(8)
	h, err := BuildHierarchy(clients, HierarchyConfig{
		Levels: 3, FanOut: 3, Policy: core.GlobalPriority, Budget: 9000,
		Opts: []Option{WithFlightRecorder(rec)},
	})
	if err != nil {
		t.Fatal(err)
	}
	const periods = 3
	for i := 0; i < periods; i++ {
		if _, stats, err := h.Room.RunPeriod(context.Background()); err != nil {
			t.Fatal(err)
		} else if stats.GatherErrors+stats.ApplyErrors+stats.BudgetsHeld != 0 {
			t.Fatalf("period %d degraded: %+v", i, stats)
		}
	}

	rep, ok := h.Room.FleetReport()
	if !ok {
		t.Fatal("no fleet report after periods")
	}
	if rep.Summary.Racks != racks {
		t.Fatalf("digest racks = %d, want %d", rep.Summary.Racks, racks)
	}
	if rep.Summary.PowerWatts != wantPower {
		t.Fatalf("digest power = %v W, want exactly %v", rep.Summary.PowerWatts, wantPower)
	}
	if rep.Fleet.RequestW <= 0 || rep.Fleet.CapMinW <= 0 {
		t.Fatalf("digest watt fields empty: %+v", rep.Fleet)
	}
	// Level rows: the aggregator tier plus the room's own row.
	if len(rep.Fleet.Levels) != 2 {
		t.Fatalf("digest level rows = %+v, want aggregator tier + room", rep.Fleet.Levels)
	}
	if rep.Fleet.Levels[0].Workers != racks {
		t.Fatalf("aggregator tier row covers %d workers, want %d", rep.Fleet.Levels[0].Workers, racks)
	}
	if rep.Fleet.Headroom.Count() != uint64(racks) {
		t.Fatalf("headroom hist holds %d racks, want %d", rep.Fleet.Headroom.Count(), racks)
	}

	// LastStats carries the headline summary for /healthz and scalesim.
	if got := h.Room.LastStats().Fleet; got != rep.Summary {
		t.Fatalf("LastStats fleet summary %+v != report summary %+v", got, rep.Summary)
	}
	// One history sample per period, watt-identical to the live digest.
	hist := h.Room.FleetHistory()
	if hist.Len() != periods {
		t.Fatalf("history holds %d samples, want %d", hist.Len(), periods)
	}
	last := hist.Snapshot()[periods-1]
	if last.PowerW != wantPower || last.Period != periods {
		t.Fatalf("history sample drifted: %+v", last)
	}
	// Flight-recorder periods are annotated with the digest.
	recs := rec.Records()
	if len(recs) == 0 {
		t.Fatal("no flight records")
	}
	fl := recs[len(recs)-1].Fleet
	if fl == nil || fl.Racks != racks || fl.PowerWatts != wantPower {
		t.Fatalf("flight record fleet note = %+v", fl)
	}
}

// TestTCPDigestBothCodecs proves the digest actually crosses the wire
// (rather than being synthesized client-side): an aggregator served over
// TCP contributes its level row, which only exists inside the digest
// payload. Runs under both codecs; with digests not requested, the level
// row must vanish and the aggregator collapses to one synthesized rack.
func TestTCPDigestBothCodecs(t *testing.T) {
	for _, codecName := range []string{CodecJSON, CodecBinary} {
		t.Run(codecName, func(t *testing.T) {
			var aggProxies []*core.Node
			childMap := make(map[string]RackClient, 2)
			var wantPower float64
			for r := 0; r < 2; r++ {
				w, err := NewRackWorker(fmt.Sprintf("hr%02d", r), hierRackTree(r), core.GlobalPriority, nil)
				if err != nil {
					t.Fatal(err)
				}
				childMap[w.ID()] = LocalClient{Worker: w}
				aggProxies = append(aggProxies, core.NewProxy(w.ID(), core.NewSummary()))
				for s := 0; s < 3; s++ {
					wantPower += float64(350 + (r*37+s*113)%130)
				}
			}
			agg, err := NewAggregator(core.NewShifting("agg0", 0, aggProxies...),
				core.GlobalPriority, childMap, WithHierarchyLevel(1))
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			srv, err := ServeRacks(map[string]RackClient{"agg0": agg}, "127.0.0.1:0",
				WithTelemetry(reg))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })

			mkRoom := func(client RackClient) *RoomWorker {
				room, err := NewRoomWorker(
					core.NewShifting("room", 0, core.NewProxy("agg0", core.NewSummary())),
					2500, core.GlobalPriority, map[string]RackClient{"agg0": client})
				if err != nil {
					t.Fatal(err)
				}
				return room
			}

			// Digests requested: the aggregator's digest rides the gather
			// response, level row and per-rack resolution intact.
			on := DialRack(srv.Addr(), 2*time.Second, WithWireCodec(codecName),
				WithDigests(true), WithTelemetry(reg))
			t.Cleanup(func() { on.Close() })
			room := mkRoom(on)
			for i := 0; i < 2; i++ {
				if _, _, err := room.RunPeriod(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			rep, ok := room.FleetReport()
			if !ok {
				t.Fatal("no fleet report")
			}
			if rep.Summary.Racks != 2 || rep.Summary.PowerWatts != wantPower {
				t.Fatalf("digest over %s: %+v, want 2 racks / %v W", codecName, rep.Summary, wantPower)
			}
			foundAggRow := false
			for _, l := range rep.Fleet.Levels {
				if l.Level == 1 && l.Workers == 2 {
					foundAggRow = true
				}
			}
			if !foundAggRow {
				t.Fatalf("aggregator level row did not cross the wire: %+v", rep.Fleet.Levels)
			}
			if codecName == CodecBinary {
				wire := reg.CounterVec("capmaestro_fleet_digest_wire_bytes_total", "", "role")
				if wire.With("server").Value() == 0 || wire.With("client").Value() == 0 {
					t.Fatalf("digest wire bytes not counted: server=%v client=%v",
						wire.With("server").Value(), wire.With("client").Value())
				}
			}

			// Digests not requested: the transport must not ask for them,
			// and the room synthesizes the aggregator as a single rack with
			// no level-1 row.
			off := DialRack(srv.Addr(), 2*time.Second, WithWireCodec(codecName))
			t.Cleanup(func() { off.Close() })
			roomOff := mkRoom(off)
			for i := 0; i < 2; i++ {
				if _, _, err := roomOff.RunPeriod(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			repOff, ok := roomOff.FleetReport()
			if !ok {
				t.Fatal("no synthesized fleet report")
			}
			if repOff.Summary.Racks != 1 {
				t.Fatalf("digest-less transport still resolved racks: %+v", repOff.Summary)
			}
			if repOff.Summary.PowerWatts != wantPower {
				t.Fatalf("synthesized power = %v, want %v", repOff.Summary.PowerWatts, wantPower)
			}
			// Only the room's own row remains, covering its one client —
			// the aggregator's two-worker row never crossed.
			if len(repOff.Fleet.Levels) != 1 || repOff.Fleet.Levels[0].Workers != 1 {
				t.Fatalf("levels appeared without digests on the wire: %+v", repOff.Fleet.Levels)
			}
		})
	}
}

// TestDigestDeltaSquash: under the binary delta protocol, an unchanged
// gather squashes digest and summary together, and the client substitutes
// its cached digest — so delta frames lose no observability data.
func TestDigestDeltaSquash(t *testing.T) {
	w, err := NewRackWorker("dr0", hierRackTree(0), core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	srv, err := ServeRack(w, "127.0.0.1:0", WithDeltaDeadband(1), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := DialRack(srv.Addr(), 2*time.Second, WithWireCodec(CodecBinary),
		WithDigests(true), WithTelemetry(reg))
	t.Cleanup(func() { c.Close() })

	ctx := context.Background()
	_, first, err := c.GatherDigest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("first gather returned no digest")
	}
	_, second, err := c.GatherDigest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if second == nil {
		t.Fatal("delta-squashed gather lost the digest")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cache-substituted digest drifted:\nfirst  %+v\nsecond %+v", first, second)
	}
	hits := reg.CounterVec("capmaestro_rpc_delta_hits_total", "", "role").With("client").Value()
	if hits == 0 {
		t.Fatal("second identical gather did not delta-squash")
	}
}

// TestDigestZeroExtraRPCs pins the piggyback guarantee: enabling digests
// adds zero RPC frames — a batched room period still issues exactly one
// gather frame and one push frame, with the digest bytes riding inside.
func TestDigestZeroExtraRPCs(t *testing.T) {
	run := func(digests bool) (frames, digestBytes float64) {
		reg := telemetry.NewRegistry()
		serve := make(map[string]RackClient)
		var proxies []*core.Node
		for i := 0; i < 4; i++ {
			id := fmt.Sprintf("fr%d", i)
			tree := core.NewShifting(id, 950,
				leaf(id+"-s0", id+"-s0", 0, 430),
				leaf(id+"-s1", id+"-s1", 0, 430),
			)
			w, err := NewRackWorker(id, tree, core.GlobalPriority, nil)
			if err != nil {
				t.Fatal(err)
			}
			serve[id] = w
			proxies = append(proxies, core.NewProxy(id, core.NewSummary()))
		}
		srv, err := ServeRacks(serve, "127.0.0.1:0", WithTelemetry(reg))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		opts := []Option{WithWireCodec(CodecBinary), WithTelemetry(reg)}
		if digests {
			opts = append(opts, WithDigests(true))
		}
		c := DialRack(srv.Addr(), 2*time.Second, opts...)
		t.Cleanup(func() { c.Close() })
		clients := make(map[string]RackClient, len(serve))
		for id := range serve {
			clients[id] = c.Rack(id)
		}
		room, err := NewRoomWorker(core.NewShifting("room", 3000, proxies...), 2900,
			core.GlobalPriority, clients)
		if err != nil {
			t.Fatal(err)
		}
		if _, stats, err := room.RunPeriod(context.Background()); err != nil {
			t.Fatal(err)
		} else if stats.GatherErrors+stats.ApplyErrors+stats.BudgetsHeld != 0 {
			t.Fatalf("period degraded: %+v", stats)
		}
		frames = reg.CounterVec("capmaestro_rpc_batch_frames_total", "", "role").With("server").Value()
		digestBytes = reg.CounterVec("capmaestro_fleet_digest_wire_bytes_total", "", "role").With("server").Value()
		return frames, digestBytes
	}

	framesOff, bytesOff := run(false)
	framesOn, bytesOn := run(true)
	if framesOn != framesOff {
		t.Fatalf("digests changed the frame count: on=%v off=%v", framesOn, framesOff)
	}
	if framesOn != 2 {
		t.Fatalf("batched period used %v frames, want 2", framesOn)
	}
	if bytesOff != 0 {
		t.Fatalf("digest bytes counted with digests off: %v", bytesOff)
	}
	if bytesOn == 0 {
		t.Fatal("digests on but no digest bytes rode the batch frames")
	}
}
