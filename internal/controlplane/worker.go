// Package controlplane implements CapMaestro as a control-plane service
// (Section 5 of the paper): the shifting and capping controllers are
// grouped into workers — rack-level workers that protect their rack's CDUs
// and manage the rack's capping controllers, and a room-level worker that
// protects RPPs, transformers, and the contractual budget.
//
// Every control period the room worker gathers priority-grouped metric
// summaries from the rack workers, runs the budgeting phase over its upper
// tree (where each rack appears as a proxy node carrying only its
// summary), and pushes each rack its budget; rack workers then distribute
// their budget down to individual power supplies. Workers communicate
// through a RackClient transport: in-process for single-binary
// deployments, or JSON-over-TCP (see transport.go) matching the paper's
// worker-VM deployment.
package controlplane

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/slo"
)

// BudgetSink receives the final per-supply budgets a rack worker computes;
// implementations forward them to the servers' capping controllers.
type BudgetSink func(supplyID string, budget power.Watts)

// RackWorker owns the control subtree for one rack (typically the CDU-level
// shifting controllers and the rack's capping-controller endpoints).
type RackWorker struct {
	id     string
	policy core.Policy

	mu   sync.Mutex
	tree *core.Node
	sink BudgetSink

	lastBudget power.Watts
	lastAlloc  *core.Allocation

	log            *slog.Logger
	met            rackMetrics
	budgetLogDelta power.Watts
	budgetSeen     bool

	// dig is the worker's reusable self-digest scratch; GatherDigest
	// rewrites it under mu each call and hands out a pointer, which the
	// in-process caller copies before the next gather wave (the room's
	// pipelined ordering guarantees the waves never overlap).
	dig fleetobs.StatDigest
}

// NewRackWorker creates a rack worker for the given local subtree.
func NewRackWorker(id string, tree *core.Node, policy core.Policy, sink BudgetSink, opts ...Option) (*RackWorker, error) {
	if id == "" {
		return nil, errors.New("controlplane: empty rack worker ID")
	}
	if tree == nil {
		return nil, errors.New("controlplane: nil rack subtree")
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("controlplane: rack %s: %w", id, err)
	}
	o := buildOptions(opts)
	return &RackWorker{
		id: id, policy: policy, tree: tree, sink: sink,
		log:            o.log,
		met:            newRackMetrics(o.reg, id),
		budgetLogDelta: o.budgetLogDelta,
	}, nil
}

// ID returns the worker's identifier.
func (w *RackWorker) ID() string { return w.id }

// SetTree atomically replaces the worker's subtree; callers refresh leaf
// demand estimates and shares every control period before gathering.
func (w *RackWorker) SetTree(tree *core.Node) error {
	if tree == nil {
		return errors.New("controlplane: nil rack subtree")
	}
	if err := tree.Validate(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tree = tree
	return nil
}

// Gather computes the metric summary this rack reports upstream.
func (w *RackWorker) Gather(ctx context.Context) (core.Summary, error) {
	if err := ctx.Err(); err != nil {
		return core.Summary{}, err
	}
	span := flightrec.TraceFrom(ctx).StartSpan("rack.gather", w.id, flightrec.ParentIDFrom(ctx))
	w.mu.Lock()
	defer w.mu.Unlock()
	s, err := core.Summarize(w.tree, w.policy)
	span.End(err)
	return s, err
}

// GatherDigest gathers the rack's summary plus its single-rack fleet
// observability digest, derived from the same snapshot under one lock so
// the two never disagree.
func (w *RackWorker) GatherDigest(ctx context.Context) (core.Summary, *fleetobs.StatDigest, error) {
	if err := ctx.Err(); err != nil {
		return core.Summary{}, nil, err
	}
	span := flightrec.TraceFrom(ctx).StartSpan("rack.gather", w.id, flightrec.ParentIDFrom(ctx))
	w.mu.Lock()
	defer w.mu.Unlock()
	s, err := core.Summarize(w.tree, w.policy)
	span.End(err)
	if err != nil {
		return core.Summary{}, nil, err
	}
	rackSelfDigest(&w.dig, w.id, &s, w.lastBudget, w.budgetSeen)
	return s, &w.dig, nil
}

// ApplyBudget distributes the budget assigned by the room worker down the
// rack's subtree and forwards the per-supply budgets to the sink.
func (w *RackWorker) ApplyBudget(ctx context.Context, b power.Watts) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	pt := flightrec.TraceFrom(ctx)
	span := pt.StartSpan("rack.apply", w.id, flightrec.ParentIDFrom(ctx))
	w.mu.Lock()
	defer w.mu.Unlock()
	alloc, err := core.AllocateExplained(w.tree, b, w.policy, pt.ExplainSink())
	span.End(err)
	if err != nil {
		w.met.applyErrors.Inc()
		if w.log != nil {
			w.log.Error("rack budget application failed", "rack", w.id, "budget", float64(b), "err", err)
		}
		return fmt.Errorf("controlplane: rack %s: %w", w.id, err)
	}
	if w.log != nil && w.budgetSeen &&
		math.Abs(float64(b-w.lastBudget)) > float64(w.budgetLogDelta) {
		w.log.Info("rack budget changed", "rack", w.id,
			"old", float64(w.lastBudget), "new", float64(b))
	}
	w.budgetSeen = true
	w.lastBudget = b
	w.lastAlloc = alloc
	w.met.budget.Set(float64(b))
	w.met.applies.Inc()
	if w.sink != nil {
		for supplyID, budget := range alloc.SupplyBudgets {
			w.sink(supplyID, budget)
		}
	}
	return nil
}

// LastBudget returns the most recent budget received from upstream.
func (w *RackWorker) LastBudget() power.Watts {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastBudget
}

// LastAllocation returns the most recent local allocation (nil before the
// first period).
func (w *RackWorker) LastAllocation() *core.Allocation {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastAlloc
}

// RackClient is the transport-facing interface of a rack worker. The room
// worker only ever exchanges summaries and budgets — never per-server
// state — which is what keeps the design scalable (Section 4.1).
type RackClient interface {
	Gather(ctx context.Context) (core.Summary, error)
	ApplyBudget(ctx context.Context, b power.Watts) error
}

// LocalClient adapts an in-process RackWorker to the RackClient interface.
type LocalClient struct{ Worker *RackWorker }

// Gather implements RackClient.
func (c LocalClient) Gather(ctx context.Context) (core.Summary, error) {
	return c.Worker.Gather(ctx)
}

// GatherDigest implements DigestGatherer.
func (c LocalClient) GatherDigest(ctx context.Context) (core.Summary, *fleetobs.StatDigest, error) {
	return c.Worker.GatherDigest(ctx)
}

// ApplyBudget implements RackClient.
func (c LocalClient) ApplyBudget(ctx context.Context, b power.Watts) error {
	return c.Worker.ApplyBudget(ctx, b)
}

// PeriodStats summarizes one room-worker control period.
type PeriodStats struct {
	GatherErrors int
	ApplyErrors  int
	// BudgetsHeld counts racks whose budget push was withheld this period:
	// racks that have never reported a summary, and racks whose last
	// summary is older than the staleness bound.
	BudgetsHeld int
	RacksServed int
	Elapsed     time.Duration
	// Overlap is how long this period's push phase ran concurrently with
	// the next period's gather. Always zero outside RunPipelined.
	Overlap time.Duration
	// Fleet is the period's merged fleet digest reduced to its headline
	// numbers (zero value when digests are off or before the first
	// rollup).
	Fleet fleetobs.DigestSummary
}

// holdReason explains why a rack's budget push was withheld.
type holdReason string

const (
	holdNeverSeen holdReason = "never-gathered"
	holdStale     holdReason = "stale-summary"
)

// RoomWorker protects the upper levels of the power hierarchy. Its tree's
// proxy nodes stand in for rack workers; the map connects proxy node IDs to
// their transports.
//
// Failure semantics: a rack whose gather has never succeeded is never
// pushed a budget — the room either excludes it from allocation (default)
// or reserves a configurable failsafe budget for it (WithFailsafeBudget).
// A rack that has reported before keeps its last summary when gathers
// fail, so the room keeps accounting for its load; once its summary is
// older than the staleness bound (WithStalenessBound) its budget pushes
// are held too, freezing the rack at its last applied budget instead of
// steering it from unboundedly stale state.
type RoomWorker struct {
	policy core.Policy
	budget power.Watts
	racks  map[string]RackClient

	log            *slog.Logger
	met            roomMetrics
	budgetLogDelta power.Watts
	stalenessBound int
	failsafe       power.Watts
	recorder       *flightrec.Recorder
	slo            *slo.Tracker

	// runMu serializes control periods and guards the tree and the
	// per-period scratch below: only a running period writes proxy
	// summaries and runs the allocation engine.
	runMu   sync.Mutex
	tree    *core.Node
	proxies map[string]*core.Node
	engine  *core.Allocator

	// Fan-out machinery, reused every period so steady-state periods stay
	// allocation-free in the control plane itself (the engine snapshot is
	// the one remaining O(tree) allocation per period). gatherF and pushF
	// are separate engines sharing one limiter, so the pipelined runner
	// can overlap period k's push wave with period k+1's gather wave.
	lim      limiter
	gatherF  *fanEngine
	pushF    *fanEngine
	rackList []string // sorted rack IDs: deterministic wave order
	fresh    map[string]core.Summary
	failed   map[string]error
	hold     map[string]holdReason

	// Fleet observability rollup (see internal/fleetobs): dm folds the
	// gather wave's per-rack digests into one fleet digest per period.
	// digests gates the whole plane; history backs /debug/fleet/history.
	digests bool
	dm      digestMerger
	history *fleetobs.History

	// mu guards the observable state below and is never held across rack
	// RPCs, so Healthy, LastStats, and LastAllocation return immediately
	// even while a period's network calls are in flight.
	mu          sync.Mutex
	lastAlloc   *core.Allocation
	lastStats   PeriodStats
	periods     uint64
	rackDown    map[string]bool        // racks whose last gather failed
	rackStale   map[string]int         // consecutive stale periods per rack
	rackSeen    map[string]bool        // racks with at least one good gather
	rackHeld    map[string]bool        // racks whose pushes are being held
	rackBudgets map[string]power.Watts // last budget pushed per rack
	pubFleet    fleetobs.StatDigest    // latest merged fleet digest
	curFleetSum fleetobs.DigestSummary // its headline numbers, for PeriodStats
	fleetWaves  uint64                 // rollups performed (0 = none yet)
	fleetTime   time.Time              // when the latest rollup happened
}

// NewRoomWorker creates a room worker. tree is the upper control tree
// (contractual root, transformers, RPPs) whose proxy nodes' IDs appear as
// keys in racks. budget is the contractual budget for this tree; zero uses
// the tree constraint.
func NewRoomWorker(tree *core.Node, budget power.Watts, policy core.Policy, racks map[string]RackClient, opts ...Option) (*RoomWorker, error) {
	if tree == nil {
		return nil, errors.New("controlplane: nil room tree")
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("controlplane: room tree: %w", err)
	}
	proxies := make(map[string]*core.Node)
	tree.Walk(func(n *core.Node) {
		if n.Proxy != nil {
			proxies[n.ID] = n
		}
	})
	if len(proxies) == 0 {
		return nil, errors.New("controlplane: room tree has no rack proxies")
	}
	for id := range racks {
		if _, ok := proxies[id]; !ok {
			return nil, fmt.Errorf("controlplane: rack client %q has no proxy node", id)
		}
	}
	for id := range proxies {
		if _, ok := racks[id]; !ok {
			return nil, fmt.Errorf("controlplane: proxy node %q has no rack client", id)
		}
	}
	engine, err := core.NewAllocator(tree)
	if err != nil {
		return nil, fmt.Errorf("controlplane: room tree: %w", err)
	}
	o := buildOptions(opts)
	rackIDs := make([]string, 0, len(racks))
	for id := range racks {
		rackIDs = append(rackIDs, id)
	}
	sort.Strings(rackIDs)
	lim := newLimiter(o.rpcConcurrency)
	w := &RoomWorker{
		tree:           tree,
		budget:         budget,
		policy:         policy,
		racks:          racks,
		proxies:        proxies,
		engine:         engine,
		lim:            lim,
		gatherF:        newFanEngine(lim, len(racks)),
		pushF:          newFanEngine(lim, len(racks)),
		rackList:       rackIDs,
		fresh:          make(map[string]core.Summary, len(racks)),
		failed:         make(map[string]error, len(racks)),
		hold:           make(map[string]holdReason, len(racks)),
		log:            o.log,
		met:            newRoomMetrics(o.reg, rackIDs),
		budgetLogDelta: o.budgetLogDelta,
		stalenessBound: o.stalenessBound,
		failsafe:       o.failsafeBudget,
		recorder:       o.recorder,
		slo:            o.slo,
		rackDown:       make(map[string]bool, len(racks)),
		rackStale:      make(map[string]int, len(racks)),
		rackSeen:       make(map[string]bool, len(racks)),
		rackHeld:       make(map[string]bool, len(racks)),
		rackBudgets:    make(map[string]power.Watts, len(racks)),
		digests:        o.digests == nil || *o.digests,
	}
	if w.digests {
		w.history = fleetobs.NewHistory(o.fleetHistory)
		w.gatherF.digests = true
	}
	w.met.racks.Set(float64(len(racks)))
	w.met.budget.Set(float64(budget))
	w.met.unseenRacks.Set(float64(len(racks)))
	return w, nil
}

// failsafeSummary is the conservative stand-in for a rack that has never
// reported: the room reserves exactly b watts for it — floor (CapMin) and
// ceiling (Constraint) — without pretending to know anything about its
// load or priorities.
func failsafeSummary(b power.Watts) core.Summary {
	s := core.NewSummary()
	s.SetLevel(0, b, b, b)
	s.Constraint = b
	return s
}

// RunPeriod executes one full control period: gather summaries from all
// racks in parallel, allocate over the upper tree, and push budgets back in
// parallel. Racks that fail to respond keep their previous budgets; their
// proxies keep the last summary so the room still protects its own limits.
// Racks that have never responded, or whose summaries exceed the staleness
// bound, have their budget pushes held (see the RoomWorker failure
// semantics). No lock observable from Healthy, LastStats, or LastAllocation
// is held while RPCs are in flight; concurrent RunPeriod calls serialize.
//
// A context cancelled before or during the gather phase aborts the period
// with ctx's error without recording rack failures — a shutdown is not a
// rack outage.
func (w *RoomWorker) RunPeriod(ctx context.Context) (*core.Allocation, PeriodStats, error) {
	w.runMu.Lock()
	defer w.runMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, PeriodStats{}, err
	}
	start := time.Now()
	stats := PeriodStats{RacksServed: len(w.racks)}
	if w.log != nil {
		w.log.Debug("control period start", "racks", len(w.racks))
	}

	// With a flight recorder attached, the whole period runs under one
	// trace: a per-period root span, per-phase children, and one RPC span
	// per rack that the rack's own spans (shipped back over the transport)
	// nest under. All span calls no-op when pt is nil.
	var pt *flightrec.PeriodTrace
	if w.recorder.Enabled() {
		pt = flightrec.NewPeriodTrace()
	}
	root := pt.StartSpan("period", "room", "")

	if err := w.gatherPhase(ctx, pt, root.ID(), &stats); err != nil {
		// Cancelled mid-gather (typically clean shutdown): the per-rack
		// context errors carry no signal about rack health, and no period
		// record is written — a shutdown is not a period.
		return nil, stats, err
	}
	alloc := w.allocPhase(pt, root.ID())
	w.pushPhase(ctx, pt, root.ID(), alloc, &stats)

	stats.Elapsed = time.Since(start)
	w.finishPeriod(pt, root, start, alloc, stats)
	return alloc, stats, nil
}

// gatherPhase runs one gather wave over all racks — bounded concurrency,
// batched where the transport allows, no lock held across RPCs — and
// sorts the outcomes into the reused fresh/failed scratch maps. It
// returns ctx's error when the wave was cancelled; gather metrics are
// only recorded for completed waves.
func (w *RoomWorker) gatherPhase(ctx context.Context, pt *flightrec.PeriodTrace, rootID string, stats *PeriodStats) error {
	start := time.Now()
	gatherSpan := pt.StartSpan("gather", "room", rootID)
	e := w.gatherF
	e.reset()
	for _, id := range w.rackList {
		e.add(id, w.racks[id])
	}
	e.gatherWave(ctx, pt, gatherSpan.ID())
	gatherSpan.End(nil)
	clear(w.fresh)
	clear(w.failed)
	for i := range e.calls {
		c := &e.calls[i]
		if c.err != nil {
			w.failed[c.id] = c.err
		} else {
			w.fresh[c.id] = c.summary
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	stats.GatherErrors = len(w.failed)
	w.met.gatherSeconds.ObserveSince(start)
	w.met.gatherErrors.Add(float64(stats.GatherErrors))
	return nil
}

// allocPhase commits the gather outcomes (filling the reused hold map),
// installs fresh summaries into the proxies, and runs the budgeting
// phase on the persistent engine. It touches the tree and engine, so in
// pipelined mode it must not run while a previous period's push wave is
// still in flight (the runner joins the push first).
func (w *RoomWorker) allocPhase(pt *flightrec.PeriodTrace, rootID string) *core.Allocation {
	w.commitGather(w.fresh, w.failed)
	w.buildFleetDigest()

	// Failed racks keep their previous summary; never-seen racks keep
	// their construction-time summary or the failsafe reservation.
	for id, s := range w.fresh {
		*w.proxies[id].Proxy = s
	}
	if w.failsafe > 0 {
		for id, reason := range w.hold {
			if reason == holdNeverSeen {
				*w.proxies[id].Proxy = failsafeSummary(w.failsafe)
			}
		}
	}

	allocStart := time.Now()
	allocSpan := pt.StartSpan("allocate", "room", rootID)
	w.engine.SetExplainSink(pt.ExplainSink())
	w.engine.Run(w.budget, w.policy)
	w.engine.SetExplainSink(nil)
	alloc := w.engine.Snapshot()
	allocSpan.End(nil)
	w.met.allocateSeconds.ObserveSince(allocStart)
	w.noteRackBudgets(alloc)
	return alloc
}

// buildFleetDigest folds the gather wave's per-rack digests into the
// period's fleet rollup and publishes it. It runs from allocPhase — after
// commitGather, between gather waves — so reading the gather engine's
// call slots is race-free even in pipelined mode. Racks whose digest did
// not travel (digest-less transports) are synthesized from their gathered
// summary and last pushed budget, so the rollup stays watt-for-watt
// complete either way; racks that failed this period's gather are counted
// as gather errors and, when riding stale summaries, flagged as stale
// outliers rather than summed from stale watts.
func (w *RoomWorker) buildFleetDigest() {
	if !w.digests {
		return
	}
	w.dm.reset()
	var own fleetobs.LevelStats
	own.Workers = len(w.racks)
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.gatherF.calls {
		c := &w.gatherF.calls[i]
		if c.err != nil {
			own.GatherErrors++
			continue
		}
		b, haveB := w.rackBudgets[c.id]
		w.dm.note(c.id, c.digest, &c.summary, b, haveB)
		own.GatherLatency.Observe(fleetobs.LatencyBounds, c.elapsed.Seconds())
	}
	own.Held = len(w.hold)
	for id, n := range w.rackStale {
		if n > 0 && w.rackSeen[id] {
			own.Stale++
		}
	}
	fleet := w.dm.fold(own)
	// Stale racks are an observer-side judgment — a rack never reports
	// itself stale — so their outlier entries are added after the fold.
	for id, n := range w.rackStale {
		if n > 0 && w.rackSeen[id] {
			fleet.AddOutlier(fleetobs.Outlier{
				Rack:         id,
				Reason:       fleetobs.ReasonStale,
				Score:        2 + float64(n),
				StalePeriods: n,
			})
		}
	}
	w.pubFleet.CopyFrom(fleet)
	w.curFleetSum = fleet.Summary()
	w.fleetWaves++
	w.fleetTime = time.Now()
	w.history.Append(fleetobs.Sample{
		Period:         w.fleetWaves,
		UnixMs:         w.fleetTime.UnixMilli(),
		PowerW:         fleet.PowerW,
		BudgetW:        fleet.BudgetW,
		HeadroomW:      fleet.HeadroomW,
		WorstHeadroomW: fleet.WorstHeadroomW,
		ViolatingRacks: fleet.ViolatingRacks,
		OutlierRacks:   len(fleet.Outliers),
		StaleRacks:     own.Stale,
		HeldRacks:      own.Held,
		GatherErrors:   own.GatherErrors,
	})
	w.met.fleetRacks.Set(float64(fleet.Racks))
	w.met.fleetPower.Set(fleet.PowerW)
	w.met.fleetHeadroom.Set(fleet.HeadroomW)
	w.met.fleetWorstHeadroom.Set(fleet.WorstHeadroomW)
	w.met.fleetViolating.Set(float64(fleet.ViolatingRacks))
	w.met.fleetOutliers.Set(float64(len(fleet.Outliers)))
}

// pushPhase runs one push wave — bounded, batched, no lock across RPCs —
// skipping racks held by the last commitGather. In pipelined mode it runs
// concurrently with the next period's gatherPhase; it reads the hold map
// and alloc filled by its own period's allocPhase, touched by nothing
// else until the wave is joined.
func (w *RoomWorker) pushPhase(ctx context.Context, pt *flightrec.PeriodTrace, rootID string, alloc *core.Allocation, stats *PeriodStats) {
	start := time.Now()
	pushSpan := pt.StartSpan("push", "room", rootID)
	e := w.pushF
	e.reset()
	for _, id := range w.rackList {
		c := e.add(id, w.racks[id])
		if _, held := w.hold[id]; held {
			c.skip = true
			stats.BudgetsHeld++
			w.met.heldPushes.Inc()
			continue
		}
		c.budget = alloc.NodeBudgets[id]
	}
	e.pushWave(ctx, pt, pushSpan.ID())
	for i := range e.calls {
		if c := &e.calls[i]; !c.skip && c.err != nil {
			stats.ApplyErrors++
		}
	}
	pushSpan.End(nil)
	w.met.pushSeconds.ObserveSince(start)
	w.met.applyErrors.Add(float64(stats.ApplyErrors))
}

// finishPeriod publishes a completed period: stats commit, trace record,
// SLO evaluation, and end-of-period logging.
func (w *RoomWorker) finishPeriod(pt *flightrec.PeriodTrace, root *flightrec.ActiveSpan, start time.Time, alloc *core.Allocation, stats PeriodStats) {
	if w.digests {
		// The fleet summary was built by this period's allocPhase; in
		// pipelined mode the next allocPhase cannot have run yet (it waits
		// for this finish), so curFleetSum is still this period's.
		w.mu.Lock()
		stats.Fleet = w.curFleetSum
		w.mu.Unlock()
	}
	w.commitPeriod(alloc, stats)
	root.End(nil)
	w.recordPeriod(pt, start, stats, alloc, nil)
	w.evalSLO()
	w.met.budget.Set(float64(w.budget))
	if w.log != nil {
		if stats.GatherErrors > 0 || stats.ApplyErrors > 0 || stats.BudgetsHeld > 0 {
			w.log.Warn("control period end", "elapsed", stats.Elapsed,
				"gather_errors", stats.GatherErrors, "apply_errors", stats.ApplyErrors,
				"budgets_held", stats.BudgetsHeld)
		} else {
			w.log.Debug("control period end", "elapsed", stats.Elapsed)
		}
	}
}

// pendingPeriod carries period k's state across the pipeline overlap:
// its push wave runs while period k+1 gathers, and the period is
// finished — stats, flight record, callback — once the push joins.
type pendingPeriod struct {
	start time.Time
	pt    *flightrec.PeriodTrace
	root  *flightrec.ActiveSpan
	alloc *core.Allocation
	stats PeriodStats
	done  chan struct{}
	push  time.Duration
}

// RunPipelined executes count control periods back to back, overlapping
// each period's push phase with the next period's gather: period k's
// budgets (computed from gather k) push down while gather k+1 is already
// collecting the next summaries. count <= 0 runs until ctx is cancelled.
//
// Freshness semantics are identical to RunPeriod: budgets pushed in
// period k are always derived from gather k — the overlap never reorders
// a push ahead of the gather that justified it, because allocation k+1
// waits for push k to join. The only lag pipelining adds is wall-clock:
// a rack may receive budget k while already reporting summary k+1.
//
// onPeriod (may be nil) receives each completed period once its push
// wave has joined — so period k's callback fires during period k+1.
// PeriodStats.Overlap reports how long the period's push ran
// concurrently with the next gather. A period whose gather is cancelled
// is never reported; the period whose push was already in flight is.
func (w *RoomWorker) RunPipelined(ctx context.Context, count int, onPeriod func(*core.Allocation, PeriodStats, error)) error {
	w.runMu.Lock()
	defer w.runMu.Unlock()
	var pend *pendingPeriod
	finish := func(p *pendingPeriod) {
		p.stats.Elapsed = time.Since(p.start)
		w.finishPeriod(p.pt, p.root, p.start, p.alloc, p.stats)
		if onPeriod != nil {
			onPeriod(p.alloc, p.stats, nil)
		}
	}
	for k := 0; count <= 0 || k < count; k++ {
		if err := ctx.Err(); err != nil {
			if pend != nil {
				// The pending period's push never launched; like any
				// cancelled period it goes unrecorded.
				pend.root.End(err)
			}
			return err
		}
		start := time.Now()
		stats := PeriodStats{RacksServed: len(w.racks)}
		var pt *flightrec.PeriodTrace
		if w.recorder.Enabled() {
			pt = flightrec.NewPeriodTrace()
		}
		root := pt.StartSpan("period", "room", "")
		if w.log != nil {
			w.log.Debug("control period start", "racks", len(w.racks), "pipelined", true)
		}

		// Launch the previous period's push wave concurrently with this
		// period's gather. The two waves use separate fan engines but
		// share the RPC concurrency limiter.
		if pend != nil {
			p := pend
			p.done = make(chan struct{})
			go func() {
				pushStart := time.Now()
				w.pushPhase(ctx, p.pt, p.root.ID(), p.alloc, &p.stats)
				p.push = time.Since(pushStart)
				close(p.done)
			}()
		}

		gatherStart := time.Now()
		gerr := w.gatherPhase(ctx, pt, root.ID(), &stats)
		gatherElapsed := time.Since(gatherStart)

		// Join the overlapped push before touching the hold map or the
		// engine: allocation k must not race push k-1.
		if pend != nil {
			<-pend.done
			overlap := pend.push
			if gatherElapsed < overlap {
				overlap = gatherElapsed
			}
			pend.stats.Overlap = overlap
			w.met.pipelineOverlap.Observe(overlap.Seconds())
			finish(pend)
			pend = nil
		}
		if gerr != nil {
			// Cancelled mid-gather: shutdown is not a period.
			return gerr
		}

		alloc := w.allocPhase(pt, root.ID())
		pend = &pendingPeriod{start: start, pt: pt, root: root, alloc: alloc, stats: stats}
	}
	// Drain the last period's push synchronously.
	if pend != nil {
		w.pushPhase(ctx, pend.pt, pend.root.ID(), pend.alloc, &pend.stats)
		finish(pend)
	}
	return nil
}

// commitGather records the period's gather outcomes under mu — staleness
// counters, down/recovered and held/resumed transitions — and refills the
// reused hold map with the racks whose budget pushes are held this
// period, keyed by reason.
func (w *RoomWorker) commitGather(fresh map[string]core.Summary, failed map[string]error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, err := range failed {
		w.rackStale[id]++
		w.met.staleByRack[id].Set(float64(w.rackStale[id]))
		if !w.rackDown[id] {
			w.rackDown[id] = true
			if w.log != nil {
				w.log.Warn("rack gather failed", "rack", id, "err", err)
			}
		}
	}
	for id := range fresh {
		w.rackSeen[id] = true
		if w.rackDown[id] {
			w.rackDown[id] = false
			if w.log != nil {
				w.log.Info("rack recovered", "rack", id, "stale_periods", w.rackStale[id])
			}
		}
		if w.rackStale[id] != 0 {
			w.rackStale[id] = 0
			w.met.staleByRack[id].Set(0)
		}
	}
	hold := w.hold
	clear(hold)
	unseen := 0
	for id := range w.racks {
		switch {
		case !w.rackSeen[id]:
			hold[id] = holdNeverSeen
			unseen++
		case w.stalenessBound > 0 && w.rackStale[id] > w.stalenessBound:
			hold[id] = holdStale
		}
	}
	w.met.unseenRacks.Set(float64(unseen))
	for id := range w.racks {
		_, held := hold[id]
		switch {
		case held && !w.rackHeld[id]:
			w.rackHeld[id] = true
			if w.log != nil {
				w.log.Warn("rack budget held", "rack", id, "reason", string(hold[id]))
			}
		case !held && w.rackHeld[id]:
			w.rackHeld[id] = false
			if w.log != nil {
				w.log.Info("rack budget pushes resumed", "rack", id)
			}
		}
	}
}

// commitPeriod publishes the period's results under mu. It runs on every
// completed period, including allocation failures, so the periods counter
// and the last-period stats never go stale while things break.
func (w *RoomWorker) commitPeriod(alloc *core.Allocation, stats PeriodStats) {
	w.mu.Lock()
	if alloc != nil {
		w.lastAlloc = alloc
	}
	w.lastStats = stats
	w.periods++
	w.mu.Unlock()
	w.met.periods.Inc()
}

// recordPeriod writes one completed period (successful or failed at
// allocation) into the flight recorder. Periods aborted by context
// cancellation are never recorded.
func (w *RoomWorker) recordPeriod(pt *flightrec.PeriodTrace, start time.Time, stats PeriodStats, alloc *core.Allocation, err error) {
	if pt == nil {
		return
	}
	rec := flightrec.PeriodRecord{
		TraceID:      pt.TraceID(),
		Start:        start,
		Duration:     stats.Elapsed,
		Label:        "room",
		GatherErrors: stats.GatherErrors,
		ApplyErrors:  stats.ApplyErrors,
		BudgetsHeld:  stats.BudgetsHeld,
		Spans:        pt.Spans(),
		Explains:     pt.Explains(),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	if alloc != nil {
		rec.Infeasible = alloc.Infeasible
	}
	if stats.Fleet.Racks > 0 {
		rec.Fleet = &flightrec.FleetNote{
			Racks:              stats.Fleet.Racks,
			PowerWatts:         stats.Fleet.PowerWatts,
			BudgetWatts:        stats.Fleet.BudgetWatts,
			HeadroomWatts:      stats.Fleet.HeadroomWatts,
			WorstHeadroomWatts: stats.Fleet.WorstHeadroomWatts,
			WorstHeadroomRack:  stats.Fleet.WorstHeadroomRack,
			ViolatingRacks:     stats.Fleet.ViolatingRacks,
			OutlierRacks:       stats.Fleet.OutlierRacks,
		}
	}
	w.recorder.Add(rec)
}

// evalSLO runs one alert-engine evaluation against the period just
// recorded, feeding the tracker every rack's staleness counter. It runs
// after recordPeriod so alert transitions annotate the current period's
// flight-recorder record. Nil tracker no-ops.
func (w *RoomWorker) evalSLO() {
	if w.slo == nil {
		return
	}
	w.mu.Lock()
	samples := make([]slo.Sample, 0, len(w.racks))
	for id := range w.racks {
		samples = append(samples, slo.Sample{
			Signal: slo.SignalRackStalePeriods,
			Label:  id,
			Value:  float64(w.rackStale[id]),
		})
	}
	w.mu.Unlock()
	w.slo.EvalPeriod(w.slo.Uptime(), samples...)
}

// noteRackBudgets updates per-rack budget gauges and logs changes larger
// than the configured delta.
func (w *RoomWorker) noteRackBudgets(alloc *core.Allocation) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id := range w.racks {
		b := alloc.NodeBudgets[id]
		prev, seen := w.rackBudgets[id]
		if w.log != nil && seen && math.Abs(float64(b-prev)) > float64(w.budgetLogDelta) {
			w.log.Info("rack budget changed", "rack", id,
				"old", float64(prev), "new", float64(b))
		}
		w.rackBudgets[id] = b
		w.met.budgetByRack[id].Set(float64(b))
	}
}

// Run executes control periods on the given cadence until the context is
// cancelled, reporting each period's stats to onPeriod (may be nil). A
// period aborted by cancellation is not reported — shutdown produces no
// spurious rack-failure stats.
func (w *RoomWorker) Run(ctx context.Context, period time.Duration, onPeriod func(PeriodStats, error)) {
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		if ctx.Err() != nil {
			return
		}
		_, stats, err := w.RunPeriod(ctx)
		if ctx.Err() != nil {
			return
		}
		if onPeriod != nil {
			onPeriod(stats, err)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// LastAllocation returns the room's most recent upper-tree allocation.
func (w *RoomWorker) LastAllocation() *core.Allocation {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastAlloc
}

// LastStats returns the statistics of the most recent control period (the
// zero value before the first period).
func (w *RoomWorker) LastStats() PeriodStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastStats
}

// FleetReport returns the latest fleet digest rollup for the /debug/fleet
// endpoint. ok is false until the first gather wave completes, or always
// when digests are disabled.
func (w *RoomWorker) FleetReport() (fleetobs.Report, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.digests || w.fleetWaves == 0 {
		return fleetobs.Report{}, false
	}
	return fleetobs.Report{
		Period:  w.fleetWaves,
		Time:    w.fleetTime,
		Summary: w.pubFleet.Summary(),
		Fleet:   w.pubFleet.Clone(),
	}, true
}

// FleetHistory returns the per-period fleet sample ring backing
// /debug/fleet/history (nil when digests are disabled).
func (w *RoomWorker) FleetHistory() *fleetobs.History {
	return w.history
}

// RackFreshness describes one rack's gather freshness, as reported in the
// /healthz detail body.
type RackFreshness struct {
	// StalePeriods counts consecutive control periods since the rack's
	// last successful gather (0 = fresh last period).
	StalePeriods int `json:"stale_periods"`
	// EverGathered reports whether any gather has ever succeeded.
	EverGathered bool `json:"ever_gathered"`
	// Held reports whether the rack's budget pushes are currently held.
	Held bool `json:"held"`
	// LastBudget is the budget most recently pushed to the rack.
	LastBudget power.Watts `json:"last_budget_watts"`
}

// RackFreshness returns per-rack freshness detail for health reporting.
// It never blocks on in-flight rack RPCs.
func (w *RoomWorker) RackFreshness() map[string]RackFreshness {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]RackFreshness, len(w.racks))
	for id := range w.racks {
		out[id] = RackFreshness{
			StalePeriods: w.rackStale[id],
			EverGathered: w.rackSeen[id],
			Held:         w.rackHeld[id],
			LastBudget:   w.rackBudgets[id],
		}
	}
	return out
}

// Healthy reports the room worker's health for a /healthz endpoint: nil
// while the worker can still see at least one rack. It returns an error
// once a completed control period gathered zero fresh summaries — the
// room is then flying blind on stale data. Before the first period the
// worker reports healthy (starting up). It never blocks on in-flight rack
// RPCs.
func (w *RoomWorker) Healthy() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.periods == 0 {
		return nil
	}
	if w.lastStats.RacksServed > 0 && w.lastStats.GatherErrors >= w.lastStats.RacksServed {
		return fmt.Errorf("all %d rack gathers failed last control period", w.lastStats.RacksServed)
	}
	return nil
}

// Degraded reports reduced-but-serving conditions for a warn-level
// /healthz check: nil while every rack is fresh, an error when some
// racks are stale or their budget pushes are held while the room can
// still see at least one rack. (When the room sees nothing at all,
// Healthy reports that — a critical condition, not a degraded one.)
// Before the first period the worker reports undegraded (starting up).
// It never blocks on in-flight rack RPCs.
func (w *RoomWorker) Degraded() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.periods == 0 {
		return nil
	}
	stale, held := 0, 0
	for id := range w.racks {
		if w.rackStale[id] > 0 && w.rackSeen[id] {
			stale++
		}
		if w.rackHeld[id] {
			held++
		}
	}
	if stale == 0 && held == 0 {
		return nil
	}
	return fmt.Errorf("%d rack(s) on stale summaries, %d held", stale, held)
}
