// Package controlplane implements CapMaestro as a control-plane service
// (Section 5 of the paper): the shifting and capping controllers are
// grouped into workers — rack-level workers that protect their rack's CDUs
// and manage the rack's capping controllers, and a room-level worker that
// protects RPPs, transformers, and the contractual budget.
//
// Every control period the room worker gathers priority-grouped metric
// summaries from the rack workers, runs the budgeting phase over its upper
// tree (where each rack appears as a proxy node carrying only its
// summary), and pushes each rack its budget; rack workers then distribute
// their budget down to individual power supplies. Workers communicate
// through a RackClient transport: in-process for single-binary
// deployments, or JSON-over-TCP (see transport.go) matching the paper's
// worker-VM deployment.
package controlplane

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/slo"
)

// BudgetSink receives the final per-supply budgets a rack worker computes;
// implementations forward them to the servers' capping controllers.
type BudgetSink func(supplyID string, budget power.Watts)

// RackWorker owns the control subtree for one rack (typically the CDU-level
// shifting controllers and the rack's capping-controller endpoints).
type RackWorker struct {
	id     string
	policy core.Policy

	mu   sync.Mutex
	tree *core.Node
	sink BudgetSink

	lastBudget power.Watts
	lastAlloc  *core.Allocation

	log            *slog.Logger
	met            rackMetrics
	budgetLogDelta power.Watts
	budgetSeen     bool
}

// NewRackWorker creates a rack worker for the given local subtree.
func NewRackWorker(id string, tree *core.Node, policy core.Policy, sink BudgetSink, opts ...Option) (*RackWorker, error) {
	if id == "" {
		return nil, errors.New("controlplane: empty rack worker ID")
	}
	if tree == nil {
		return nil, errors.New("controlplane: nil rack subtree")
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("controlplane: rack %s: %w", id, err)
	}
	o := buildOptions(opts)
	return &RackWorker{
		id: id, policy: policy, tree: tree, sink: sink,
		log:            o.log,
		met:            newRackMetrics(o.reg, id),
		budgetLogDelta: o.budgetLogDelta,
	}, nil
}

// ID returns the worker's identifier.
func (w *RackWorker) ID() string { return w.id }

// SetTree atomically replaces the worker's subtree; callers refresh leaf
// demand estimates and shares every control period before gathering.
func (w *RackWorker) SetTree(tree *core.Node) error {
	if tree == nil {
		return errors.New("controlplane: nil rack subtree")
	}
	if err := tree.Validate(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tree = tree
	return nil
}

// Gather computes the metric summary this rack reports upstream.
func (w *RackWorker) Gather(ctx context.Context) (core.Summary, error) {
	if err := ctx.Err(); err != nil {
		return core.Summary{}, err
	}
	span := flightrec.TraceFrom(ctx).StartSpan("rack.gather", w.id, flightrec.ParentIDFrom(ctx))
	w.mu.Lock()
	defer w.mu.Unlock()
	s, err := core.Summarize(w.tree, w.policy)
	span.End(err)
	return s, err
}

// ApplyBudget distributes the budget assigned by the room worker down the
// rack's subtree and forwards the per-supply budgets to the sink.
func (w *RackWorker) ApplyBudget(ctx context.Context, b power.Watts) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	pt := flightrec.TraceFrom(ctx)
	span := pt.StartSpan("rack.apply", w.id, flightrec.ParentIDFrom(ctx))
	w.mu.Lock()
	defer w.mu.Unlock()
	alloc, err := core.AllocateExplained(w.tree, b, w.policy, pt.ExplainSink())
	span.End(err)
	if err != nil {
		w.met.applyErrors.Inc()
		if w.log != nil {
			w.log.Error("rack budget application failed", "rack", w.id, "budget", float64(b), "err", err)
		}
		return fmt.Errorf("controlplane: rack %s: %w", w.id, err)
	}
	if w.log != nil && w.budgetSeen &&
		math.Abs(float64(b-w.lastBudget)) > float64(w.budgetLogDelta) {
		w.log.Info("rack budget changed", "rack", w.id,
			"old", float64(w.lastBudget), "new", float64(b))
	}
	w.budgetSeen = true
	w.lastBudget = b
	w.lastAlloc = alloc
	w.met.budget.Set(float64(b))
	w.met.applies.Inc()
	if w.sink != nil {
		for supplyID, budget := range alloc.SupplyBudgets {
			w.sink(supplyID, budget)
		}
	}
	return nil
}

// LastBudget returns the most recent budget received from upstream.
func (w *RackWorker) LastBudget() power.Watts {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastBudget
}

// LastAllocation returns the most recent local allocation (nil before the
// first period).
func (w *RackWorker) LastAllocation() *core.Allocation {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastAlloc
}

// RackClient is the transport-facing interface of a rack worker. The room
// worker only ever exchanges summaries and budgets — never per-server
// state — which is what keeps the design scalable (Section 4.1).
type RackClient interface {
	Gather(ctx context.Context) (core.Summary, error)
	ApplyBudget(ctx context.Context, b power.Watts) error
}

// LocalClient adapts an in-process RackWorker to the RackClient interface.
type LocalClient struct{ Worker *RackWorker }

// Gather implements RackClient.
func (c LocalClient) Gather(ctx context.Context) (core.Summary, error) {
	return c.Worker.Gather(ctx)
}

// ApplyBudget implements RackClient.
func (c LocalClient) ApplyBudget(ctx context.Context, b power.Watts) error {
	return c.Worker.ApplyBudget(ctx, b)
}

// PeriodStats summarizes one room-worker control period.
type PeriodStats struct {
	GatherErrors int
	ApplyErrors  int
	// BudgetsHeld counts racks whose budget push was withheld this period:
	// racks that have never reported a summary, and racks whose last
	// summary is older than the staleness bound.
	BudgetsHeld int
	RacksServed int
	Elapsed     time.Duration
}

// holdReason explains why a rack's budget push was withheld.
type holdReason string

const (
	holdNeverSeen holdReason = "never-gathered"
	holdStale     holdReason = "stale-summary"
)

// RoomWorker protects the upper levels of the power hierarchy. Its tree's
// proxy nodes stand in for rack workers; the map connects proxy node IDs to
// their transports.
//
// Failure semantics: a rack whose gather has never succeeded is never
// pushed a budget — the room either excludes it from allocation (default)
// or reserves a configurable failsafe budget for it (WithFailsafeBudget).
// A rack that has reported before keeps its last summary when gathers
// fail, so the room keeps accounting for its load; once its summary is
// older than the staleness bound (WithStalenessBound) its budget pushes
// are held too, freezing the rack at its last applied budget instead of
// steering it from unboundedly stale state.
type RoomWorker struct {
	policy core.Policy
	budget power.Watts
	racks  map[string]RackClient

	log            *slog.Logger
	met            roomMetrics
	budgetLogDelta power.Watts
	stalenessBound int
	failsafe       power.Watts
	recorder       *flightrec.Recorder
	slo            *slo.Tracker

	// runMu serializes control periods and guards the tree: only RunPeriod
	// writes proxy summaries and walks the tree for allocation.
	runMu   sync.Mutex
	tree    *core.Node
	proxies map[string]*core.Node

	// mu guards the observable state below and is never held across rack
	// RPCs, so Healthy, LastStats, and LastAllocation return immediately
	// even while a period's network calls are in flight.
	mu          sync.Mutex
	lastAlloc   *core.Allocation
	lastStats   PeriodStats
	periods     uint64
	rackDown    map[string]bool        // racks whose last gather failed
	rackStale   map[string]int         // consecutive stale periods per rack
	rackSeen    map[string]bool        // racks with at least one good gather
	rackHeld    map[string]bool        // racks whose pushes are being held
	rackBudgets map[string]power.Watts // last budget pushed per rack
}

// NewRoomWorker creates a room worker. tree is the upper control tree
// (contractual root, transformers, RPPs) whose proxy nodes' IDs appear as
// keys in racks. budget is the contractual budget for this tree; zero uses
// the tree constraint.
func NewRoomWorker(tree *core.Node, budget power.Watts, policy core.Policy, racks map[string]RackClient, opts ...Option) (*RoomWorker, error) {
	if tree == nil {
		return nil, errors.New("controlplane: nil room tree")
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("controlplane: room tree: %w", err)
	}
	proxies := make(map[string]*core.Node)
	tree.Walk(func(n *core.Node) {
		if n.Proxy != nil {
			proxies[n.ID] = n
		}
	})
	if len(proxies) == 0 {
		return nil, errors.New("controlplane: room tree has no rack proxies")
	}
	for id := range racks {
		if _, ok := proxies[id]; !ok {
			return nil, fmt.Errorf("controlplane: rack client %q has no proxy node", id)
		}
	}
	for id := range proxies {
		if _, ok := racks[id]; !ok {
			return nil, fmt.Errorf("controlplane: proxy node %q has no rack client", id)
		}
	}
	o := buildOptions(opts)
	rackIDs := make([]string, 0, len(racks))
	for id := range racks {
		rackIDs = append(rackIDs, id)
	}
	w := &RoomWorker{
		tree:           tree,
		budget:         budget,
		policy:         policy,
		racks:          racks,
		proxies:        proxies,
		log:            o.log,
		met:            newRoomMetrics(o.reg, rackIDs),
		budgetLogDelta: o.budgetLogDelta,
		stalenessBound: o.stalenessBound,
		failsafe:       o.failsafeBudget,
		recorder:       o.recorder,
		slo:            o.slo,
		rackDown:       make(map[string]bool, len(racks)),
		rackStale:      make(map[string]int, len(racks)),
		rackSeen:       make(map[string]bool, len(racks)),
		rackHeld:       make(map[string]bool, len(racks)),
		rackBudgets:    make(map[string]power.Watts, len(racks)),
	}
	w.met.racks.Set(float64(len(racks)))
	w.met.budget.Set(float64(budget))
	w.met.unseenRacks.Set(float64(len(racks)))
	return w, nil
}

// failsafeSummary is the conservative stand-in for a rack that has never
// reported: the room reserves exactly b watts for it — floor (CapMin) and
// ceiling (Constraint) — without pretending to know anything about its
// load or priorities.
func failsafeSummary(b power.Watts) core.Summary {
	s := core.NewSummary()
	s.SetLevel(0, b, b, b)
	s.Constraint = b
	return s
}

// RunPeriod executes one full control period: gather summaries from all
// racks in parallel, allocate over the upper tree, and push budgets back in
// parallel. Racks that fail to respond keep their previous budgets; their
// proxies keep the last summary so the room still protects its own limits.
// Racks that have never responded, or whose summaries exceed the staleness
// bound, have their budget pushes held (see the RoomWorker failure
// semantics). No lock observable from Healthy, LastStats, or LastAllocation
// is held while RPCs are in flight; concurrent RunPeriod calls serialize.
//
// A context cancelled before or during the gather phase aborts the period
// with ctx's error without recording rack failures — a shutdown is not a
// rack outage.
func (w *RoomWorker) RunPeriod(ctx context.Context) (*core.Allocation, PeriodStats, error) {
	w.runMu.Lock()
	defer w.runMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, PeriodStats{}, err
	}
	start := time.Now()
	stats := PeriodStats{RacksServed: len(w.racks)}
	if w.log != nil {
		w.log.Debug("control period start", "racks", len(w.racks))
	}

	// With a flight recorder attached, the whole period runs under one
	// trace: a per-period root span, per-phase children, and one RPC span
	// per rack that the rack's own spans (shipped back over the transport)
	// nest under. All span calls no-op when pt is nil.
	var pt *flightrec.PeriodTrace
	if w.recorder.Enabled() {
		pt = flightrec.NewPeriodTrace()
	}
	root := pt.StartSpan("period", "room", "")

	// Metrics gathering phase, in parallel across racks, without any lock
	// held across the RPCs.
	gatherSpan := pt.StartSpan("gather", "room", root.ID())
	type gatherResult struct {
		id      string
		summary core.Summary
		err     error
	}
	results := make(chan gatherResult, len(w.racks))
	for id, client := range w.racks {
		go func(id string, client RackClient) {
			span := pt.StartSpan("rpc.gather", id, gatherSpan.ID())
			s, err := client.Gather(flightrec.ContextWithSpan(ctx, pt, span))
			if err == nil {
				err = s.Validate()
			}
			span.End(err)
			results <- gatherResult{id: id, summary: s, err: err}
		}(id, client)
	}
	fresh := make(map[string]core.Summary, len(w.racks))
	failed := make(map[string]error)
	for range w.racks {
		r := <-results
		if r.err != nil {
			failed[r.id] = r.err
			continue
		}
		fresh[r.id] = r.summary
	}
	gatherSpan.End(nil)
	if err := ctx.Err(); err != nil {
		// Cancelled mid-gather (typically clean shutdown): the per-rack
		// context errors carry no signal about rack health, and no period
		// record is written — a shutdown is not a period.
		return nil, stats, err
	}
	stats.GatherErrors = len(failed)
	w.met.gatherSeconds.ObserveSince(start)
	w.met.gatherErrors.Add(float64(stats.GatherErrors))

	// Commit gather outcomes and decide which pushes are held this period.
	hold := w.commitGather(fresh, failed)

	// Install summaries into the proxies (guarded by runMu). Failed racks
	// keep their previous summary; never-seen racks keep their
	// construction-time summary or the failsafe reservation.
	for id, s := range fresh {
		*w.proxies[id].Proxy = s
	}
	if w.failsafe > 0 {
		for id, reason := range hold {
			if reason == holdNeverSeen {
				*w.proxies[id].Proxy = failsafeSummary(w.failsafe)
			}
		}
	}

	// Budgeting phase over the upper tree.
	allocStart := time.Now()
	allocSpan := pt.StartSpan("allocate", "room", root.ID())
	alloc, err := core.AllocateExplained(w.tree, w.budget, w.policy, pt.ExplainSink())
	allocSpan.End(err)
	if err != nil {
		stats.Elapsed = time.Since(start)
		if w.log != nil {
			w.log.Error("room allocation failed", "err", err)
		}
		w.commitPeriod(nil, stats)
		root.End(err)
		w.recordPeriod(pt, start, stats, nil, err)
		w.evalSLO()
		return nil, stats, err
	}
	w.met.allocateSeconds.ObserveSince(allocStart)
	w.noteRackBudgets(alloc)

	// Push budgets down, in parallel, skipping held racks. Like the gather
	// phase, no lock is held across the RPCs.
	pushStart := time.Now()
	pushSpan := pt.StartSpan("push", "room", root.ID())
	errs := make(chan error, len(w.racks))
	pushed := 0
	for id, client := range w.racks {
		if _, held := hold[id]; held {
			stats.BudgetsHeld++
			w.met.heldPushes.Inc()
			continue
		}
		pushed++
		go func(id string, client RackClient) {
			span := pt.StartSpan("rpc.apply", id, pushSpan.ID())
			e := client.ApplyBudget(flightrec.ContextWithSpan(ctx, pt, span), alloc.NodeBudgets[id])
			span.End(e)
			errs <- e
		}(id, client)
	}
	for i := 0; i < pushed; i++ {
		if e := <-errs; e != nil {
			stats.ApplyErrors++
		}
	}
	pushSpan.End(nil)
	w.met.pushSeconds.ObserveSince(pushStart)
	w.met.applyErrors.Add(float64(stats.ApplyErrors))

	stats.Elapsed = time.Since(start)
	w.commitPeriod(alloc, stats)
	root.End(nil)
	w.recordPeriod(pt, start, stats, alloc, nil)
	w.evalSLO()
	w.met.budget.Set(float64(w.budget))
	if w.log != nil {
		if stats.GatherErrors > 0 || stats.ApplyErrors > 0 || stats.BudgetsHeld > 0 {
			w.log.Warn("control period end", "elapsed", stats.Elapsed,
				"gather_errors", stats.GatherErrors, "apply_errors", stats.ApplyErrors,
				"budgets_held", stats.BudgetsHeld)
		} else {
			w.log.Debug("control period end", "elapsed", stats.Elapsed)
		}
	}
	return alloc, stats, nil
}

// commitGather records the period's gather outcomes under mu — staleness
// counters, down/recovered and held/resumed transitions — and returns the
// racks whose budget pushes are held this period, keyed by reason.
func (w *RoomWorker) commitGather(fresh map[string]core.Summary, failed map[string]error) map[string]holdReason {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, err := range failed {
		w.rackStale[id]++
		w.met.staleByRack[id].Set(float64(w.rackStale[id]))
		if !w.rackDown[id] {
			w.rackDown[id] = true
			if w.log != nil {
				w.log.Warn("rack gather failed", "rack", id, "err", err)
			}
		}
	}
	for id := range fresh {
		w.rackSeen[id] = true
		if w.rackDown[id] {
			w.rackDown[id] = false
			if w.log != nil {
				w.log.Info("rack recovered", "rack", id, "stale_periods", w.rackStale[id])
			}
		}
		if w.rackStale[id] != 0 {
			w.rackStale[id] = 0
			w.met.staleByRack[id].Set(0)
		}
	}
	hold := make(map[string]holdReason)
	unseen := 0
	for id := range w.racks {
		switch {
		case !w.rackSeen[id]:
			hold[id] = holdNeverSeen
			unseen++
		case w.stalenessBound > 0 && w.rackStale[id] > w.stalenessBound:
			hold[id] = holdStale
		}
	}
	w.met.unseenRacks.Set(float64(unseen))
	for id := range w.racks {
		_, held := hold[id]
		switch {
		case held && !w.rackHeld[id]:
			w.rackHeld[id] = true
			if w.log != nil {
				w.log.Warn("rack budget held", "rack", id, "reason", string(hold[id]))
			}
		case !held && w.rackHeld[id]:
			w.rackHeld[id] = false
			if w.log != nil {
				w.log.Info("rack budget pushes resumed", "rack", id)
			}
		}
	}
	return hold
}

// commitPeriod publishes the period's results under mu. It runs on every
// completed period, including allocation failures, so the periods counter
// and the last-period stats never go stale while things break.
func (w *RoomWorker) commitPeriod(alloc *core.Allocation, stats PeriodStats) {
	w.mu.Lock()
	if alloc != nil {
		w.lastAlloc = alloc
	}
	w.lastStats = stats
	w.periods++
	w.mu.Unlock()
	w.met.periods.Inc()
}

// recordPeriod writes one completed period (successful or failed at
// allocation) into the flight recorder. Periods aborted by context
// cancellation are never recorded.
func (w *RoomWorker) recordPeriod(pt *flightrec.PeriodTrace, start time.Time, stats PeriodStats, alloc *core.Allocation, err error) {
	if pt == nil {
		return
	}
	rec := flightrec.PeriodRecord{
		TraceID:      pt.TraceID(),
		Start:        start,
		Duration:     stats.Elapsed,
		Label:        "room",
		GatherErrors: stats.GatherErrors,
		ApplyErrors:  stats.ApplyErrors,
		BudgetsHeld:  stats.BudgetsHeld,
		Spans:        pt.Spans(),
		Explains:     pt.Explains(),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	if alloc != nil {
		rec.Infeasible = alloc.Infeasible
	}
	w.recorder.Add(rec)
}

// evalSLO runs one alert-engine evaluation against the period just
// recorded, feeding the tracker every rack's staleness counter. It runs
// after recordPeriod so alert transitions annotate the current period's
// flight-recorder record. Nil tracker no-ops.
func (w *RoomWorker) evalSLO() {
	if w.slo == nil {
		return
	}
	w.mu.Lock()
	samples := make([]slo.Sample, 0, len(w.racks))
	for id := range w.racks {
		samples = append(samples, slo.Sample{
			Signal: slo.SignalRackStalePeriods,
			Label:  id,
			Value:  float64(w.rackStale[id]),
		})
	}
	w.mu.Unlock()
	w.slo.EvalPeriod(w.slo.Uptime(), samples...)
}

// noteRackBudgets updates per-rack budget gauges and logs changes larger
// than the configured delta.
func (w *RoomWorker) noteRackBudgets(alloc *core.Allocation) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id := range w.racks {
		b := alloc.NodeBudgets[id]
		prev, seen := w.rackBudgets[id]
		if w.log != nil && seen && math.Abs(float64(b-prev)) > float64(w.budgetLogDelta) {
			w.log.Info("rack budget changed", "rack", id,
				"old", float64(prev), "new", float64(b))
		}
		w.rackBudgets[id] = b
		w.met.budgetByRack[id].Set(float64(b))
	}
}

// Run executes control periods on the given cadence until the context is
// cancelled, reporting each period's stats to onPeriod (may be nil). A
// period aborted by cancellation is not reported — shutdown produces no
// spurious rack-failure stats.
func (w *RoomWorker) Run(ctx context.Context, period time.Duration, onPeriod func(PeriodStats, error)) {
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		if ctx.Err() != nil {
			return
		}
		_, stats, err := w.RunPeriod(ctx)
		if ctx.Err() != nil {
			return
		}
		if onPeriod != nil {
			onPeriod(stats, err)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// LastAllocation returns the room's most recent upper-tree allocation.
func (w *RoomWorker) LastAllocation() *core.Allocation {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastAlloc
}

// LastStats returns the statistics of the most recent control period (the
// zero value before the first period).
func (w *RoomWorker) LastStats() PeriodStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastStats
}

// RackFreshness describes one rack's gather freshness, as reported in the
// /healthz detail body.
type RackFreshness struct {
	// StalePeriods counts consecutive control periods since the rack's
	// last successful gather (0 = fresh last period).
	StalePeriods int `json:"stale_periods"`
	// EverGathered reports whether any gather has ever succeeded.
	EverGathered bool `json:"ever_gathered"`
	// Held reports whether the rack's budget pushes are currently held.
	Held bool `json:"held"`
	// LastBudget is the budget most recently pushed to the rack.
	LastBudget power.Watts `json:"last_budget_watts"`
}

// RackFreshness returns per-rack freshness detail for health reporting.
// It never blocks on in-flight rack RPCs.
func (w *RoomWorker) RackFreshness() map[string]RackFreshness {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]RackFreshness, len(w.racks))
	for id := range w.racks {
		out[id] = RackFreshness{
			StalePeriods: w.rackStale[id],
			EverGathered: w.rackSeen[id],
			Held:         w.rackHeld[id],
			LastBudget:   w.rackBudgets[id],
		}
	}
	return out
}

// Healthy reports the room worker's health for a /healthz endpoint: nil
// while the worker can still see at least one rack. It returns an error
// once a completed control period gathered zero fresh summaries — the
// room is then flying blind on stale data. Before the first period the
// worker reports healthy (starting up). It never blocks on in-flight rack
// RPCs.
func (w *RoomWorker) Healthy() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.periods == 0 {
		return nil
	}
	if w.lastStats.RacksServed > 0 && w.lastStats.GatherErrors >= w.lastStats.RacksServed {
		return fmt.Errorf("all %d rack gathers failed last control period", w.lastStats.RacksServed)
	}
	return nil
}

// Degraded reports reduced-but-serving conditions for a warn-level
// /healthz check: nil while every rack is fresh, an error when some
// racks are stale or their budget pushes are held while the room can
// still see at least one rack. (When the room sees nothing at all,
// Healthy reports that — a critical condition, not a degraded one.)
// Before the first period the worker reports undegraded (starting up).
// It never blocks on in-flight rack RPCs.
func (w *RoomWorker) Degraded() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.periods == 0 {
		return nil
	}
	stale, held := 0, 0
	for id := range w.racks {
		if w.rackStale[id] > 0 && w.rackSeen[id] {
			stale++
		}
		if w.rackHeld[id] {
			held++
		}
	}
	if stale == 0 && held == 0 {
		return nil
	}
	return fmt.Errorf("%d rack(s) on stale summaries, %d held", stale, held)
}
