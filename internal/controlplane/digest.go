package controlplane

import (
	"context"
	"sort"

	"capmaestro/internal/core"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/power"
)

// DigestGatherer is the optional interface a RackClient implements to
// piggyback a fleet observability digest on gathers. RackWorker,
// Aggregator, LocalClient, TCPClient, and RackHandle all implement it;
// plain RackClients still work — the caller synthesizes a single-rack
// digest from the summary instead (see digestMerger.note).
type DigestGatherer interface {
	GatherDigest(ctx context.Context) (core.Summary, *fleetobs.StatDigest, error)
}

// gatherMaybeDigest gathers from w, asking for a digest when the request
// wants one and the worker can produce it.
func gatherMaybeDigest(ctx context.Context, w RackClient, want bool) (core.Summary, *fleetobs.StatDigest, error) {
	if want {
		if dg, ok := w.(DigestGatherer); ok {
			return dg.GatherDigest(ctx)
		}
	}
	s, err := w.Gather(ctx)
	return s, nil, err
}

// rackSelfDigest fills d with a single rack's contribution to the fleet
// rollup, derived from its freshly gathered summary and the last budget
// pushed to it. haveBudget is false before the first push; headroom then
// measures against the rack's own constraint, which is what the budget
// would converge to absent contention.
func rackSelfDigest(d *fleetobs.StatDigest, id string, s *core.Summary, budget power.Watts, haveBudget bool) {
	d.Reset()
	demand := float64(s.TotalDemand())
	d.Racks = 1
	d.PowerW = demand
	d.RequestW = float64(s.TotalRequest())
	d.CapMinW = float64(s.TotalCapMin())
	limit := float64(s.Constraint)
	if haveBudget {
		limit = float64(budget)
		d.BudgetW = limit
	}
	headroom := limit - demand
	d.HeadroomW = headroom
	d.WorstHeadroomW = headroom
	d.WorstHeadroomRack = id
	// Headroom is observed as a fraction of demand so racks of very
	// different sizes land in comparable buckets.
	scale := demand
	if scale < 1 {
		scale = 1
	}
	frac := headroom / scale
	d.Headroom.Observe(fleetobs.HeadroomBounds, frac)
	switch {
	case headroom < 0:
		d.ViolatingRacks = 1
		d.ViolationW = -headroom
		d.AddOutlier(fleetobs.Outlier{
			Rack:      id,
			Reason:    fleetobs.ReasonCapExceeded,
			Score:     1 - frac,
			PowerW:    demand,
			HeadroomW: headroom,
		})
	case frac < fleetobs.LowHeadroomFrac:
		d.AddOutlier(fleetobs.Outlier{
			Rack:      id,
			Reason:    fleetobs.ReasonLowHeadroom,
			Score:     fleetobs.LowHeadroomFrac - frac,
			PowerW:    demand,
			HeadroomW: headroom,
		})
	}
}

// digestMerger folds child digests into one rollup per gather wave. It
// keeps a per-child scratch digest so steady state reuses every buffer:
// note copies (or synthesizes) each child's digest, fold merges them in
// deterministic child order and appends this tier's own level row.
type digestMerger struct {
	children map[string]*fleetobs.StatDigest
	order    []string
	acc      fleetobs.StatDigest
}

// reset forgets the previous wave's children (their scratch digests are
// kept for reuse).
func (m *digestMerger) reset() {
	m.order = m.order[:0]
}

// note records one child's contribution: its own digest when it sent one,
// else a single-rack digest synthesized from the summary, so a fleet
// built from digest-less workers still rolls up watt-for-watt.
func (m *digestMerger) note(id string, dig *fleetobs.StatDigest, s *core.Summary, budget power.Watts, haveBudget bool) {
	if m.children == nil {
		m.children = make(map[string]*fleetobs.StatDigest)
	}
	d := m.children[id]
	if d == nil {
		d = &fleetobs.StatDigest{}
		m.children[id] = d
	}
	if dig != nil {
		d.CopyFrom(dig)
	} else {
		rackSelfDigest(d, id, s, budget, haveBudget)
	}
	m.order = append(m.order, id)
}

// fold merges every noted child into the accumulator (sorted by child ID,
// so the merge order — and therefore float rounding — is deterministic)
// and stamps this tier's level row on top. The returned digest is the
// merger's scratch accumulator: copy it out before the next fold.
func (m *digestMerger) fold(own fleetobs.LevelStats) *fleetobs.StatDigest {
	sort.Strings(m.order)
	m.acc.Reset()
	for _, id := range m.order {
		m.acc.Merge(m.children[id])
	}
	if own.Level == 0 {
		own.Level = m.acc.NextLevel()
	}
	m.acc.AddLevel(&own)
	return &m.acc
}
