package controlplane

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"capmaestro/internal/core"
)

// BenchmarkTransport measures the wire cost of the gather hot path —
// encode request, decode request, encode response, decode response —
// through the production codecs and delta tracker, over in-memory pipes
// so codec work dominates rather than kernel socket overhead. One op is a
// full gather sweep across `racks` connections; the wireB/rpc metric is
// total bytes on the wire divided by individual RPCs, the number
// BENCH_transport.json records.
//
//	go test ./internal/controlplane -run '^$' -bench BenchmarkTransport -benchtime 1000x
func BenchmarkTransport(b *testing.B) {
	for _, racks := range []int{1, 64, 1024} {
		for _, cfg := range []struct {
			name  string
			codec string
			delta bool
		}{
			{"json", CodecJSON, false},
			{"binary", CodecBinary, false},
			{"binary-delta", CodecBinary, true},
		} {
			b.Run(fmt.Sprintf("%s/racks=%d", cfg.name, racks), func(b *testing.B) {
				benchTransport(b, cfg.codec, cfg.delta, racks)
			})
		}
	}
}

func benchTransport(b *testing.B, codecName string, delta bool, racks int) {
	conns := make([]*benchConn, racks)
	for i := range conns {
		conns[i] = newBenchConn(b, codecName, delta)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range conns {
			if err := c.gather(delta); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	var wire int64
	for _, c := range conns {
		wire += c.c2s.n + c.s2c.n
	}
	b.ReportMetric(float64(wire)/float64(b.N)/float64(racks), "wireB/rpc")
}

// countingWriter tallies bytes passed through to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// splitRW joins independent read and write halves into the io.ReadWriter
// a client codec binds to.
type splitRW struct {
	io.Reader
	io.Writer
}

// benchConn is one simulated rack connection: the client codec end, the
// server codec end (negotiated via detectServerCodec exactly as
// serveConn does), the server's delta tracker, and the client's cached
// summary. Request/response structs live on the conn so the measured
// loop takes no heap allocations of its own.
type benchConn struct {
	client codec
	server codec
	delta  *deltaTracker

	c2s *countingWriter
	s2c *countingWriter

	summary core.Summary // the rack's (static) gather result
	cached  core.Summary // client-side cache for delta resolution
	have    bool

	reqC, reqS   *wireRequest
	respC, respS *wireResponse
}

func newBenchConn(b *testing.B, codecName string, delta bool) *benchConn {
	b.Helper()
	reqPipe := &bytes.Buffer{}
	respPipe := &bytes.Buffer{}
	c := &benchConn{
		c2s:   &countingWriter{w: reqPipe},
		s2c:   &countingWriter{w: respPipe},
		reqC:  &wireRequest{},
		reqS:  &wireRequest{},
		respC: &wireResponse{},
		respS: &wireResponse{},
	}
	c.client = newClientCodec(codecName, splitRW{respPipe, c.c2s})
	c.summary = core.NewSummary()
	c.summary.Constraint = 12800
	c.summary.SetLevel(3, 800, 1950.5, 1950.5)
	c.summary.SetLevel(2, 640, 2210.25, 2100)
	c.summary.SetLevel(1, 320, 4400, 3875.75)
	c.summary.SetLevel(0, 0, 5120, 2048)
	if delta {
		c.delta = &deltaTracker{}
	}

	// First exchange carries the binary preamble and negotiates the
	// server codec; two more warm every reusable buffer (codec frame
	// buffers, pipe capacity, delta tracker state) so the measured loop
	// is steady state.
	if err := c.client.WriteRequest(&wireRequest{Op: opGather}); err != nil {
		b.Fatal(err)
	}
	srv, err := detectServerCodec(bufio.NewReader(reqPipe), c.s2c, CodecAuto)
	if err != nil {
		b.Fatal(err)
	}
	c.server = srv
	if err := c.finishWarmupGather(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c.gather(delta); err != nil {
			b.Fatal(err)
		}
	}
	c.c2s.n, c.s2c.n = 0, 0
	return c
}

// finishWarmupGather completes the first exchange, whose request was
// already written during codec negotiation.
func (c *benchConn) finishWarmupGather() error {
	if err := c.server.ReadRequest(c.reqS); err != nil {
		return err
	}
	return c.finishExchange()
}

// gather runs one full RPC: the client encodes a gather (advertising its
// cache when the delta path is on), the server decodes it, squashes
// through the delta tracker, responds, and the client decodes, resolving
// unchanged frames from its cache — the same steps serveConn and
// TCPClient perform.
func (c *benchConn) gather(delta bool) error {
	*c.reqC = wireRequest{Op: opGather, HaveCached: delta && c.have}
	if err := c.client.WriteRequest(c.reqC); err != nil {
		return err
	}
	if err := c.server.ReadRequest(c.reqS); err != nil {
		return err
	}
	return c.finishExchange()
}

func (c *benchConn) finishExchange() error {
	*c.respS = wireResponse{OK: true, Summary: &c.summary}
	c.delta.squash(c.reqS, c.respS)
	if err := c.server.WriteResponse(c.respS); err != nil {
		return err
	}
	if err := c.client.ReadResponse(c.respC); err != nil {
		return err
	}
	switch {
	case c.respC.Unchanged:
		if !c.have {
			return errors.New("unchanged frame without client cache")
		}
	case c.respC.Summary != nil:
		c.cached = *c.respC.Summary
		c.have = true
	default:
		return errors.New("gather response without summary")
	}
	return nil
}
