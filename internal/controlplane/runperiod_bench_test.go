package controlplane

import (
	"context"
	"fmt"
	"testing"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
)

// benchStubClient answers gathers with a fixed pre-built summary and
// swallows pushes, so the benchmark measures only the room-side fan-out
// and allocation machinery.
type benchStubClient struct{ s core.Summary }

func (c *benchStubClient) Gather(context.Context) (core.Summary, error) { return c.s, nil }
func (c *benchStubClient) ApplyBudget(context.Context, power.Watts) error {
	return nil
}

// BenchmarkRoomRunPeriod measures one full gather→allocate→push control
// period over 64 in-process stub racks. The per-period steady state
// should stay near allocation-free: the fan-out engine, hold maps, and
// allocator are all reused, leaving the engine snapshot as the dominant
// remaining per-period allocation.
func BenchmarkRoomRunPeriod(b *testing.B) {
	const racks = 64
	clients := make(map[string]RackClient, racks)
	proxies := make([]*core.Node, 0, racks)
	for i := 0; i < racks; i++ {
		id := fmt.Sprintf("br%03d", i)
		s := core.NewSummary()
		s.SetLevel(0, 270*8, 450*8, 450*8)
		s.Constraint = 950 * 4
		clients[id] = &benchStubClient{s: s}
		proxies = append(proxies, core.NewProxy(id, core.NewSummary()))
	}
	room, err := NewRoomWorker(core.NewShifting("room", 0, proxies...),
		racks*450*7, core.GlobalPriority, clients)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, stats, err := room.RunPeriod(ctx); err != nil {
		b.Fatal(err)
	} else if stats.GatherErrors+stats.ApplyErrors+stats.BudgetsHeld != 0 {
		b.Fatalf("warmup period degraded: %+v", stats)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := room.RunPeriod(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
