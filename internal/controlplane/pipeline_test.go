package controlplane

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
)

// freshnessClient returns a distinct demand on every Gather
// (300 + 10·count) and records every pushed budget, so the budget value
// itself reveals which gather it was derived from.
type freshnessClient struct {
	mu      sync.Mutex
	gathers int
	pushes  []power.Watts
	latency time.Duration
}

func (c *freshnessClient) Gather(ctx context.Context) (core.Summary, error) {
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gathers++
	d := power.Watts(300 + 10*c.gathers)
	s := core.NewSummary()
	s.SetLevel(0, 270, d, d)
	s.Constraint = d
	return s, nil
}

func (c *freshnessClient) ApplyBudget(ctx context.Context, b power.Watts) error {
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pushes = append(c.pushes, b)
	return nil
}

// TestPipelinedFreshness is the freshness regression for RunPipelined:
// even with period k's push overlapping period k+1's gather, the budget
// pushed for period k must be derived from period k's own gather — never
// a stale or not-yet-committed one. The rack's demand encodes the gather
// ordinal and flows through allocation unchanged (unconstrained tree,
// zero room budget → demand-following), so pushes[k] must equal
// 300 + 10·(k+1) exactly.
func TestPipelinedFreshness(t *testing.T) {
	fc := &freshnessClient{}
	tree := core.NewShifting("room", 0, core.NewProxy("r1", core.NewSummary()))
	room, err := NewRoomWorker(tree, 0, core.GlobalPriority, map[string]RackClient{"r1": fc})
	if err != nil {
		t.Fatal(err)
	}
	const periods = 6
	if err := room.RunPipelined(context.Background(), periods, nil); err != nil {
		t.Fatal(err)
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.gathers != periods {
		t.Fatalf("gathers = %d, want %d", fc.gathers, periods)
	}
	if len(fc.pushes) != periods {
		t.Fatalf("pushes = %d, want %d", len(fc.pushes), periods)
	}
	for k, got := range fc.pushes {
		want := power.Watts(300 + 10*(k+1))
		if math.Abs(float64(got-want)) > 0.001 {
			t.Errorf("push %d = %v W, want %v W (stale gather leaked through the pipeline)", k, got, want)
		}
	}
}

// TestPipelinedMatchesSequential runs the same three-level fixture both
// ways and asserts identical terminal budgets, period counts, and clean
// stats.
func TestPipelinedMatchesSequential(t *testing.T) {
	seqRoom, seqBudgets := threeLevelHierarchy(t, core.GlobalPriority)
	pipRoom, pipBudgets := threeLevelHierarchy(t, core.GlobalPriority)
	ctx := context.Background()
	const periods = 3
	for i := 0; i < periods; i++ {
		if _, stats, err := seqRoom.RunPeriod(ctx); err != nil {
			t.Fatal(err)
		} else if stats.Overlap != 0 {
			t.Errorf("sequential period reported overlap %v", stats.Overlap)
		}
	}
	var (
		mu       sync.Mutex
		reported int
	)
	err := pipRoom.RunPipelined(ctx, periods, func(alloc *core.Allocation, stats PeriodStats, err error) {
		mu.Lock()
		defer mu.Unlock()
		reported++
		if err != nil {
			t.Errorf("pipelined period error: %v", err)
		}
		if stats.GatherErrors+stats.ApplyErrors+stats.BudgetsHeld != 0 {
			t.Errorf("pipelined period degraded: %+v", stats)
		}
		if alloc == nil {
			t.Error("pipelined period reported nil allocation")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if reported != periods {
		t.Fatalf("onPeriod fired %d times, want %d", reported, periods)
	}
	if len(seqBudgets) == 0 || len(seqBudgets) != len(pipBudgets) {
		t.Fatalf("budget maps differ in size: %d vs %d", len(seqBudgets), len(pipBudgets))
	}
	for supply, want := range seqBudgets {
		if got := pipBudgets[supply]; math.Abs(float64(got-want)) > 0.001 {
			t.Errorf("budget[%s]: pipelined %v, sequential %v", supply, got, want)
		}
	}
}

// TestPipelinedOverlapRecorded: with slow racks, consecutive periods must
// actually overlap, and PeriodStats.Overlap must say so.
func TestPipelinedOverlapRecorded(t *testing.T) {
	clients := map[string]RackClient{
		"r1": &freshnessClient{latency: 10 * time.Millisecond},
		"r2": &freshnessClient{latency: 10 * time.Millisecond},
	}
	tree := core.NewShifting("room", 0,
		core.NewProxy("r1", core.NewSummary()),
		core.NewProxy("r2", core.NewSummary()))
	room, err := NewRoomWorker(tree, 0, core.GlobalPriority, clients)
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu       sync.Mutex
		overlaps []time.Duration
	)
	err = room.RunPipelined(context.Background(), 4, func(_ *core.Allocation, stats PeriodStats, err error) {
		if err != nil {
			t.Errorf("period error: %v", err)
		}
		mu.Lock()
		overlaps = append(overlaps, stats.Overlap)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var max time.Duration
	for _, o := range overlaps[:len(overlaps)-1] { // final push drains without a gather to hide behind
		if o > max {
			max = o
		}
	}
	if max < time.Millisecond {
		t.Errorf("max overlap %v; pushes never hid behind gathers (overlaps: %v)", max, overlaps)
	}
}

// TestPipelinedCancellation: a cancelled context stops the loop with
// context.Canceled and no goroutine is left pushing.
func TestPipelinedCancellation(t *testing.T) {
	fc := &freshnessClient{latency: 5 * time.Millisecond}
	tree := core.NewShifting("room", 0, core.NewProxy("r1", core.NewSummary()))
	room, err := NewRoomWorker(tree, 0, core.GlobalPriority, map[string]RackClient{"r1": fc})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if err := room.RunPipelined(ctx, 0, nil); err == nil {
		t.Fatal("unbounded pipelined run returned nil after cancel")
	}
	// RunPeriod still works afterwards: the worker is not wedged.
	if _, _, err := room.RunPeriod(context.Background()); err != nil {
		t.Fatalf("RunPeriod after cancelled pipeline: %v", err)
	}
}
