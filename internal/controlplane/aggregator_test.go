package controlplane

import (
	"context"
	"math"
	"sync"
	"testing"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
)

// threeLevelHierarchy builds room → 2 rows → 2 racks each → 2 servers each
// (8 servers total), with one high-priority server in the last rack.
func threeLevelHierarchy(t *testing.T, policy core.Policy) (*RoomWorker, map[string]power.Watts) {
	t.Helper()
	budgets := make(map[string]power.Watts)
	var mu sync.Mutex
	sink := func(supplyID string, b power.Watts) {
		mu.Lock()
		budgets[supplyID] = b
		mu.Unlock()
	}

	mkRack := func(row, rack int) *RackWorker {
		id := rackID(row, rack)
		var leaves []*core.Node
		for srv := 0; srv < 2; srv++ {
			supply := id + "-s" + string(rune('0'+srv))
			prio := core.Priority(0)
			if row == 1 && rack == 1 && srv == 1 {
				prio = 1 // the one high-priority server, in the last rack
			}
			leaves = append(leaves, core.NewLeaf(supply, core.SupplyLeaf{
				SupplyID: supply, ServerID: supply, Priority: prio, Share: 1,
				CapMin: 270, CapMax: 490, Demand: 450,
			}))
		}
		w, err := NewRackWorker(id, core.NewShifting(id, 950, leaves...), policy, sink)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	var rowClients = make(map[string]RackClient)
	for row := 0; row < 2; row++ {
		rackClients := make(map[string]RackClient)
		var proxies []*core.Node
		for rack := 0; rack < 2; rack++ {
			id := rackID(row, rack)
			rackClients[id] = LocalClient{Worker: mkRack(row, rack)}
			proxies = append(proxies, core.NewProxy(id, core.NewSummary()))
		}
		rowTree := core.NewShifting(rowID(row), 1900, proxies...)
		agg, err := NewAggregator(rowTree, policy, rackClients)
		if err != nil {
			t.Fatal(err)
		}
		rowClients[rowID(row)] = agg
	}
	roomTree := core.NewShifting("room", 0,
		core.NewProxy(rowID(0), core.NewSummary()),
		core.NewProxy(rowID(1), core.NewSummary()),
	)
	room, err := NewRoomWorker(roomTree, 2500, policy, rowClients)
	if err != nil {
		t.Fatal(err)
	}
	return room, budgets
}

func rackID(row, rack int) string {
	return "row" + string(rune('0'+row)) + "-rack" + string(rune('0'+rack))
}
func rowID(row int) string { return "row" + string(rune('0'+row)) }

// monolithicThreeLevel computes the same allocation in one tree.
func monolithicThreeLevel(policy core.Policy) map[string]power.Watts {
	var rows []*core.Node
	for row := 0; row < 2; row++ {
		var racks []*core.Node
		for rack := 0; rack < 2; rack++ {
			id := rackID(row, rack)
			var leaves []*core.Node
			for srv := 0; srv < 2; srv++ {
				supply := id + "-s" + string(rune('0'+srv))
				prio := core.Priority(0)
				if row == 1 && rack == 1 && srv == 1 {
					prio = 1
				}
				leaves = append(leaves, core.NewLeaf(supply, core.SupplyLeaf{
					SupplyID: supply, ServerID: supply, Priority: prio, Share: 1,
					CapMin: 270, CapMax: 490, Demand: 450,
				}))
			}
			racks = append(racks, core.NewShifting(id, 950, leaves...))
		}
		rows = append(rows, core.NewShifting(rowID(row), 1900, racks...))
	}
	return core.MustAllocate(core.NewShifting("room", 0, rows...), 2500, policy).SupplyBudgets
}

// TestThreeLevelHierarchyMatchesMonolithic: stacking an aggregator between
// room and racks changes nothing about the budgets, for every policy —
// the summaries carry all the information the upper levels need.
func TestThreeLevelHierarchyMatchesMonolithic(t *testing.T) {
	for _, policy := range []core.Policy{core.NoPriority, core.LocalPriority, core.GlobalPriority} {
		t.Run(policy.String(), func(t *testing.T) {
			room, budgets := threeLevelHierarchy(t, policy)
			if _, stats, err := room.RunPeriod(context.Background()); err != nil {
				t.Fatal(err)
			} else if stats.GatherErrors+stats.ApplyErrors != 0 {
				t.Fatalf("stats: %+v", stats)
			}
			want := monolithicThreeLevel(policy)
			if len(want) != 8 {
				t.Fatalf("monolithic budget count = %d", len(want))
			}
			for supply, wb := range want {
				if got := budgets[supply]; math.Abs(float64(got-wb)) > 0.001 {
					t.Errorf("budget[%s] = %v, want %v", supply, got, wb)
				}
			}
		})
	}
}

// TestGlobalPriorityThroughThreeLevels: the high-priority server in the
// last rack receives its full demand under Global Priority even though the
// power comes from servers two aggregation levels away.
func TestGlobalPriorityThroughThreeLevels(t *testing.T) {
	room, budgets := threeLevelHierarchy(t, core.GlobalPriority)
	if _, _, err := room.RunPeriod(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Total demand 8×450 = 3600 > 2500: capping is active.
	hi := budgets["row1-rack1-s1"]
	if !power.ApproxEqual(hi, 450, 0.001) {
		t.Errorf("high-priority budget = %v, want full 450", hi)
	}
	var total power.Watts
	for _, b := range budgets {
		total += b
	}
	if total > 2500+0.001 {
		t.Errorf("total %v exceeds the room budget", total)
	}
}

func TestAggregatorValidation(t *testing.T) {
	if _, err := NewAggregator(nil, core.GlobalPriority, nil); err == nil {
		t.Error("nil tree should fail")
	}
	noProxy := core.NewShifting("t", 0, leaf("a", "A", 0, 400))
	if _, err := NewAggregator(noProxy, core.GlobalPriority, nil); err == nil {
		t.Error("proxyless tree should fail")
	}
	tree := core.NewShifting("t", 0, core.NewProxy("p", core.NewSummary()))
	if _, err := NewAggregator(tree, core.GlobalPriority, map[string]RackClient{}); err == nil {
		t.Error("missing client should fail")
	}
	tree2 := core.NewShifting("t2", 0, core.NewProxy("p2", core.NewSummary()))
	if _, err := NewAggregator(tree2, core.GlobalPriority,
		map[string]RackClient{"p2": LocalClient{}, "ghost": LocalClient{}}); err == nil {
		t.Error("client without proxy should fail")
	}
}

func TestAggregatorToleratesChildFailure(t *testing.T) {
	okWorker, err := NewRackWorker("ok", core.NewShifting("ok", 0, leaf("a", "A", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := core.NewShifting("agg", 0,
		core.NewProxy("ok", core.NewSummary()),
		core.NewProxy("dead", core.NewSummary()),
	)
	agg, err := NewAggregator(tree, core.GlobalPriority, map[string]RackClient{
		"ok":   LocalClient{Worker: okWorker},
		"dead": failingClient{},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := agg.Gather(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The healthy child's summary still flows up.
	if s.TotalCapMin() < 270 {
		t.Errorf("summary missing healthy child: %+v", s)
	}
	// ApplyBudget budgets the healthy child; the dead child has never been
	// gathered, so its push is held rather than attempted.
	if err := agg.ApplyBudget(context.Background(), 800); err != nil {
		t.Errorf("never-gathered child should be held, not pushed: %v", err)
	}
	if agg.LastBudget() != 800 || agg.LastAllocation() == nil {
		t.Error("aggregator state not updated")
	}
	if b := okWorker.LastBudget(); b < 270 {
		t.Errorf("healthy child budget = %v", b)
	}
}

// TestAggregatorHoldsNeverGatheredChild pins the held-child semantics
// directly: a child whose gather has never succeeded receives no
// ApplyBudget call, and starts receiving budgets once it recovers.
func TestAggregatorHoldsNeverGatheredChild(t *testing.T) {
	okWorker, err := NewRackWorker("ok", core.NewShifting("ok", 0, leaf("a", "A", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	darkWorker, err := NewRackWorker("dark", core.NewShifting("dark", 0, leaf("b", "B", 0, 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	dark := &switchableClient{inner: LocalClient{Worker: darkWorker}, gatherFails: true}
	tree := core.NewShifting("agg", 0,
		core.NewProxy("ok", core.NewSummary()),
		core.NewProxy("dark", core.NewSummary()),
	)
	agg, err := NewAggregator(tree, core.GlobalPriority, map[string]RackClient{
		"ok":   LocalClient{Worker: okWorker},
		"dark": dark,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := agg.Gather(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := agg.ApplyBudget(context.Background(), 900); err != nil {
			t.Fatal(err)
		}
	}
	if n := dark.pushCount(); n != 0 {
		t.Fatalf("never-gathered child received %d pushes", n)
	}
	dark.setGatherFails(false)
	if _, err := agg.Gather(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := agg.ApplyBudget(context.Background(), 900); err != nil {
		t.Fatal(err)
	}
	if n := dark.pushCount(); n != 1 {
		t.Errorf("recovered child pushes = %d, want 1", n)
	}
	if b := darkWorker.LastBudget(); b < 270 {
		t.Errorf("recovered child budget = %v, want at least its Pcap_min", b)
	}
}
