package controlplane

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
)

// gatherFailClient always fails to gather; budget pushes succeed.
type gatherFailClient struct{ inner RackClient }

func (c gatherFailClient) Gather(ctx context.Context) (core.Summary, error) {
	return core.Summary{}, errors.New("injected gather failure")
}

func (c gatherFailClient) ApplyBudget(ctx context.Context, b power.Watts) error {
	return c.inner.ApplyBudget(ctx, b)
}

func telemetryLeaf(id, srv string, demand power.Watts) *core.Node {
	return core.NewLeaf(id, core.SupplyLeaf{
		SupplyID: id, ServerID: srv, Priority: 0, Share: 1,
		CapMin: 270, CapMax: 490, Demand: demand,
	})
}

func telemetryRoom(t *testing.T, reg *telemetry.Registry, wrap func(RackClient) RackClient) *RoomWorker {
	t.Helper()
	mkRack := func(id, supply, srv string) RackClient {
		w, err := NewRackWorker(id,
			core.NewShifting(id, 600, telemetryLeaf(supply, srv, 400)),
			core.GlobalPriority, nil, WithTelemetry(reg))
		if err != nil {
			t.Fatal(err)
		}
		return LocalClient{Worker: w}
	}
	good := mkRack("rack-good", "g-ps", "g")
	bad := wrap(mkRack("rack-bad", "b-ps", "b"))
	tree := core.NewShifting("room", 1200,
		core.NewProxy("rack-good", core.NewSummary()),
		core.NewProxy("rack-bad", core.NewSummary()),
	)
	room, err := NewRoomWorker(tree, 1000, core.GlobalPriority,
		map[string]RackClient{"rack-good": good, "rack-bad": bad},
		WithTelemetry(reg), WithLogger(slog.New(slog.NewTextHandler(discard{}, nil))))
	if err != nil {
		t.Fatal(err)
	}
	return room
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestRoomWorkerTelemetry asserts phase-latency histograms and
// gather-error counters advance under an injected failing RackClient, and
// that the staleness gauge tracks consecutive failed periods.
func TestRoomWorkerTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	room := telemetryRoom(t, reg, func(c RackClient) RackClient { return gatherFailClient{inner: c} })

	for i := 0; i < 2; i++ {
		if _, _, err := room.RunPeriod(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`capmaestro_controlplane_gather_errors_total 2`,
		`capmaestro_controlplane_apply_errors_total 0`,
		`capmaestro_controlplane_periods_total 2`,
		`capmaestro_controlplane_phase_seconds_count{phase="gather"} 2`,
		`capmaestro_controlplane_phase_seconds_count{phase="allocate"} 2`,
		`capmaestro_controlplane_phase_seconds_count{phase="push"} 2`,
		`capmaestro_controlplane_racks 2`,
		`capmaestro_controlplane_budget_watts 1000`,
		`capmaestro_controlplane_rack_stale_periods{rack="rack-bad"} 2`,
		`capmaestro_controlplane_rack_stale_periods{rack="rack-good"} 0`,
		`capmaestro_rack_applies_total{rack="rack-good"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	stats := room.LastStats()
	if stats.GatherErrors != 1 || stats.RacksServed != 2 {
		t.Errorf("LastStats = %+v, want 1 gather error over 2 racks", stats)
	}
	if err := room.Healthy(); err != nil {
		t.Errorf("room with one live rack should be healthy, got %v", err)
	}
}

// TestRoomWorkerHealthFlips verifies /healthz semantics: the room turns
// unhealthy only when every rack fails to gather.
func TestRoomWorkerHealthFlips(t *testing.T) {
	reg := telemetry.NewRegistry()
	mk := func(id, supply, srv string) *RackWorker {
		w, err := NewRackWorker(id,
			core.NewShifting(id, 600, telemetryLeaf(supply, srv, 400)),
			core.GlobalPriority, nil)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := mk("ra", "a-ps", "a"), mk("rb", "b-ps", "b")
	tree := core.NewShifting("room", 1200,
		core.NewProxy("ra", core.NewSummary()), core.NewProxy("rb", core.NewSummary()))
	room, err := NewRoomWorker(tree, 1000, core.GlobalPriority, map[string]RackClient{
		"ra": gatherFailClient{inner: LocalClient{Worker: a}},
		"rb": gatherFailClient{inner: LocalClient{Worker: b}},
	}, WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if err := room.Healthy(); err != nil {
		t.Errorf("pre-first-period room should report healthy, got %v", err)
	}
	if _, _, err := room.RunPeriod(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := room.Healthy(); err == nil {
		t.Error("room with all racks failing should be unhealthy")
	}
}

// TestTransportTelemetry checks RPC latency, byte, connection, and error
// metrics on both sides of the TCP transport.
func TestTransportTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	worker, err := NewRackWorker("rack",
		core.NewShifting("rack", 600, telemetryLeaf("s-ps", "s", 400)),
		core.GlobalPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeRack(worker, "127.0.0.1:0", WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := DialRack(srv.Addr(), time.Second, WithTelemetry(reg))
	defer client.Close()

	ctx := context.Background()
	if _, err := client.Gather(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.ApplyBudget(ctx, 400); err != nil {
		t.Fatal(err)
	}
	// A client pointed at a dead address counts a client-side RPC error.
	bogus := DialRack("127.0.0.1:1", 50*time.Millisecond, WithTelemetry(reg))
	defer bogus.Close()
	if err := bogus.Ping(ctx); err == nil {
		t.Fatal("expected ping error against dead address")
	}

	// Let the server finish accounting its side.
	deadline := time.Now().Add(2 * time.Second)
	check := func() []string {
		var sb strings.Builder
		reg.WritePrometheus(&sb)
		out := sb.String()
		var missing []string
		for _, want := range []string{
			`capmaestro_rpc_seconds_count{role="client",op="gather"} 1`,
			`capmaestro_rpc_seconds_count{role="client",op="budget"} 1`,
			`capmaestro_rpc_seconds_count{role="client",op="ping"} 2`,
			`capmaestro_rpc_seconds_count{role="server",op="gather"} 1`,
			`capmaestro_rpc_seconds_count{role="server",op="budget"} 1`,
			`capmaestro_rpc_errors_total{role="client",op="ping"} 1`,
			// Two connections per side: gathers/pings on one, budget
			// pushes on the dedicated push channel.
			`capmaestro_rpc_open_connections{role="client"} 2`,
			`capmaestro_rpc_open_connections{role="server"} 2`,
		} {
			if !strings.Contains(out, want) {
				missing = append(missing, want)
			}
		}
		return missing
	}
	var missing []string
	for {
		if missing = check(); len(missing) == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(missing) > 0 {
		var sb strings.Builder
		reg.WritePrometheus(&sb)
		t.Errorf("exposition missing %v\n%s", missing, sb.String())
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "capmaestro_rpc_bytes_total") &&
			strings.HasSuffix(line, " 0") {
			t.Errorf("byte counter did not advance: %s", line)
		}
	}
}

// TestRoomWorkerSLOAndDegraded drives a room with one permanently
// failing rack: the staleness samples fed through WithSLO must fire the
// rack-stale warn rule, Degraded must report the held rack, and the
// /healthz rollup must show "warn" while still serving 200.
func TestRoomWorkerSLOAndDegraded(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracker, err := slo.New(slo.Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	mkRack := func(id, supply, srv string) RackClient {
		w, err := NewRackWorker(id,
			core.NewShifting(id, 600, telemetryLeaf(supply, srv, 400)),
			core.GlobalPriority, nil)
		if err != nil {
			t.Fatal(err)
		}
		return LocalClient{Worker: w}
	}
	tree := core.NewShifting("room", 1200,
		core.NewProxy("rack-good", core.NewSummary()),
		core.NewProxy("rack-bad", core.NewSummary()),
	)
	room, err := NewRoomWorker(tree, 1000, core.GlobalPriority,
		map[string]RackClient{
			"rack-good": mkRack("rack-good", "g-ps", "g"),
			"rack-bad":  gatherFailClient{inner: mkRack("rack-bad", "b-ps", "b")},
		}, WithSLO(tracker))
	if err != nil {
		t.Fatal(err)
	}

	if err := room.Degraded(); err != nil {
		t.Errorf("pre-first-period Degraded = %v, want nil", err)
	}

	// The default rack-stale rule fires at ≥3 consecutive stale periods.
	for i := 0; i < 4; i++ {
		if _, _, err := room.RunPeriod(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	alerts := tracker.ActiveAlerts()
	found := false
	for _, a := range alerts {
		if a.Rule == "rack-stale" && a.Label == "rack-bad" {
			found = true
		}
		if a.Label == "rack-good" {
			t.Errorf("healthy rack raised an alert: %+v", a)
		}
	}
	if !found {
		t.Fatalf("rack-stale{rack-bad} not firing; active = %+v", alerts)
	}
	if tracker.Status() != telemetry.HealthWarn {
		t.Errorf("tracker status = %v, want warn", tracker.Status())
	}
	fired, resolved := tracker.TransitionCounts("rack-stale")
	if fired != 1 || resolved != 0 {
		t.Errorf("rack-stale transitions = %d/%d, want 1 fired, 0 resolved", fired, resolved)
	}

	// The never-gathered rack is held, so the worker reports degraded.
	err = room.Degraded()
	if err == nil || !strings.Contains(err.Error(), "held") {
		t.Errorf("Degraded = %v, want a held-rack report", err)
	}

	// End-to-end /healthz: degraded room + warn-level alert keep the
	// process at 200 with status "warn" — no restart-worthy condition.
	srv := telemetry.NewServer(reg)
	srv.AddWarnCheck("room-degraded", room.Degraded)
	srv.AddLeveledCheck("slo", tracker.HealthCheck)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var report struct {
		Status string            `json:"status"`
		Checks map[string]string `json:"checks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || report.Status != "warn" {
		t.Fatalf("/healthz = %d %+v, want 200 warn", resp.StatusCode, report)
	}
	if !strings.Contains(report.Checks["slo"], "rack-stale") {
		t.Errorf("slo check verdict = %q", report.Checks["slo"])
	}
	if !strings.Contains(report.Checks["room-degraded"], "held") {
		t.Errorf("room-degraded verdict = %q", report.Checks["room-degraded"])
	}
}
