package workload

import (
	"math"
	"math/rand"
	"time"
)

// DiurnalProfile generates the day/night utilization swing the paper's
// introduction motivates ("a data center's total power consumption
// exhibits wide variations"): a sinusoid between a night trough and an
// afternoon peak, with optional per-sample jitter. Simulations use it to
// drive time-varying load through the control plane.
type DiurnalProfile struct {
	// Trough and Peak are the utilization extremes in [0,1], reached at
	// TroughAt and 12 h later respectively.
	Trough, Peak float64
	// TroughAt is the time-of-day of minimum load (e.g. 4 h for 4 AM).
	TroughAt time.Duration
	// Jitter is the standard deviation of multiplicative noise applied
	// per sample (0 disables).
	Jitter float64
}

// DefaultDiurnalProfile is a typical interactive-service swing: 20% at
// 4 AM to 60% mid-afternoon.
func DefaultDiurnalProfile() DiurnalProfile {
	return DiurnalProfile{Trough: 0.20, Peak: 0.60, TroughAt: 4 * time.Hour}
}

// At returns the profile's utilization at the given time of day (times
// beyond 24 h wrap).
func (p DiurnalProfile) At(timeOfDay time.Duration) float64 {
	const day = 24 * time.Hour
	t := timeOfDay % day
	if t < 0 {
		t += day
	}
	phase := 2 * math.Pi * float64(t-p.TroughAt) / float64(day)
	mid := (p.Peak + p.Trough) / 2
	amp := (p.Peak - p.Trough) / 2
	u := mid - amp*math.Cos(phase)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Sample returns the utilization at the given time of day with jitter
// applied, clipped to [0,1]. rng may be nil when Jitter is 0.
func (p DiurnalProfile) Sample(rng *rand.Rand, timeOfDay time.Duration) float64 {
	u := p.At(timeOfDay)
	if p.Jitter > 0 && rng != nil {
		u *= 1 + rng.NormFloat64()*p.Jitter
	}
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}
