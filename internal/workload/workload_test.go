package workload

import (
	"capmaestro/internal/power"

	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestThroughputCalibration(t *testing.T) {
	// The model must reproduce the paper's own measurements.
	cases := []struct {
		consumed, demand float64
		want, tol        float64
	}{
		{314, 420, 0.82, 0.01},  // Table 2 / Fig. 6a, No Priority SA
		{344, 420, 0.87, 0.01},  // Local Priority SA
		{420, 420, 1.00, 0},     // Global Priority SA: uncapped
		{348, 415, 0.88, 0.008}, // Fig. 7b, SB without SPO
		{412, 415, 0.995, 0.01}, // Fig. 7b, SB with SPO (">0.99")
	}
	for _, c := range cases {
		got := NormalizedThroughput(power.Watts(c.consumed), power.Watts(c.demand))
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("throughput(%v/%v) = %.3f, want %.3f ± %.3f",
				c.consumed, c.demand, got, c.want, c.tol)
		}
	}
}

func TestThroughputEdges(t *testing.T) {
	if NormalizedThroughput(500, 400) != 1 {
		t.Error("consumption above demand should be 1")
	}
	if NormalizedThroughput(0, 400) != 0 {
		t.Error("zero consumption should be 0")
	}
	if NormalizedThroughput(400, 0) != 1 {
		t.Error("zero demand should be 1 (nothing to lose)")
	}
	if NormalizedThroughput(-5, 400) != 0 {
		t.Error("negative consumption should be 0")
	}
}

func TestLatencyMatchesPaper(t *testing.T) {
	// 18% throughput loss ↔ 21% latency increase (Section 6.2).
	l := NormalizedLatency(314, 420)
	if math.Abs(l-1.21) > 0.02 {
		t.Errorf("latency(314/420) = %.3f, want ~1.21", l)
	}
	if !math.IsInf(NormalizedLatency(0, 400), 1) {
		t.Error("zero consumption should give infinite latency")
	}
	if NormalizedLatency(400, 400) != 1 {
		t.Error("uncapped latency should be 1")
	}
}

func TestThroughputMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 500))
		pb := math.Abs(math.Mod(b, 500))
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalizedThroughput(power.Watts(pa), 500) <= NormalizedThroughput(power.Watts(pb), 500)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewUtilizationDistributionValidation(t *testing.T) {
	if _, err := NewUtilizationDistribution(nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := NewUtilizationDistribution([][2]float64{{1.5, 1}}); err == nil {
		t.Error("out-of-range utilization should fail")
	}
	if _, err := NewUtilizationDistribution([][2]float64{{0.5, 1}, {0.4, 1}}); err == nil {
		t.Error("non-ascending should fail")
	}
	if _, err := NewUtilizationDistribution([][2]float64{{0.5, -1}}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewUtilizationDistribution([][2]float64{{0.5, 0}}); err == nil {
		t.Error("zero total weight should fail")
	}
}

func TestFigure8Shape(t *testing.T) {
	d := Figure8Distribution()
	m := d.Mean()
	if m < 0.28 || m < 0.25 || m > 0.40 {
		t.Errorf("mean utilization %.3f outside the shared-cluster range", m)
	}
	// Negligible mass above 60% — the property that lets the typical case
	// run uncapped at 39 servers/rack.
	if tail := 1 - d.CDF(0.55); tail > 0.02 {
		t.Errorf("tail above 55%% = %.3f, want ~1%%", tail)
	}
	// Peak near 30%.
	buckets := d.Buckets()
	best, bestP := 0.0, 0.0
	for _, b := range buckets {
		if b[1] > bestP {
			best, bestP = b[0], b[1]
		}
	}
	if best != 0.30 {
		t.Errorf("mode = %v, want 0.30", best)
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	d := Figure8Distribution()
	rng := rand.New(rand.NewSource(5))
	n := 200000
	var sum float64
	counts := map[float64]int{}
	for i := 0; i < n; i++ {
		u := d.Sample(rng)
		sum += u
		counts[u]++
	}
	if got := sum / float64(n); math.Abs(got-d.Mean()) > 0.005 {
		t.Errorf("empirical mean %.4f, want %.4f", got, d.Mean())
	}
	// Empirical bucket frequencies match the PMF.
	for _, b := range d.Buckets() {
		got := float64(counts[b[0]]) / float64(n)
		if math.Abs(got-b[1]) > 0.01 {
			t.Errorf("P(U=%v) = %.4f, want %.4f", b[0], got, b[1])
		}
	}
}

func TestCDF(t *testing.T) {
	d, err := NewUtilizationDistribution([][2]float64{{0.2, 1}, {0.4, 1}, {0.6, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CDF(0.1); got != 0 {
		t.Errorf("CDF(0.1) = %v, want 0", got)
	}
	if got := d.CDF(0.2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("CDF(0.2) = %v, want 0.25", got)
	}
	if got := d.CDF(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(0.5) = %v, want 0.5", got)
	}
	if got := d.CDF(1); got != 1 {
		t.Errorf("CDF(1) = %v, want 1", got)
	}
}

func TestSampleServerUtilClipped(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		u := SampleServerUtil(rng, 0.5, 0.3)
		if u < 0 || u > 1 {
			t.Fatalf("utilization %v out of [0,1]", u)
		}
	}
	// Zero sigma returns the average exactly.
	if u := SampleServerUtil(rng, 0.42, 0); u != 0.42 {
		t.Errorf("zero-sigma sample = %v, want 0.42", u)
	}
}

func TestSampleServerUtilMean(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += SampleServerUtil(rng, 0.4, PerServerSigma)
	}
	if got := sum / float64(n); math.Abs(got-0.4) > 0.005 {
		t.Errorf("mean %v, want ~0.4", got)
	}
}
