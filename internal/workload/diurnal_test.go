package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestDiurnalExtremes(t *testing.T) {
	p := DefaultDiurnalProfile()
	if got := p.At(4 * time.Hour); math.Abs(got-0.20) > 1e-9 {
		t.Errorf("trough = %v, want 0.20", got)
	}
	if got := p.At(16 * time.Hour); math.Abs(got-0.60) > 1e-9 {
		t.Errorf("peak = %v, want 0.60", got)
	}
	// Midpoints between extremes.
	if got := p.At(10 * time.Hour); math.Abs(got-0.40) > 1e-9 {
		t.Errorf("midpoint = %v, want 0.40", got)
	}
}

func TestDiurnalWrapsAndClamps(t *testing.T) {
	p := DefaultDiurnalProfile()
	if p.At(28*time.Hour) != p.At(4*time.Hour) {
		t.Error("times beyond 24h should wrap")
	}
	if p.At(-20*time.Hour) != p.At(4*time.Hour) {
		t.Error("negative times should wrap")
	}
	extreme := DiurnalProfile{Trough: -0.5, Peak: 1.5, TroughAt: 0}
	for h := 0; h < 24; h++ {
		u := extreme.At(time.Duration(h) * time.Hour)
		if u < 0 || u > 1 {
			t.Fatalf("utilization %v out of [0,1] at hour %d", u, h)
		}
	}
}

func TestDiurnalMonotoneMorningRamp(t *testing.T) {
	p := DefaultDiurnalProfile()
	prev := -1.0
	for h := 4; h <= 16; h++ {
		u := p.At(time.Duration(h) * time.Hour)
		if u < prev {
			t.Fatalf("ramp not monotone at hour %d: %v < %v", h, u, prev)
		}
		prev = u
	}
}

func TestDiurnalSampleJitter(t *testing.T) {
	p := DefaultDiurnalProfile()
	p.Jitter = 0.05
	rng := rand.New(rand.NewSource(3))
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		u := p.Sample(rng, 16*time.Hour)
		if u < 0 || u > 1 {
			t.Fatalf("jittered sample %v out of range", u)
		}
		sum += u
	}
	if mean := sum / float64(n); math.Abs(mean-0.60) > 0.01 {
		t.Errorf("jittered mean %v, want ~0.60", mean)
	}
	// Zero jitter: deterministic even with nil rng.
	p.Jitter = 0
	if p.Sample(nil, 4*time.Hour) != p.At(4*time.Hour) {
		t.Error("zero-jitter sample should equal At")
	}
}
