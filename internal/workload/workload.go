// Package workload models the load side of the evaluation: the normalized
// throughput a capped server achieves (calibrated against the paper's own
// Apache measurements), the Figure 8 distribution of data-center average
// CPU utilization (shaped after the Google/WSC profile the paper uses), and
// seeded Monte Carlo samplers for the capacity study.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"capmaestro/internal/power"
)

// ThroughputAlpha is the exponent of the power→throughput model
//
//	T/T_uncapped = (P/P_demand)^α
//
// calibrated from the paper's own numbers: Table 2/Fig. 6a report that a
// 314/420 W budget costs 18% throughput and 344/420 W costs 13%
// (α ≈ 0.69 fits both within half a point), and Fig. 7b's 348/415 W →
// 0.88× and 412/415 W → >0.99× confirm it.
const ThroughputAlpha = 0.69

// NormalizedThroughput returns the throughput of a server consuming
// `consumed` watts relative to running uncapped at `demand` watts, in
// [0, 1]. Power consumption is linear-or-superlinear in performance
// (Section 6.4), so this is a lower bound on delivered performance.
func NormalizedThroughput(consumed, demand power.Watts) float64 {
	if demand <= 0 || consumed >= demand {
		return 1
	}
	if consumed <= 0 {
		return 0
	}
	return math.Pow(float64(consumed/demand), ThroughputAlpha)
}

// NormalizedLatency estimates the relative average latency of a capped
// server, the reciprocal of throughput for a closed-loop load generator
// (the paper's ab client): 0.82× throughput ↔ ~1.21× latency, matching the
// 21% latency increase reported alongside the 18% throughput loss.
func NormalizedLatency(consumed, demand power.Watts) float64 {
	t := NormalizedThroughput(consumed, demand)
	if t <= 0 {
		return math.Inf(1)
	}
	return 1 / t
}

// UtilizationDistribution is a discrete distribution over data-center
// average CPU utilization values, mirroring Figure 8.
type UtilizationDistribution struct {
	utils   []float64 // bucket centers, ascending
	weights []float64 // relative weights
	cum     []float64 // cumulative, normalized to 1
	mean    float64
}

// NewUtilizationDistribution builds a distribution from (utilization,
// weight) pairs. Utilizations must be ascending within [0, 1]; weights
// must be non-negative with a positive sum.
func NewUtilizationDistribution(points [][2]float64) (*UtilizationDistribution, error) {
	if len(points) == 0 {
		return nil, errors.New("workload: empty distribution")
	}
	d := &UtilizationDistribution{}
	var total, prev float64
	prev = -1
	for _, p := range points {
		u, w := p[0], p[1]
		if u < 0 || u > 1 {
			return nil, fmt.Errorf("workload: utilization %v out of [0,1]", u)
		}
		if u <= prev {
			return nil, fmt.Errorf("workload: utilizations not ascending at %v", u)
		}
		if w < 0 {
			return nil, fmt.Errorf("workload: negative weight %v", w)
		}
		prev = u
		d.utils = append(d.utils, u)
		d.weights = append(d.weights, w)
		total += w
	}
	if total <= 0 {
		return nil, errors.New("workload: weights sum to zero")
	}
	cum := 0.0
	for i, w := range d.weights {
		cum += w / total
		d.cum = append(d.cum, cum)
		d.mean += d.utils[i] * (w / total)
	}
	d.cum[len(d.cum)-1] = 1 // absorb rounding
	return d, nil
}

// Figure8Distribution returns the synthetic stand-in for the paper's
// Figure 8 (the Google shared data center profile from Barroso et al.):
// average utilization peaks near 30%, most mass lies between 15% and 50%,
// and the tail above 60% is negligible. The tail weights are calibrated so
// the Table 4 data center supports 39 servers per rack (6318 total) in the
// typical case, the paper's reported capacity.
func Figure8Distribution() *UtilizationDistribution {
	d, err := NewUtilizationDistribution([][2]float64{
		{0.05, 3}, {0.10, 5}, {0.15, 8}, {0.20, 11}, {0.25, 13},
		{0.30, 14}, {0.35, 13}, {0.40, 12}, {0.45, 10}, {0.50, 4},
		{0.55, 1.2}, {0.60, 0.4}, {0.65, 0.1},
	})
	if err != nil {
		panic(err) // static table; unreachable
	}
	return d
}

// Mean returns the distribution's expected utilization.
func (d *UtilizationDistribution) Mean() float64 { return d.mean }

// Sample draws one average-utilization value.
func (d *UtilizationDistribution) Sample(rng *rand.Rand) float64 {
	x := rng.Float64()
	for i, c := range d.cum {
		if x <= c {
			return d.utils[i]
		}
	}
	return d.utils[len(d.utils)-1]
}

// CDF returns P(U ≤ u).
func (d *UtilizationDistribution) CDF(u float64) float64 {
	p := 0.0
	for i, v := range d.utils {
		if v > u {
			break
		}
		if i == 0 {
			p = d.cum[0]
		} else {
			p = d.cum[i]
		}
	}
	if u < d.utils[0] {
		return 0
	}
	return p
}

// Buckets exposes the (utilization, probability) pairs for plotting the
// Figure 8 reproduction.
func (d *UtilizationDistribution) Buckets() [][2]float64 {
	out := make([][2]float64, len(d.utils))
	prev := 0.0
	for i := range d.utils {
		out[i] = [2]float64{d.utils[i], d.cum[i] - prev}
		prev = d.cum[i]
	}
	return out
}

// PerServerSigma is the default standard deviation of per-server
// utilization around the data-center average in the Monte Carlo study
// ("vary the CPU utilization of each server randomly around the average
// value using a normal distribution", Section 6.4).
const PerServerSigma = 0.10

// SampleServerUtil draws one server's utilization around the data-center
// average, clipped to [0, 1].
func SampleServerUtil(rng *rand.Rand, avg, sigma float64) float64 {
	u := avg + rng.NormFloat64()*sigma
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}
