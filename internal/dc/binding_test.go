package dc

import (
	"math/rand"
	"testing"

	"capmaestro/internal/core"
)

func TestAnalyzeBindingAtCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServersPerRack = 36 // Global Priority's worst-case capacity
	d, err := Build(cfg, WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	r, err := d.AnalyzeBinding(rng, core.GlobalPriority, 1.0)
	if err != nil {
		t.Fatal(err)
	}

	// At 36/rack in the worst case, the contractual budget is the
	// bottleneck: all three phase roots saturate, and nothing below them
	// fills to its own limit (each CDU gets ~4.1 kW of the 5.5 kW it
	// could take).
	if r.Binding["contractual"] != 3 {
		t.Errorf("contractual binding = %d, want all 3 phases: %+v", r.Binding["contractual"], r.Binding)
	}
	if r.Binding["cdu"] != 0 {
		t.Errorf("CDUs should not bind while the contract is the bottleneck: %+v", r.Binding)
	}
	if r.Total["cdu"] != 3*162 {
		t.Errorf("CDU total = %d, want 486 (162 per phase)", r.Total["cdu"])
	}
	levels := r.Levels()
	if len(levels) == 0 || levels[0] != "contractual" {
		t.Errorf("levels = %v, want hierarchy order starting at contractual", levels)
	}

	// Relaxing each bottleneck moves the binding down the hierarchy:
	// contract → transformers (2 × 3 phases) → RPPs (18 × 3) → CDUs.
	cfg.ContractualPerPhase = 2e6
	d2, err := Build(cfg, WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.AnalyzeBinding(rng, core.GlobalPriority, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Binding["transformer"] != 6 || r2.Binding["contractual"] != 0 {
		t.Errorf("after raising the contract, transformers should bind: %+v", r2.Binding)
	}

	cfg.TransformerRating = 1e6
	d3, err := Build(cfg, WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := d3.AnalyzeBinding(rng, core.GlobalPriority, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Binding["rpp"] != 18*3 || r3.Binding["transformer"] != 0 {
		t.Errorf("after raising transformers, RPPs should bind: %+v", r3.Binding)
	}

	cfg.RPPRating = 2e5
	d4, err := Build(cfg, WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := d4.AnalyzeBinding(rng, core.GlobalPriority, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Binding["cdu"] != 162*3 || r4.Binding["rpp"] != 0 {
		t.Errorf("after raising RPPs, every CDU should bind: %+v", r4.Binding)
	}
}

func TestAnalyzeBindingLightlyLoaded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServersPerRack = 6
	d, err := Build(cfg, WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	r, err := d.AnalyzeBinding(rng, core.GlobalPriority, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// 6/rack even at full demand fits every level with room to spare:
	// nothing binds.
	for level, n := range r.Binding {
		if n != 0 {
			t.Errorf("unexpected binding at %s: %d nodes", level, n)
		}
	}
}
