package dc

import (
	"math/rand"
	"strings"
	"testing"

	"capmaestro/internal/core"
)

// mustRun executes one simulation and fails the test on error.
func mustRun(t *testing.T, d *DataCenter, rng *rand.Rand, policy core.Policy, avgUtil float64) RunResult {
	t.Helper()
	r, err := d.Run(rng, policy, avgUtil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDefaultConfigMatchesTable4(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Racks() != 162 {
		t.Errorf("racks = %d, want 162", cfg.Racks())
	}
	if cfg.ContractualPerPhase != 700000 || cfg.TransformerRating != 420000 ||
		cfg.RPPRating != 52000 || cfg.CDURatingPerPhase != 6900 {
		t.Error("Table 4 ratings wrong")
	}
	cfg.ServersPerRack = 24
	if cfg.TotalServers() != 3888 {
		t.Errorf("24/rack total = %d, want 3888", cfg.TotalServers())
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	mutations := []func(*Config){
		func(c *Config) { c.ContractualPerPhase = 0 },
		func(c *Config) { c.ContractualMargin = 1.5 },
		func(c *Config) { c.TransformersPerFeed = 0 },
		func(c *Config) { c.ServersPerRack = 0 },
		func(c *Config) { c.HighPriorityFraction = 2 },
		func(c *Config) { c.DeratingFraction = 0 },
		func(c *Config) { c.SplitSpread = 0.6 },
		func(c *Config) { c.Model.CapMin = 100 },
	}
	for i, mut := range mutations {
		cfg := base
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestBuildStructure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServersPerRack = 6
	d, err := Build(cfg, Typical)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.phases) != 3 {
		t.Fatalf("phases = %d", len(d.phases))
	}
	if len(d.servers) != cfg.TotalServers() {
		t.Fatalf("servers = %d, want %d", len(d.servers), cfg.TotalServers())
	}
	// Typical: every server has two leaves (one per feed) in its phase tree.
	for _, ref := range d.servers[:20] {
		if len(ref.leaves) != 2 {
			t.Fatalf("server %s has %d leaves, want 2", ref.id, len(ref.leaves))
		}
	}
	// Leaf count per phase: 2 supplies × servers in that phase.
	var total int
	for _, ph := range d.phases {
		total += len(ph.Leaves())
	}
	if total != 2*cfg.TotalServers() {
		t.Errorf("total leaves = %d, want %d", total, 2*cfg.TotalServers())
	}

	worst, err := Build(cfg, WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range worst.servers[:20] {
		if len(ref.leaves) != 1 {
			t.Fatalf("worst-case server %s has %d leaves, want 1", ref.id, len(ref.leaves))
		}
		if ref.leaves[0].leaf.Share != 1.0 {
			t.Fatalf("worst-case share = %v, want 1", ref.leaves[0].leaf.Share)
		}
	}
}

func TestScenarioString(t *testing.T) {
	if Typical.String() != "Typical Case" || WorstCase.String() != "Worst Case" {
		t.Error("scenario names wrong")
	}
	if !strings.Contains(Scenario(9).String(), "9") {
		t.Error("unknown scenario formatting wrong")
	}
}

func TestWorstCaseNoCappingAt24PerRack(t *testing.T) {
	// The paper's baseline: 3888 servers (24/rack) fit with no capping at
	// all even in the worst case — this is what a data center without
	// power management deploys.
	cfg := DefaultConfig()
	cfg.ServersPerRack = 24
	d, err := Build(cfg, WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	r := mustRun(t, d, rng, core.NoPriority, 1.0)
	if r.MeanCapRatioAll > 0.001 {
		t.Errorf("cap ratio at 24/rack = %v, want ~0", r.MeanCapRatioAll)
	}
	if r.Infeasible {
		t.Error("24/rack must be feasible")
	}
}

func TestWorstCaseNoPriorityCapsEveryoneAt27(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServersPerRack = 27
	d, err := Build(cfg, WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	r := mustRun(t, d, rng, core.NoPriority, 1.0)
	// 27/rack demands ~714 kW/phase against 665 kW: ~7% of dynamic power
	// capped, shared by everyone including high-priority servers.
	if r.MeanCapRatioAll < 0.05 {
		t.Errorf("all-server cap ratio = %v, want >5%%", r.MeanCapRatioAll)
	}
	if r.MeanCapRatioHigh < 0.05 {
		t.Errorf("high-priority cap ratio = %v, want >5%% under No Priority", r.MeanCapRatioHigh)
	}
}

func TestWorstCaseGlobalProtectsHighPriorityAt36(t *testing.T) {
	// The headline result: at 36/rack (5832 servers) Global Priority keeps
	// high-priority servers essentially uncapped in the worst case, while
	// Local Priority cannot.
	cfg := DefaultConfig()
	cfg.ServersPerRack = 36
	d, err := Build(cfg, WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var sumG, sumL float64
	const runs = 10
	for i := 0; i < runs; i++ {
		sumG += mustRun(t, d, rng, core.GlobalPriority, 1.0).MeanCapRatioHigh
		sumL += mustRun(t, d, rng, core.LocalPriority, 1.0).MeanCapRatioHigh
	}
	if g := sumG / runs; g > 0.01 {
		t.Errorf("Global Priority high cap ratio at 36/rack = %v, want <1%%", g)
	}
	if l := sumL / runs; l < 0.01 {
		t.Errorf("Local Priority high cap ratio at 36/rack = %v, want >1%%", l)
	}
}

func TestWorstCaseGlobalFailsAt39(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServersPerRack = 39
	d, err := Build(cfg, WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	r := mustRun(t, d, rng, core.GlobalPriority, 1.0)
	if r.MeanCapRatioHigh < 0.01 {
		t.Errorf("Global at 39/rack high cap ratio = %v, want >1%% (contractual bound)", r.MeanCapRatioHigh)
	}
}

func TestTypicalCaseLowUtilUncapped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServersPerRack = 39
	d, err := Build(cfg, Typical)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	r := mustRun(t, d, rng, core.GlobalPriority, 0.30)
	if r.MeanCapRatioAll > 0.0001 {
		t.Errorf("typical 30%% util cap ratio = %v, want ~0", r.MeanCapRatioAll)
	}
}

func TestTypicalCaseHighUtilCapped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServersPerRack = 45
	d, err := Build(cfg, Typical)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	r := mustRun(t, d, rng, core.GlobalPriority, 0.60)
	if r.MeanCapRatioAll <= 0.01 {
		t.Errorf("typical 60%% util at 45/rack cap ratio = %v, want >1%%", r.MeanCapRatioAll)
	}
	if r.CappedServers == 0 {
		t.Error("expected capped servers")
	}
}

func TestHighPriorityOrderingHoldsInFullHierarchy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServersPerRack = 33
	d, err := Build(cfg, WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	g := mustRun(t, d, rng, core.GlobalPriority, 1.0)
	l := mustRun(t, d, rng, core.LocalPriority, 1.0)
	n := mustRun(t, d, rng, core.NoPriority, 1.0)
	if !(g.MeanCapRatioHigh <= l.MeanCapRatioHigh+1e-9 && l.MeanCapRatioHigh <= n.MeanCapRatioHigh+1e-9) {
		t.Errorf("high cap ratios should order global ≤ local ≤ none: %v %v %v",
			g.MeanCapRatioHigh, l.MeanCapRatioHigh, n.MeanCapRatioHigh)
	}
}

func TestSplitSpreadBuild(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServersPerRack = 6
	cfg.SplitSpread = 0.15
	d, err := Build(cfg, Typical)
	if err != nil {
		t.Fatal(err)
	}
	asymmetric := 0
	for _, ref := range d.servers {
		if ref.leaves[0].leaf.Share != 0.5 {
			asymmetric++
		}
	}
	if asymmetric == 0 {
		t.Error("split spread should produce asymmetric shares")
	}
}
