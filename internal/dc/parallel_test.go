package dc

import (
	"testing"

	"capmaestro/internal/core"
)

// TestParallelStudyDeterminism pins the tentpole guarantee of the parallel
// Monte Carlo engine: for a fixed seed, Workers=1 and Workers=8 produce
// bit-identical study results, because every run derives its rng from the
// seed and its run index alone and results reduce in run-index order.
func TestParallelStudyDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	// Small but non-trivial facility so the test exercises both scenarios
	// (and, for typical, the per-server spread) quickly.
	cfg.TransformersPerFeed = 1
	cfg.RPPsPerTransformer = 2
	cfg.CDUsPerRPP = 3

	for _, scenario := range []Scenario{Typical, WorstCase} {
		for _, mc := range []bool{false, true} {
			if mc && scenario == WorstCase {
				continue // MonteCarloTypical only affects the typical case
			}
			base := StudyOptions{
				TypicalRuns:       26,
				WorstCaseRuns:     9,
				Seed:              42,
				MonteCarloTypical: mc,
				MinPerRack:        6,
				MaxPerRack:        18,
				StepPerRack:       3,
			}
			seq, par := base, base
			seq.Workers = 1
			par.Workers = 8

			cfg := cfg
			cfg.ServersPerRack = 12
			allSeq, highSeq, err := MeanCapRatios(cfg, scenario, core.GlobalPriority, seq)
			if err != nil {
				t.Fatal(err)
			}
			allPar, highPar, err := MeanCapRatios(cfg, scenario, core.GlobalPriority, par)
			if err != nil {
				t.Fatal(err)
			}
			if allSeq != allPar || highSeq != highPar {
				t.Errorf("%v mc=%v: MeanCapRatios differ across worker counts: (%v,%v) vs (%v,%v)",
					scenario, mc, allSeq, highSeq, allPar, highPar)
			}

			resSeq, errSeq := FindCapacity(cfg, scenario, core.GlobalPriority, seq)
			resPar, errPar := FindCapacity(cfg, scenario, core.GlobalPriority, par)
			if (errSeq == nil) != (errPar == nil) {
				t.Fatalf("%v mc=%v: FindCapacity error disagreement: %v vs %v", scenario, mc, errSeq, errPar)
			}
			if resSeq != resPar {
				t.Errorf("%v mc=%v: FindCapacity differs across worker counts: %+v vs %+v",
					scenario, mc, resSeq, resPar)
			}
		}
	}
}

// TestEffectiveTypicalRuns checks the stratified run-count accounting:
// requested counts round up to whole runs per bucket and never under-run.
func TestEffectiveTypicalRuns(t *testing.T) {
	buckets := len(StudyOptions{}.withDefaults().Distribution.Buckets())
	if buckets < 2 {
		t.Fatalf("distribution has %d buckets, want several", buckets)
	}
	cases := []struct{ requested, want int }{
		{1, buckets},                 // fewer than buckets: one run each
		{buckets, buckets},           // exact fit
		{buckets + 1, 2 * buckets},   // round up, never under-run
		{3*buckets - 1, 3 * buckets}, // round up to the next multiple
		{10 * buckets, 10 * buckets}, // exact multiple unchanged
	}
	for _, c := range cases {
		got := StudyOptions{TypicalRuns: c.requested}.EffectiveTypicalRuns()
		if got != c.want {
			t.Errorf("EffectiveTypicalRuns(%d) = %d, want %d", c.requested, got, c.want)
		}
		if got < c.requested {
			t.Errorf("EffectiveTypicalRuns(%d) = %d under-runs the request", c.requested, got)
		}
	}
	// Pure Monte Carlo mode runs exactly what was asked.
	got := StudyOptions{TypicalRuns: 17, MonteCarloTypical: true}.EffectiveTypicalRuns()
	if got != 17 {
		t.Errorf("MonteCarloTypical EffectiveTypicalRuns = %d, want 17", got)
	}
}

// TestRunOnUnbuiltDataCenter checks the error path that replaced the old
// allocation panic.
func TestRunOnUnbuiltDataCenter(t *testing.T) {
	var d DataCenter
	if _, err := d.Run(nil, core.GlobalPriority, 1.0); err == nil {
		t.Error("Run on a zero DataCenter should fail, not panic")
	}
	if _, err := d.AnalyzeBinding(nil, core.GlobalPriority, 1.0); err == nil {
		t.Error("AnalyzeBinding on a zero DataCenter should fail, not panic")
	}
}
