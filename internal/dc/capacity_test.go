package dc

import (
	"testing"

	"capmaestro/internal/core"
)

// fastOpts keeps CI time reasonable; worst-case results are deterministic
// in demand so few runs suffice, and the typical case converges quickly at
// data-center scale.
func fastOpts() StudyOptions {
	return StudyOptions{TypicalRuns: 40, WorstCaseRuns: 8, Seed: 42}
}

// TestFigure9WorstCaseCapacities reproduces the paper's headline bars:
// No Priority 3 888, Local Priority 4 860, Global Priority 5 832 deployable
// servers under a worst-case power emergency.
func TestFigure9WorstCaseCapacities(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity sweep is expensive")
	}
	cfg := DefaultConfig()
	want := map[core.Policy]int{
		core.NoPriority:     3888,
		core.LocalPriority:  4860,
		core.GlobalPriority: 5832,
	}
	for policy, wantServers := range want {
		res, err := FindCapacity(cfg, WorstCase, policy, fastOpts())
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res.TotalServers != wantServers {
			t.Errorf("%v worst-case capacity = %d servers (%d/rack), want %d",
				policy, res.TotalServers, res.ServersPerRack, wantServers)
		}
	}
}

// TestFigure9TypicalCapacity reproduces the typical-case bar: all policies
// support 6 318 servers (39/rack).
func TestFigure9TypicalCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity sweep is expensive")
	}
	cfg := DefaultConfig()
	res, err := FindCapacity(cfg, Typical, core.GlobalPriority, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalServers != 6318 {
		t.Errorf("typical capacity = %d servers (%d/rack), want 6318 (39/rack)",
			res.TotalServers, res.ServersPerRack)
	}
}

func TestCapRatioCurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("curve sweep is expensive")
	}
	cfg := DefaultConfig()
	opts := fastOpts()
	opts.MinPerRack = 24
	opts.MaxPerRack = 42
	opts.StepPerRack = 6
	curveG, err := CapRatioCurve(cfg, WorstCase, core.GlobalPriority, opts)
	if err != nil {
		t.Fatal(err)
	}
	curveN, err := CapRatioCurve(cfg, WorstCase, core.NoPriority, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Cap ratios grow with server count (Fig. 10).
	for i := 1; i < len(curveG); i++ {
		if curveG[i].CapRatioAll+1e-9 < curveG[i-1].CapRatioAll {
			t.Errorf("all-server cap ratio not monotone at %d/rack", curveG[i].ServersPerRack)
		}
	}
	// High-priority servers fare better under Global than No Priority at
	// every count where capping occurs (Fig. 10b).
	for i := range curveG {
		if curveN[i].CapRatioAll > 0.01 &&
			curveG[i].CapRatioHigh > curveN[i].CapRatioHigh+1e-9 {
			t.Errorf("at %d/rack global high ratio %v exceeds no-priority %v",
				curveG[i].ServersPerRack, curveG[i].CapRatioHigh, curveN[i].CapRatioHigh)
		}
	}
	// All-server ratios are similar across policies at the same count (the
	// total shortfall is fixed by physics; policies only move it around).
	for i := range curveG {
		diff := curveG[i].CapRatioAll - curveN[i].CapRatioAll
		if diff > 0.05 || diff < -0.05 {
			t.Errorf("at %d/rack all-server ratios diverge: global %v vs none %v",
				curveG[i].ServersPerRack, curveG[i].CapRatioAll, curveN[i].CapRatioAll)
		}
	}
}

func TestMeanCapRatiosInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServersPerRack = 0
	if _, _, err := MeanCapRatios(cfg, WorstCase, core.GlobalPriority, StudyOptions{}); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := FindCapacity(cfg, WorstCase, core.GlobalPriority, StudyOptions{MinPerRack: -3, MaxPerRack: -1, StepPerRack: 1}); err == nil {
		t.Error("invalid sweep should fail")
	}
}

func TestFindCapacityNoFeasibleCount(t *testing.T) {
	cfg := DefaultConfig()
	// Shrink the contractual budget so even 6/rack fails the criterion in
	// the worst case.
	cfg.ContractualPerPhase = 100000
	opts := fastOpts()
	opts.MaxPerRack = 12
	if _, err := FindCapacity(cfg, WorstCase, core.GlobalPriority, opts); err == nil {
		t.Error("expected no-capacity error")
	}
}
