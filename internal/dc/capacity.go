package dc

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"capmaestro/internal/core"
	"capmaestro/internal/workload"
)

// CapRatioThreshold is the paper's acceptance criterion: below a 1% average
// cap ratio the performance impact is considered negligible.
const CapRatioThreshold = 0.01

// StudyOptions tunes the Monte Carlo study. The paper runs 20 000 typical
// and 1 000 worst-case simulations per server count; because worst-case
// demand is deterministic (only the random priority placement varies),
// results converge with far fewer runs, so the defaults are sized for
// interactive use and can be raised to paper scale with the fields below.
type StudyOptions struct {
	// TypicalRuns is the requested number of typical-scenario simulations
	// per server count (default 200). In the default stratified mode the
	// study runs ceil(TypicalRuns / buckets) simulations per utilization
	// bucket, so the actual count — EffectiveTypicalRuns — is TypicalRuns
	// rounded up to a multiple of the bucket count, never fewer than
	// requested.
	TypicalRuns   int
	WorstCaseRuns int // per server count; default 60
	Seed          int64
	// Workers bounds the number of simulations run concurrently; default
	// runtime.GOMAXPROCS(0). Each worker operates on its own DataCenter
	// replica and every simulation derives its rng from Seed and the run
	// index alone, so results are bit-identical for any worker count.
	Workers      int
	Distribution *workload.UtilizationDistribution // default Figure 8
	MinPerRack   int                               // default 6
	MaxPerRack   int                               // default 45
	StepPerRack  int                               // default 3
	Threshold    float64                           // default CapRatioThreshold
	// MonteCarloTypical forces pure Monte Carlo sampling of the average
	// utilization for the typical scenario, as the paper's 20 000-run
	// methodology does. By default the study stratifies over the
	// distribution's buckets (running EffectiveTypicalRuns split evenly
	// across buckets and weighting by bucket probability), which estimates
	// the same expectation with far lower variance.
	MonteCarloTypical bool
}

func (o StudyOptions) withDefaults() StudyOptions {
	if o.TypicalRuns == 0 {
		o.TypicalRuns = 200
	}
	if o.WorstCaseRuns == 0 {
		o.WorstCaseRuns = 60
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Distribution == nil {
		o.Distribution = workload.Figure8Distribution()
	}
	if o.MinPerRack == 0 {
		o.MinPerRack = 6
	}
	if o.MaxPerRack == 0 {
		o.MaxPerRack = 45
	}
	if o.StepPerRack == 0 {
		o.StepPerRack = 3
	}
	if o.Threshold == 0 {
		o.Threshold = CapRatioThreshold
	}
	return o
}

// EffectiveTypicalRuns reports the number of typical-scenario simulations
// MeanCapRatios actually performs per server count: TypicalRuns under
// MonteCarloTypical, otherwise TypicalRuns rounded up to a whole number of
// runs per utilization bucket.
func (o StudyOptions) EffectiveTypicalRuns() int {
	o = o.withDefaults()
	if o.MonteCarloTypical {
		return o.TypicalRuns
	}
	buckets := len(o.Distribution.Buckets())
	per := (o.TypicalRuns + buckets - 1) / buckets
	if per < 1 {
		per = 1
	}
	return per * buckets
}

// runSeed derives the rng seed for one simulation from the study seed and
// the run index with a splitmix64-style mix, so every run's random stream
// is independent of which worker executes it and of all other runs.
func runSeed(base int64, run int) int64 {
	z := uint64(base) + (uint64(run)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// runSpec describes one planned simulation: the average utilization to run
// at (negative means "sample from the distribution with the run's own
// rng") and the weight of its result in the study mean.
type runSpec struct {
	avgUtil float64
	weight  float64
}

// planRuns expands options into the per-simulation plan for one scenario.
func planRuns(scenario Scenario, opts StudyOptions) []runSpec {
	switch {
	case scenario == Typical && !opts.MonteCarloTypical:
		// Stratified estimate: visit each utilization bucket equally often
		// and weight by its probability. Residual randomness (per-server
		// spread and priority placement) stays Monte Carlo.
		buckets := opts.Distribution.Buckets()
		per := (opts.TypicalRuns + len(buckets) - 1) / len(buckets)
		if per < 1 {
			per = 1
		}
		specs := make([]runSpec, 0, per*len(buckets))
		for _, b := range buckets {
			for i := 0; i < per; i++ {
				specs = append(specs, runSpec{avgUtil: b[0], weight: b[1] / float64(per)})
			}
		}
		return specs
	case scenario == Typical:
		specs := make([]runSpec, opts.TypicalRuns)
		for i := range specs {
			specs[i] = runSpec{avgUtil: -1, weight: 1 / float64(len(specs))}
		}
		return specs
	default:
		specs := make([]runSpec, opts.WorstCaseRuns)
		for i := range specs {
			specs[i] = runSpec{avgUtil: 1, weight: 1 / float64(len(specs))}
		}
		return specs
	}
}

// MeanCapRatios evaluates the average cap ratios for one configuration,
// scenario, and policy across the configured number of runs.
//
// Runs are fanned out over opts.Workers goroutines, each holding its own
// DataCenter replica (Build is deterministic, so replicas are identical).
// Every simulation seeds its rng from opts.Seed mixed with the run index
// and results are reduced in run-index order, so the returned ratios are
// bit-identical for any worker count.
func MeanCapRatios(cfg Config, scenario Scenario, policy core.Policy, opts StudyOptions) (all, high float64, err error) {
	opts = opts.withDefaults()
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	base := opts.Seed + int64(cfg.ServersPerRack)*101 + int64(policy)*7 + int64(scenario)*3
	specs := planRuns(scenario, opts)
	results := make([]RunResult, len(specs))

	workers := opts.Workers
	if workers > len(specs) {
		workers = len(specs)
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		errMu   sync.Mutex
		poolErr error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		errMu.Lock()
		if poolErr == nil {
			poolErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			replica, err := Build(cfg, scenario)
			if err != nil {
				fail(err)
				return
			}
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				rng := rand.New(rand.NewSource(runSeed(base, i)))
				u := specs[i].avgUtil
				if u < 0 {
					u = opts.Distribution.Sample(rng)
				}
				r, err := replica.Run(rng, policy, u)
				if err != nil {
					fail(err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if poolErr != nil {
		return 0, 0, poolErr
	}

	// Deterministic reduction: weights applied in run-index order (float
	// addition is not associative, so order matters for bit-identity).
	for i, r := range results {
		all += specs[i].weight * r.MeanCapRatioAll
		high += specs[i].weight * r.MeanCapRatioHigh
	}
	return all, high, nil
}

// CurvePoint is one point of the Figure 10 cap-ratio curves.
type CurvePoint struct {
	ServersPerRack int
	TotalServers   int
	CapRatioAll    float64
	CapRatioHigh   float64
}

// CapRatioCurve sweeps servers-per-rack and reports the worst-case average
// cap ratios for all servers (Fig. 10a) and for high-priority servers
// (Fig. 10b) under the given policy.
func CapRatioCurve(cfg Config, scenario Scenario, policy core.Policy, opts StudyOptions) ([]CurvePoint, error) {
	opts = opts.withDefaults()
	var out []CurvePoint
	for per := opts.MinPerRack; per <= opts.MaxPerRack; per += opts.StepPerRack {
		c := cfg
		c.ServersPerRack = per
		all, high, err := MeanCapRatios(c, scenario, policy, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, CurvePoint{
			ServersPerRack: per,
			TotalServers:   c.TotalServers(),
			CapRatioAll:    all,
			CapRatioHigh:   high,
		})
	}
	return out, nil
}

// CapacityResult reports the outcome of a capacity search.
type CapacityResult struct {
	Policy         core.Policy
	Scenario       Scenario
	ServersPerRack int
	TotalServers   int
	// Ratio is the criterion value at the supported count (all-server mean
	// in the typical scenario, high-priority mean in the worst case).
	Ratio float64
}

// FindCapacity determines the largest server count (sweeping
// servers-per-rack) whose criterion cap ratio stays below the threshold:
// the Figure 9 experiment. The criterion is the all-server mean in the
// typical scenario and the high-priority mean in the worst case.
func FindCapacity(cfg Config, scenario Scenario, policy core.Policy, opts StudyOptions) (CapacityResult, error) {
	opts = opts.withDefaults()
	best := CapacityResult{Policy: policy, Scenario: scenario}
	found := false
	for per := opts.MinPerRack; per <= opts.MaxPerRack; per += opts.StepPerRack {
		c := cfg
		c.ServersPerRack = per
		all, high, err := MeanCapRatios(c, scenario, policy, opts)
		if err != nil {
			return CapacityResult{}, err
		}
		criterion := all
		if scenario == WorstCase {
			criterion = high
		}
		if criterion < opts.Threshold {
			best.ServersPerRack = per
			best.TotalServers = c.TotalServers()
			best.Ratio = criterion
			found = true
		} else if found {
			// Cap ratios grow monotonically with server count; once the
			// criterion is exceeded after a passing count, stop.
			break
		}
	}
	if !found {
		return best, fmt.Errorf("dc: no server count in [%d,%d] meets the %.1f%% criterion",
			opts.MinPerRack, opts.MaxPerRack, opts.Threshold*100)
	}
	return best, nil
}
