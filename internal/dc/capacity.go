package dc

import (
	"fmt"
	"math/rand"

	"capmaestro/internal/core"
	"capmaestro/internal/workload"
)

// CapRatioThreshold is the paper's acceptance criterion: below a 1% average
// cap ratio the performance impact is considered negligible.
const CapRatioThreshold = 0.01

// StudyOptions tunes the Monte Carlo study. The paper runs 20 000 typical
// and 1 000 worst-case simulations per server count; because worst-case
// demand is deterministic (only the random priority placement varies),
// results converge with far fewer runs, so the defaults are sized for
// interactive use and can be raised to paper scale with the fields below.
type StudyOptions struct {
	TypicalRuns   int // per server count; default 200
	WorstCaseRuns int // per server count; default 60
	Seed          int64
	Distribution  *workload.UtilizationDistribution // default Figure 8
	MinPerRack    int                               // default 6
	MaxPerRack    int                               // default 45
	StepPerRack   int                               // default 3
	Threshold     float64                           // default CapRatioThreshold
	// MonteCarloTypical forces pure Monte Carlo sampling of the average
	// utilization for the typical scenario, as the paper's 20 000-run
	// methodology does. By default the study stratifies over the
	// distribution's buckets (running TypicalRuns split evenly across
	// buckets and weighting by bucket probability), which estimates the
	// same expectation with far lower variance.
	MonteCarloTypical bool
}

func (o StudyOptions) withDefaults() StudyOptions {
	if o.TypicalRuns == 0 {
		o.TypicalRuns = 200
	}
	if o.WorstCaseRuns == 0 {
		o.WorstCaseRuns = 60
	}
	if o.Distribution == nil {
		o.Distribution = workload.Figure8Distribution()
	}
	if o.MinPerRack == 0 {
		o.MinPerRack = 6
	}
	if o.MaxPerRack == 0 {
		o.MaxPerRack = 45
	}
	if o.StepPerRack == 0 {
		o.StepPerRack = 3
	}
	if o.Threshold == 0 {
		o.Threshold = CapRatioThreshold
	}
	return o
}

// MeanCapRatios evaluates the average cap ratios for one configuration,
// scenario, and policy across the configured number of runs.
func MeanCapRatios(cfg Config, scenario Scenario, policy core.Policy, opts StudyOptions) (all, high float64, err error) {
	opts = opts.withDefaults()
	d, err := Build(cfg, scenario)
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(opts.Seed + int64(cfg.ServersPerRack)*101 + int64(policy)*7 + int64(scenario)*3))

	if scenario == Typical && !opts.MonteCarloTypical {
		// Stratified estimate: visit each utilization bucket and weight by
		// its probability. Residual randomness (per-server spread and
		// priority placement) stays Monte Carlo.
		buckets := opts.Distribution.Buckets()
		per := opts.TypicalRuns / len(buckets)
		if per < 1 {
			per = 1
		}
		var sumAll, sumHigh float64
		for _, b := range buckets {
			var bAll, bHigh float64
			for i := 0; i < per; i++ {
				r := d.Run(rng, policy, b[0])
				bAll += r.MeanCapRatioAll
				bHigh += r.MeanCapRatioHigh
			}
			sumAll += b[1] * bAll / float64(per)
			sumHigh += b[1] * bHigh / float64(per)
		}
		return sumAll, sumHigh, nil
	}

	runs := opts.WorstCaseRuns
	if scenario == Typical {
		runs = opts.TypicalRuns
	}
	var sumAll, sumHigh float64
	for i := 0; i < runs; i++ {
		avgUtil := 1.0
		if scenario == Typical {
			avgUtil = opts.Distribution.Sample(rng)
		}
		r := d.Run(rng, policy, avgUtil)
		sumAll += r.MeanCapRatioAll
		sumHigh += r.MeanCapRatioHigh
	}
	return sumAll / float64(runs), sumHigh / float64(runs), nil
}

// CurvePoint is one point of the Figure 10 cap-ratio curves.
type CurvePoint struct {
	ServersPerRack int
	TotalServers   int
	CapRatioAll    float64
	CapRatioHigh   float64
}

// CapRatioCurve sweeps servers-per-rack and reports the worst-case average
// cap ratios for all servers (Fig. 10a) and for high-priority servers
// (Fig. 10b) under the given policy.
func CapRatioCurve(cfg Config, scenario Scenario, policy core.Policy, opts StudyOptions) ([]CurvePoint, error) {
	opts = opts.withDefaults()
	var out []CurvePoint
	for per := opts.MinPerRack; per <= opts.MaxPerRack; per += opts.StepPerRack {
		c := cfg
		c.ServersPerRack = per
		all, high, err := MeanCapRatios(c, scenario, policy, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, CurvePoint{
			ServersPerRack: per,
			TotalServers:   c.TotalServers(),
			CapRatioAll:    all,
			CapRatioHigh:   high,
		})
	}
	return out, nil
}

// CapacityResult reports the outcome of a capacity search.
type CapacityResult struct {
	Policy         core.Policy
	Scenario       Scenario
	ServersPerRack int
	TotalServers   int
	// Ratio is the criterion value at the supported count (all-server mean
	// in the typical scenario, high-priority mean in the worst case).
	Ratio float64
}

// FindCapacity determines the largest server count (sweeping
// servers-per-rack) whose criterion cap ratio stays below the threshold:
// the Figure 9 experiment. The criterion is the all-server mean in the
// typical scenario and the high-priority mean in the worst case.
func FindCapacity(cfg Config, scenario Scenario, policy core.Policy, opts StudyOptions) (CapacityResult, error) {
	opts = opts.withDefaults()
	best := CapacityResult{Policy: policy, Scenario: scenario}
	found := false
	for per := opts.MinPerRack; per <= opts.MaxPerRack; per += opts.StepPerRack {
		c := cfg
		c.ServersPerRack = per
		all, high, err := MeanCapRatios(c, scenario, policy, opts)
		if err != nil {
			return CapacityResult{}, err
		}
		criterion := all
		if scenario == WorstCase {
			criterion = high
		}
		if criterion < opts.Threshold {
			best.ServersPerRack = per
			best.TotalServers = c.TotalServers()
			best.Ratio = criterion
			found = true
		} else if found {
			// Cap ratios grow monotonically with server count; once the
			// criterion is exceeded after a passing count, stop.
			break
		}
	}
	if !found {
		return best, fmt.Errorf("dc: no server count in [%d,%d] meets the %.1f%% criterion",
			opts.MinPerRack, opts.MaxPerRack, opts.Threshold*100)
	}
	return best, nil
}
