package dc

import (
	"math/rand"
	"sort"
	"strings"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
)

// BindingReport counts, for one simulation run, how many nodes at each
// level of the distribution hierarchy are budget-saturated (allocated
// right up to their limit). It explains *which* constraint caps a
// configuration: the contractual budget, the transformers, the RPPs, or
// the CDUs — the kind of analysis the paper uses to reason about where
// Global Priority's advantage comes from.
type BindingReport struct {
	// Binding maps level name ("contractual", "transformer", "rpp",
	// "cdu") to the number of saturated nodes at that level.
	Binding map[string]int
	// Total maps level name to the number of nodes at that level.
	Total map[string]int
}

// Levels lists the level names present, in hierarchy order.
func (r *BindingReport) Levels() []string {
	order := map[string]int{"contractual": 0, "feed": 1, "transformer": 2, "rpp": 3, "cdu": 4}
	var out []string
	for l := range r.Total {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return order[out[i]] < order[out[j]] })
	return out
}

// levelOf classifies a tree-node ID produced by Build.
func levelOf(id string) string {
	switch {
	case strings.Contains(id, ":contract"):
		return "contractual"
	case strings.Contains(id, ":feed"):
		return "feed"
	case strings.Contains(id, ":tx"):
		return "transformer"
	case strings.Contains(id, ":rpp"):
		return "rpp"
	case strings.Contains(id, ":cdu"):
		return "cdu"
	default:
		return ""
	}
}

// AnalyzeBinding runs one simulation at the given average utilization and
// reports which levels of the hierarchy are saturated under the policy. It
// reads the per-node budgets straight out of the run's allocators, so no
// second allocation pass is needed.
func (dc *DataCenter) AnalyzeBinding(rng *rand.Rand, policy core.Policy, avgUtil float64) (*BindingReport, error) {
	report := &BindingReport{
		Binding: make(map[string]int),
		Total:   make(map[string]int),
	}
	if _, err := dc.Run(rng, policy, avgUtil); err != nil {
		return nil, err
	}
	for ph, root := range dc.phases {
		alloc := dc.allocators[ph]
		root.Walk(func(n *core.Node) {
			level := levelOf(n.ID)
			if level == "" || n.IsLeaf() {
				return
			}
			limit := n.Limit
			if limit <= 0 {
				return
			}
			report.Total[level]++
			idx, ok := alloc.NodeIndex(n.ID)
			if !ok {
				return
			}
			if alloc.NodeBudget(idx) >= limit-power.Watts(0.01) {
				report.Binding[level]++
			}
		})
	}
	return report, nil
}
