// Package dc builds the paper's simulated production data center (Table 4)
// and runs the large-scale Monte Carlo capacity study of Section 6.4:
// how many servers a fixed power infrastructure supports under each
// allocation policy, in typical conditions (Google-profile load, both feeds
// up) and in the worst case (every server at 100% utilization with one
// entire feed failed).
//
// The acceptance criterion follows the paper: a server count is supportable
// when the average cap ratio — (demand − budget) / (demand − idle) — stays
// below 1%, measured across all servers in the typical case and across
// high-priority servers in the worst case.
package dc

import (
	"errors"
	"fmt"
	"math/rand"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/workload"
)

// Config mirrors Table 4 of the paper.
type Config struct {
	ContractualPerPhase  power.Watts // total across feeds, per phase
	ContractualMargin    float64     // usable fraction (reserve for errors)
	TransformersPerFeed  int
	TransformerRating    power.Watts
	RPPsPerTransformer   int
	RPPRating            power.Watts
	CDUsPerRPP           int
	CDURatingPerPhase    power.Watts
	ServersPerRack       int
	HighPriorityFraction float64
	Model                power.ServerModel
	DeratingFraction     float64 // sustained loading limit for CBs/transformers
	PerServerSigma       float64 // per-server utilization spread (typical case)
	SplitSpread          float64 // per-server feed-split mismatch: X share ∈ 0.5±spread
}

// DefaultConfig returns the Table 4 parameters: 700 kW per phase contractual
// (95% usable), 2 feeds × 2 transformers (420 kW) × 9 RPPs (52 kW) × 9 CDUs
// (6.9 kW per phase), 162 racks, 30% high-priority servers, the 160/270/490
// server model, and the conventional 80% loading rule.
func DefaultConfig() Config {
	return Config{
		ContractualPerPhase:  power.Kilowatts(700),
		ContractualMargin:    0.95,
		TransformersPerFeed:  2,
		TransformerRating:    power.Kilowatts(420),
		RPPsPerTransformer:   9,
		RPPRating:            power.Kilowatts(52),
		CDUsPerRPP:           9,
		CDURatingPerPhase:    power.Kilowatts(6.9),
		ServersPerRack:       24,
		HighPriorityFraction: 0.30,
		Model:                power.DefaultServerModel(),
		DeratingFraction:     0.80,
		PerServerSigma:       workload.PerServerSigma,
		SplitSpread:          0,
	}
}

// Racks returns the rack count implied by the distribution hierarchy: one
// rack per CDU position per feed.
func (c Config) Racks() int {
	return c.TransformersPerFeed * c.RPPsPerTransformer * c.CDUsPerRPP
}

// TotalServers returns Racks × ServersPerRack.
func (c Config) TotalServers() int { return c.Racks() * c.ServersPerRack }

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.ContractualPerPhase <= 0, c.TransformerRating <= 0,
		c.RPPRating <= 0, c.CDURatingPerPhase <= 0:
		return errors.New("dc: ratings must be positive")
	case c.ContractualMargin <= 0 || c.ContractualMargin > 1:
		return errors.New("dc: contractual margin out of (0,1]")
	case c.TransformersPerFeed <= 0, c.RPPsPerTransformer <= 0, c.CDUsPerRPP <= 0:
		return errors.New("dc: hierarchy counts must be positive")
	case c.ServersPerRack <= 0:
		return errors.New("dc: servers per rack must be positive")
	case c.HighPriorityFraction < 0 || c.HighPriorityFraction > 1:
		return errors.New("dc: high-priority fraction out of [0,1]")
	case c.DeratingFraction <= 0 || c.DeratingFraction > 1:
		return errors.New("dc: derating fraction out of (0,1]")
	case c.SplitSpread < 0 || c.SplitSpread >= 0.5:
		return errors.New("dc: split spread out of [0,0.5)")
	}
	return c.Model.Validate()
}

// Scenario selects the operating condition of the study.
type Scenario int

// Scenarios from Section 6.4.
const (
	// Typical: both feeds operational, utilization drawn from the Figure 8
	// profile.
	Typical Scenario = iota
	// WorstCase: an entire feed has failed and every server demands
	// maximum power.
	WorstCase
)

// String names the scenario as the paper does.
func (s Scenario) String() string {
	switch s {
	case Typical:
		return "Typical Case"
	case WorstCase:
		return "Worst Case"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// leafRef binds one of a server's supply leaves to its slot in the phase
// allocator: the leaf pointer for mutating demand and priority between
// runs, the node index for reading the allocated budget back without any
// map lookup, and the precomputed share reciprocal for converting a supply
// budget into the whole-server power it implies.
type leafRef struct {
	leaf     *core.SupplyLeaf
	node     int         // index in the phase's Allocator
	invShare power.Watts // 1 / Share
}

// serverRef tracks one server's leaves across the per-phase trees so runs
// can mutate demand and priority in place.
type serverRef struct {
	id     string
	phase  int
	leaves []leafRef
	demand power.Watts
	high   bool
}

// DataCenter is a built instance of the study: three per-phase control
// trees, a reusable budgeting engine per tree, and an index of every
// server. A DataCenter is not safe for concurrent use — parallel studies
// run one replica per worker (Build is deterministic, so replicas are
// identical).
type DataCenter struct {
	cfg        Config
	scenario   Scenario
	phases     []*core.Node
	allocators []*core.Allocator
	servers    []*serverRef
}

// priority levels used by the study.
const (
	prioLow  core.Priority = 0
	prioHigh core.Priority = 1
)

// Build constructs the per-phase control trees for the given scenario. In
// the typical scenario each server appears in a phase tree twice (one
// supply per feed); in the worst case only the surviving feed (X) exists
// and each supply carries the whole server.
func Build(cfg Config, scenario Scenario) (*DataCenter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dc := &DataCenter{cfg: cfg, scenario: scenario}

	feeds := []string{"X", "Y"}
	if scenario == WorstCase {
		feeds = []string{"X"}
	}
	racks := cfg.Racks()
	derate := power.Watts(cfg.DeratingFraction)

	// Pre-compute per-server placement: rack, phase, and feed split.
	type placement struct {
		rack, phase int
		xShare      float64
	}
	var placements []placement
	// Deterministic split assignment: alternate the mismatch sign so feeds
	// stay balanced in aggregate.
	splitRng := rand.New(rand.NewSource(1009))
	for r := 0; r < racks; r++ {
		for i := 0; i < cfg.ServersPerRack; i++ {
			x := 0.5
			if cfg.SplitSpread > 0 {
				x = 0.5 - cfg.SplitSpread + 2*cfg.SplitSpread*splitRng.Float64()
			}
			placements = append(placements, placement{rack: r, phase: i % 3, xShare: x})
		}
	}

	// Group servers by (phase, rack).
	byPhaseRack := make(map[[2]int][]int)
	for idx, p := range placements {
		key := [2]int{p.phase, p.rack}
		byPhaseRack[key] = append(byPhaseRack[key], idx)
	}

	refs := make([]*serverRef, len(placements))
	for idx, p := range placements {
		refs[idx] = &serverRef{
			id:    fmt.Sprintf("r%03d-s%03d", p.rack, idx%cfg.ServersPerRack),
			phase: p.phase,
		}
	}
	// Leaf node IDs in creation order per phase, resolved to allocator
	// indices once the allocator is built.
	leafNodeIDs := make([][]string, 3)
	leafOwners := make([][]int, 3) // parallel: owning server index

	for ph := 0; ph < 3; ph++ {
		var feedNodes []*core.Node
		for _, feed := range feeds {
			var txNodes []*core.Node
			rack := 0
			for tx := 0; tx < cfg.TransformersPerFeed; tx++ {
				var rppNodes []*core.Node
				for rpp := 0; rpp < cfg.RPPsPerTransformer; rpp++ {
					var cduNodes []*core.Node
					for cdu := 0; cdu < cfg.CDUsPerRPP; cdu++ {
						var leaves []*core.Node
						for _, idx := range byPhaseRack[[2]int{ph, rack}] {
							p := placements[idx]
							share := p.xShare
							if feed == "Y" {
								share = 1 - p.xShare
							}
							if scenario == WorstCase {
								share = 1.0
							}
							supplyID := fmt.Sprintf("%s-%s", refs[idx].id, feed)
							ln := core.NewLeaf(fmt.Sprintf("ph%d:%s", ph, supplyID), core.SupplyLeaf{
								SupplyID: supplyID,
								ServerID: refs[idx].id,
								Priority: prioLow,
								Share:    share,
								CapMin:   cfg.Model.CapMin,
								CapMax:   cfg.Model.CapMax,
								Demand:   cfg.Model.CapMax,
							})
							refs[idx].leaves = append(refs[idx].leaves, leafRef{
								leaf:     ln.Leaf,
								invShare: power.Watts(1 / share),
							})
							leafNodeIDs[ph] = append(leafNodeIDs[ph], ln.ID)
							leafOwners[ph] = append(leafOwners[ph], idx)
							leaves = append(leaves, ln)
						}
						if len(leaves) > 0 {
							cduNodes = append(cduNodes, core.NewShifting(
								fmt.Sprintf("ph%d:%s:cdu%03d", ph, feed, rack),
								cfg.CDURatingPerPhase*derate, leaves...))
						}
						rack++
					}
					if len(cduNodes) > 0 {
						rppNodes = append(rppNodes, core.NewShifting(
							fmt.Sprintf("ph%d:%s:rpp%d-%d", ph, feed, tx, rpp),
							cfg.RPPRating*derate, cduNodes...))
					}
				}
				if len(rppNodes) > 0 {
					txNodes = append(txNodes, core.NewShifting(
						fmt.Sprintf("ph%d:%s:tx%d", ph, feed, tx),
						cfg.TransformerRating*derate, rppNodes...))
				}
			}
			if len(txNodes) > 0 {
				feedNodes = append(feedNodes, core.NewShifting(
					fmt.Sprintf("ph%d:%s:feed", ph, feed), 0, txNodes...))
			}
		}
		root := core.NewShifting(fmt.Sprintf("ph%d:contract", ph),
			cfg.ContractualPerPhase*power.Watts(cfg.ContractualMargin), feedNodes...)
		alloc, err := core.NewAllocator(root)
		if err != nil {
			return nil, fmt.Errorf("dc: phase %d: %w", ph, err)
		}
		// Bind each server leaf to its allocator slot so runs read budgets
		// by integer index instead of a per-run supply-ID map.
		seen := make(map[int]int) // server index → leaves bound so far this phase
		for i, nodeID := range leafNodeIDs[ph] {
			nodeIdx, ok := alloc.NodeIndex(nodeID)
			if !ok {
				return nil, fmt.Errorf("dc: phase %d: leaf %q missing from allocator", ph, nodeID)
			}
			owner := leafOwners[ph][i]
			refs[owner].leaves[seen[owner]].node = nodeIdx
			seen[owner]++
		}
		dc.phases = append(dc.phases, root)
		dc.allocators = append(dc.allocators, alloc)
	}
	dc.servers = refs
	return dc, nil
}

// Phases returns the per-phase control-tree roots, for inspection and
// benchmarking. Callers must not restructure the trees: the DataCenter's
// allocators are bound to them.
func (dc *DataCenter) Phases() []*core.Node { return dc.phases }

// RunResult aggregates one Monte Carlo run.
type RunResult struct {
	MeanCapRatioAll  float64 // over all servers
	MeanCapRatioHigh float64 // over high-priority servers (0 if none)
	CappedServers    int     // servers with cap ratio > 0
	TotalServers     int
	HighServers      int
	Infeasible       bool
}

// Run performs one simulation: priorities are re-drawn at random (as the
// paper does per simulation), demands are set from avgUtil (with per-server
// spread in the typical scenario; exactly 100% in the worst case), budgets
// are allocated per phase under the policy, and cap ratios are aggregated.
// The per-phase allocators and leaf bindings are reused across runs, so a
// run performs no allocation beyond the rng's own state.
//
// Run fully re-randomizes and re-budgets the data center, so successive
// runs on the same DataCenter are independent given independent rngs. It
// returns an error only if the DataCenter was not constructed by Build.
func (dc *DataCenter) Run(rng *rand.Rand, policy core.Policy, avgUtil float64) (RunResult, error) {
	if len(dc.allocators) != len(dc.phases) || len(dc.phases) == 0 {
		return RunResult{}, errors.New("dc: DataCenter was not constructed by Build")
	}
	cfg := dc.cfg
	res := RunResult{TotalServers: len(dc.servers)}

	for _, ref := range dc.servers {
		ref.high = rng.Float64() < cfg.HighPriorityFraction
		util := avgUtil
		if dc.scenario == Typical {
			util = workload.SampleServerUtil(rng, avgUtil, cfg.PerServerSigma)
		}
		ref.demand = cfg.Model.PowerAt(util)
		prio := prioLow
		if ref.high {
			prio = prioHigh
			res.HighServers++
		}
		for i := range ref.leaves {
			ref.leaves[i].leaf.Demand = ref.demand
			ref.leaves[i].leaf.Priority = prio
		}
	}

	for _, a := range dc.allocators {
		if a.Run(0, policy) {
			res.Infeasible = true
		}
	}

	var sumAll, sumHigh float64
	for _, ref := range dc.servers {
		a := dc.allocators[ref.phase]
		eff := power.Watts(0)
		first := true
		for i := range ref.leaves {
			lr := &ref.leaves[i]
			implied := a.NodeBudget(lr.node) * lr.invShare
			if first || implied < eff {
				eff = implied
				first = false
			}
		}
		ratio := cfg.Model.CapRatio(ref.demand, eff)
		if ratio > 0 {
			res.CappedServers++
		}
		sumAll += ratio
		if ref.high {
			sumHigh += ratio
		}
	}
	res.MeanCapRatioAll = sumAll / float64(res.TotalServers)
	if res.HighServers > 0 {
		res.MeanCapRatioHigh = sumHigh / float64(res.HighServers)
	}
	return res, nil
}
