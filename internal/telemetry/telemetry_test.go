package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers every metric kind from many goroutines
// while renders run concurrently; run with -race.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc_counter_total", "c")
	g := reg.Gauge("conc_gauge", "g")
	h := reg.Histogram("conc_hist", "h", []float64{1, 10})
	cv := reg.CounterVec("conc_labeled_total", "cl", "worker")

	const workers, iters = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 20))
				cv.With(id).Inc()
				if i%100 == 0 {
					var sb strings.Builder
					reg.WritePrometheus(&sb)
					reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %v, want %v", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %v", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %v, want %v", got, workers*iters)
	}
	var labeled float64
	for _, id := range []string{"a", "b", "c", "d"} {
		labeled += cv.With(id).Value()
	}
	if labeled != workers*iters {
		t.Errorf("labeled counters sum = %v, want %v", labeled, workers*iters)
	}
}

// TestPrometheusExposition is a golden-output test for the text format.
func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("app_requests_total", "Total requests.").Add(42)
	reg.GaugeVec("app_temperature", "Temp by room.", "room").With("b\"ar").Set(36.5)
	h := reg.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 2.55
app_latency_seconds_count 3
# HELP app_requests_total Total requests.
# TYPE app_requests_total counter
app_requests_total 42
# HELP app_temperature Temp by room.
# TYPE app_temperature gauge
app_temperature{room="b\"ar"} 36.5
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestHistogramBuckets pins the inclusive-upper-bound (le) semantics.
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hb", "", []float64{1, 2, 5})
	for _, v := range []float64{0, 1, 1.5, 2, 2.0001, 5, 100} {
		h.Observe(v)
	}
	// Cumulative: le=1 -> {0,1}; le=2 -> +{1.5,2}; le=5 -> +{2.0001,5}; +Inf -> +{100}.
	wantCum := []uint64{2, 4, 6, 7}
	for i, want := range wantCum {
		if got := h.BucketCount(i); got != want {
			t.Errorf("bucket %d cumulative = %d, want %d", i, got, want)
		}
	}
	if got := h.Count(); got != 7 {
		t.Errorf("count = %d, want 7", got)
	}
	if got, want := h.Sum(), 0+1+1.5+2+2.0001+5+100.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

// TestNilSafety verifies the nil-registry contract: nil registries hand
// out nil handles and every operation is a zero-allocation no-op.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x_seconds", "", nil)
	cv := reg.CounterVec("xv_total", "", "l")
	gv := reg.GaugeVec("xv", "", "l")
	hv := reg.HistogramVec("xv_seconds", "", nil, "l")
	if c != nil || g != nil || h != nil || cv != nil || gv != nil || hv != nil {
		t.Fatal("nil registry must hand out nil handles")
	}

	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(-1)
		h.Observe(0.25)
		cv.With("a").Inc()
		gv.With("a").Set(1)
		hv.With("a").Observe(1)
		reg.WritePrometheus(nil)
	})
	if allocs != 0 {
		t.Errorf("nil telemetry allocated %v times per run, want 0", allocs)
	}
}

// TestHTTPEndpoints exercises /metrics, /healthz, and /debug/vars.
func TestHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("h_requests_total", "r").Inc()
	srv := NewServer(reg)
	healthy := true
	srv.AddHealthCheck("room", func() error {
		if healthy {
			return nil
		}
		return ErrUnhealthy
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String(), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != 200 || !strings.Contains(body, "h_requests_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ctype)
	}

	if code, body, _ := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz healthy = %d %q", code, body)
	}
	healthy = false
	if code, body, _ := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "room") {
		t.Errorf("/healthz unhealthy = %d %q", code, body)
	}

	_, body, ctype = get("/debug/vars")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/debug/vars content type = %q", ctype)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if v, ok := vars["h_requests_total"].(float64); !ok || v != 1 {
		t.Errorf("/debug/vars h_requests_total = %v", vars["h_requests_total"])
	}
}

// TestServe exercises the background listener path.
func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("s_up", "").Set(1)
	srv, err := Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

// TestVecSchemaMismatchPanics pins the re-registration contract.
func TestVecSchemaMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m_total", "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	reg.Gauge("m_total", "")
}

// TestDynamicMounts covers Handle: exact and subtree patterns, precedence
// over built-ins, and mounts added after the handler was built (the
// flight-recorder / pprof wiring depends on post-Serve mounting).
func TestDynamicMounts(t *testing.T) {
	srv := NewServer(NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Nothing mounted yet.
	if code, _ := get("/debug/periods"); code != http.StatusNotFound {
		t.Fatalf("unmounted path = %d, want 404", code)
	}

	// Mounting after the handler was built still takes effect.
	srv.Handle("/debug/periods", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "exact")
	}))
	srv.Handle("/debug/tree/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "subtree:", r.URL.Path)
	}))
	if _, body := get("/debug/periods"); body != "exact" {
		t.Errorf("exact mount body = %q", body)
	}
	if _, body := get("/debug/tree/a/b"); body != "subtree:/debug/tree/a/b" {
		t.Errorf("subtree mount body = %q", body)
	}
	// Exact mounts win over subtree prefixes; mounts win over built-ins.
	srv.Handle("/debug/tree/pin", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "pinned")
	}))
	if _, body := get("/debug/tree/pin"); body != "pinned" {
		t.Errorf("exact-over-subtree body = %q", body)
	}
	srv.Handle("/healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "shadowed")
	}))
	if _, body := get("/healthz"); body != "shadowed" {
		t.Errorf("mount did not shadow built-in: %q", body)
	}

	// Nil-safety of the mounting surface.
	var nilSrv *Server
	nilSrv.Handle("/x", http.NotFoundHandler())
	nilSrv.EnablePprof()
	srv.Handle("", http.NotFoundHandler())
	srv.Handle("/y", nil)
}

// TestPprofMount verifies EnablePprof exposes the profiling index and that
// it is absent by default.
func TestPprofMount(t *testing.T) {
	srv := NewServer(NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof mounted without EnablePprof: %d", resp.StatusCode)
	}

	srv.EnablePprof()
	resp, err = http.Get(ts.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(b), "goroutine") {
		t.Errorf("pprof goroutine profile = %d %q", resp.StatusCode, string(b[:min(len(b), 120)]))
	}
}

// TestHealthzDetails verifies the JSON health body: per-check verdicts and
// detail-provider payloads, with details never flipping the verdict.
func TestHealthzDetails(t *testing.T) {
	srv := NewServer(NewRegistry())
	healthy := true
	srv.AddHealthCheck("room", func() error {
		if healthy {
			return nil
		}
		return fmt.Errorf("all 2 rack gathers failed")
	})
	srv.AddHealthDetail("racks", func() any {
		return map[string]any{"rack0": map[string]any{"stale_periods": 3, "held": true}}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fetch := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var report map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
			t.Fatalf("/healthz not JSON: %v", err)
		}
		return resp.StatusCode, report
	}

	code, report := fetch()
	if code != 200 || report["status"] != "ok" {
		t.Fatalf("healthy report = %d %v", code, report)
	}
	checks := report["checks"].(map[string]any)
	if checks["room"] != "ok" {
		t.Errorf("healthy check verdict = %v", checks["room"])
	}
	details := report["details"].(map[string]any)
	rack0 := details["racks"].(map[string]any)["rack0"].(map[string]any)
	if rack0["stale_periods"] != float64(3) || rack0["held"] != true {
		t.Errorf("detail payload = %v", rack0)
	}

	healthy = false
	code, report = fetch()
	if code != http.StatusServiceUnavailable || report["status"] != "critical" {
		t.Fatalf("unhealthy report = %d %v", code, report)
	}
	if v := report["checks"].(map[string]any)["room"]; v != "critical: all 2 rack gathers failed" {
		t.Errorf("failing check verdict = %v", v)
	}
	if _, ok := report["details"].(map[string]any)["racks"]; !ok {
		t.Error("details dropped from unhealthy report")
	}
}

// TestHistogramQuantile pins the linear-interpolation estimator against
// hand-computed ranks.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", "", []float64{1, 2, 4, 8})

	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram quantile should be NaN")
	}

	// 4 observations, one per bucket: (0,1], (1,2], (2,4], (4,8].
	for _, v := range []float64{0.5, 1.5, 3, 6} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		// rank = q×4; each bucket holds exactly one observation, so the
		// estimate interpolates the full bucket width at its rank.
		{0.25, 1}, // rank 1 → top of (0,1]
		{0.5, 2},  // rank 2 → top of (1,2]
		{0.75, 4}, // rank 3 → top of (2,4]
		{1.0, 8},  // rank 4 → top of (4,8]
		{0.125, 0.5},
		{0.625, 3}, // rank 2.5 → midpoint of (2,4]
		{0, 0},     // rank 0 → lower edge of the first bucket
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Out-of-range q clamps rather than erroring.
	if got := h.Quantile(2); got != 8 {
		t.Errorf("Quantile(2) = %v, want clamp to 8", got)
	}

	// An observation past the last bucket lands in +Inf: the estimate is
	// clamped to the largest finite bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 8 {
		t.Errorf("+Inf-bucket quantile = %v, want clamp to 8", got)
	}
}

// TestHistogramQuantileBoundaries pins the boundary handling the SLO
// time-to-safe report depends on: q=0 and quantiles over distributions
// with empty leading buckets must interpolate within the first bucket
// that holds mass, never return an empty bucket's lower edge (which was
// often 0, wildly understating the estimate).
func TestHistogramQuantileBoundaries(t *testing.T) {
	reg := NewRegistry()
	cases := []struct {
		name    string
		buckets []float64
		obs     []float64
		q       float64
		want    float64
	}{
		// All mass in (2,4]: the first two buckets are empty. Before the
		// fix q=0 returned 0 (the empty first bucket's lower edge).
		{"empty-leading-q0", []float64{1, 2, 4, 8}, []float64{3, 3, 3}, 0, 2},
		{"empty-leading-q0.5", []float64{1, 2, 4, 8}, []float64{3, 3, 3}, 0.5, 3},
		{"empty-leading-q1", []float64{1, 2, 4, 8}, []float64{3, 3, 3}, 1, 4},
		// Empty bucket in the middle: ranks past it skip to the next
		// occupied bucket instead of sticking to the empty one's edge.
		{"empty-middle", []float64{1, 2, 4, 8}, []float64{0.5, 6, 6}, 0.5, 5},
		// Single bucket holding everything.
		{"single-bucket-q0", []float64{5}, []float64{1, 2, 3}, 0, 0},
		{"single-bucket-q0.5", []float64{5}, []float64{1, 2, 3}, 0.5, 2.5},
		{"single-bucket-q1", []float64{5}, []float64{1, 2, 3}, 1, 5},
		// One observation: every quantile lands in its bucket.
		{"one-obs-q0", []float64{1, 2, 4, 8}, []float64{6}, 0, 4},
		{"one-obs-q1", []float64{1, 2, 4, 8}, []float64{6}, 1, 8},
		// Everything in +Inf: clamp to the largest finite bound even at
		// q=0.
		{"all-inf-q0", []float64{1, 2}, []float64{50, 60}, 0, 2},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := reg.Histogram(fmt.Sprintf("qb_%d_seconds", i), "", tc.buckets)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

// TestHealthLevels covers the three-level rollup: warn keeps /healthz at
// 200 with status "warn"; critical flips to 503; the worst level wins.
func TestHealthLevels(t *testing.T) {
	srv := NewServer(NewRegistry())
	degraded := false
	level := HealthOK
	srv.AddWarnCheck("room-degraded", func() error {
		if degraded {
			return fmt.Errorf("2 rack(s) on stale summaries, 1 held")
		}
		return nil
	})
	srv.AddLeveledCheck("slo", func() (HealthLevel, string) {
		if level == HealthOK {
			return HealthOK, ""
		}
		return level, "1 alert(s) firing: [trip-risk{A}]"
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fetch := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var report map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, report
	}

	if code, report := fetch(); code != 200 || report["status"] != "ok" {
		t.Fatalf("all-ok = %d %v", code, report)
	}

	// A warn-level failure degrades the status but keeps serving 200, so
	// orchestrators don't restart a process riding out a stale rack.
	degraded = true
	code, report := fetch()
	if code != 200 || report["status"] != "warn" {
		t.Fatalf("degraded = %d %v", code, report)
	}
	if v := report["checks"].(map[string]any)["room-degraded"]; v != "warn: 2 rack(s) on stale summaries, 1 held" {
		t.Errorf("warn verdict = %v", v)
	}
	if len(srv.Health()) != 1 {
		t.Errorf("Health() = %v, want the warn failure", srv.Health())
	}

	// A critical check outranks the warn: 503.
	level = HealthCritical
	code, report = fetch()
	if code != http.StatusServiceUnavailable || report["status"] != "critical" {
		t.Fatalf("critical = %d %v", code, report)
	}

	// Leveled check downgrading to warn drops the 503 again.
	level = HealthWarn
	if code, report := fetch(); code != 200 || report["status"] != "warn" {
		t.Fatalf("warn-only = %d %v", code, report)
	}
	degraded = false
	level = HealthOK
	if code, report := fetch(); code != 200 || report["status"] != "ok" {
		t.Fatalf("recovered = %d %v", code, report)
	}
}
