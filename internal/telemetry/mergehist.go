package telemetry

// MergeHist is a fixed-shape, bounded-bucket histogram built for in-band
// aggregation rather than scraping: every instance has exactly
// MergeHistBuckets counts, so merging two histograms is a bucket-wise sum
// with no reallocation and no bucket negotiation. Bucket boundaries are
// NOT part of the value — they are a property of the series (e.g. headroom
// fraction vs. gather latency) and are passed to Observe/Quantile by the
// caller, which keeps the wire encoding to the counts and sum alone.
//
// Merge is associative and commutative, and the zero value is its
// identity, which is what lets digests carrying MergeHists roll up a
// hierarchy level by level in any grouping.
type MergeHist struct {
	Counts [MergeHistBuckets]uint64 `json:"counts"`
	Sum    float64                  `json:"sum"`
}

// MergeHistBuckets is the fixed bucket count of every MergeHist. The last
// bucket is the overflow bucket, so bounds tables carry
// MergeHistBuckets-1 upper bounds.
const MergeHistBuckets = 12

// Observe records v into the bucket selected by bounds: bucket i holds
// values <= bounds[i], the final bucket holds everything beyond the last
// bound. Extra bounds beyond MergeHistBuckets-1 are ignored.
func (h *MergeHist) Observe(bounds []float64, v float64) {
	i := 0
	for i < len(bounds) && i < MergeHistBuckets-1 && v > bounds[i] {
		i++
	}
	h.Counts[i]++
	h.Sum += v
}

// Merge adds o's buckets and sum into h. Safe with o == nil (no-op).
func (h *MergeHist) Merge(o *MergeHist) {
	if o == nil {
		return
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
}

// Count returns the total number of observations.
func (h *MergeHist) Count() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// IsZero reports whether the histogram holds no observations.
func (h *MergeHist) IsZero() bool { return h.Count() == 0 }

// Reset clears the histogram to its zero value.
func (h *MergeHist) Reset() { *h = MergeHist{} }

// Mean returns the average observed value, or 0 with no observations.
func (h *MergeHist) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum / float64(n)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0, 1]) under the given bounds table: the upper bound of the bucket the
// quantile rank lands in, or the last finite bound for the overflow
// bucket. Returns 0 with no observations.
func (h *MergeHist) Quantile(bounds []float64, q float64) float64 {
	total := h.Count()
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1]
		}
	}
	return bounds[len(bounds)-1]
}
