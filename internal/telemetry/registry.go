// Package telemetry is a dependency-free, concurrency-safe metrics
// registry for the CapMaestro control plane: counters, gauges, and
// histograms, optionally with labeled children, rendered in the Prometheus
// text exposition format and served over HTTP (see http.go).
//
// The package exists because a long-running power-capping service lives or
// dies by its monitoring — every control-plane layer (room worker, rack
// transport, capping controllers, node managers) registers its metrics
// here so a single scrape shows the whole stack.
//
// # Nil-safety contract
//
// Every handle method is a no-op on a nil receiver, and a nil *Registry
// hands out nil handles: code instruments itself unconditionally and pays
// nothing — no allocations, no lock traffic — when telemetry is disabled.
//
//	var reg *telemetry.Registry // nil: telemetry off
//	c := reg.Counter("x_total", "...") // c == nil
//	c.Inc()                            // no-op, zero alloc
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the type of a metric family.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DefBuckets are general-purpose latency buckets in seconds, matching the
// Prometheus client default.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry holds metric families. The zero value is not usable; use
// NewRegistry. A nil *Registry is valid and disables all instrumentation.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema and kind.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram upper bounds, sorted

	mu       sync.RWMutex
	children map[string]*child
}

type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// labelKey joins label values into a map key. \xff cannot appear in valid
// UTF-8 label values, so the key is unambiguous.
func labelKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	return strings.Join(values, "\xff")
}

// register finds or creates a family, panicking on schema mismatch — a
// mismatched re-registration is a programming error, as in the Prometheus
// client.
func (r *Registry) register(name, help string, kind Kind, labelNames []string, buckets []float64) *family {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %v (was %v)", name, kind, f.kind))
		}
		if !equalStrings(f.labelNames, labelNames) {
			panic(fmt.Sprintf("telemetry: %s re-registered with labels %v (was %v)", name, labelNames, f.labelNames))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: append([]string(nil), labelNames...),
		children:   make(map[string]*child),
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child finds or creates the labeled child for the given values.
func (f *family) child(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.counter = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		c.hist = newHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

// Counter returns the unlabeled counter with the given name, creating it on
// first use. Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindCounter, nil, nil).child(nil).counter
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindGauge, nil, nil).child(nil).gauge
}

// Histogram returns the unlabeled histogram with the given name. Nil or
// empty buckets select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindHistogram, nil, buckets).child(nil).hist
}

// CounterVec declares a counter family with labeled children.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, KindCounter, labelNames, nil)}
}

// GaugeVec declares a gauge family with labeled children.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, KindGauge, labelNames, nil)}
}

// HistogramVec declares a histogram family with labeled children.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{fam: r.register(name, help, KindHistogram, labelNames, buckets)}
}

// CounterVec hands out labeled counters. Nil is a valid no-op vec.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (nil on a nil vec).
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.child(labelValues).counter
}

// GaugeVec hands out labeled gauges. Nil is a valid no-op vec.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values (nil on a nil vec).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.child(labelValues).gauge
}

// HistogramVec hands out labeled histograms. Nil is a valid no-op vec.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values (nil on a nil vec).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.child(labelValues).hist
}

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter by v; negative deltas are ignored (counters
// are monotone).
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		cur := math.Float64frombits(old)
		if c.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative le-labeled buckets. All
// methods are safe for concurrent use and no-ops on a nil receiver.
type Histogram struct {
	upper []float64 // sorted upper bounds; the +Inf bucket is implicit

	mu     sync.Mutex
	counts []uint64 // len(upper)+1; last is the +Inf overflow bucket
	sum    float64
	total  uint64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{upper: buckets, counts: make([]uint64, len(buckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v (le is inclusive).
	idx := sort.SearchFloat64s(h.upper, v)
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts aligned with upper, plus the
// total count and sum.
func (h *Histogram) snapshot() (cum []uint64, total uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.total, h.sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation within the bucket containing the
// target rank, the same estimator Prometheus's histogram_quantile uses:
// observations are assumed uniformly spread across their bucket, the
// lower edge of the first bucket is taken as 0, and a quantile landing
// in the +Inf bucket is clamped to the largest finite upper bound. q is
// clamped to [0, 1]; the result is NaN when the histogram is empty (or
// nil) and exact only up to bucket resolution.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	cum, total, _ := h.snapshot()
	if total == 0 {
		return math.NaN()
	}
	q = math.Max(0, math.Min(1, q))
	rank := q * float64(total)
	var prev uint64
	for i, c := range cum {
		// Skip buckets with no mass: a rank of 0 (q=0) or one landing
		// exactly on a cumulative boundary must interpolate within the
		// first bucket that actually holds observations, not return the
		// lower edge of an empty leading bucket.
		if c == prev {
			continue
		}
		if float64(c) < rank {
			prev = c
			continue
		}
		if i >= len(h.upper) {
			// +Inf bucket: no finite upper edge to interpolate toward.
			if len(h.upper) == 0 {
				return math.NaN()
			}
			return h.upper[len(h.upper)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.upper[i-1]
		}
		// q=0 with empty leading buckets yields rank < prev; clamp so the
		// estimate is the lower edge of this (first occupied) bucket.
		r := math.Max(rank, float64(prev))
		return lower + (h.upper[i]-lower)*((r-float64(prev))/float64(c-prev))
	}
	return math.NaN() // unreachable: cum[len-1] == total >= rank
}

// Buckets returns the histogram's upper bounds (excluding +Inf).
func (h *Histogram) Buckets() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.upper...)
}

// BucketCount returns the cumulative count of observations <= the i-th
// upper bound; i == len(Buckets()) addresses the +Inf bucket.
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil {
		return 0
	}
	cum, _, _ := h.snapshot()
	if i < 0 || i >= len(cum) {
		return 0
	}
	return cum[i]
}
