package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Server exposes a registry over HTTP:
//
//	/metrics     Prometheus text exposition format
//	/healthz     200 "ok" while every registered health check passes,
//	             503 with the failing checks otherwise
//	/debug/vars  expvar-style JSON snapshot of every metric
//
// Create one with NewServer (handler only, for embedding or tests) or
// Serve (binds a listener and serves in the background).
type Server struct {
	reg *Registry

	mu     sync.Mutex
	checks map[string]func() error
	ln     net.Listener
	srv    *http.Server
}

// NewServer wraps a registry in an HTTP handler without binding a port.
func NewServer(reg *Registry) *Server {
	return &Server{reg: reg, checks: make(map[string]func() error)}
}

// Serve starts an HTTP server for the registry on addr (e.g.
// "127.0.0.1:9090"; use port 0 for an ephemeral port). It returns once the
// listener is bound; requests are handled on a background goroutine until
// Close.
func Serve(reg *Registry, addr string) (*Server, error) {
	s := NewServer(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address, or "" before Serve.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight requests.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// AddHealthCheck registers a named health check consulted by /healthz. A
// check returning a non-nil error marks the process unhealthy. Nil-safe.
func (s *Server) AddHealthCheck(name string, check func() error) {
	if s == nil || check == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checks[name] = check
}

// Health runs every registered check and returns the failures, keyed by
// check name. An empty map means healthy.
func (s *Server) Health() map[string]error {
	failures := make(map[string]error)
	if s == nil {
		return failures
	}
	s.mu.Lock()
	checks := make(map[string]func() error, len(s.checks))
	for name, fn := range s.checks {
		checks[name] = fn
	}
	s.mu.Unlock()
	for name, fn := range checks {
		if err := fn(); err != nil {
			failures[name] = err
		}
	}
	return failures
}

// Handler returns the HTTP handler serving the three endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/vars", s.handleVars)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	failures := s.Health()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(failures) == 0 {
		fmt.Fprintln(w, "ok")
		return
	}
	names := make([]string, 0, len(failures))
	for name := range failures {
		names = append(names, name)
	}
	sort.Strings(names)
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "unhealthy")
	for _, name := range names {
		fmt.Fprintf(w, "%s: %v\n", name, failures[name])
	}
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.reg.Snapshot())
}

// ErrUnhealthy is a convenience sentinel for health checks that have no
// more specific error to report.
var ErrUnhealthy = errors.New("unhealthy")
