package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// HealthLevel is a health check's verdict. Levels order by severity, so
// the rollup of several checks is simply the maximum.
type HealthLevel int

// Health levels, worst last.
const (
	// HealthOK: the check passed.
	HealthOK HealthLevel = iota
	// HealthWarn: degraded but serving — /healthz stays 200 so
	// orchestrators don't restart a process that is riding out a
	// recoverable condition (e.g. a rack held on stale budgets).
	HealthWarn
	// HealthCritical: failing — /healthz returns 503.
	HealthCritical
)

// String returns the level's /healthz status word.
func (l HealthLevel) String() string {
	switch l {
	case HealthWarn:
		return "warn"
	case HealthCritical:
		return "critical"
	default:
		return "ok"
	}
}

// Server exposes a registry over HTTP:
//
//	/metrics     Prometheus text exposition format
//	/healthz     JSON health report with a three-level rollup: "ok"
//	             (200) while every check passes, "warn" (still 200)
//	             when only degraded-level checks fail, "critical" (503)
//	             when any critical check fails; detail providers
//	             (AddHealthDetail) enrich the body
//	/debug/vars  expvar-style JSON snapshot of every metric
//
// Additional handlers mount dynamically with Handle (e.g. a flight
// recorder's debug endpoints) or EnablePprof, before or after Serve.
//
// Create one with NewServer (handler only, for embedding or tests) or
// Serve (binds a listener and serves in the background).
type Server struct {
	reg *Registry

	mu      sync.Mutex
	checks  map[string]func() (HealthLevel, string)
	details map[string]func() any
	mounts  map[string]http.Handler
	ln      net.Listener
	srv     *http.Server
}

// NewServer wraps a registry in an HTTP handler without binding a port.
func NewServer(reg *Registry) *Server {
	return &Server{
		reg:     reg,
		checks:  make(map[string]func() (HealthLevel, string)),
		details: make(map[string]func() any),
		mounts:  make(map[string]http.Handler),
	}
}

// Serve starts an HTTP server for the registry on addr (e.g.
// "127.0.0.1:9090"; use port 0 for an ephemeral port). It returns once the
// listener is bound; requests are handled on a background goroutine until
// Close.
func Serve(reg *Registry, addr string) (*Server, error) {
	s := NewServer(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address, or "" before Serve.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight requests.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// AddHealthCheck registers a named health check consulted by /healthz. A
// check returning a non-nil error marks the process critical (503).
// Nil-safe.
func (s *Server) AddHealthCheck(name string, check func() error) {
	if s == nil || check == nil {
		return
	}
	s.AddLeveledCheck(name, func() (HealthLevel, string) {
		if err := check(); err != nil {
			return HealthCritical, err.Error()
		}
		return HealthOK, ""
	})
}

// AddWarnCheck registers a degraded-level health check: a non-nil error
// marks the process "warn" in /healthz without flipping it to 503 —
// for conditions the control plane is designed to ride out, like racks
// temporarily held on stale budgets. Nil-safe.
func (s *Server) AddWarnCheck(name string, check func() error) {
	if s == nil || check == nil {
		return
	}
	s.AddLeveledCheck(name, func() (HealthLevel, string) {
		if err := check(); err != nil {
			return HealthWarn, err.Error()
		}
		return HealthOK, ""
	})
}

// AddLeveledCheck registers a health check that chooses its own level
// per evaluation — e.g. the SLO tracker reporting warn or critical
// depending on which alert rules are firing. The message explains a
// non-OK verdict. Nil-safe.
func (s *Server) AddLeveledCheck(name string, check func() (HealthLevel, string)) {
	if s == nil || check == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checks[name] = check
}

// AddHealthDetail registers a named detail provider whose value is
// embedded in the /healthz JSON body under "details" — freshness maps,
// uptime counters, anything json.Marshal accepts. Details never affect
// the health verdict. Nil-safe.
func (s *Server) AddHealthDetail(name string, detail func() any) {
	if s == nil || detail == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.details[name] = detail
}

// Handle mounts an extra handler on the server, before or after Serve. A
// pattern ending in "/" matches the whole subtree; otherwise the match is
// exact. Mounted patterns take precedence over the built-in endpoints.
// Nil-safe.
func (s *Server) Handle(pattern string, h http.Handler) {
	if s == nil || pattern == "" || h == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mounts[pattern] = h
}

// EnablePprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/, so CPU, heap, and goroutine profiles are one
// `go tool pprof` away. Off unless called: the profile endpoints can
// perturb the control loop and should be an explicit operator choice.
func (s *Server) EnablePprof() {
	if s == nil {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.Handle("/debug/pprof/", mux)
}

// checkResult is one evaluated health check.
type checkResult struct {
	level   HealthLevel
	message string
}

// Health runs every registered check and returns the non-OK results,
// keyed by check name, as errors prefixed with the level ("warn: ..."
// or "critical: ..."). An empty map means fully healthy.
func (s *Server) Health() map[string]error {
	failures := make(map[string]error)
	for name, res := range s.runChecks() {
		if res.level != HealthOK {
			failures[name] = fmt.Errorf("%s: %s", res.level, res.message)
		}
	}
	return failures
}

// runChecks evaluates every registered check (outside the lock, since a
// check may itself take locks).
func (s *Server) runChecks() map[string]checkResult {
	results := make(map[string]checkResult)
	if s == nil {
		return results
	}
	s.mu.Lock()
	checks := make(map[string]func() (HealthLevel, string), len(s.checks))
	for name, fn := range s.checks {
		checks[name] = fn
	}
	s.mu.Unlock()
	for name, fn := range checks {
		level, msg := fn()
		results[name] = checkResult{level: level, message: msg}
	}
	return results
}

// Handler returns the HTTP handler serving the built-in endpoints plus
// everything mounted with Handle, including mounts added after Serve.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/vars", s.handleVars)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := s.mountFor(r.URL.Path); h != nil {
			h.ServeHTTP(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// mountFor resolves a dynamically mounted handler for path: an exact
// pattern first, then the longest matching trailing-"/" prefix pattern.
func (s *Server) mountFor(path string) http.Handler {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.mounts[path]; ok {
		return h
	}
	var best string
	var bestH http.Handler
	for pattern, h := range s.mounts {
		if strings.HasSuffix(pattern, "/") && strings.HasPrefix(path, pattern) && len(pattern) > len(best) {
			best, bestH = pattern, h
		}
	}
	return bestH
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// healthReport is the /healthz response body.
type healthReport struct {
	// Status is the worst check level: "ok", "warn", or "critical".
	Status string `json:"status"`
	// Checks maps every registered check to "ok" or its leveled verdict
	// ("warn: ..." / "critical: ...").
	Checks map[string]string `json:"checks,omitempty"`
	// Details carries the detail providers' values (e.g. per-rack
	// freshness), purely informational.
	Details map[string]any `json:"details,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	results := s.runChecks()
	worst := HealthOK
	report := healthReport{}
	if len(results) > 0 {
		report.Checks = make(map[string]string, len(results))
		names := make([]string, 0, len(results))
		for name := range results {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			res := results[name]
			if res.level > worst {
				worst = res.level
			}
			if res.level == HealthOK {
				report.Checks[name] = "ok"
			} else {
				report.Checks[name] = fmt.Sprintf("%s: %s", res.level, res.message)
			}
		}
	}
	report.Status = worst.String()
	s.mu.Lock()
	details := make(map[string]func() any, len(s.details))
	for name, fn := range s.details {
		details[name] = fn
	}
	s.mu.Unlock()
	if len(details) > 0 {
		report.Details = make(map[string]any, len(details))
		for name, fn := range details {
			report.Details[name] = fn()
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if worst == HealthCritical {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(report)
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	// Encode into a buffer first: once bytes hit the ResponseWriter the
	// status is committed and a mid-snapshot failure could no longer be
	// reported as a 500.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.reg.Snapshot()); err != nil {
		slog.Error("telemetry: /debug/vars snapshot encoding failed", "err", err)
		http.Error(w, "metrics snapshot encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// ErrUnhealthy is a convenience sentinel for health checks that have no
// more specific error to report.
var ErrUnhealthy = errors.New("unhealthy")
