package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4). Families and labeled children are
// emitted in sorted order so output is deterministic. A nil registry
// renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.render(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) render(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()

	for _, c := range children {
		switch f.kind {
		case KindCounter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, renderLabels(f.labelNames, c.labelValues), formatValue(c.counter.Value()))
		case KindGauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, renderLabels(f.labelNames, c.labelValues), formatValue(c.gauge.Value()))
		case KindHistogram:
			cum, total, sum := c.hist.snapshot()
			for i, bound := range f.buckets {
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					renderLabelsLe(f.labelNames, c.labelValues, formatValue(bound)), cum[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				renderLabelsLe(f.labelNames, c.labelValues, "+Inf"), cum[len(cum)-1])
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, renderLabels(f.labelNames, c.labelValues), formatValue(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, renderLabels(f.labelNames, c.labelValues), total)
		}
	}
}

// renderLabels renders `{a="x",b="y"}`, or "" with no labels.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, escapeLabel(values[i]))
	}
	b.WriteByte('}')
	return b.String()
}

// renderLabelsLe renders labels plus the histogram `le` bound.
func renderLabelsLe(names, values []string, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		fmt.Fprintf(&b, "%s=%q,", n, escapeLabel(values[i]))
	}
	fmt.Fprintf(&b, "le=%q}", le)
	return b.String()
}

// escapeLabel escapes backslash and newline per the exposition format;
// %q handles the double quote.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value; infinities use the exposition
// format's +Inf/-Inf spelling.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot returns every metric as a JSON-friendly map for the
// /debug/vars-style endpoint: scalar metrics map "name" or
// `name{label="value"}` to their value; histograms map to an object with
// count, sum, and cumulative buckets. A nil registry returns an empty map.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.RLock()
		children := make([]*child, 0, len(f.children))
		for _, c := range f.children {
			children = append(children, c)
		}
		f.mu.RUnlock()
		for _, c := range children {
			key := f.name + renderLabels(f.labelNames, c.labelValues)
			switch f.kind {
			case KindCounter:
				out[key] = c.counter.Value()
			case KindGauge:
				out[key] = c.gauge.Value()
			case KindHistogram:
				cum, total, sum := c.hist.snapshot()
				buckets := make(map[string]uint64, len(cum))
				for i, bound := range f.buckets {
					buckets[formatValue(bound)] = cum[i]
				}
				buckets["+Inf"] = cum[len(cum)-1]
				out[key] = map[string]any{"count": total, "sum": sum, "buckets": buckets}
			}
		}
	}
	return out
}
