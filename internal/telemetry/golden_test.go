// The golden test below pins the exported metric schema — every family
// name, help string, and type across the instrumented subsystems — so a
// rename or help-text edit shows up as an explicit diff in review instead
// of silently breaking dashboards and alert rules that scrape them.
package telemetry_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"capmaestro/internal/controlplane"
	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/sim"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
	"capmaestro/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/metrics.golden from the live registry")

func goldenLeaf(id, serverID string, demand power.Watts) *core.Node {
	return core.NewLeaf(id, core.SupplyLeaf{
		SupplyID: id, ServerID: serverID, Share: 1,
		CapMin: 270, CapMax: 490, Demand: demand,
	})
}

// registerAllSubsystems instantiates one of everything that registers
// metrics — simulator (which wires the capping controllers and node
// managers), room and rack workers, and both sides of the rack transport —
// against a single registry.
func registerAllSubsystems(t *testing.T, reg *telemetry.Registry) {
	t.Helper()

	// Simulator: registers sim-, server-, and capping-level families.
	root := topology.NewNode("X", topology.KindUtility, 0)
	root.Feed = "X"
	cdu := root.AddChild(topology.NewNode("X-cdu", topology.KindCDU, 1400))
	cdu.AddChild(topology.NewSupply("SA-ps", "SA", 1))
	cdu.AddChild(topology.NewSupply("SB-ps", "SB", 1))
	topo, err := topology.New(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{
		Topology: topo,
		Servers: map[string]sim.ServerSpec{
			"SA": {Utilization: 0.5},
			"SB": {Utilization: 0.5},
		},
		Telemetry: reg,
	}); err != nil {
		t.Fatal(err)
	}

	// Control plane: rack worker, room worker, and the TCP transport.
	rackTree := core.NewShifting("rack0", 750,
		goldenLeaf("SA-ps", "SA", 430),
		goldenLeaf("SB-ps", "SB", 430),
	)
	rack, err := controlplane.NewRackWorker("rack0", rackTree, core.GlobalPriority,
		nil, controlplane.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	roomTree := core.NewShifting("room", 1400, core.NewProxy("rack0", core.NewSummary()))
	if _, err := controlplane.NewRoomWorker(roomTree, 1200, core.GlobalPriority,
		map[string]controlplane.RackClient{"rack0": controlplane.LocalClient{Worker: rack}},
		controlplane.WithTelemetry(reg)); err != nil {
		t.Fatal(err)
	}
	// Aggregator tier: registers the per-level hierarchy families.
	aggTree := core.NewShifting("agg0", 0, core.NewProxy("rack0", core.NewSummary()))
	if _, err := controlplane.NewAggregator(aggTree, core.GlobalPriority,
		map[string]controlplane.RackClient{"rack0": controlplane.LocalClient{Worker: rack}},
		controlplane.WithTelemetry(reg), controlplane.WithHierarchyLevel(1)); err != nil {
		t.Fatal(err)
	}

	srv, err := controlplane.ServeRack(rack, "127.0.0.1:0", controlplane.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client := controlplane.DialRack(srv.Addr(), time.Second, controlplane.WithTelemetry(reg))
	t.Cleanup(func() { client.Close() })

	// Safety-SLO tracker: registers the slo_* families.
	if _, err := slo.New(slo.Config{Registry: reg}); err != nil {
		t.Fatal(err)
	}
}

// TestMetricSchemaGolden renders the full registry in Prometheus text
// format and compares the schema lines (# HELP / # TYPE) against the
// committed golden file. Run with -update to accept an intentional change.
func TestMetricSchemaGolden(t *testing.T) {
	reg := telemetry.NewRegistry()
	registerAllSubsystems(t, reg)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var schema []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# ") {
			schema = append(schema, line)
		}
	}
	if len(schema) == 0 {
		t.Fatal("no metric families registered")
	}
	got := strings.Join(schema, "\n") + "\n"

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report per-line drift so a rename is obvious at a glance.
	gotLines := toSet(got)
	wantLines := toSet(string(want))
	for line := range wantLines {
		if _, ok := gotLines[line]; !ok {
			t.Errorf("missing from live registry: %s", line)
		}
	}
	for line := range gotLines {
		if _, ok := wantLines[line]; !ok {
			t.Errorf("not in golden file: %s", line)
		}
	}
	t.Errorf("metric schema drifted from %s; if intentional, regenerate with: go test ./internal/telemetry -run TestMetricSchemaGolden -update", golden)
}

func toSet(s string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		set[line] = struct{}{}
	}
	return set
}
