package topocheck

import (
	"fmt"
	"time"

	"capmaestro/internal/power"
	"capmaestro/internal/sim"
	"capmaestro/internal/topology"
)

// SimPlant adapts a running simulation to the Plant interface.
// Perturbation drops the server's utilization to idle — a change the node
// manager cannot mask — and restores it afterwards.
type SimPlant struct {
	Sim *sim.Simulator
	// SettleTime is how long the plant runs between perturbation and
	// measurement; zero selects 2 s (utilization changes propagate to the
	// feeds immediately; the margin absorbs control-period activity).
	SettleTime time.Duration
}

// ServerIDs implements Plant.
func (p *SimPlant) ServerIDs() []string { return p.Sim.ServerIDs() }

// Meters implements Plant: every rated distribution node in the simulated
// (actual) topology is measurable.
func (p *SimPlant) Meters() []string {
	var out []string
	for _, root := range p.Sim.Topology().Roots() {
		root.Walk(func(n *topology.Node) bool {
			if n.Kind != topology.KindSupply && n.Rating > 0 {
				out = append(out, n.ID)
			}
			return true
		})
	}
	return out
}

// Read implements Plant.
func (p *SimPlant) Read(meterID string) power.Watts { return p.Sim.NodeLoad(meterID) }

// Settle implements Plant.
func (p *SimPlant) Settle() {
	d := p.SettleTime
	if d == 0 {
		d = 2 * time.Second
	}
	p.Sim.Run(d)
}

// Perturb implements Plant.
func (p *SimPlant) Perturb(serverID string) (func(), error) {
	srv := p.Sim.Server(serverID)
	if srv == nil {
		return nil, fmt.Errorf("topocheck: unknown server %q", serverID)
	}
	prev := srv.Utilization()
	if err := p.Sim.SetUtilization(serverID, 0); err != nil {
		return nil, err
	}
	return func() {
		// Restoring through the simulator keeps the API uniform; the
		// server is known to exist.
		if err := p.Sim.SetUtilization(serverID, prev); err != nil {
			panic(err)
		}
	}, nil
}
