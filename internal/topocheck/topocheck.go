// Package topocheck validates a declared power topology against the live
// electrical system, addressing an open challenge the paper calls out in
// Section 7: "wiring mistakes are possible when we connect servers to the
// power infrastructure (e.g., a wire is not plugged into the correct
// outlet). There is a need to develop a cost-effective approach to finding
// such errors in the topology (other than manual cable tracing)."
//
// The approach is active perturbation: throttle one server at a time and
// watch which branch-circuit meters respond. The meters that see the power
// drop are the server's true electrical ancestors; comparing them with the
// ancestors the declared topology predicts exposes miswired servers — both
// the branch they were supposed to be on (silent during the perturbation)
// and the branch they are actually on (responding unexpectedly).
//
// CapMaestro depends on topology correctness for safety: budgets computed
// against a wrong tree can overload a real breaker. Running Verify during
// commissioning (or periodically during quiet hours) closes that gap.
package topocheck

import (
	"errors"
	"fmt"
	"sort"

	"capmaestro/internal/power"
	"capmaestro/internal/topology"
)

// Plant is the live system under test. The simulator satisfies it via
// SimPlant; a real deployment would back it with utilization/cap controls
// and branch-circuit meters.
type Plant interface {
	// ServerIDs lists the servers that can be perturbed.
	ServerIDs() []string
	// Perturb reduces the named server's power draw by a detectable
	// amount and returns a function restoring the previous state.
	Perturb(serverID string) (restore func(), err error)
	// Meters lists the measurable branch points.
	Meters() []string
	// Read returns the power currently flowing through a meter.
	Read(meterID string) power.Watts
	// Settle advances the plant until a perturbation is observable.
	Settle()
}

// Options tunes verification.
type Options struct {
	// MinDelta is the smallest meter change attributed to a perturbation;
	// smaller changes are treated as noise. Zero selects 30 W.
	MinDelta power.Watts
}

// Mismatch describes one miswired server.
type Mismatch struct {
	ServerID string
	// Expected are the declared ancestors (meters) that did not respond.
	MissingAt []string
	// UnexpectedAt are meters that responded but are not declared
	// ancestors.
	UnexpectedAt []string
}

// Report summarizes a verification run.
type Report struct {
	Checked    int
	Mismatches []Mismatch
}

// OK reports whether the declared topology matched the plant everywhere.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 }

// String renders the report for operators.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("topology verified: %d servers checked, no wiring mismatches", r.Checked)
	}
	s := fmt.Sprintf("topology MISMATCH: %d of %d servers miswired\n", len(r.Mismatches), r.Checked)
	for _, m := range r.Mismatches {
		s += fmt.Sprintf("  %s: declared on %v (silent), actually on %v\n",
			m.ServerID, m.MissingAt, m.UnexpectedAt)
	}
	return s
}

// Verify perturbs every server in the plant and checks the responding
// meters against the declared topology's ancestry.
func Verify(declared *topology.Topology, plant Plant, opts Options) (*Report, error) {
	if declared == nil {
		return nil, errors.New("topocheck: nil declared topology")
	}
	if plant == nil {
		return nil, errors.New("topocheck: nil plant")
	}
	minDelta := opts.MinDelta
	if minDelta == 0 {
		minDelta = 30
	}

	meters := plant.Meters()
	if len(meters) == 0 {
		return nil, errors.New("topocheck: plant has no meters")
	}
	expected := declaredAncestors(declared)

	report := &Report{}
	for _, serverID := range plant.ServerIDs() {
		plant.Settle()
		baseline := make(map[string]power.Watts, len(meters))
		for _, m := range meters {
			baseline[m] = plant.Read(m)
		}
		restore, err := plant.Perturb(serverID)
		if err != nil {
			return nil, fmt.Errorf("topocheck: perturb %s: %w", serverID, err)
		}
		plant.Settle()
		responding := make(map[string]bool, len(meters))
		for _, m := range meters {
			if baseline[m]-plant.Read(m) >= minDelta {
				responding[m] = true
			}
		}
		restore()
		report.Checked++

		want := expected[serverID]
		var missing, unexpected []string
		for m := range want {
			if !responding[m] {
				missing = append(missing, m)
			}
		}
		for m := range responding {
			if _, ok := want[m]; !ok {
				unexpected = append(unexpected, m)
			}
		}
		if len(missing) > 0 || len(unexpected) > 0 {
			sort.Strings(missing)
			sort.Strings(unexpected)
			report.Mismatches = append(report.Mismatches, Mismatch{
				ServerID:     serverID,
				MissingAt:    missing,
				UnexpectedAt: unexpected,
			})
		}
	}
	plant.Settle()
	sort.Slice(report.Mismatches, func(i, j int) bool {
		return report.Mismatches[i].ServerID < report.Mismatches[j].ServerID
	})
	return report, nil
}

// declaredAncestors maps each server to the set of rated (metered)
// distribution nodes above any of its supplies in the declared topology.
func declaredAncestors(t *topology.Topology) map[string]map[string]struct{} {
	out := make(map[string]map[string]struct{})
	for _, supply := range t.Supplies() {
		set := out[supply.ServerID]
		if set == nil {
			set = make(map[string]struct{})
			out[supply.ServerID] = set
		}
		for _, anc := range supply.Path() {
			if anc.Kind != topology.KindSupply && anc.Rating > 0 {
				set[anc.ID] = struct{}{}
			}
		}
	}
	return out
}
