package topocheck

import (
	"strings"
	"testing"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/sim"
	"capmaestro/internal/topology"
)

// buildTopo wires servers to CDUs per the given assignment
// (serverID → CDU index 1 or 2).
func buildTopo(t *testing.T, wiring map[string]int) *topology.Topology {
	t.Helper()
	root := topology.NewNode("X", topology.KindUtility, 0)
	root.Feed = "X"
	rpp := root.AddChild(topology.NewNode("rpp", topology.KindRPP, 4000))
	cdu1 := rpp.AddChild(topology.NewNode("cdu1", topology.KindCDU, 2000))
	cdu2 := rpp.AddChild(topology.NewNode("cdu2", topology.KindCDU, 2000))
	for srv, cdu := range wiring {
		parent := cdu1
		if cdu == 2 {
			parent = cdu2
		}
		parent.AddChild(topology.NewSupply(srv+"-ps", srv, 1))
	}
	topo, err := topology.New(root)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func buildSim(t *testing.T, wiring map[string]int) *sim.Simulator {
	t.Helper()
	servers := make(map[string]sim.ServerSpec)
	for srv := range wiring {
		servers[srv] = sim.ServerSpec{Utilization: 1}
	}
	derating := topology.FullRating()
	s, err := sim.New(sim.Config{
		Topology: buildTopo(t, wiring),
		Servers:  servers,
		Policy:   core.GlobalPriority,
		Derating: &derating,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var actualWiring = map[string]int{"alpha": 1, "bravo": 1, "charlie": 2}

func TestVerifyCorrectTopology(t *testing.T) {
	s := buildSim(t, actualWiring)
	declared := buildTopo(t, actualWiring)
	report, err := Verify(declared, &SimPlant{Sim: s}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("correct topology flagged: %s", report)
	}
	if report.Checked != 3 {
		t.Errorf("checked = %d, want 3", report.Checked)
	}
	if !strings.Contains(report.String(), "no wiring mismatches") {
		t.Errorf("report text: %s", report)
	}
}

func TestVerifyDetectsMiswiredServer(t *testing.T) {
	s := buildSim(t, actualWiring)
	// The declared topology believes charlie is on cdu1 — a classic
	// plugged-into-the-wrong-outlet mistake.
	declaredWiring := map[string]int{"alpha": 1, "bravo": 1, "charlie": 1}
	declared := buildTopo(t, declaredWiring)

	report, err := Verify(declared, &SimPlant{Sim: s}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("miswired charlie not detected")
	}
	if len(report.Mismatches) != 1 {
		t.Fatalf("mismatches = %+v", report.Mismatches)
	}
	m := report.Mismatches[0]
	if m.ServerID != "charlie" {
		t.Errorf("flagged %s, want charlie", m.ServerID)
	}
	if len(m.MissingAt) != 1 || m.MissingAt[0] != "cdu1" {
		t.Errorf("missing = %v, want [cdu1]", m.MissingAt)
	}
	if len(m.UnexpectedAt) != 1 || m.UnexpectedAt[0] != "cdu2" {
		t.Errorf("unexpected = %v, want [cdu2]", m.UnexpectedAt)
	}
	if !strings.Contains(report.String(), "charlie") {
		t.Errorf("report text: %s", report)
	}
}

func TestVerifySwappedServers(t *testing.T) {
	s := buildSim(t, map[string]int{"alpha": 1, "bravo": 2})
	// Declared has alpha and bravo swapped.
	declared := buildTopo(t, map[string]int{"alpha": 2, "bravo": 1})
	report, err := Verify(declared, &SimPlant{Sim: s}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Mismatches) != 2 {
		t.Fatalf("swap should flag both servers: %s", report)
	}
}

func TestVerifyRestoresLoad(t *testing.T) {
	s := buildSim(t, actualWiring)
	declared := buildTopo(t, actualWiring)
	if _, err := Verify(declared, &SimPlant{Sim: s}, Options{}); err != nil {
		t.Fatal(err)
	}
	for srv := range actualWiring {
		if u := s.Server(srv).Utilization(); u != 1 {
			t.Errorf("server %s utilization %v not restored", srv, u)
		}
	}
}

func TestVerifyValidation(t *testing.T) {
	s := buildSim(t, actualWiring)
	declared := buildTopo(t, actualWiring)
	if _, err := Verify(nil, &SimPlant{Sim: s}, Options{}); err == nil {
		t.Error("nil declared should fail")
	}
	if _, err := Verify(declared, nil, Options{}); err == nil {
		t.Error("nil plant should fail")
	}
}

// noMeterPlant has servers but no measurable branch points.
type noMeterPlant struct{}

func (noMeterPlant) ServerIDs() []string            { return []string{"s"} }
func (noMeterPlant) Perturb(string) (func(), error) { return func() {}, nil }
func (noMeterPlant) Meters() []string               { return nil }
func (noMeterPlant) Read(string) power.Watts        { return 0 }
func (noMeterPlant) Settle()                        {}

func TestVerifyNoMeters(t *testing.T) {
	declared := buildTopo(t, actualWiring)
	if _, err := Verify(declared, noMeterPlant{}, Options{}); err == nil {
		t.Error("plant without meters should fail")
	}
}

func TestSimPlantUnknownServer(t *testing.T) {
	s := buildSim(t, actualWiring)
	p := &SimPlant{Sim: s}
	if _, err := p.Perturb("nope"); err == nil {
		t.Error("unknown server should fail")
	}
	if len(p.Meters()) != 3 { // rpp + 2 CDUs
		t.Errorf("meters = %v", p.Meters())
	}
}
