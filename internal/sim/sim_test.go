package sim

import (
	"math"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/topology"
)

// fig2Topology builds the single-feed testbed of Figure 2: a top CB over
// left/right CBs with two single-corded servers under each.
func fig2Topology(t *testing.T) *topology.Topology {
	t.Helper()
	root := topology.NewNode("X", topology.KindUtility, 0)
	root.Feed = "X"
	top := root.AddChild(topology.NewNode("top-cb", topology.KindRPP, 1400))
	left := top.AddChild(topology.NewNode("left-cb", topology.KindCDU, 750))
	right := top.AddChild(topology.NewNode("right-cb", topology.KindCDU, 750))
	left.AddChild(topology.NewSupply("SA-ps", "SA", 1))
	left.AddChild(topology.NewSupply("SB-ps", "SB", 1))
	right.AddChild(topology.NewSupply("SC-ps", "SC", 1))
	right.AddChild(topology.NewSupply("SD-ps", "SD", 1))
	topo, err := topology.New(root)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// utilFor computes the utilization at which the default server model
// demands the given AC power.
func utilFor(demand power.Watts) float64 {
	return power.DefaultServerModel().UtilizationFor(demand)
}

func fig2Servers(priA core.Priority) map[string]ServerSpec {
	return map[string]ServerSpec{
		"SA": {Priority: priA, Utilization: utilFor(420)},
		"SB": {Priority: 0, Utilization: utilFor(413)},
		"SC": {Priority: 0, Utilization: utilFor(417)},
		"SD": {Priority: 0, Utilization: utilFor(423)},
	}
}

func fullRating() *topology.Derating {
	d := topology.FullRating()
	return &d
}

func TestNewValidation(t *testing.T) {
	topo := fig2Topology(t)
	if _, err := New(Config{}); err == nil {
		t.Error("nil topology should fail")
	}
	if _, err := New(Config{Topology: topo}); err == nil {
		t.Error("missing server specs should fail")
	}
	specs := fig2Servers(1)
	specs["ghost"] = ServerSpec{}
	if _, err := New(Config{Topology: topo, Servers: specs}); err == nil {
		t.Error("spec without topology supplies should fail")
	}
	if _, err := New(Config{Topology: topo, Servers: fig2Servers(1),
		ControlPeriod: 100 * time.Millisecond}); err == nil {
		t.Error("sub-second control period should fail")
	}
}

// TestTable2EndToEnd drives the full stack — sensors, demand estimation,
// hierarchy allocation, PI capping, node-manager actuation — and checks
// that steady-state powers land on the paper's Table 2 shape.
func TestTable2EndToEnd(t *testing.T) {
	topo := fig2Topology(t)
	s, err := New(Config{
		Topology:    topo,
		Servers:     fig2Servers(1),
		Policy:      core.GlobalPriority,
		RootBudgets: map[topology.FeedID]power.Watts{"X": 1240},
		Derating:    fullRating(),
		TraceNodes:  []string{"top-cb", "left-cb", "right-cb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * time.Minute)

	wantPower := map[string]power.Watts{"SA": 420, "SB": 273, "SC": 273, "SD": 273}
	for id, want := range wantPower {
		got := s.Server(id).ACPower()
		if math.Abs(float64(got-want)) > 10 {
			t.Errorf("server %s power = %v, want ~%v", id, got, want)
		}
	}
	// Figure 6b: actual CB loads respect the limits.
	if got := s.NodeLoad("top-cb"); got > 1240+5 {
		t.Errorf("top CB load %v exceeds the 1240 W budget", got)
	}
	for _, cb := range []string{"left-cb", "right-cb"} {
		if got := s.NodeLoad(cb); got > 750 {
			t.Errorf("%s load %v exceeds 750 W", cb, got)
		}
	}
	if tripped := s.TrippedBreakers(); len(tripped) != 0 {
		t.Errorf("breakers tripped: %v", tripped)
	}
	// Traces recorded.
	if s.Recorder().Series("node:top-cb") == nil {
		t.Error("top CB trace missing")
	}
	if s.LastAllocation("X") == nil {
		t.Error("allocation missing")
	}
}

func TestPolicyOrderingEndToEnd(t *testing.T) {
	run := func(policy core.Policy) power.Watts {
		topo := fig2Topology(t)
		s, err := New(Config{
			Topology:    topo,
			Servers:     fig2Servers(1),
			Policy:      policy,
			RootBudgets: map[topology.FeedID]power.Watts{"X": 1240},
			Derating:    fullRating(),
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(2 * time.Minute)
		return s.Server("SA").ACPower()
	}
	np := run(core.NoPriority)
	lp := run(core.LocalPriority)
	gp := run(core.GlobalPriority)
	if !(gp > lp+20 && lp > np+20) {
		t.Errorf("SA power ordering: global %v > local %v > none %v expected", gp, lp, np)
	}
}

// dualFeedTopology builds the Figure 7a scenario: X and Y feeds, SA on X
// only (high priority), SB on Y only, SC/SD dual-corded with mismatched
// splits.
func dualFeedTopology(t *testing.T) *topology.Topology {
	t.Helper()
	mkFeed := func(feed topology.FeedID) (*topology.Node, *topology.Node, *topology.Node) {
		root := topology.NewNode(string(feed), topology.KindUtility, 0)
		root.Feed = feed
		top := root.AddChild(topology.NewNode(string(feed)+"-top", topology.KindRPP, 1400))
		left := top.AddChild(topology.NewNode(string(feed)+"-left", topology.KindCDU, 750))
		right := top.AddChild(topology.NewNode(string(feed)+"-right", topology.KindCDU, 750))
		return root, left, right
	}
	xRoot, xLeft, xRight := mkFeed("X")
	yRoot, yLeft, yRight := mkFeed("Y")
	xLeft.AddChild(topology.NewSupply("SA-x", "SA", 1))
	yLeft.AddChild(topology.NewSupply("SB-y", "SB", 1))
	xRight.AddChild(topology.NewSupply("SC-x", "SC", 0.533))
	yRight.AddChild(topology.NewSupply("SC-y", "SC", 0.467))
	xRight.AddChild(topology.NewSupply("SD-x", "SD", 0.461))
	yRight.AddChild(topology.NewSupply("SD-y", "SD", 0.539))
	topo, err := topology.New(xRoot, yRoot)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func dualFeedServers() map[string]ServerSpec {
	return map[string]ServerSpec{
		"SA": {Priority: 1, Utilization: utilFor(414)},
		"SB": {Priority: 0, Utilization: utilFor(415)},
		"SC": {Priority: 0, Utilization: utilFor(433)},
		"SD": {Priority: 0, Utilization: utilFor(439)},
	}
}

// TestSPOEndToEnd reproduces the Section 6.3 experiment: without SPO, SB is
// capped well below demand; with SPO, the Y feed's stranded power flows to
// SB.
func TestSPOEndToEnd(t *testing.T) {
	run := func(spo bool) (sb power.Watts, sc power.Watts, report *core.SPOReport) {
		s, err := New(Config{
			Topology: dualFeedTopology(t),
			Servers:  dualFeedServers(),
			Policy:   core.GlobalPriority,
			SPO:      spo,
			RootBudgets: map[topology.FeedID]power.Watts{
				"X": 700, "Y": 700,
			},
			Derating: fullRating(),
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(3 * time.Minute)
		return s.Server("SB").ACPower(), s.Server("SC").ACPower(), s.LastSPOReport()
	}
	sbWithout, scWithout, _ := run(false)
	sbWith, scWith, report := run(true)

	if sbWithout > 370 {
		t.Errorf("without SPO, SB power = %v, want capped near ~345", sbWithout)
	}
	if sbWith < sbWithout+40 {
		t.Errorf("SPO should boost SB: %v -> %v", sbWithout, sbWith)
	}
	if sbWith < 395 {
		t.Errorf("with SPO, SB power = %v, want near its 415 W demand", sbWith)
	}
	// Donors' consumption unchanged (Fig. 7b).
	if math.Abs(float64(scWith-scWithout)) > 10 {
		t.Errorf("SC consumption changed %v -> %v", scWithout, scWith)
	}
	if report == nil || report.TotalStranded <= 0 {
		t.Errorf("expected a stranded-power report, got %+v", report)
	}
}

// TestFeedFailureSafety verifies the core safety claim: when a feed fails
// and the surviving feed's breaker overloads, capping brings the load back
// under the limit well inside the breaker's trip window, so no breaker
// trips and no server loses power.
func TestFeedFailureSafety(t *testing.T) {
	mkFeed := func(feed topology.FeedID) *topology.Node {
		root := topology.NewNode(string(feed), topology.KindUtility, 0)
		root.Feed = feed
		cdu := root.AddChild(topology.NewNode(string(feed)+"-cdu", topology.KindCDU, 800))
		cdu.AddChild(topology.NewSupply("s1-"+string(feed), "s1", 0.5))
		cdu.AddChild(topology.NewSupply("s2-"+string(feed), "s2", 0.5))
		return root
	}
	topo, err := topology.New(mkFeed("X"), mkFeed("Y"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Topology: topo,
		Servers: map[string]ServerSpec{
			"s1": {Utilization: 1},
			"s2": {Utilization: 1},
		},
		Policy: core.GlobalPriority,
		RootBudgets: map[topology.FeedID]power.Watts{
			"X": 800, "Y": 800,
		},
		Derating: fullRating(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Schedule(30*time.Second, "fail feed Y", func(s *Simulator) { s.FailFeed("Y") })
	s.Run(2 * time.Minute)

	if !s.FeedFailed("Y") {
		t.Fatal("feed Y should be failed")
	}
	if tripped := s.TrippedBreakers(); len(tripped) != 0 {
		t.Fatalf("breakers tripped despite capping: %v", tripped)
	}
	if load := s.NodeLoad("X-cdu"); load > 800+2 {
		t.Errorf("X CDU load %v still above its 800 W rating", load)
	}
	// Both servers remain powered, throttled to ~400 W each.
	for _, id := range []string{"s1", "s2"} {
		p := s.Server(id).ACPower()
		if p < 300 || p > 420 {
			t.Errorf("server %s power = %v, want ~400 (capped)", id, p)
		}
	}

	// Restore the feed: servers climb back toward full demand.
	s.RestoreFeed("Y")
	s.Run(time.Minute)
	for _, id := range []string{"s1", "s2"} {
		if p := s.Server(id).ACPower(); p < 460 {
			t.Errorf("server %s power = %v after restore, want ~490", id, p)
		}
	}
}

// TestBreakerTripsWithoutCapping is the negative control: with capping
// effectively disabled (huge budgets), the same failure trips the breaker
// and the downstream servers lose power.
func TestBreakerTripsWithoutCapping(t *testing.T) {
	mkFeed := func(feed topology.FeedID) *topology.Node {
		root := topology.NewNode(string(feed), topology.KindUtility, 0)
		root.Feed = feed
		cdu := root.AddChild(topology.NewNode(string(feed)+"-cdu", topology.KindCDU, 600))
		cdu.AddChild(topology.NewSupply("s1-"+string(feed), "s1", 0.5))
		cdu.AddChild(topology.NewSupply("s2-"+string(feed), "s2", 0.5))
		return root
	}
	topo, err := topology.New(mkFeed("X"), mkFeed("Y"))
	if err != nil {
		t.Fatal(err)
	}
	// No budgets and full-rating derating: trees allow up to the CDU's
	// 600 W, but we also disable enforcement by giving the CDU's breaker a
	// load far beyond it: two 490 W servers on one 600 W-rated breaker is
	// a 163% overload, tripping in under ~30 s per the UL 489 curve.
	s, err := New(Config{
		Topology: topo,
		Servers: map[string]ServerSpec{
			"s1": {Utilization: 1},
			"s2": {Utilization: 1},
		},
		Policy:        core.NoPriority,
		Derating:      fullRating(),
		ControlPeriod: time.Hour, // effectively no control action
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Schedule(5*time.Second, "fail feed Y", func(s *Simulator) { s.FailFeed("Y") })
	s.Run(2 * time.Minute)
	tripped := s.TrippedBreakers()
	if len(tripped) == 0 {
		t.Fatal("expected X CDU breaker to trip without capping")
	}
	if tripped[0] != "X-cdu" {
		t.Errorf("tripped = %v, want X-cdu first", tripped)
	}
	// Cascade: both servers lost their X cords too; they draw nothing.
	for _, id := range []string{"s1", "s2"} {
		if p := s.Server(id).ACPower(); s.Server(id).WorkingSupplies() != 0 && p != 0 {
			t.Errorf("server %s still powered after trip cascade", id)
		}
	}
}

func TestScheduleAndSetUtilization(t *testing.T) {
	topo := fig2Topology(t)
	s, err := New(Config{
		Topology:    topo,
		Servers:     fig2Servers(0),
		Policy:      core.NoPriority,
		Derating:    fullRating(),
		RootBudgets: map[topology.FeedID]power.Watts{"X": 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	s.Schedule(10*time.Second, "bump load", func(s *Simulator) {
		fired = true
		if err := s.SetUtilization("SA", 0.1); err != nil {
			t.Error(err)
		}
	})
	if err := s.SetUtilization("nope", 0.5); err == nil {
		t.Error("unknown server should error")
	}
	s.Run(30 * time.Second)
	if !fired {
		t.Error("scheduled event did not fire")
	}
	if got := s.Server("SA").Utilization(); got != 0.1 {
		t.Errorf("SA utilization = %v, want 0.1", got)
	}
	if s.Now() != 30*time.Second {
		t.Errorf("clock = %v, want 30s", s.Now())
	}
}

func TestSupplyTraceRecorded(t *testing.T) {
	topo := fig2Topology(t)
	s, err := New(Config{
		Topology:      topo,
		Servers:       fig2Servers(1),
		Policy:        core.GlobalPriority,
		RootBudgets:   map[topology.FeedID]power.Watts{"X": 1240},
		Derating:      fullRating(),
		TraceSupplies: []string{"SA-ps"},
		TraceServers:  []string{"SA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30 * time.Second)
	for _, name := range []string{"supply:SA-ps:power", "supply:SA-ps:budget",
		"server:SA:throttle", "server:SA:power", "server:SA:dccap"} {
		if s.Recorder().Series(name) == nil {
			t.Errorf("series %s missing", name)
		}
	}
}

func TestControllerAndNodeLoadAccessors(t *testing.T) {
	topo := fig2Topology(t)
	s, err := New(Config{
		Topology:    topo,
		Servers:     fig2Servers(1),
		Policy:      core.GlobalPriority,
		Derating:    fullRating(),
		RootBudgets: map[topology.FeedID]power.Watts{"X": 1240},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Controller("SA") == nil {
		t.Error("controller accessor nil")
	}
	if s.Controller("nope") != nil {
		t.Error("unknown controller should be nil")
	}
	if s.NodeLoad("nope") != 0 {
		t.Error("unknown node load should be 0")
	}
	s.Run(10 * time.Second)
	// Top CB load equals the sum of left and right.
	top := s.NodeLoad("top-cb")
	lr := s.NodeLoad("left-cb") + s.NodeLoad("right-cb")
	if math.Abs(float64(top-lr)) > 0.01 {
		t.Errorf("top load %v != left+right %v", top, lr)
	}
}

func TestSafetyMonitorClean(t *testing.T) {
	topo := fig2Topology(t)
	s, err := New(Config{
		Topology:    topo,
		Servers:     fig2Servers(1),
		Policy:      core.GlobalPriority,
		RootBudgets: map[topology.FeedID]power.Watts{"X": 1240},
		Derating:    fullRating(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(time.Minute)
	if v := s.InvariantViolations(); len(v) != 0 {
		t.Errorf("invariant violations: %v", v)
	}
	if s.InfeasiblePeriods() != 0 {
		t.Errorf("infeasible periods: %d", s.InfeasiblePeriods())
	}
}

func TestSafetyMonitorFlagsInfeasibleBudget(t *testing.T) {
	topo := fig2Topology(t)
	s, err := New(Config{
		Topology: topo,
		Servers:  fig2Servers(1),
		Policy:   core.GlobalPriority,
		// 900 W cannot cover 4 × 270 W minimums.
		RootBudgets: map[topology.FeedID]power.Watts{"X": 900},
		Derating:    fullRating(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30 * time.Second)
	if s.InfeasiblePeriods() == 0 {
		t.Error("expected infeasible periods to be flagged")
	}
}

// TestDemandResponseBudgetChange: a runtime contractual-budget reduction
// (demand-response event) takes effect at the next control period and the
// fleet sheds load accordingly; restoring the budget restores performance.
func TestDemandResponseBudgetChange(t *testing.T) {
	topo := fig2Topology(t)
	s, err := New(Config{
		Topology:    topo,
		Servers:     fig2Servers(1),
		Policy:      core.GlobalPriority,
		RootBudgets: map[topology.FeedID]power.Watts{"X": 1700},
		Derating:    fullRating(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(time.Minute)
	// The 1400 W top CB is the binding constraint before the event.
	if got := s.NodeLoad("top-cb"); got < 1380 {
		t.Fatalf("pre-event load %v, want near the 1400 W CB limit", got)
	}

	// Demand response: shed to 1240 W.
	s.Schedule(s.Now()+time.Second, "demand response", func(s *Simulator) {
		s.SetRootBudget("X", 1240)
	})
	s.Run(time.Minute)
	if got := s.NodeLoad("top-cb"); got > 1240+5 {
		t.Errorf("post-event load %v exceeds the reduced 1240 W budget", got)
	}
	// Priority preserved during the shed.
	if p := s.Server("SA").ACPower(); p < 410 {
		t.Errorf("high-priority power %v during demand response", p)
	}

	// Event over: budget restored.
	s.SetRootBudget("X", 1700)
	s.Run(time.Minute)
	if got := s.NodeLoad("top-cb"); got < 1380 {
		t.Errorf("post-restore load %v, want recovery to the CB limit", got)
	}
}

// TestUncontrolledPowerRespectedInAllocation: a GPU server's raised floor
// (CapMin + uncontrolled) must flow into the allocation, or its budget
// would be unenforceable and its breaker unprotected.
func TestUncontrolledPowerRespectedInAllocation(t *testing.T) {
	root := topology.NewNode("X", topology.KindUtility, 0)
	root.Feed = "X"
	cdu := root.AddChild(topology.NewNode("cdu", topology.KindCDU, 1100))
	cdu.AddChild(topology.NewSupply("gpu-ps", "gpu", 1))
	cdu.AddChild(topology.NewSupply("cpu-ps", "cpu", 1))
	topo, err := topology.New(root)
	if err != nil {
		t.Fatal(err)
	}
	derating := topology.FullRating()
	s, err := New(Config{
		Topology: topo,
		Servers: map[string]ServerSpec{
			"gpu": {Utilization: 1, UncontrolledPower: 200},
			"cpu": {Utilization: 1, Priority: 1},
		},
		Policy:      core.GlobalPriority,
		RootBudgets: map[topology.FeedID]power.Watts{"X": 1100},
		Derating:    &derating,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * time.Minute)

	// Demand: gpu 690 + cpu 490 = 1180 > 1100. The gpu server's floor is
	// 470; the high-priority cpu server gets its full 490, leaving the gpu
	// server 610.
	alloc := s.LastAllocation("X")
	if got := alloc.Budget("gpu-ps"); got < 470-0.01 {
		t.Errorf("gpu budget %v below its unbreakable 470 W floor", got)
	}
	if got := alloc.Budget("cpu-ps"); !power.ApproxEqual(got, 490, 0.01) {
		t.Errorf("cpu budget = %v, want full 490", got)
	}
	// Physics: the CDU stays within its rating despite the GPU.
	if load := s.NodeLoad("cdu"); load > 1100+2 {
		t.Errorf("CDU load %v exceeds 1100", load)
	}
	if v := s.InvariantViolations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}
