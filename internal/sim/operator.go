package sim

import (
	"fmt"
	"sort"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/topology"
)

// This file is the simulator's day-2 operations surface: the commands an
// operator (or the scenario runner's event schedule) issues against a
// running fleet. Every command mutates the same state the control plane
// reads, so the next control period re-budgets through the real
// allocation path — there is no side door around core.Allocator.
//
//   - Cordon/Drain/Uncordon implement rolling maintenance on a
//     distribution subtree: cordon marks the servers beneath a node as
//     closed to new work, drain migrates their load away (utilization to
//     zero, remembering what it was), and uncordon restores both.
//   - SetNodeBudget overlays an operator-imposed watt limit on any
//     distribution node, tightening (never loosening) the derated
//     physical limit the allocator enforces — a subtree re-budget.
//
// LastControlTrees exposes the exact control trees and root budgets the
// most recent control period allocated against, so the refalloc oracle
// can re-derive the budgets independently and assert watt-exact
// agreement with what the simulator applied.

// serversUnder collects the sorted IDs of servers with at least one
// supply beneath the topology node.
func (s *Simulator) serversUnder(nodeID string) ([]string, error) {
	n := s.topo.Node(nodeID)
	if n == nil {
		return nil, fmt.Errorf("sim: unknown node %q", nodeID)
	}
	set := make(map[string]bool)
	n.Walk(func(m *topology.Node) bool {
		if m.Kind == topology.KindSupply {
			set[m.ServerID] = true
		}
		return true
	})
	if len(set) == 0 {
		return nil, fmt.Errorf("sim: node %q has no servers beneath it", nodeID)
	}
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Cordon marks every server beneath the node as cordoned: closed to new
// work placement. Cordoning is bookkeeping for the scheduler layer — the
// servers keep their current load and budgets until drained. Idempotent.
func (s *Simulator) Cordon(nodeID string) error {
	ids, err := s.serversUnder(nodeID)
	if err != nil {
		return err
	}
	for _, id := range ids {
		s.cordoned[id] = true
	}
	if s.log != nil {
		s.log.Info("operator: cordoned", "node", nodeID, "servers", len(ids), "t", s.now)
	}
	return nil
}

// Drain migrates load away from every server beneath the node: each
// server's utilization drops to zero and its pre-drain value is
// remembered for Uncordon. Draining requires the servers to be cordoned
// first — the scheduler must have stopped placing work before the load
// can be moved. Already-drained servers are left untouched, so a drain
// never overwrites the remembered utilization with zero.
func (s *Simulator) Drain(nodeID string) error {
	ids, err := s.serversUnder(nodeID)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if !s.cordoned[id] {
			return fmt.Errorf("sim: drain %q: server %q is not cordoned", nodeID, id)
		}
	}
	for _, id := range ids {
		if _, drained := s.drainedUtil[id]; drained {
			continue
		}
		srv := s.servers[id]
		s.drainedUtil[id] = srv.Utilization()
		srv.SetUtilization(0)
	}
	if s.log != nil {
		s.log.Info("operator: drained", "node", nodeID, "servers", len(ids), "t", s.now)
	}
	return nil
}

// Uncordon reopens every server beneath the node: drained servers get
// their remembered utilization back (the load migrates home) and the
// cordon flag clears. Idempotent.
func (s *Simulator) Uncordon(nodeID string) error {
	ids, err := s.serversUnder(nodeID)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if u, drained := s.drainedUtil[id]; drained {
			s.servers[id].SetUtilization(u)
			delete(s.drainedUtil, id)
		}
		delete(s.cordoned, id)
	}
	if s.log != nil {
		s.log.Info("operator: uncordoned", "node", nodeID, "servers", len(ids), "t", s.now)
	}
	return nil
}

// Cordoned reports whether a server is currently cordoned.
func (s *Simulator) Cordoned(serverID string) bool { return s.cordoned[serverID] }

// CordonedServers lists cordoned servers in sorted order.
func (s *Simulator) CordonedServers() []string {
	ids := make([]string, 0, len(s.cordoned))
	for id := range s.cordoned {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DrainedServers lists drained servers in sorted order.
func (s *Simulator) DrainedServers() []string {
	ids := make([]string, 0, len(s.drainedUtil))
	for id := range s.drainedUtil {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SetNodeBudget overlays an operator-imposed budget (in watts) on a
// distribution node: from the next control period on, the allocator
// treats min(derated physical limit, budget) as the node's enforceable
// limit — a subtree re-budget that flows through the same allocation
// math as every physical constraint. A budget of 0 clears the overlay.
// Cutting a subtree below its current measured load opens an SLO
// exposure window, exactly as a root budget cut does.
func (s *Simulator) SetNodeBudget(nodeID string, budget power.Watts) error {
	n := s.topo.Node(nodeID)
	if n == nil {
		return fmt.Errorf("sim: unknown node %q", nodeID)
	}
	if n.Kind == topology.KindSupply {
		return fmt.Errorf("sim: node %q is a supply; budget distribution nodes instead", nodeID)
	}
	if budget < 0 {
		return fmt.Errorf("sim: node %q budget %v is negative", nodeID, budget)
	}
	if budget == 0 {
		delete(s.nodeBudgets, nodeID)
		return nil
	}
	prev := s.nodeBudgets[nodeID]
	s.nodeBudgets[nodeID] = budget
	if (prev > 0 && budget < prev) || budget < s.NodeLoad(nodeID) {
		s.slo.RecordFault(s.now, "budget-cut:"+nodeID)
	}
	if s.log != nil {
		s.log.Info("operator: node budget set", "node", nodeID, "watts", float64(budget), "t", s.now)
	}
	return nil
}

// NodeBudget returns the operator budget overlay on a node, if any.
func (s *Simulator) NodeBudget(nodeID string) (power.Watts, bool) {
	b, ok := s.nodeBudgets[nodeID]
	return b, ok
}

// NodeBudgetOverlays returns a copy of all operator budget overlays.
func (s *Simulator) NodeBudgetOverlays() map[string]power.Watts {
	m := make(map[string]power.Watts, len(s.nodeBudgets))
	for id, b := range s.nodeBudgets {
		m[id] = b
	}
	return m
}

// applyNodeBudgets tightens a freshly built control tree's limits with
// the operator overlays: an overlay below the derated physical limit
// (or on an unlimited node) becomes the node's enforceable limit.
// Overlays never loosen a physical limit — the breaker is still there.
func (s *Simulator) applyNodeBudgets(tree *core.Node) {
	if len(s.nodeBudgets) == 0 {
		return
	}
	tree.Walk(func(n *core.Node) {
		if n.IsLeaf() {
			return
		}
		if b, ok := s.nodeBudgets[n.ID]; ok && (n.Limit <= 0 || b < n.Limit) {
			n.Limit = b
		}
	})
}

// LastControlTrees returns the control trees, root budgets, and feeds the
// most recent control period allocated against (nil before the first
// period). The trees are the allocator's actual input — operator
// overlays applied, failed feeds pruned — so running the refalloc
// reference over them must reproduce the simulator's applied budgets
// watt-for-watt.
func (s *Simulator) LastControlTrees() ([]*core.Node, []power.Watts, []topology.FeedID) {
	return s.lastTrees, s.lastTreeBudgets, s.lastTreeFeeds
}

// SPOEnabled reports whether the stranded power optimization pass runs.
func (s *Simulator) SPOEnabled() bool { return s.spo }

// Policy returns the allocation policy the simulator budgets with.
func (s *Simulator) Policy() core.Policy { return s.policy }

// RootBudget returns the contractual budget of a feed (0 = unbudgeted).
func (s *Simulator) RootBudget(feed topology.FeedID) power.Watts {
	if s.rootBudgets == nil {
		return 0
	}
	return s.rootBudgets[feed]
}

// ControlPeriod returns the control period length.
func (s *Simulator) ControlPeriod() time.Duration { return s.period }
