// Package sim ties the substrates together into a tick-based data-center
// simulation: servers with node managers, per-server capping controllers,
// the hierarchical allocation run every control period, breaker thermal
// models with trip-and-cascade behaviour, and event injection (feed
// failures, budget changes, load changes). The paper's real-system
// experiments (Sections 6.1–6.3) are reproduced by driving this simulator.
//
// Time advances in one-second ticks, matching the paper's sensor cadence:
// every second each capping controller samples its server's sensors; every
// control period (8 s by default) the control hierarchy gathers metrics,
// allocates budgets, and each capping controller runs one PI iteration.
package sim

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"capmaestro/internal/breaker"
	"capmaestro/internal/capping"
	"capmaestro/internal/core"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/server"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
	"capmaestro/internal/topology"
	"capmaestro/internal/trace"
)

// DefaultControlPeriod is the paper's 8-second control period.
const DefaultControlPeriod = 8 * time.Second

// ServerSpec describes one simulated server. Supplies and their feed
// placement come from the topology; the spec adds workload and class data.
type ServerSpec struct {
	Priority    core.Priority
	Model       power.ServerModel // zero value selects the default model
	Utilization float64

	ActuationTau time.Duration
	NoiseSigma   float64
	NoiseSeed    int64

	// UncontrolledPower is a constant draw from components the node
	// manager cannot throttle (GPUs, storage, NICs).
	UncontrolledPower power.Watts
}

// Config assembles a simulation.
type Config struct {
	Topology *topology.Topology
	// Servers maps server ID (as referenced by topology supplies) to spec.
	Servers map[string]ServerSpec
	// Policy selects the allocation policy; SPO additionally enables the
	// stranded power optimization pass.
	Policy core.Policy
	SPO    bool
	// RootBudgets assigns a contractual budget to each feed's tree. Feeds
	// without an entry allocate up to their physical constraint.
	RootBudgets map[topology.FeedID]power.Watts
	// Derating converts ratings to enforceable limits; zero value selects
	// the conventional 80% rule.
	Derating *topology.Derating
	// ControlPeriod overrides the 8 s control period.
	ControlPeriod time.Duration
	// Capping tunes the per-server PI controllers.
	Capping capping.Config

	// TraceNodes, TraceSupplies, and TraceServers select which entities
	// record time series (power per node; power+budget per supply;
	// throttle level per server).
	TraceNodes    []string
	TraceSupplies []string
	TraceServers  []string

	// Telemetry registers live metrics for every simulated layer — the
	// capping controllers' budget/power/throttle gauges, the node
	// managers' actuation-clamp counters, and simulator-level breaker and
	// safety counters — on the given registry. Nil disables it.
	Telemetry *telemetry.Registry
	// Logger receives structured events (breaker trips, feed failures,
	// invariant violations). Nil disables event logging.
	Logger *slog.Logger
	// FlightRecorder retains each control period's allocation trace and
	// per-node explain records. Nil disables recording.
	FlightRecorder *flightrec.Recorder
	// SLO attaches a safety-SLO tracker: feed failures, budget cuts,
	// supply failures, and breaker trips open exposure windows; every
	// tick updates per-feed trip risk and the window's safety verdict;
	// every control period runs one alert-engine evaluation with
	// per-server cap-violation-streak samples. Nil disables tracking.
	SLO *slo.Tracker
}

// Simulator is a running simulation.
type Simulator struct {
	topo        *topology.Topology
	derating    topology.Derating
	policy      core.Policy
	spo         bool
	rootBudgets map[topology.FeedID]power.Watts
	period      time.Duration
	capCfg      capping.Config

	servers     map[string]*server.Server
	controllers map[string]*capping.Controller
	supplyFeed  map[string]topology.FeedID
	supplyNode  map[string]*topology.Node
	breakers    map[string]*breaker.Breaker
	breakerFeed map[string]topology.FeedID
	feedFailed  map[topology.FeedID]bool

	lastReadings map[string]server.Reading
	lastAllocs   map[topology.FeedID]*core.Allocation
	lastSPO      *core.SPOReport

	// operator state (see operator.go)
	cordoned    map[string]bool        // serverID → closed to new work
	drainedUtil map[string]float64     // serverID → utilization before drain
	nodeBudgets map[string]power.Watts // nodeID → operator budget overlay

	// the most recent control period's allocator input, for oracle checks
	lastTrees       []*core.Node
	lastTreeBudgets []power.Watts
	lastTreeFeeds   []topology.FeedID

	// safety monitor counters
	invariantViolations []string
	infeasiblePeriods   int

	events    []event
	now       time.Duration
	rec       *trace.Recorder
	log       *slog.Logger
	flightRec *flightrec.Recorder
	slo       *slo.Tracker

	metBreakerTrips *telemetry.Counter
	metInfeasible   *telemetry.Counter
	metViolations   *telemetry.Counter
	metSimTime      *telemetry.Gauge

	traceNodes    map[string]bool
	traceSupplies map[string]bool
	traceServers  map[string]bool

	trippedOrder []string
}

type event struct {
	at   time.Duration
	name string
	fn   func(*Simulator)
}

// New validates the configuration and builds a simulator at t=0.
func New(cfg Config) (*Simulator, error) {
	if cfg.Topology == nil {
		return nil, errors.New("sim: nil topology")
	}
	derating := topology.DefaultDerating()
	if cfg.Derating != nil {
		derating = *cfg.Derating
	}
	period := cfg.ControlPeriod
	if period == 0 {
		period = DefaultControlPeriod
	}
	if period < time.Second {
		return nil, fmt.Errorf("sim: control period %v below 1s tick", period)
	}
	s := &Simulator{
		topo:          cfg.Topology,
		derating:      derating,
		policy:        cfg.Policy,
		spo:           cfg.SPO,
		rootBudgets:   cfg.RootBudgets,
		period:        period,
		capCfg:        cfg.Capping,
		servers:       make(map[string]*server.Server),
		controllers:   make(map[string]*capping.Controller),
		supplyFeed:    make(map[string]topology.FeedID),
		supplyNode:    make(map[string]*topology.Node),
		breakers:      make(map[string]*breaker.Breaker),
		breakerFeed:   make(map[string]topology.FeedID),
		feedFailed:    make(map[topology.FeedID]bool),
		lastReadings:  make(map[string]server.Reading),
		lastAllocs:    make(map[topology.FeedID]*core.Allocation),
		cordoned:      make(map[string]bool),
		drainedUtil:   make(map[string]float64),
		nodeBudgets:   make(map[string]power.Watts),
		rec:           trace.NewRecorder(),
		log:           cfg.Logger,
		flightRec:     cfg.FlightRecorder,
		slo:           cfg.SLO,
		traceNodes:    toSet(cfg.TraceNodes),
		traceSupplies: toSet(cfg.TraceSupplies),
		traceServers:  toSet(cfg.TraceServers),
		metBreakerTrips: cfg.Telemetry.Counter("capmaestro_sim_breaker_trips_total",
			"Breakers tripped during the simulation."),
		metInfeasible: cfg.Telemetry.Counter("capmaestro_sim_infeasible_periods_total",
			"Control periods whose budget could not cover minimum power."),
		metViolations: cfg.Telemetry.Counter("capmaestro_sim_invariant_violations_total",
			"Allocation-invariant failures detected by the safety monitor."),
		metSimTime: cfg.Telemetry.Gauge("capmaestro_sim_time_seconds",
			"Current simulation clock."),
	}

	// Build servers from topology supplies + specs.
	byServer := cfg.Topology.SuppliesByServer()
	for serverID, supplyNodes := range byServer {
		spec, ok := cfg.Servers[serverID]
		if !ok {
			return nil, fmt.Errorf("sim: topology references server %q with no spec", serverID)
		}
		model := spec.Model
		if model == (power.ServerModel{}) {
			model = power.DefaultServerModel()
		}
		var supplies []server.Supply
		for _, sn := range supplyNodes {
			supplies = append(supplies, server.Supply{ID: sn.ID, Split: sn.Split})
			s.supplyFeed[sn.ID] = sn.Feed
			s.supplyNode[sn.ID] = sn
		}
		srv, err := server.New(server.Config{
			ID:                serverID,
			Model:             model,
			Priority:          server.Priority(spec.Priority),
			Supplies:          supplies,
			ActuationTau:      spec.ActuationTau,
			NoiseSigma:        spec.NoiseSigma,
			NoiseSeed:         spec.NoiseSeed,
			UncontrolledPower: spec.UncontrolledPower,
			Telemetry:         cfg.Telemetry,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		srv.SetUtilization(spec.Utilization)
		s.servers[serverID] = srv
		capCfg := cfg.Capping
		capCfg.Telemetry = cfg.Telemetry
		capCfg.ID = serverID
		ctl, err := capping.New(srv, capCfg)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		s.controllers[serverID] = ctl
	}
	for id := range cfg.Servers {
		if _, ok := byServer[id]; !ok {
			return nil, fmt.Errorf("sim: spec for server %q has no supplies in topology", id)
		}
	}

	// One breaker per rated distribution node, remembering which feed each
	// breaker protects for per-feed trip-risk scoring.
	for _, root := range cfg.Topology.Roots() {
		feed := root.Feed
		root.Walk(func(n *topology.Node) bool {
			if n.Kind != topology.KindSupply && n.Rating > 0 {
				s.breakers[n.ID] = breaker.MustNew(n.Rating, breaker.Config{})
				s.breakerFeed[n.ID] = feed
			}
			return true
		})
	}
	return s, nil
}

func toSet(items []string) map[string]bool {
	m := make(map[string]bool, len(items))
	for _, it := range items {
		m[it] = true
	}
	return m
}

// Now returns the simulation clock.
func (s *Simulator) Now() time.Duration { return s.now }

// Topology exposes the simulated physical topology.
func (s *Simulator) Topology() *topology.Topology { return s.topo }

// ServerIDs lists simulated server IDs in sorted order.
func (s *Simulator) ServerIDs() []string { return s.serverIDs() }

// Recorder exposes the collected time series.
func (s *Simulator) Recorder() *trace.Recorder { return s.rec }

// SLO exposes the attached safety-SLO tracker (nil when none).
func (s *Simulator) SLO() *slo.Tracker { return s.slo }

// Server returns a simulated server by ID (nil if absent).
func (s *Simulator) Server(id string) *server.Server { return s.servers[id] }

// Controller returns a server's capping controller (nil if absent).
func (s *Simulator) Controller(serverID string) *capping.Controller {
	return s.controllers[serverID]
}

// LastAllocation returns the most recent allocation for a feed.
func (s *Simulator) LastAllocation(feed topology.FeedID) *core.Allocation {
	return s.lastAllocs[feed]
}

// LastSPOReport returns the stranded-power report from the most recent
// control period (nil when SPO is disabled or no period has run).
func (s *Simulator) LastSPOReport() *core.SPOReport { return s.lastSPO }

// InvariantViolations lists allocation-invariant failures detected by the
// safety monitor (budget exceeding a limit, a feasible minimum not
// covered). A non-empty list indicates a control-plane bug.
func (s *Simulator) InvariantViolations() []string {
	return append([]string(nil), s.invariantViolations...)
}

// InfeasiblePeriods counts control periods in which some budget could not
// cover the minimum power of the servers beneath it — a data center that
// cannot be protected by capping alone.
func (s *Simulator) InfeasiblePeriods() int { return s.infeasiblePeriods }

// Schedule registers fn to run at simulation time at (relative to t=0).
// Events sharing a timestamp fire in registration order.
func (s *Simulator) Schedule(at time.Duration, name string, fn func(*Simulator)) {
	// Insert after any events with the same timestamp, keeping the list
	// sorted without re-sorting it on every call.
	i := sort.Search(len(s.events), func(i int) bool { return s.events[i].at > at })
	s.events = append(s.events, event{})
	copy(s.events[i+1:], s.events[i:])
	s.events[i] = event{at: at, name: name, fn: fn}
}

// SetUtilization changes a server's workload utilization immediately.
func (s *Simulator) SetUtilization(serverID string, u float64) error {
	srv, ok := s.servers[serverID]
	if !ok {
		return fmt.Errorf("sim: unknown server %q", serverID)
	}
	srv.SetUtilization(u)
	return nil
}

// SetRootBudget changes a feed's contractual budget at runtime (e.g. a
// demand-response event or renegotiated utility contract); the next
// control period allocates against it. A cut — a budget below the
// previous one, or below the feed's current measured load — opens an SLO
// exposure window that stays open until the feed is back under budget.
func (s *Simulator) SetRootBudget(feed topology.FeedID, budget power.Watts) {
	if s.rootBudgets == nil {
		s.rootBudgets = make(map[topology.FeedID]power.Watts)
	}
	prev := s.rootBudgets[feed]
	s.rootBudgets[feed] = budget
	if budget > 0 && ((prev > 0 && budget < prev) || budget < s.feedLoad(feed)) {
		s.slo.RecordFault(s.now, "budget-cut:"+string(feed))
	}
}

// feedLoad sums the measured load of every root on the feed.
func (s *Simulator) feedLoad(feed topology.FeedID) power.Watts {
	var load power.Watts
	for _, root := range s.topo.Roots() {
		if root.Feed == feed {
			load += s.NodeLoad(root.ID)
		}
	}
	return load
}

// SetPriority changes a server's priority; the next control period
// re-budgets with it (proactive priority propagation from a scheduler).
func (s *Simulator) SetPriority(serverID string, p core.Priority) error {
	srv, ok := s.servers[serverID]
	if !ok {
		return fmt.Errorf("sim: unknown server %q", serverID)
	}
	srv.SetPriority(server.Priority(p))
	return nil
}

// FailFeed takes an entire power feed down: every supply on the feed fails
// and its load shifts to the surviving cords, emulating the paper's
// worst-case power emergency.
func (s *Simulator) FailFeed(feed topology.FeedID) {
	if !s.feedFailed[feed] {
		s.slo.RecordFault(s.now, "feed-fail:"+string(feed))
	}
	s.feedFailed[feed] = true
	s.setFeedSupplies(feed, server.SupplyFailed)
	if s.log != nil {
		s.log.Warn("feed failed", "feed", string(feed), "t", s.now)
	}
}

// RestoreFeed brings a failed feed back.
func (s *Simulator) RestoreFeed(feed topology.FeedID) {
	s.feedFailed[feed] = false
	s.setFeedSupplies(feed, server.SupplyActive)
	if s.log != nil {
		s.log.Info("feed restored", "feed", string(feed), "t", s.now)
	}
}

func (s *Simulator) setFeedSupplies(feed topology.FeedID, state server.SupplyState) {
	for supplyID, f := range s.supplyFeed {
		if f != feed {
			continue
		}
		sn := s.supplyNode[supplyID]
		if err := s.servers[sn.ServerID].SetSupplyState(supplyID, state); err != nil {
			panic(err) // supply/server wiring is validated at construction
		}
	}
}

// FeedFailed reports whether a feed is currently down.
func (s *Simulator) FeedFailed(feed topology.FeedID) bool { return s.feedFailed[feed] }

// SetSupplyState fails, restores, or stands by a single power supply
// (e.g. one pulled cord or a dead PSU, as opposed to a whole-feed outage).
func (s *Simulator) SetSupplyState(supplyID string, state server.SupplyState) error {
	sn, ok := s.supplyNode[supplyID]
	if !ok {
		return fmt.Errorf("sim: unknown supply %q", supplyID)
	}
	if state == server.SupplyFailed {
		s.slo.RecordFault(s.now, "supply-fail:"+supplyID)
	}
	return s.servers[sn.ServerID].SetSupplyState(supplyID, state)
}

// TrippedBreakers lists distribution nodes whose breakers have tripped, in
// trip order. An empty list after a run is the safety property the paper's
// capping architecture exists to guarantee.
func (s *Simulator) TrippedBreakers() []string {
	return append([]string(nil), s.trippedOrder...)
}

// NodeLoad computes the electrical load currently flowing through a
// topology node: the sum of supply AC draws beneath it.
func (s *Simulator) NodeLoad(nodeID string) power.Watts {
	n := s.topo.Node(nodeID)
	if n == nil {
		return 0
	}
	var load power.Watts
	n.Walk(func(m *topology.Node) bool {
		if m.Kind == topology.KindSupply {
			if p, ok := s.servers[m.ServerID].SupplyACPower(m.ID); ok {
				load += p
			}
		}
		return true
	})
	return load
}

// Run advances the simulation by d in one-second ticks.
func (s *Simulator) Run(d time.Duration) {
	end := s.now + d
	for s.now < end {
		s.tick()
	}
}

// tick advances one second of simulated time.
func (s *Simulator) tick() {
	// Fire due events.
	for len(s.events) > 0 && s.events[0].at <= s.now {
		ev := s.events[0]
		s.events = s.events[1:]
		ev.fn(s)
	}

	// Actuation + per-second sensing.
	ids := s.serverIDs()
	for _, id := range ids {
		s.servers[id].Step(time.Second)
		s.lastReadings[id] = s.controllers[id].Sense()
	}

	// Control period boundary: gather, allocate, budget, iterate, then
	// one SLO alert-engine evaluation over the fresh period state.
	if s.now%s.period == 0 {
		s.controlPeriod()
		s.evalSLOPeriod()
	}

	// Breaker thermal state and trip cascade.
	s.updateBreakers()

	// Traces.
	s.recordTraces()

	s.now += time.Second
	s.metSimTime.Set(s.now.Seconds())
}

// controlPeriod runs one metrics-gathering + budgeting round over every
// live feed tree, then applies the resulting per-supply budgets to the
// capping controllers and runs their PI iterations.
func (s *Simulator) controlPeriod() {
	src := func(supplyID, serverID string) (core.LeafInfo, bool) {
		srv := s.servers[serverID]
		share, ok := srv.SupplyShare(supplyID)
		if !ok || share <= 0 {
			return core.LeafInfo{}, false
		}
		// Prefer the measured split ("we adjust it in practice based on
		// how the load is actually split", Section 4.3.1).
		if r, ok := s.measuredShare(serverID, supplyID); ok {
			share = r
		}
		demand, ok := s.controllers[serverID].Demand()
		if !ok {
			demand = s.lastReadings[serverID].TotalAC
		}
		capMin, capMax := srv.Envelope()
		return core.LeafInfo{
			Priority: core.Priority(srv.Priority()),
			CapMin:   capMin,
			CapMax:   capMax,
			Demand:   demand,
			Share:    share,
		}, true
	}

	var (
		trees   []*core.Node
		budgets []power.Watts
		feeds   []topology.FeedID
	)
	for _, root := range s.topo.Roots() {
		if s.feedFailed[root.Feed] {
			s.lastAllocs[root.Feed] = nil
			continue
		}
		tree, err := core.BuildTree(root, s.derating, src)
		if err != nil {
			// A feed with no working supplies has nothing to budget.
			s.lastAllocs[root.Feed] = nil
			continue
		}
		s.applyNodeBudgets(tree)
		trees = append(trees, tree)
		b := power.Watts(0)
		if s.rootBudgets != nil {
			b = s.rootBudgets[root.Feed]
		}
		budgets = append(budgets, b)
		feeds = append(feeds, root.Feed)
	}
	s.lastTrees, s.lastTreeBudgets, s.lastTreeFeeds = trees, budgets, feeds
	if len(trees) == 0 {
		return
	}

	// With a flight recorder attached, the period's allocation is traced
	// and every node's explain record retained; all calls no-op when the
	// recorder (and thus pt) is nil.
	var pt *flightrec.PeriodTrace
	if s.flightRec.Enabled() {
		pt = flightrec.NewPeriodTrace()
	}
	periodStart := time.Now()
	root := pt.StartSpan("period", "sim", "")
	allocSpan := pt.StartSpan("allocate", "sim", root.ID())

	var (
		allocs []*core.Allocation
		report *core.SPOReport
		err    error
	)
	if s.spo {
		allocs, report, err = core.AllocateWithSPOExplained(trees, budgets, s.policy, pt.ExplainSink())
	} else {
		allocs, err = core.AllocateAllExplained(trees, budgets, s.policy, pt.ExplainSink())
	}
	allocSpan.End(err)
	if err != nil {
		panic(fmt.Sprintf("sim: allocation failed: %v", err)) // trees are built validated
	}
	s.lastSPO = report

	// Safety monitor: every allocation must respect its tree's invariants;
	// violations indicate a control-plane bug and are recorded for
	// inspection rather than silently applied.
	for i, a := range allocs {
		if err := a.CheckInvariants(trees[i]); err != nil {
			s.invariantViolations = append(s.invariantViolations,
				fmt.Sprintf("t=%s feed=%s: %v", s.now, feeds[i], err))
			s.metViolations.Inc()
			if s.log != nil {
				s.log.Error("allocation invariant violated", "feed", string(feeds[i]), "t", s.now, "err", err)
			}
		}
		if a.Infeasible {
			s.infeasiblePeriods++
			s.metInfeasible.Inc()
		}
	}

	// Apply budgets: supplies present in a tree get their allocation;
	// supplies on failed feeds lose their budgets.
	budgeted := make(map[string]bool)
	for i, a := range allocs {
		s.lastAllocs[feeds[i]] = a
		for supplyID, b := range a.SupplyBudgets {
			serverID := s.supplyNode[supplyID].ServerID
			s.controllers[serverID].SetBudget(supplyID, b)
			budgeted[supplyID] = true
		}
	}
	for supplyID, sn := range s.supplyNode {
		if !budgeted[supplyID] {
			s.controllers[sn.ServerID].SetBudget(supplyID, capping.Unbudgeted)
		}
	}

	for _, id := range s.serverIDs() {
		s.controllers[id].Iterate()
	}

	if pt != nil {
		root.End(nil)
		rec := flightrec.PeriodRecord{
			TraceID:  pt.TraceID(),
			Start:    periodStart,
			Duration: time.Since(periodStart),
			Label:    fmt.Sprintf("sim t=%s", s.now),
			Spans:    pt.Spans(),
			Explains: pt.Explains(),
		}
		for _, a := range allocs {
			if a.Infeasible {
				rec.Infeasible = true
			}
		}
		s.flightRec.Add(rec)
	}
}

// measuredShare derives a supply's live share of its server's load from the
// last sensor reading.
func (s *Simulator) measuredShare(serverID, supplyID string) (float64, bool) {
	r, ok := s.lastReadings[serverID]
	if !ok || r.TotalAC <= 0 {
		return 0, false
	}
	p, ok := r.SupplyAC[supplyID]
	if !ok {
		return 0, false
	}
	share := float64(p / r.TotalAC)
	if share <= 0 {
		return 0, false
	}
	return share, true
}

// safetyTolerance is the relative slack the SLO safety predicate allows
// on breaker ratings and root budgets, mirroring the capping
// controller's violation tolerance: the PI loop converges asymptotically
// onto its line, so an exposure window closes once measured power is
// within half a percent of the limit rather than strictly under it.
const safetyTolerance = 0.005

// updateBreakers advances breaker thermal models under the current loads
// and cascades trips: a tripped breaker fails every supply beneath it.
// With an SLO tracker attached, the same sweep scores per-feed trip risk
// from the breakers' accumulated heat and delivers this tick's safety
// verdict to the open exposure window.
func (s *Simulator) updateBreakers() {
	ids := make([]string, 0, len(s.breakers))
	for id := range s.breakers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var (
		feedRisk   map[topology.FeedID]float64
		minTTT     time.Duration
		overloaded bool
	)
	if s.slo != nil {
		feedRisk = make(map[topology.FeedID]float64)
	}
	for _, id := range ids {
		b := s.breakers[id]
		if b.Tripped() {
			if feedRisk != nil {
				feedRisk[s.breakerFeed[id]] = 1
			}
			continue
		}
		load := s.NodeLoad(id)
		if b.Apply(load, time.Second) {
			s.trippedOrder = append(s.trippedOrder, id)
			s.metBreakerTrips.Inc()
			if s.log != nil {
				s.log.Warn("breaker tripped", "node", id, "t", s.now)
			}
			s.slo.RecordFault(s.now, "breaker-trip:"+id)
			if feedRisk != nil {
				feedRisk[s.breakerFeed[id]] = 1
			}
			s.cascadeTrip(id)
			continue
		}
		if feedRisk == nil {
			continue
		}
		rs := b.RiskSnapshot(load)
		feed := s.breakerFeed[id]
		if rs.Risk > feedRisk[feed] {
			feedRisk[feed] = rs.Risk
		}
		if float64(load) > float64(b.Rating())*(1+safetyTolerance) {
			overloaded = true
			// Normalize the exposure against the cold-start trip time at
			// this overload — the quantity the paper's 10× claim compares
			// capping latency to.
			if ttt, ok := b.TimeToTrip(load); ok && ttt > 0 && (minTTT == 0 || ttt < minTTT) {
				minTTT = ttt
			}
		}
	}
	if s.slo == nil {
		return
	}
	feeds := make([]string, 0, len(feedRisk))
	for feed := range feedRisk {
		feeds = append(feeds, string(feed))
	}
	sort.Strings(feeds)
	for _, feed := range feeds {
		s.slo.SetTripRisk(feed, feedRisk[topology.FeedID(feed)])
	}
	s.slo.ObserveExposure(s.now, !overloaded && s.budgetsRespected(), minTTT)
}

// budgetsRespected reports whether every live feed with a contractual
// budget is measuring at or under it (plus tolerance) — the "measured
// power back under budget" half of the exposure-window close condition.
func (s *Simulator) budgetsRespected() bool {
	for _, root := range s.topo.Roots() {
		if s.feedFailed[root.Feed] {
			continue
		}
		b := power.Watts(0)
		if s.rootBudgets != nil {
			b = s.rootBudgets[root.Feed]
		}
		if b <= 0 {
			continue
		}
		tol := power.Watts(safetyTolerance) * b
		if tol < 1 {
			tol = 1
		}
		if s.NodeLoad(root.ID) > b+tol {
			return false
		}
	}
	return true
}

// evalSLOPeriod runs one alert-engine evaluation at the control-period
// boundary, feeding each server's cap-violation streak alongside the
// tracker's built-in signals. It runs after controlPeriod so alert
// transitions annotate the period record just written.
func (s *Simulator) evalSLOPeriod() {
	if s.slo == nil {
		return
	}
	ids := s.serverIDs()
	samples := make([]slo.Sample, 0, len(ids))
	for _, id := range ids {
		samples = append(samples, slo.Sample{
			Signal: slo.SignalCapViolationStreak,
			Label:  id,
			Value:  float64(s.controllers[id].ViolationStreak()),
		})
	}
	s.slo.EvalPeriod(s.now, samples...)
}

func (s *Simulator) cascadeTrip(nodeID string) {
	n := s.topo.Node(nodeID)
	if n == nil {
		return
	}
	n.Walk(func(m *topology.Node) bool {
		if m.Kind == topology.KindSupply {
			if err := s.servers[m.ServerID].SetSupplyState(m.ID, server.SupplyFailed); err != nil {
				panic(err)
			}
		}
		return true
	})
}

// recordTraces appends the configured series for this tick.
func (s *Simulator) recordTraces() {
	for id := range s.traceNodes {
		s.rec.Record("node:"+id, s.now, float64(s.NodeLoad(id)))
	}
	for id := range s.traceSupplies {
		sn := s.supplyNode[id]
		if sn == nil {
			continue
		}
		if p, ok := s.servers[sn.ServerID].SupplyACPower(id); ok {
			s.rec.Record("supply:"+id+":power", s.now, float64(p))
		}
		b := s.controllers[sn.ServerID].Budget(id)
		if b != capping.Unbudgeted {
			s.rec.Record("supply:"+id+":budget", s.now, float64(b))
		}
	}
	for id := range s.traceServers {
		srv := s.servers[id]
		if srv == nil {
			continue
		}
		s.rec.Record("server:"+id+":throttle", s.now, srv.ThrottleLevel()*100)
		s.rec.Record("server:"+id+":power", s.now, float64(srv.ACPower()))
		s.rec.Record("server:"+id+":dccap", s.now, float64(srv.EffectiveDCCap()))
	}
}

func (s *Simulator) serverIDs() []string {
	ids := make([]string, 0, len(s.servers))
	for id := range s.servers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
