package sim

import (
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/server"
	"capmaestro/internal/topology"
)

// TestSingleSupplyFailure: when one PSU of one dual-corded server dies
// (not the whole feed), that server's full load shifts onto its surviving
// cord, the allocation adjusts to the new measured shares, and the other
// server is unaffected.
func TestSingleSupplyFailure(t *testing.T) {
	mkFeed := func(feed topology.FeedID) *topology.Node {
		root := topology.NewNode(string(feed), topology.KindUtility, 0)
		root.Feed = feed
		cdu := root.AddChild(topology.NewNode(string(feed)+"-cdu", topology.KindCDU, 1200))
		cdu.AddChild(topology.NewSupply("s1-"+string(feed), "s1", 0.5))
		cdu.AddChild(topology.NewSupply("s2-"+string(feed), "s2", 0.5))
		return root
	}
	topo, err := topology.New(mkFeed("X"), mkFeed("Y"))
	if err != nil {
		t.Fatal(err)
	}
	derating := topology.FullRating()
	s, err := New(Config{
		Topology: topo,
		Servers: map[string]ServerSpec{
			"s1": {Utilization: 1},
			"s2": {Utilization: 1},
		},
		Policy:      core.GlobalPriority,
		RootBudgets: map[topology.FeedID]power.Watts{"X": 1200, "Y": 1200},
		Derating:    &derating,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSupplyState("nope", server.SupplyFailed); err == nil {
		t.Error("unknown supply should error")
	}
	s.Run(30 * time.Second)

	// s1 loses its X cord.
	if err := s.SetSupplyState("s1-X", server.SupplyFailed); err != nil {
		t.Fatal(err)
	}
	s.Run(time.Minute)

	// s1's load rides entirely on Y now.
	x1, _ := s.Server("s1").SupplyACPower("s1-X")
	y1, _ := s.Server("s1").SupplyACPower("s1-Y")
	if x1 != 0 {
		t.Errorf("failed cord carries %v", x1)
	}
	if !power.ApproxEqual(y1, s.Server("s1").ACPower(), 1e-6) {
		t.Errorf("surviving cord carries %v of %v", y1, s.Server("s1").ACPower())
	}
	// Budgets remain safe: the Y CDU sees s1's full load plus s2's half,
	// within its 1200 W rating, and nothing trips.
	if load := s.NodeLoad("Y-cdu"); load > 1200+2 {
		t.Errorf("Y CDU load %v exceeds rating", load)
	}
	if tripped := s.TrippedBreakers(); len(tripped) != 0 {
		t.Errorf("tripped: %v", tripped)
	}
	// s2 keeps (nearly) full performance: only ~735 W of demand sits on
	// the Y CDU's 1200 W, so s1+s2 fit after modest capping.
	if p := s.Server("s2").ACPower(); p < 440 {
		t.Errorf("s2 power = %v, want near-uncapped", p)
	}

	// The cord comes back: the load re-balances.
	if err := s.SetSupplyState("s1-X", server.SupplyActive); err != nil {
		t.Fatal(err)
	}
	s.Run(time.Minute)
	x1, _ = s.Server("s1").SupplyACPower("s1-X")
	if x1 < 200 {
		t.Errorf("restored cord carries %v, want ~half the load", x1)
	}
}
