package sim

import (
	"fmt"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/topology"
	"capmaestro/internal/workload"
)

// buildRackScaleDC wires 3 racks × 30 dual-corded servers (90 servers)
// across two feeds: feed -> RPP -> per-rack CDUs -> supplies.
func buildRackScaleDC(t *testing.T) (*topology.Topology, map[string]ServerSpec) {
	t.Helper()
	const (
		racks          = 3
		serversPerRack = 30
	)
	servers := make(map[string]ServerSpec)
	mkFeed := func(feed topology.FeedID) *topology.Node {
		root := topology.NewNode(string(feed), topology.KindUtility, 0)
		root.Feed = feed
		rpp := root.AddChild(topology.NewNode(string(feed)+"-rpp", topology.KindRPP, 52000))
		for r := 0; r < racks; r++ {
			cdu := rpp.AddChild(topology.NewNode(
				fmt.Sprintf("%s-cdu%d", feed, r), topology.KindCDU, 9000))
			for i := 0; i < serversPerRack; i++ {
				id := fmt.Sprintf("r%d-s%02d", r, i)
				cdu.AddChild(topology.NewSupply(id+"-"+string(feed), id, 0.5))
			}
		}
		return root
	}
	a, b := mkFeed("A"), mkFeed("B")
	topo, err := topology.New(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < racks; r++ {
		for i := 0; i < serversPerRack; i++ {
			id := fmt.Sprintf("r%d-s%02d", r, i)
			prio := core.Priority(0)
			if i%5 == 0 { // 20% high priority
				prio = 1
			}
			servers[id] = ServerSpec{Priority: prio, Utilization: 0.3}
		}
	}
	return topo, servers
}

// TestRackScaleFeedFailureUnderDiurnalLoad drives 90 servers through a
// compressed day (diurnal swing), fails a feed at peak load, and verifies
// the safety and priority properties hold at scale: no breaker trips,
// every CDU stays within rating, and high-priority servers are throttled
// less than low-priority ones.
func TestRackScaleFeedFailureUnderDiurnalLoad(t *testing.T) {
	topo, servers := buildRackScaleDC(t)
	derating := topology.FullRating()
	s, err := New(Config{
		Topology: topo,
		Servers:  servers,
		Policy:   core.GlobalPriority,
		// 3 CDUs × 9000 W per feed; the RPP carries up to 27 kW.
		RootBudgets: map[topology.FeedID]power.Watts{"A": 27000, "B": 27000},
		Derating:    &derating,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Compressed diurnal ramp: steps from the 4 AM trough to the 4 PM
	// peak; at the peak, feed B fails.
	profile := workload.DefaultDiurnalProfile()
	profile.Peak = 1.0 // stress: full utilization at peak
	var hiAvg, loAvg float64
	for step := 0; step <= 6; step++ {
		tod := time.Duration(4+step*2) * time.Hour // 4:00 → 16:00
		u := profile.At(tod)
		for id := range servers {
			if err := s.SetUtilization(id, u); err != nil {
				t.Fatal(err)
			}
		}
		if step == 6 {
			s.FailFeed("B")
			s.Run(2 * time.Minute) // settle under the emergency at peak
			var hiSum, hiN, loSum, loN float64
			for id, spec := range servers {
				p := float64(s.Server(id).ACPower())
				if spec.Priority == 1 {
					hiSum += p
					hiN++
				} else {
					loSum += p
					loN++
				}
			}
			hiAvg, loAvg = hiSum/hiN, loSum/loN
		}
		s.Run(40 * time.Second)
	}

	if tripped := s.TrippedBreakers(); len(tripped) != 0 {
		t.Fatalf("breakers tripped at scale: %v", tripped)
	}
	if v := s.InvariantViolations(); len(v) != 0 {
		t.Fatalf("allocation invariant violations: %v", v)
	}
	for r := 0; r < 3; r++ {
		id := fmt.Sprintf("A-cdu%d", r)
		if load := s.NodeLoad(id); load > 9000+5 {
			t.Errorf("%s load %v exceeds rating", id, load)
		}
	}

	// At the peak with one feed down, 30 servers/CDU × 490 W ≈ 14.7 kW of
	// demand rides a 9 kW CDU: heavy capping. Per CDU, the 24 low-priority
	// servers' minimums (6 480 W) leave 2 520 W for the 6 high-priority
	// servers — 420 W each, far above the low-priority floor.
	if hiAvg <= loAvg+100 {
		t.Errorf("high-priority avg %v should exceed low-priority avg %v by a wide margin", hiAvg, loAvg)
	}
	if loAvg > 285 {
		t.Errorf("low-priority peak average %v, want near Pcap_min 270", loAvg)
	}
	if hiAvg < 400 {
		t.Errorf("high-priority peak average %v, want ~420 (CDU-bounded)", hiAvg)
	}

	// Restore the feed and drop to overnight load: everyone runs uncapped.
	s.RestoreFeed("B")
	for id := range servers {
		s.SetUtilization(id, 0.2)
	}
	s.Run(time.Minute)
	for id := range servers {
		if th := s.Server(id).ThrottleLevel(); th > 0.01 {
			t.Fatalf("server %s still throttled (%v) after recovery", id, th)
		}
	}
}
