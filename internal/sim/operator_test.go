package sim_test

// Integration tests for the day-2 operator surface, driven through the
// declarative scenario builders so the fleet under test is the same one
// the scenario runner and interactive console operate on. Every mutation
// is checked watt-exact against the refalloc reference over the trees
// the simulator actually allocated from.

import (
	"math"
	"strings"
	"testing"
	"time"

	"capmaestro/internal/scenario"
	"capmaestro/internal/sim"
	"capmaestro/internal/slo"
)

// opFleet builds a dual-corded, two-rack fleet: four "a" servers on rack
// 0, four "b" servers on rack 1, all x_share 0.5 at the given
// utilization.
func opFleet(t *testing.T, util float64, rackRating float64, tracker *slo.Tracker) *sim.Simulator {
	t.Helper()
	f := &scenario.File{
		Name: "op-" + t.Name(),
		Fleet: scenario.FleetSpec{
			Policy:      "global",
			DurationSec: 600,
			Topology: scenario.TopologySpec{RPPs: []scenario.RPPSpec{{
				XRating: 12000, YRating: 12000,
				Racks: []scenario.RackSpec{
					{XRating: rackRating, YRating: rackRating},
					{XRating: rackRating, YRating: rackRating},
				},
			}}},
			Groups: []scenario.ServerGroup{
				{Prefix: "a", Count: 4, RPP: 0, Rack: 0, Priority: 1, XShare: 0.5, Utilization: util},
				{Prefix: "b", Count: 4, RPP: 0, Rack: 1, Priority: 1, XShare: 0.5, Utilization: util},
			},
		},
		Assertions: []scenario.Assertion{{Kind: scenario.AssertNoTrips}},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.BuildSimWithSLO(tracker)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustOracle(t *testing.T, s *sim.Simulator) {
	t.Helper()
	if err := scenario.CheckOracle(s); err != nil {
		t.Fatalf("refalloc oracle diverged: %v", err)
	}
}

// TestRollingMaintenanceWattExact walks a rack through the full
// cordon → drain → uncordon cycle mid-run and demands the applied
// budgets stay watt-exact against the reference allocator at every
// stage.
func TestRollingMaintenanceWattExact(t *testing.T) {
	s := opFleet(t, 0.7, 2400, nil)
	const rack = "X-rpp0-cdu0"
	s.Run(16 * time.Second)
	mustOracle(t, s)

	// Draining an uncordoned rack must be refused: the scheduler has not
	// stopped placing work yet.
	err := s.Drain(rack)
	want := `sim: drain "X-rpp0-cdu0": server "a-0" is not cordoned`
	if err == nil || err.Error() != want {
		t.Fatalf("Drain before Cordon: err = %v, want %q", err, want)
	}

	if err := s.Cordon(rack); err != nil {
		t.Fatal(err)
	}
	if !s.Cordoned("a-0") || s.Cordoned("b-0") {
		t.Fatalf("cordon scope wrong: cordoned=%v", s.CordonedServers())
	}
	// Cordon alone is bookkeeping: load stays put.
	if u := s.Server("a-0").Utilization(); u != 0.7 {
		t.Fatalf("cordon moved load: utilization = %v", u)
	}

	if err := s.Drain(rack); err != nil {
		t.Fatal(err)
	}
	if got := s.DrainedServers(); len(got) != 4 || got[0] != "a-0" || got[3] != "a-3" {
		t.Fatalf("drained = %v", got)
	}
	for _, id := range []string{"a-0", "a-1", "a-2", "a-3"} {
		if u := s.Server(id).Utilization(); u != 0 {
			t.Fatalf("server %s still at utilization %v after drain", id, u)
		}
	}
	// The drained rack's X-side load falls to idle power split over both
	// cords: 4 × 160 W × 0.5.
	s.Run(8 * time.Second)
	if load := s.NodeLoad(rack); math.Abs(float64(load)-320) > 0.01 {
		t.Fatalf("drained rack load = %v, want 320 W", load)
	}
	mustOracle(t, s)

	// Draining twice must not overwrite the remembered utilization.
	if err := s.Drain(rack); err != nil {
		t.Fatal(err)
	}

	if err := s.Uncordon(rack); err != nil {
		t.Fatal(err)
	}
	if len(s.CordonedServers()) != 0 || len(s.DrainedServers()) != 0 {
		t.Fatalf("uncordon left state: cordoned=%v drained=%v", s.CordonedServers(), s.DrainedServers())
	}
	for _, id := range []string{"a-0", "a-1", "a-2", "a-3"} {
		if u := s.Server(id).Utilization(); u != 0.7 {
			t.Fatalf("server %s at utilization %v after uncordon, want 0.7", id, u)
		}
	}
	s.Run(8 * time.Second)
	mustOracle(t, s)
	if tripped := s.TrippedBreakers(); len(tripped) != 0 {
		t.Fatalf("breakers tripped: %v", tripped)
	}
}

// TestFeedRetireRestoreWattExact retires feed X mid-run on a fleet whose
// surviving feed overloads until capping sheds the excess, then restores
// it. Exactly one SLO exposure window must open and close, and budgets
// must match the oracle both during the outage (Y-only trees) and after
// restoration.
func TestFeedRetireRestoreWattExact(t *testing.T) {
	tracker, err := slo.New(slo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 0.9 utilization on 1600 W racks: healthy load is 914 W per rack
	// side, a lone feed carries 1828 W — overloaded until the next
	// control period caps the servers under the 1280 W derated limit.
	s := opFleet(t, 0.9, 1600, tracker)
	s.Run(16 * time.Second)

	s.FailFeed("X")
	if !s.FeedFailed("X") {
		t.Fatal("feed X not marked failed")
	}
	s.Run(16 * time.Second) // at least one control period on the survivor
	mustOracle(t, s)
	if _, _, feeds := s.LastControlTrees(); len(feeds) != 1 || feeds[0] != "Y" {
		t.Fatalf("control feeds during outage = %v, want [Y]", feeds)
	}

	s.RestoreFeed("X")
	if s.FeedFailed("X") {
		t.Fatal("feed X still marked failed after restore")
	}
	s.Run(24 * time.Second)
	mustOracle(t, s)

	if n := tracker.WindowsClosed(); n != 1 {
		t.Fatalf("windows closed = %d, want exactly 1", n)
	}
	if w := tracker.OpenWindow(); w != nil {
		t.Fatalf("window still open at end: %v", w.Causes)
	}
	if n := tracker.FaultCount(); n != 1 {
		t.Fatalf("fault count = %d, want 1 (retire only; restore is not a fault)", n)
	}
	if tripped := s.TrippedBreakers(); len(tripped) != 0 {
		t.Fatalf("breakers tripped during retire/restore: %v", tripped)
	}
}

// TestSubtreeRebudgetWattExact overlays an operator budget on one rack,
// checks the next period's applied budget honors it watt-exactly, then
// clears the overlay and checks the watts come back.
func TestSubtreeRebudgetWattExact(t *testing.T) {
	s := opFleet(t, 0.7, 2400, nil)
	const rack = "X-rpp0-cdu0"
	s.Run(16 * time.Second)

	// Healthy X-side rack load: 4 × PowerAt(0.7) × 0.5 = 782 W.
	if load := s.NodeLoad(rack); math.Abs(float64(load)-782) > 0.01 {
		t.Fatalf("baseline rack load = %v, want 782 W", load)
	}

	if err := s.SetNodeBudget(rack, 500); err != nil {
		t.Fatal(err)
	}
	if b, ok := s.NodeBudget(rack); !ok || b != 500 {
		t.Fatalf("NodeBudget = %v,%v", b, ok)
	}
	s.Run(8 * time.Second)
	alloc := s.LastAllocation("X")
	if alloc == nil {
		t.Fatal("no allocation on X")
	}
	if got := alloc.NodeBudgets[rack]; got > 500 {
		t.Fatalf("rack budget %v W exceeds 500 W overlay", got)
	}
	mustOracle(t, s)

	// Clearing the overlay restores the physical limit as the only bound.
	if err := s.SetNodeBudget(rack, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.NodeBudget(rack); ok {
		t.Fatal("overlay survived clearing")
	}
	s.Run(8 * time.Second)
	if got := s.LastAllocation("X").NodeBudgets[rack]; got <= 500 {
		t.Fatalf("rack budget %v W still pinned after clearing overlay", got)
	}
	mustOracle(t, s)

	// Error paths, pinned.
	if err := s.SetNodeBudget("nope", 100); err == nil || err.Error() != `sim: unknown node "nope"` {
		t.Fatalf("unknown node: err = %v", err)
	}
	if err := s.SetNodeBudget("a-0-psX", 100); err == nil || !strings.Contains(err.Error(), "is a supply") {
		t.Fatalf("supply node: err = %v", err)
	}
	if err := s.SetNodeBudget(rack, -1); err == nil || err.Error() != `sim: node "X-rpp0-cdu0" budget -1.0W is negative` {
		t.Fatalf("negative budget: err = %v", err)
	}
}
