package sim

import (
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/topology"
)

// TestPerPhaseProtection models 3-phase delivery (Section 4.1: "we also
// replicate the power control tree for each phase of power delivery to
// protect each phase independently, since loading on each phase is not
// always uniform"): a CDU with three phase branches, where only phase L1
// is overloaded. Capping must throttle the L1 servers and leave the other
// phases untouched.
func TestPerPhaseProtection(t *testing.T) {
	root := topology.NewNode("X", topology.KindUtility, 0)
	root.Feed = "X"
	cdu := root.AddChild(topology.NewNode("cdu", topology.KindCDU, 0))
	phases := map[topology.Phase]*topology.Node{}
	for i, ph := range topology.Phases() {
		n := topology.NewNode(ph.String(), topology.KindPhaseBranch, 800)
		n.Phase = ph
		cdu.AddChild(n)
		phases[ph] = n
		_ = i
	}
	// Two servers per phase; phase L1 is the only one that will overload
	// its 800 W branch (2 × 490 = 980 W).
	servers := map[string]ServerSpec{}
	for _, ph := range topology.Phases() {
		for j := 0; j < 2; j++ {
			id := ph.String() + "-srv" + string(rune('A'+j))
			phases[ph].AddChild(topology.NewSupply(id+"-ps", id, 1))
			util := 0.4 // ~292 W each: 584 W per phase, under the limit
			if ph == topology.Phase1 {
				util = 1.0
			}
			servers[id] = ServerSpec{Utilization: util}
		}
	}
	topo, err := topology.New(root)
	if err != nil {
		t.Fatal(err)
	}
	derating := topology.FullRating()
	s, err := New(Config{
		Topology: topo,
		Servers:  servers,
		Policy:   core.GlobalPriority,
		Derating: &derating,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(time.Minute)

	// L1 servers capped to ~400 W each; L2/L3 servers uncapped.
	for _, ph := range topology.Phases() {
		load := s.NodeLoad(ph.String())
		if load > 800+2 {
			t.Errorf("phase %v load %v exceeds its 800 W branch limit", ph, load)
		}
		for j := 0; j < 2; j++ {
			id := ph.String() + "-srv" + string(rune('A'+j))
			p := s.Server(id).ACPower()
			if ph == topology.Phase1 {
				if !power.ApproxEqual(p, 400, 6) {
					t.Errorf("overloaded-phase server %s power = %v, want ~400", id, p)
				}
			} else if p < 285 {
				t.Errorf("healthy-phase server %s power = %v, want uncapped ~292", id, p)
			}
		}
	}
	if tripped := s.TrippedBreakers(); len(tripped) != 0 {
		t.Errorf("tripped breakers: %v", tripped)
	}
}
