package sim

import (
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
	"capmaestro/internal/topology"
)

// buildSLOSmokeDC wires two dual-corded full-demand servers across two
// feeds, sized so losing a feed overloads the survivor mildly: 2 × 490 W
// on a 900 W CDU is a 1.089× overload with a ~252 s cold-start
// timeToTrip — slow enough that capping's few-second response leaves a
// margin far above the paper's 10× claim.
func buildSLOSmokeDC(t *testing.T) (*topology.Topology, map[string]ServerSpec) {
	t.Helper()
	mkFeed := func(feed topology.FeedID) *topology.Node {
		root := topology.NewNode(string(feed), topology.KindUtility, 0)
		root.Feed = feed
		cdu := root.AddChild(topology.NewNode(string(feed)+"-cdu", topology.KindCDU, 900))
		for _, id := range []string{"s0", "s1"} {
			cdu.AddChild(topology.NewSupply(id+"-"+string(feed), id, 0.5))
		}
		return root
	}
	topo, err := topology.New(mkFeed("A"), mkFeed("B"))
	if err != nil {
		t.Fatal(err)
	}
	servers := map[string]ServerSpec{
		"s0": {Utilization: 1.0},
		"s1": {Utilization: 1.0},
	}
	return topo, servers
}

// TestSLOFeedFailure is the deterministic end-to-end check of the
// acceptance criterion: a seeded feed failure opens an exposure window,
// capping closes it with ≥10× margin against the breaker trip curve, and
// the feed-exposure alert fires and resolves exactly once. A later
// budget cut opens a second, overload-free window that closes with the
// margin capped.
func TestSLOFeedFailure(t *testing.T) {
	topo, servers := buildSLOSmokeDC(t)
	reg := telemetry.NewRegistry()
	rec := flightrec.NewRecorder(64)
	tr, err := slo.New(slo.Config{Registry: reg, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	derating := topology.FullRating()
	s, err := New(Config{
		Topology:       topo,
		Servers:        servers,
		Policy:         core.GlobalPriority,
		RootBudgets:    map[topology.FeedID]power.Watts{"A": 900, "B": 900},
		Derating:       &derating,
		FlightRecorder: rec,
		SLO:            tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.SLO() != tr {
		t.Fatal("SLO accessor does not return the configured tracker")
	}

	// Steady state: each feed carries 490 W against a 900 W budget, so the
	// tracker must stay empty.
	s.Run(31 * time.Second)
	if tr.FaultCount() != 0 || tr.OpenWindow() != nil || tr.PeakRisk() != 0 {
		t.Fatalf("tracker not quiescent before fault: faults=%d peak=%v",
			tr.FaultCount(), tr.PeakRisk())
	}

	// Feed B fails at t=31: feed A jumps to 980 W on a 900 W breaker.
	s.FailFeed("B")
	s.Run(90 * time.Second)

	if tripped := s.TrippedBreakers(); len(tripped) != 0 {
		t.Fatalf("breakers tripped: %v", tripped)
	}
	if v := s.InvariantViolations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	if got := tr.WindowsClosed(); got != 1 {
		t.Fatalf("windows closed = %d, want 1 (open=%+v)", got, tr.OpenWindow())
	}
	w := tr.ClosedWindows()[0]
	if len(w.Causes) != 1 || w.Causes[0] != "feed-fail:B" {
		t.Errorf("window causes = %v", w.Causes)
	}
	// Cold-start timeToTrip at 980/900 overload: 46.8/(1.089²−1) ≈ 252 s.
	if w.MinTimeToTripSec < 200 || w.MinTimeToTripSec > 300 {
		t.Errorf("min timeToTrip = %v s, want ≈252", w.MinTimeToTripSec)
	}
	// Capping must close the window within two control periods.
	if w.DurationSec <= 0 || w.DurationSec > 16 {
		t.Errorf("exposure duration = %v s, want (0, 16]", w.DurationSec)
	}
	// The paper's claim: capping acts an order of magnitude faster than
	// the breaker trips.
	if m := w.Margin(); m < 10 {
		t.Errorf("time-to-safe margin = %.1f×, want ≥10×", m)
	}
	if tr.WorstMargin() < 10 {
		t.Errorf("worst margin = %v, want ≥10", tr.WorstMargin())
	}

	// The feed-exposure alert fired when the overloaded window was open at
	// a period boundary and resolved at the next — exactly once each.
	fired, resolved := tr.TransitionCounts("feed-exposure")
	if fired != 1 || resolved != 1 {
		t.Errorf("feed-exposure transitions = %d fired / %d resolved, want 1/1", fired, resolved)
	}
	if alerts := tr.ActiveAlerts(); len(alerts) != 0 {
		t.Errorf("alerts still firing: %+v", alerts)
	}
	if tr.Status() != telemetry.HealthOK {
		t.Errorf("status = %v after recovery, want ok", tr.Status())
	}

	// The breakers warmed but stayed far from tripping.
	if r := tr.PeakRisk(); r <= 0 || r >= 0.5 {
		t.Errorf("peak trip risk = %v, want (0, 0.5)", r)
	}
	if feeds := tr.TrippedFeeds(); len(feeds) != 0 {
		t.Errorf("tripped feeds = %v", feeds)
	}
	if q := tr.TimeToSafeQuantile(0.5); !(q > 0) {
		t.Errorf("p50 time-to-safe = %v, want > 0", q)
	}

	// Both alert transitions were annotated onto flight-recorder periods.
	var firing, resolving int
	for _, r := range rec.Records() {
		for _, a := range r.Annotations {
			switch a.Kind {
			case "alert-firing":
				firing++
			case "alert-resolved":
				resolving++
			}
		}
	}
	if firing != 1 || resolving != 1 {
		t.Errorf("flight-recorder annotations = %d firing / %d resolved, want 1/1", firing, resolving)
	}

	// A budget cut on the surviving feed opens a second window. Feed A is
	// measuring ~900 W; cutting to 700 W is a fault, but no breaker
	// overloads, so the window closes with ratio 0 and the margin capped.
	s.SetRootBudget("A", 700)
	s.Run(60 * time.Second)
	if got := tr.WindowsClosed(); got != 2 {
		t.Fatalf("windows closed after budget cut = %d, want 2 (open=%+v)", got, tr.OpenWindow())
	}
	w2 := tr.ClosedWindows()[1]
	if len(w2.Causes) != 1 || w2.Causes[0] != "budget-cut:A" {
		t.Errorf("budget-cut window causes = %v", w2.Causes)
	}
	if w2.MinTimeToTripSec != 0 || w2.Ratio != 0 || w2.Margin() != slo.MarginCap {
		t.Errorf("budget-cut window = %+v, want no overload", w2)
	}
	// No overload: the feed-exposure counters must not have moved.
	fired, resolved = tr.TransitionCounts("feed-exposure")
	if fired != 1 || resolved != 1 {
		t.Errorf("feed-exposure transitions after budget cut = %d/%d, want 1/1", fired, resolved)
	}
	if load := s.NodeLoad("A"); load > 700+4 {
		t.Errorf("feed A load %v not pulled under the 700 W cut", load)
	}
}

// TestSLORiskReachesOneOnTrip checks the risk score saturates at 1 when
// a breaker actually trips: a severe overload with capping unable to
// shed enough load (budget far above the breaker rating, so the control
// plane never reacts).
func TestSLORiskReachesOneOnTrip(t *testing.T) {
	topo, servers := buildSLOSmokeDC(t)
	tr, err := slo.New(slo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	derating := topology.FullRating()
	s, err := New(Config{
		Topology: topo,
		Servers:  servers,
		Policy:   core.GlobalPriority,
		// A huge control period keeps the control plane from ever reacting
		// to the failover overload, so the breaker integrates heat to its
		// trip threshold.
		ControlPeriod: time.Hour,
		Derating:      &derating,
		SLO:           tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * time.Second)
	s.FailFeed("B")
	// 980 W on the 900 W CDU forever: heat reaches K≈46.8 after ≈252 s.
	s.Run(5 * time.Minute)
	if tripped := s.TrippedBreakers(); len(tripped) == 0 {
		t.Fatal("expected the A-side breaker to trip with capping disabled")
	}
	if r := tr.PeakRisk(); r != 1 {
		t.Errorf("peak risk = %v, want 1 after a trip", r)
	}
	if feeds := tr.TrippedFeeds(); len(feeds) != 1 || feeds[0] != "A" {
		t.Errorf("tripped feeds = %v, want [A]", feeds)
	}
	// The breaker-trip fault was recorded.
	if tr.FaultCount() < 2 { // feed-fail:B + breaker-trip:A-cdu
		t.Errorf("fault count = %d, want ≥2", tr.FaultCount())
	}
}
