package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestScheduleStableOrdering schedules 10k events with colliding
// timestamps in random time order and asserts they fire sorted by time
// with registration order preserved within a timestamp — the contract the
// old sort-on-every-insert implementation provided via sort.SliceStable.
func TestScheduleStableOrdering(t *testing.T) {
	s, err := New(Config{
		Topology: fig2Topology(t),
		Servers:  fig2Servers(0),
		Derating: fullRating(),
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 10000
	const slots = 20 // seconds; heavy timestamp collision on purpose
	rng := rand.New(rand.NewSource(1))
	type stamp struct {
		at  time.Duration
		seq int
	}
	want := make([]stamp, 0, n)
	var got []stamp
	seqAt := make(map[time.Duration]int)
	for i := 0; i < n; i++ {
		at := time.Duration(rng.Intn(slots)) * time.Second
		seq := seqAt[at]
		seqAt[at]++
		ev := stamp{at: at, seq: seq}
		want = append(want, ev)
		s.Schedule(at, fmt.Sprintf("ev-%d", i), func(*Simulator) {
			got = append(got, ev)
		})
	}
	// Expected firing order: by timestamp, registration order within one.
	ordered := make([]stamp, len(want))
	copy(ordered, want)
	// Insertion sort by at keeps same-timestamp registration order without
	// relying on the very library behavior under test.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j-1].at > ordered[j].at; j-- {
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}

	s.Run(slots * time.Second)
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i := range ordered {
		if got[i] != ordered[i] {
			t.Fatalf("event %d fired out of order: got t=%v seq=%d, want t=%v seq=%d",
				i, got[i].at, got[i].seq, ordered[i].at, ordered[i].seq)
		}
	}
}
