// Package scheduler implements the job-scheduler coordination the paper
// calls for in its discussion of open challenges (Section 7): because
// CapMaestro caps power *per server*, the scheduler should co-locate jobs
// of similar priority on physical servers, derive each server's priority
// from the jobs it hosts, and push priority changes to the power manager
// proactively so budgets adjust before the next emergency rather than
// after it.
//
// The scheduler models servers as core-counted bins and jobs as
// (cores, priority) requests. Placement prefers, in order:
//
//  1. servers already running jobs of exactly the job's priority (keeps
//     servers priority-pure, so per-server capping maps cleanly onto job
//     priorities);
//  2. empty servers (starts a new pure server);
//  3. any server with room (priority mixing, reported as pollution).
//
// Within a class, best-fit (least leftover cores) reduces fragmentation.
// A server's effective priority is the maximum priority of its jobs — the
// conservative choice the paper suggests — and every change is reported
// through the PriorityChange callback.
//
// The scheduler also provides per-job budget division (DivideBudget): the
// paper notes that capping "virtual partitions" of a server requires
// splitting the server budget across jobs; the same four-step budgeting
// primitive that shifts power between servers divides a server's budget
// among its jobs by priority.
package scheduler

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"time"
)

// JobID identifies a job (VM or container).
type JobID string

// Job is a placement request.
type Job struct {
	ID       JobID
	Cores    int
	Priority core.Priority
}

// ServerInfo describes a schedulable server.
type ServerInfo struct {
	ID    string
	Cores int
}

// PriorityChange is invoked whenever a server's effective priority
// changes; wire it to the power manager (e.g. Simulator.SetPriority).
type PriorityChange func(serverID string, old, new core.Priority)

// ErrNoCapacity is returned when no server can host a job.
var ErrNoCapacity = errors.New("scheduler: no server has enough free cores")

type serverState struct {
	info     ServerInfo
	free     int
	jobs     map[JobID]Job
	priority core.Priority
	hasJobs  bool
}

// Scheduler places jobs onto servers and tracks per-server priorities.
type Scheduler struct {
	mu       sync.Mutex
	servers  map[string]*serverState
	placed   map[JobID]string
	onChange PriorityChange
	energyWh map[JobID]float64

	// IdlePriority is the priority of a server hosting no jobs; such
	// servers are safe to throttle to the floor. Defaults to the lowest
	// used priority (0).
	IdlePriority core.Priority
}

// New creates a scheduler over the given servers. onChange may be nil.
func New(servers []ServerInfo, onChange PriorityChange) (*Scheduler, error) {
	if len(servers) == 0 {
		return nil, errors.New("scheduler: no servers")
	}
	s := &Scheduler{
		servers:  make(map[string]*serverState, len(servers)),
		placed:   make(map[JobID]string),
		onChange: onChange,
		energyWh: make(map[JobID]float64),
	}
	for _, info := range servers {
		if info.ID == "" {
			return nil, errors.New("scheduler: server with empty ID")
		}
		if info.Cores <= 0 {
			return nil, fmt.Errorf("scheduler: server %q has no cores", info.ID)
		}
		if _, dup := s.servers[info.ID]; dup {
			return nil, fmt.Errorf("scheduler: duplicate server %q", info.ID)
		}
		s.servers[info.ID] = &serverState{
			info: info,
			free: info.Cores,
			jobs: make(map[JobID]Job),
		}
	}
	return s, nil
}

// Submit places a job and returns the chosen server.
func (s *Scheduler) Submit(job Job) (string, error) {
	if job.ID == "" {
		return "", errors.New("scheduler: job with empty ID")
	}
	if job.Cores <= 0 {
		return "", fmt.Errorf("scheduler: job %q requests no cores", job.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.placed[job.ID]; dup {
		return "", fmt.Errorf("scheduler: job %q already placed", job.ID)
	}

	best := s.pickServer(job)
	if best == nil {
		return "", fmt.Errorf("%w: job %q wants %d cores", ErrNoCapacity, job.ID, job.Cores)
	}
	best.jobs[job.ID] = job
	best.free -= job.Cores
	s.placed[job.ID] = best.info.ID
	s.refreshPriority(best)
	return best.info.ID, nil
}

// pickServer scores candidates: class (pure-match > empty > mixed), then
// best fit, then ID for determinism.
func (s *Scheduler) pickServer(job Job) *serverState {
	type candidate struct {
		st    *serverState
		class int // 0 pure match, 1 empty, 2 mixed
	}
	var cands []candidate
	for _, st := range s.servers {
		if st.free < job.Cores {
			continue
		}
		class := 2
		switch {
		case !st.hasJobs:
			class = 1
		case s.isPure(st, job.Priority):
			class = 0
		}
		cands = append(cands, candidate{st: st, class: class})
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.class != b.class {
			return a.class < b.class
		}
		leftA := a.st.free - job.Cores
		leftB := b.st.free - job.Cores
		if leftA != leftB {
			return leftA < leftB // best fit
		}
		return a.st.info.ID < b.st.info.ID
	})
	return cands[0].st
}

func (s *Scheduler) isPure(st *serverState, p core.Priority) bool {
	for _, j := range st.jobs {
		if j.Priority != p {
			return false
		}
	}
	return true
}

// Remove evicts a job (completion or migration).
func (s *Scheduler) Remove(jobID JobID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	serverID, ok := s.placed[jobID]
	if !ok {
		return fmt.Errorf("scheduler: job %q not placed", jobID)
	}
	st := s.servers[serverID]
	job := st.jobs[jobID]
	delete(st.jobs, jobID)
	st.free += job.Cores
	delete(s.placed, jobID)
	s.refreshPriority(st)
	return nil
}

// refreshPriority recomputes a server's effective priority (max over jobs,
// IdlePriority when empty) and fires the callback on change.
func (s *Scheduler) refreshPriority(st *serverState) {
	old, oldHas := st.priority, st.hasJobs
	st.hasJobs = len(st.jobs) > 0
	prio := s.IdlePriority
	first := true
	for _, j := range st.jobs {
		if first || j.Priority > prio {
			prio = j.Priority
			first = false
		}
	}
	st.priority = prio
	if s.onChange != nil && (prio != old || oldHas != st.hasJobs) {
		s.onChange(st.info.ID, old, prio)
	}
}

// ServerPriority returns a server's effective priority.
func (s *Scheduler) ServerPriority(serverID string) (core.Priority, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.servers[serverID]
	if !ok {
		return 0, false
	}
	return st.priority, true
}

// Placement returns the server hosting a job.
func (s *Scheduler) Placement(jobID JobID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.placed[jobID]
	return id, ok
}

// Utilization returns the fraction of a server's cores in use.
func (s *Scheduler) Utilization(serverID string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.servers[serverID]
	if !ok {
		return 0, false
	}
	return float64(st.info.Cores-st.free) / float64(st.info.Cores), true
}

// Jobs lists the jobs on a server, sorted by ID.
func (s *Scheduler) Jobs(serverID string) []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.servers[serverID]
	if !ok {
		return nil
	}
	out := make([]Job, 0, len(st.jobs))
	for _, j := range st.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MixedServers lists servers hosting more than one priority level —
// placements where per-server capping cannot distinguish job priorities.
// An empty list means the fleet is priority-pure.
func (s *Scheduler) MixedServers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for id, st := range s.servers {
		seen := make(map[core.Priority]struct{})
		for _, j := range st.jobs {
			seen[j.Priority] = struct{}{}
		}
		if len(seen) > 1 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// MeterEnergy attributes dt of a server's measured power draw to the jobs
// it hosts, accumulating per-job energy. The paper notes (Section 7) that
// per-user power metering on shared servers "does not currently exist" and
// blocks providers from passing energy savings through to users; this is
// the accounting half of that gap. Idle power is split by core share of
// the whole machine (an idle machine's cost belongs to its tenants pro
// rata); dynamic power is split by core share of the *used* cores.
func (s *Scheduler) MeterEnergy(serverID string, draw power.Watts, idle power.Watts, dt time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.servers[serverID]
	if !ok {
		return fmt.Errorf("scheduler: unknown server %q", serverID)
	}
	if len(st.jobs) == 0 || dt <= 0 {
		return nil
	}
	if draw < 0 {
		draw = 0
	}
	dynamic := draw - idle
	if dynamic < 0 {
		idle = draw
		dynamic = 0
	}
	usedCores := st.info.Cores - st.free
	hours := dt.Hours()
	for id, j := range st.jobs {
		idleShare := float64(j.Cores) / float64(st.info.Cores)
		dynShare := 0.0
		if usedCores > 0 {
			dynShare = float64(j.Cores) / float64(usedCores)
		}
		s.energyWh[id] += (float64(idle)*idleShare + float64(dynamic)*dynShare) * hours
	}
	return nil
}

// EnergyWh reports the energy attributed to a job so far (watt-hours).
// Completed jobs keep their accumulated total.
func (s *Scheduler) EnergyWh(jobID JobID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.energyWh[jobID]
}

// DivideBudget splits a server's power budget among its jobs: each job is
// treated as a virtual partition whose floor and ceiling are its core
// share of the server's envelope, and the same priority-aware budgeting
// step that shifts power between servers divides the dynamic power among
// jobs. Idle headroom (unused cores) is budgeted to no job.
func (s *Scheduler) DivideBudget(serverID string, budget power.Watts, model power.ServerModel) (map[JobID]power.Watts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.servers[serverID]
	if !ok {
		return nil, fmt.Errorf("scheduler: unknown server %q", serverID)
	}
	out := make(map[JobID]power.Watts, len(st.jobs))
	if len(st.jobs) == 0 {
		return out, nil
	}
	ids := make([]JobID, 0, len(st.jobs))
	for id := range st.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	summaries := make([]core.Summary, 0, len(ids))
	totalCores := float64(st.info.Cores)
	for _, id := range ids {
		j := st.jobs[id]
		share := float64(j.Cores) / totalCores
		sum := core.NewSummary()
		sum.SetLevel(j.Priority, power.Watts(share)*model.CapMin,
			power.Watts(share)*model.CapMax, power.Watts(share)*model.CapMax)
		sum.Constraint = power.Watts(share) * model.CapMax
		summaries = append(summaries, sum)
	}
	// Only the jobs' core share of the budget is divisible; idle cores'
	// share of the envelope stays unassigned.
	usedShare := power.Watts(float64(st.info.Cores-st.free) / totalCores)
	allocs, _ := core.DistributeBudget(power.Min(budget, usedShare*model.CapMax), summaries)
	for i, id := range ids {
		out[id] = allocs[i]
	}
	return out, nil
}
