package scheduler

import (
	"errors"
	"math"
	"testing"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/sim"
	"capmaestro/internal/topology"
)

func newTestScheduler(t *testing.T, onChange PriorityChange) *Scheduler {
	t.Helper()
	s, err := New([]ServerInfo{
		{ID: "s1", Cores: 28},
		{ID: "s2", Cores: 28},
		{ID: "s3", Cores: 28},
	}, onChange)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("no servers should fail")
	}
	if _, err := New([]ServerInfo{{ID: "", Cores: 4}}, nil); err == nil {
		t.Error("empty ID should fail")
	}
	if _, err := New([]ServerInfo{{ID: "a", Cores: 0}}, nil); err == nil {
		t.Error("zero cores should fail")
	}
	if _, err := New([]ServerInfo{{ID: "a", Cores: 4}, {ID: "a", Cores: 4}}, nil); err == nil {
		t.Error("duplicate ID should fail")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestScheduler(t, nil)
	if _, err := s.Submit(Job{ID: "", Cores: 4}); err == nil {
		t.Error("empty job ID should fail")
	}
	if _, err := s.Submit(Job{ID: "j", Cores: 0}); err == nil {
		t.Error("zero cores should fail")
	}
	if _, err := s.Submit(Job{ID: "j", Cores: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Job{ID: "j", Cores: 4}); err == nil {
		t.Error("duplicate job should fail")
	}
	if _, err := s.Submit(Job{ID: "huge", Cores: 64}); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("oversized job: %v", err)
	}
}

func TestCoLocationByPriority(t *testing.T) {
	s := newTestScheduler(t, nil)
	// First high-priority job starts a server; subsequent ones join it.
	srvA, _ := s.Submit(Job{ID: "h1", Cores: 8, Priority: 1})
	srvB, _ := s.Submit(Job{ID: "h2", Cores: 8, Priority: 1})
	if srvA != srvB {
		t.Errorf("same-priority jobs split: %s vs %s", srvA, srvB)
	}
	// A low-priority job avoids the high-priority server while empty
	// servers exist.
	srvC, _ := s.Submit(Job{ID: "l1", Cores: 8, Priority: 0})
	if srvC == srvA {
		t.Error("low-priority job polluted the high-priority server")
	}
	if mixed := s.MixedServers(); len(mixed) != 0 {
		t.Errorf("fleet should be pure, mixed = %v", mixed)
	}
}

func TestMixingOnlyWhenForced(t *testing.T) {
	s := newTestScheduler(t, nil)
	// Fill all three servers with low-priority work, leaving room on one.
	s.Submit(Job{ID: "l1", Cores: 28, Priority: 0})
	s.Submit(Job{ID: "l2", Cores: 28, Priority: 0})
	s.Submit(Job{ID: "l3", Cores: 20, Priority: 0})
	srv, err := s.Submit(Job{ID: "h1", Cores: 8, Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	mixed := s.MixedServers()
	if len(mixed) != 1 || mixed[0] != srv {
		t.Errorf("expected forced mixing on %s, got %v", srv, mixed)
	}
	// The mixed server's priority rises to the max of its jobs.
	if p, _ := s.ServerPriority(srv); p != 1 {
		t.Errorf("mixed server priority = %v, want 1", p)
	}
}

func TestBestFitReducesFragmentation(t *testing.T) {
	s, err := New([]ServerInfo{
		{ID: "big", Cores: 28},
		{ID: "small", Cores: 8},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An 8-core job fits exactly into the small server; best-fit should
	// keep the big server whole.
	srv, _ := s.Submit(Job{ID: "j", Cores: 8, Priority: 0})
	if srv != "small" {
		t.Errorf("placed on %s, want small (best fit)", srv)
	}
}

func TestPriorityCallbackAndRemove(t *testing.T) {
	type change struct {
		server   string
		old, new core.Priority
	}
	var changes []change
	s := newTestScheduler(t, func(id string, old, new core.Priority) {
		changes = append(changes, change{id, old, new})
	})
	srv, _ := s.Submit(Job{ID: "h1", Cores: 4, Priority: 2})
	if len(changes) != 1 || changes[0].new != 2 {
		t.Fatalf("changes = %+v", changes)
	}
	if u, _ := s.Utilization(srv); u != 4.0/28 {
		t.Errorf("utilization = %v", u)
	}
	if err := s.Remove("h1"); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 2 || changes[1].new != 0 {
		t.Fatalf("removal change missing: %+v", changes)
	}
	if err := s.Remove("h1"); err == nil {
		t.Error("double remove should fail")
	}
	if _, ok := s.Placement("h1"); ok {
		t.Error("placement should be cleared")
	}
}

func TestAccessorsUnknownServer(t *testing.T) {
	s := newTestScheduler(t, nil)
	if _, ok := s.ServerPriority("nope"); ok {
		t.Error("unknown server priority should be !ok")
	}
	if _, ok := s.Utilization("nope"); ok {
		t.Error("unknown server utilization should be !ok")
	}
	if s.Jobs("nope") != nil {
		t.Error("unknown server jobs should be nil")
	}
}

func TestJobsSorted(t *testing.T) {
	s := newTestScheduler(t, nil)
	s.Submit(Job{ID: "b", Cores: 2, Priority: 1})
	s.Submit(Job{ID: "a", Cores: 2, Priority: 1})
	srv, _ := s.Placement("a")
	jobs := s.Jobs(srv)
	if len(jobs) != 2 || jobs[0].ID != "a" || jobs[1].ID != "b" {
		t.Errorf("jobs = %+v", jobs)
	}
}

func TestDivideBudgetPriorityAware(t *testing.T) {
	s, err := New([]ServerInfo{{ID: "s1", Cores: 28}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(Job{ID: "hi", Cores: 14, Priority: 1})
	s.Submit(Job{ID: "lo", Cores: 14, Priority: 0})
	model := power.DefaultServerModel()
	// A tight budget: the high-priority job gets its full half-envelope
	// (245 W), the low-priority job the remainder above its floor.
	budgets, err := s.DivideBudget("s1", 400, model)
	if err != nil {
		t.Fatal(err)
	}
	if budgets["hi"] < 240 {
		t.Errorf("high-priority partition = %v, want ~245", budgets["hi"])
	}
	if budgets["lo"] < 135-1 || budgets["lo"] > budgets["hi"] {
		t.Errorf("low-priority partition = %v (floor 135)", budgets["lo"])
	}
	total := budgets["hi"] + budgets["lo"]
	if total > 400+0.001 {
		t.Errorf("partitions %v exceed the server budget", total)
	}
	if _, err := s.DivideBudget("nope", 400, model); err == nil {
		t.Error("unknown server should fail")
	}
	// Empty server: empty division.
	s2, _ := New([]ServerInfo{{ID: "e", Cores: 4}}, nil)
	if out, err := s2.DivideBudget("e", 300, model); err != nil || len(out) != 0 {
		t.Errorf("empty server division = %v, %v", out, err)
	}
}

// TestSchedulerDrivesSimulatorPriorities is the Section 7 integration: job
// placements update simulated server priorities, and the next control
// period re-budgets power toward the server that just received
// high-priority work.
func TestSchedulerDrivesSimulatorPriorities(t *testing.T) {
	root := topology.NewNode("X", topology.KindUtility, 0)
	root.Feed = "X"
	cdu := root.AddChild(topology.NewNode("cdu", topology.KindCDU, 900))
	cdu.AddChild(topology.NewSupply("s1-ps", "s1", 1))
	cdu.AddChild(topology.NewSupply("s2-ps", "s2", 1))
	topo, err := topology.New(root)
	if err != nil {
		t.Fatal(err)
	}
	derating := topology.FullRating()
	simulator, err := sim.New(sim.Config{
		Topology: topo,
		Servers: map[string]sim.ServerSpec{
			"s1": {Utilization: 1},
			"s2": {Utilization: 1},
		},
		Policy:      core.GlobalPriority,
		RootBudgets: map[topology.FeedID]power.Watts{"X": 760},
		Derating:    &derating,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := New([]ServerInfo{{ID: "s1", Cores: 28}, {ID: "s2", Cores: 28}},
		func(serverID string, _, new core.Priority) {
			if err := simulator.SetPriority(serverID, new); err != nil {
				t.Error(err)
			}
		})
	if err != nil {
		t.Fatal(err)
	}

	// Equal priorities: the 760 W budget splits evenly (~380/380).
	simulator.Run(time.Minute)
	p1, p2 := simulator.Server("s1").ACPower(), simulator.Server("s2").ACPower()
	if d := float64(p1 - p2); d > 15 || d < -15 {
		t.Fatalf("equal-priority split uneven: %v vs %v", p1, p2)
	}

	// A high-priority job lands (deterministically on s1: best-fit tie
	// broken by ID); power shifts toward it within a few control periods.
	srv, err := sched.Submit(Job{ID: "critical", Cores: 8, Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	if srv != "s1" {
		t.Fatalf("job placed on %s, want s1", srv)
	}
	simulator.Run(time.Minute)
	p1, p2 = simulator.Server("s1").ACPower(), simulator.Server("s2").ACPower()
	if p1 < 480 {
		t.Errorf("high-priority server power = %v, want ~490", p1)
	}
	if p2 > 285 {
		t.Errorf("low-priority server power = %v, want ~270", p2)
	}

	// Job completes; the fleet returns to an even split.
	if err := sched.Remove("critical"); err != nil {
		t.Fatal(err)
	}
	simulator.Run(time.Minute)
	p1, p2 = simulator.Server("s1").ACPower(), simulator.Server("s2").ACPower()
	if d := float64(p1 - p2); d > 15 || d < -15 {
		t.Errorf("post-completion split uneven: %v vs %v", p1, p2)
	}
}

func TestMeterEnergyAttribution(t *testing.T) {
	s, err := New([]ServerInfo{{ID: "s1", Cores: 28}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(Job{ID: "big", Cores: 21, Priority: 0})  // 3/4 of used cores
	s.Submit(Job{ID: "small", Cores: 7, Priority: 0}) // 1/4 of used cores
	// One hour at 440 W with a 160 W idle floor: 280 W dynamic.
	if err := s.MeterEnergy("s1", 440, 160, time.Hour); err != nil {
		t.Fatal(err)
	}
	// big: idle 160×(21/28)=120, dynamic 280×(3/4)=210 → 330 Wh.
	if got := s.EnergyWh("big"); math.Abs(got-330) > 0.01 {
		t.Errorf("big energy = %v Wh, want 330", got)
	}
	// small: idle 40 + dynamic 70 = 110 Wh.
	if got := s.EnergyWh("small"); math.Abs(got-110) > 0.01 {
		t.Errorf("small energy = %v Wh, want 110", got)
	}
	// Attribution is conservative: totals match the measured draw.
	if total := s.EnergyWh("big") + s.EnergyWh("small"); math.Abs(total-440) > 0.01 {
		t.Errorf("attributed total %v Wh, want 440", total)
	}
}

func TestMeterEnergyEdgeCases(t *testing.T) {
	s, err := New([]ServerInfo{{ID: "s1", Cores: 28}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MeterEnergy("nope", 400, 160, time.Hour); err == nil {
		t.Error("unknown server should fail")
	}
	// No jobs: nothing attributed, no error.
	if err := s.MeterEnergy("s1", 400, 160, time.Hour); err != nil {
		t.Fatal(err)
	}
	s.Submit(Job{ID: "j", Cores: 14, Priority: 0})
	// Draw below idle: everything counts as idle share, nothing negative.
	if err := s.MeterEnergy("s1", 100, 160, time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := s.EnergyWh("j"); math.Abs(got-50) > 0.01 {
		t.Errorf("below-idle attribution = %v Wh, want 50 (half of 100)", got)
	}
	// Zero duration: no change.
	before := s.EnergyWh("j")
	s.MeterEnergy("s1", 400, 160, 0)
	if s.EnergyWh("j") != before {
		t.Error("zero-duration metering changed energy")
	}
	// Energy survives job completion.
	s.Remove("j")
	if s.EnergyWh("j") != before {
		t.Error("completed job lost its energy record")
	}
}
