package scenario

import (
	"fmt"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/scenario/refalloc"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
	"capmaestro/internal/topology"
)

// Impl is the allocator implementation under test. Injecting it lets the
// harness prove its own teeth: mutation tests substitute deliberately
// broken allocators and assert the oracle reports divergence.
type Impl struct {
	Name        string
	AllocateAll func(trees []*core.Node, budgets []power.Watts, policy core.Policy) ([]*core.Allocation, error)
	AllocateSPO func(trees []*core.Node, budgets []power.Watts, policy core.Policy) ([]*core.Allocation, *core.SPOReport, error)
}

// Production is the real allocator stack. Its AllocateAll deliberately
// routes through a reused core.Allocator run under every policy before the
// requested one, so the oracle also proves that the flattened hot path's
// scratch reuse leaks no state between runs.
var Production = Impl{
	Name: "core",
	AllocateAll: func(trees []*core.Node, budgets []power.Watts, policy core.Policy) ([]*core.Allocation, error) {
		allocs := make([]*core.Allocation, len(trees))
		for i, t := range trees {
			a, err := core.NewAllocator(t)
			if err != nil {
				return nil, err
			}
			var b power.Watts
			if budgets != nil {
				b = budgets[i]
			}
			for _, warm := range []core.Policy{core.NoPriority, core.LocalPriority, core.GlobalPriority} {
				a.Run(b, warm)
			}
			a.Run(b, policy)
			allocs[i] = a.Snapshot()
		}
		return allocs, nil
	},
	AllocateSPO: core.AllocateWithSPO,
}

// SPOTolerance bounds how much total predicted consumption may drop after
// the stranded power optimization: SPO moves budget that provably cannot
// be consumed, so up to float noise it must never reduce what servers can
// draw.
const SPOTolerance = 0.5 // watts, summed over all servers

// Verify runs the scenario through the full battery — the allocation-layer
// differential oracle at every state the fault schedule visits, then the
// simulator with its safety monitor — and returns the first failure.
func Verify(sc *Scenario) error { return VerifyImpl(sc, Production) }

// VerifyImpl is Verify with an injectable allocator implementation.
func VerifyImpl(sc *Scenario, impl Impl) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	if err := CheckStates(sc, impl); err != nil {
		return err
	}
	return verifySim(sc)
}

// verifySim runs the scenario end to end through sim.Simulator — with a
// safety-SLO tracker attached — and asserts the global safety properties
// plus the sound subset of the SLO layer's invariants.
func verifySim(sc *Scenario) error {
	tracker, err := slo.New(slo.Config{})
	if err != nil {
		return err
	}
	s, err := sc.BuildSimWithSLO(tracker)
	if err != nil {
		return err
	}
	s.Run(time.Duration(sc.DurationSec) * time.Second)
	if v := s.InvariantViolations(); len(v) > 0 {
		return fmt.Errorf("scenario %s: safety monitor: %s", sc.Name, v[0])
	}
	// Breakers must hold whenever capping could protect them. Infeasible
	// periods mean the contractual budget itself was below the aggregate
	// floors — the one regime in which the paper offers no guarantee.
	tripped := s.TrippedBreakers()
	if len(tripped) > 0 && s.InfeasiblePeriods() == 0 {
		return fmt.Errorf("scenario %s: breaker %s tripped with feasible budgets", sc.Name, tripped[0])
	}

	// SLO soundness. Only properties that hold for every scenario are
	// asserted here; the sharp ones (margin ≥ 10×, single fire/resolve)
	// live in deterministic tests where the physics are pinned.
	if len(sc.Events) == 0 && len(tripped) == 0 {
		// Quiescent purity: with no faults injected and no trips, the
		// tracker must not invent exposure.
		if n := tracker.FaultCount(); n != 0 {
			return fmt.Errorf("scenario %s: SLO recorded %d faults in a quiescent run", sc.Name, n)
		}
		if n := tracker.WindowsClosed(); n != 0 || tracker.OpenWindow() != nil {
			return fmt.Errorf("scenario %s: SLO opened exposure windows in a quiescent run (closed=%d)", sc.Name, n)
		}
		if tracker.Status() == telemetry.HealthCritical {
			return fmt.Errorf("scenario %s: SLO went critical in a quiescent run: %+v", sc.Name, tracker.ActiveAlerts())
		}
	}
	if len(tripped) == 0 {
		// Risk saturates at 1 only when a breaker actually opens.
		if r := tracker.PeakRisk(); r >= 1 {
			return fmt.Errorf("scenario %s: SLO peak trip risk %v without a breaker trip", sc.Name, r)
		}
		if feeds := tracker.TrippedFeeds(); len(feeds) > 0 {
			return fmt.Errorf("scenario %s: SLO marked feeds tripped without a breaker trip: %v", sc.Name, feeds)
		}
	} else {
		if r := tracker.PeakRisk(); r != 1 {
			return fmt.Errorf("scenario %s: breaker tripped but SLO peak risk = %v, want 1", sc.Name, r)
		}
		if tracker.FaultCount() == 0 {
			return fmt.Errorf("scenario %s: breaker tripped but SLO recorded no fault", sc.Name)
		}
	}
	return nil
}

// allocState is one point of the scenario's state timeline.
type allocState struct {
	atSec      int
	feedDown   map[string]bool
	supDown    map[string]bool
	util       map[string]float64
	priority   map[string]core.Priority
	budget     map[string]power.Watts // by feed; absence means "no budget"
	drained    map[string]float64     // serverID → utilization before drain
	nodeBudget map[string]power.Watts // operator subtree budget overlays
}

// states replays the fault schedule and returns the initial state plus one
// state per event timestamp. Operator events (cordon/drain/uncordon and
// subtree re-budgets) are modelled exactly as the simulator applies them,
// so the differential oracle stays sound for declarative scenarios.
func (sc *Scenario) states() []*allocState {
	topo, err := sc.BuildTopology()
	if err != nil {
		topo = nil // callers validate first; states() is then never reached
	}
	cur := &allocState{
		feedDown:   map[string]bool{},
		supDown:    map[string]bool{},
		util:       map[string]float64{},
		priority:   map[string]core.Priority{},
		budget:     map[string]power.Watts{},
		drained:    map[string]float64{},
		nodeBudget: map[string]power.Watts{},
	}
	for i := range sc.Servers {
		sv := &sc.Servers[i]
		cur.util[sv.ID] = sv.Utilization
		cur.priority[sv.ID] = core.Priority(sv.Priority)
	}
	for _, b := range sc.Budgets {
		cur.budget[b.Feed] = power.Watts(b.Watts)
	}
	out := []*allocState{cur}
	for i := 0; i < len(sc.Events); {
		next := cur.clone()
		t := sc.Events[i].AtSec
		for ; i < len(sc.Events) && sc.Events[i].AtSec == t; i++ {
			next.apply(sc.Events[i], topo)
		}
		next.atSec = t
		out = append(out, next)
		cur = next
	}
	return out
}

func (s *allocState) clone() *allocState {
	c := &allocState{
		atSec:      s.atSec,
		feedDown:   make(map[string]bool, len(s.feedDown)),
		supDown:    make(map[string]bool, len(s.supDown)),
		util:       make(map[string]float64, len(s.util)),
		priority:   make(map[string]core.Priority, len(s.priority)),
		budget:     make(map[string]power.Watts, len(s.budget)),
		drained:    make(map[string]float64, len(s.drained)),
		nodeBudget: make(map[string]power.Watts, len(s.nodeBudget)),
	}
	for k, v := range s.feedDown {
		c.feedDown[k] = v
	}
	for k, v := range s.supDown {
		c.supDown[k] = v
	}
	for k, v := range s.util {
		c.util[k] = v
	}
	for k, v := range s.priority {
		c.priority[k] = v
	}
	for k, v := range s.budget {
		c.budget[k] = v
	}
	for k, v := range s.drained {
		c.drained[k] = v
	}
	for k, v := range s.nodeBudget {
		c.nodeBudget[k] = v
	}
	return c
}

func (s *allocState) apply(ev Event, topo *topology.Topology) {
	switch ev.Kind {
	case EventFailFeed:
		s.feedDown[ev.Feed] = true
	case EventRestoreFeed:
		s.feedDown[ev.Feed] = false
	case EventSetBudget:
		s.budget[ev.Feed] = power.Watts(ev.Value)
	case EventSetUtil:
		s.util[ev.Server] = ev.Value
	case EventSetPriority:
		s.priority[ev.Server] = core.Priority(int(ev.Value))
	case EventFailSupply:
		s.supDown[ev.Supply] = true
	case EventRestoreSupply:
		s.supDown[ev.Supply] = false
	case EventCordon:
		// Scheduling bookkeeping only; no allocation-layer effect.
	case EventDrain:
		for id := range serversUnderNode(topo, ev.Node) {
			if _, drained := s.drained[id]; !drained {
				s.drained[id] = s.util[id]
				s.util[id] = 0
			}
		}
	case EventUncordon:
		for id := range serversUnderNode(topo, ev.Node) {
			if u, drained := s.drained[id]; drained {
				s.util[id] = u
				delete(s.drained, id)
			}
		}
	case EventSetNodeBudget:
		if ev.Value == 0 {
			delete(s.nodeBudget, ev.Node)
		} else {
			s.nodeBudget[ev.Node] = power.Watts(ev.Value)
		}
	}
}

// buildTrees materializes the control trees for the state: one per live
// feed, leaves carrying static model demand with splits renormalized over
// each server's working supplies. Feeds with no working supplies are
// skipped, as the simulator skips them.
func (sc *Scenario) buildTrees(st *allocState) (trees []*core.Node, budgets []power.Watts, err error) {
	topo, err := sc.BuildTopology()
	if err != nil {
		return nil, nil, err
	}
	model := power.DefaultServerModel()

	workingSplit := make(map[string]float64) // serverID → Σ splits of working supplies
	split := make(map[string]float64)        // supplyID → its split
	for i := range sc.Servers {
		sv := &sc.Servers[i]
		for _, sup := range sv.Supplies() {
			id := SupplyID(sv.ID, sup.Feed)
			split[id] = sup.Split
			if !st.supDown[id] && !st.feedDown[sup.Feed] {
				workingSplit[sv.ID] += sup.Split
			}
		}
	}

	src := func(supplyID, serverID string) (core.LeafInfo, bool) {
		if st.supDown[supplyID] {
			return core.LeafInfo{}, false
		}
		total := workingSplit[serverID]
		if total <= 0 {
			return core.LeafInfo{}, false
		}
		return core.LeafInfo{
			Priority: st.priority[serverID],
			CapMin:   model.CapMin,
			CapMax:   model.CapMax,
			Demand:   model.PowerAt(st.util[serverID]),
			Share:    split[supplyID] / total,
		}, true
	}

	for _, root := range topo.Roots() {
		if st.feedDown[string(root.Feed)] {
			continue
		}
		tree, err := core.BuildTree(root, topology.DefaultDerating(), src)
		if err != nil {
			continue // feed with no working supplies: nothing to budget
		}
		// Operator subtree re-budgets tighten limits exactly as the
		// simulator's applyNodeBudgets does.
		if len(st.nodeBudget) > 0 {
			tree.Walk(func(n *core.Node) {
				if n.IsLeaf() {
					return
				}
				if b, ok := st.nodeBudget[n.ID]; ok && (n.Limit <= 0 || b < n.Limit) {
					n.Limit = b
				}
			})
		}
		trees = append(trees, tree)
		budgets = append(budgets, st.budget[string(root.Feed)])
	}
	return trees, budgets, nil
}

// CheckStates runs the differential oracle over every state in the
// scenario's timeline: for each live control tree and every policy, the
// implementation under test must match the refalloc reference exactly
// (grant for grant, to the last bit), the reference ledger must satisfy
// the paper's priority-ordering claim, the allocation must pass
// core.CheckInvariants, and the SPO pass must match the reference and
// never reduce total predicted consumption.
func CheckStates(sc *Scenario, impl Impl) error {
	policies := []core.Policy{core.NoPriority, core.LocalPriority, core.GlobalPriority}
	for _, st := range sc.states() {
		trees, budgets, err := sc.buildTrees(st)
		if err != nil {
			return err
		}
		if len(trees) == 0 {
			continue
		}
		for _, pol := range policies {
			if err := checkOnePolicy(sc, st, trees, budgets, pol, impl); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkOnePolicy(sc *Scenario, st *allocState, trees []*core.Node, budgets []power.Watts, pol core.Policy, impl Impl) error {
	where := func(detail string) error {
		return fmt.Errorf("scenario %s: t=%ds policy=%v: %s", sc.Name, st.atSec, pol, detail)
	}

	ref, err := refalloc.AllocateAll(trees, budgets, pol)
	if err != nil {
		return where(fmt.Sprintf("reference allocator: %v", err))
	}
	got, err := impl.AllocateAll(trees, budgets, pol)
	if err != nil {
		return where(fmt.Sprintf("%s allocator: %v", impl.Name, err))
	}
	for i := range trees {
		if err := diffAllocation(got[i], ref[i]); err != nil {
			return where(fmt.Sprintf("tree %s: %v", trees[i].ID, err))
		}
		if err := ref[i].CheckPriorityOrdering(); err != nil {
			return where(fmt.Sprintf("tree %s: %v", trees[i].ID, err))
		}
		if err := got[i].CheckInvariants(trees[i]); err != nil {
			return where(fmt.Sprintf("tree %s: %v", trees[i].ID, err))
		}
	}

	// Stranded power optimization: reference and implementation must agree
	// on the stranded set and the re-budgeted grants, and freeing stranded
	// watts must never shrink what servers can actually draw.
	refSPO, refReport, err := refalloc.AllocateWithSPO(trees, budgets, pol)
	if err != nil {
		return where(fmt.Sprintf("reference SPO: %v", err))
	}
	gotSPO, gotReport, err := impl.AllocateSPO(trees, budgets, pol)
	if err != nil {
		return where(fmt.Sprintf("%s SPO: %v", impl.Name, err))
	}
	for i := range trees {
		if err := diffAllocation(gotSPO[i], refSPO[i]); err != nil {
			return where(fmt.Sprintf("tree %s after SPO: %v", trees[i].ID, err))
		}
	}
	if err := diffSPOReport(gotReport, refReport); err != nil {
		return where(err.Error())
	}

	// SPO never hurts — but only in the feasible regime. When a budget
	// cannot cover the aggregate floors, minimums are scaled
	// proportionally, and pinning a stranded supply (whose BudgetCap is
	// floored at its Pcap_min) raises the floor total, shrinking every
	// other supply's scaled share: consumption legitimately drops where no
	// server was guaranteed its floor to begin with.
	if !anyInfeasible(ref) && !anyInfeasible(refSPO) {
		plain := refResultsToAllocations(ref)
		spoAllocs := refResultsToAllocations(refSPO)
		before := totalConsumption(core.PredictConsumption(trees, plain))
		after := totalConsumption(core.PredictConsumption(trees, spoAllocs))
		if after < before-SPOTolerance {
			return where(fmt.Sprintf("SPO reduced total consumption %v → %v", before, after))
		}
	}
	return nil
}

// diffAllocation compares an implementation allocation against the
// reference with exact float equality — the oracle contract is zero-watt
// divergence, which the reference guarantees is attainable by mirroring
// the production arithmetic operation for operation.
func diffAllocation(got *core.Allocation, ref *refalloc.Result) error {
	if got.Infeasible != ref.Infeasible {
		return fmt.Errorf("infeasible = %v, reference says %v", got.Infeasible, ref.Infeasible)
	}
	if len(got.NodeBudgets) != len(ref.NodeBudgets) {
		return fmt.Errorf("%d node budgets, reference has %d", len(got.NodeBudgets), len(ref.NodeBudgets))
	}
	for id, want := range ref.NodeBudgets {
		g, ok := got.NodeBudgets[id]
		if !ok {
			return fmt.Errorf("node %q missing from allocation", id)
		}
		if g != want {
			return fmt.Errorf("node %q budget %v, reference %v (diff %g W)", id, g, want, float64(g-want))
		}
	}
	if len(got.SupplyBudgets) != len(ref.SupplyBudgets) {
		return fmt.Errorf("%d supply budgets, reference has %d", len(got.SupplyBudgets), len(ref.SupplyBudgets))
	}
	for id, want := range ref.SupplyBudgets {
		if g := got.SupplyBudgets[id]; g != want {
			return fmt.Errorf("supply %q budget %v, reference %v (diff %g W)", id, g, want, float64(g-want))
		}
	}
	return nil
}

// diffSPOReport compares stranded-power reports exactly.
func diffSPOReport(got, ref *core.SPOReport) error {
	if (got == nil) != (ref == nil) {
		return fmt.Errorf("SPO report present = %v, reference %v", got != nil, ref != nil)
	}
	if got == nil {
		return nil
	}
	if got.TotalStranded != ref.TotalStranded {
		return fmt.Errorf("SPO total stranded %v, reference %v", got.TotalStranded, ref.TotalStranded)
	}
	if len(got.Stranded) != len(ref.Stranded) {
		return fmt.Errorf("SPO found %d stranded supplies, reference %d", len(got.Stranded), len(ref.Stranded))
	}
	for i := range ref.Stranded {
		if got.Stranded[i] != ref.Stranded[i] {
			return fmt.Errorf("SPO stranded[%d] = %+v, reference %+v", i, got.Stranded[i], ref.Stranded[i])
		}
	}
	return nil
}

// refResultsToAllocations adapts reference results to the core.Allocation
// shape PredictConsumption consumes.
func refResultsToAllocations(results []*refalloc.Result) []*core.Allocation {
	out := make([]*core.Allocation, len(results))
	for i, r := range results {
		out[i] = &core.Allocation{
			SupplyBudgets: r.SupplyBudgets,
			NodeBudgets:   r.NodeBudgets,
			Infeasible:    r.Infeasible,
		}
	}
	return out
}

func anyInfeasible(results []*refalloc.Result) bool {
	for _, r := range results {
		if r.Infeasible {
			return true
		}
	}
	return false
}

func totalConsumption(m map[string]power.Watts) power.Watts {
	var t power.Watts
	for _, v := range m {
		t += v
	}
	return t
}
