package scenario

import (
	"bytes"
	"strconv"
	"testing"
)

// FuzzScenarioVerify is the main fuzz target: any seed must generate a
// scenario that survives the full battery — differential oracle, priority
// ledger, allocation invariants, SPO comparison, simulator safety monitor.
// The committed corpus under testdata/fuzz seeds the interesting regions
// (feed failures, infeasible budgets, SPO redistribution); -fuzz explores
// outward from there.
func FuzzScenarioVerify(f *testing.F) {
	for _, s := range []int64{1, 3, 12, 42, 178} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sc := Generate(seed)
		if err := Verify(sc); err != nil {
			data, _ := sc.MarshalStable()
			dumpArtifact(t, "fuzz-seed-"+strconv.FormatInt(seed, 10)+".json", data)
			t.Fatalf("%v\nscenario:\n%s", err, data)
		}
	})
}

// FuzzScenarioEncoding asserts, for any seed, the replayability contract:
// generation is deterministic, the stable JSON round-trips byte-exactly,
// and the decoded scenario validates.
func FuzzScenarioEncoding(f *testing.F) {
	for _, s := range []int64{1, 7, 101, 999} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sc := Generate(seed)
		again := Generate(seed)
		a, err := sc.MarshalStable()
		if err != nil {
			t.Fatal(err)
		}
		b, err := again.MarshalStable()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
		back, err := Load(a)
		if err != nil {
			t.Fatal(err)
		}
		c, err := back.MarshalStable()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, c) {
			t.Fatalf("seed %d: JSON round trip changed encoding", seed)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("seed %d: decoded scenario invalid: %v", seed, err)
		}
	})
}
