package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// This file is the declarative scenario format the scenariorun command
// consumes: a named fleet (topology, server population, budgets), a
// timed event schedule, and a set of assertions the run must satisfy.
// Files are authored in the YAML subset (see yaml.go) or plain JSON;
// both flow through the one canonical strict decode path, so an unknown
// field is an error in either syntax.
//
// A File is sugar over the fuzzing-era Scenario value: Scenario() lowers
// it (expanding server groups into individual ServerSpecs) and from
// there every existing tool works — Validate, Verify, CheckStates, the
// simulator builders, and the minimizer.

// DefaultControlPeriodSec is the paper's 8 s control period, used when a
// fleet omits control_period_sec.
const DefaultControlPeriodSec = 8

// File is one declarative scenario document.
type File struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	Fleet FleetSpec `json:"fleet"`

	// Events is the timed schedule: faults, load changes, and operator
	// actions, in firing order.
	Events []Event `json:"events,omitempty"`

	// Assertions are evaluated after the run; all must pass.
	Assertions []Assertion `json:"assertions,omitempty"`
}

// FleetSpec describes the fleet under test.
type FleetSpec struct {
	// Policy is a core.ParsePolicy name: "none", "local", or "global".
	Policy string `json:"policy"`
	SPO    bool   `json:"spo,omitempty"`

	// ControlPeriodSec defaults to the paper's 8 s period when omitted.
	ControlPeriodSec int `json:"control_period_sec,omitempty"`
	DurationSec      int `json:"duration_sec"`

	Topology TopologySpec `json:"topology"`

	// Servers places individual servers; Groups stamps out runs of
	// identical ones. Both may be used together.
	Servers []ServerSpec  `json:"servers,omitempty"`
	Groups  []ServerGroup `json:"groups,omitempty"`

	Budgets []FeedBudget `json:"budgets,omitempty"`
}

// ServerGroup stamps out Count identical servers named Prefix-0,
// Prefix-1, … on one rack position.
type ServerGroup struct {
	Prefix string `json:"prefix"`
	Count  int    `json:"count"`
	RPP    int    `json:"rpp"`
	Rack   int    `json:"rack"`

	Priority    int     `json:"priority"`
	XShare      float64 `json:"x_share"`
	Utilization float64 `json:"utilization"`
}

// Servers expands the group into individual specs.
func (g *ServerGroup) Servers() []ServerSpec {
	out := make([]ServerSpec, g.Count)
	for i := range out {
		out[i] = ServerSpec{
			ID:          fmt.Sprintf("%s-%d", g.Prefix, i),
			RPP:         g.RPP,
			Rack:        g.Rack,
			Priority:    g.Priority,
			XShare:      g.XShare,
			Utilization: g.Utilization,
		}
	}
	return out
}

// LoadFile parses a declarative scenario document. A document whose
// first non-space byte is '{' is decoded as JSON; anything else is
// parsed as the YAML subset and re-encoded through the same strict JSON
// decoder, so unknown fields are rejected identically in both syntaxes.
func LoadFile(data []byte) (*File, error) {
	var f File
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, "{") {
		if err := strictUnmarshalJSON([]byte(trimmed), &f); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		return &f, nil
	}
	v, err := parseYAML(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	bridge, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := strictUnmarshalJSON(bridge, &f); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &f, nil
}

// ReadFile loads a declarative scenario from disk.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	f, err := LoadFile(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Scenario lowers the declarative file to the replayable Scenario value
// every existing tool consumes, expanding server groups and applying
// defaults. The lowering is deterministic: explicit servers first, then
// each group's servers in declaration order.
func (f *File) Scenario() (*Scenario, error) {
	period := f.Fleet.ControlPeriodSec
	if period == 0 {
		period = DefaultControlPeriodSec
	}
	servers := make([]ServerSpec, 0, len(f.Fleet.Servers))
	servers = append(servers, f.Fleet.Servers...)
	for i := range f.Fleet.Groups {
		g := &f.Fleet.Groups[i]
		if g.Prefix == "" {
			return nil, fmt.Errorf("scenario: group %d has no prefix", i)
		}
		if g.Count < 1 {
			return nil, fmt.Errorf("scenario: group %q count %d invalid", g.Prefix, g.Count)
		}
		servers = append(servers, g.Servers()...)
	}
	return &Scenario{
		Name:             f.Name,
		Topology:         f.Fleet.Topology,
		Servers:          servers,
		Policy:           f.Fleet.Policy,
		SPO:              f.Fleet.SPO,
		ControlPeriodSec: period,
		DurationSec:      f.Fleet.DurationSec,
		Budgets:          f.Fleet.Budgets,
		Events:           f.Events,
	}, nil
}

// ValidateFiles checks each file and renders the deterministic one-line-
// per-file report `scenariorun validate` prints and the scenario-library
// golden test pins.
func ValidateFiles(paths []string) (string, bool) {
	var b strings.Builder
	ok := true
	for _, path := range paths {
		f, err := ReadFile(path)
		if err != nil {
			fmt.Fprintf(&b, "FAIL %s: %v\n", path, err)
			ok = false
			continue
		}
		if err := f.Validate(); err != nil {
			fmt.Fprintf(&b, "FAIL %s: %v\n", path, err)
			ok = false
			continue
		}
		sc, err := f.Scenario()
		if err != nil {
			fmt.Fprintf(&b, "FAIL %s: %v\n", path, err)
			ok = false
			continue
		}
		fmt.Fprintf(&b, "ok   %s  %s  servers=%d events=%d assertions=%d duration=%ds\n",
			path, f.Name, len(sc.Servers), len(sc.Events), len(f.Assertions), sc.DurationSec)
	}
	return b.String(), ok
}

// Validate checks the whole document: the file must have a name, the
// lowered scenario must pass the full structural battery, and every
// assertion must be well-formed against the fleet it asserts over.
func (f *File) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("scenario: file has no name")
	}
	sc, err := f.Scenario()
	if err != nil {
		return err
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	if len(f.Assertions) == 0 {
		return fmt.Errorf("scenario: file %q has no assertions", f.Name)
	}
	topo, err := sc.BuildTopology()
	if err != nil {
		return err
	}
	for i := range f.Assertions {
		if err := f.Assertions[i].validate(sc, topo); err != nil {
			return fmt.Errorf("scenario: assertion %d (%s): %w", i, f.Assertions[i].Kind, err)
		}
	}
	return nil
}
