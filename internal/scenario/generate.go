package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"capmaestro/internal/power"
)

// Generation bounds. The shapes stay small enough that a 200-scenario
// sweep fits a CI race job, while still covering multi-rack trees, mixed
// cording, every policy, and colliding fault schedules.
const (
	maxRPPs          = 2
	maxRacksPerRPP   = 3
	maxServersPerCDU = 4
	maxEvents        = 8
)

// Generate derives a complete scenario from a seed. The same seed always
// yields the same value (and hence, via MarshalStable, the same bytes):
// all randomness flows from a single rand.Source consumed in a fixed
// order.
//
// Breaker ratings are calibrated against the worst single-feed load so
// generated scenarios are fallible only through real control-plane bugs,
// not through physically unprotectable topologies: a rack's per-side
// rating is at least 75% of the full-failover demand of its servers
// (ΣPcap_max), which keeps the worst transient overload below ~1.33× —
// over a minute from tripping a breaker, ample for capping to settle —
// while the derated (80%) limit still clears the servers' aggregate
// Pcap_min floor. Root budgets, when present, may be generated below the
// aggregate floor on purpose: infeasible periods must be detected, not
// avoided.
func Generate(seed int64) *Scenario {
	rng := rand.New(rand.NewSource(seed))
	model := power.DefaultServerModel()

	sc := &Scenario{
		Name:             fmt.Sprintf("gen-%d", seed),
		Seed:             seed,
		ControlPeriodSec: []int{4, 8}[rng.Intn(2)],
		DurationSec:      60 + rng.Intn(121), // 60–180 s
		Policy:           weightedPolicy(rng),
		SPO:              rng.Intn(2) == 0,
	}

	// Structure: RPP/rack positions mirrored across both feeds.
	nRPPs := 1 + rng.Intn(maxRPPs)
	var serverCount int
	type rackServers struct{ rpp, rack, n int }
	var placements []rackServers
	for ri := 0; ri < nRPPs; ri++ {
		nRacks := 1 + rng.Intn(maxRacksPerRPP)
		rpp := RPPSpec{}
		for ci := 0; ci < nRacks; ci++ {
			rpp.Racks = append(rpp.Racks, RackSpec{})
			n := 1 + rng.Intn(maxServersPerCDU)
			placements = append(placements, rackServers{rpp: ri, rack: ci, n: n})
			serverCount += n
		}
		sc.Topology.RPPs = append(sc.Topology.RPPs, rpp)
	}

	// Servers: mostly dual-corded, a tail of single-corded on each side.
	nPriorities := 1 + rng.Intn(3)
	idx := 0
	for _, pl := range placements {
		for k := 0; k < pl.n; k++ {
			sv := ServerSpec{
				ID:          fmt.Sprintf("s%02d", idx),
				RPP:         pl.rpp,
				Rack:        pl.rack,
				Priority:    rng.Intn(nPriorities),
				Utilization: roundTo(0.15+0.85*rng.Float64(), 1e-4),
			}
			switch r := rng.Float64(); {
			case r < 0.10:
				sv.XShare = 1 // single-corded on X
			case r < 0.20:
				sv.XShare = 0 // single-corded on Y
			default:
				sv.XShare = roundTo(0.35+0.30*rng.Float64(), 1e-4)
			}
			sc.Servers = append(sc.Servers, sv)
			idx++
		}
	}

	// Ratings, calibrated per side against full-failover demand.
	rateRack := func(ri, ci int) (x, y float64) {
		var capMax power.Watts
		for _, sv := range sc.Servers {
			if sv.RPP == ri && sv.Rack == ci {
				capMax += model.CapMax
			}
		}
		x = roundTo(float64(capMax)*(0.75+0.30*rng.Float64()), 0.1)
		y = roundTo(float64(capMax)*(0.75+0.30*rng.Float64()), 0.1)
		return x, y
	}
	var rppXSum, rppYSum float64
	for ri := range sc.Topology.RPPs {
		rpp := &sc.Topology.RPPs[ri]
		var cduX, cduY float64
		for ci := range rpp.Racks {
			x, y := rateRack(ri, ci)
			rpp.Racks[ci] = RackSpec{XRating: x, YRating: y}
			cduX += x
			cduY += y
		}
		rpp.XRating = roundTo(cduX*(0.8+0.3*rng.Float64()), 0.1)
		rpp.YRating = roundTo(cduY*(0.8+0.3*rng.Float64()), 0.1)
		rppXSum += rpp.XRating
		rppYSum += rpp.YRating
	}
	if rng.Intn(2) == 0 {
		sc.Topology.XRootRating = roundTo(rppXSum*(0.85+0.25*rng.Float64()), 0.1)
	}
	if rng.Intn(2) == 0 {
		sc.Topology.YRootRating = roundTo(rppYSum*(0.85+0.25*rng.Float64()), 0.1)
	}

	// Contractual budgets: half the feeds run unconstrained; the rest draw
	// from a range spanning infeasible (below aggregate floors) to slack.
	floor := float64(model.CapMin) * float64(serverCount)
	ceiling := float64(model.CapMax) * float64(serverCount)
	for _, feed := range []string{FeedX, FeedY} {
		if rng.Intn(2) == 0 {
			continue
		}
		sc.Budgets = append(sc.Budgets, FeedBudget{
			Feed:  feed,
			Watts: roundTo(floor*0.8+rng.Float64()*(ceiling-floor*0.8), 0.1),
		})
	}

	sc.Events = generateEvents(rng, sc, floor, ceiling)
	return sc
}

// generateEvents builds the fault schedule: feed failures with paired
// restores, single-supply faults, budget renegotiations, and workload /
// priority churn. Events are sorted by time with generation order breaking
// ties, matching the simulator's same-timestamp FIFO.
func generateEvents(rng *rand.Rand, sc *Scenario, floor, ceiling float64) []Event {
	n := rng.Intn(maxEvents + 1)
	if sc.DurationSec < 20 || n == 0 {
		return nil
	}
	at := func() int { return 1 + rng.Intn(sc.DurationSec-10) }
	pickServer := func() *ServerSpec { return &sc.Servers[rng.Intn(len(sc.Servers))] }
	var events []Event
	feedDown := map[string]bool{}
	for len(events) < n {
		switch rng.Intn(6) {
		case 0: // feed failure, usually restored later
			feed := []string{FeedX, FeedY}[rng.Intn(2)]
			if feedDown[feed] {
				continue
			}
			// Never fail both feeds at once: with no working supplies
			// there is nothing left to protect or verify.
			if (feed == FeedX && feedDown[FeedY]) || (feed == FeedY && feedDown[FeedX]) {
				continue
			}
			t := at()
			events = append(events, Event{AtSec: t, Kind: EventFailFeed, Feed: feed})
			if rng.Intn(3) > 0 { // 2/3 of failures restore
				restore := t + 5 + rng.Intn(sc.DurationSec-t)
				if restore < sc.DurationSec {
					events = append(events, Event{AtSec: restore, Kind: EventRestoreFeed, Feed: feed})
					continue
				}
			}
			feedDown[feed] = true
		case 1: // single supply fault
			sv := pickServer()
			sup := sv.Supplies()
			s := sup[rng.Intn(len(sup))]
			t := at()
			events = append(events, Event{AtSec: t, Kind: EventFailSupply, Supply: SupplyID(sv.ID, s.Feed)})
			if rng.Intn(2) == 0 {
				restore := t + 5 + rng.Intn(sc.DurationSec-t)
				if restore < sc.DurationSec {
					events = append(events, Event{AtSec: restore, Kind: EventRestoreSupply, Supply: SupplyID(sv.ID, s.Feed)})
				}
			}
		case 2: // budget renegotiation (demand response)
			events = append(events, Event{
				AtSec: at(),
				Kind:  EventSetBudget,
				Feed:  []string{FeedX, FeedY}[rng.Intn(2)],
				Value: roundTo(floor*0.8+rng.Float64()*(ceiling-floor*0.8), 0.1),
			})
		case 3: // workload burst or trough
			events = append(events, Event{
				AtSec:  at(),
				Kind:   EventSetUtil,
				Server: pickServer().ID,
				Value:  roundTo(rng.Float64(), 1e-4),
			})
		case 4: // priority change from the scheduler
			events = append(events, Event{
				AtSec:  at(),
				Kind:   EventSetPriority,
				Server: pickServer().ID,
				Value:  float64(rng.Intn(3)),
			})
		case 5: // diurnal shift: re-utilize several servers at once
			t := at()
			for i := 0; i < 1+rng.Intn(3) && len(events) < n; i++ {
				events = append(events, Event{
					AtSec:  t,
					Kind:   EventSetUtil,
					Server: pickServer().ID,
					Value:  roundTo(rng.Float64(), 1e-4),
				})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtSec < events[j].AtSec })
	return events
}

// weightedPolicy favors the paper's global policy while still exercising
// the baselines.
func weightedPolicy(rng *rand.Rand) string {
	switch r := rng.Float64(); {
	case r < 0.6:
		return "global"
	case r < 0.8:
		return "local"
	default:
		return "none"
	}
}

// roundTo quantizes v to a multiple of step, keeping generated values
// short in JSON without affecting their physics.
func roundTo(v, step float64) float64 {
	return float64(int64(v/step+0.5)) * step
}
