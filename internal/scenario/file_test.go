package scenario

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"
)

const yamlDoc = `# A comment above the document.
name: loader-check
description: "exercises the YAML subset: quoting, nesting, sequences"
fleet:
  policy: global
  spo: true
  duration_sec: 60
  topology:
    rpps:
      - x_rating: 6000
        y_rating: 6000
        racks:
          - x_rating: 2400
            y_rating: 2400
  groups:
    - prefix: web
      count: 3
      rpp: 0
      rack: 0
      priority: 2
      x_share: 0.5
      utilization: 0.8
  budgets:
    - feed: X
      watts: 5000
events:
  - at_sec: 10
    kind: fail_feed
    feed: X
  - at_sec: 30   # trailing comment
    kind: set_util
    server: web-1
    value: 0.25
assertions:
  - kind: no_trips
  - kind: throughput_floor
    priority: 2
    min: 0.5
`

const jsonDoc = `{
  "name": "loader-check",
  "description": "exercises the YAML subset: quoting, nesting, sequences",
  "fleet": {
    "policy": "global",
    "spo": true,
    "duration_sec": 60,
    "topology": {
      "rpps": [
        {"x_rating": 6000, "y_rating": 6000,
         "racks": [{"x_rating": 2400, "y_rating": 2400}]}
      ]
    },
    "groups": [
      {"prefix": "web", "count": 3, "rpp": 0, "rack": 0,
       "priority": 2, "x_share": 0.5, "utilization": 0.8}
    ],
    "budgets": [{"feed": "X", "watts": 5000}]
  },
  "events": [
    {"at_sec": 10, "kind": "fail_feed", "feed": "X"},
    {"at_sec": 30, "kind": "set_util", "server": "web-1", "value": 0.25}
  ],
  "assertions": [
    {"kind": "no_trips"},
    {"kind": "throughput_floor", "priority": 2, "min": 0.5}
  ]
}`

// TestLoadFileYAMLAndJSONAgree parses the same document in both syntaxes
// and demands identical File values: the YAML subset is sugar, not a
// second format.
func TestLoadFileYAMLAndJSONAgree(t *testing.T) {
	fy, err := LoadFile([]byte(yamlDoc))
	if err != nil {
		t.Fatalf("yaml: %v", err)
	}
	fj, err := LoadFile([]byte(jsonDoc))
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	if !reflect.DeepEqual(fy, fj) {
		t.Fatalf("yaml and json disagree:\nyaml: %+v\njson: %+v", fy, fj)
	}
	if err := fy.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	sc, err := fy.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.ControlPeriodSec != DefaultControlPeriodSec {
		t.Fatalf("control period = %d, want default %d", sc.ControlPeriodSec, DefaultControlPeriodSec)
	}
	want := []string{"web-0", "web-1", "web-2"}
	if len(sc.Servers) != len(want) {
		t.Fatalf("lowered %d servers, want %d", len(sc.Servers), len(want))
	}
	for i, id := range want {
		if sc.Servers[i].ID != id {
			t.Fatalf("server %d = %q, want %q", i, sc.Servers[i].ID, id)
		}
	}
}

// TestLoadFileRejections pins the loader's error messages for malformed
// documents: YAML-subset syntax errors and strict-decode violations must
// fail loudly, never silently drop fields.
func TestLoadFileRejections(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{"unknown_field_yaml",
			"name: x\nfrobnicate: 3\n",
			`json: unknown field "frobnicate"`},
		{"unknown_field_json",
			`{"name": "x", "frobnicate": 3}`,
			`json: unknown field "frobnicate"`},
		{"unknown_nested_field",
			"name: x\nfleet:\n  policy: global\n  rpp_count: 2\n",
			`json: unknown field "rpp_count"`},
		{"trailing_json",
			`{"name": "x"} {"name": "y"}`,
			"trailing data after document"},
		{"tab_indent",
			"name: x\nfleet:\n\tpolicy: global\n",
			"yaml: line 3: tab in indentation"},
		{"duplicate_key",
			"name: x\nname: y\n",
			`yaml: line 2: duplicate key "name"`},
		{"flow_collection",
			"name: x\nevents: [1, 2]\n",
			"yaml: line 2: flow collections are not supported"},
		{"block_scalar",
			"name: x\ndescription: |\n  text\n",
			"yaml: line 2: block scalars are not supported"},
		{"anchor",
			"name: &a x\n",
			"yaml: line 1: anchors, aliases, and tags are not supported"},
		{"multi_document",
			"name: x\n---\nname: y\n",
			"yaml: line 2: multi-document streams are not supported"},
		{"unterminated_quote",
			"name: 'oops\n",
			"yaml: line 1: unterminated single-quoted string"},
		{"missing_space_after_key",
			"name:x\n",
			`yaml: line 1: missing space after key "name"`},
		{"empty", "", "yaml: empty document"},
		{"comments_only", "# nothing here\n", "yaml: empty document"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadFile([]byte(tc.doc))
			if err == nil {
				t.Fatalf("LoadFile accepted %q", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
			if !strings.HasPrefix(err.Error(), "scenario: ") {
				t.Fatalf("error %q not namespaced", err)
			}
		})
	}
}

// TestYAMLScalarTyping checks the subset's scalar inference end to end:
// quoted strings stay strings, bare literals become bool/number/null.
func TestYAMLScalarTyping(t *testing.T) {
	v, err := parseYAML([]byte("a: true\nb: 'true'\nc: 3.5\nd: \"3.5\"\ne: null\nf: ~\ng: hello world\n"))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("parsed %T, want map", v)
	}
	want := map[string]any{
		"a": true, "b": "true",
		"c": 3.5, "d": "3.5",
		"e": nil, "f": nil,
		"g": "hello world",
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("parsed %#v, want %#v", m, want)
	}
}

// TestMinimizedScenarioReloadsByteIdentically is the canonical-Load-path
// regression: a scenario the minimizer produced must survive
// MarshalStable → Load → MarshalStable with identical bytes, proving the
// minimizer and the loaders share one strict decode path and the stable
// encoding drops nothing.
func TestMinimizedScenarioReloadsByteIdentically(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sc := Generate(seed)
		// A structural predicate keeps minimization deterministic and fast;
		// the minimizer shrinks as far as the predicate allows.
		min := Minimize(sc, func(c *Scenario) bool { return len(c.Servers) >= 1 })
		data, err := min.MarshalStable()
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		re, err := Load(data)
		if err != nil {
			t.Fatalf("seed %d: reload: %v", seed, err)
		}
		data2, err := re.MarshalStable()
		if err != nil {
			t.Fatalf("seed %d: re-marshal: %v", seed, err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("seed %d: minimized scenario did not reload byte-identically:\nfirst:\n%s\nsecond:\n%s",
				seed, data, data2)
		}
	}
}

// TestReadFileWrapsPath checks the on-disk loader names the offending
// file in its error.
func TestReadFileWrapsPath(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.yaml"
	if err := os.WriteFile(path, []byte("name: x\nbogus: 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if err == nil {
		t.Fatal("ReadFile accepted a bad document")
	}
	if !strings.Contains(err.Error(), path) || !strings.Contains(err.Error(), `unknown field "bogus"`) {
		t.Fatalf("error %q does not name the file and the field", err)
	}
}
