package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is a deliberately small YAML-subset decoder, just large
// enough for scenario files, so the module stays dependency-free. The
// subset is block-style YAML:
//
//   - mappings (`key: value`, or `key:` introducing an indented block)
//   - sequences (`- value`, `- key: value` starting an inline mapping,
//     or a bare `-` introducing an indented block)
//   - scalars: null/~, booleans, integers, floats, plain and quoted
//     strings, plus the empty flow collections `[]` and `{}`
//   - `#` comments (full-line and trailing) and blank lines
//
// Anchors, aliases, tags, multi-document streams, flow collections, and
// block scalars (`|`, `>`) are rejected with a line-numbered error.
// Indentation must use spaces; a tab in indentation is an error.
//
// The decoder produces the same generic shape encoding/json produces
// (map[string]any, []any, float64/int64/bool/string/nil), so a parsed
// document re-encodes to JSON and flows through the one canonical strict
// decode path every scenario loader shares.

// yamlLine is one significant (non-blank, non-comment) line.
type yamlLine struct {
	num    int // 1-based line number in the source
	indent int
	text   string // content with indentation and comments stripped
}

// parseYAML decodes a YAML-subset document into generic values.
func parseYAML(data []byte) (any, error) {
	lines, err := yamlLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	v, rest, err := parseYAMLBlock(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("yaml: line %d: unexpected de-indented content %q", rest[0].num, rest[0].text)
	}
	return v, nil
}

// yamlLines splits the document into significant lines, stripping
// comments and validating indentation.
func yamlLines(data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		num := i + 1
		if strings.HasPrefix(strings.TrimSpace(raw), "---") {
			return nil, fmt.Errorf("yaml: line %d: multi-document streams are not supported", num)
		}
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, fmt.Errorf("yaml: line %d: tab in indentation", num)
		}
		text := stripYAMLComment(raw[indent:])
		text = strings.TrimRight(text, " \r")
		if text == "" {
			continue
		}
		out = append(out, yamlLine{num: num, indent: indent, text: text})
	}
	return out, nil
}

// stripYAMLComment removes a trailing comment, honoring quoted strings.
// A '#' starts a comment at the beginning of content or after a space.
func stripYAMLComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				if quote == '\'' && i+1 < len(s) && s[i+1] == '\'' {
					i++ // escaped single quote
					continue
				}
				quote = 0
			} else if quote == '"' && c == '\\' {
				i++
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseYAMLBlock parses the run of lines at exactly the given indent into
// one node (mapping or sequence), returning the unconsumed tail.
func parseYAMLBlock(lines []yamlLine, indent int) (any, []yamlLine, error) {
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("yaml: empty block")
	}
	if lines[0].indent != indent {
		return nil, nil, fmt.Errorf("yaml: line %d: unexpected indentation", lines[0].num)
	}
	if lines[0].text == "-" || strings.HasPrefix(lines[0].text, "- ") {
		return parseYAMLSequence(lines, indent)
	}
	return parseYAMLMapping(lines, indent)
}

// parseYAMLSequence parses `- item` lines at the given indent.
func parseYAMLSequence(lines []yamlLine, indent int) (any, []yamlLine, error) {
	var seq []any
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("yaml: line %d: unexpected indentation", ln.num)
		}
		if ln.text != "-" && !strings.HasPrefix(ln.text, "- ") {
			return nil, nil, fmt.Errorf("yaml: line %d: expected sequence item, got %q", ln.num, ln.text)
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		lines = lines[1:]
		switch {
		case rest == "":
			// `-` introducing a nested block on the following lines.
			if len(lines) == 0 || lines[0].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			item, tail, err := parseYAMLBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			seq = append(seq, item)
			lines = tail
		case yamlLooksLikeKey(rest):
			// `- key: value` starts a mapping whose remaining keys sit at
			// the item content column (indent of '-' plus two).
			item := []yamlLine{{num: ln.num, indent: indent + 2, text: rest}}
			for len(lines) > 0 && lines[0].indent > indent {
				item = append(item, lines[0])
				lines = lines[1:]
			}
			m, tail, err := parseYAMLMapping(item, indent+2)
			if err != nil {
				return nil, nil, err
			}
			if len(tail) > 0 {
				return nil, nil, fmt.Errorf("yaml: line %d: unexpected indentation", tail[0].num)
			}
			seq = append(seq, m)
		default:
			v, err := yamlScalar(rest, ln.num)
			if err != nil {
				return nil, nil, err
			}
			seq = append(seq, v)
		}
	}
	return seq, lines, nil
}

// parseYAMLMapping parses `key: value` lines at the given indent.
func parseYAMLMapping(lines []yamlLine, indent int) (any, []yamlLine, error) {
	m := make(map[string]any)
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("yaml: line %d: unexpected indentation", ln.num)
		}
		key, rest, err := yamlSplitKey(ln.text, ln.num)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := m[key]; dup {
			return nil, nil, fmt.Errorf("yaml: line %d: duplicate key %q", ln.num, key)
		}
		lines = lines[1:]
		switch {
		case rest == "":
			// `key:` introduces a nested block, or an explicit null when
			// nothing more deeply indented follows.
			if len(lines) == 0 || lines[0].indent <= indent {
				m[key] = nil
				continue
			}
			v, tail, err := parseYAMLBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			m[key] = v
			lines = tail
		case rest == "|" || rest == ">" || strings.HasPrefix(rest, "|") || strings.HasPrefix(rest, ">"):
			return nil, nil, fmt.Errorf("yaml: line %d: block scalars are not supported", ln.num)
		case strings.HasPrefix(rest, "&") || strings.HasPrefix(rest, "*") || strings.HasPrefix(rest, "!"):
			return nil, nil, fmt.Errorf("yaml: line %d: anchors, aliases, and tags are not supported", ln.num)
		default:
			v, err := yamlScalar(rest, ln.num)
			if err != nil {
				return nil, nil, err
			}
			m[key] = v
		}
	}
	return m, lines, nil
}

// yamlLooksLikeKey reports whether a sequence item's inline content
// begins a mapping (`key: value` or `key:`) rather than a scalar.
func yamlLooksLikeKey(s string) bool {
	_, _, err := yamlSplitKey(s, 0)
	return err == nil
}

// yamlSplitKey splits `key: value` (or `key:`) into key and raw value.
// Keys are plain scalars without quotes or colons.
func yamlSplitKey(s string, num int) (key, rest string, err error) {
	i := strings.Index(s, ":")
	if i < 0 {
		return "", "", fmt.Errorf("yaml: line %d: expected `key: value`, got %q", num, s)
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return "", "", fmt.Errorf("yaml: line %d: missing space after key %q", num, s[:i])
	}
	key = strings.TrimSpace(s[:i])
	if key == "" || strings.ContainsAny(key, "\"'#{}[],&*!|>%@`") {
		return "", "", fmt.Errorf("yaml: line %d: invalid key %q", num, key)
	}
	return key, strings.TrimSpace(s[i+1:]), nil
}

// yamlScalar decodes one scalar value.
func yamlScalar(s string, num int) (any, error) {
	switch s {
	case "", "~", "null", "Null", "NULL":
		return nil, nil
	case "true", "True", "TRUE":
		return true, nil
	case "false", "False", "FALSE":
		return false, nil
	case "[]":
		return []any{}, nil
	case "{}":
		return map[string]any{}, nil
	}
	if s[0] == '"' {
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("yaml: line %d: bad double-quoted string %s", num, s)
		}
		return v, nil
	}
	if s[0] == '\'' {
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("yaml: line %d: unterminated single-quoted string %s", num, s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	if s[0] == '[' || s[0] == '{' {
		return nil, fmt.Errorf("yaml: line %d: flow collections are not supported: %q", num, s)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
