package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"capmaestro/internal/scenario/refalloc"
	"capmaestro/internal/sim"
	"capmaestro/internal/slo"
	"capmaestro/internal/topology"
)

// Assertion kinds the engine evaluates after a run. Value fields double
// across kinds (documented per kind below); unused fields must be zero.
const (
	// AssertNoTrips: no breaker opened during the run.
	AssertNoTrips = "no_trips"
	// AssertNoViolations: the safety monitor recorded no allocation
	// invariant violations.
	AssertNoViolations = "no_violations"
	// AssertFeasible: no control period saw an infeasible budget.
	AssertFeasible = "feasible"
	// AssertThroughputFloor: the mean performance level of the servers at
	// a priority, sampled every second of [from_sec, to_sec], never drops
	// below min.
	AssertThroughputFloor = "throughput_floor"
	// AssertTimeToSafe: every exposure window closed within max_sec (when
	// set) and with a safety margin of at least min_margin (when set).
	AssertTimeToSafe = "time_to_safe"
	// AssertMaxTripRisk: the peak breaker trip-risk score stayed ≤ max.
	AssertMaxTripRisk = "max_trip_risk"
	// AssertBudgetsMatchOracle: the naive refalloc reference, run over the
	// final control period's actual allocator input, reproduces the
	// simulator's applied budgets watt-for-watt.
	AssertBudgetsMatchOracle = "budgets_match_oracle"
	// AssertNodePower: a distribution node's measured load, sampled every
	// second of [from_sec, to_sec], stays within [min_watts, max_watts].
	AssertNodePower = "node_power"
	// AssertExposureWindows: exactly N exposure windows closed, and none
	// is left open unless allow_open.
	AssertExposureWindows = "exposure_windows"
)

// Assertion is one post-run check. Which fields apply depends on Kind;
// see the kind constants.
type Assertion struct {
	Kind string `json:"kind"`

	Priority int     `json:"priority,omitempty"` // throughput_floor
	Min      float64 `json:"min,omitempty"`      // throughput_floor
	Max      float64 `json:"max,omitempty"`      // max_trip_risk

	FromSec int `json:"from_sec,omitempty"` // sampling window (default whole run)
	ToSec   int `json:"to_sec,omitempty"`

	Node     string  `json:"node,omitempty"`      // node_power
	MinWatts float64 `json:"min_watts,omitempty"` // node_power
	MaxWatts float64 `json:"max_watts,omitempty"` // node_power

	MaxSec    float64 `json:"max_sec,omitempty"`    // time_to_safe (0 = unset)
	MinMargin float64 `json:"min_margin,omitempty"` // time_to_safe (0 = unset)

	Exactly   int  `json:"exactly,omitempty"`    // exposure_windows
	AllowOpen bool `json:"allow_open,omitempty"` // exposure_windows
}

// validate lints one assertion against the scenario it asserts over.
func (a *Assertion) validate(sc *Scenario, topo *topology.Topology) error {
	if a.FromSec < 0 || a.ToSec < 0 || a.ToSec > sc.DurationSec {
		return fmt.Errorf("window [%d,%d] outside run of %ds", a.FromSec, a.ToSec, sc.DurationSec)
	}
	if a.ToSec != 0 && a.FromSec > a.ToSec {
		return fmt.Errorf("window [%d,%d] is empty", a.FromSec, a.ToSec)
	}
	switch a.Kind {
	case AssertNoTrips, AssertNoViolations, AssertFeasible, AssertBudgetsMatchOracle:
		// No parameters.
	case AssertThroughputFloor:
		if a.Priority < 0 {
			return fmt.Errorf("priority %d negative", a.Priority)
		}
		if !(a.Min > 0) || a.Min > 1 || math.IsNaN(a.Min) {
			return fmt.Errorf("min %v outside (0,1]", a.Min)
		}
		found := false
		for i := range sc.Servers {
			if sc.Servers[i].Priority == a.Priority {
				found = true
				break
			}
		}
		for _, ev := range sc.Events {
			if ev.Kind == EventSetPriority && int(ev.Value) == a.Priority {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("no server ever has priority %d", a.Priority)
		}
	case AssertTimeToSafe:
		if a.MaxSec == 0 && a.MinMargin == 0 {
			return fmt.Errorf("needs max_sec or min_margin")
		}
		if a.MaxSec < 0 || a.MinMargin < 0 {
			return fmt.Errorf("max_sec %v / min_margin %v negative", a.MaxSec, a.MinMargin)
		}
	case AssertMaxTripRisk:
		if a.Max < 0 || a.Max > 1 || math.IsNaN(a.Max) {
			return fmt.Errorf("max %v outside [0,1]", a.Max)
		}
	case AssertNodePower:
		n := topo.Node(a.Node)
		if n == nil {
			return fmt.Errorf("unknown node %q", a.Node)
		}
		if n.Kind == topology.KindSupply {
			return fmt.Errorf("node %q is a supply, not a distribution node", a.Node)
		}
		if a.MaxWatts == 0 && a.MinWatts == 0 {
			return fmt.Errorf("needs min_watts or max_watts")
		}
		if a.MinWatts < 0 || a.MaxWatts < 0 {
			return fmt.Errorf("negative watt bound")
		}
		if a.MaxWatts != 0 && a.MinWatts > a.MaxWatts {
			return fmt.Errorf("min_watts %v above max_watts %v", a.MinWatts, a.MaxWatts)
		}
	case AssertExposureWindows:
		if a.Exactly < 0 {
			return fmt.Errorf("exactly %d negative", a.Exactly)
		}
	default:
		return fmt.Errorf("unknown assertion kind")
	}
	return nil
}

// window resolves the assertion's sampling window against the run
// duration: [from, to] inclusive, in whole seconds from 1.
func (a *Assertion) window(durationSec int) (from, to int) {
	from, to = a.FromSec, a.ToSec
	if from < 1 {
		from = 1
	}
	if to == 0 || to > durationSec {
		to = durationSec
	}
	return from, to
}

// AssertionResult is one evaluated assertion.
type AssertionResult struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	Pass   bool   `json:"pass"`
	Error  string `json:"error,omitempty"`
}

// RunReport is the structured outcome of running a scenario file.
type RunReport struct {
	Scenario    string            `json:"scenario"`
	DurationSec int               `json:"duration_sec"`
	Results     []AssertionResult `json:"results"`
	Passed      int               `json:"passed"`
	Failed      int               `json:"failed"`
}

// OK reports whether every assertion passed.
func (r *RunReport) OK() bool { return r.Failed == 0 }

// Text renders the report as aligned PASS/FAIL lines.
func (r *RunReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %ds run, %d assertions\n", r.Scenario, r.DurationSec, len(r.Results))
	for _, res := range r.Results {
		mark := "PASS"
		if !res.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  %s %-22s %s", mark, res.Kind, res.Detail)
		if res.Error != "" {
			fmt.Fprintf(&b, ": %s", res.Error)
		}
		b.WriteByte('\n')
	}
	if r.OK() {
		fmt.Fprintf(&b, "PASS (%d/%d)\n", r.Passed, len(r.Results))
	} else {
		fmt.Fprintf(&b, "FAIL (%d of %d assertions failed)\n", r.Failed, len(r.Results))
	}
	return b.String()
}

// Probe samples the per-second signals window-scoped assertions need.
// Sample index i holds the state after second i+1 of the run.
type Probe struct {
	nodes    map[string][]float64 // nodeID → watts per second
	perf     map[int][]float64    // priority → mean perf level per second
	nodeIDs  []string             // which nodes to sample
	samples  int
	duration int
}

// NewProbe prepares a probe for the assertions in the file.
func NewProbe(f *File) *Probe {
	p := &Probe{
		nodes:    map[string][]float64{},
		perf:     map[int][]float64{},
		duration: f.Fleet.DurationSec,
	}
	seen := map[string]bool{}
	for i := range f.Assertions {
		a := &f.Assertions[i]
		if a.Kind == AssertNodePower && !seen[a.Node] {
			seen[a.Node] = true
			p.nodeIDs = append(p.nodeIDs, a.Node)
		}
	}
	sort.Strings(p.nodeIDs)
	return p
}

// Sample records one second's signals from the simulator. Per-priority
// series stay aligned to the sample clock: a priority that exists only
// part of the run (servers re-prioritized mid-run) carries NaN for the
// seconds it had no servers.
func (p *Probe) Sample(s *sim.Simulator) {
	for _, id := range p.nodeIDs {
		p.nodes[id] = append(p.nodes[id], float64(s.NodeLoad(id)))
	}
	sum := map[int]float64{}
	cnt := map[int]int{}
	for _, id := range s.ServerIDs() {
		srv := s.Server(id)
		pr := int(srv.Priority())
		sum[pr] += srv.PerfLevel()
		cnt[pr]++
	}
	for pr := range cnt {
		if _, known := p.perf[pr]; !known {
			gap := make([]float64, p.samples)
			for i := range gap {
				gap[i] = math.NaN()
			}
			p.perf[pr] = gap
		}
	}
	p.samples++
	for pr, series := range p.perf {
		if n, ok := cnt[pr]; ok {
			p.perf[pr] = append(series, sum[pr]/float64(n))
		} else {
			p.perf[pr] = append(series, math.NaN())
		}
	}
}

// Evaluate runs every assertion in the file against the finished run and
// returns the structured report.
func Evaluate(f *File, s *sim.Simulator, tracker *slo.Tracker, p *Probe) *RunReport {
	rep := &RunReport{Scenario: f.Name, DurationSec: f.Fleet.DurationSec}
	for i := range f.Assertions {
		res := evalOne(&f.Assertions[i], f, s, tracker, p)
		rep.Results = append(rep.Results, res)
		if res.Pass {
			rep.Passed++
		} else {
			rep.Failed++
		}
	}
	return rep
}

func evalOne(a *Assertion, f *File, s *sim.Simulator, tracker *slo.Tracker, p *Probe) AssertionResult {
	res := AssertionResult{Kind: a.Kind, Pass: true}
	fail := func(format string, args ...any) AssertionResult {
		res.Pass = false
		res.Error = fmt.Sprintf(format, args...)
		return res
	}
	switch a.Kind {
	case AssertNoTrips:
		res.Detail = "no breaker trips"
		if tripped := s.TrippedBreakers(); len(tripped) > 0 {
			return fail("breakers tripped: %s", strings.Join(tripped, ", "))
		}
	case AssertNoViolations:
		res.Detail = "no allocation invariant violations"
		if v := s.InvariantViolations(); len(v) > 0 {
			return fail("%d violations, first: %s", len(v), v[0])
		}
	case AssertFeasible:
		res.Detail = "all control periods feasible"
		if n := s.InfeasiblePeriods(); n > 0 {
			return fail("%d infeasible control periods", n)
		}
	case AssertThroughputFloor:
		from, to := a.window(p.duration)
		res.Detail = fmt.Sprintf("priority %d mean perf ≥ %.3f over [%d,%d]s", a.Priority, a.Min, from, to)
		series := p.perf[a.Priority]
		worst, worstAt := math.Inf(1), 0
		for sec := from; sec <= to && sec <= len(series); sec++ {
			v := series[sec-1]
			if math.IsNaN(v) {
				continue // priority had no servers this second
			}
			if v < worst {
				worst, worstAt = v, sec
			}
		}
		if math.IsInf(worst, 1) {
			return fail("no samples in window")
		}
		if worst < a.Min {
			return fail("perf %.4f at t=%ds below floor %.4f", worst, worstAt, a.Min)
		}
	case AssertTimeToSafe:
		res.Detail = describeTTS(a)
		windows := tracker.ClosedWindows()
		for _, w := range windows {
			if a.MaxSec > 0 && w.DurationSec > a.MaxSec {
				return fail("window %v open %.1fs, max %.1fs", w.Causes, w.DurationSec, a.MaxSec)
			}
			if a.MinMargin > 0 && w.Margin() < a.MinMargin {
				return fail("window %v margin %.1f× below %.1f×", w.Causes, w.Margin(), a.MinMargin)
			}
		}
		if w := tracker.OpenWindow(); w != nil && a.MaxSec > 0 {
			return fail("window %v still open at end of run", w.Causes)
		}
	case AssertMaxTripRisk:
		res.Detail = fmt.Sprintf("peak trip risk ≤ %.2f", a.Max)
		if r := tracker.PeakRisk(); r > a.Max {
			return fail("peak trip risk %.3f above %.2f", r, a.Max)
		}
	case AssertBudgetsMatchOracle:
		res.Detail = "applied budgets match refalloc oracle"
		if err := CheckOracle(s); err != nil {
			return fail("%v", err)
		}
	case AssertNodePower:
		from, to := a.window(p.duration)
		res.Detail = fmt.Sprintf("node %s load in [%.0f,%s] W over [%d,%d]s", a.Node, a.MinWatts, maxWattsLabel(a.MaxWatts), from, to)
		series := p.nodes[a.Node]
		sampled := false
		for sec := from; sec <= to && sec <= len(series); sec++ {
			sampled = true
			v := series[sec-1]
			if a.MaxWatts > 0 && v > a.MaxWatts {
				return fail("load %.1f W at t=%ds above %.1f W", v, sec, a.MaxWatts)
			}
			if v < a.MinWatts {
				return fail("load %.1f W at t=%ds below %.1f W", v, sec, a.MinWatts)
			}
		}
		if !sampled {
			return fail("no samples in window")
		}
	case AssertExposureWindows:
		res.Detail = fmt.Sprintf("exactly %d exposure windows", a.Exactly)
		if n := int(tracker.WindowsClosed()); n != a.Exactly {
			return fail("%d windows closed, want %d", n, a.Exactly)
		}
		if w := tracker.OpenWindow(); w != nil && !a.AllowOpen {
			return fail("window %v still open at end of run", w.Causes)
		}
	default:
		return fail("unknown assertion kind")
	}
	return res
}

func describeTTS(a *Assertion) string {
	switch {
	case a.MaxSec > 0 && a.MinMargin > 0:
		return fmt.Sprintf("every exposure closes ≤ %.0fs with margin ≥ %.0f×", a.MaxSec, a.MinMargin)
	case a.MaxSec > 0:
		return fmt.Sprintf("every exposure closes ≤ %.0fs", a.MaxSec)
	default:
		return fmt.Sprintf("every exposure margin ≥ %.0f×", a.MinMargin)
	}
}

func maxWattsLabel(w float64) string {
	if w == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.0f", w)
}

// CheckOracle re-derives the most recent control period's budgets with
// the naive refalloc reference over the exact trees the simulator
// allocated from — operator overlays applied, failed feeds pruned — and
// demands watt-for-watt agreement with the allocation the simulator
// actually applied. This is the differential oracle from the fuzzing
// battery aimed at a live simulator.
func CheckOracle(s *sim.Simulator) error {
	trees, budgets, feeds := s.LastControlTrees()
	if len(trees) == 0 {
		return fmt.Errorf("no control period has run")
	}
	var (
		ref []*refalloc.Result
		err error
	)
	if s.SPOEnabled() {
		ref, _, err = refalloc.AllocateWithSPO(trees, budgets, s.Policy())
	} else {
		ref, err = refalloc.AllocateAll(trees, budgets, s.Policy())
	}
	if err != nil {
		return fmt.Errorf("reference allocator: %v", err)
	}
	for i, feed := range feeds {
		got := s.LastAllocation(feed)
		if got == nil {
			return fmt.Errorf("feed %s: no applied allocation", feed)
		}
		if err := diffAllocation(got, ref[i]); err != nil {
			return fmt.Errorf("feed %s: %v", feed, err)
		}
	}
	return nil
}
