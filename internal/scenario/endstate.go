package scenario

import (
	"encoding/json"
	"time"

	"capmaestro/internal/sim"
)

// ServerEnd is one server's observable state at the end of a run.
type ServerEnd struct {
	ID       string  `json:"id"`
	ACPower  float64 `json:"ac_power"`
	Throttle float64 `json:"throttle"`
}

// EndState is a deterministic digest of a finished simulation, used to
// assert that two runs of the same scenario are bit-identical.
type EndState struct {
	ClockSec          int         `json:"clock_sec"`
	InfeasiblePeriods int         `json:"infeasible_periods"`
	Violations        []string    `json:"violations,omitempty"`
	Tripped           []string    `json:"tripped,omitempty"`
	Servers           []ServerEnd `json:"servers"`
}

// CaptureEndState digests a simulator after a run. Server order follows
// the simulator's sorted ID order, so equal states encode to equal bytes.
func CaptureEndState(s *sim.Simulator) *EndState {
	es := &EndState{
		ClockSec:          int(s.Now() / time.Second),
		InfeasiblePeriods: s.InfeasiblePeriods(),
		Violations:        s.InvariantViolations(),
		Tripped:           s.TrippedBreakers(),
	}
	for _, id := range s.ServerIDs() {
		srv := s.Server(id)
		es.Servers = append(es.Servers, ServerEnd{
			ID:       id,
			ACPower:  float64(srv.ACPower()),
			Throttle: srv.ThrottleLevel(),
		})
	}
	return es
}

// Marshal renders the end state deterministically.
func (es *EndState) Marshal() ([]byte, error) {
	return json.MarshalIndent(es, "", "  ")
}

// RunToEnd builds the scenario's simulator, runs the full duration, and
// returns the end-state digest.
func RunToEnd(sc *Scenario) (*EndState, error) {
	s, err := sc.BuildSim()
	if err != nil {
		return nil, err
	}
	s.Run(time.Duration(sc.DurationSec) * time.Second)
	return CaptureEndState(s), nil
}
