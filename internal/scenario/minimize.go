package scenario

import "encoding/json"

// Minimize greedily shrinks a failing scenario while it keeps failing the
// given predicate: events are dropped one at a time, the duration is
// truncated, and whole servers are removed (together with events that
// reference them). Every candidate is validated before it is tried, so the
// minimized scenario is always structurally sound. The original value is
// not modified.
func Minimize(sc *Scenario, fails func(*Scenario) bool) *Scenario {
	cur := cloneScenario(sc)
	for shrunk := true; shrunk; {
		shrunk = false

		// Drop events, last first (later events are least likely to set up
		// the failing state).
		for i := len(cur.Events) - 1; i >= 0; i-- {
			cand := cloneScenario(cur)
			cand.Events = append(cand.Events[:i], cand.Events[i+1:]...)
			if accept(cand, fails) {
				cur = cand
				shrunk = true
			}
		}

		// Truncate the run (events beyond the new horizon go with it).
		for _, frac := range []int{2, 4} {
			cand := cloneScenario(cur)
			cand.DurationSec = cur.DurationSec - cur.DurationSec/frac
			if cand.DurationSec < 2*cand.ControlPeriodSec {
				continue
			}
			var kept []Event
			for _, ev := range cand.Events {
				if ev.AtSec <= cand.DurationSec {
					kept = append(kept, ev)
				}
			}
			cand.Events = kept
			if accept(cand, fails) {
				cur = cand
				shrunk = true
				break
			}
		}

		// Drop servers.
		for i := len(cur.Servers) - 1; i >= 0; i-- {
			if len(cur.Servers) == 1 {
				break
			}
			cand := cloneScenario(cur)
			removed := cand.Servers[i]
			cand.Servers = append(cand.Servers[:i], cand.Servers[i+1:]...)
			var kept []Event
			for _, ev := range cand.Events {
				if ev.Server == removed.ID {
					continue
				}
				if ev.Supply != "" && referencesServer(ev.Supply, removed.ID) {
					continue
				}
				kept = append(kept, ev)
			}
			cand.Events = kept
			if accept(cand, fails) {
				cur = cand
				shrunk = true
			}
		}
	}
	cur.Name = sc.Name + "-min"
	return cur
}

// referencesServer reports whether a supply ID belongs to the server.
func referencesServer(supplyID, serverID string) bool {
	return supplyID == SupplyID(serverID, FeedX) || supplyID == SupplyID(serverID, FeedY)
}

// accept reports whether a candidate is both valid and still failing.
func accept(cand *Scenario, fails func(*Scenario) bool) bool {
	if cand.Validate() != nil {
		return false
	}
	return fails(cand)
}

// cloneScenario deep-copies via the stable JSON encoding and the one
// canonical strict decode path (see strictUnmarshalJSON); scenario
// values are plain data, so the round trip is exact.
func cloneScenario(sc *Scenario) *Scenario {
	data, err := json.Marshal(sc)
	if err != nil {
		panic(err) // scenarios are plain data; marshal cannot fail
	}
	var c Scenario
	if err := strictUnmarshalJSON(data, &c); err != nil {
		panic(err)
	}
	return &c
}
