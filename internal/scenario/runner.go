package scenario

import (
	"log/slog"
	"time"

	"capmaestro/internal/flightrec"
	"capmaestro/internal/sim"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
)

// RunResult bundles everything a caller needs after a scenario run: the
// assertion report plus the live instruments, so the CLI can dump the
// flight-recorder trace of a failing run and tests can poke at the
// simulator's end state.
type RunResult struct {
	Report   *RunReport
	Sim      *sim.Simulator
	SLO      *slo.Tracker
	Recorder *flightrec.Recorder
}

// RunOptions tunes a scenario run. The zero value is what CI wants.
type RunOptions struct {
	// Logger receives simulator events (nil disables).
	Logger *slog.Logger
	// Telemetry registers the fleet's live metrics (nil disables).
	Telemetry *telemetry.Registry
	// RecorderSize bounds the flight-recorder ring; 0 selects the
	// recorder's default.
	RecorderSize int
}

// RunFile validates a declarative scenario, runs it second by second
// with the probe sampling, and evaluates its assertions. The error
// return covers malformed scenarios only; assertion failures are
// reported through Report (check Report.OK()).
func RunFile(f *File, opts RunOptions) (*RunResult, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	sc, err := f.Scenario()
	if err != nil {
		return nil, err
	}
	size := opts.RecorderSize
	if size == 0 {
		size = flightrec.DefaultBufferSize
	}
	rec := flightrec.NewRecorder(size)
	tracker, err := slo.New(slo.Config{
		Recorder: rec,
		Registry: opts.Telemetry,
		Logger:   opts.Logger,
	})
	if err != nil {
		return nil, err
	}
	s, err := sc.BuildSimInstrumented(SimInstruments{
		SLO:            tracker,
		FlightRecorder: rec,
		Telemetry:      opts.Telemetry,
		Logger:         opts.Logger,
	})
	if err != nil {
		return nil, err
	}
	probe := NewProbe(f)
	for t := 0; t < sc.DurationSec; t++ {
		s.Run(time.Second)
		probe.Sample(s)
	}
	return &RunResult{
		Report:   Evaluate(f, s, tracker, probe),
		Sim:      s,
		SLO:      tracker,
		Recorder: rec,
	}, nil
}
