package scenario

import (
	"strings"
	"testing"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
)

// mutationSeeds is the seed range each mutation test sweeps. The harness
// must catch every mutation somewhere in this range — a mutation that
// survives the whole range means the net has a hole.
const mutationSeeds = 60

// runMutation sweeps seeds through CheckStates with a broken allocator and
// returns the first divergence the oracle reports (empty if none).
func runMutation(t *testing.T, impl Impl) string {
	t.Helper()
	for s := int64(1); s <= mutationSeeds; s++ {
		sc := Generate(s)
		if err := CheckStates(sc, impl); err != nil {
			return err.Error()
		}
	}
	return ""
}

// TestMutationSPOSecondPassDropped breaks SPO by returning the first-pass
// allocations (stranded budgets left in place) and asserts the
// differential oracle catches the divergence. This is the acceptance
// criterion's seeded mutation: the harness demonstrably protects the SPO
// second pass.
func TestMutationSPOSecondPassDropped(t *testing.T) {
	mutant := Impl{
		Name:        "spo-second-pass-dropped",
		AllocateAll: Production.AllocateAll,
		AllocateSPO: func(trees []*core.Node, budgets []power.Watts, policy core.Policy) ([]*core.Allocation, *core.SPOReport, error) {
			// Compute the real report (so report comparison alone cannot
			// catch it) but skip the re-budgeting pass.
			_, report, err := core.AllocateWithSPO(trees, budgets, policy)
			if err != nil {
				return nil, nil, err
			}
			first, err := core.AllocateAll(trees, budgets, policy)
			return first, report, err
		},
	}
	msg := runMutation(t, mutant)
	if msg == "" {
		t.Fatalf("dropping the SPO second pass survived %d seeds undetected", mutationSeeds)
	}
	if !strings.Contains(msg, "after SPO") {
		t.Fatalf("mutation caught by the wrong check: %s", msg)
	}
	t.Logf("caught: %s", msg)
}

// TestMutationPriorityBlind breaks the policy plumbing by allocating with
// NoPriority regardless of the requested policy and asserts the oracle
// reports a grant divergence.
func TestMutationPriorityBlind(t *testing.T) {
	mutant := Impl{
		Name: "priority-blind",
		AllocateAll: func(trees []*core.Node, budgets []power.Watts, _ core.Policy) ([]*core.Allocation, error) {
			return core.AllocateAll(trees, budgets, core.NoPriority)
		},
		AllocateSPO: func(trees []*core.Node, budgets []power.Watts, _ core.Policy) ([]*core.Allocation, *core.SPOReport, error) {
			return core.AllocateWithSPO(trees, budgets, core.NoPriority)
		},
	}
	msg := runMutation(t, mutant)
	if msg == "" {
		t.Fatalf("priority-blind allocation survived %d seeds undetected", mutationSeeds)
	}
	t.Logf("caught: %s", msg)
}

// TestMutationEpsilonDrift breaks the arithmetic by a relative 1e-9 on
// every supply grant — far below any approximate tolerance — and asserts
// the oracle's exact comparison still catches it. This is what
// "watt-for-watt" buys: optimizations cannot smuggle in tiny reorderings.
func TestMutationEpsilonDrift(t *testing.T) {
	drift := func(allocs []*core.Allocation, err error) ([]*core.Allocation, error) {
		if err != nil {
			return nil, err
		}
		for _, a := range allocs {
			for id, b := range a.SupplyBudgets {
				if b > 0 {
					a.SupplyBudgets[id] = b * (1 + 1e-9)
				}
			}
		}
		return allocs, nil
	}
	mutant := Impl{
		Name: "epsilon-drift",
		AllocateAll: func(trees []*core.Node, budgets []power.Watts, policy core.Policy) ([]*core.Allocation, error) {
			return drift(core.AllocateAll(trees, budgets, policy))
		},
		AllocateSPO: Production.AllocateSPO,
	}
	msg := runMutation(t, mutant)
	if msg == "" {
		t.Fatalf("1e-9 relative drift survived %d seeds undetected", mutationSeeds)
	}
	t.Logf("caught: %s", msg)
}

// TestMutationFloorsSkipped removes the Pcap_min floor phase by draining
// budgets below minimums on the lowest-priority level and asserts either
// the oracle or the invariant checker trips.
func TestMutationFloorsSkipped(t *testing.T) {
	mutant := Impl{
		Name: "floors-skipped",
		AllocateAll: func(trees []*core.Node, budgets []power.Watts, policy core.Policy) ([]*core.Allocation, error) {
			allocs, err := core.AllocateAll(trees, budgets, policy)
			if err != nil {
				return nil, err
			}
			for ti, a := range allocs {
				for _, leaf := range trees[ti].Leaves() {
					id := leaf.Leaf.SupplyID
					a.SupplyBudgets[id] *= 0.9
					a.NodeBudgets[leaf.ID] *= 0.9
				}
			}
			return allocs, nil
		},
		AllocateSPO: Production.AllocateSPO,
	}
	msg := runMutation(t, mutant)
	if msg == "" {
		t.Fatalf("skipping cap floors survived %d seeds undetected", mutationSeeds)
	}
	t.Logf("caught: %s", msg)
}
