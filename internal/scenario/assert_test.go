package scenario

import (
	"strings"
	"testing"
)

// quietFleet is a dual-corded two-rack fleet with comfortable headroom:
// nothing caps, nothing trips, every gauge stays at zero.
func quietFleet(durationSec int) FleetSpec {
	return FleetSpec{
		Policy:      "global",
		DurationSec: durationSec,
		Topology: TopologySpec{RPPs: []RPPSpec{{
			XRating: 6000, YRating: 6000,
			Racks: []RackSpec{{XRating: 2400, YRating: 2400}},
		}}},
		Groups: []ServerGroup{{
			Prefix: "s", Count: 4, RPP: 0, Rack: 0,
			Priority: 1, XShare: 0.5, Utilization: 0.5,
		}},
	}
}

// stressedFleet single-cords four hot servers onto one X-side rack whose
// derated limit forces capping, but whose rating holds the capped load.
func stressedFleet(durationSec int) FleetSpec {
	f := quietFleet(durationSec)
	f.Topology.RPPs[0].Racks[0] = RackSpec{XRating: 2000, YRating: 2000}
	f.Groups[0].XShare = 1
	f.Groups[0].Utilization = 0.9
	return f
}

// surgeFleet is dual-corded with no headroom to spare: healthy it runs
// uncapped, but one feed's failure overloads the survivor's rack breaker
// (1828 W on a 1600 W rating) until the next 8 s control period caps the
// servers back under the derated limit. Exposure windows opened by the
// fault therefore stay open for a deterministic handful of seconds.
func surgeFleet(durationSec int) FleetSpec {
	f := quietFleet(durationSec)
	f.Topology.RPPs[0].Racks[0] = RackSpec{XRating: 1600, YRating: 1600}
	f.Groups[0].Utilization = 0.9
	return f
}

// trippingFleet pins aggregate server floors (4 × 270 W) far above a
// 600 W rack rating: capping cannot shed below the floors, the budget is
// infeasible, and the breaker must thermally trip (≈21 s at 1.8×).
func trippingFleet(durationSec int) FleetSpec {
	f := stressedFleet(durationSec)
	f.Topology.RPPs[0].Racks[0] = RackSpec{XRating: 600, YRating: 600}
	return f
}

func runTestFile(t *testing.T, fleet FleetSpec, events []Event, asserts []Assertion) *RunReport {
	t.Helper()
	f := &File{Name: "t-" + t.Name(), Fleet: fleet, Events: events, Assertions: asserts}
	res, err := RunFile(f, RunOptions{})
	if err != nil {
		t.Fatalf("RunFile: %v", err)
	}
	return res.Report
}

// TestAssertionKinds drives every assertion kind through a passing, a
// failing, and (where the kind has a meaningful edge) a boundary case on
// purpose-built fleets.
func TestAssertionKinds(t *testing.T) {
	feedFail := []Event{{AtSec: 20, Kind: EventFailFeed, Feed: FeedX}}
	cases := []struct {
		name     string
		fleet    FleetSpec
		events   []Event
		assert   Assertion
		wantPass bool
		wantErr  string // substring of the failure message
	}{
		{name: "no_trips/pass", fleet: quietFleet(30), assert: Assertion{Kind: AssertNoTrips}, wantPass: true},
		{name: "no_trips/fail", fleet: trippingFleet(60), assert: Assertion{Kind: AssertNoTrips},
			wantErr: "breakers tripped"},

		{name: "no_violations/pass", fleet: stressedFleet(30), assert: Assertion{Kind: AssertNoViolations}, wantPass: true},

		{name: "feasible/pass", fleet: stressedFleet(30), assert: Assertion{Kind: AssertFeasible}, wantPass: true},
		{name: "feasible/fail", fleet: trippingFleet(30), assert: Assertion{Kind: AssertFeasible},
			wantErr: "infeasible control periods"},

		{name: "throughput_floor/pass", fleet: quietFleet(30),
			assert: Assertion{Kind: AssertThroughputFloor, Priority: 1, Min: 0.99}, wantPass: true},
		{name: "throughput_floor/boundary", fleet: quietFleet(30),
			// An uncapped fleet runs at exactly perf 1.0, so min: 1 is the
			// inclusive boundary and must pass.
			assert: Assertion{Kind: AssertThroughputFloor, Priority: 1, Min: 1}, wantPass: true},
		{name: "throughput_floor/fail", fleet: stressedFleet(40),
			assert:  Assertion{Kind: AssertThroughputFloor, Priority: 1, Min: 0.99, FromSec: 20},
			wantErr: "below floor"},

		{name: "time_to_safe/pass", fleet: surgeFleet(90), events: feedFail,
			assert: Assertion{Kind: AssertTimeToSafe, MaxSec: 60, MinMargin: 2}, wantPass: true},
		{name: "time_to_safe/fail_open", fleet: surgeFleet(21), events: feedFail,
			// The run ends before the next control period can shed the
			// overload, so the window cannot have closed yet.
			assert:  Assertion{Kind: AssertTimeToSafe, MaxSec: 300},
			wantErr: "still open at end of run"},

		{name: "max_trip_risk/pass_boundary", fleet: quietFleet(30),
			// A quiet fleet accumulates zero heat; max: 0 is the inclusive
			// boundary and must pass.
			assert: Assertion{Kind: AssertMaxTripRisk, Max: 0}, wantPass: true},
		{name: "max_trip_risk/fail", fleet: trippingFleet(60),
			assert:  Assertion{Kind: AssertMaxTripRisk, Max: 0.5},
			wantErr: "peak trip risk"},

		{name: "budgets_match_oracle/pass", fleet: stressedFleet(30),
			assert: Assertion{Kind: AssertBudgetsMatchOracle}, wantPass: true},

		{name: "node_power/pass", fleet: quietFleet(30),
			assert:   Assertion{Kind: AssertNodePower, Node: "X-rpp0-cdu0", MinWatts: 100, MaxWatts: 2000},
			wantPass: true},
		{name: "node_power/fail_max", fleet: quietFleet(30),
			assert:  Assertion{Kind: AssertNodePower, Node: "X-rpp0-cdu0", MaxWatts: 10},
			wantErr: "above 10.0 W"},
		{name: "node_power/fail_min", fleet: quietFleet(30),
			assert:  Assertion{Kind: AssertNodePower, Node: "X-rpp0-cdu0", MinWatts: 5000},
			wantErr: "below 5000.0 W"},

		{name: "exposure_windows/pass_zero", fleet: quietFleet(30),
			assert: Assertion{Kind: AssertExposureWindows, Exactly: 0}, wantPass: true},
		{name: "exposure_windows/pass_one", fleet: quietFleet(90), events: feedFail,
			assert: Assertion{Kind: AssertExposureWindows, Exactly: 1}, wantPass: true},
		{name: "exposure_windows/fail_count", fleet: quietFleet(90), events: feedFail,
			assert:  Assertion{Kind: AssertExposureWindows, Exactly: 2},
			wantErr: "1 windows closed, want 2"},
		{name: "exposure_windows/fail_open", fleet: surgeFleet(21), events: feedFail,
			assert:  Assertion{Kind: AssertExposureWindows, Exactly: 0},
			wantErr: "still open at end of run"},
		{name: "exposure_windows/pass_allow_open", fleet: surgeFleet(21), events: feedFail,
			assert:   Assertion{Kind: AssertExposureWindows, Exactly: 0, AllowOpen: true},
			wantPass: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rep := runTestFile(t, tc.fleet, tc.events, []Assertion{tc.assert})
			res := rep.Results[0]
			if res.Pass != tc.wantPass {
				t.Fatalf("pass = %v, want %v (error %q)", res.Pass, tc.wantPass, res.Error)
			}
			if !tc.wantPass && !strings.Contains(res.Error, tc.wantErr) {
				t.Fatalf("error %q does not contain %q", res.Error, tc.wantErr)
			}
			if rep.OK() != tc.wantPass {
				t.Fatalf("report OK = %v, want %v", rep.OK(), tc.wantPass)
			}
		})
	}
}

// TestNoViolationsFail exercises the no_violations failure branch
// directly: Evaluate on a simulator that never ran also covers the
// oracle's no-period error.
func TestOracleNoPeriod(t *testing.T) {
	f := &File{Name: "t", Fleet: quietFleet(30),
		Assertions: []Assertion{{Kind: AssertBudgetsMatchOracle}}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.BuildSim()
	if err != nil {
		t.Fatal(err)
	}
	// No Run: the simulator has no control period to check against.
	rep := Evaluate(f, s, nil, NewProbe(f))
	if rep.OK() {
		t.Fatal("oracle assertion passed without a control period")
	}
	if got := rep.Results[0].Error; !strings.Contains(got, "no control period has run") {
		t.Fatalf("error = %q", got)
	}
}

// TestAssertionLint pins the validation errors for malformed assertions.
func TestAssertionLint(t *testing.T) {
	cases := []struct {
		name    string
		assert  Assertion
		wantErr string
	}{
		{"unknown_kind", Assertion{Kind: "frobnicate"},
			`assertion 0 (frobnicate): unknown assertion kind`},
		{"floor_min_zero", Assertion{Kind: AssertThroughputFloor, Priority: 1},
			`min 0 outside (0,1]`},
		{"floor_min_high", Assertion{Kind: AssertThroughputFloor, Priority: 1, Min: 1.5},
			`min 1.5 outside (0,1]`},
		{"floor_no_such_priority", Assertion{Kind: AssertThroughputFloor, Priority: 7, Min: 0.5},
			`no server ever has priority 7`},
		{"tts_empty", Assertion{Kind: AssertTimeToSafe},
			`needs max_sec or min_margin`},
		{"risk_range", Assertion{Kind: AssertMaxTripRisk, Max: 1.5},
			`max 1.5 outside [0,1]`},
		{"node_unknown", Assertion{Kind: AssertNodePower, Node: "nope", MaxWatts: 10},
			`unknown node "nope"`},
		{"node_is_supply", Assertion{Kind: AssertNodePower, Node: SupplyID("s-0", FeedX), MaxWatts: 10},
			`node "s-0-psX" is a supply, not a distribution node`},
		{"node_no_bounds", Assertion{Kind: AssertNodePower, Node: "X-rpp0"},
			`needs min_watts or max_watts`},
		{"node_inverted", Assertion{Kind: AssertNodePower, Node: "X-rpp0", MinWatts: 20, MaxWatts: 10},
			`min_watts 20 above max_watts 10`},
		{"windows_negative", Assertion{Kind: AssertExposureWindows, Exactly: -1},
			`exactly -1 negative`},
		{"window_outside_run", Assertion{Kind: AssertNoTrips, ToSec: 99},
			`window [0,99] outside run of 30s`},
		{"window_empty", Assertion{Kind: AssertNoTrips, FromSec: 20, ToSec: 10},
			`window [20,10] is empty`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := &File{Name: "t", Fleet: quietFleet(30), Assertions: []Assertion{tc.assert}}
			err := f.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.assert)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestFileLint pins the document-level validation errors.
func TestFileLint(t *testing.T) {
	base := func() *File {
		return &File{Name: "t", Fleet: quietFleet(60),
			Assertions: []Assertion{{Kind: AssertNoTrips}}}
	}
	t.Run("no_name", func(t *testing.T) {
		f := base()
		f.Name = ""
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "file has no name") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("no_assertions", func(t *testing.T) {
		f := base()
		f.Assertions = nil
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), `file "t" has no assertions`) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("negative_event_time", func(t *testing.T) {
		f := base()
		f.Events = []Event{{AtSec: -5, Kind: EventFailFeed, Feed: FeedX}}
		want := `scenario: event "fail_feed" at -5s outside run of 60s`
		if err := f.Validate(); err == nil || err.Error() != want {
			t.Fatalf("err = %v, want %q", err, want)
		}
	})
	t.Run("event_after_horizon", func(t *testing.T) {
		f := base()
		f.Events = []Event{{AtSec: 61, Kind: EventFailFeed, Feed: FeedX}}
		want := `scenario: event "fail_feed" at 61s outside run of 60s`
		if err := f.Validate(); err == nil || err.Error() != want {
			t.Fatalf("err = %v, want %q", err, want)
		}
	})
	t.Run("drain_without_cordon", func(t *testing.T) {
		f := base()
		f.Events = []Event{{AtSec: 10, Kind: EventDrain, Node: "X-rpp0-cdu0"}}
		want := `scenario: event "drain" at 10s: server "s-0" under node "X-rpp0-cdu0" is not cordoned`
		if err := f.Validate(); err == nil || err.Error() != want {
			t.Fatalf("err = %v, want %q", err, want)
		}
	})
	t.Run("uncordon_then_drain", func(t *testing.T) {
		f := base()
		f.Events = []Event{
			{AtSec: 5, Kind: EventCordon, Node: "X-rpp0-cdu0"},
			{AtSec: 10, Kind: EventUncordon, Node: "X-rpp0-cdu0"},
			{AtSec: 15, Kind: EventDrain, Node: "X-rpp0-cdu0"},
		}
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "is not cordoned") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("operator_event_unknown_node", func(t *testing.T) {
		f := base()
		f.Events = []Event{{AtSec: 10, Kind: EventCordon, Node: "nope"}}
		want := `scenario: event "cordon" references unknown node "nope"`
		if err := f.Validate(); err == nil || err.Error() != want {
			t.Fatalf("err = %v, want %q", err, want)
		}
	})
	t.Run("node_budget_on_supply", func(t *testing.T) {
		f := base()
		f.Events = []Event{{AtSec: 10, Kind: EventSetNodeBudget, Node: SupplyID("s-0", FeedX), Value: 100}}
		want := `scenario: event "set_node_budget" references supply "s-0-psX", not a distribution node`
		if err := f.Validate(); err == nil || err.Error() != want {
			t.Fatalf("err = %v, want %q", err, want)
		}
	})
	t.Run("node_budget_negative", func(t *testing.T) {
		f := base()
		f.Events = []Event{{AtSec: 10, Kind: EventSetNodeBudget, Node: "X-rpp0", Value: -3}}
		want := `scenario: event "set_node_budget" budget -3 invalid`
		if err := f.Validate(); err == nil || err.Error() != want {
			t.Fatalf("err = %v, want %q", err, want)
		}
	})
	t.Run("group_without_prefix", func(t *testing.T) {
		f := base()
		f.Fleet.Groups = append(f.Fleet.Groups, ServerGroup{Count: 2})
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "group 1 has no prefix") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("group_bad_count", func(t *testing.T) {
		f := base()
		f.Fleet.Groups[0].Count = 0
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), `group "s" count 0 invalid`) {
			t.Fatalf("err = %v", err)
		}
	})
}
