package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// scenarioCount sets how many generated scenarios TestScenarioSweep
// verifies; CI raises it with -scenario-count=200.
var scenarioCount = flag.Int("scenario-count", 50, "scenarios verified by TestScenarioSweep")

// baseSeed returns the sweep's base seed, overridable for reproducing a CI
// failure locally: CAPMAESTRO_SCENARIO_SEED=<n> go test ./internal/scenario
func baseSeed(t *testing.T) int64 {
	v := os.Getenv("CAPMAESTRO_SCENARIO_SEED")
	if v == "" {
		return 1
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("CAPMAESTRO_SCENARIO_SEED=%q: %v", v, err)
	}
	return n
}

// dumpArtifact writes a failing scenario's stable JSON into the directory
// named by CAPMAESTRO_ARTIFACT_DIR so CI can upload it for offline replay.
// A no-op when the variable is unset (local runs).
func dumpArtifact(t *testing.T, name string, data []byte) {
	t.Helper()
	dir := os.Getenv("CAPMAESTRO_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("artifact write: %v", err)
		return
	}
	t.Logf("failing scenario written to %s", path)
}

// TestScenarioSweep generates scenarioCount scenarios and runs the full
// battery — differential oracle, priority-ordering ledger, allocation
// invariants, SPO comparison, simulator safety monitor — on each.
func TestScenarioSweep(t *testing.T) {
	seed := baseSeed(t)
	for i := 0; i < *scenarioCount; i++ {
		s := seed + int64(i)
		t.Run(strconv.FormatInt(s, 10), func(t *testing.T) {
			t.Parallel()
			sc := Generate(s)
			if err := Verify(sc); err != nil {
				data, _ := sc.MarshalStable()
				dumpArtifact(t, "sweep-seed-"+strconv.FormatInt(s, 10)+".json", data)
				t.Fatalf("%v\nscenario:\n%s", err, data)
			}
		})
	}
}

// TestGenerateDeterministic asserts the generator is a pure function of
// its seed: two calls yield byte-identical stable JSON.
func TestGenerateDeterministic(t *testing.T) {
	for s := int64(1); s <= 25; s++ {
		a, err := Generate(s).MarshalStable()
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(s).MarshalStable()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%s\n----\n%s", s, a, b)
		}
	}
}

// TestRunDeterministic asserts two simulator runs of the same scenario
// reach bit-identical end states (same clock, counters, per-server power
// and throttle), including under -race.
func TestRunDeterministic(t *testing.T) {
	for s := int64(1); s <= 8; s++ {
		sc := Generate(s)
		first, err := RunToEnd(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		second, err := RunToEnd(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		a, _ := first.Marshal()
		b, _ := second.Marshal()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: end states differ:\n%s\n----\n%s", s, a, b)
		}
	}
}

// TestScenarioJSONRoundTrip pins the stable encoding: marshal → Load →
// marshal must reproduce the exact bytes, and unknown fields are rejected.
func TestScenarioJSONRoundTrip(t *testing.T) {
	for s := int64(1); s <= 25; s++ {
		sc := Generate(s)
		data, err := sc.MarshalStable()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Load(data)
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		again, err := back.MarshalStable()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("seed %d: round trip changed encoding:\n%s\n----\n%s", s, data, again)
		}
	}
	if _, err := Load([]byte(`{"name":"x","bogus_field":1}`)); err == nil {
		t.Error("Load accepted unknown field")
	}
}

// TestCorpusReplay verifies every committed scenario file, so corpus
// entries double as regression tests: a scenario that once exposed a bug
// keeps guarding against it.
func TestCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus scenarios committed under testdata/corpus")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Load(data)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(sc); err != nil {
				dumpArtifact(t, "corpus-"+filepath.Base(f), data)
				t.Fatal(err)
			}
		})
	}
}

// TestMinimizePreservesFailure minimizes against a synthetic predicate and
// checks the result still satisfies it while being no larger.
func TestMinimizePreservesFailure(t *testing.T) {
	sc := Generate(7)
	// Predicate: "fails" whenever the scenario still contains server s00.
	fails := func(c *Scenario) bool {
		for i := range c.Servers {
			if c.Servers[i].ID == "s00" {
				return true
			}
		}
		return false
	}
	min := Minimize(sc, fails)
	if !fails(min) {
		t.Fatal("minimized scenario no longer fails the predicate")
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("minimized scenario invalid: %v", err)
	}
	if len(min.Servers) > len(sc.Servers) || len(min.Events) > len(sc.Events) || min.DurationSec > sc.DurationSec {
		t.Fatalf("minimized scenario grew: servers %d→%d events %d→%d duration %d→%d",
			len(sc.Servers), len(min.Servers), len(sc.Events), len(min.Events), sc.DurationSec, min.DurationSec)
	}
	if len(min.Servers) != 1 {
		t.Errorf("expected minimization down to 1 server, got %d", len(min.Servers))
	}
}
