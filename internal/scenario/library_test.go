package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// libraryPaths returns the committed scenario library, relative to this
// package directory, in deterministic (sorted) order.
func libraryPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed scenarios found under scenarios/")
	}
	return paths
}

// TestScenarioLibrary runs every committed scenario end to end and
// requires all of its assertions to pass: the library doubles as the
// system-level regression suite for the simulator, the SLO tracker, and
// the assertion engine. CI runs this under -race.
func TestScenarioLibrary(t *testing.T) {
	for _, path := range libraryPaths(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			f, err := ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunFile(f, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Report.OK() {
				t.Fatalf("scenario failed:\n%s", res.Report.Text())
			}
		})
	}
}

// TestScenarioLibraryValidateGolden pins the `scenariorun validate`
// report for the committed library. Regenerate with `go test -run
// ValidateGolden -update ./internal/scenario/`.
func TestScenarioLibraryValidateGolden(t *testing.T) {
	report, ok := ValidateFiles(libraryPaths(t))
	if !ok {
		t.Fatalf("library does not validate:\n%s", report)
	}
	golden := filepath.Join("testdata", "library-validate.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if report != string(want) {
		t.Fatalf("validate report drifted from golden:\ngot:\n%s\nwant:\n%s", report, want)
	}
}
