// Package scenario is a seeded, fully deterministic scenario generator and
// invariant engine for the capping stack. A Scenario is a replayable value
// — an N+N topology, a server population with priorities and utilizations,
// a policy, root budgets, and a timed fault schedule — with a stable JSON
// encoding, so any failure found by fuzzing or sweeping is a file that
// reproduces exactly.
//
// Each scenario is checked two ways:
//
//   - Verify runs it through sim.Simulator and asserts the global safety
//     battery: the safety monitor's allocation invariants never fire, and
//     no breaker trips while the budgets are feasible.
//   - CheckStates replays the scenario's state timeline at the allocation
//     layer and runs the differential oracle: the production
//     core.Allocator must match the naive refalloc reference watt-for-watt
//     on every tree, policy, and state, the reference's grant ledger must
//     satisfy the paper's priority-ordering claim, and SPO must never
//     reduce total granted consumption.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"sort"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/server"
	"capmaestro/internal/sim"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
	"capmaestro/internal/topology"
)

// Feed names of the generated N+N infrastructure, the paper's X/Y sides.
const (
	FeedX = "X"
	FeedY = "Y"
)

// Scenario is one replayable test case. All fields are plain structs and
// slices (no maps) in generator-chosen order, so json.MarshalIndent is
// byte-stable for a given value.
type Scenario struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`

	Topology TopologySpec `json:"topology"`
	Servers  []ServerSpec `json:"servers"`

	// Policy is a core.ParsePolicy name: "none", "local", or "global".
	Policy string `json:"policy"`
	SPO    bool   `json:"spo"`

	ControlPeriodSec int `json:"control_period_sec"`
	DurationSec      int `json:"duration_sec"`

	// Budgets lists contractual root budgets per feed; feeds without an
	// entry allocate up to their physical constraint.
	Budgets []FeedBudget `json:"budgets,omitempty"`

	// Events is the fault schedule, sorted by time.
	Events []Event `json:"events,omitempty"`
}

// TopologySpec describes a mirrored N+N distribution tree: both feeds see
// the same RPP/rack structure (so dual-corded servers have a supply on
// each side), with independently generated breaker ratings per side.
type TopologySpec struct {
	// XRootRating / YRootRating are the feed-level ratings; 0 = unlimited.
	XRootRating float64   `json:"x_root_rating,omitempty"`
	YRootRating float64   `json:"y_root_rating,omitempty"`
	RPPs        []RPPSpec `json:"rpps"`
}

// RPPSpec is one remote power panel position, present on both feeds.
type RPPSpec struct {
	XRating float64    `json:"x_rating"`
	YRating float64    `json:"y_rating"`
	Racks   []RackSpec `json:"racks"`
}

// RackSpec is one rack (CDU) position under an RPP.
type RackSpec struct {
	XRating float64 `json:"x_rating"`
	YRating float64 `json:"y_rating"`
}

// ServerSpec places one server on a rack and describes its workload.
type ServerSpec struct {
	ID   string `json:"id"`
	RPP  int    `json:"rpp"`
	Rack int    `json:"rack"`

	Priority int `json:"priority"`

	// XShare is the fraction of the server's load carried by its X-side
	// supply: 1 = single-corded on X, 0 = single-corded on Y, anything in
	// between = dual-corded with splits XShare / 1−XShare.
	XShare float64 `json:"x_share"`

	Utilization float64 `json:"utilization"`
}

// FeedBudget assigns a contractual budget to one feed's tree.
type FeedBudget struct {
	Feed  string  `json:"feed"`
	Watts float64 `json:"watts"`
}

// Event kinds understood by the schedule. The first block is the fault
// schedule the fuzzing generator draws from; the second block is the
// operator actions the declarative scenario format adds (rolling
// maintenance and subtree re-budgeting, routed through the simulator's
// operator surface).
const (
	EventFailFeed      = "fail_feed"
	EventRestoreFeed   = "restore_feed"
	EventSetBudget     = "set_budget"
	EventSetUtil       = "set_util"
	EventSetPriority   = "set_priority"
	EventFailSupply    = "fail_supply"
	EventRestoreSupply = "restore_supply"

	EventCordon        = "cordon"
	EventDrain         = "drain"
	EventUncordon      = "uncordon"
	EventSetNodeBudget = "set_node_budget"
)

// Event is one timed fault, reconfiguration, or operator action.
type Event struct {
	AtSec int    `json:"at_sec"`
	Kind  string `json:"kind"`

	Feed   string  `json:"feed,omitempty"`
	Server string  `json:"server,omitempty"`
	Supply string  `json:"supply,omitempty"`
	Node   string  `json:"node,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// MarshalStable renders the scenario as indented JSON. The encoding is
// deterministic: identical scenarios produce identical bytes.
func (sc *Scenario) MarshalStable() ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// strictUnmarshalJSON is the one canonical strict decode every scenario
// loader shares (legacy Scenario JSON, declarative files, minimized
// replay corpora): unknown fields are rejected so a replayed file cannot
// silently drop information, and trailing content after the document is
// an error rather than ignored bytes.
func strictUnmarshalJSON(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after document")
	}
	return nil
}

// Load parses a scenario previously written with MarshalStable, rejecting
// unknown fields so replayed files cannot silently drop information.
func Load(data []byte) (*Scenario, error) {
	var sc Scenario
	if err := strictUnmarshalJSON(data, &sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &sc, nil
}

// SupplyID names a server's supply on one feed.
func SupplyID(serverID, feed string) string { return serverID + "-ps" + feed }

// rppID and rackID name distribution nodes on one feed.
func rppID(feed string, rpp int) string { return fmt.Sprintf("%s-rpp%d", feed, rpp) }
func rackID(feed string, rpp, rack int) string {
	return fmt.Sprintf("%s-rpp%d-cdu%d", feed, rpp, rack)
}

// DualCorded reports whether the server spec has supplies on both feeds.
func (s *ServerSpec) DualCorded() bool { return s.XShare > 0 && s.XShare < 1 }

// Supplies lists the (feed, split) pairs of the server's supplies.
func (s *ServerSpec) Supplies() []struct {
	Feed  string
	Split float64
} {
	type fs = struct {
		Feed  string
		Split float64
	}
	switch {
	case s.XShare >= 1:
		return []fs{{FeedX, 1}}
	case s.XShare <= 0:
		return []fs{{FeedY, 1}}
	default:
		return []fs{{FeedX, s.XShare}, {FeedY, 1 - s.XShare}}
	}
}

// BuildTopology materializes the scenario's physical topology via
// topology.New, which validates it; a scenario that fails to build is
// invalid by construction.
func (sc *Scenario) BuildTopology() (*topology.Topology, error) {
	mkRoot := func(feed string, rating float64) *topology.Node {
		root := topology.NewNode(feed, topology.KindUtility, power.Watts(rating))
		root.Feed = topology.FeedID(feed)
		return root
	}
	rootX := mkRoot(FeedX, sc.Topology.XRootRating)
	rootY := mkRoot(FeedY, sc.Topology.YRootRating)

	type rackNodes struct{ x, y *topology.Node }
	racks := make(map[[2]int]rackNodes)
	for ri, rpp := range sc.Topology.RPPs {
		rppX := rootX.AddChild(topology.NewNode(rppID(FeedX, ri), topology.KindRPP, power.Watts(rpp.XRating)))
		rppY := rootY.AddChild(topology.NewNode(rppID(FeedY, ri), topology.KindRPP, power.Watts(rpp.YRating)))
		for ci, rack := range rpp.Racks {
			racks[[2]int{ri, ci}] = rackNodes{
				x: rppX.AddChild(topology.NewNode(rackID(FeedX, ri, ci), topology.KindCDU, power.Watts(rack.XRating))),
				y: rppY.AddChild(topology.NewNode(rackID(FeedY, ri, ci), topology.KindCDU, power.Watts(rack.YRating))),
			}
		}
	}

	for i := range sc.Servers {
		sv := &sc.Servers[i]
		rn, ok := racks[[2]int{sv.RPP, sv.Rack}]
		if !ok {
			return nil, fmt.Errorf("scenario: server %q references rack (%d,%d) not in topology", sv.ID, sv.RPP, sv.Rack)
		}
		for _, sup := range sv.Supplies() {
			leaf := topology.NewSupply(SupplyID(sv.ID, sup.Feed), sv.ID, sup.Split)
			if sup.Feed == FeedX {
				rn.x.AddChild(leaf)
			} else {
				rn.y.AddChild(leaf)
			}
		}
	}
	return topology.New(rootX, rootY)
}

// BuildSim assembles a simulator for the scenario and schedules its event
// timeline. The servers run noiseless with instantaneous actuation so two
// runs of the same scenario are bit-identical.
func (sc *Scenario) BuildSim() (*sim.Simulator, error) {
	return sc.BuildSimWithSLO(nil)
}

// BuildSimWithSLO is BuildSim with a safety-SLO tracker attached, so the
// verification battery (and debugging reruns) can assert exposure-window
// and trip-risk properties over the scenario's fault schedule.
func (sc *Scenario) BuildSimWithSLO(tracker *slo.Tracker) (*sim.Simulator, error) {
	return sc.BuildSimInstrumented(SimInstruments{SLO: tracker})
}

// SimInstruments bundles the optional observability attachments for a
// scenario-built simulator: the scenario runner and interactive operator
// mode wire all of them; the verification battery only the SLO tracker.
type SimInstruments struct {
	SLO            *slo.Tracker
	FlightRecorder *flightrec.Recorder
	Telemetry      *telemetry.Registry
	Logger         *slog.Logger
}

// BuildSimInstrumented assembles a simulator for the scenario with the
// given instruments attached and schedules its event timeline. The
// servers run noiseless with instantaneous actuation so two runs of the
// same scenario are bit-identical.
func (sc *Scenario) BuildSimInstrumented(ins SimInstruments) (*sim.Simulator, error) {
	topo, err := sc.BuildTopology()
	if err != nil {
		return nil, err
	}
	pol, err := core.ParsePolicy(sc.Policy)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if sc.ControlPeriodSec < 1 {
		return nil, fmt.Errorf("scenario: control period %ds below 1s tick", sc.ControlPeriodSec)
	}
	servers := make(map[string]sim.ServerSpec, len(sc.Servers))
	for i := range sc.Servers {
		sv := &sc.Servers[i]
		servers[sv.ID] = sim.ServerSpec{
			Priority:    core.Priority(sv.Priority),
			Utilization: sv.Utilization,
		}
	}
	budgets := make(map[topology.FeedID]power.Watts, len(sc.Budgets))
	for _, b := range sc.Budgets {
		budgets[topology.FeedID(b.Feed)] = power.Watts(b.Watts)
	}
	simulator, err := sim.New(sim.Config{
		Topology:       topo,
		Servers:        servers,
		Policy:         pol,
		SPO:            sc.SPO,
		RootBudgets:    budgets,
		ControlPeriod:  time.Duration(sc.ControlPeriodSec) * time.Second,
		SLO:            ins.SLO,
		FlightRecorder: ins.FlightRecorder,
		Telemetry:      ins.Telemetry,
		Logger:         ins.Logger,
	})
	if err != nil {
		return nil, err
	}
	for _, ev := range sc.Events {
		if err := scheduleEvent(simulator, ev); err != nil {
			return nil, err
		}
	}
	return simulator, nil
}

// scheduleEvent registers one scenario event on the simulator.
func scheduleEvent(s *sim.Simulator, ev Event) error {
	at := time.Duration(ev.AtSec) * time.Second
	name := fmt.Sprintf("%s@%ds", ev.Kind, ev.AtSec)
	switch ev.Kind {
	case EventFailFeed:
		feed := topology.FeedID(ev.Feed)
		s.Schedule(at, name, func(s *sim.Simulator) { s.FailFeed(feed) })
	case EventRestoreFeed:
		feed := topology.FeedID(ev.Feed)
		s.Schedule(at, name, func(s *sim.Simulator) { s.RestoreFeed(feed) })
	case EventSetBudget:
		feed := topology.FeedID(ev.Feed)
		w := power.Watts(ev.Value)
		s.Schedule(at, name, func(s *sim.Simulator) { s.SetRootBudget(feed, w) })
	case EventSetUtil:
		id, u := ev.Server, ev.Value
		s.Schedule(at, name, func(s *sim.Simulator) {
			if err := s.SetUtilization(id, u); err != nil {
				panic(err) // server IDs are validated before scheduling
			}
		})
	case EventSetPriority:
		id, p := ev.Server, core.Priority(int(ev.Value))
		s.Schedule(at, name, func(s *sim.Simulator) {
			if err := s.SetPriority(id, p); err != nil {
				panic(err)
			}
		})
	case EventFailSupply:
		id := ev.Supply
		s.Schedule(at, name, func(s *sim.Simulator) {
			if err := s.SetSupplyState(id, server.SupplyFailed); err != nil {
				panic(err)
			}
		})
	case EventRestoreSupply:
		id := ev.Supply
		s.Schedule(at, name, func(s *sim.Simulator) {
			if err := s.SetSupplyState(id, server.SupplyActive); err != nil {
				panic(err)
			}
		})
	case EventCordon:
		node := ev.Node
		s.Schedule(at, name, func(s *sim.Simulator) {
			if err := s.Cordon(node); err != nil {
				panic(err) // node references are validated before scheduling
			}
		})
	case EventDrain:
		node := ev.Node
		s.Schedule(at, name, func(s *sim.Simulator) {
			if err := s.Drain(node); err != nil {
				panic(err) // cordon-before-drain ordering is validated
			}
		})
	case EventUncordon:
		node := ev.Node
		s.Schedule(at, name, func(s *sim.Simulator) {
			if err := s.Uncordon(node); err != nil {
				panic(err)
			}
		})
	case EventSetNodeBudget:
		node, w := ev.Node, power.Watts(ev.Value)
		s.Schedule(at, name, func(s *sim.Simulator) {
			if err := s.SetNodeBudget(node, w); err != nil {
				panic(err)
			}
		})
	default:
		return fmt.Errorf("scenario: unknown event kind %q", ev.Kind)
	}
	return nil
}

// Validate performs a full structural check: the topology must build, the
// policy parse, every event reference resolve, and all workload values be
// finite and in range.
func (sc *Scenario) Validate() error {
	if _, err := core.ParsePolicy(sc.Policy); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if sc.ControlPeriodSec < 1 {
		return fmt.Errorf("scenario: control period %ds below 1s tick", sc.ControlPeriodSec)
	}
	if sc.DurationSec < 1 {
		return fmt.Errorf("scenario: duration %ds invalid", sc.DurationSec)
	}
	topo, err := sc.BuildTopology()
	if err != nil {
		return err
	}
	servers := make(map[string]*ServerSpec, len(sc.Servers))
	supplies := make(map[string]bool)
	for i := range sc.Servers {
		sv := &sc.Servers[i]
		if servers[sv.ID] != nil {
			return fmt.Errorf("scenario: duplicate server %q", sv.ID)
		}
		servers[sv.ID] = sv
		for _, sup := range sv.Supplies() {
			supplies[SupplyID(sv.ID, sup.Feed)] = true
		}
		if sv.Utilization < 0 || sv.Utilization > 1 || math.IsNaN(sv.Utilization) {
			return fmt.Errorf("scenario: server %q utilization %v out of [0,1]", sv.ID, sv.Utilization)
		}
	}
	for _, ev := range sc.Events {
		if ev.AtSec < 0 || ev.AtSec > sc.DurationSec {
			return fmt.Errorf("scenario: event %q at %ds outside run of %ds", ev.Kind, ev.AtSec, sc.DurationSec)
		}
		switch ev.Kind {
		case EventFailFeed, EventRestoreFeed, EventSetBudget:
			if ev.Feed != FeedX && ev.Feed != FeedY {
				return fmt.Errorf("scenario: event %q references unknown feed %q", ev.Kind, ev.Feed)
			}
		case EventSetUtil:
			if servers[ev.Server] == nil {
				return fmt.Errorf("scenario: event %q references unknown server %q", ev.Kind, ev.Server)
			}
			if ev.Value < 0 || ev.Value > 1 || math.IsNaN(ev.Value) {
				return fmt.Errorf("scenario: event %q utilization %v out of [0,1]", ev.Kind, ev.Value)
			}
		case EventSetPriority:
			if servers[ev.Server] == nil {
				return fmt.Errorf("scenario: event %q references unknown server %q", ev.Kind, ev.Server)
			}
		case EventFailSupply, EventRestoreSupply:
			if !supplies[ev.Supply] {
				return fmt.Errorf("scenario: event %q references unknown supply %q", ev.Kind, ev.Supply)
			}
		case EventCordon, EventDrain, EventUncordon:
			if err := validateNodeRef(topo, ev); err != nil {
				return err
			}
		case EventSetNodeBudget:
			if err := validateNodeRef(topo, ev); err != nil {
				return err
			}
			if ev.Value < 0 || math.IsNaN(ev.Value) || math.IsInf(ev.Value, 0) {
				return fmt.Errorf("scenario: event %q budget %v invalid", ev.Kind, ev.Value)
			}
		default:
			return fmt.Errorf("scenario: unknown event kind %q", ev.Kind)
		}
	}
	return sc.validateDrainOrder(topo)
}

// validateNodeRef checks that an operator event targets a known
// distribution node (not a supply leaf).
func validateNodeRef(topo *topology.Topology, ev Event) error {
	n := topo.Node(ev.Node)
	if n == nil {
		return fmt.Errorf("scenario: event %q references unknown node %q", ev.Kind, ev.Node)
	}
	if n.Kind == topology.KindSupply {
		return fmt.Errorf("scenario: event %q references supply %q, not a distribution node", ev.Kind, ev.Node)
	}
	return nil
}

// validateDrainOrder replays the operator events in firing order and
// rejects a drain whose servers are not all cordoned at that point, so a
// scheduled drain can never fail at runtime.
func (sc *Scenario) validateDrainOrder(topo *topology.Topology) error {
	events := make([]Event, len(sc.Events))
	copy(events, sc.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtSec < events[j].AtSec })
	cordoned := make(map[string]bool)
	for _, ev := range events {
		switch ev.Kind {
		case EventCordon:
			for id := range serversUnderNode(topo, ev.Node) {
				cordoned[id] = true
			}
		case EventUncordon:
			for id := range serversUnderNode(topo, ev.Node) {
				delete(cordoned, id)
			}
		case EventDrain:
			under := serversUnderNode(topo, ev.Node)
			ids := make([]string, 0, len(under))
			for id := range under {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				if !cordoned[id] {
					return fmt.Errorf("scenario: event %q at %ds: server %q under node %q is not cordoned", ev.Kind, ev.AtSec, id, ev.Node)
				}
			}
		}
	}
	return nil
}

// serversUnderNode collects the servers with a supply beneath the node.
func serversUnderNode(topo *topology.Topology, nodeID string) map[string]bool {
	set := make(map[string]bool)
	if topo == nil {
		return set
	}
	n := topo.Node(nodeID)
	if n == nil {
		return set
	}
	n.Walk(func(m *topology.Node) bool {
		if m.Kind == topology.KindSupply {
			set[m.ServerID] = true
		}
		return true
	})
	return set
}
