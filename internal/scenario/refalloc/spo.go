package refalloc

import (
	"math"
	"sort"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
)

// serverLeaves aggregates one server's supply leaves across trees, in tree
// order — the same order the production SPO walks them, so the min-over-
// supplies consumption computation agrees bitwise.
type serverLeaves struct {
	leaves []*core.SupplyLeaf
}

func (v *serverLeaves) effectiveDemand() power.Watts {
	l := v.leaves[0]
	return power.Min(power.Max(l.Demand, l.CapMin), l.CapMax)
}

func (v *serverLeaves) consumption(budgetOf func(string) power.Watts) power.Watts {
	limit := power.Watts(math.Inf(1))
	for _, l := range v.leaves {
		if l.Share <= 0 {
			continue
		}
		implied := budgetOf(l.SupplyID) / power.Watts(l.Share)
		if implied < limit {
			limit = implied
		}
	}
	return power.Min(v.effectiveDemand(), limit)
}

func collectServers(trees []*core.Node) map[string]*serverLeaves {
	servers := make(map[string]*serverLeaves)
	for _, t := range trees {
		for _, leafNode := range t.Leaves() {
			l := leafNode.Leaf
			v := servers[l.ServerID]
			if v == nil {
				v = &serverLeaves{}
				servers[l.ServerID] = v
			}
			v.leaves = append(v.leaves, l)
		}
	}
	return servers
}

func combinedBudgets(results []*Result) func(string) power.Watts {
	return func(supplyID string) power.Watts {
		for _, r := range results {
			if b, ok := r.SupplyBudgets[supplyID]; ok {
				return b
			}
		}
		return 0
	}
}

// AllocateWithSPO mirrors core.AllocateWithSPO (Section 4.4): a first
// pass, stranded-power detection on each server's most-constrained supply,
// BudgetCap pinning of the stranded supplies, and a superseding second
// pass. The trees are left unmodified. The returned report uses the
// production core.SPOReport type so oracle comparisons are field-level.
func AllocateWithSPO(trees []*core.Node, budgets []power.Watts, policy core.Policy) ([]*Result, *core.SPOReport, error) {
	first, err := AllocateAll(trees, budgets, policy)
	if err != nil {
		return nil, nil, err
	}
	report := &core.SPOReport{}
	budgetOf := combinedBudgets(first)
	servers := collectServers(trees)

	type savedCap struct {
		leaf *core.SupplyLeaf
		old  power.Watts
	}
	var saved []savedCap
	restore := func() {
		for _, s := range saved {
			s.leaf.BudgetCap = s.old
		}
	}
	ids := make([]string, 0, len(servers))
	for id := range servers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		v := servers[id]
		consumption := v.consumption(budgetOf)
		for _, l := range v.leaves {
			budget := budgetOf(l.SupplyID)
			usable := power.Watts(l.Share) * consumption
			stranded := budget - usable
			if stranded <= epsilon {
				continue
			}
			report.Stranded = append(report.Stranded, core.StrandedSupply{
				SupplyID: l.SupplyID,
				ServerID: l.ServerID,
				Budget:   budget,
				Usable:   usable,
				Stranded: stranded,
			})
			report.TotalStranded += stranded
			saved = append(saved, savedCap{leaf: l, old: l.BudgetCap})
			l.BudgetCap = usable
		}
	}
	sort.Slice(report.Stranded, func(i, j int) bool {
		return report.Stranded[i].SupplyID < report.Stranded[j].SupplyID
	})

	if len(report.Stranded) == 0 {
		return first, report, nil
	}
	defer restore()
	second, err := AllocateAll(trees, budgets, policy)
	if err != nil {
		return nil, nil, err
	}
	return second, report, nil
}
