// Package refalloc is a deliberately naive reference implementation of the
// paper's priority-aware budgeting algorithm (Sections 4.3–4.4), used as a
// differential oracle against the production core.Allocator.
//
// Where core.Allocator flattens each tree once into index-addressed arrays
// and reuses every piece of scratch storage so a steady-state pass
// allocates nothing, this package transcribes the algorithm the obvious
// way: plain recursion over the tree, map-based summaries keyed by
// priority, and fresh slices everywhere. It is several orders of magnitude
// more allocation-heavy and makes no attempt to be fast — its only job is
// to be easy to audit against the paper and to disagree loudly whenever an
// optimization in the hot path changes a single grant.
//
// # Oracle contract
//
// For every valid tree, budget, and policy, Allocate must produce grants
// that are bit-for-bit equal to core.Allocator's (exact float64 equality,
// not approximate). To make that possible the arithmetic here performs the
// same operations in the same order as the production code — summaries
// accumulate per level in child order, requests are recomputed against
// descending-priority headroom, the waterfill redistributes overflow with
// the same proportional-give expression — while sharing none of its code
// or data layout. If either side reorders its float operations the oracle
// fails, which is deliberate: an allocation change, even one that looks
// numerically harmless, is a behavior change for the control plane and
// must be made on both sides consciously.
//
// Beyond the grants, the reference also keeps what the production code
// throws away: a per-node ledger of how each distribution step filled each
// priority level. The ledger is what makes the paper's global ordering
// claim — no higher-priority request goes unmet while a lower-priority
// level holds more than its floor — mechanically checkable on every
// allocation (CheckPriorityOrdering).
package refalloc

import (
	"fmt"
	"math"
	"sort"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
)

// epsilon matches the watt-noise tolerance of the production allocator.
const epsilon = 1e-6

// level holds one priority level's metrics in a reference summary.
type level struct {
	capMin  power.Watts
	demand  power.Watts
	request power.Watts
}

// summary is the naive map-based counterpart of core.Summary.
type summary struct {
	levels     map[core.Priority]*level
	constraint power.Watts
}

func newSummary() *summary {
	return &summary{levels: make(map[core.Priority]*level)}
}

// level returns the entry for p, creating it if absent.
func (s *summary) level(p core.Priority) *level {
	l, ok := s.levels[p]
	if !ok {
		l = &level{}
		s.levels[p] = l
	}
	return l
}

// at returns the entry for p, or a zero entry if absent.
func (s *summary) at(p core.Priority) level {
	if l, ok := s.levels[p]; ok {
		return *l
	}
	return level{}
}

// prioritiesDesc lists the priorities present, highest first — the order
// every phase of the algorithm consumes levels in.
func (s *summary) prioritiesDesc() []core.Priority {
	out := make([]core.Priority, 0, len(s.levels))
	for p := range s.levels {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

func (s *summary) totalCapMin() power.Watts {
	var t power.Watts
	for _, p := range s.prioritiesDesc() {
		t += s.levels[p].capMin
	}
	return t
}

func (s *summary) totalDemand() power.Watts {
	var t power.Watts
	for _, p := range s.prioritiesDesc() {
		t += s.levels[p].demand
	}
	return t
}

func (s *summary) totalRequest() power.Watts {
	var t power.Watts
	for _, p := range s.prioritiesDesc() {
		t += s.levels[p].request
	}
	return t
}

// collapse folds every level into a single level 0, as a policy that hides
// priorities reports upstream.
func (s *summary) collapse() *summary {
	c := newSummary()
	c.constraint = s.constraint
	l := c.level(0)
	l.capMin = s.totalCapMin()
	l.demand = s.totalDemand()
	l.request = power.Min(s.totalRequest(), s.constraint)
	return c
}

// leafSummary computes the level-1 metrics of Section 4.3.1 for one supply
// leaf, including the SPO BudgetCap pinning rule.
func leafSummary(l *core.SupplyLeaf) *summary {
	r := power.Watts(l.Share)
	capMin := r * l.CapMin
	demand := power.Min(power.Max(l.Demand, l.CapMin), l.CapMax) * r
	constraint := r * l.CapMax
	if l.BudgetCap > 0 {
		bc := power.Max(l.BudgetCap, capMin)
		capMin = bc
		demand = bc
		constraint = bc
	}
	s := newSummary()
	s.constraint = constraint
	lv := s.level(l.Priority)
	lv.capMin = capMin
	lv.demand = demand
	lv.request = demand
	return s
}

// fromCore converts a proxy's reported core.Summary into the map form.
func fromCore(cs *core.Summary) *summary {
	s := newSummary()
	s.constraint = cs.Constraint
	for _, lm := range cs.LevelMetrics() {
		l := s.level(lm.Priority)
		l.capMin = lm.CapMin
		l.demand = lm.Demand
		l.request = lm.Request
	}
	return s
}

// limitOrInf normalizes a node limit: non-positive means unlimited.
func limitOrInf(n *core.Node) power.Watts {
	if n.Limit <= 0 {
		return power.Watts(math.Inf(1))
	}
	return n.Limit
}

// combine aggregates child summaries at a shifting controller
// (Section 4.3.1): per-level sums, the constraint clamped to the node
// limit, and requests recomputed highest-priority-first against the
// node's remaining headroom with every level floored at its Pcap_min.
func combine(children []*summary, limit power.Watts) *summary {
	agg := newSummary()
	var childConstraints power.Watts
	for _, cm := range children {
		for _, p := range cm.prioritiesDesc() {
			cl := cm.levels[p]
			l := agg.level(p)
			l.capMin += cl.capMin
			l.demand += cl.demand
			l.request += cl.request
		}
		childConstraints += cm.constraint
	}
	if limit <= 0 {
		agg.constraint = childConstraints
	} else {
		agg.constraint = power.Min(limit, childConstraints)
	}

	prios := agg.prioritiesDesc()
	var capMinBelow power.Watts
	for _, p := range prios {
		capMinBelow += agg.levels[p].capMin
	}
	var requestAbove power.Watts
	for _, p := range prios {
		l := agg.levels[p]
		capMinBelow -= l.capMin
		allowable := agg.constraint - requestAbove - capMinBelow
		req := power.Min(allowable, l.request)
		req = power.Max(req, l.capMin)
		l.request = req
		requestAbove += req
	}
	return agg
}

// LevelGrant records how one distribution step treated one priority level:
// Want is the aggregate request beyond floors, Granted the watts actually
// handed out beyond floors.
type LevelGrant struct {
	Priority core.Priority
	Want     power.Watts
	Granted  power.Watts
}

// NodeLedger is the distribution record of one shifting controller.
type NodeLedger struct {
	NodeID string
	Budget power.Watts // budget distributed (after constraint clamp)
	// Levels in descending priority order. Absent when the budget could
	// not cover the children's minimums (the infeasible scaling path).
	Levels     []LevelGrant
	Infeasible bool
}

// Result is one reference allocation over one tree.
type Result struct {
	// NodeBudgets maps every node ID to its granted budget.
	NodeBudgets map[string]power.Watts
	// SupplyBudgets maps supply IDs (leaves) to their granted budgets.
	SupplyBudgets map[string]power.Watts
	// Infeasible is true when some budget could not cover the aggregate
	// Pcap_min beneath it.
	Infeasible bool
	// Ledger holds one distribution record per shifting controller, in
	// depth-first preorder.
	Ledger []NodeLedger
}

// Budget returns the granted budget for a supply ID (0 if absent).
func (r *Result) Budget(supplyID string) power.Watts { return r.SupplyBudgets[supplyID] }

// CheckPriorityOrdering verifies the paper's global priority claim on the
// recorded ledger: at every shifting controller, once a priority level's
// requests could not be fully met, no lower level received anything beyond
// its floor. It returns the first violation found.
func (r *Result) CheckPriorityOrdering() error {
	for _, nl := range r.Ledger {
		if nl.Infeasible {
			continue // floors scaled down; no level received extras
		}
		starved := false
		var starvedAt core.Priority
		for _, lg := range nl.Levels {
			if starved && lg.Granted > epsilon {
				return fmt.Errorf("refalloc: node %q granted %v beyond floors to priority %d while priority %d is starved",
					nl.NodeID, lg.Granted, lg.Priority, starvedAt)
			}
			if !starved && lg.Granted+epsilon < lg.Want {
				starved = true
				starvedAt = lg.Priority
			}
		}
	}
	return nil
}

// runner carries one allocation pass's state.
type runner struct {
	policy    core.Policy
	summaries map[*core.Node]*summary
	res       *Result
}

// Allocate runs the reference algorithm over one control tree: a bottom-up
// gathering pass followed by a top-down budgeting pass. A non-positive
// budget uses the root constraint, exactly as the production Allocate.
func Allocate(root *core.Node, budget power.Watts, policy core.Policy) (*Result, error) {
	if root == nil {
		return nil, fmt.Errorf("refalloc: nil tree")
	}
	if err := root.Validate(); err != nil {
		return nil, err
	}
	r := &runner{
		policy:    policy,
		summaries: make(map[*core.Node]*summary),
		res: &Result{
			NodeBudgets:   make(map[string]power.Watts),
			SupplyBudgets: make(map[string]power.Watts),
		},
	}
	rootSummary := r.gather(root)
	if budget <= 0 {
		budget = rootSummary.constraint
	}
	budget = power.Min(budget, rootSummary.constraint)
	if budget+epsilon < rootSummary.totalCapMin() {
		r.res.Infeasible = true
	}
	r.budget(root, budget)
	return r.res, nil
}

// gather computes the node's reported summary bottom-up, applying the
// policy's collapse rules: NoPriority collapses at the leaves (and
// proxies), LocalPriority at the lowest shifting level — the direct
// parents of capping-controller endpoints.
func (r *runner) gather(n *core.Node) *summary {
	var s *summary
	switch {
	case n.Proxy != nil:
		s = fromCore(n.Proxy)
		if r.policy == core.NoPriority {
			s = s.collapse()
		}
	case n.IsLeaf():
		s = leafSummary(n.Leaf)
		if r.policy == core.NoPriority {
			s = s.collapse()
		}
	default:
		children := make([]*summary, len(n.Children))
		leafParent := false
		for i, c := range n.Children {
			children[i] = r.gather(c)
			if c.IsLeaf() {
				leafParent = true
			}
		}
		s = combine(children, limitOrInf(n))
		if r.policy == core.LocalPriority && leafParent {
			s = s.collapse()
		}
	}
	r.summaries[n] = s
	return s
}

// budget distributes b down the subtree rooted at n (Section 4.3.2).
func (r *runner) budget(n *core.Node, b power.Watts) {
	s := r.summaries[n]
	b = power.Min(b, s.constraint)
	if b < 0 {
		b = 0
	}
	r.res.NodeBudgets[n.ID] = b
	if n.IsLeaf() {
		r.res.SupplyBudgets[n.Leaf.SupplyID] = b
		return
	}
	if len(n.Children) == 0 {
		return // proxy: the budget is the remote worker's to distribute
	}
	children := make([]*summary, len(n.Children))
	for i, c := range n.Children {
		children[i] = r.summaries[c]
	}
	allocs, ledger := distribute(b, children)
	ledger.NodeID = n.ID
	r.res.Ledger = append(r.res.Ledger, ledger)
	if ledger.Infeasible {
		r.res.Infeasible = true
	}
	for i, c := range n.Children {
		r.budget(c, allocs[i])
	}
}

// distribute implements one shifting controller's budgeting step
// (Section 4.3.2): floors first, then requests level by level highest
// priority first, the first level that cannot be met split by a
// demand-weighted waterfill, and any leftover assigned up to each child's
// constraint. It also records the per-level ledger.
func distribute(b power.Watts, children []*summary) ([]power.Watts, NodeLedger) {
	alloc := make([]power.Watts, len(children))
	var capMinTotal power.Watts
	for i, c := range children {
		alloc[i] = c.totalCapMin()
		capMinTotal += alloc[i]
	}
	if b < 0 {
		b = 0
	}
	ledger := NodeLedger{Budget: b}

	if b+epsilon < capMinTotal {
		// Infeasible: scale the floors proportionally.
		scale := float64(0)
		if capMinTotal > 0 {
			scale = float64(b / capMinTotal)
		}
		for i := range alloc {
			alloc[i] *= power.Watts(scale)
		}
		ledger.Infeasible = true
		return alloc, ledger
	}

	remaining := b - capMinTotal
	prios := unionDesc(children)

	exhausted := false
	for pi, j := range prios {
		wants := make([]power.Watts, len(children))
		var need power.Watts
		for i, c := range children {
			lj := c.at(j)
			w := lj.request - lj.capMin
			if w < 0 {
				w = 0
			}
			wants[i] = w
			need += w
		}
		if need <= remaining+epsilon {
			for i := range alloc {
				alloc[i] += wants[i]
			}
			remaining -= need
			if remaining < 0 {
				remaining = 0
			}
			ledger.Levels = append(ledger.Levels, LevelGrant{Priority: j, Want: need, Granted: need})
			continue
		}
		weights := make([]float64, len(children))
		for i, c := range children {
			lj := c.at(j)
			w := float64(lj.demand - lj.capMin)
			if w < 0 {
				w = 0
			}
			weights[i] = w
		}
		shares := waterfill(remaining, weights, wants)
		var granted power.Watts
		for i := range alloc {
			alloc[i] += shares[i]
			granted += shares[i]
		}
		ledger.Levels = append(ledger.Levels, LevelGrant{Priority: j, Want: need, Granted: granted})
		// Lower levels receive nothing beyond their floors; record them so
		// the ordering check sees the whole story.
		for _, jj := range prios[pi+1:] {
			var want power.Watts
			for _, c := range children {
				lj := c.at(jj)
				w := lj.request - lj.capMin
				if w < 0 {
					w = 0
				}
				want += w
			}
			ledger.Levels = append(ledger.Levels, LevelGrant{Priority: jj, Want: want})
		}
		remaining = 0
		exhausted = true
		break
	}

	if !exhausted && remaining > epsilon {
		// Step 4: every request met; hand out the rest up to constraints.
		headroom := make([]power.Watts, len(children))
		weights := make([]float64, len(children))
		for i, c := range children {
			h := c.constraint - alloc[i]
			if h < 0 {
				h = 0
			}
			headroom[i] = h
			weights[i] = float64(h)
		}
		shares := waterfill(remaining, weights, headroom)
		for i := range alloc {
			alloc[i] += shares[i]
		}
	}
	return alloc, ledger
}

// unionDesc collects the distinct priorities across children, descending.
func unionDesc(children []*summary) []core.Priority {
	set := make(map[core.Priority]bool)
	for _, c := range children {
		for p := range c.levels {
			set[p] = true
		}
	}
	out := make([]core.Priority, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// waterfill distributes amount across recipients proportionally to
// weights, capping each at caps[i] and re-offering overflow to the
// unsaturated until the amount is exhausted or everyone is saturated.
// The proportional-give expression matches the production waterfill so
// grants agree bitwise.
func waterfill(amount power.Watts, weights []float64, caps []power.Watts) []power.Watts {
	n := len(weights)
	shares := make([]power.Watts, n)
	saturated := make([]bool, n)
	if amount <= 0 {
		return shares
	}
	for iter := 0; iter < n+1 && amount > epsilon; iter++ {
		var wsum float64
		for i := 0; i < n; i++ {
			if !saturated[i] && caps[i]-shares[i] > epsilon {
				wsum += weights[i]
			}
		}
		if wsum <= 0 {
			// Equal split among whoever still has headroom.
			var open int
			for i := 0; i < n; i++ {
				if caps[i]-shares[i] > epsilon {
					open++
				}
			}
			if open == 0 {
				break
			}
			per := amount / power.Watts(open)
			var leftover power.Watts
			for i := 0; i < n; i++ {
				room := caps[i] - shares[i]
				if room <= epsilon {
					continue
				}
				give := power.Min(per, room)
				shares[i] += give
				leftover += per - give
			}
			amount = leftover
			continue
		}
		var overflow power.Watts
		for i := 0; i < n; i++ {
			if saturated[i] || caps[i]-shares[i] <= epsilon {
				continue
			}
			give := amount * power.Watts(weights[i]/wsum)
			room := caps[i] - shares[i]
			if give >= room {
				shares[i] = caps[i]
				overflow += give - room
				saturated[i] = true
			} else {
				shares[i] += give
			}
		}
		amount = overflow
	}
	return shares
}

// AllocateAll runs the reference algorithm independently over each tree,
// mirroring core.AllocateAll's budget conventions.
func AllocateAll(trees []*core.Node, budgets []power.Watts, policy core.Policy) ([]*Result, error) {
	if budgets != nil && len(budgets) != len(trees) {
		return nil, fmt.Errorf("refalloc: %d budgets for %d trees", len(budgets), len(trees))
	}
	results := make([]*Result, len(trees))
	for i, t := range trees {
		var b power.Watts
		if budgets != nil {
			b = budgets[i]
		}
		res, err := Allocate(t, b, policy)
		if err != nil {
			return nil, fmt.Errorf("refalloc: tree %d: %w", i, err)
		}
		results[i] = res
	}
	return results, nil
}
