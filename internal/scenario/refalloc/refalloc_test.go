package refalloc

import (
	"math/rand"
	"testing"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
)

// fig2Tree builds the paper's Figure 2 testbed as a control tree.
func fig2Tree() *core.Node {
	leaf := func(id string, pri core.Priority, demand power.Watts) *core.Node {
		return core.NewLeaf(id+"-ps", core.SupplyLeaf{
			SupplyID: id + "-ps",
			ServerID: id,
			Priority: pri,
			Share:    1,
			CapMin:   270,
			CapMax:   490,
			Demand:   demand,
		})
	}
	return core.NewShifting("top", 1400,
		core.NewShifting("left", 750, leaf("SA", 1, 420), leaf("SB", 0, 413)),
		core.NewShifting("right", 750, leaf("SC", 0, 417), leaf("SD", 0, 423)),
	)
}

// TestMatchesCoreOnFixture pins exact agreement with the production
// allocator on the Figure 2 tree for every policy and several budgets.
func TestMatchesCoreOnFixture(t *testing.T) {
	for _, policy := range []core.Policy{core.NoPriority, core.LocalPriority, core.GlobalPriority} {
		for _, budget := range []power.Watts{0, 1400, 1200, 1000, 900} {
			tree := fig2Tree()
			want, err := core.Allocate(tree, budget, policy)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Allocate(tree, budget, policy)
			if err != nil {
				t.Fatal(err)
			}
			if got.Infeasible != want.Infeasible {
				t.Fatalf("%v budget %v: infeasible %v, core %v", policy, budget, got.Infeasible, want.Infeasible)
			}
			for id, w := range want.NodeBudgets {
				if g := got.NodeBudgets[id]; g != w {
					t.Errorf("%v budget %v: node %s = %v, core %v", policy, budget, id, g, w)
				}
			}
			for id, w := range want.SupplyBudgets {
				if g := got.SupplyBudgets[id]; g != w {
					t.Errorf("%v budget %v: supply %s = %v, core %v", policy, budget, id, g, w)
				}
			}
			if err := got.CheckPriorityOrdering(); err != nil {
				t.Errorf("%v budget %v: %v", policy, budget, err)
			}
		}
	}
}

// TestMatchesCoreOnRandomTrees compares against core.Allocate across
// random deeper trees with mixed priorities, shares, and limits.
func TestMatchesCoreOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		tree, _ := randomTree(rng, 0)
		policy := []core.Policy{core.NoPriority, core.LocalPriority, core.GlobalPriority}[rng.Intn(3)]
		budget := power.Watts(rng.Float64() * 8000)
		want, err := core.Allocate(tree, budget, policy)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Allocate(tree, budget, policy)
		if err != nil {
			t.Fatal(err)
		}
		for id, w := range want.NodeBudgets {
			if g := got.NodeBudgets[id]; g != w {
				t.Fatalf("trial %d %v budget %v: node %s = %v, core %v (diff %g)",
					trial, policy, budget, id, g, w, float64(g-w))
			}
		}
		if got.Infeasible != want.Infeasible {
			t.Fatalf("trial %d: infeasible %v, core %v", trial, got.Infeasible, want.Infeasible)
		}
	}
}

var nodeSeq int

// randomTree builds a random control tree of depth ≤ 3 with 1–3 children
// per node; returns the tree and its leaf count.
func randomTree(rng *rand.Rand, depth int) (*core.Node, int) {
	nodeSeq++
	id := "n" + itoa(nodeSeq)
	if depth >= 3 || (depth > 0 && rng.Intn(3) == 0) {
		demand := power.Watts(160 + rng.Float64()*400)
		share := 0.3 + rng.Float64()*0.7
		return core.NewLeaf(id, core.SupplyLeaf{
			SupplyID: id,
			ServerID: "srv-" + id,
			Priority: core.Priority(rng.Intn(3)),
			Share:    share,
			CapMin:   270,
			CapMax:   490,
			Demand:   demand,
		}), 1
	}
	n := 1 + rng.Intn(3)
	var children []*core.Node
	leaves := 0
	for i := 0; i < n; i++ {
		c, nl := randomTree(rng, depth+1)
		children = append(children, c)
		leaves += nl
	}
	limit := power.Watts(0)
	if rng.Intn(2) == 0 {
		limit = power.Watts(float64(leaves) * (250 + rng.Float64()*300))
	}
	return core.NewShifting(id, limit, children...), leaves
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
