package core

import (
	"math"
	"math/rand"
	"testing"

	"capmaestro/internal/power"
)

// fig2Tree reproduces the hierarchy of Figure 2 / Section 3.2: a top CB
// (1400 W) over Left and Right CBs (750 W each), with server SA (high
// priority) and SB under the left CB and SC, SD under the right CB.
func fig2Tree(demA, demB, demC, demD power.Watts) *Node {
	return NewShifting("top", 1400,
		NewShifting("left", 750,
			leaf("SA-ps", "SA", 1, 1, demA),
			leaf("SB-ps", "SB", 0, 1, demB),
		),
		NewShifting("right", 750,
			leaf("SC-ps", "SC", 0, 1, demC),
			leaf("SD-ps", "SD", 0, 1, demD),
		),
	)
}

func wantBudget(t *testing.T, a *Allocation, supply string, want, tol power.Watts) {
	t.Helper()
	got := a.Budget(supply)
	if math.Abs(float64(got-want)) > float64(tol) {
		t.Errorf("budget[%s] = %v, want %v ± %v", supply, got, want, tol)
	}
}

// TestTable1GlobalPriority reproduces Table 1 exactly: under a 1240 W
// budget with equal 430 W demands, the global policy budgets SA its full
// demand and pins the three low-priority servers at Pcap_min.
func TestTable1GlobalPriority(t *testing.T) {
	tree := fig2Tree(430, 430, 430, 430)
	a := MustAllocate(tree, 1240, GlobalPriority)
	wantBudget(t, a, "SA-ps", 430, 0.001)
	wantBudget(t, a, "SB-ps", 270, 0.001)
	wantBudget(t, a, "SC-ps", 270, 0.001)
	wantBudget(t, a, "SD-ps", 270, 0.001)
	if err := a.CheckInvariants(tree); err != nil {
		t.Error(err)
	}
}

// TestTable1LocalPriority reproduces Table 1's local-priority column
// exactly: the top level splits 620/620 with no priority knowledge, so SA
// can only reach 350 W while SC and SD sit at 310 W each.
func TestTable1LocalPriority(t *testing.T) {
	tree := fig2Tree(430, 430, 430, 430)
	a := MustAllocate(tree, 1240, LocalPriority)
	wantBudget(t, a, "SA-ps", 350, 0.001)
	wantBudget(t, a, "SB-ps", 270, 0.001)
	wantBudget(t, a, "SC-ps", 310, 0.001)
	wantBudget(t, a, "SD-ps", 310, 0.001)
	if got := a.NodeBudgets["left"]; !power.ApproxEqual(got, 620, 0.001) {
		t.Errorf("left CB budget = %v, want 620", got)
	}
	if err := a.CheckInvariants(tree); err != nil {
		t.Error(err)
	}
}

// TestTable2Shapes checks the measured-demand variant (Table 2): the exact
// watt values in the paper come from a real system, so we assert the
// policy-defining shape with small tolerances.
func TestTable2Shapes(t *testing.T) {
	tree := fig2Tree(420, 413, 417, 423)

	np := MustAllocate(tree, 1240, NoPriority)
	// No Priority: everyone gets min + proportional share; paper reports
	// 314/306/311/316.
	wantBudget(t, np, "SA-ps", 314, 6)
	wantBudget(t, np, "SB-ps", 306, 6)
	wantBudget(t, np, "SC-ps", 311, 6)
	wantBudget(t, np, "SD-ps", 316, 6)

	lp := MustAllocate(tree, 1240, LocalPriority)
	// Local Priority: SA can only borrow from SB; paper reports
	// 344/274/314/317.
	wantBudget(t, lp, "SA-ps", 344, 8)
	wantBudget(t, lp, "SB-ps", 274, 8)
	wantBudget(t, lp, "SC-ps", 314, 8)
	wantBudget(t, lp, "SD-ps", 317, 8)

	gp := MustAllocate(tree, 1240, GlobalPriority)
	// Global Priority: SA gets its full demand; paper reports
	// 419/276/275/275.
	wantBudget(t, gp, "SA-ps", 420, 2)
	wantBudget(t, gp, "SB-ps", 274, 4)
	wantBudget(t, gp, "SC-ps", 274, 4)
	wantBudget(t, gp, "SD-ps", 274, 4)

	for _, a := range []*Allocation{np, lp, gp} {
		if err := a.CheckInvariants(tree); err != nil {
			t.Error(err)
		}
	}
}

func TestGlobalBeatsLocalBeatsNoneForHighPriority(t *testing.T) {
	tree := fig2Tree(430, 430, 430, 430)
	np := MustAllocate(tree, 1240, NoPriority).Budget("SA-ps")
	lp := MustAllocate(tree, 1240, LocalPriority).Budget("SA-ps")
	gp := MustAllocate(tree, 1240, GlobalPriority).Budget("SA-ps")
	if !(gp > lp && lp > np) {
		t.Errorf("SA budgets: global %v > local %v > none %v expected", gp, lp, np)
	}
}

func TestNoPriorityProportionality(t *testing.T) {
	// Flat tree, two servers: surplus beyond minimums splits proportionally
	// to demand − capmin.
	tree := NewShifting("root", 0,
		leaf("a", "A", 1, 1, 370), // demand-min = 100
		leaf("b", "B", 0, 1, 470), // demand-min = 200
	)
	a := MustAllocate(tree, 690, NoPriority) // 540 min + 150 surplus
	wantBudget(t, a, "a", 270+50, 0.001)
	wantBudget(t, a, "b", 270+100, 0.001)
}

func TestBudgetCoversAllDemand(t *testing.T) {
	// Total demand (1360 W) fits under the top CB (1400 W): every server
	// must receive at least its demand; step 4 may add surplus up to
	// Pconstraint.
	tree := fig2Tree(340, 340, 340, 340)
	a := MustAllocate(tree, 1400, GlobalPriority)
	for _, s := range []string{"SA-ps", "SB-ps", "SC-ps", "SD-ps"} {
		if got := a.Budget(s); got < 340-epsilon {
			t.Errorf("budget[%s] = %v, want at least demand 340", s, got)
		}
	}
	if err := a.CheckInvariants(tree); err != nil {
		t.Error(err)
	}
}

func TestBudgetClampedToTopCB(t *testing.T) {
	// A root budget above the top CB's limit is clamped: with demand 1600 W
	// against a 1400 W CB, the shortfall is shared by the low-priority
	// servers while SA stays whole.
	tree := fig2Tree(400, 400, 400, 400)
	a := MustAllocate(tree, 1600, GlobalPriority)
	wantBudget(t, a, "SA-ps", 400, 0.001)
	var total power.Watts
	for _, s := range []string{"SA-ps", "SB-ps", "SC-ps", "SD-ps"} {
		total += a.Budget(s)
	}
	if total > 1400+epsilon {
		t.Errorf("total %v exceeds top CB 1400", total)
	}
	if err := a.CheckInvariants(tree); err != nil {
		t.Error(err)
	}
}

func TestStep4SurplusUpToConstraint(t *testing.T) {
	// Budget beyond total demand: surplus flows to leaves, but never past
	// each leaf's Pconstraint (r × CapMax), and never past CB limits.
	tree := fig2Tree(300, 300, 300, 300)
	a := MustAllocate(tree, 4000, GlobalPriority)
	var total power.Watts
	for _, s := range []string{"SA-ps", "SB-ps", "SC-ps", "SD-ps"} {
		b := a.Budget(s)
		if b < 300-0.001 {
			t.Errorf("budget[%s] = %v, want at least demand", s, b)
		}
		if b > 490+0.001 {
			t.Errorf("budget[%s] = %v exceeds CapMax", s, b)
		}
		total += b
	}
	if lb := a.NodeBudgets["left"]; lb > 750+epsilon {
		t.Errorf("left CB budget %v exceeds 750 limit", lb)
	}
	if err := a.CheckInvariants(tree); err != nil {
		t.Error(err)
	}
}

func TestCBLimitTruncatesRequests(t *testing.T) {
	// A 600 W CB over two 430 W-demand servers forces capping even though
	// the root budget is plentiful.
	tree := NewShifting("root", 0,
		NewShifting("cb", 600,
			leaf("a", "A", 0, 1, 430),
			leaf("b", "B", 0, 1, 430),
		),
	)
	a := MustAllocate(tree, 5000, GlobalPriority)
	sum := a.Budget("a") + a.Budget("b")
	if sum > 600+epsilon {
		t.Errorf("children sum %v exceeds CB limit 600", sum)
	}
	if math.Abs(float64(sum-600)) > 0.001 {
		t.Errorf("children sum %v should use the full 600 CB allowance", sum)
	}
}

func TestHighPriorityProtectedAcrossCBs(t *testing.T) {
	// The defining global-priority property: the high-priority server is
	// uncapped while remote low-priority servers under a different CB give
	// up power, as long as CB limits allow.
	tree := fig2Tree(430, 430, 430, 430)
	a := MustAllocate(tree, 1300, GlobalPriority)
	wantBudget(t, a, "SA-ps", 430, 0.001)
	low := []power.Watts{a.Budget("SB-ps"), a.Budget("SC-ps"), a.Budget("SD-ps")}
	for _, b := range low {
		if b < 270-epsilon {
			t.Errorf("low-priority budget %v below Pcap_min", b)
		}
	}
}

func TestHighPriorityBoundedByOwnCB(t *testing.T) {
	// Even a high-priority server cannot exceed its own breaker's limit:
	// two high-priority servers under a 700 W CB share it.
	tree := NewShifting("root", 0,
		NewShifting("cb1", 700,
			leaf("a", "A", 1, 1, 430),
			leaf("b", "B", 1, 1, 430),
		),
		NewShifting("cb2", 750,
			leaf("c", "C", 0, 1, 430),
		),
	)
	a := MustAllocate(tree, 2000, GlobalPriority)
	if sum := a.Budget("a") + a.Budget("b"); sum > 700+epsilon {
		t.Errorf("high-priority pair %v exceeds CB 700", sum)
	}
	// The low-priority server keeps at least its demand: it is not under
	// the constrained CB, so no power can usefully move away from it
	// (step 4 may add surplus up to its 490 W constraint).
	if got := a.Budget("c"); got < 430-epsilon || got > 490+epsilon {
		t.Errorf("budget[c] = %v, want in [430, 490]", got)
	}
}

func TestThreePriorityLevels(t *testing.T) {
	tree := NewShifting("root", 0,
		leaf("h", "H", 2, 1, 490),
		leaf("m", "M", 1, 1, 490),
		leaf("l", "L", 0, 1, 490),
	)
	// 1250 W: H fully satisfied (490), M gets what remains above L's min:
	// 1250 − 490 − 270 = 490 → M = 490? No: M's request is bounded by
	// constraint − request(H) − capmin(L). Here constraint = ∞→sum caps =
	// 1470. allowable = 1470 − 490 − 270 = 710, so M requests min(710,490)
	// = 490. Budget: mins 810, rem 440; H wants 220 → rem 220; M wants 220
	// → rem 0; L stays at 270.
	a := MustAllocate(tree, 1250, GlobalPriority)
	wantBudget(t, a, "h", 490, 0.001)
	wantBudget(t, a, "m", 490, 0.001)
	wantBudget(t, a, "l", 270, 0.001)
}

func TestMidPriorityPartiallyCapped(t *testing.T) {
	tree := NewShifting("root", 0,
		leaf("h", "H", 2, 1, 490),
		leaf("m1", "M1", 1, 1, 490),
		leaf("m2", "M2", 1, 1, 400),
		leaf("l", "L", 0, 1, 490),
	)
	// mins 1080; budget 1500 → rem 420; H wants 220 → rem 200;
	// M wants 220+130=350 > 200 → proportional by demand−min (220:130):
	// m1 += 125.7, m2 += 74.3.
	a := MustAllocate(tree, 1500, GlobalPriority)
	wantBudget(t, a, "h", 490, 0.001)
	wantBudget(t, a, "m1", 395.71, 0.01)
	wantBudget(t, a, "m2", 344.29, 0.01)
	wantBudget(t, a, "l", 270, 0.001)
}

func TestInfeasibleBudgetScalesMinimums(t *testing.T) {
	tree := fig2Tree(430, 430, 430, 430)
	a := MustAllocate(tree, 540, GlobalPriority) // < 4 × 270
	if !a.Infeasible {
		t.Fatal("expected Infeasible flag")
	}
	var total power.Watts
	for _, s := range []string{"SA-ps", "SB-ps", "SC-ps", "SD-ps"} {
		total += a.Budget(s)
	}
	if math.Abs(float64(total-540)) > 0.01 {
		t.Errorf("scaled minimums total %v, want 540", total)
	}
}

func TestDemandBelowCapMinStillBudgetsMin(t *testing.T) {
	// A lightly loaded server (demand below Pcap_min) must still be
	// budgeted at least Pcap_min, or a later load increase would make the
	// cap unenforceable (Section 4.3.1).
	tree := NewShifting("root", 0,
		leaf("a", "A", 0, 1, 180),
		leaf("b", "B", 0, 1, 490),
	)
	a := MustAllocate(tree, 760, GlobalPriority)
	if got := a.Budget("a"); got < 270-epsilon {
		t.Errorf("light server budget %v below Pcap_min", got)
	}
}

func TestDemandAboveCapMaxClamped(t *testing.T) {
	tree := NewShifting("root", 0, leaf("a", "A", 0, 1, 800))
	a := MustAllocate(tree, 1000, GlobalPriority)
	if got := a.Budget("a"); got > 490+epsilon {
		t.Errorf("budget %v exceeds CapMax 490", got)
	}
}

func TestSupplyShareScalesMetrics(t *testing.T) {
	// A supply carrying 65% of the server load scales all level-1 metrics
	// by r = 0.65 (Section 4.3.1).
	m := LeafSummary(&SupplyLeaf{
		SupplyID: "a", ServerID: "A", Share: 0.65,
		CapMin: 270, CapMax: 490, Demand: 400,
	})
	if got := m.CapMin(0); !power.ApproxEqual(got, 0.65*270, 1e-9) {
		t.Errorf("capMin = %v, want %v", got, 0.65*270)
	}
	if got := m.Request(0); !power.ApproxEqual(got, 0.65*400, 1e-9) {
		t.Errorf("request = %v, want %v", got, 0.65*400)
	}
	if got := m.Constraint; !power.ApproxEqual(got, 0.65*490, 1e-9) {
		t.Errorf("constraint = %v, want %v", got, 0.65*490)
	}
	// Demand below CapMin is lifted to CapMin (budget must stay
	// enforceable).
	m = LeafSummary(&SupplyLeaf{
		SupplyID: "a", ServerID: "A", Share: 1,
		CapMin: 270, CapMax: 490, Demand: 180,
	})
	if got := m.Demand(0); !power.ApproxEqual(got, 270, 1e-9) {
		t.Errorf("lifted demand = %v, want 270", got)
	}
	// The SPO BudgetCap pins every metric at the usable value.
	m = LeafSummary(&SupplyLeaf{
		SupplyID: "a", ServerID: "A", Share: 1,
		CapMin: 270, CapMax: 490, Demand: 480, BudgetCap: 300,
	})
	if m.CapMin(0) != 300 || m.Demand(0) != 300 || m.Request(0) != 300 || m.Constraint != 300 {
		t.Errorf("pinned metrics = %+v, want all 300", m)
	}
}

func TestZeroBudgetUsesConstraint(t *testing.T) {
	tree := fig2Tree(430, 430, 430, 430)
	a := MustAllocate(tree, 0, GlobalPriority)
	// Root constraint = min(1400, left 750→min(750,980), right …) = 1400.
	// With 1400 W: SA 430, then low levels absorb the rest.
	wantBudget(t, a, "SA-ps", 430, 0.001)
	if err := a.CheckInvariants(tree); err != nil {
		t.Error(err)
	}
}

func TestAllocateErrors(t *testing.T) {
	if _, err := Allocate(nil, 100, GlobalPriority); err == nil {
		t.Error("nil tree should fail")
	}
	bad := NewShifting("r", 100)
	if _, err := Allocate(bad, 100, GlobalPriority); err == nil {
		t.Error("invalid tree should fail")
	}
}

func TestMustAllocatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustAllocate(nil, 100, GlobalPriority)
}

func TestPolicyString(t *testing.T) {
	if NoPriority.String() != "No Priority" ||
		LocalPriority.String() != "Local Priority" ||
		GlobalPriority.String() != "Global Priority" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy formatting wrong")
	}
}

func TestWaterfill(t *testing.T) {
	shares := waterfill(100, []float64{1, 1}, []power.Watts{100, 100})
	if !power.ApproxEqual(shares[0], 50, 0.001) || !power.ApproxEqual(shares[1], 50, 0.001) {
		t.Errorf("even split wrong: %v", shares)
	}
	// Cap saturates the first recipient; overflow goes to the second.
	shares = waterfill(100, []float64{3, 1}, []power.Watts{30, 100})
	if !power.ApproxEqual(shares[0], 30, 0.001) || !power.ApproxEqual(shares[1], 70, 0.001) {
		t.Errorf("cap redistribution wrong: %v", shares)
	}
	// Zero weights with open caps: equal split fallback.
	shares = waterfill(60, []float64{0, 0, 0}, []power.Watts{100, 100, 5})
	var total power.Watts
	for _, s := range shares {
		total += s
	}
	if !power.ApproxEqual(total, 60, 0.001) {
		t.Errorf("zero-weight fallback leaks power: %v", shares)
	}
	// Everyone saturated: leftover is returned unassigned.
	shares = waterfill(100, []float64{1}, []power.Watts{20})
	if !power.ApproxEqual(shares[0], 20, 0.001) {
		t.Errorf("saturation wrong: %v", shares)
	}
	// Non-positive amount.
	shares = waterfill(0, []float64{1}, []power.Watts{10})
	if shares[0] != 0 {
		t.Error("zero amount should assign nothing")
	}
}

// randomTree builds a random 3-level control tree for property testing.
func randomTree(rng *rand.Rand, unlimitedCBs bool) *Node {
	nGroups := 2 + rng.Intn(3)
	var groups []*Node
	serverN := 0
	for g := 0; g < nGroups; g++ {
		nLeaves := 1 + rng.Intn(4)
		var leaves []*Node
		for l := 0; l < nLeaves; l++ {
			serverN++
			id := string(rune('a'+g)) + string(rune('0'+l))
			prio := Priority(rng.Intn(3))
			demand := power.Watts(200 + rng.Float64()*300)
			leaves = append(leaves, leaf(id, "S"+id, prio, 1, demand))
		}
		limit := power.Watts(0)
		if !unlimitedCBs {
			// Keep every CB able to carry its leaves' Pcap_min (270 W each)
			// so configurations stay feasible, while still exerting
			// pressure below peak demand.
			limit = power.Watts(float64(nLeaves) * (280 + rng.Float64()*300))
		}
		groups = append(groups, NewShifting("g"+string(rune('a'+g)), limit, leaves...))
	}
	return NewShifting("root", 0, groups...)
}

func TestPropertyInvariantsRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		tree := randomTree(rng, false)
		budget := power.Watts(200*len(tree.Leaves())) + power.Watts(rng.Float64()*2000)
		for _, pol := range []Policy{NoPriority, LocalPriority, GlobalPriority} {
			a, err := Allocate(tree, budget, pol)
			if err != nil {
				t.Fatalf("iter %d policy %v: %v", i, pol, err)
			}
			if err := a.CheckInvariants(tree); err != nil {
				t.Fatalf("iter %d policy %v: %v", i, pol, err)
			}
		}
	}
}

// TestPropertyGlobalPriorityOrdering verifies the theorem of Section 4.3:
// with unconstrained intermediate CBs, a higher-priority server is capped
// only after every lower-priority server in the tree is at its minimum.
func TestPropertyGlobalPriorityOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		tree := randomTree(rng, true)
		leaves := tree.Leaves()
		budget := power.Watts(float64(len(leaves)) * (270 + rng.Float64()*200))
		a, err := Allocate(tree, budget, GlobalPriority)
		if err != nil {
			t.Fatal(err)
		}
		if a.Infeasible {
			continue
		}
		for _, hi := range leaves {
			hb := a.Budget(hi.Leaf.SupplyID)
			hReq := power.Min(power.Max(hi.Leaf.Demand, hi.Leaf.CapMin), hi.Leaf.CapMax)
			if hb >= hReq-0.01 {
				continue // not capped
			}
			for _, lo := range leaves {
				if lo.Leaf.Priority >= hi.Leaf.Priority {
					continue
				}
				lb := a.Budget(lo.Leaf.SupplyID)
				if lb > lo.Leaf.CapMin+0.01 {
					t.Fatalf("iter %d: %s (prio %d) capped at %v while %s (prio %d) holds %v above min",
						i, hi.ID, hi.Leaf.Priority, hb, lo.ID, lo.Leaf.Priority, lb)
				}
			}
		}
	}
}

// TestPropertyBindingConstraintJustifiesCapping: with finite CBs, whenever
// a high-priority leaf is capped while some lower-priority leaf holds power
// above its minimum, there must be a binding limit on the path from their
// lowest common ancestor to the high leaf — otherwise power could move.
func TestPropertyBindingConstraintJustifiesCapping(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 200; i++ {
		tree := randomTree(rng, false)
		leaves := tree.Leaves()
		budget := power.Watts(float64(len(leaves)) * (270 + rng.Float64()*200))
		a, err := Allocate(tree, budget, GlobalPriority)
		if err != nil {
			t.Fatal(err)
		}
		if a.Infeasible {
			continue
		}
		parentOf := map[*Node]*Node{}
		tree.Walk(func(n *Node) {
			for _, c := range n.Children {
				parentOf[c] = n
			}
		})
		pathToRoot := func(n *Node) []*Node {
			var p []*Node
			for cur := n; cur != nil; cur = parentOf[cur] {
				p = append(p, cur)
			}
			return p
		}
		for _, hi := range leaves {
			hb := a.Budget(hi.Leaf.SupplyID)
			hReq := power.Min(power.Max(hi.Leaf.Demand, hi.Leaf.CapMin), hi.Leaf.CapMax)
			if hb >= hReq-0.01 {
				continue
			}
			for _, lo := range leaves {
				if lo.Leaf.Priority >= hi.Leaf.Priority {
					continue
				}
				if a.Budget(lo.Leaf.SupplyID) <= lo.Leaf.CapMin+0.01 {
					continue
				}
				// A transfer from lo to hi is blocked only by a binding
				// limit strictly below their lowest common ancestor on hi's
				// side; shifting controllers at or above the LCA merely
				// redistribute a fixed sum.
				loPath := map[*Node]bool{}
				for _, n := range pathToRoot(lo) {
					loPath[n] = true
				}
				binding := false
				for _, n := range pathToRoot(hi) {
					if loPath[n] {
						break // reached the LCA
					}
					limit := n.limitOrInf()
					if !math.IsInf(float64(limit), 1) && a.NodeBudgets[n.ID] >= limit-0.01 {
						binding = true
						break
					}
				}
				if !binding {
					t.Fatalf("iter %d: %s capped but no binding constraint blocks transfer from %s",
						i, hi.ID, lo.ID)
				}
			}
		}
	}
}

// TestLocalPriorityAsymmetricDepth documents the Dynamo-style boundary in
// an asymmetric tree: a node is "local" (priority-aware) exactly when it
// directly parents capping-controller endpoints, wherever that occurs. The
// root here parents a leaf directly, so it is itself a leaf-parent and
// stays priority-aware even under LocalPriority.
func TestLocalPriorityAsymmetricDepth(t *testing.T) {
	tree := NewShifting("root", 0,
		leaf("direct-hi", "H", 1, 1, 490),
		NewShifting("group", 750,
			leaf("g-lo1", "L1", 0, 1, 490),
			leaf("g-lo2", "L2", 0, 1, 490),
		),
	)
	a := MustAllocate(tree, 1100, LocalPriority)
	// Root sees the direct leaf's priority: the high-priority server is
	// protected against the group, which collapses to a single level.
	wantBudget(t, a, "direct-hi", 490, 0.001)
	if got := a.Budget("g-lo1") + a.Budget("g-lo2"); got > 610+epsilon {
		t.Errorf("group total %v exceeds remainder", got)
	}
	if err := a.CheckInvariants(tree); err != nil {
		t.Error(err)
	}
}

// TestProxyNodeAllocation: proxy nodes receive budgets but no supply
// budgets (their remote workers distribute locally), and their summaries
// participate in priority-aware budgeting.
func TestProxyNodeAllocation(t *testing.T) {
	rack := NewShifting("rack", 750,
		leaf("r-hi", "RH", 1, 1, 490),
		leaf("r-lo", "RL", 0, 1, 490),
	)
	summary, err := Summarize(rack, GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewShifting("room", 0,
		NewProxy("rack-proxy", summary),
		leaf("local-lo", "LL", 0, 1, 490),
	)
	a := MustAllocate(tree, 1100, GlobalPriority)
	// The rack wants 490 (high) + 270 (low min) = 760 W, but its own
	// 750 W breaker caps its constraint; the proxy receives exactly the
	// constraint.
	if got := a.NodeBudgets["rack-proxy"]; !power.ApproxEqual(got, 750, 0.001) {
		t.Errorf("proxy budget = %v, want 750 (rack CB constraint)", got)
	}
	if got := a.Budget("local-lo"); got < 270-epsilon {
		t.Errorf("local low budget = %v", got)
	}
	if _, ok := a.SupplyBudgets["r-hi"]; ok {
		t.Error("proxy subtree supplies must not appear in SupplyBudgets")
	}
	if err := a.CheckInvariants(tree); err != nil {
		t.Error(err)
	}
}
