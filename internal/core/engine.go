package core

import (
	"fmt"

	"capmaestro/internal/power"
)

// flatNode is one tree node's entry in an Allocator's flattened layout.
type flatNode struct {
	node *Node
	// childStart/childEnd delimit the node's children in the BFS-ordered
	// node array (children of one node are contiguous in BFS order).
	childStart, childEnd int
	// leafParent marks lowest-level shifting controllers (direct parents
	// of capping-controller endpoints), where LocalPriority collapses.
	leafParent bool
	limit      power.Watts // limitOrInf, precomputed
}

// Allocator is a reusable budgeting engine bound to one control tree. It
// flattens the tree into index-addressed arrays once (validating it once)
// and reuses all working storage — per-node summaries, budgets, and
// waterfill scratch — across passes, so a steady-state Run allocates
// nothing. This is the engine under the Monte Carlo capacity studies,
// where the same trees are re-budgeted tens of thousands of times with
// only leaf demands and priorities changing between runs.
//
// The Allocator reads the tree's leaves afresh on every Run, so callers
// may mutate leaf Demand, Priority, Share, and BudgetCap between runs.
// Structural changes (adding or removing nodes) require a new Allocator.
// An Allocator is not safe for concurrent use; parallel studies run one
// replica per worker.
type Allocator struct {
	nodes      []flatNode    // BFS (top-down) order; index 0 is the root
	summaries  []Summary     // by node index; reused across runs
	budgets    []power.Watts // by node index; the last Run's result
	byID       map[string]int
	scratch    distScratch
	infeasible bool
	sink       ExplainSink // optional per-node audit stream; nil = free
}

// NewAllocator validates the tree and flattens it for repeated allocation.
func NewAllocator(root *Node) (*Allocator, error) {
	if root == nil {
		return nil, fmt.Errorf("core: nil tree")
	}
	if err := root.Validate(); err != nil {
		return nil, err
	}
	a := &Allocator{byID: make(map[string]int)}
	// Breadth-first layout: a node's children occupy a contiguous index
	// range, so child summaries and budgets can be passed as slices.
	queue := []*Node{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		a.byID[n.ID] = len(a.nodes)
		a.nodes = append(a.nodes, flatNode{node: n, limit: n.limitOrInf()})
		queue = append(queue, n.Children...)
	}
	// Second pass: child ranges follow from BFS order.
	next := 1
	for i := range a.nodes {
		fn := &a.nodes[i]
		fn.childStart = next
		next += len(fn.node.Children)
		fn.childEnd = next
		for _, c := range fn.node.Children {
			if c.IsLeaf() {
				fn.leafParent = true
				break
			}
		}
	}
	a.summaries = make([]Summary, len(a.nodes))
	a.budgets = make([]power.Watts, len(a.nodes))
	return a, nil
}

// Len returns the number of tree nodes under the allocator.
func (a *Allocator) Len() int { return len(a.nodes) }

// NodeIndex returns the index of the node with the given ID.
func (a *Allocator) NodeIndex(id string) (int, bool) {
	i, ok := a.byID[id]
	return i, ok
}

// NodeBudget returns the budget the last Run assigned to node index i.
func (a *Allocator) NodeBudget(i int) power.Watts { return a.budgets[i] }

// Infeasible reports whether the last Run found some budget unable to
// cover the aggregate Pcap_min beneath it.
func (a *Allocator) Infeasible() bool { return a.infeasible }

// gather runs the metrics gathering phase bottom-up (reverse BFS order),
// leaving each node's reported summary — possibly priority-collapsed,
// depending on the policy — in a.summaries.
func (a *Allocator) gather(policy Policy) {
	for i := len(a.nodes) - 1; i >= 0; i-- {
		fn := &a.nodes[i]
		n := fn.node
		s := &a.summaries[i]
		switch {
		case n.Proxy != nil:
			// Externally summarized subtree (a remote worker's report).
			s.copyFrom(n.Proxy)
			if policy == NoPriority {
				s.collapseFrom(s)
			}
		case n.IsLeaf():
			leafMetricsInto(s, n.Leaf)
			if policy == NoPriority {
				s.collapseFrom(s)
			}
		default:
			combineInto(s, a.summaries[fn.childStart:fn.childEnd], fn.limit)
			// A Dynamo-style local policy reports priority-collapsed
			// metrics above the lowest shifting level; a No Priority
			// policy sees a single level everywhere (leaves already
			// collapsed).
			if policy == LocalPriority && fn.leafParent {
				s.collapseFrom(s)
			}
		}
	}
}

// Run performs one gather + budgeting pass under the given policy and root
// budget (non-positive uses the root constraint), reusing all scratch. It
// reports whether the allocation was infeasible; per-node results are read
// with NodeBudget/SupplyBudgets/Snapshot. Run never fails: the tree was
// validated when the Allocator was built.
func (a *Allocator) Run(budget power.Watts, policy Policy) (infeasible bool) {
	a.gather(policy)
	a.infeasible = false

	rootSummary := &a.summaries[0]
	if budget <= 0 {
		budget = rootSummary.Constraint
	}
	budget = power.Min(budget, rootSummary.Constraint)
	if budget+epsilon < rootSummary.TotalCapMin() {
		a.infeasible = true
	}

	// Budgeting phase (Section 4.3.2), top-down in BFS order: each node's
	// budget is clamped to its constraint and split among its children
	// directly into their budget slots.
	a.budgets[0] = budget
	for i := range a.nodes {
		fn := &a.nodes[i]
		b := power.Min(a.budgets[i], a.summaries[i].Constraint)
		if b < 0 {
			b = 0
		}
		a.budgets[i] = b
		if fn.childStart == fn.childEnd {
			continue // leaf or proxy: the budget is the result
		}
		children := a.summaries[fn.childStart:fn.childEnd]
		if distributeInto(b, children, a.budgets[fn.childStart:fn.childEnd], &a.scratch) {
			a.infeasible = true
		}
	}
	if a.sink != nil {
		a.explainAll()
	}
	return a.infeasible
}

// Summarize runs the gathering phase only and returns a copy of the
// summary the root would report upstream under the given policy.
func (a *Allocator) Summarize(policy Policy) Summary {
	a.gather(policy)
	return a.summaries[0].Clone()
}

// Snapshot materializes the last Run as a map-based Allocation, the
// portable result shape the one-shot Allocate API returns.
func (a *Allocator) Snapshot() *Allocation {
	res := &Allocation{
		SupplyBudgets: make(map[string]power.Watts),
		NodeBudgets:   make(map[string]power.Watts, len(a.nodes)),
		Infeasible:    a.infeasible,
	}
	for i := range a.nodes {
		n := a.nodes[i].node
		res.NodeBudgets[n.ID] = a.budgets[i]
		if n.IsLeaf() {
			res.SupplyBudgets[n.Leaf.SupplyID] = a.budgets[i]
		}
	}
	return res
}
