package core

import (
	"math"
	"math/rand"
	"testing"

	"capmaestro/internal/power"
)

// randomDualFeedTrees builds two feed trees over a random population of
// dual-corded servers with random split mismatches — the environment where
// SPO matters. Each feed gets a random budget that forces some capping.
func randomDualFeedTrees(rng *rand.Rand) (trees []*Node, budgets []power.Watts) {
	n := 3 + rng.Intn(6)
	var xLeaves, yLeaves []*Node
	for i := 0; i < n; i++ {
		id := string(rune('a' + i))
		prio := Priority(rng.Intn(2))
		demand := power.Watts(300 + rng.Float64()*190)
		xShare := 0.35 + 0.3*rng.Float64()
		switch rng.Intn(5) {
		case 0: // X-only server
			xLeaves = append(xLeaves, NewLeaf(id+"-x", SupplyLeaf{
				SupplyID: id + "-x", ServerID: id, Priority: prio, Share: 1,
				CapMin: 270, CapMax: 490, Demand: demand}))
		case 1: // Y-only server
			yLeaves = append(yLeaves, NewLeaf(id+"-y", SupplyLeaf{
				SupplyID: id + "-y", ServerID: id, Priority: prio, Share: 1,
				CapMin: 270, CapMax: 490, Demand: demand}))
		default: // dual-corded with mismatch
			xLeaves = append(xLeaves, NewLeaf(id+"-x", SupplyLeaf{
				SupplyID: id + "-x", ServerID: id, Priority: prio, Share: xShare,
				CapMin: 270, CapMax: 490, Demand: demand}))
			yLeaves = append(yLeaves, NewLeaf(id+"-y", SupplyLeaf{
				SupplyID: id + "-y", ServerID: id, Priority: prio, Share: 1 - xShare,
				CapMin: 270, CapMax: 490, Demand: demand}))
		}
	}
	if len(xLeaves) == 0 || len(yLeaves) == 0 {
		// Ensure both feeds have at least one leaf so trees validate.
		extra := NewLeaf("z-x", SupplyLeaf{SupplyID: "z-x", ServerID: "z", Share: 1,
			CapMin: 270, CapMax: 490, Demand: 400})
		if len(xLeaves) == 0 {
			xLeaves = append(xLeaves, extra)
		} else {
			extra = NewLeaf("z-y", SupplyLeaf{SupplyID: "z-y", ServerID: "z", Share: 1,
				CapMin: 270, CapMax: 490, Demand: 400})
			yLeaves = append(yLeaves, extra)
		}
	}
	x := NewShifting("x", 0, xLeaves...)
	y := NewShifting("y", 0, yLeaves...)
	budX := sumCapMin(xLeaves) + power.Watts(rng.Float64()*300)
	budY := sumCapMin(yLeaves) + power.Watts(rng.Float64()*300)
	return []*Node{x, y}, []power.Watts{budX, budY}
}

func sumCapMin(leaves []*Node) power.Watts {
	var t power.Watts
	for _, l := range leaves {
		t += power.Watts(l.Leaf.Share) * l.Leaf.CapMin
	}
	return t
}

// TestPropertySPONeverHurts: across random dual-feed populations, the
// stranded power optimization never reduces any server's achievable
// consumption, nor the total. This holds because the second pass *pins*
// each stranded supply at exactly its usable power; a naive implementation
// that merely caps the supply's demand shrinks its proportional weight in
// step 3 and lets the re-run take usable watts away from the donor (a bug
// this property caught).
func TestPropertySPONeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 200; i++ {
		trees, budgets := randomDualFeedTrees(rng)
		before, err := AllocateAll(trees, budgets, GlobalPriority)
		if err != nil {
			t.Fatal(err)
		}
		consBefore := PredictConsumption(trees, before)
		after, report, err := AllocateWithSPO(trees, budgets, GlobalPriority)
		if err != nil {
			t.Fatal(err)
		}
		consAfter := PredictConsumption(trees, after)
		for srv, b := range consBefore {
			if consAfter[srv] < b-0.5 {
				t.Fatalf("iter %d: SPO reduced %s consumption %v -> %v (stranded %v)",
					i, srv, b, consAfter[srv], report.TotalStranded)
			}
		}
		// Total consumption must not decrease (beyond float noise).
		var totB, totA power.Watts
		for srv := range consBefore {
			totB += consBefore[srv]
			totA += consAfter[srv]
		}
		if totA < totB-0.5 {
			t.Fatalf("iter %d: SPO reduced total consumption %v -> %v", i, totB, totA)
		}
	}
}

// TestPropertySPOReportConsistent: every reported stranded watt is
// positive, attributed to a real supply, and bounded by the first-pass
// budget.
func TestPropertySPOReportConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for i := 0; i < 200; i++ {
		trees, budgets := randomDualFeedTrees(rng)
		first, err := AllocateAll(trees, budgets, GlobalPriority)
		if err != nil {
			t.Fatal(err)
		}
		_, report, err := AllocateWithSPO(trees, budgets, GlobalPriority)
		if err != nil {
			t.Fatal(err)
		}
		var sum power.Watts
		for _, s := range report.Stranded {
			if s.Stranded <= 0 {
				t.Fatalf("iter %d: non-positive stranded entry %+v", i, s)
			}
			if s.Usable < 0 || s.Usable > s.Budget+0.001 {
				t.Fatalf("iter %d: usable out of range %+v", i, s)
			}
			budget := first[0].Budget(s.SupplyID)
			if b, ok := first[1].SupplyBudgets[s.SupplyID]; ok {
				budget = b
			}
			if math.Abs(float64(s.Budget-budget)) > 0.001 {
				t.Fatalf("iter %d: reported budget %v != allocated %v", i, s.Budget, budget)
			}
			sum += s.Stranded
		}
		if math.Abs(float64(sum-report.TotalStranded)) > 0.01 {
			t.Fatalf("iter %d: stranded sum %v != total %v", i, sum, report.TotalStranded)
		}
	}
}

// TestPropertyAllocationDeterministic: identical trees and budgets produce
// identical allocations — required for the distributed control plane,
// where racks re-derive budgets every period.
func TestPropertyAllocationDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 100; i++ {
		trees, budgets := randomDualFeedTrees(rng)
		for _, policy := range []Policy{NoPriority, LocalPriority, GlobalPriority} {
			a1, err := AllocateAll(trees, budgets, policy)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := AllocateAll(trees, budgets, policy)
			if err != nil {
				t.Fatal(err)
			}
			for ti := range a1 {
				for id, b := range a1[ti].SupplyBudgets {
					if a2[ti].SupplyBudgets[id] != b {
						t.Fatalf("iter %d policy %v: nondeterministic budget for %s: %v vs %v",
							i, policy, id, b, a2[ti].SupplyBudgets[id])
					}
				}
			}
		}
	}
}

// TestPropertyBudgetConservation: the sum of leaf budgets never exceeds
// the root budget, and with ample budget every leaf reaches at least its
// effective demand.
func TestPropertyBudgetConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < 200; i++ {
		tree := randomTree(rng, false)
		leaves := tree.Leaves()
		budget := power.Watts(float64(len(leaves)) * (270 + rng.Float64()*250))
		a, err := Allocate(tree, budget, GlobalPriority)
		if err != nil {
			t.Fatal(err)
		}
		var sum power.Watts
		for _, l := range leaves {
			sum += a.Budget(l.Leaf.SupplyID)
		}
		if sum > budget+0.001 {
			t.Fatalf("iter %d: leaf budgets %v exceed root budget %v", i, sum, budget)
		}
	}
}
