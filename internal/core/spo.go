package core

import (
	"fmt"
	"math"
	"sort"

	"capmaestro/internal/power"
)

// serverView aggregates, across all control trees (feeds), the leaves that
// belong to one server.
type serverView struct {
	leaves []*SupplyLeaf
}

// effectiveDemand is the server's demand clamped to the controllable
// envelope: budgets below Pcap_min are unenforceable and budgets above
// Pcap_max are wasted.
func (v *serverView) effectiveDemand() power.Watts {
	l := v.leaves[0]
	return power.Min(power.Max(l.Demand, l.CapMin), l.CapMax)
}

// consumption predicts the server's achievable AC power under the given
// per-supply budgets: the server load is split intrinsically by each
// supply's share r, so the whole server can draw only
//
//	min(effective demand, min over supplies of budget_s / r_s)
//
// — the most constrained supply governs (this is exactly what the capping
// controller of Section 4.2 enforces).
func (v *serverView) consumption(budgetOf func(supplyID string) power.Watts) power.Watts {
	limit := power.Watts(math.Inf(1))
	for _, l := range v.leaves {
		if l.Share <= 0 {
			continue
		}
		implied := budgetOf(l.SupplyID) / power.Watts(l.Share)
		if implied < limit {
			limit = implied
		}
	}
	return power.Min(v.effectiveDemand(), limit)
}

// collectServers indexes the supply leaves of the given trees by server ID.
func collectServers(trees []*Node) map[string]*serverView {
	servers := make(map[string]*serverView)
	for _, t := range trees {
		for _, leafNode := range t.Leaves() {
			l := leafNode.Leaf
			v := servers[l.ServerID]
			if v == nil {
				v = &serverView{}
				servers[l.ServerID] = v
			}
			v.leaves = append(v.leaves, l)
		}
	}
	return servers
}

// PredictConsumption returns each server's achievable AC power under the
// given per-tree allocations (trees[i] budgeted by allocs[i]).
func PredictConsumption(trees []*Node, allocs []*Allocation) map[string]power.Watts {
	budgetOf := combinedBudgets(allocs)
	out := make(map[string]power.Watts)
	for id, v := range collectServers(trees) {
		out[id] = v.consumption(budgetOf)
	}
	return out
}

func combinedBudgets(allocs []*Allocation) func(string) power.Watts {
	return func(supplyID string) power.Watts {
		for _, a := range allocs {
			if b, ok := a.SupplyBudgets[supplyID]; ok {
				return b
			}
		}
		return 0
	}
}

// StrandedSupply records stranded power detected on one supply.
type StrandedSupply struct {
	SupplyID string
	ServerID string
	Budget   power.Watts // budget assigned by the first pass
	Usable   power.Watts // what the supply can actually draw
	Stranded power.Watts // Budget − Usable
}

// SPOReport summarizes one stranded power optimization run.
type SPOReport struct {
	// Stranded lists the supplies whose first-pass budgets exceeded what
	// the server's intrinsic load split lets them draw, sorted by supply.
	Stranded []StrandedSupply
	// TotalStranded is the power freed for re-budgeting, summed over
	// supplies.
	TotalStranded power.Watts
}

// AllocateAll runs the budgeting algorithm independently over each control
// tree (the paper runs one tree per feed and phase). budgets[i] is the
// root budget for trees[i]; a nil budgets slice uses each root's
// constraint.
func AllocateAll(trees []*Node, budgets []power.Watts, policy Policy) ([]*Allocation, error) {
	return AllocateAllExplained(trees, budgets, policy, nil)
}

// AllocateAllExplained is AllocateAll with a per-node explanation stream:
// sink (may be nil) receives one NodeExplain per node of every tree.
func AllocateAllExplained(trees []*Node, budgets []power.Watts, policy Policy, sink ExplainSink) ([]*Allocation, error) {
	if budgets != nil && len(budgets) != len(trees) {
		return nil, fmt.Errorf("core: %d budgets for %d trees", len(budgets), len(trees))
	}
	allocs := make([]*Allocation, len(trees))
	for i, t := range trees {
		var b power.Watts
		if budgets != nil {
			b = budgets[i]
		}
		a, err := AllocateExplained(t, b, policy, sink)
		if err != nil {
			return nil, fmt.Errorf("core: tree %d: %w", i, err)
		}
		allocs[i] = a
	}
	return allocs, nil
}

// AllocateWithSPO performs the stranded power optimization of Section 4.4:
// it runs the capping algorithm once, identifies supplies whose budgets
// cannot be consumed because the server's intrinsic load split binds on a
// different feed, shrinks those budgets to the usable amount, and runs the
// algorithm a second time so the freed power reaches servers that were
// capped by the first pass. The trees are left unmodified.
func AllocateWithSPO(trees []*Node, budgets []power.Watts, policy Policy) ([]*Allocation, *SPOReport, error) {
	return AllocateWithSPOExplained(trees, budgets, policy, nil)
}

// AllocateWithSPOExplained is AllocateWithSPO with a per-node explanation
// stream for the pass that produced the returned allocations. Nodes whose
// grant was changed by the stranded-power redistribution (donors pinned to
// their usable watts, recipients of the freed power, and any ancestors
// whose budgets moved) carry Phase PhaseSPO; everything else reports
// PhasePreferred. sink may be nil.
func AllocateWithSPOExplained(trees []*Node, budgets []power.Watts, policy Policy, sink ExplainSink) ([]*Allocation, *SPOReport, error) {
	// Buffer the first pass's explains: they are the final story only if
	// no stranded power is found and no second pass runs.
	var firstExplains []NodeExplain
	var firstSink ExplainSink
	if sink != nil {
		firstSink = ExplainFunc(func(e NodeExplain) { firstExplains = append(firstExplains, e) })
	}
	first, err := AllocateAllExplained(trees, budgets, policy, firstSink)
	if err != nil {
		return nil, nil, err
	}
	report := &SPOReport{}
	budgetOf := combinedBudgets(first)
	servers := collectServers(trees)

	// Record and apply BudgetCaps on stranded supplies.
	type savedCap struct {
		leaf *SupplyLeaf
		old  power.Watts
	}
	var saved []savedCap
	restore := func() {
		for _, s := range saved {
			s.leaf.BudgetCap = s.old
		}
	}
	ids := make([]string, 0, len(servers))
	for id := range servers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		v := servers[id]
		consumption := v.consumption(budgetOf)
		for _, l := range v.leaves {
			budget := budgetOf(l.SupplyID)
			usable := power.Watts(l.Share) * consumption
			stranded := budget - usable
			if stranded <= epsilon {
				continue
			}
			report.Stranded = append(report.Stranded, StrandedSupply{
				SupplyID: l.SupplyID,
				ServerID: l.ServerID,
				Budget:   budget,
				Usable:   usable,
				Stranded: stranded,
			})
			report.TotalStranded += stranded
			saved = append(saved, savedCap{leaf: l, old: l.BudgetCap})
			l.BudgetCap = usable
		}
	}
	sort.Slice(report.Stranded, func(i, j int) bool {
		return report.Stranded[i].SupplyID < report.Stranded[j].SupplyID
	})

	if len(report.Stranded) == 0 {
		if sink != nil {
			for _, e := range firstExplains {
				sink.Explain(e)
			}
		}
		return first, report, nil
	}
	defer restore()
	// The second pass supersedes the first: its explains are the final
	// attribution, with nodes whose grants moved tagged as SPO-produced.
	var secondSink ExplainSink
	if sink != nil {
		firstBudgets := make(map[string]power.Watts, len(firstExplains))
		for _, a := range first {
			for id, b := range a.NodeBudgets {
				firstBudgets[id] = b
			}
		}
		secondSink = ExplainFunc(func(e NodeExplain) {
			if prev, ok := firstBudgets[e.NodeID]; !ok || !power.ApproxEqual(e.Granted, prev, epsilon) {
				e.Phase = PhaseSPO
			}
			sink.Explain(e)
		})
	}
	second, err := AllocateAllExplained(trees, budgets, policy, secondSink)
	if err != nil {
		return nil, nil, err
	}
	return second, report, nil
}
