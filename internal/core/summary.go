package core

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"

	"capmaestro/internal/power"
)

// LevelMetrics holds one priority level's metrics within a Summary.
type LevelMetrics struct {
	Priority Priority
	CapMin   power.Watts
	Demand   power.Watts
	Request  power.Watts
}

// Summary is the priority-grouped metrics summary a node reports upstream
// in the metrics gathering phase (Section 4.3.1). Summaries are the only
// state exchanged between distributed workers: a sub-tree of thousands of
// servers compresses to a few numbers per priority level, which is what
// makes the root's global view scalable.
//
// Levels are stored as a compact slice sorted by descending priority (the
// order every phase of the algorithm consumes them in), so building and
// combining summaries in the Monte Carlo hot path allocates nothing once
// scratch capacity exists. The JSON wire shape exchanged by the control
// plane is unchanged: per-level maps keyed by the priority's decimal
// string, as the previous map-based representation marshaled.
type Summary struct {
	// levels holds one entry per priority present, descending by priority.
	levels []LevelMetrics
	// Constraint is the maximum budget the node can safely absorb.
	Constraint power.Watts
}

// NewSummary returns an empty summary. (The name survives from the
// map-based representation, which needed allocated maps; a zero Summary is
// now equally valid.)
func NewSummary() Summary { return Summary{} }

// reset empties the summary, retaining level capacity for reuse.
func (s *Summary) reset() {
	s.levels = s.levels[:0]
	s.Constraint = 0
}

// level returns the entry for priority p, inserting a zero entry at its
// sorted (descending) position if absent. The pointer is invalidated by
// the next insertion.
func (s *Summary) level(p Priority) *LevelMetrics {
	i := sort.Search(len(s.levels), func(i int) bool { return s.levels[i].Priority <= p })
	if i < len(s.levels) && s.levels[i].Priority == p {
		return &s.levels[i]
	}
	s.levels = append(s.levels, LevelMetrics{})
	copy(s.levels[i+1:], s.levels[i:])
	s.levels[i] = LevelMetrics{Priority: p}
	return &s.levels[i]
}

// at returns the entry for priority p, or a zero entry if absent.
func (s *Summary) at(p Priority) LevelMetrics {
	i := sort.Search(len(s.levels), func(i int) bool { return s.levels[i].Priority <= p })
	if i < len(s.levels) && s.levels[i].Priority == p {
		return s.levels[i]
	}
	return LevelMetrics{Priority: p}
}

// SetLevel sets all three metrics for one priority level.
func (s *Summary) SetLevel(p Priority, capMin, demand, request power.Watts) {
	l := s.level(p)
	l.CapMin, l.Demand, l.Request = capMin, demand, request
}

// SetCapMin sets the minimum budget owed to priority level p.
func (s *Summary) SetCapMin(p Priority, v power.Watts) { s.level(p).CapMin = v }

// SetDemand sets the power demand of priority level p.
func (s *Summary) SetDemand(p Priority, v power.Watts) { s.level(p).Demand = v }

// SetRequest sets the budget requested by priority level p.
func (s *Summary) SetRequest(p Priority, v power.Watts) { s.level(p).Request = v }

// CapMin returns the minimum total budget that must be allocated to
// servers at priority level p under the node (0 if the level is absent).
func (s Summary) CapMin(p Priority) power.Watts { return s.at(p).CapMin }

// Demand returns the total power demand at priority level p.
func (s Summary) Demand(p Priority) power.Watts { return s.at(p).Demand }

// Request returns the budget requested for priority level p, after
// accounting for limits and higher-priority requests.
func (s Summary) Request(p Priority) power.Watts { return s.at(p).Request }

// LevelMetrics returns the per-priority entries, descending by priority.
// The slice is the summary's backing storage; callers must not modify it.
func (s Summary) LevelMetrics() []LevelMetrics { return s.levels }

// TotalCapMin sums the minimum budgets across priority levels.
func (s Summary) TotalCapMin() power.Watts {
	var t power.Watts
	for i := range s.levels {
		t += s.levels[i].CapMin
	}
	return t
}

// TotalRequest sums requests across priority levels.
func (s Summary) TotalRequest() power.Watts {
	var t power.Watts
	for i := range s.levels {
		t += s.levels[i].Request
	}
	return t
}

// TotalDemand sums demands across priority levels.
func (s Summary) TotalDemand() power.Watts {
	var t power.Watts
	for i := range s.levels {
		t += s.levels[i].Demand
	}
	return t
}

// Levels returns the priorities present in the summary, descending.
func (s Summary) Levels() []Priority {
	out := make([]Priority, len(s.levels))
	for i := range s.levels {
		out[i] = s.levels[i].Priority
	}
	return out
}

// Collapse folds all priority levels into a single level 0, used when a
// policy hides priorities from (part of) the hierarchy. The collapsed
// request is re-limited by the constraint, since per-level requests were
// computed against priority-ordered headroom.
func (s Summary) Collapse() Summary {
	var c Summary
	c.collapseFrom(&s)
	return c
}

// collapseFrom fills dst with the single-level collapse of src, reusing
// dst's level storage. dst and src may alias.
func (dst *Summary) collapseFrom(src *Summary) {
	capMin := src.TotalCapMin()
	demand := src.TotalDemand()
	request := power.Min(src.TotalRequest(), src.Constraint)
	constraint := src.Constraint
	dst.reset()
	dst.Constraint = constraint
	l := dst.level(0)
	l.CapMin, l.Demand, l.Request = capMin, demand, request
}

// Clone deep-copies the summary.
func (s Summary) Clone() Summary {
	c := Summary{Constraint: s.Constraint}
	if len(s.levels) > 0 {
		c.levels = append([]LevelMetrics(nil), s.levels...)
	}
	return c
}

// copyFrom overwrites s with src's contents, reusing s's level storage.
func (s *Summary) copyFrom(src *Summary) {
	if s == src {
		return
	}
	s.levels = append(s.levels[:0], src.levels...)
	s.Constraint = src.Constraint
}

// summaryWire is the JSON document shape the control plane has always
// exchanged: per-level maps keyed by the priority's decimal string.
type summaryWire struct {
	CapMin     map[string]power.Watts `json:"cap_min"`
	Demand     map[string]power.Watts `json:"demand"`
	Request    map[string]power.Watts `json:"request"`
	Constraint power.Watts            `json:"constraint"`
}

// MarshalJSON renders the summary in the historical map-based wire shape.
func (s Summary) MarshalJSON() ([]byte, error) {
	w := summaryWire{
		CapMin:     make(map[string]power.Watts, len(s.levels)),
		Demand:     make(map[string]power.Watts, len(s.levels)),
		Request:    make(map[string]power.Watts, len(s.levels)),
		Constraint: s.Constraint,
	}
	for i := range s.levels {
		k := strconv.Itoa(int(s.levels[i].Priority))
		w.CapMin[k] = s.levels[i].CapMin
		w.Demand[k] = s.levels[i].Demand
		w.Request[k] = s.levels[i].Request
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses the historical map-based wire shape.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var w summaryWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	s.reset()
	s.Constraint = w.Constraint
	set := func(m map[string]power.Watts, assign func(*LevelMetrics, power.Watts)) error {
		for k, v := range m {
			p, err := strconv.Atoi(k)
			if err != nil {
				return fmt.Errorf("core: summary priority key %q: %w", k, err)
			}
			assign(s.level(Priority(p)), v)
		}
		return nil
	}
	if err := set(w.CapMin, func(l *LevelMetrics, v power.Watts) { l.CapMin = v }); err != nil {
		return err
	}
	if err := set(w.Demand, func(l *LevelMetrics, v power.Watts) { l.Demand = v }); err != nil {
		return err
	}
	return set(w.Request, func(l *LevelMetrics, v power.Watts) { l.Request = v })
}

// Validate checks internal consistency of a summary received from a remote
// worker: finite, non-negative values and requests within the constraint
// envelope. A corrupt summary (NaN/Inf from an in-process proxy, or
// Request far beyond Constraint from a buggy remote) would otherwise
// poison the room-level allocation.
func (s Summary) Validate() error {
	if !isFiniteWatts(s.Constraint) {
		return fmt.Errorf("core: summary constraint %v not finite", s.Constraint)
	}
	if s.Constraint < 0 {
		return fmt.Errorf("core: summary constraint %v negative", s.Constraint)
	}
	for i := range s.levels {
		l := &s.levels[i]
		if !isFiniteWatts(l.CapMin) {
			return fmt.Errorf("core: summary capmin[%d] = %v not finite", l.Priority, l.CapMin)
		}
		if l.CapMin < 0 {
			return fmt.Errorf("core: summary capmin[%d] negative", l.Priority)
		}
		if !isFiniteWatts(l.Demand) {
			return fmt.Errorf("core: summary demand[%d] = %v not finite", l.Priority, l.Demand)
		}
		if l.Demand < 0 {
			return fmt.Errorf("core: summary demand[%d] negative", l.Priority)
		}
		if !isFiniteWatts(l.Request) {
			return fmt.Errorf("core: summary request[%d] = %v not finite", l.Priority, l.Request)
		}
		if l.Request < 0 {
			return fmt.Errorf("core: summary request[%d] negative", l.Priority)
		}
	}
	// Requests are floored at CapMin during aggregation, so when the
	// minimums alone exceed the constraint (an infeasible but representable
	// configuration) the envelope widens to the minimums.
	envelope := power.Max(s.Constraint, s.TotalCapMin())
	if total := s.TotalRequest(); total > envelope+epsilon {
		return fmt.Errorf("core: summary requests %v exceed constraint envelope %v", total, envelope)
	}
	return nil
}

// isFiniteWatts rejects NaN and ±Inf.
func isFiniteWatts(w power.Watts) bool {
	f := float64(w)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// CombineSummaries implements a shifting controller's aggregation
// (Section 4.3.1): child summaries are summed per priority, the node's
// constraint becomes min(limit, Σ child constraints), and requests are
// recomputed in descending priority order against the node's headroom:
//
//	Prequest(i,j) = min(Pconstraint − Σ_{h>j} Prequest(i,h)
//	                    − Σ_{l<j} Pcap_min(i,l),  Σ_k Prequest(i−1,j))
//
// with each level's request floored at its Pcap_min.
func CombineSummaries(children []Summary, limit power.Watts) Summary {
	var agg Summary
	combineInto(&agg, children, limit)
	return agg
}

// combineInto is CombineSummaries writing into a reusable destination.
// dst must not alias any element of children.
func combineInto(dst *Summary, children []Summary, limit power.Watts) {
	dst.reset()
	var childConstraints power.Watts
	for ci := range children {
		cm := &children[ci]
		for li := range cm.levels {
			cl := &cm.levels[li]
			l := dst.level(cl.Priority)
			l.CapMin += cl.CapMin
			l.Demand += cl.Demand
			l.Request += cl.Request
		}
		childConstraints += cm.Constraint
	}
	if limit <= 0 {
		dst.Constraint = childConstraints
	} else {
		dst.Constraint = power.Min(limit, childConstraints)
	}

	var capMinBelow power.Watts
	for i := range dst.levels {
		capMinBelow += dst.levels[i].CapMin
	}
	var requestAbove power.Watts
	for i := range dst.levels { // descending priority order
		l := &dst.levels[i]
		capMinBelow -= l.CapMin
		allowable := dst.Constraint - requestAbove - capMinBelow
		req := power.Min(allowable, l.Request)
		req = power.Max(req, l.CapMin)
		l.Request = req
		requestAbove += req
	}
}

// distScratch holds the reusable working storage of one budgeting pass:
// per-level priority union and per-child waterfill vectors.
type distScratch struct {
	levels    []Priority
	wants     []power.Watts
	weights   []float64
	shares    []power.Watts
	saturated []bool
}

// grow sizes the per-child vectors for n children.
func (sc *distScratch) grow(n int) {
	if cap(sc.wants) < n {
		sc.wants = make([]power.Watts, n)
		sc.weights = make([]float64, n)
		sc.shares = make([]power.Watts, n)
		sc.saturated = make([]bool, n)
	}
	sc.wants = sc.wants[:n]
	sc.weights = sc.weights[:n]
	sc.shares = sc.shares[:n]
	sc.saturated = sc.saturated[:n]
}

// levelUnion collects the distinct priorities across children, descending.
func (sc *distScratch) levelUnion(children []Summary) []Priority {
	sc.levels = sc.levels[:0]
	for ci := range children {
		for li := range children[ci].levels {
			p := children[ci].levels[li].Priority
			i := sort.Search(len(sc.levels), func(i int) bool { return sc.levels[i] <= p })
			if i < len(sc.levels) && sc.levels[i] == p {
				continue
			}
			sc.levels = append(sc.levels, 0)
			copy(sc.levels[i+1:], sc.levels[i:])
			sc.levels[i] = p
		}
	}
	return sc.levels
}

// DistributeBudget implements a shifting controller's budgeting phase
// (Section 4.3.2) among children described by their summaries:
//
//  1. allocate each child its Pcap_min;
//  2. fulfill requests level by level, highest priority first;
//  3. split the first level that cannot be fully met proportionally to
//     Pdemand − Pcap_min, capped at each child's allowable request;
//  4. assign any remaining power up to each child's Pconstraint.
//
// It returns the per-child allocations and whether the budget failed to
// cover the children's minimums (in which case minimums are scaled
// proportionally).
func DistributeBudget(b power.Watts, children []Summary) (allocs []power.Watts, infeasible bool) {
	alloc := make([]power.Watts, len(children))
	var sc distScratch
	infeasible = distributeInto(b, children, alloc, &sc)
	return alloc, infeasible
}

// distributeInto is DistributeBudget writing allocations into alloc
// (len(alloc) == len(children)) and reusing sc's scratch storage.
func distributeInto(b power.Watts, children []Summary, alloc []power.Watts, sc *distScratch) (infeasible bool) {
	var capMinTotal power.Watts
	for i := range children {
		alloc[i] = children[i].TotalCapMin()
		capMinTotal += alloc[i]
	}
	if b < 0 {
		b = 0
	}

	if b+epsilon < capMinTotal {
		scale := float64(0)
		if capMinTotal > 0 {
			scale = float64(b / capMinTotal)
		}
		for i := range alloc {
			alloc[i] *= power.Watts(scale)
		}
		return true
	}

	remaining := b - capMinTotal
	sc.grow(len(children))
	levels := sc.levelUnion(children)

	exhausted := false
	for _, j := range levels {
		wants := sc.wants
		var need power.Watts
		for i := range children {
			lj := children[i].at(j)
			w := lj.Request - lj.CapMin
			if w < 0 {
				w = 0
			}
			wants[i] = w
			need += w
		}
		if need <= remaining+epsilon {
			for i := range alloc {
				alloc[i] += wants[i]
			}
			remaining -= need
			if remaining < 0 {
				remaining = 0
			}
			continue
		}
		weights := sc.weights
		for i := range children {
			lj := children[i].at(j)
			w := float64(lj.Demand - lj.CapMin)
			if w < 0 {
				w = 0
			}
			weights[i] = w
		}
		shares := waterfillInto(remaining, weights, wants, sc.shares, sc.saturated)
		for i := range alloc {
			alloc[i] += shares[i]
		}
		remaining = 0
		exhausted = true
		break
	}

	if !exhausted && remaining > epsilon {
		headroom := sc.wants // reuse: wants are no longer needed
		weights := sc.weights
		for i := range children {
			h := children[i].Constraint - alloc[i]
			if h < 0 {
				h = 0
			}
			headroom[i] = h
			weights[i] = float64(h)
		}
		shares := waterfillInto(remaining, weights, headroom, sc.shares, sc.saturated)
		for i := range alloc {
			alloc[i] += shares[i]
		}
	}
	return false
}

// LeafSummary computes the level-1 (capping controller) summary of a
// supply leaf; exported for distributed workers that summarize their local
// servers before reporting upstream.
func LeafSummary(l *SupplyLeaf) Summary {
	var s Summary
	leafMetricsInto(&s, l)
	return s
}

// Summarize runs the metrics gathering phase over a subtree and returns
// the summary its root would report upstream under the given policy.
func Summarize(root *Node, policy Policy) (Summary, error) {
	a, err := NewAllocator(root)
	if err != nil {
		return Summary{}, err
	}
	return a.Summarize(policy), nil
}
