package core

import (
	"fmt"
	"math"
	"sort"

	"capmaestro/internal/power"
)

// Summary is the priority-grouped metrics summary a node reports upstream
// in the metrics gathering phase (Section 4.3.1). Summaries are the only
// state exchanged between distributed workers: a sub-tree of thousands of
// servers compresses to a few numbers per priority level, which is what
// makes the root's global view scalable.
type Summary struct {
	// CapMin maps priority level to the minimum total budget that must be
	// allocated to servers at that level under the node.
	CapMin map[Priority]power.Watts `json:"cap_min"`
	// Demand maps priority level to the total power demand at that level.
	Demand map[Priority]power.Watts `json:"demand"`
	// Request maps priority level to the budget actually requested, after
	// accounting for limits and higher-priority requests.
	Request map[Priority]power.Watts `json:"request"`
	// Constraint is the maximum budget the node can safely absorb.
	Constraint power.Watts `json:"constraint"`
}

// NewSummary returns an empty summary with allocated maps.
func NewSummary() Summary {
	return Summary{
		CapMin:  make(map[Priority]power.Watts),
		Demand:  make(map[Priority]power.Watts),
		Request: make(map[Priority]power.Watts),
	}
}

// TotalCapMin sums the minimum budgets across priority levels.
func (s Summary) TotalCapMin() power.Watts {
	var t power.Watts
	for _, v := range s.CapMin {
		t += v
	}
	return t
}

// TotalRequest sums requests across priority levels.
func (s Summary) TotalRequest() power.Watts {
	var t power.Watts
	for _, v := range s.Request {
		t += v
	}
	return t
}

// TotalDemand sums demands across priority levels.
func (s Summary) TotalDemand() power.Watts {
	var t power.Watts
	for _, v := range s.Demand {
		t += v
	}
	return t
}

// Levels returns the priorities present in the summary, descending.
func (s Summary) Levels() []Priority {
	set := make(map[Priority]struct{})
	for p := range s.CapMin {
		set[p] = struct{}{}
	}
	for p := range s.Demand {
		set[p] = struct{}{}
	}
	for p := range s.Request {
		set[p] = struct{}{}
	}
	out := make([]Priority, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// Collapse folds all priority levels into a single level 0, used when a
// policy hides priorities from (part of) the hierarchy. The collapsed
// request is re-limited by the constraint, since per-level requests were
// computed against priority-ordered headroom.
func (s Summary) Collapse() Summary {
	c := NewSummary()
	c.Constraint = s.Constraint
	c.CapMin[0] = s.TotalCapMin()
	c.Demand[0] = s.TotalDemand()
	c.Request[0] = power.Min(s.TotalRequest(), s.Constraint)
	return c
}

// Clone deep-copies the summary.
func (s Summary) Clone() Summary {
	c := NewSummary()
	c.Constraint = s.Constraint
	for p, v := range s.CapMin {
		c.CapMin[p] = v
	}
	for p, v := range s.Demand {
		c.Demand[p] = v
	}
	for p, v := range s.Request {
		c.Request[p] = v
	}
	return c
}

// Validate checks internal consistency of a summary received from a remote
// worker: finite, non-negative values and requests within the constraint
// envelope. A corrupt summary (NaN/Inf from an in-process proxy, or
// Request far beyond Constraint from a buggy remote) would otherwise
// poison the room-level allocation.
func (s Summary) Validate() error {
	if !isFiniteWatts(s.Constraint) {
		return fmt.Errorf("core: summary constraint %v not finite", s.Constraint)
	}
	if s.Constraint < 0 {
		return fmt.Errorf("core: summary constraint %v negative", s.Constraint)
	}
	for p, v := range s.CapMin {
		if !isFiniteWatts(v) {
			return fmt.Errorf("core: summary capmin[%d] = %v not finite", p, v)
		}
		if v < 0 {
			return fmt.Errorf("core: summary capmin[%d] negative", p)
		}
	}
	for p, v := range s.Demand {
		if !isFiniteWatts(v) {
			return fmt.Errorf("core: summary demand[%d] = %v not finite", p, v)
		}
		if v < 0 {
			return fmt.Errorf("core: summary demand[%d] negative", p)
		}
	}
	for p, v := range s.Request {
		if !isFiniteWatts(v) {
			return fmt.Errorf("core: summary request[%d] = %v not finite", p, v)
		}
		if v < 0 {
			return fmt.Errorf("core: summary request[%d] negative", p)
		}
	}
	// Requests are floored at CapMin during aggregation, so when the
	// minimums alone exceed the constraint (an infeasible but representable
	// configuration) the envelope widens to the minimums.
	envelope := power.Max(s.Constraint, s.TotalCapMin())
	if total := s.TotalRequest(); total > envelope+epsilon {
		return fmt.Errorf("core: summary requests %v exceed constraint envelope %v", total, envelope)
	}
	return nil
}

// isFiniteWatts rejects NaN and ±Inf.
func isFiniteWatts(w power.Watts) bool {
	f := float64(w)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// CombineSummaries implements a shifting controller's aggregation
// (Section 4.3.1): child summaries are summed per priority, the node's
// constraint becomes min(limit, Σ child constraints), and requests are
// recomputed in descending priority order against the node's headroom:
//
//	Prequest(i,j) = min(Pconstraint − Σ_{h>j} Prequest(i,h)
//	                    − Σ_{l<j} Pcap_min(i,l),  Σ_k Prequest(i−1,j))
//
// with each level's request floored at its Pcap_min.
func CombineSummaries(children []Summary, limit power.Watts) Summary {
	agg := NewSummary()
	var childConstraints power.Watts
	for _, cm := range children {
		for p, v := range cm.CapMin {
			agg.CapMin[p] += v
		}
		for p, v := range cm.Demand {
			agg.Demand[p] += v
		}
		for p, v := range cm.Request {
			agg.Request[p] += v
		}
		childConstraints += cm.Constraint
	}
	if limit <= 0 {
		agg.Constraint = childConstraints
	} else {
		agg.Constraint = power.Min(limit, childConstraints)
	}

	levels := agg.Levels()
	var capMinBelow power.Watts
	for _, p := range levels {
		capMinBelow += agg.CapMin[p]
	}
	var requestAbove power.Watts
	for _, j := range levels {
		capMinBelow -= agg.CapMin[j]
		allowable := agg.Constraint - requestAbove - capMinBelow
		req := power.Min(allowable, agg.Request[j])
		req = power.Max(req, agg.CapMin[j])
		agg.Request[j] = req
		requestAbove += req
	}
	return agg
}

// DistributeBudget implements a shifting controller's budgeting phase
// (Section 4.3.2) among children described by their summaries:
//
//  1. allocate each child its Pcap_min;
//  2. fulfill requests level by level, highest priority first;
//  3. split the first level that cannot be fully met proportionally to
//     Pdemand − Pcap_min, capped at each child's allowable request;
//  4. assign any remaining power up to each child's Pconstraint.
//
// It returns the per-child allocations and whether the budget failed to
// cover the children's minimums (in which case minimums are scaled
// proportionally).
func DistributeBudget(b power.Watts, children []Summary) (allocs []power.Watts, infeasible bool) {
	alloc := make([]power.Watts, len(children))
	var capMinTotal power.Watts
	for i, cm := range children {
		alloc[i] = cm.TotalCapMin()
		capMinTotal += alloc[i]
	}
	if b < 0 {
		b = 0
	}

	if b+epsilon < capMinTotal {
		scale := float64(0)
		if capMinTotal > 0 {
			scale = float64(b / capMinTotal)
		}
		for i := range alloc {
			alloc[i] *= power.Watts(scale)
		}
		return alloc, true
	}

	remaining := b - capMinTotal

	levelSet := make(map[Priority]struct{})
	for _, cm := range children {
		for _, p := range cm.Levels() {
			levelSet[p] = struct{}{}
		}
	}
	levels := make([]Priority, 0, len(levelSet))
	for p := range levelSet {
		levels = append(levels, p)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] > levels[j] })

	exhausted := false
	for _, j := range levels {
		wants := make([]power.Watts, len(children))
		var need power.Watts
		for i, cm := range children {
			w := cm.Request[j] - cm.CapMin[j]
			if w < 0 {
				w = 0
			}
			wants[i] = w
			need += w
		}
		if need <= remaining+epsilon {
			for i := range alloc {
				alloc[i] += wants[i]
			}
			remaining -= need
			if remaining < 0 {
				remaining = 0
			}
			continue
		}
		weights := make([]float64, len(children))
		for i, cm := range children {
			w := float64(cm.Demand[j] - cm.CapMin[j])
			if w < 0 {
				w = 0
			}
			weights[i] = w
		}
		shares := waterfill(remaining, weights, wants)
		for i := range alloc {
			alloc[i] += shares[i]
		}
		remaining = 0
		exhausted = true
		break
	}

	if !exhausted && remaining > epsilon {
		headroom := make([]power.Watts, len(children))
		weights := make([]float64, len(children))
		for i, cm := range children {
			h := cm.Constraint - alloc[i]
			if h < 0 {
				h = 0
			}
			headroom[i] = h
			weights[i] = float64(h)
		}
		shares := waterfill(remaining, weights, headroom)
		for i := range alloc {
			alloc[i] += shares[i]
		}
	}
	return alloc, false
}

// LeafSummary computes the level-1 (capping controller) summary of a
// supply leaf; exported for distributed workers that summarize their local
// servers before reporting upstream.
func LeafSummary(l *SupplyLeaf) Summary { return leafMetrics(l) }

// Summarize runs the metrics gathering phase over a subtree and returns
// the summary its root would report upstream under the given policy.
func Summarize(root *Node, policy Policy) (Summary, error) {
	if root == nil {
		return Summary{}, fmt.Errorf("core: nil tree")
	}
	if err := root.Validate(); err != nil {
		return Summary{}, err
	}
	a := &allocator{policy: policy, metrics: make(map[*Node]Summary)}
	return a.gather(root), nil
}
