package core

import (
	"strings"
	"testing"

	"capmaestro/internal/power"
	"capmaestro/internal/topology"
)

func leaf(id, serverID string, prio Priority, share float64, demand power.Watts) *Node {
	return NewLeaf(id, SupplyLeaf{
		SupplyID: id,
		ServerID: serverID,
		Priority: prio,
		Share:    share,
		CapMin:   270,
		CapMax:   490,
		Demand:   demand,
	})
}

func TestValidateOK(t *testing.T) {
	root := NewShifting("root", 1400,
		NewShifting("left", 750, leaf("a", "SA", 1, 1, 430)),
		NewShifting("right", 750, leaf("b", "SB", 0, 1, 430)),
	)
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		node *Node
		want string
	}{
		{"empty id", NewShifting("", 100, leaf("a", "s", 0, 1, 400)), "empty ID"},
		{"duplicate", NewShifting("x", 100, leaf("x", "s", 0, 1, 400)), "duplicate"},
		{"leaf with children", func() *Node {
			n := leaf("a", "s", 0, 1, 400)
			n.Children = []*Node{leaf("b", "s2", 0, 1, 400)}
			return NewShifting("r", 100, n)
		}(), "has children"},
		{"empty supply", NewShifting("r", 100, NewLeaf("a", SupplyLeaf{ServerID: "s", Share: 1, CapMin: 270, CapMax: 490})), "empty supply"},
		{"empty server", NewShifting("r", 100, NewLeaf("a", SupplyLeaf{SupplyID: "a", Share: 1, CapMin: 270, CapMax: 490})), "empty server"},
		{"bad share", NewShifting("r", 100, NewLeaf("a", SupplyLeaf{SupplyID: "a", ServerID: "s", Share: 2, CapMin: 270, CapMax: 490})), "share"},
		{"bad envelope", NewShifting("r", 100, NewLeaf("a", SupplyLeaf{SupplyID: "a", ServerID: "s", Share: 1, CapMin: 500, CapMax: 490})), "envelope"},
		{"negative demand", NewShifting("r", 100, NewLeaf("a", SupplyLeaf{SupplyID: "a", ServerID: "s", Share: 1, CapMin: 270, CapMax: 490, Demand: -1})), "negative demand"},
		{"childless shifting", NewShifting("r", 100), "no children"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.node.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestWalkAndLeaves(t *testing.T) {
	root := NewShifting("root", 0,
		NewShifting("left", 750, leaf("a", "SA", 1, 1, 430), leaf("b", "SB", 0, 1, 430)),
		leaf("c", "SC", 0, 1, 430),
	)
	var order []string
	root.Walk(func(n *Node) { order = append(order, n.ID) })
	want := []string{"root", "left", "a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("walk order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("walk order %v, want %v", order, want)
		}
	}
	leaves := root.Leaves()
	if len(leaves) != 3 || !leaves[0].IsLeaf() {
		t.Errorf("leaves = %d", len(leaves))
	}
}

func TestPrioritiesInDescending(t *testing.T) {
	root := NewShifting("root", 0,
		leaf("a", "SA", 2, 1, 430),
		leaf("b", "SB", 0, 1, 430),
		leaf("c", "SC", 7, 1, 430),
		leaf("d", "SD", 2, 1, 430),
	)
	got := prioritiesIn(root)
	if len(got) != 3 || got[0] != 7 || got[1] != 2 || got[2] != 0 {
		t.Errorf("priorities = %v, want [7 2 0]", got)
	}
}

func TestBuildTreeFromTopology(t *testing.T) {
	feed := topology.NewNode("X-root", topology.KindUtility, 0)
	feed.Feed = "X"
	cdu := feed.AddChild(topology.NewNode("X-cdu", topology.KindCDU, 6900))
	cdu.AddChild(topology.NewSupply("s1-psX", "s1", 0.5))
	cdu.AddChild(topology.NewSupply("s2-psX", "s2", 0.65))
	topo := topology.MustNew(feed)

	src := func(supplyID, serverID string) (LeafInfo, bool) {
		if serverID == "s2" {
			// Override the share at runtime (e.g. the redundant cord
			// failed, so this supply now carries the full load).
			return LeafInfo{Priority: 1, CapMin: 270, CapMax: 490, Demand: 400, Share: 1.0}, true
		}
		return LeafInfo{Priority: 0, CapMin: 270, CapMax: 490, Demand: 350}, true
	}
	tree, err := BuildTree(topo.Root("X"), topology.DefaultDerating(), src)
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("leaves = %d, want 2", len(leaves))
	}
	// The CDU node must carry the derated limit (80% of 6900).
	var cduNode *Node
	tree.Walk(func(n *Node) {
		if n.ID == "X-cdu" {
			cduNode = n
		}
	})
	if cduNode == nil || cduNode.Limit != 5520 {
		t.Fatalf("CDU control node limit = %+v, want 5520", cduNode)
	}
	for _, l := range leaves {
		switch l.Leaf.ServerID {
		case "s1":
			if l.Leaf.Share != 0.5 {
				t.Errorf("s1 share = %v, want topology split 0.5", l.Leaf.Share)
			}
		case "s2":
			if l.Leaf.Share != 1.0 {
				t.Errorf("s2 share = %v, want overridden 1.0", l.Leaf.Share)
			}
			if l.Leaf.Priority != 1 {
				t.Errorf("s2 priority = %v, want 1", l.Leaf.Priority)
			}
		}
	}
}

func TestBuildTreePrunesMissingSupplies(t *testing.T) {
	feed := topology.NewNode("X-root", topology.KindUtility, 0)
	feed.Feed = "X"
	cdu1 := feed.AddChild(topology.NewNode("cdu1", topology.KindCDU, 6900))
	cdu1.AddChild(topology.NewSupply("s1-psX", "s1", 1))
	cdu2 := feed.AddChild(topology.NewNode("cdu2", topology.KindCDU, 6900))
	cdu2.AddChild(topology.NewSupply("s2-psX", "s2", 1))
	topo := topology.MustNew(feed)

	src := func(supplyID, serverID string) (LeafInfo, bool) {
		if serverID == "s2" {
			return LeafInfo{}, false // failed supply: omit
		}
		return LeafInfo{CapMin: 270, CapMax: 490, Demand: 350}, true
	}
	tree, err := BuildTree(topo.Root("X"), topology.DefaultDerating(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Leaves()) != 1 {
		t.Errorf("leaves = %d, want 1 (s2 pruned)", len(tree.Leaves()))
	}
	// cdu2 subtree should be pruned entirely.
	tree.Walk(func(n *Node) {
		if n.ID == "cdu2" {
			t.Error("empty cdu2 should be pruned")
		}
	})
}

func TestBuildTreeAllPruned(t *testing.T) {
	feed := topology.NewNode("X-root", topology.KindUtility, 0)
	feed.Feed = "X"
	feed.AddChild(topology.NewSupply("s1-psX", "s1", 1))
	topo := topology.MustNew(feed)
	src := func(string, string) (LeafInfo, bool) { return LeafInfo{}, false }
	if _, err := BuildTree(topo.Root("X"), topology.DefaultDerating(), src); err == nil {
		t.Error("expected error when no supplies remain")
	}
	if _, err := BuildTree(nil, topology.DefaultDerating(), src); err == nil {
		t.Error("expected error for nil root")
	}
}
