package core

import (
	"fmt"
)

import (
	"capmaestro/internal/power"
)

// Policy selects how priorities influence budget allocation (Section 6.2).
type Policy int

// Policies evaluated in the paper.
const (
	// NoPriority guarantees Pcap_min to every server and distributes the
	// remaining budget proportionally to Pdemand − Pcap_min, ignoring
	// priorities entirely.
	NoPriority Policy = iota
	// LocalPriority models Facebook's Dynamo extended to redundant feeds:
	// priorities are honored only by the lowest-level shifting controllers
	// (those whose children are capping controllers); all higher levels
	// allocate with the No Priority rule.
	LocalPriority
	// GlobalPriority is CapMaestro's policy: every shifting controller in
	// the tree is priority-aware, so high-priority servers anywhere in the
	// data center are capped only after all lower-priority servers have
	// been throttled to their minimum, as far as power limits allow.
	GlobalPriority
)

// String names the policy as the paper does.
func (p Policy) String() string {
	switch p {
	case NoPriority:
		return "No Priority"
	case LocalPriority:
		return "Local Priority"
	case GlobalPriority:
		return "Global Priority"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a command-line name ("none", "local", "global") to a
// Policy.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "none", "no", "nopriority":
		return NoPriority, nil
	case "local", "localpriority", "dynamo":
		return LocalPriority, nil
	case "global", "globalpriority", "capmaestro":
		return GlobalPriority, nil
	default:
		return 0, fmt.Errorf("core: unknown policy %q (want none, local, or global)", name)
	}
}

// epsilon absorbs floating-point noise in watt arithmetic.
const epsilon = 1e-6

// Allocation is the result of one run of the budgeting algorithm over a
// control tree.
type Allocation struct {
	// SupplyBudgets maps supply ID to its assigned AC budget.
	SupplyBudgets map[string]power.Watts
	// NodeBudgets maps every tree-node ID to the budget assigned to it,
	// useful for verifying limits and plotting per-breaker loads. Proxy
	// nodes appear here with the budget their remote worker should
	// distribute.
	NodeBudgets map[string]power.Watts
	// Infeasible is true when some budget could not even cover the
	// aggregate Pcap_min beneath it; minimum budgets were scaled down
	// proportionally there and no server is guaranteed its floor.
	Infeasible bool
}

// Budget returns the allocated budget for a supply ID (0 if absent).
func (a *Allocation) Budget(supplyID string) power.Watts { return a.SupplyBudgets[supplyID] }

// Allocate runs the two-phase algorithm of Section 4.3 over the tree: a
// bottom-up metrics gathering phase followed by a top-down budgeting
// phase. budget is the power available at the root (the feed's contractual
// budget); the root's own limit further constrains it. A non-positive
// budget means "no explicit budget" and uses the root constraint.
//
// Allocate builds a fresh Allocator per call; callers re-allocating the
// same tree every control period (or Monte Carlo run) should construct an
// Allocator once and reuse it, which skips re-validation and allocates
// nothing per pass.
func Allocate(root *Node, budget power.Watts, policy Policy) (*Allocation, error) {
	a, err := NewAllocator(root)
	if err != nil {
		return nil, err
	}
	a.Run(budget, policy)
	return a.Snapshot(), nil
}

// MustAllocate is Allocate but panics on error; for static fixtures.
func MustAllocate(root *Node, budget power.Watts, policy Policy) *Allocation {
	alloc, err := Allocate(root, budget, policy)
	if err != nil {
		panic(err)
	}
	return alloc
}

// leafMetricsInto computes the level-1 (capping controller) summary of
// Section 4.3.1 for one supply leaf, writing into a reusable destination:
//
//	Pcap_min(1,j) = r × Pcap_min(0)
//	Pdemand(1,j)  = r × max(Pdemand(0), Pcap_min(0))
//	Prequest(1,j) = Pdemand(1,j)
//	Pconstraint   = r × Pcap_max(0)
//
// where j is the server's priority. Demand is clamped to CapMax since any
// budget beyond CapMax is wasted. A supply with an SPO BudgetCap is pinned
// at exactly that value — floor and ceiling — so the second pass hands the
// stranded supply precisely what it can use and moves only the truly freed
// power; merely capping the demand would shrink the supply's proportional
// weight in step 3 and let the re-run take usable watts away from the
// donor.
func leafMetricsInto(m *Summary, l *SupplyLeaf) {
	r := power.Watts(l.Share)
	capMin := r * l.CapMin
	demand := power.Min(power.Max(l.Demand, l.CapMin), l.CapMax) * r
	constraint := r * l.CapMax
	if l.BudgetCap > 0 {
		bc := power.Max(l.BudgetCap, capMin)
		capMin = bc
		demand = bc
		constraint = bc
	}
	m.reset()
	m.Constraint = constraint
	lv := m.level(l.Priority)
	lv.CapMin = capMin
	lv.Demand = demand
	lv.Request = demand
}

// waterfillInto distributes amount across recipients proportionally to
// weights, capping each recipient at caps[i] and re-distributing overflow
// among the unsaturated recipients until the amount is exhausted or
// everyone is saturated. shares and saturated are caller-provided storage
// of len(weights); the filled shares slice is returned.
func waterfillInto(amount power.Watts, weights []float64, caps []power.Watts, shares []power.Watts, saturated []bool) []power.Watts {
	n := len(weights)
	for i := 0; i < n; i++ {
		shares[i] = 0
		saturated[i] = false
	}
	if amount <= 0 {
		return shares
	}
	for iter := 0; iter < n+1 && amount > epsilon; iter++ {
		var wsum float64
		for i := 0; i < n; i++ {
			if !saturated[i] && caps[i]-shares[i] > epsilon {
				wsum += weights[i]
			}
		}
		if wsum <= 0 {
			// No weighted recipients remain; fall back to equal split
			// among whoever still has cap headroom.
			var open int
			for i := 0; i < n; i++ {
				if caps[i]-shares[i] > epsilon {
					open++
				}
			}
			if open == 0 {
				break
			}
			per := amount / power.Watts(open)
			var leftover power.Watts
			for i := 0; i < n; i++ {
				room := caps[i] - shares[i]
				if room <= epsilon {
					continue
				}
				give := power.Min(per, room)
				shares[i] += give
				leftover += per - give
			}
			amount = leftover
			continue
		}
		var overflow power.Watts
		for i := 0; i < n; i++ {
			if saturated[i] || caps[i]-shares[i] <= epsilon {
				continue
			}
			give := amount * power.Watts(weights[i]/wsum)
			room := caps[i] - shares[i]
			if give >= room {
				shares[i] = caps[i]
				overflow += give - room
				saturated[i] = true
			} else {
				shares[i] += give
			}
		}
		amount = overflow
	}
	return shares
}

// waterfill is the allocating form of waterfillInto, kept for tests and
// one-shot callers.
func waterfill(amount power.Watts, weights []float64, caps []power.Watts) []power.Watts {
	n := len(weights)
	return waterfillInto(amount, weights, caps, make([]power.Watts, n), make([]bool, n))
}

// CheckInvariants verifies, for tests and the simulator's safety monitor,
// that an allocation respects every node limit and covers every leaf's
// scaled minimum when feasible. It returns the first violation found.
func (a *Allocation) CheckInvariants(root *Node) error {
	var err error
	var walk func(n *Node) power.Watts
	walk = func(n *Node) power.Watts {
		b := a.NodeBudgets[n.ID]
		limit := n.limitOrInf()
		if b > limit+epsilon {
			err = fmt.Errorf("core: node %q budget %v exceeds limit %v", n.ID, b, limit)
		}
		if n.IsLeaf() {
			if !a.Infeasible {
				minNeeded := power.Watts(n.Leaf.Share) * n.Leaf.CapMin
				if b+epsilon < minNeeded {
					err = fmt.Errorf("core: leaf %q budget %v below scaled minimum %v", n.ID, b, minNeeded)
				}
			}
			return b
		}
		if n.Proxy != nil {
			return b
		}
		var sum power.Watts
		for _, c := range n.Children {
			sum += walk(c)
		}
		if sum > b+epsilon {
			err = fmt.Errorf("core: node %q children sum %v exceeds budget %v", n.ID, sum, b)
		}
		return b
	}
	walk(root)
	return err
}
