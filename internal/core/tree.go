// Package core implements CapMaestro's primary contribution: the power
// control tree of shifting and capping controllers that mirrors the power
// distribution hierarchy, the scalable global priority-aware power capping
// algorithm (Section 4.3), the baseline policies it is evaluated against
// (a No Priority policy and a Dynamo-style Local Priority policy,
// Section 6.2), and the stranded power optimization (Section 4.4).
//
// The package operates on a Tree of nodes: internal nodes are shifting
// controllers, each mapped to a physical distribution point (transformer,
// RPP, CDU phase, ...) with an enforceable power limit; leaves are
// per-power-supply endpoints of capping controllers, carrying the server's
// controllable envelope, its estimated demand, its priority, and the
// fraction r of the server load the supply bears. An N+N data center runs
// one tree per feed and phase; a server's capping controller appears as a
// leaf in each tree that one of its supplies connects to.
package core

import (
	"fmt"
	"math"
	"sort"

	"capmaestro/internal/power"
	"capmaestro/internal/topology"
)

// Priority is a workload priority level; larger values are more important.
type Priority int

// SupplyLeaf is the per-supply view a capping controller contributes to one
// control tree (the paper's "level 1" node).
type SupplyLeaf struct {
	SupplyID string
	ServerID string
	Priority Priority

	// Share is r: the fraction of the server's load this supply carries
	// under the current supply states.
	Share float64

	// CapMin, CapMax, and Demand are whole-server AC values: the
	// controllable envelope [Pcap_min(0), Pcap_max(0)] and the estimated
	// full-performance demand Pdemand(0). The leaf scales them by Share.
	CapMin power.Watts
	CapMax power.Watts
	Demand power.Watts

	// BudgetCap, when positive, limits the budget this supply may be
	// assigned. The stranded power optimization sets it on supplies whose
	// budget would otherwise exceed what the supply can draw.
	BudgetCap power.Watts
}

// Node is one node of a control tree: a shifting controller when it has
// children, a capping-controller endpoint when Leaf is set, or a stand-in
// for a remotely summarized subtree when Proxy is set (used by the
// distributed control plane: a room-level worker sees each rack worker's
// subtree as a proxy carrying only its reported Summary).
type Node struct {
	ID       string
	Limit    power.Watts // Plimit; +Inf (or 0 meaning unlimited) if none
	Children []*Node
	Leaf     *SupplyLeaf
	Proxy    *Summary
}

// NewShifting creates a shifting-controller node. A non-positive limit
// means the node enforces no limit of its own.
func NewShifting(id string, limit power.Watts, children ...*Node) *Node {
	return &Node{ID: id, Limit: limit, Children: children}
}

// NewLeaf creates a capping-controller endpoint node.
func NewLeaf(id string, leaf SupplyLeaf) *Node {
	return &Node{ID: id, Leaf: &leaf}
}

// NewProxy creates a node standing in for a remote worker's subtree,
// carrying the summary that worker reported. After budgeting, the proxy's
// budget (Allocation.NodeBudgets[id]) is what the remote worker should
// distribute locally.
func NewProxy(id string, summary Summary) *Node {
	return &Node{ID: id, Proxy: &summary}
}

// limitOrInf normalizes the node's limit: non-positive means unlimited.
func (n *Node) limitOrInf() power.Watts {
	if n.Limit <= 0 {
		return power.Watts(math.Inf(1))
	}
	return n.Limit
}

// IsLeaf reports whether the node is a capping-controller endpoint.
func (n *Node) IsLeaf() bool { return n.Leaf != nil }

// Walk visits the node and its descendants in depth-first preorder.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Leaves returns the supply-leaf nodes of the subtree in tree order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m)
		}
	})
	return out
}

// Validate checks structural invariants: unique IDs, leaves with valid
// supply data, internal nodes with at least one child.
func (n *Node) Validate() error {
	seen := make(map[string]bool)
	var check func(m *Node) error
	check = func(m *Node) error {
		if m.ID == "" {
			return fmt.Errorf("core: node with empty ID")
		}
		if seen[m.ID] {
			return fmt.Errorf("core: duplicate node ID %q", m.ID)
		}
		seen[m.ID] = true
		if m.Proxy != nil {
			if len(m.Children) > 0 || m.Leaf != nil {
				return fmt.Errorf("core: proxy %q must not have children or a leaf", m.ID)
			}
			return m.Proxy.Validate()
		}
		if m.IsLeaf() {
			if len(m.Children) > 0 {
				return fmt.Errorf("core: leaf %q has children", m.ID)
			}
			l := m.Leaf
			switch {
			case l.SupplyID == "":
				return fmt.Errorf("core: leaf %q has empty supply ID", m.ID)
			case l.ServerID == "":
				return fmt.Errorf("core: leaf %q has empty server ID", m.ID)
			case l.Share <= 0 || l.Share > 1:
				return fmt.Errorf("core: leaf %q share %v out of (0,1]", m.ID, l.Share)
			case l.CapMin < 0 || l.CapMax < l.CapMin:
				return fmt.Errorf("core: leaf %q envelope [%v,%v] invalid", m.ID, l.CapMin, l.CapMax)
			case l.Demand < 0:
				return fmt.Errorf("core: leaf %q negative demand", m.ID)
			}
			return nil
		}
		if len(m.Children) == 0 {
			return fmt.Errorf("core: shifting controller %q has no children", m.ID)
		}
		for _, c := range m.Children {
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(n)
}

// LeafInfo supplies per-server data when building a control tree from a
// physical topology: the server's priority, controllable envelope, current
// demand estimate, and the supply's current share r.
type LeafInfo struct {
	Priority Priority
	CapMin   power.Watts
	CapMax   power.Watts
	Demand   power.Watts
	Share    float64 // current share for this supply; ≤0 keeps the topology split
}

// LeafSource resolves the LeafInfo for a supply node encountered while
// building a tree. Returning ok=false omits the supply from the tree
// (e.g. a failed supply).
type LeafSource func(supplyID, serverID string) (LeafInfo, bool)

// BuildTree converts a physical topology subtree into a control tree,
// applying the derating policy to obtain each shifting controller's
// enforceable limit. Chain nodes with a single child are preserved so the
// control tree mirrors the physical hierarchy exactly, as the paper's
// design prescribes. Subtrees containing no (working) supplies are pruned.
func BuildTree(root *topology.Node, derating topology.Derating, src LeafSource) (*Node, error) {
	if root == nil {
		return nil, fmt.Errorf("core: nil topology root")
	}
	node, err := buildNode(root, derating, src)
	if err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("core: topology %q contains no working supplies", root.ID)
	}
	if err := node.Validate(); err != nil {
		return nil, err
	}
	return node, nil
}

func buildNode(t *topology.Node, derating topology.Derating, src LeafSource) (*Node, error) {
	if t.Kind == topology.KindSupply {
		info, ok := src(t.ID, t.ServerID)
		if !ok {
			return nil, nil
		}
		share := info.Share
		if share <= 0 {
			share = t.Split
		}
		return NewLeaf(t.ID, SupplyLeaf{
			SupplyID: t.ID,
			ServerID: t.ServerID,
			Priority: info.Priority,
			Share:    share,
			CapMin:   info.CapMin,
			CapMax:   info.CapMax,
			Demand:   info.Demand,
		}), nil
	}
	var children []*Node
	for _, c := range t.Children() {
		built, err := buildNode(c, derating, src)
		if err != nil {
			return nil, err
		}
		if built != nil {
			children = append(children, built)
		}
	}
	if len(children) == 0 {
		return nil, nil
	}
	limit := derating.Limit(t)
	if math.IsInf(float64(limit), 1) {
		limit = 0 // normalized "unlimited"
	}
	return NewShifting(t.ID, limit, children...), nil
}

// prioritiesIn returns the distinct leaf priorities of the subtree in
// descending order (highest priority first).
func prioritiesIn(n *Node) []Priority {
	set := make(map[Priority]struct{})
	n.Walk(func(m *Node) {
		if m.IsLeaf() {
			set[m.Leaf.Priority] = struct{}{}
		}
	})
	out := make([]Priority, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
