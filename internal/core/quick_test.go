package core

import (
	"math"
	"testing"
	"testing/quick"

	"capmaestro/internal/power"
)

// normalize turns arbitrary generated floats into safe watt magnitudes.
func normWatt(v float64, max float64) power.Watts {
	return power.Watts(math.Abs(math.Mod(v, max)))
}

// TestQuickWaterfillConservation: waterfill never assigns more than the
// amount offered, never exceeds any cap, and leaves nothing behind while
// any cap headroom remains.
func TestQuickWaterfillConservation(t *testing.T) {
	f := func(amountRaw float64, weightsRaw [4]float64, capsRaw [4]float64) bool {
		amount := normWatt(amountRaw, 2000)
		weights := make([]float64, 4)
		caps := make([]power.Watts, 4)
		var capTotal power.Watts
		for i := 0; i < 4; i++ {
			weights[i] = math.Abs(math.Mod(weightsRaw[i], 100))
			caps[i] = normWatt(capsRaw[i], 800)
			capTotal += caps[i]
		}
		shares := waterfill(amount, weights, caps)
		var total power.Watts
		for i, s := range shares {
			if s < -epsilon || s > caps[i]+epsilon {
				return false
			}
			total += s
		}
		if total > amount+0.001 {
			return false
		}
		// Fully distributed unless saturated everywhere.
		want := power.Min(amount, capTotal)
		return math.Abs(float64(total-want)) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickCollapsePreservesTotals: collapsing priority levels preserves
// aggregate CapMin and Demand, and the collapsed Request never exceeds
// the constraint or the original total.
func TestQuickCollapsePreservesTotals(t *testing.T) {
	f := func(capMins [3]float64, demands [3]float64, constraintRaw float64) bool {
		s := NewSummary()
		for i := 0; i < 3; i++ {
			p := Priority(i)
			capMin := normWatt(capMins[i], 1000)
			demand := capMin + normWatt(demands[i], 500)
			s.SetLevel(p, capMin, demand, demand)
		}
		s.Constraint = normWatt(constraintRaw, 5000)
		c := s.Collapse()
		if !power.ApproxEqual(c.TotalCapMin(), s.TotalCapMin(), 1e-6) {
			return false
		}
		if !power.ApproxEqual(c.TotalDemand(), s.TotalDemand(), 1e-6) {
			return false
		}
		if c.Request(0) > s.Constraint+epsilon {
			return false
		}
		if c.Request(0) > s.TotalRequest()+epsilon {
			return false
		}
		return c.Constraint == s.Constraint && len(c.Levels()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickCombineRespectsLimit: a combined summary's constraint and
// per-level requests never exceed the node limit, and total capmin is the
// sum of children's.
func TestQuickCombineRespectsLimit(t *testing.T) {
	f := func(d1, d2, d3 float64, limitRaw float64) bool {
		mk := func(p Priority, demandRaw float64) Summary {
			s := NewSummary()
			demand := 270 + normWatt(demandRaw, 250)
			s.SetLevel(p, 270, demand, demand)
			s.Constraint = 490
			return s
		}
		children := []Summary{mk(0, d1), mk(1, d2), mk(2, d3)}
		limit := 400 + normWatt(limitRaw, 1400)
		agg := CombineSummaries(children, limit)
		if agg.Constraint > limit+epsilon {
			return false
		}
		if !power.ApproxEqual(agg.TotalCapMin(), 810, 1e-6) {
			return false
		}
		var reqTotal power.Watts
		for _, p := range agg.Levels() {
			if agg.Request(p) < agg.CapMin(p)-epsilon {
				return false // requests never below the owed minimum
			}
			reqTotal += agg.Request(p)
		}
		// When the limit can cover the minimums, total requests fit within
		// the constraint.
		if agg.Constraint >= 810 && reqTotal > agg.Constraint+epsilon {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickDistributeBudgetSafety: DistributeBudget never hands out more
// than the budget (when feasible), never exceeds a child's constraint,
// and covers every child's minimum when the budget allows.
func TestQuickDistributeBudgetSafety(t *testing.T) {
	f := func(demands [3]float64, budgetRaw float64) bool {
		children := make([]Summary, 3)
		var minTotal power.Watts
		for i := range children {
			s := NewSummary()
			p := Priority(i % 2)
			demand := 270 + normWatt(demands[i], 220)
			s.SetLevel(p, 270, demand, demand)
			s.Constraint = 490
			children[i] = s
			minTotal += 270
		}
		budget := normWatt(budgetRaw, 2000)
		allocs, infeasible := DistributeBudget(budget, children)
		var total power.Watts
		for i, a := range allocs {
			if a < -epsilon || a > children[i].Constraint+epsilon {
				return false
			}
			if !infeasible && a < 270-epsilon {
				return false
			}
			total += a
		}
		if total > budget+0.001 {
			return false
		}
		if infeasible != (budget+epsilon < minTotal) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
