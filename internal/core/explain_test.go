package core

import (
	"testing"

	"capmaestro/internal/power"
)

// collectExplains runs AllocateExplained and indexes the records by node ID.
func collectExplains(t *testing.T, root *Node, budget power.Watts, policy Policy) (map[string]NodeExplain, *Allocation) {
	t.Helper()
	byID := make(map[string]NodeExplain)
	alloc, err := AllocateExplained(root, budget, policy, ExplainFunc(func(e NodeExplain) {
		if _, dup := byID[e.NodeID]; dup {
			t.Fatalf("node %s explained twice", e.NodeID)
		}
		byID[e.NodeID] = e
	}))
	if err != nil {
		t.Fatal(err)
	}
	return byID, alloc
}

func TestExplainMatchesAllocation(t *testing.T) {
	root := NewShifting("root", 1400,
		NewShifting("left", 750, leaf("a", "SA", 1, 1, 430)),
		NewShifting("right", 750, leaf("b", "SB", 0, 1, 430)),
	)
	byID, alloc := collectExplains(t, root, 900, GlobalPriority)
	if len(byID) != 5 {
		t.Fatalf("got %d explains, want one per node (5)", len(byID))
	}
	for id, e := range byID {
		if want := alloc.NodeBudgets[id]; !power.ApproxEqual(e.Granted, want, 0.01) {
			t.Errorf("%s: explained grant %v != allocated budget %v", id, e.Granted, want)
		}
		if e.Phase != PhasePreferred {
			t.Errorf("%s: phase %q, want preferred", id, e.Phase)
		}
	}
	a, b := byID["a"], byID["b"]
	if !a.Leaf || a.SupplyID != "a" || a.ServerID != "SA" || a.Priority != 1 {
		t.Errorf("leaf identity not carried: %+v", a)
	}
	// 900 W over demand 860: both leaves demand-satisfied.
	if a.Clamp != ClampDemand {
		t.Errorf("a clamp = %q, want demand (granted %v, demand %v)", a.Clamp, a.Granted, a.Demand)
	}
	if b.Clamp != ClampDemand {
		t.Errorf("b clamp = %q, want demand", b.Clamp)
	}
	// The root's priority is the highest one beneath it.
	if byID["root"].Priority != 1 {
		t.Errorf("root priority = %v, want 1 (highest level present)", byID["root"].Priority)
	}
}

func TestExplainClampShare(t *testing.T) {
	// 700 W over two 430 W same-priority leaves: both lose the share
	// contest — granted below demand and below their own constraints.
	root := NewShifting("root", 1400,
		NewShifting("left", 750, leaf("a", "SA", 0, 1, 430)),
		NewShifting("right", 750, leaf("b", "SB", 0, 1, 430)),
	)
	byID, _ := collectExplains(t, root, 700, GlobalPriority)
	for _, id := range []string{"a", "b"} {
		e := byID[id]
		if e.Clamp != ClampShare {
			t.Errorf("%s clamp = %q (granted %v, demand %v, constraint %v), want share",
				id, e.Clamp, e.Granted, e.Demand, e.Constraint)
		}
	}
	// The root itself is pinned at the offered budget < demand, with no
	// constraint binding: also a share outcome.
	if e := byID["root"]; e.Clamp != ClampShare {
		t.Errorf("root clamp = %q, want share", e.Clamp)
	}
}

func TestExplainClampCap(t *testing.T) {
	// Ample budget but a tight branch circuit: the left branch (and its
	// leaf) pin at the 300 W constraint.
	root := NewShifting("root", 2000,
		NewShifting("left", 300, leaf("a", "SA", 0, 1, 430)),
		NewShifting("right", 750, leaf("b", "SB", 0, 1, 430)),
	)
	byID, _ := collectExplains(t, root, 2000, GlobalPriority)
	if e := byID["left"]; e.Clamp != ClampCap || !power.ApproxEqual(e.Granted, 300, 0.01) {
		t.Errorf("left = %+v, want cap-clamped at 300", e)
	}
	if e := byID["b"]; e.Clamp != ClampDemand {
		t.Errorf("b clamp = %q, want demand", e.Clamp)
	}
}

func TestExplainClampInfeasible(t *testing.T) {
	// 400 W cannot cover 2×270 W of Pcap_min.
	root := NewShifting("root", 1400,
		leaf("a", "SA", 0, 1, 430),
		leaf("b", "SB", 0, 1, 430),
	)
	byID, alloc := collectExplains(t, root, 400, GlobalPriority)
	if !alloc.Infeasible {
		t.Fatal("expected infeasible allocation")
	}
	if e := byID["root"]; e.Clamp != ClampInfeasible {
		t.Errorf("root clamp = %q, want infeasible", e.Clamp)
	}
}

func TestExplainNilSinkEquivalence(t *testing.T) {
	// The sink must observe the allocation, never change it.
	build := func() *Node {
		x, _ := fig7Trees()
		return x
	}
	plain, err := Allocate(build(), 700, GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}
	explained, err := AllocateExplained(build(), 700, GlobalPriority, ExplainFunc(func(NodeExplain) {}))
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range plain.NodeBudgets {
		if got := explained.NodeBudgets[id]; got != want {
			t.Errorf("%s: budget %v with sink, %v without", id, got, want)
		}
	}
}

func TestExplainSinkDetach(t *testing.T) {
	x, _ := fig7Trees()
	a, err := NewAllocator(x)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	a.SetExplainSink(ExplainFunc(func(NodeExplain) { n++ }))
	a.Run(700, GlobalPriority)
	if n != a.Len() {
		t.Fatalf("sink saw %d explains, want %d", n, a.Len())
	}
	a.SetExplainSink(nil)
	a.Run(700, GlobalPriority)
	if n != a.Len() {
		t.Fatalf("detached sink still consulted: %d explains", n)
	}
}

func TestExplainSPOPhases(t *testing.T) {
	// Figure 7a: the SPO pass moves the Y-side budgets (donors SC-y/SD-y
	// shrink, SB-y receives) — those must report PhaseSPO; SA's X-side
	// grant is untouched and stays PhasePreferred.
	x, y := fig7Trees()
	byID := make(map[string]NodeExplain)
	_, report, err := AllocateWithSPOExplained([]*Node{x, y}, []power.Watts{700, 700}, GlobalPriority,
		ExplainFunc(func(e NodeExplain) { byID[e.NodeID] = e }))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Stranded) == 0 {
		t.Fatal("fixture should strand power")
	}
	for _, id := range []string{"SB-y", "SC-y", "SD-y"} {
		if e := byID[id]; e.Phase != PhaseSPO {
			t.Errorf("%s phase = %q, want spo (granted %v)", id, e.Phase, e.Granted)
		}
	}
	if e := byID["SA-x"]; e.Phase != PhasePreferred {
		t.Errorf("SA-x phase = %q, want preferred (granted %v)", e.Phase, e.Granted)
	}
	// Donors end cap-clamped at their usable watts.
	if e := byID["SC-y"]; e.Clamp != ClampCap {
		t.Errorf("SC-y clamp = %q, want cap (pinned at usable)", e.Clamp)
	}
}

func TestExplainSPONoStrandingFlushesFirstPass(t *testing.T) {
	// Without stranding the buffered first-pass explains must still reach
	// the sink, all marked preferred.
	mk := func(feed string) *Node {
		return NewShifting(feed+"-top", 0,
			NewLeaf("s1-"+feed, SupplyLeaf{SupplyID: "s1-" + feed, ServerID: "s1", Share: 0.5,
				CapMin: 270, CapMax: 490, Demand: 400}),
			NewLeaf("s2-"+feed, SupplyLeaf{SupplyID: "s2-" + feed, ServerID: "s2", Share: 0.5,
				CapMin: 270, CapMax: 490, Demand: 400}),
		)
	}
	var n, spo int
	_, report, err := AllocateWithSPOExplained([]*Node{mk("x"), mk("y")}, []power.Watts{400, 400},
		GlobalPriority, ExplainFunc(func(e NodeExplain) {
			n++
			if e.Phase == PhaseSPO {
				spo++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Stranded) != 0 {
		t.Fatal("fixture should not strand")
	}
	if n != 6 {
		t.Errorf("got %d explains, want 6 (one per node)", n)
	}
	if spo != 0 {
		t.Errorf("%d nodes marked spo without a second pass", spo)
	}
}
