package core

import (
	"capmaestro/internal/power"
)

// Clamp identifies which bound produced a node's granted budget — the
// per-decision attribution operators need before they trust an
// oversubscribed allocation ("why is this server throttled?").
type Clamp string

// Clamp outcomes, from most to least comfortable.
const (
	// ClampDemand: the grant covers the node's full (CapMax-clamped)
	// demand — the node got everything it could use; the budget was
	// clamped down to demand, not the other way around.
	ClampDemand Clamp = "demand"
	// ClampCap: the grant is pinned at the node's own constraint (its
	// breaker/derated limit, or an SPO budget cap) — more budget existed
	// upstream but this node cannot safely absorb it.
	ClampCap Clamp = "cap"
	// ClampShare: the grant is below both demand and constraint — the
	// node lost the proportional-share contest at some ancestor to
	// higher-priority or heavier siblings.
	ClampShare Clamp = "share"
	// ClampInfeasible: the budget above could not even cover the
	// aggregate Pcap_min below; minimums were scaled down and nothing is
	// guaranteed.
	ClampInfeasible Clamp = "infeasible"
)

// ExplainPhase identifies which allocation pass produced a node's final
// grant.
type ExplainPhase string

// Phases of AllocateWithSPO; plain Allocator runs are always "preferred".
const (
	// PhasePreferred: the grant came from the ordinary preferred-share
	// budgeting pass (Section 4.3.2).
	PhasePreferred ExplainPhase = "preferred"
	// PhaseSPO: the grant was changed by the stranded-power
	// redistribution pass (Section 4.4) — either a donor pinned down to
	// its usable watts, or a recipient of the freed power.
	PhaseSPO ExplainPhase = "spo"
)

// NodeExplain is the audit record for one tree node in one budgeting pass:
// what the node reported (demand, minimum, request, constraint), what it
// was granted, and which bound and phase produced the grant.
type NodeExplain struct {
	NodeID   string `json:"node"`
	SupplyID string `json:"supply,omitempty"`
	ServerID string `json:"server,omitempty"`
	Leaf     bool   `json:"leaf,omitempty"`
	// Priority is the leaf's priority, or the highest priority present
	// beneath an interior node.
	Priority   Priority     `json:"priority"`
	Demand     power.Watts  `json:"demand"`
	CapMin     power.Watts  `json:"cap_min"`
	Request    power.Watts  `json:"request"`
	Constraint power.Watts  `json:"constraint"`
	Granted    power.Watts  `json:"granted"`
	Clamp      Clamp        `json:"clamp"`
	Phase      ExplainPhase `json:"phase"`
}

// ExplainSink receives one NodeExplain per tree node after each budgeting
// pass. Sinks are consulted synchronously from Run; a nil sink costs one
// branch per Run and zero allocations.
type ExplainSink interface {
	Explain(NodeExplain)
}

// ExplainFunc adapts a function to the ExplainSink interface.
type ExplainFunc func(NodeExplain)

// Explain implements ExplainSink.
func (f ExplainFunc) Explain(e NodeExplain) { f(e) }

// SetExplainSink attaches an explain sink consulted after every Run; nil
// (the default) detaches it and restores the allocation-free hot path.
func (a *Allocator) SetExplainSink(s ExplainSink) { a.sink = s }

// explainAll emits one NodeExplain per node for the last Run, in BFS
// (top-down) order. Only called when a sink is attached.
func (a *Allocator) explainAll() {
	for i := range a.nodes {
		n := a.nodes[i].node
		s := &a.summaries[i]
		e := NodeExplain{
			NodeID:     n.ID,
			Demand:     s.TotalDemand(),
			CapMin:     s.TotalCapMin(),
			Request:    s.TotalRequest(),
			Constraint: s.Constraint,
			Granted:    a.budgets[i],
			Phase:      PhasePreferred,
		}
		switch {
		case n.IsLeaf():
			e.Leaf = true
			e.SupplyID = n.Leaf.SupplyID
			e.ServerID = n.Leaf.ServerID
			e.Priority = n.Leaf.Priority
		case len(s.levels) > 0:
			e.Priority = s.levels[0].Priority
		}
		e.Clamp = classifyClamp(a.budgets[i], s, a.infeasible)
		a.sink.Explain(e)
	}
}

// classifyClamp attributes a grant to the tightest bound that produced it.
func classifyClamp(granted power.Watts, s *Summary, infeasible bool) Clamp {
	if infeasible && granted+epsilon < s.TotalCapMin() {
		return ClampInfeasible
	}
	demand := s.TotalDemand()
	// A grant sitting at a constraint that is at least as tight as demand
	// is cap-bound; this includes SPO donors, whose BudgetCap collapses
	// demand and constraint onto the usable watts.
	if granted+epsilon >= s.Constraint && s.Constraint <= demand+epsilon {
		return ClampCap
	}
	if granted+epsilon >= demand {
		return ClampDemand
	}
	return ClampShare
}

// AllocateExplained is Allocate with a per-node explanation stream: sink
// (may be nil) receives one NodeExplain per tree node for the pass that
// produced the returned allocation.
func AllocateExplained(root *Node, budget power.Watts, policy Policy, sink ExplainSink) (*Allocation, error) {
	a, err := NewAllocator(root)
	if err != nil {
		return nil, err
	}
	a.SetExplainSink(sink)
	a.Run(budget, policy)
	return a.Snapshot(), nil
}
