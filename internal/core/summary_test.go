package core

import (
	"math"
	"strings"
	"testing"

	"capmaestro/internal/power"
)

func validSummary() Summary {
	s := NewSummary()
	s.CapMin[0] = 270
	s.Demand[0] = 450
	s.Request[0] = 450
	s.Constraint = 490
	return s
}

func TestSummaryValidate(t *testing.T) {
	nan := power.Watts(math.NaN())
	inf := power.Watts(math.Inf(1))

	cases := []struct {
		name    string
		mutate  func(*Summary)
		wantErr string // empty = valid
	}{
		{"valid", func(s *Summary) {}, ""},
		{"empty", func(s *Summary) { *s = NewSummary() }, ""},
		{"nan constraint", func(s *Summary) { s.Constraint = nan }, "not finite"},
		{"inf constraint", func(s *Summary) { s.Constraint = inf }, "not finite"},
		{"negative constraint", func(s *Summary) { s.Constraint = -1 }, "negative"},
		{"nan capmin", func(s *Summary) { s.CapMin[0] = nan }, "not finite"},
		{"negative capmin", func(s *Summary) { s.CapMin[0] = -270 }, "negative"},
		{"inf demand", func(s *Summary) { s.Demand[0] = inf }, "not finite"},
		{"negative demand", func(s *Summary) { s.Demand[0] = -1 }, "negative"},
		{"nan request", func(s *Summary) { s.Request[3] = nan }, "not finite"},
		{"negative request", func(s *Summary) { s.Request[0] = -450 }, "negative"},
		// A zero-value summary (as from a never-gathered proxy) is valid:
		// the control plane must handle "no data" by policy, not rejection.
		{"zero", func(s *Summary) { *s = Summary{} }, ""},
		// Requests beyond the constraint envelope indicate a corrupt or
		// buggy reporter and would poison the upper-level allocation.
		{"request exceeds constraint", func(s *Summary) { s.Request[0] = 600 }, "exceed constraint envelope"},
		{"request across levels exceeds constraint", func(s *Summary) {
			s.Request[3] = 300
			s.Request[0] = 300
		}, "exceed constraint envelope"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSummary()
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestSummaryValidateInfeasibleMinimums: when the minimums alone exceed the
// constraint (e.g. a CDU limit below the servers' Pcap_min sum) the
// aggregation rules floor requests at CapMin, so such summaries — produced
// by correct reporters — must validate.
func TestSummaryValidateInfeasibleMinimums(t *testing.T) {
	s := NewSummary()
	s.CapMin[0] = 540 // two servers at 270 W minimum
	s.Demand[0] = 900
	s.Request[0] = 540 // floored at CapMin by CombineSummaries
	s.Constraint = 500 // infeasible branch-circuit limit
	if err := s.Validate(); err != nil {
		t.Fatalf("infeasible-but-representable summary rejected: %v", err)
	}
	// The envelope is max(Constraint, ΣCapMin), not their sum.
	s.Request[0] = 560
	if err := s.Validate(); err == nil {
		t.Fatal("request above both constraint and minimums should be rejected")
	}
}

// TestCombinedSummariesValidate: everything CombineSummaries produces from
// valid inputs passes Validate — the gather path validates remote summaries
// with it, so the aggregation rules and the validator must agree.
func TestCombinedSummariesValidate(t *testing.T) {
	a := NewSummary()
	a.CapMin[0], a.Demand[0], a.Request[0], a.Constraint = 270, 450, 450, 490
	b := NewSummary()
	b.CapMin[3], b.Demand[3], b.Request[3], b.Constraint = 270, 430, 430, 490
	for _, limit := range []power.Watts{0, 400, 700, 2000} {
		comb := CombineSummaries([]Summary{a, b}, limit)
		if err := comb.Validate(); err != nil {
			t.Errorf("limit %v: combined summary invalid: %v\n%+v", limit, err, comb)
		}
	}
}
