package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"capmaestro/internal/power"
)

func validSummary() Summary {
	s := NewSummary()
	s.SetLevel(0, 270, 450, 450)
	s.Constraint = 490
	return s
}

func TestSummaryValidate(t *testing.T) {
	nan := power.Watts(math.NaN())
	inf := power.Watts(math.Inf(1))

	cases := []struct {
		name    string
		mutate  func(*Summary)
		wantErr string // empty = valid
	}{
		{"valid", func(s *Summary) {}, ""},
		{"empty", func(s *Summary) { *s = NewSummary() }, ""},
		{"nan constraint", func(s *Summary) { s.Constraint = nan }, "not finite"},
		{"inf constraint", func(s *Summary) { s.Constraint = inf }, "not finite"},
		{"negative constraint", func(s *Summary) { s.Constraint = -1 }, "negative"},
		{"nan capmin", func(s *Summary) { s.SetCapMin(0, nan) }, "not finite"},
		{"negative capmin", func(s *Summary) { s.SetCapMin(0, -270) }, "negative"},
		{"inf demand", func(s *Summary) { s.SetDemand(0, inf) }, "not finite"},
		{"negative demand", func(s *Summary) { s.SetDemand(0, -1) }, "negative"},
		{"nan request", func(s *Summary) { s.SetRequest(3, nan) }, "not finite"},
		{"negative request", func(s *Summary) { s.SetRequest(0, -450) }, "negative"},
		// A zero-value summary (as from a never-gathered proxy) is valid:
		// the control plane must handle "no data" by policy, not rejection.
		{"zero", func(s *Summary) { *s = Summary{} }, ""},
		// Requests beyond the constraint envelope indicate a corrupt or
		// buggy reporter and would poison the upper-level allocation.
		{"request exceeds constraint", func(s *Summary) { s.SetRequest(0, 600) }, "exceed constraint envelope"},
		{"request across levels exceeds constraint", func(s *Summary) {
			s.SetRequest(3, 300)
			s.SetRequest(0, 300)
		}, "exceed constraint envelope"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSummary()
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestSummaryValidateInfeasibleMinimums: when the minimums alone exceed the
// constraint (e.g. a CDU limit below the servers' Pcap_min sum) the
// aggregation rules floor requests at CapMin, so such summaries — produced
// by correct reporters — must validate.
func TestSummaryValidateInfeasibleMinimums(t *testing.T) {
	s := NewSummary()
	// Two servers at 270 W minimum; request floored at CapMin by
	// CombineSummaries; constraint is an infeasible branch-circuit limit.
	s.SetLevel(0, 540, 900, 540)
	s.Constraint = 500
	if err := s.Validate(); err != nil {
		t.Fatalf("infeasible-but-representable summary rejected: %v", err)
	}
	// The envelope is max(Constraint, ΣCapMin), not their sum.
	s.SetRequest(0, 560)
	if err := s.Validate(); err == nil {
		t.Fatal("request above both constraint and minimums should be rejected")
	}
}

// TestCombinedSummariesValidate: everything CombineSummaries produces from
// valid inputs passes Validate — the gather path validates remote summaries
// with it, so the aggregation rules and the validator must agree.
func TestCombinedSummariesValidate(t *testing.T) {
	a := NewSummary()
	a.SetLevel(0, 270, 450, 450)
	a.Constraint = 490
	b := NewSummary()
	b.SetLevel(3, 270, 430, 430)
	b.Constraint = 490
	for _, limit := range []power.Watts{0, 400, 700, 2000} {
		comb := CombineSummaries([]Summary{a, b}, limit)
		if err := comb.Validate(); err != nil {
			t.Errorf("limit %v: combined summary invalid: %v\n%+v", limit, err, comb)
		}
	}
}

// TestSummaryJSONWireShape pins the JSON document shape the control plane
// exchanges: per-level maps keyed by the priority's decimal string, exactly
// as the original map-based Summary marshaled. The in-memory representation
// is a sorted slice; the wire must not change.
func TestSummaryJSONWireShape(t *testing.T) {
	s := NewSummary()
	s.SetLevel(0, 270, 450, 450)
	s.SetLevel(3, 540, 900, 880)
	s.Constraint = 1470
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"cap_min":{"0":270,"3":540},"demand":{"0":450,"3":900},"request":{"0":450,"3":880},"constraint":1470}`
	if string(data) != want {
		t.Fatalf("wire shape changed:\n got %s\nwant %s", data, want)
	}

	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.CapMin(3) != 540 || back.Demand(0) != 450 || back.Request(3) != 880 || back.Constraint != 1470 {
		t.Fatalf("roundtrip lost data: %+v", back)
	}

	// An empty summary marshals with empty (not null) level maps, as
	// NewSummary's allocated maps always did.
	data, err = json.Marshal(NewSummary())
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"cap_min":{},"demand":{},"request":{},"constraint":0}`; string(data) != want {
		t.Fatalf("empty wire shape changed:\n got %s\nwant %s", data, want)
	}

	// Historical senders may emit null maps (a zero map-based Summary);
	// those must still parse.
	var legacy Summary
	if err := json.Unmarshal([]byte(`{"cap_min":null,"demand":null,"request":null,"constraint":5}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Constraint != 5 || len(legacy.Levels()) != 0 {
		t.Fatalf("legacy null-map document misparsed: %+v", legacy)
	}
}
