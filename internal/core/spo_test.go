package core

import (
	"math"
	"testing"

	"capmaestro/internal/power"
)

// fig7Trees builds the Figure 7a stranded-power scenario: two feeds
// (X and Y) with 700 W budgets. SA draws only from X (its Y cord is
// disconnected), SB only from Y, and SC/SD draw from both feeds with an
// intrinsic split mismatch. SA is high priority.
func fig7Trees() (x, y *Node) {
	const (
		demA = 414
		demB = 415
		demC = 433
		demD = 439
		rcX  = 0.533 // SC draws 53.3% from X
		rdX  = 0.461 // SD draws 46.1% from X
	)
	x = NewShifting("x-top", 1400,
		NewShifting("x-left", 750,
			leaf("SA-x", "SA", 1, 1, demA),
		),
		NewShifting("x-right", 750,
			NewLeaf("SC-x", SupplyLeaf{SupplyID: "SC-x", ServerID: "SC", Share: rcX,
				CapMin: 270, CapMax: 490, Demand: demC}),
			NewLeaf("SD-x", SupplyLeaf{SupplyID: "SD-x", ServerID: "SD", Share: rdX,
				CapMin: 270, CapMax: 490, Demand: demD}),
		),
	)
	y = NewShifting("y-top", 1400,
		NewShifting("y-left", 750,
			leaf("SB-y", "SB", 0, 1, demB),
		),
		NewShifting("y-right", 750,
			NewLeaf("SC-y", SupplyLeaf{SupplyID: "SC-y", ServerID: "SC", Share: 1 - rcX,
				CapMin: 270, CapMax: 490, Demand: demC}),
			NewLeaf("SD-y", SupplyLeaf{SupplyID: "SD-y", ServerID: "SD", Share: 1 - rdX,
				CapMin: 270, CapMax: 490, Demand: demD}),
		),
	)
	return x, y
}

func TestTable3FirstPassBudgets(t *testing.T) {
	x, y := fig7Trees()
	allocs, err := AllocateAll([]*Node{x, y}, []power.Watts{700, 700}, GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}
	ax, ay := allocs[0], allocs[1]
	// Paper Table 3, "Global Priority w/o SPO" budgets:
	// SA 415/0, SB 0/346, SC 152/164, SD 132/187.
	wantBudget(t, ax, "SA-x", 414, 2)
	wantBudget(t, ax, "SC-x", 152, 4)
	wantBudget(t, ax, "SD-x", 132, 4)
	wantBudget(t, ay, "SB-y", 346, 5)
	wantBudget(t, ay, "SC-y", 164, 4)
	wantBudget(t, ay, "SD-y", 187, 6)
}

func TestTable3StrandedDetectionAndSPO(t *testing.T) {
	x, y := fig7Trees()
	trees := []*Node{x, y}
	budgets := []power.Watts{700, 700}

	withoutSPO, err := AllocateAll(trees, budgets, GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}
	consBefore := PredictConsumption(trees, withoutSPO)

	withSPO, report, err := AllocateWithSPO(trees, budgets, GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}

	// The Y-side supplies of SC and SD strand power (paper: 27 W and 29 W).
	strandedBy := map[string]power.Watts{}
	for _, s := range report.Stranded {
		strandedBy[s.SupplyID] = s.Stranded
	}
	if s := strandedBy["SC-y"]; s < 20 || s > 40 {
		t.Errorf("SC-y stranded %v, want ~27-31 W", s)
	}
	if s := strandedBy["SD-y"]; s < 20 || s > 45 {
		t.Errorf("SD-y stranded %v, want ~29-37 W", s)
	}
	if _, ok := strandedBy["SB-y"]; ok {
		t.Error("SB should not strand power")
	}
	if report.TotalStranded < 45 || report.TotalStranded > 85 {
		t.Errorf("total stranded %v, want ~56-67 W", report.TotalStranded)
	}

	// After SPO the freed Y-side power flows to SB (paper: 346 → 413).
	sbBefore := withoutSPO[1].Budget("SB-y")
	sbAfter := withSPO[1].Budget("SB-y")
	if sbAfter < sbBefore+40 {
		t.Errorf("SPO should raise SB budget substantially: %v -> %v", sbBefore, sbAfter)
	}
	if sbAfter > 415+1 {
		t.Errorf("SB budget %v exceeds its demand", sbAfter)
	}

	// SC and SD consumption must be unchanged (Fig. 7b): SPO reclaims only
	// power they could not use.
	consAfter := PredictConsumption(trees, withSPO)
	for _, srv := range []string{"SC", "SD"} {
		if math.Abs(float64(consAfter[srv]-consBefore[srv])) > 2 {
			t.Errorf("%s consumption changed %v -> %v; SPO must not hurt donors",
				srv, consBefore[srv], consAfter[srv])
		}
	}
	// SB consumption improves to near its demand.
	if consAfter["SB"] < 405 {
		t.Errorf("SB consumption after SPO = %v, want > 405", consAfter["SB"])
	}

	// Trees must be left unmodified (BudgetCaps restored).
	for _, tree := range trees {
		for _, l := range tree.Leaves() {
			if l.Leaf.BudgetCap != 0 {
				t.Errorf("leaf %s BudgetCap %v not restored", l.ID, l.Leaf.BudgetCap)
			}
		}
	}
}

func TestSPONoStrandingIsIdentity(t *testing.T) {
	// Symmetric 50/50 servers strand nothing; SPO must return the
	// first-pass allocation and an empty report.
	mk := func(feed string) *Node {
		return NewShifting(feed+"-top", 0,
			NewLeaf("s1-"+feed, SupplyLeaf{SupplyID: "s1-" + feed, ServerID: "s1", Share: 0.5,
				CapMin: 270, CapMax: 490, Demand: 400}),
			NewLeaf("s2-"+feed, SupplyLeaf{SupplyID: "s2-" + feed, ServerID: "s2", Share: 0.5,
				CapMin: 270, CapMax: 490, Demand: 400}),
		)
	}
	trees := []*Node{mk("x"), mk("y")}
	allocs, report, err := AllocateWithSPO(trees, []power.Watts{400, 400}, GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Stranded) != 0 || report.TotalStranded != 0 {
		t.Errorf("unexpected stranding: %+v", report)
	}
	if b := allocs[0].Budget("s1-x"); !power.ApproxEqual(b, 200, 0.01) {
		t.Errorf("s1-x budget = %v, want 200", b)
	}
}

func TestPredictConsumption(t *testing.T) {
	x, y := fig7Trees()
	trees := []*Node{x, y}
	allocs, err := AllocateAll(trees, []power.Watts{700, 700}, GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}
	cons := PredictConsumption(trees, allocs)
	// SA is uncapped: consumes its demand.
	if math.Abs(float64(cons["SA"]-414)) > 2 {
		t.Errorf("SA consumption = %v, want ~414", cons["SA"])
	}
	// SC is bound by its X-side budget: ~152/0.533 ≈ 287.
	if math.Abs(float64(cons["SC"]-287)) > 8 {
		t.Errorf("SC consumption = %v, want ~287", cons["SC"])
	}
	// Consumption never exceeds demand.
	for srv, c := range cons {
		if c > 440 {
			t.Errorf("%s consumption %v exceeds any demand", srv, c)
		}
	}
}

func TestAllocateAllValidation(t *testing.T) {
	x, _ := fig7Trees()
	if _, err := AllocateAll([]*Node{x}, []power.Watts{1, 2}, GlobalPriority); err == nil {
		t.Error("mismatched budgets length should fail")
	}
	if _, err := AllocateAll([]*Node{nil}, nil, GlobalPriority); err == nil {
		t.Error("nil tree should fail")
	}
	if _, _, err := AllocateWithSPO([]*Node{nil}, nil, GlobalPriority); err == nil {
		t.Error("SPO with nil tree should fail")
	}
}

func TestAllocateAllNilBudgetsUsesConstraints(t *testing.T) {
	x, y := fig7Trees()
	allocs, err := AllocateAll([]*Node{x, y}, nil, GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}
	// Without explicit budgets the trees allocate up to their constraints:
	// every server is fully satisfied.
	cons := PredictConsumption([]*Node{x, y}, allocs)
	for srv, want := range map[string]power.Watts{"SA": 414, "SB": 415, "SC": 433, "SD": 439} {
		if math.Abs(float64(cons[srv]-want)) > 2 {
			t.Errorf("%s consumption = %v, want demand %v", srv, cons[srv], want)
		}
	}
}

func TestSPOWithPriorityRespectsOrdering(t *testing.T) {
	// Stranded power freed by SPO must flow to the highest-priority capped
	// server first.
	x := NewShifting("x-top", 0,
		NewLeaf("a-x", SupplyLeaf{SupplyID: "a-x", ServerID: "a", Share: 0.7,
			CapMin: 270, CapMax: 490, Demand: 480}),
	)
	y := NewShifting("y-top", 600,
		NewLeaf("a-y", SupplyLeaf{SupplyID: "a-y", ServerID: "a", Share: 0.3,
			CapMin: 270, CapMax: 490, Demand: 480}),
		NewLeaf("hi-y", SupplyLeaf{SupplyID: "hi-y", ServerID: "hi", Share: 1, Priority: 1,
			CapMin: 270, CapMax: 490, Demand: 490}),
		NewLeaf("lo-y", SupplyLeaf{SupplyID: "lo-y", ServerID: "lo", Share: 1,
			CapMin: 270, CapMax: 490, Demand: 490}),
	)
	// X-side gives a's X supply only 210 W → a can draw 300 W total →
	// a-y usable = 90 W, but first pass budgets a-y at least 0.3×270 = 81…
	// use budgets to force stranding: X budget 210.
	trees := []*Node{x, y}
	budgets := []power.Watts{210, 600}
	first, err := AllocateAll(trees, budgets, GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}
	withSPO, report, err := AllocateWithSPO(trees, budgets, GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalStranded <= 0 {
		t.Skip("scenario produced no stranding; budgets too generous")
	}
	hiBefore := first[1].Budget("hi-y")
	hiAfter := withSPO[1].Budget("hi-y")
	loAfter := withSPO[1].Budget("lo-y")
	if hiAfter < hiBefore-0.01 {
		t.Errorf("high-priority budget fell after SPO: %v -> %v", hiBefore, hiAfter)
	}
	// If the high-priority server is still capped, the low one must be at
	// its minimum.
	if hiAfter < 490-0.01 && loAfter > 270+0.01 {
		t.Errorf("SPO violated priority ordering: hi %v capped, lo %v above min", hiAfter, loAfter)
	}
}
