package trace

import "capmaestro/internal/telemetry"

// ExportMetrics publishes a snapshot of every recorded series onto the
// registry: the final/min/max values as gauges and the sample count as a
// counter, all labeled by series name. It lets batch tools (dcsim, the
// experiments runner) dump the same numbers they plot as CSV in Prometheus
// text form. Either argument may be nil, in which case nothing happens.
func ExportMetrics(r *Recorder, reg *telemetry.Registry) {
	if r == nil || reg == nil {
		return
	}
	last := reg.GaugeVec("capmaestro_trace_series_value",
		"Final value of a recorded simulation series.", "series")
	min := reg.GaugeVec("capmaestro_trace_series_min",
		"Smallest value of a recorded simulation series.", "series")
	max := reg.GaugeVec("capmaestro_trace_series_max",
		"Largest value of a recorded simulation series.", "series")
	samples := reg.CounterVec("capmaestro_trace_series_samples_total",
		"Samples recorded per simulation series.", "series")
	for _, name := range r.Names() {
		s := r.Series(name)
		last.With(name).Set(s.Last())
		min.With(name).Set(s.Min())
		max.With(name).Set(s.Max())
		samples.With(name).Add(float64(len(s.Points)))
	}
}
