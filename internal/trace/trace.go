// Package trace records time series produced by simulations (per-breaker
// power, per-supply budgets, throttle levels) and renders them as CSV for
// plotting or as compact ASCII charts for terminal output. The paper's
// Figures 5, 6b, and 7c are time-series plots regenerated from these
// recordings.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a series.
type Point struct {
	T time.Duration
	V float64
}

// Series is a named time series.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a sample.
func (s *Series) Append(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Last returns the most recent sample value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Min and Max return the value range of the series (0,0 when empty).
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, p := range s.Points {
		m = math.Min(m, p.V)
	}
	return m
}

// Max returns the largest sample value (0 when empty).
func (s *Series) Max() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := math.Inf(-1)
	for _, p := range s.Points {
		m = math.Max(m, p.V)
	}
	return m
}

// CountAbove returns the number of samples strictly above the threshold.
func (s *Series) CountAbove(threshold float64) int {
	n := 0
	for _, p := range s.Points {
		if p.V > threshold {
			n++
		}
	}
	return n
}

// Recorder collects a set of named series with a shared clock.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Record appends a sample to the named series, creating it on first use.
func (r *Recorder) Record(name string, t time.Duration, v float64) {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	s.Append(t, v)
}

// Series returns the named series, or nil if absent.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names lists series names in first-recorded order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// WriteCSV emits all series in long form: time_s,series,value.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_s,series,value"); err != nil {
		return err
	}
	type row struct {
		t    time.Duration
		name string
		v    float64
	}
	var rows []row
	for _, name := range r.order {
		for _, p := range r.series[name].Points {
			rows = append(rows, row{p.T, name, p.V})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].t < rows[j].t })
	for _, rw := range rows {
		if _, err := fmt.Fprintf(w, "%.3f,%s,%.3f\n", rw.t.Seconds(), rw.name, rw.v); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIChart renders the named series as a fixed-width ASCII chart with the
// given number of columns and rows, for terminal experiment output. Series
// are resampled by bucketing points into columns.
func (r *Recorder) ASCIIChart(names []string, cols, rows int) string {
	if cols < 10 {
		cols = 10
	}
	if rows < 4 {
		rows = 4
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	var (
		minT, maxT = time.Duration(math.MaxInt64), time.Duration(math.MinInt64)
		minV, maxV = math.Inf(1), math.Inf(-1)
		active     []*Series
	)
	for _, name := range names {
		s := r.series[name]
		if s == nil || len(s.Points) == 0 {
			continue
		}
		active = append(active, s)
		for _, p := range s.Points {
			if p.T < minT {
				minT = p.T
			}
			if p.T > maxT {
				maxT = p.T
			}
			minV = math.Min(minV, p.V)
			maxV = math.Max(maxV, p.V)
		}
	}
	if len(active) == 0 {
		return "(no data)\n"
	}
	if maxV == minV {
		maxV = minV + 1
	}
	span := maxT - minT
	if span == 0 {
		span = 1
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for si, s := range active {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			c := clampInt(int(float64(p.T-minT)/float64(span)*float64(cols-1)), 0, cols-1)
			rowF := (p.V - minV) / (maxV - minV)
			rrow := clampInt(rows-1-int(rowF*float64(rows-1)), 0, rows-1)
			grid[rrow][c] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.1f ┤", maxV)
	b.Write(grid[0])
	b.WriteByte('\n')
	for i := 1; i < rows-1; i++ {
		b.WriteString(strings.Repeat(" ", 11) + "│")
		b.Write(grid[i])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%10.1f ┤", minV)
	b.Write(grid[rows-1])
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%12s%-8.0fs%s%8.0fs\n", "", minT.Seconds(),
		strings.Repeat(" ", maxInt(0, cols-16)), maxT.Seconds())
	for si, s := range active {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// clampInt bounds v to [lo, hi]; chart indices computed from floating-point
// resampling can land one cell outside the grid on rounding edge cases.
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
