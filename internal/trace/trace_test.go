package trace

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty series should report zeros")
	}
	s.Append(0, 5)
	s.Append(time.Second, 3)
	s.Append(2*time.Second, 9)
	if s.Last() != 9 || s.Min() != 3 || s.Max() != 9 {
		t.Errorf("series stats wrong: last %v min %v max %v", s.Last(), s.Min(), s.Max())
	}
	if got := s.CountAbove(4); got != 2 {
		t.Errorf("CountAbove(4) = %d, want 2", got)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 0, 1)
	r.Record("b", 0, 2)
	r.Record("a", time.Second, 3)
	if got := r.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("names = %v", got)
	}
	if r.Series("a").Last() != 3 {
		t.Error("series a last wrong")
	}
	if r.Series("nope") != nil {
		t.Error("unknown series should be nil")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Record("p", 0, 1.5)
	r.Record("p", 2*time.Second, 2.5)
	r.Record("q", time.Second, 9)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), b.String())
	}
	if lines[0] != "time_s,series,value" {
		t.Errorf("header = %q", lines[0])
	}
	// Rows sorted by time.
	if !strings.HasPrefix(lines[1], "0.000,p") ||
		!strings.HasPrefix(lines[2], "1.000,q") ||
		!strings.HasPrefix(lines[3], "2.000,p") {
		t.Errorf("rows out of order: %v", lines[1:])
	}
}

func TestASCIIChart(t *testing.T) {
	r := NewRecorder()
	for i := 0; i <= 20; i++ {
		r.Record("ramp", time.Duration(i)*time.Second, float64(i*10))
	}
	out := r.ASCIIChart([]string{"ramp"}, 40, 8)
	if !strings.Contains(out, "ramp") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("marks missing")
	}
	if out := r.ASCIIChart([]string{"missing"}, 40, 8); out != "(no data)\n" {
		t.Errorf("missing series chart = %q", out)
	}
	// Constant series must not divide by zero.
	r2 := NewRecorder()
	r2.Record("flat", 0, 5)
	r2.Record("flat", time.Second, 5)
	if out := r2.ASCIIChart([]string{"flat"}, 20, 4); !strings.Contains(out, "flat") {
		t.Error("flat series chart failed")
	}
	// Tiny dimensions clamp.
	if out := r.ASCIIChart([]string{"ramp"}, 1, 1); out == "" {
		t.Error("clamped chart empty")
	}
}
