package capping

import (
	"strconv"
	"strings"
	"testing"

	"capmaestro/internal/power"
	"capmaestro/internal/server"
	"capmaestro/internal/telemetry"
)

// TestControllerTelemetry drives a budgeted controller to convergence and
// checks the budget/power/throttle gauges, the cap-violation counter, and
// the settle-time histogram.
func TestControllerTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := server.MustNew(server.Config{
		ID:    "s1",
		Model: power.DefaultServerModel(),
		Supplies: []server.Supply{
			{ID: "psA", Split: 0.5},
			{ID: "psB", Split: 0.5},
		},
		Telemetry: reg,
	})
	srv.SetUtilization(1)
	c := MustNew(srv, Config{Telemetry: reg, ID: "s1"})

	// Warm up uncapped, then assign a tight budget on one supply: the
	// server is over the line until the PI loop pulls it down.
	runLoop(c, srv, 2)
	c.SetBudget("psA", 180)
	if got := srv.ThrottleLevel(); got != 0 {
		t.Fatalf("pre-budget throttle = %v, want 0", got)
	}
	runLoop(c, srv, 10)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`capmaestro_capping_budget_watts{server="s1",supply="psA"} 180`,
		`capmaestro_capping_supply_power_watts{server="s1",supply="psA"} `,
		`capmaestro_capping_supply_power_watts{server="s1",supply="psB"} `,
		`capmaestro_capping_throttle_level{server="s1"} `,
		`capmaestro_capping_settle_iterations_count{server="s1"} 1`,
		`capmaestro_capping_dc_cap_watts{server="s1"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// The loop starts above the new budget, so violations must have been
	// counted while it settled.
	viol := findValue(t, out, `capmaestro_capping_cap_violations_total{server="s1"}`)
	if viol < 1 {
		t.Errorf("cap violations = %v, want >= 1 during settling", viol)
	}

	// Converged: psA at or under budget (within tolerance).
	if p, _ := srv.SupplyACPower("psA"); p > 180+violationTolerance(180) {
		t.Errorf("psA power %v did not settle under budget", p)
	}

	// Removing the budget marks the gauge unbudgeted (+Inf).
	c.SetBudget("psA", Unbudgeted)
	sb.Reset()
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `capmaestro_capping_budget_watts{server="s1",supply="psA"} +Inf`) {
		t.Errorf("unbudgeted supply should read +Inf:\n%s", sb.String())
	}
}

// TestServerClampCounter checks the node manager's actuation-clamp
// counter: a cap request outside the controllable range increments it.
func TestServerClampCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := server.MustNew(server.Config{
		ID:        "s2",
		Model:     power.DefaultServerModel(),
		Supplies:  []server.Supply{{ID: "ps", Split: 1}},
		Telemetry: reg,
	})
	lo, hi := srv.DCCapRange()
	srv.SetDCCap((lo + hi) / 2) // in range: no clamp
	srv.SetDCCap(hi + 100)      // above range: clamped
	srv.SetDCCap(lo - 100)      // below range: clamped

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `capmaestro_server_actuation_clamps_total{server="s2"} 2`) {
		t.Errorf("want 2 clamps:\n%s", sb.String())
	}
}

// findValue extracts the sample value for an exact series name from
// rendered exposition text.
func findValue(t *testing.T, out, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in:\n%s", series, out)
	return 0
}
